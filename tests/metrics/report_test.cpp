// Reporting helpers: formatting, table alignment, TSV block structure.
#include "metrics/report.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace dirq::metrics {
namespace {

TEST(Fmt, FixedPrecision) {
  EXPECT_EQ(fmt(12.345), "12.35");
  EXPECT_EQ(fmt(12.345, 1), "12.3");
  EXPECT_EQ(fmt(12.0, 0), "12");
  EXPECT_EQ(fmt(-0.5, 2), "-0.50");
}

TEST(Table, PrintsHeaderSeparatorAndRows) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"beta", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("----"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, ShortRowsArePadded) {
  Table t({"a", "b", "c"});
  t.add_row({"only"});
  std::ostringstream os;
  t.print(os);  // must not crash; missing cells are blank
  EXPECT_NE(os.str().find("only"), std::string::npos);
}

TEST(Table, ColumnsAlignToWidestCell) {
  Table t({"x", "y"});
  t.add_row({"longvalue", "1"});
  std::ostringstream os;
  t.print(os);
  std::istringstream is(os.str());
  std::string header, sep, row;
  std::getline(is, header);
  std::getline(is, sep);
  std::getline(is, row);
  EXPECT_EQ(header.size(), row.size());  // aligned columns
}

TEST(TsvBlock, StructureIsParseable) {
  TsvBlock b("my series", {"epoch", "value"});
  b.add_row({"0", "1.5"});
  b.add_row({"100", "2.5"});
  std::ostringstream os;
  b.print(os);
  std::istringstream is(os.str());
  std::string line;
  std::getline(is, line);
  EXPECT_EQ(line, "# my series");
  std::getline(is, line);
  EXPECT_EQ(line, "epoch\tvalue");
  std::getline(is, line);
  EXPECT_EQ(line, "0\t1.5");
  std::getline(is, line);
  EXPECT_EQ(line, "100\t2.5");
  std::getline(is, line);
  EXPECT_TRUE(line.empty());  // trailing blank line terminates the block
}

TEST(TsvBlock, RowsPaddedToColumnCount) {
  TsvBlock b("t", {"a", "b", "c"});
  b.add_row({"1"});
  std::ostringstream os;
  b.print(os);
  // The padded row has exactly two tabs.
  std::istringstream is(os.str());
  std::string line;
  std::getline(is, line);  // title
  std::getline(is, line);  // header
  std::getline(is, line);  // row
  EXPECT_EQ(std::count(line.begin(), line.end(), '\t'), 2);
}

}  // namespace
}  // namespace dirq::metrics

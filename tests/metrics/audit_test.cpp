// Per-query accuracy accounting (paper §7.1): set intersection of the
// should-reach set vs the delivered set, plus the derived Fig. 5/7 ratios.
#include "metrics/audit.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/rng.hpp"
#include "sim/types.hpp"

namespace dirq::metrics {
namespace {

QueryAudit audit(const std::vector<NodeId>& should,
                 const std::vector<NodeId>& received) {
  return audit_query(should, received);
}

TEST(QueryAudit, PerfectDelivery) {
  const QueryAudit a = audit({1, 2, 5}, {1, 2, 5});
  EXPECT_EQ(a.should_count, 3u);
  EXPECT_EQ(a.received_count, 3u);
  EXPECT_EQ(a.correct, 3u);
  EXPECT_EQ(a.wrong, 0u);
  EXPECT_EQ(a.missed, 0u);
  EXPECT_DOUBLE_EQ(a.overshoot_pct(), 0.0);
  EXPECT_DOUBLE_EQ(a.reach_ratio_pct(), 100.0);
  EXPECT_DOUBLE_EQ(a.coverage_pct(), 100.0);
}

TEST(QueryAudit, BothEmpty) {
  const QueryAudit a = audit({}, {});
  EXPECT_EQ(a.correct, 0u);
  EXPECT_EQ(a.wrong, 0u);
  EXPECT_EQ(a.missed, 0u);
  // Empty should-set: the ratios use their guarded defaults.
  EXPECT_DOUBLE_EQ(a.overshoot_pct(), 0.0);
  EXPECT_DOUBLE_EQ(a.reach_ratio_pct(), 100.0);
  EXPECT_DOUBLE_EQ(a.coverage_pct(), 100.0);
}

TEST(QueryAudit, EmptyShouldWithDeliveriesCountsAllWrong) {
  const QueryAudit a = audit({}, {3, 4});
  EXPECT_EQ(a.wrong, 2u);
  EXPECT_EQ(a.correct, 0u);
  EXPECT_DOUBLE_EQ(a.overshoot_pct(), 0.0);  // guarded: no should-set
}

TEST(QueryAudit, NothingDeliveredIsAllMissed) {
  const QueryAudit a = audit({2, 4, 6}, {});
  EXPECT_EQ(a.missed, 3u);
  EXPECT_EQ(a.correct, 0u);
  EXPECT_DOUBLE_EQ(a.coverage_pct(), 0.0);
  EXPECT_DOUBLE_EQ(a.reach_ratio_pct(), 0.0);
}

TEST(QueryAudit, DisjointSets) {
  const QueryAudit a = audit({1, 3}, {2, 4, 6});
  EXPECT_EQ(a.correct, 0u);
  EXPECT_EQ(a.wrong, 3u);
  EXPECT_EQ(a.missed, 2u);
  EXPECT_DOUBLE_EQ(a.overshoot_pct(), 150.0);
  EXPECT_DOUBLE_EQ(a.coverage_pct(), 0.0);
}

TEST(QueryAudit, PartialOverlap) {
  const QueryAudit a = audit({1, 3, 5, 7}, {3, 4, 5, 8, 9});
  EXPECT_EQ(a.correct, 2u);
  EXPECT_EQ(a.wrong, 3u);
  EXPECT_EQ(a.missed, 2u);
  EXPECT_DOUBLE_EQ(a.overshoot_pct(), 75.0);
  EXPECT_DOUBLE_EQ(a.reach_ratio_pct(), 125.0);
  EXPECT_DOUBLE_EQ(a.coverage_pct(), 50.0);
}

TEST(QueryAudit, OvershootCanExceedHundredPct) {
  const QueryAudit a = audit({1, 2}, {1, 2, 3, 4, 5});
  EXPECT_EQ(a.wrong, 3u);
  EXPECT_DOUBLE_EQ(a.overshoot_pct(), 150.0);
  EXPECT_DOUBLE_EQ(a.reach_ratio_pct(), 250.0);
}

TEST(QueryAudit, CountsReconcileOnRandomSortedSets) {
  // Structural identities: correct + wrong == |received| and
  // correct + missed == |should| for arbitrary sorted duplicate-free sets.
  sim::Rng rng(2024);
  for (int round = 0; round < 50; ++round) {
    std::vector<NodeId> should, received;
    for (NodeId id = 0; id < 200; ++id) {
      if (rng.bernoulli(0.3)) should.push_back(id);
      if (rng.bernoulli(0.3)) received.push_back(id);
    }
    const QueryAudit a = audit(should, received);
    EXPECT_EQ(a.correct + a.wrong, a.received_count);
    EXPECT_EQ(a.correct + a.missed, a.should_count);
    EXPECT_LE(a.correct, std::min(a.should_count, a.received_count));
  }
}

}  // namespace
}  // namespace dirq::metrics

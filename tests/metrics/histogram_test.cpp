// LatencyHistogram: exact small-value quantiles, log-bucket geometry,
// determinism of the streaming quantile, and merge associativity.
#include "metrics/histogram.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace dirq::metrics {
namespace {

TEST(LatencyHistogram, EmptyIsAllZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.quantile(0.5), 0);
  EXPECT_EQ(h.quantile(0.99), 0);
}

TEST(LatencyHistogram, SmallValuesAreExact) {
  LatencyHistogram h;
  for (std::int64_t v : {0, 1, 2, 3, 4, 5, 6, 7, 8, 9}) h.record(v);
  EXPECT_EQ(h.count(), 10);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 9);
  EXPECT_DOUBLE_EQ(h.mean(), 4.5);
  // rank = ceil(q * 10): p50 -> rank 5 -> value 4; p90 -> rank 9 -> 8.
  EXPECT_EQ(h.quantile(0.5), 4);
  EXPECT_EQ(h.quantile(0.9), 8);
  EXPECT_EQ(h.quantile(1.0), 9);
  EXPECT_EQ(h.quantile(0.0), 0);
}

TEST(LatencyHistogram, ConstantStreamReportsTheConstant) {
  LatencyHistogram h;
  for (int i = 0; i < 1000; ++i) h.record(20);
  EXPECT_EQ(h.quantile(0.5), 20);
  EXPECT_EQ(h.quantile(0.99), 20);
  EXPECT_EQ(h.min(), 20);
  EXPECT_EQ(h.max(), 20);
}

TEST(LatencyHistogram, BucketGeometryRoundTrips) {
  // Exact region: identity.
  for (std::int64_t v = 0; v < 64; ++v) {
    EXPECT_EQ(LatencyHistogram::bucket_index(v), static_cast<std::size_t>(v));
    EXPECT_EQ(LatencyHistogram::bucket_floor(static_cast<std::size_t>(v)), v);
  }
  // Log region: floor(bucket(v)) <= v, within 12.5% below, and floors are
  // monotone in the bucket index.
  for (std::int64_t v : std::vector<std::int64_t>{
           64, 65, 71, 72, 100, 1000, 123456, std::int64_t{1} << 40}) {
    const std::size_t b = LatencyHistogram::bucket_index(v);
    const std::int64_t floor = LatencyHistogram::bucket_floor(b);
    EXPECT_LE(floor, v);
    EXPECT_GT(floor, v - v / 8 - 1) << "v=" << v;
    EXPECT_LT(floor, LatencyHistogram::bucket_floor(b + 1));
  }
}

TEST(LatencyHistogram, QuantileClampsToObservedRange) {
  LatencyHistogram h;
  h.record(70);  // bucket floor is 64, but min is 70
  EXPECT_EQ(h.quantile(0.5), 70);
  EXPECT_EQ(h.quantile(1.0), 70);
}

TEST(LatencyHistogram, RejectsNegativeSamples) {
  LatencyHistogram h;
  EXPECT_THROW(h.record(-1), std::invalid_argument);
}

TEST(LatencyHistogram, MergeMatchesCombinedStream) {
  LatencyHistogram a, b, combined;
  for (std::int64_t v = 0; v < 200; v += 3) {
    a.record(v);
    combined.record(v);
  }
  for (std::int64_t v = 1; v < 5000; v += 7) {
    b.record(v);
    combined.record(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_EQ(a.min(), combined.min());
  EXPECT_EQ(a.max(), combined.max());
  EXPECT_DOUBLE_EQ(a.mean(), combined.mean());
  for (double q : {0.1, 0.5, 0.9, 0.95, 0.99}) {
    EXPECT_EQ(a.quantile(q), combined.quantile(q)) << "q=" << q;
  }
}

TEST(LatencyHistogram, MergeIntoEmptyAndFromEmpty) {
  LatencyHistogram a, b;
  b.record(5);
  b.record(7);
  a.merge(b);  // into empty
  EXPECT_EQ(a.count(), 2);
  EXPECT_EQ(a.min(), 5);
  EXPECT_EQ(a.max(), 7);
  LatencyHistogram empty;
  a.merge(empty);  // from empty: no-op
  EXPECT_EQ(a.count(), 2);
  EXPECT_EQ(a.max(), 7);
}

}  // namespace
}  // namespace dirq::metrics

// Open-loop arrival stream: seeded determinism, Poisson rate, burst
// thinning, pool recurrence/subsetting, and TSV trace replay.
#include "serve/trace_gen.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "data/field_model.hpp"
#include "net/placement.hpp"
#include "query/workload.hpp"
#include "sim/rng.hpp"

namespace dirq::serve {
namespace {

struct World {
  net::Topology topo;
  net::SpanningTree tree;
  data::Environment env;
  query::WorkloadGenerator workload;

  explicit World(std::uint64_t seed)
      : topo(make_topo(seed)),
        tree(topo, 0),
        env(topo, 4, sim::Rng(seed).substream("env")),
        workload(topo, tree, env, query::WorkloadConfig{0.4, 0.02},
                 sim::Rng(seed).substream("workload")) {
    env.advance_to(0);
  }

  static net::Topology make_topo(std::uint64_t seed) {
    sim::Rng rng(seed);
    return net::random_connected(net::RandomPlacementConfig{}, rng);
  }
};

std::vector<Arrival> drain_all(TraceGen& gen, std::int64_t horizon) {
  std::vector<Arrival> out;
  for (std::int64_t e = 0; e <= horizon; ++e) gen.drain_until(e, out);
  return out;
}

TEST(TraceGenConfig, RejectsBadKnobs) {
  TraceGenConfig cfg;
  cfg.rate = 0.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = {};
  cfg.pool_size = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = {};
  cfg.subset_fraction = 1.5;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = {};
  cfg.shape = ArrivalShape::Burst;
  cfg.burst_length_epochs = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = {};
  cfg.multi_attr_fraction = 0.5;
  cfg.multi_attr_count = 1;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(TraceGen, SameSeedSameStream) {
  World w(42);
  TraceGenConfig cfg;
  cfg.rate = 5.0;
  TraceGen a(cfg, w.workload, sim::Rng(9));
  World w2(42);
  TraceGen b(cfg, w2.workload, sim::Rng(9));
  const std::vector<Arrival> sa = drain_all(a, 200);
  const std::vector<Arrival> sb = drain_all(b, 200);
  ASSERT_EQ(sa.size(), sb.size());
  ASSERT_GT(sa.size(), 0u);
  for (std::size_t i = 0; i < sa.size(); ++i) {
    EXPECT_EQ(sa[i].epoch, sb[i].epoch);
    EXPECT_EQ(sa[i].multi, sb[i].multi);
    EXPECT_EQ(sa[i].range.type, sb[i].range.type);
    EXPECT_DOUBLE_EQ(sa[i].range.lo, sb[i].range.lo);
    EXPECT_DOUBLE_EQ(sa[i].range.hi, sb[i].range.hi);
  }
}

TEST(TraceGen, PoissonMeanRateIsRoughlyRight) {
  World w(42);
  TraceGenConfig cfg;
  cfg.rate = 10.0;
  TraceGen gen(cfg, w.workload, sim::Rng(1));
  const std::vector<Arrival> s = drain_all(gen, 999);
  // 10 arrivals/epoch over 1000 epochs; allow a wide stochastic band.
  EXPECT_GT(s.size(), 9000u);
  EXPECT_LT(s.size(), 11000u);
  // Arrival epochs are monotone non-decreasing and within the horizon.
  for (std::size_t i = 1; i < s.size(); ++i) {
    EXPECT_LE(s[i - 1].epoch, s[i].epoch);
  }
  EXPECT_LE(s.back().epoch, 999);
}

TEST(TraceGen, BurstShapeKeepsTheGapSilent) {
  World w(42);
  TraceGenConfig cfg;
  cfg.rate = 8.0;
  cfg.shape = ArrivalShape::Burst;
  cfg.burst_length_epochs = 20;
  cfg.burst_gap_epochs = 80;
  TraceGen gen(cfg, w.workload, sim::Rng(3));
  const std::vector<Arrival> s = drain_all(gen, 499);
  ASSERT_GT(s.size(), 0u);
  for (const Arrival& a : s) {
    EXPECT_LT(a.epoch % 100, 20) << "arrival in the silent gap";
  }
  // Thinned mean rate: 8 * 20/100 = 1.6/epoch over 500 epochs ~ 800.
  EXPECT_GT(s.size(), 500u);
  EXPECT_LT(s.size(), 1100u);
}

TEST(TraceGen, SubsetArrivalsNarrowToTheMiddleHalf) {
  World w(42);
  TraceGenConfig cfg;
  cfg.rate = 5.0;
  cfg.pool_size = 4;  // tiny pool: every base window recurs often
  cfg.subset_fraction = 0.5;
  TraceGen gen(cfg, w.workload, sim::Rng(5));
  const std::vector<Arrival> s = drain_all(gen, 400);
  ASSERT_GT(s.size(), 100u);
  // Some pair of arrivals must be (base window, its middle half): same
  // type, sub.lo == base.lo + (hi-lo)/4 and sub.hi == base.hi - (hi-lo)/4.
  bool found_pair = false;
  for (std::size_t i = 0; i < s.size() && !found_pair; ++i) {
    const double quarter = (s[i].range.hi - s[i].range.lo) / 4.0;
    for (std::size_t j = 0; j < s.size(); ++j) {
      if (s[j].range.type == s[i].range.type &&
          s[j].range.lo == s[i].range.lo + quarter &&
          s[j].range.hi == s[i].range.hi - quarter) {
        found_pair = true;
        break;
      }
    }
  }
  EXPECT_TRUE(found_pair);
}

TEST(TraceGen, MultiAttrSliceEmitsConjunctions) {
  World w(42);
  TraceGenConfig cfg;
  cfg.rate = 5.0;
  cfg.multi_attr_fraction = 0.5;
  cfg.multi_attr_count = 2;
  TraceGen gen(cfg, w.workload, sim::Rng(7));
  const std::vector<Arrival> s = drain_all(gen, 200);
  std::size_t multi = 0;
  for (const Arrival& a : s) {
    if (a.multi) {
      ++multi;
      EXPECT_EQ(a.multi_q.predicates.size(), 2u);
    }
  }
  EXPECT_GT(multi, 0u);
  EXPECT_LT(multi, s.size());
}

TEST(TraceGen, ReplayRoundTripsATsvTrace) {
  std::istringstream tsv(
      "epoch\ttype\tlo\thi\n"
      "0\t0\t20\t25\n"
      "0\t1\t40\t60\n"
      "7\t0\t22\t23\n"
      "7\t2\t1\t2\n"
      "19\t0\t20\t25\n");
  std::vector<Arrival> recorded = TraceGen::load_trace(tsv);
  ASSERT_EQ(recorded.size(), 5u);
  EXPECT_EQ(recorded[2].epoch, 7);
  EXPECT_EQ(recorded[2].range.type, 0);
  EXPECT_DOUBLE_EQ(recorded[2].range.lo, 22.0);
  EXPECT_DOUBLE_EQ(recorded[2].range.hi, 23.0);

  TraceGen gen(TraceGenConfig{}, std::move(recorded));
  std::vector<Arrival> out;
  gen.drain_until(0, out);
  EXPECT_EQ(out.size(), 2u);
  gen.drain_until(6, out);
  EXPECT_EQ(out.size(), 2u);  // nothing between 1 and 6
  gen.drain_until(19, out);
  EXPECT_EQ(out.size(), 5u);
  EXPECT_EQ(gen.emitted(), 5);
}

TEST(TraceGen, LoadTraceRejectsMalformedInput) {
  std::istringstream empty("");
  EXPECT_THROW(TraceGen::load_trace(empty), std::runtime_error);
  std::istringstream junk("header\n1\t0\tnot-a-number\t5\n");
  EXPECT_THROW(TraceGen::load_trace(junk), std::runtime_error);
  std::istringstream backwards("header\n9\t0\t1\t2\n3\t0\t1\t2\n");
  EXPECT_THROW(TraceGen::load_trace(backwards), std::runtime_error);
  std::istringstream inverted("header\n1\t0\t5\t2\n");
  EXPECT_THROW(TraceGen::load_trace(inverted), std::runtime_error);
}

}  // namespace
}  // namespace dirq::serve

// ResultCache semantics: freshness via the update-counter snapshot,
// containment filtering by stored own tuples, staleness expiry, FIFO
// eviction, and the stats ledger.
#include "serve/cache.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace dirq::serve {
namespace {

std::vector<CachedSource> three_sources() {
  // Own tuples chosen so sub-window filtering is observable:
  //   node 3: [10, 15], node 5: [18, 22], node 9: [24, 30]
  return {{5, 18.0, 22.0}, {3, 10.0, 15.0}, {9, 24.0, 30.0}};
}

TEST(ResultCache, MissOnEmptyAndOnNonContainingEntry) {
  ResultCache cache(8, 64);
  EXPECT_EQ(cache.lookup(0, 10.0, 20.0, 0, 0).kind, CacheLookup::Kind::Miss);
  cache.insert(0, 10.0, 20.0, 0, 0, 0, three_sources());
  // Wider than the stored window -> not answerable by containment.
  EXPECT_EQ(cache.lookup(0, 5.0, 20.0, 1, 0).kind, CacheLookup::Kind::Miss);
  // Different type -> miss even with identical bounds.
  EXPECT_EQ(cache.lookup(1, 10.0, 20.0, 1, 0).kind, CacheLookup::Kind::Miss);
  EXPECT_EQ(cache.stats().misses, 3);
  EXPECT_EQ(cache.stats().insertions, 1);
}

TEST(ResultCache, FreshExactHitReturnsAllSourcesSorted) {
  ResultCache cache(8, 64);
  cache.insert(0, 10.0, 30.0, 2, 5, 17, three_sources());
  const CacheLookup hit = cache.lookup(0, 10.0, 30.0, 6, 17);
  EXPECT_EQ(hit.kind, CacheLookup::Kind::Fresh);
  EXPECT_EQ(hit.tree, 2);
  EXPECT_EQ(hit.answer, (std::vector<NodeId>{3, 5, 9}));
  EXPECT_EQ(cache.stats().fresh_hits, 1);
  EXPECT_EQ(cache.stats().containment_hits, 0);
}

TEST(ResultCache, ContainmentFiltersByStoredTuples) {
  ResultCache cache(8, 64);
  cache.insert(0, 10.0, 30.0, 0, 0, 0, three_sources());
  // [16, 23] overlaps node 5's [18, 22] only.
  const CacheLookup hit = cache.lookup(0, 16.0, 23.0, 1, 0);
  EXPECT_EQ(hit.kind, CacheLookup::Kind::Fresh);
  EXPECT_EQ(hit.answer, (std::vector<NodeId>{5}));
  EXPECT_EQ(cache.stats().containment_hits, 1);
  // [14, 25] clips all three tuples.
  EXPECT_EQ(cache.lookup(0, 14.0, 25.0, 1, 0).answer,
            (std::vector<NodeId>{3, 5, 9}));
  // [15.5, 17.5] falls between tuples: a hit with an empty answer.
  const CacheLookup gap = cache.lookup(0, 15.5, 17.5, 1, 0);
  EXPECT_EQ(gap.kind, CacheLookup::Kind::Fresh);
  EXPECT_TRUE(gap.answer.empty());
}

TEST(ResultCache, MovedUpdateCounterDegradesToStaleThenExpires) {
  ResultCache cache(8, 10);
  cache.insert(0, 10.0, 30.0, 0, 100, 17, three_sources());
  // Counter unmoved: Fresh at any age.
  EXPECT_EQ(cache.lookup(0, 10.0, 30.0, 5000, 17).kind,
            CacheLookup::Kind::Fresh);
  // Counter moved, age within the bound: Stale (still answered).
  EXPECT_EQ(cache.lookup(0, 10.0, 30.0, 105, 18).kind,
            CacheLookup::Kind::Stale);
  EXPECT_EQ(cache.stats().stale_hits, 1);
  // Counter moved, age beyond the bound: expired -> miss.
  const CacheLookup old = cache.lookup(0, 10.0, 30.0, 111, 18);
  EXPECT_EQ(old.kind, CacheLookup::Kind::Miss);
  EXPECT_EQ(cache.stats().expired, 1);
  EXPECT_EQ(cache.stats().misses, 1);
}

TEST(ResultCache, FreshEntryBeatsAnEarlierStaleOne) {
  ResultCache cache(8, 64);
  cache.insert(0, 10.0, 30.0, 0, 0, 5, three_sources());   // stale at t=9
  cache.insert(0, 10.0, 30.0, 1, 8, 9, three_sources());   // fresh at t=9
  const CacheLookup hit = cache.lookup(0, 12.0, 20.0, 9, 9);
  EXPECT_EQ(hit.kind, CacheLookup::Kind::Fresh);
  EXPECT_EQ(hit.tree, 1);
}

TEST(ResultCache, FifoEvictionBoundsTheCache) {
  ResultCache cache(4, 64);
  for (int i = 0; i < 10; ++i) {
    cache.insert(0, 10.0 * i, 10.0 * i + 5.0, 0, i, 0, {});
  }
  EXPECT_EQ(cache.size(), 4u);
  EXPECT_EQ(cache.stats().evictions, 6);
  // The oldest six windows are gone; the newest four remain.
  EXPECT_EQ(cache.lookup(0, 0.0, 5.0, 10, 0).kind, CacheLookup::Kind::Miss);
  EXPECT_EQ(cache.lookup(0, 90.0, 95.0, 10, 0).kind,
            CacheLookup::Kind::Fresh);
}

TEST(ResultCache, InvalidateAllDropsEverything) {
  ResultCache cache(8, 64);
  cache.insert(0, 10.0, 30.0, 0, 0, 0, three_sources());
  ASSERT_EQ(cache.lookup(0, 10.0, 30.0, 1, 0).kind, CacheLookup::Kind::Fresh);
  cache.invalidate_all();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.lookup(0, 10.0, 30.0, 1, 0).kind, CacheLookup::Kind::Miss);
}

TEST(ResultCache, RejectsDegenerateConstruction) {
  EXPECT_THROW(ResultCache(0, 64), std::invalid_argument);
  EXPECT_THROW(ResultCache(8, -1), std::invalid_argument);
}

}  // namespace
}  // namespace dirq::serve

// The serve plane end-to-end: byte-identical dirq.serve.v1 output across
// runs and thread counts, cache answers bitwise-equal to live injection,
// churn invalidation, and bounded overload with monotone tail latency.
#include "serve/server.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/network.hpp"
#include "net/placement.hpp"
#include "serve/front_end.hpp"
#include "sim/rng.hpp"

namespace dirq::serve {
namespace {

ServeConfig small_config() {
  ServeConfig cfg;
  cfg.exp.seed = 7;
  cfg.exp.placement.node_count = 30;
  cfg.exp.network.mode = core::NetworkConfig::ThetaMode::Fixed;
  cfg.exp.network.fixed_pct = 5.0;
  cfg.exp.keep_records = false;
  cfg.duration_epochs = 400;
  cfg.trace.rate = 10.0;
  return cfg;
}

std::string run_to_json(const ServeConfig& cfg) {
  const ServeResults res = Server(cfg).run();
  std::ostringstream os;
  write_serve_json(cfg, res, os);
  return os.str();
}

TEST(ServeDeterminism, SameConfigSameBytes) {
  const ServeConfig cfg = small_config();
  const std::string a = run_to_json(cfg);
  const std::string b = run_to_json(cfg);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("\"schema\": \"dirq.serve.v1\""), std::string::npos);
  EXPECT_NE(a.find("\"qps\""), std::string::npos);
  EXPECT_NE(a.find("\"p99\""), std::string::npos);
}

TEST(ServeDeterminism, ThreadCountNeverChangesTheBytes) {
  ServeConfig cfg = small_config();
  const std::string one = run_to_json(cfg);
  cfg.exp.threads = 4;
  const std::string four = run_to_json(cfg);
  EXPECT_EQ(one, four);
}

TEST(ServeDeterminism, DifferentSeedsDiverge) {
  ServeConfig cfg = small_config();
  const std::string a = run_to_json(cfg);
  cfg.exp.seed = 8;
  const std::string b = run_to_json(cfg);
  EXPECT_NE(a, b);
}

TEST(ServeConfigValidation, RejectsUnsupportedBackends) {
  ServeConfig cfg = small_config();
  cfg.exp.transport = core::TransportKind::Lmac;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = small_config();
  cfg.exp.loss_rate = 0.2;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = small_config();
  cfg.duration_epochs = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

// The containment theorem, tested against the live network: a cached
// superset answer filtered by stored tuples must be bitwise-equal to what
// injecting the subset query would have returned, as long as the update
// counter has not moved.
TEST(ServeCacheCorrectness, CachedAnswersMatchLiveInjection) {
  sim::Rng rng(7);
  net::RandomPlacementConfig placement;
  placement.node_count = 30;
  net::Topology topo = net::random_connected(placement, rng);
  data::Environment env(topo, 4, rng.substream("environment"));
  core::NetworkConfig ncfg;
  ncfg.mode = core::NetworkConfig::ThetaMode::Fixed;
  ncfg.fixed_pct = 5.0;
  core::DirqNetwork network(topo, NodeId{0}, ncfg);
  for (std::int64_t e = 0; e < 50; ++e) {
    env.advance_to(e);
    network.process_epoch(env, e);
  }

  const query::RangeQuery wide{1, kSensorTemperature, 15.0, 30.0, 50};
  const core::QueryOutcome wide_out = network.inject(wide, 50);
  std::vector<CachedSource> sources;
  for (NodeId n : wide_out.believed_sources) {
    const core::RangeTable* t = network.node(n).table(0, wide.type);
    ASSERT_NE(t, nullptr);
    ASSERT_TRUE(t->own().has_value());
    sources.push_back({n, t->own()->min, t->own()->max});
  }
  ResultCache cache(16, 64);
  cache.insert(wide.type, wide.lo, wide.hi, 0, 50,
               network.updates_transmitted(), std::move(sources));

  // Exact re-ask: identical to the captured believed set.
  const CacheLookup same =
      cache.lookup(wide.type, wide.lo, wide.hi, 50,
                   network.updates_transmitted());
  ASSERT_EQ(same.kind, CacheLookup::Kind::Fresh);
  EXPECT_EQ(same.answer, wide_out.believed_sources);

  // Strict subsets: filtered cached answer == live injection, bitwise
  // (collect_outcome sorts believed_sources, the cache sorts by node).
  for (const auto& [lo, hi] : std::vector<std::pair<double, double>>{
           {18.0, 27.0}, {15.0, 20.0}, {22.0, 22.5}}) {
    const query::RangeQuery sub{2, kSensorTemperature, lo, hi, 50};
    const core::QueryOutcome live = network.inject(sub, 50);
    const CacheLookup hit =
        cache.lookup(sub.type, lo, hi, 50, network.updates_transmitted());
    ASSERT_EQ(hit.kind, CacheLookup::Kind::Fresh) << lo << ".." << hi;
    EXPECT_EQ(hit.answer, live.believed_sources) << lo << ".." << hi;
  }

  // Once the update counter moves the entry is only Stale — served inside
  // the bound, refused beyond it.
  const std::int64_t updates_before = network.updates_transmitted();
  for (std::int64_t e = 50; e < 80; ++e) {
    env.advance_to(e);
    network.process_epoch(env, e);
  }
  ASSERT_GT(network.updates_transmitted(), updates_before);
  EXPECT_EQ(cache
                .lookup(wide.type, wide.lo, wide.hi, 80,
                        network.updates_transmitted())
                .kind,
            CacheLookup::Kind::Stale);
  EXPECT_EQ(cache
                .lookup(wide.type, wide.lo, wide.hi, 50 + 65,
                        network.updates_transmitted())
                .kind,
            CacheLookup::Kind::Miss);
}

TEST(ServeFrontEnd, ChurnInvalidatesTheCache) {
  sim::Rng rng(7);
  net::RandomPlacementConfig placement;
  placement.node_count = 30;
  net::Topology topo = net::random_connected(placement, rng);
  data::Environment env(topo, 4, rng.substream("environment"));
  core::NetworkConfig ncfg;
  ncfg.mode = core::NetworkConfig::ThetaMode::Fixed;
  ncfg.fixed_pct = 5.0;
  core::DirqNetwork network(topo, NodeId{0}, ncfg);
  env.advance_to(0);
  network.process_epoch(env, 0);
  core::QueryAdmission admission(core::RoutingPolicy::Admission,
                                 network.trees());
  FrontEnd fe(FrontEndConfig{}, network, admission);

  Arrival a;
  a.epoch = 0;
  a.range = query::RangeQuery{0, kSensorTemperature, 10.0, 35.0, 0};
  fe.offer(a);
  fe.on_boundary(0);
  EXPECT_EQ(fe.totals().injected, 1);
  EXPECT_EQ(fe.totals().cache_answered, 0);

  fe.offer(a);
  fe.on_boundary(0);
  EXPECT_EQ(fe.totals().injected, 1);  // served from cache
  EXPECT_EQ(fe.totals().cache_answered, 1);

  fe.notify_churn();
  fe.offer(a);
  fe.on_boundary(0);
  EXPECT_EQ(fe.totals().injected, 2);  // cache was dropped
  EXPECT_EQ(fe.totals().cache_answered, 1);
  EXPECT_EQ(fe.totals().answered, 3);
}

TEST(ServeOverload, QueueStaysBoundedAndShedsExcess) {
  ServeConfig cfg = small_config();
  cfg.duration_epochs = 300;
  cfg.trace.rate = 50.0;
  cfg.front_end.cache_enabled = false;
  cfg.front_end.max_inject_per_boundary = 2;
  cfg.front_end.max_queue = 64;
  const ServeResults res = Server(cfg).run();
  EXPECT_GT(res.totals.shed, 0);
  EXPECT_LE(res.totals.peak_queue_depth, 64);
  EXPECT_EQ(res.totals.arrived,
            res.totals.answered + res.totals.shed + res.final_queue_depth);
  // Saturated service: every boundary spends its full budget.
  EXPECT_EQ(res.totals.injected, res.totals.answered);
}

TEST(ServeOverload, TailLatencyIsMonotoneInOfferedRate) {
  std::vector<std::int64_t> p99s;
  for (double rate : {1.0, 20.0, 60.0}) {
    ServeConfig cfg = small_config();
    cfg.duration_epochs = 300;
    cfg.trace.rate = rate;
    cfg.front_end.cache_enabled = false;
    cfg.front_end.max_inject_per_boundary = 2;
    const ServeResults res = Server(cfg).run();
    p99s.push_back(res.latency.quantile(0.99));
  }
  EXPECT_LE(p99s[0], p99s[1]);
  EXPECT_LE(p99s[1], p99s[2]);
  EXPECT_GT(p99s[2], p99s[0]);  // overload must actually show up
}

TEST(ServeCache, CacheOnStrictlyBeatsCacheOffUnderOverload) {
  ServeConfig cfg = small_config();
  cfg.duration_epochs = 300;
  cfg.trace.rate = 40.0;
  cfg.front_end.max_inject_per_boundary = 2;
  cfg.front_end.cache_enabled = true;
  const ServeResults on = Server(cfg).run();
  cfg.front_end.cache_enabled = false;
  const ServeResults off = Server(cfg).run();
  // Identical arrival stream (same seed, cache doesn't touch the trace).
  EXPECT_EQ(on.totals.arrived, off.totals.arrived);
  EXPECT_GT(on.totals.answered, off.totals.answered);
  EXPECT_GT(on.qps(), off.qps());
  EXPECT_GT(on.cache.hits(), 0);
}

TEST(ServeSinks, MultiSinkRunSplitsInjectionAcrossRoots) {
  ServeConfig cfg = small_config();
  cfg.duration_epochs = 300;
  cfg.exp.sink_count = 3;
  cfg.front_end.cache_enabled = false;  // force real injections everywhere
  const ServeResults res = Server(cfg).run();
  ASSERT_EQ(res.sinks.size(), 3u);
  std::int64_t injected = 0, answered = 0;
  std::size_t active_sinks = 0;
  for (const ServeSinkStats& s : res.sinks) {
    injected += s.injected;
    answered += s.latency.count();
    if (s.injected > 0) ++active_sinks;
  }
  EXPECT_EQ(injected, res.totals.injected);
  EXPECT_EQ(answered, res.totals.answered);
  EXPECT_GT(active_sinks, 1u);  // admission actually spreads the load
}

}  // namespace
}  // namespace dirq::serve

// Section-5 closed forms, including the paper's worked example
// (k=2, d=4 -> fMax ~ 0.76) and cross-checks against first principles.
#include "analysis/cost_model.hpp"

#include <gtest/gtest.h>

namespace dirq::analysis {
namespace {

TEST(Ipow, Basics) {
  EXPECT_EQ(ipow(2, 0), 1);
  EXPECT_EQ(ipow(2, 10), 1024);
  EXPECT_EQ(ipow(3, 4), 81);
  EXPECT_EQ(ipow(1, 100), 1);
  EXPECT_EQ(ipow(0, 3), 0);
}

TEST(Ipow, RejectsNegative) {
  EXPECT_THROW(ipow(-2, 3), std::invalid_argument);
  EXPECT_THROW(ipow(2, -1), std::invalid_argument);
}

TEST(Ipow, DetectsOverflow) {
  EXPECT_THROW(ipow(10, 30), std::overflow_error);
}

TEST(TreeNodes, MatchesGeometricSum) {
  EXPECT_EQ(tree_nodes(2, 0), 1);
  EXPECT_EQ(tree_nodes(2, 4), 31);
  EXPECT_EQ(tree_nodes(3, 2), 13);
  EXPECT_EQ(tree_nodes(8, 2), 73);
}

TEST(TreeLeaves, IsKToTheD) {
  EXPECT_EQ(tree_leaves(2, 4), 16);
  EXPECT_EQ(tree_leaves(3, 3), 27);
}

TEST(FloodingCost, MatchesNPlusTwoLinks) {
  // Eq. (4) must equal Eq. (3) with links = N - 1 (a tree).
  for (std::int64_t k = 2; k <= 8; ++k) {
    for (std::int64_t d = 1; d <= 5; ++d) {
      const std::int64_t n = tree_nodes(k, d);
      EXPECT_EQ(flooding_cost(k, d), flooding_cost_graph(n, n - 1))
          << "k=" << k << " d=" << d;
    }
  }
}

TEST(FloodingCost, PaperExample) {
  // k=2, d=4: N=31, links=30 -> 31 + 60 = 91.
  EXPECT_EQ(flooding_cost(2, 4), 91);
}

TEST(CqdMax, FirstPrinciples) {
  // One multicast tx per internal node + one rx per non-root node.
  for (std::int64_t k = 2; k <= 8; ++k) {
    for (std::int64_t d = 1; d <= 5; ++d) {
      const std::int64_t n = tree_nodes(k, d);
      const std::int64_t internal = tree_nodes(k, d - 1);  // non-leaves
      EXPECT_EQ(cqd_max(k, d), internal + (n - 1)) << "k=" << k << " d=" << d;
    }
  }
}

TEST(CudMax, IsTwoPerTreeEdge) {
  for (std::int64_t k = 2; k <= 8; ++k) {
    for (std::int64_t d = 1; d <= 5; ++d) {
      const std::int64_t n = tree_nodes(k, d);
      EXPECT_EQ(cud_max(k, d), 2 * (n - 1)) << "k=" << k << " d=" << d;
    }
  }
}

TEST(FMax, PaperWorkedExample) {
  // Paper §5.3: "if k = 2 and d = 4, then fMax < 0.76".
  const double f = f_max(2, 4);
  EXPECT_NEAR(f, 46.0 / 60.0, 1e-12);
  EXPECT_GT(f, 0.75);
  EXPECT_LT(f, 0.78);
}

TEST(FMax, PositiveAcrossGrid) {
  for (std::int64_t k = 2; k <= 8; ++k) {
    for (std::int64_t d = 1; d <= 6; ++d) {
      EXPECT_GT(f_max(k, d), 0.0) << "k=" << k << " d=" << d;
    }
  }
}

TEST(CtdMax, AtFMaxEqualsFloodingCost) {
  for (std::int64_t k = 2; k <= 6; ++k) {
    for (std::int64_t d = 1; d <= 5; ++d) {
      EXPECT_NEAR(ctd_max(k, d, f_max(k, d)),
                  static_cast<double>(flooding_cost(k, d)), 1e-9)
          << "k=" << k << " d=" << d;
    }
  }
}

TEST(CtdMax, ZeroUpdatesIsJustDissemination) {
  EXPECT_DOUBLE_EQ(ctd_max(2, 4, 0.0), 45.0);
}

TEST(Validation, RejectsDegenerateTrees) {
  EXPECT_THROW(flooding_cost(1, 3), std::invalid_argument);
  EXPECT_THROW(cqd_max(0, 3), std::invalid_argument);
  EXPECT_THROW(cud_max(2, -1), std::invalid_argument);
}

TEST(GraphForms, MatchTreeFormsOnCompleteTrees) {
  for (std::int64_t k = 2; k <= 6; ++k) {
    for (std::int64_t d = 1; d <= 5; ++d) {
      const std::int64_t n = tree_nodes(k, d);
      const std::int64_t internal = tree_nodes(k, d - 1);
      EXPECT_EQ(cqd_max_graph(n, internal), cqd_max(k, d));
      EXPECT_EQ(cud_max_graph(n), cud_max(k, d));
      EXPECT_NEAR(f_max_graph(n, n - 1, internal), f_max(k, d), 1e-12);
    }
  }
}

TEST(GraphForms, DenserGraphsAllowMoreUpdates) {
  // Extra links raise flooding cost but not DirQ's tree costs, so fMax
  // grows: directed dissemination wins bigger on dense graphs.
  const double sparse = f_max_graph(50, 49, 20);
  const double dense = f_max_graph(50, 120, 20);
  EXPECT_GT(dense, sparse);
}

TEST(GraphForms, RejectBadInputs) {
  EXPECT_THROW(cqd_max_graph(5, 5), std::invalid_argument);
  EXPECT_THROW(cud_max_graph(0), std::invalid_argument);
  EXPECT_THROW(f_max_graph(1, 0, 0), std::invalid_argument);
}

}  // namespace
}  // namespace dirq::analysis

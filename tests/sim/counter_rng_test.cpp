// CounterRng: O(1) random access, stream independence, and the
// distribution contract of the popcount-based normal approximation.
#include "sim/counter_rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>
#include <vector>

#include "sim/stats.hpp"

namespace dirq::sim {
namespace {

TEST(CounterRng, DeterministicForSameSeed) {
  const CounterRng a(9);
  const CounterRng b(9);
  for (std::uint64_t c = 0; c < 100; ++c) {
    EXPECT_EQ(a.u64_at(c), b.u64_at(c));
    EXPECT_EQ(a.normal_at(c), b.normal_at(c));
  }
}

TEST(CounterRng, DifferentSeedsDiffer) {
  const CounterRng a(9);
  const CounterRng b(10);
  int same = 0;
  for (std::uint64_t c = 0; c < 100; ++c) {
    if (a.u64_at(c) == b.u64_at(c)) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(CounterRng, RandomAccessIsOrderIndependent) {
  // The whole point of the counter design: the value at a counter is a
  // pure function of the key, whatever was queried before it.
  const CounterRng rng(42);
  const double at_1000 = rng.normal_at(1000);
  const double at_7 = rng.normal_at(7);
  // Query in the opposite order, interleaved with unrelated counters.
  (void)rng.normal_at(999);
  EXPECT_EQ(rng.normal_at(7), at_7);
  (void)rng.normal_at(123456789);
  EXPECT_EQ(rng.normal_at(1000), at_1000);
}

TEST(CounterRng, SubstreamsAreIndependent) {
  const CounterRng root(42);
  const CounterRng a = root.substream("regional");
  const CounterRng b = root.substream("node-noise");
  EXPECT_NE(a.stream(), b.stream());
  int same = 0;
  for (std::uint64_t c = 0; c < 100; ++c) {
    if (a.u64_at(c) == b.u64_at(c)) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(CounterRng, IndexedSubstreamsAreIndependent) {
  const CounterRng root(42);
  const CounterRng a = root.substream("node", 1);
  const CounterRng b = root.substream("node", 2);
  EXPECT_NE(a.stream(), b.stream());
  EXPECT_NE(a.u64_at(0), b.u64_at(0));
  // Indexed and label-only derivations of the same label differ too.
  EXPECT_NE(root.substream("node").stream(), a.stream());
}

TEST(CounterRng, MatchesSplitMixStreaming) {
  // counter mode IS splitmix64: hashing stream + c*gamma must reproduce
  // the sequential splitmix outputs from the same starting state.
  const std::uint64_t seed = 0xDEADBEEFCAFEF00DULL;
  const CounterRng rng(seed);
  std::uint64_t state = seed;
  for (std::uint64_t c = 1; c <= 64; ++c) {
    const std::uint64_t sequential = splitmix64(state);
    EXPECT_EQ(rng.u64_at(c), sequential) << "counter " << c;
  }
}

TEST(CounterRng, UniformBoundsAndMean) {
  const CounterRng rng(7);
  RunningStat s;
  for (std::uint64_t c = 0; c < 100000; ++c) {
    const double u = rng.uniform_at(c);
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    s.push(u);
  }
  EXPECT_NEAR(s.mean(), 0.5, 0.01);
  EXPECT_NEAR(s.stddev(), std::sqrt(1.0 / 12.0), 0.01);
}

TEST(CounterRng, UniformRange) {
  const CounterRng rng(7);
  for (std::uint64_t c = 0; c < 1000; ++c) {
    const double u = rng.uniform_at(c, -3.0, 5.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 5.0);
  }
}

TEST(CounterRng, NormalMomentsAndShape) {
  // The documented contract: CLT gaussian (Binomial(64,1/2) + uniform
  // smoothing), unit variance, symmetric, near-gaussian central mass.
  const CounterRng rng(1234);
  RunningStat s;
  std::size_t inside_1sd = 0;
  std::size_t inside_2sd = 0;
  constexpr std::size_t kN = 200000;
  double skew_sum = 0.0;
  for (std::uint64_t c = 0; c < kN; ++c) {
    const double z = rng.normal_at(c);
    s.push(z);
    skew_sum += z * z * z;
    if (std::abs(z) < 1.0) ++inside_1sd;
    if (std::abs(z) < 2.0) ++inside_2sd;
  }
  EXPECT_NEAR(s.mean(), 0.0, 0.01);
  EXPECT_NEAR(s.stddev(), 1.0, 0.01);
  EXPECT_NEAR(skew_sum / static_cast<double>(kN), 0.0, 0.02);
  EXPECT_NEAR(static_cast<double>(inside_1sd) / kN, 0.6827, 0.01);
  EXPECT_NEAR(static_cast<double>(inside_2sd) / kN, 0.9545, 0.01);
}

TEST(CounterRng, NormalScaling) {
  const CounterRng rng(5);
  RunningStat s;
  for (std::uint64_t c = 0; c < 50000; ++c) {
    s.push(rng.normal_at(c, 10.0, 2.5));
  }
  EXPECT_NEAR(s.mean(), 10.0, 0.05);
  EXPECT_NEAR(s.stddev(), 2.5, 0.05);
}

TEST(CounterRng, AdjacentCountersAreDecorrelated) {
  // Neighbouring counters (the common access pattern: consecutive blocks)
  // must behave as independent draws.
  const CounterRng rng(99);
  double sum_xy = 0.0, sum_x = 0.0, sum_y = 0.0, sum_x2 = 0.0, sum_y2 = 0.0;
  constexpr std::size_t kN = 100000;
  for (std::uint64_t c = 0; c < kN; ++c) {
    const double x = rng.normal_at(c);
    const double y = rng.normal_at(c + 1);
    sum_xy += x * y;
    sum_x += x;
    sum_y += y;
    sum_x2 += x * x;
    sum_y2 += y * y;
  }
  const double n = static_cast<double>(kN);
  const double cov = sum_xy / n - (sum_x / n) * (sum_y / n);
  const double var_x = sum_x2 / n - (sum_x / n) * (sum_x / n);
  const double var_y = sum_y2 / n - (sum_y / n) * (sum_y / n);
  EXPECT_LT(std::abs(cov / std::sqrt(var_x * var_y)), 0.01);
}

TEST(CounterRng, ZeroSeedIsRemapped) {
  const CounterRng zero(0);
  EXPECT_NE(zero.stream(), 0u);
  // And behaves like any other stream (no degenerate constant output).
  EXPECT_NE(zero.u64_at(0), zero.u64_at(1));
}

}  // namespace
}  // namespace dirq::sim

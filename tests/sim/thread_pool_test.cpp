// sim::ThreadPool: the shared claiming loop under SweepRunner and the
// parallel epoch engine — coverage, reuse across jobs, deterministic
// exception reporting, size-1 inline execution.
#include "sim/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace dirq::sim {
namespace {

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(100, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SizeOneRunsInlineInOrder) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  std::vector<std::size_t> order;
  pool.parallel_for(5, [&](std::size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, ReusableAcrossJobs) {
  ThreadPool pool(3);
  for (int round = 0; round < 10; ++round) {
    std::atomic<int> sum{0};
    pool.parallel_for(17, [&](std::size_t i) {
      sum.fetch_add(static_cast<int>(i));
    });
    EXPECT_EQ(sum.load(), 17 * 16 / 2);
  }
}

TEST(ThreadPool, LowestIndexedExceptionWins) {
  ThreadPool pool(4);
  for (int round = 0; round < 5; ++round) {
    try {
      pool.parallel_for(32, [&](std::size_t i) {
        if (i % 7 == 3) throw std::runtime_error("idx " + std::to_string(i));
      });
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "idx 3");  // deterministic despite claiming
    }
  }
}

TEST(ThreadPool, CountBelowPoolSize) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(2);
  pool.parallel_for(2, [&](std::size_t i) { hits[i].fetch_add(1); });
  EXPECT_EQ(hits[0].load(), 1);
  EXPECT_EQ(hits[1].load(), 1);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "no indices"; });
}

TEST(ThreadPool, ResolveZeroMeansHardware) {
  EXPECT_GE(ThreadPool::resolve(0), 1u);
  EXPECT_EQ(ThreadPool::resolve(3), 3u);
}

}  // namespace
}  // namespace dirq::sim

// Rng determinism, substream independence, and distribution sanity.
#include "sim/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <set>
#include <vector>

namespace dirq::sim {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 2);
}

TEST(Rng, ZeroSeedIsUsable) {
  Rng a(0), b(0);
  EXPECT_EQ(a.next_u64(), b.next_u64());
  EXPECT_NE(a.next_u64(), 0u);
}

TEST(Rng, SubstreamsAreIndependentOfDrawCount) {
  Rng master(7);
  Rng a1 = master.substream("alpha");
  // Consuming from one substream must not perturb another derivation.
  Rng beta = master.substream("beta");
  for (int i = 0; i < 1000; ++i) beta.next_u64();
  Rng a2 = master.substream("alpha");
  for (int i = 0; i < 50; ++i) EXPECT_EQ(a1.next_u64(), a2.next_u64());
}

TEST(Rng, NamedSubstreamsDiffer) {
  Rng master(7);
  Rng a = master.substream("alpha");
  Rng b = master.substream("beta");
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 2);
}

TEST(Rng, IndexedSubstreamsDiffer) {
  Rng master(7);
  Rng a = master.substream("node", 1);
  Rng b = master.substream("node", 2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformRespectsBounds) {
  Rng r(99);
  for (int i = 0; i < 10000; ++i) {
    const double v = r.uniform(-3.0, 5.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng r(99);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(r.uniform_int(0, 5));
  EXPECT_EQ(seen.size(), 6u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 5);
}

TEST(Rng, NormalMatchesMoments) {
  Rng r(1234);
  double sum = 0.0, sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double v = r.normal(10.0, 2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.15);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng r(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.bernoulli(0.0));
    EXPECT_TRUE(r.bernoulli(1.0));
    EXPECT_FALSE(r.bernoulli(-0.5));
    EXPECT_TRUE(r.bernoulli(1.5));
  }
}

TEST(Rng, BernoulliRateIsRoughlyP) {
  Rng r(6);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += r.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ExponentialIsPositiveWithMeanOneOverLambda) {
  Rng r(8);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double v = r.exponential(2.0);
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng r(11);
  std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  std::vector<int> orig = v;
  r.shuffle(std::span<int>(v));
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Rng, PickReturnsContainedElement) {
  Rng r(12);
  const std::array<int, 4> items{10, 20, 30, 40};
  for (int i = 0; i < 100; ++i) {
    const int x = r.pick(std::span<const int>(items));
    EXPECT_TRUE(std::find(items.begin(), items.end(), x) != items.end());
  }
}

TEST(Splitmix64, AvalanchesOnSequentialSeeds) {
  std::uint64_t s1 = 1, s2 = 2;
  const std::uint64_t a = splitmix64(s1);
  const std::uint64_t b = splitmix64(s2);
  // Hamming distance should be near 32 for a good mixer.
  const int dist = __builtin_popcountll(a ^ b);
  EXPECT_GT(dist, 10);
  EXPECT_LT(dist, 54);
}

TEST(Fnv1a, DistinctLabelsDistinctHashes) {
  EXPECT_NE(fnv1a("placement"), fnv1a("workload"));
  EXPECT_NE(fnv1a(""), fnv1a(" "));
}

}  // namespace
}  // namespace dirq::sim

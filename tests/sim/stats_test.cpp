// Counter / RunningStat / Ewma / TimeSeries / Histogram behaviour.
#include "sim/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace dirq::sim {
namespace {

TEST(Counter, AccumulatesAndResets) {
  Counter c("msgs");
  c.add();
  c.add(4);
  EXPECT_EQ(c.value(), 5);
  EXPECT_EQ(c.name(), "msgs");
  c.reset();
  EXPECT_EQ(c.value(), 0);
}

TEST(RunningStat, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(RunningStat, SingleSample) {
  RunningStat s;
  s.push(42.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 42.0);
  EXPECT_DOUBLE_EQ(s.max(), 42.0);
}

TEST(RunningStat, KnownMoments) {
  RunningStat s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.push(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);        // population
  EXPECT_NEAR(s.sample_variance(), 4.5714, 1e-3);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStat, StableUnderLargeOffsets) {
  RunningStat s;
  const double offset = 1e9;
  for (double v : {1.0, 2.0, 3.0}) s.push(offset + v);
  EXPECT_NEAR(s.mean(), offset + 2.0, 1e-3);
  EXPECT_NEAR(s.variance(), 2.0 / 3.0, 1e-3);
}

TEST(Ewma, FirstSampleInitialises) {
  Ewma e(0.5);
  EXPECT_FALSE(e.initialized());
  e.push(10.0);
  EXPECT_TRUE(e.initialized());
  EXPECT_DOUBLE_EQ(e.value(), 10.0);
}

TEST(Ewma, ConvergesTowardConstant) {
  Ewma e(0.3);
  e.push(0.0);
  for (int i = 0; i < 50; ++i) e.push(100.0);
  EXPECT_NEAR(e.value(), 100.0, 1e-4);
}

TEST(Ewma, SmoothingWeight) {
  Ewma e(0.25);
  e.push(0.0);
  e.push(8.0);
  EXPECT_DOUBLE_EQ(e.value(), 2.0);  // 0.25*8
}

TEST(TimeSeries, BinsByWidth) {
  TimeSeries ts(100);
  ts.record(0);
  ts.record(99);
  ts.record(100);
  ts.record(250, 3.0);
  EXPECT_EQ(ts.bin_count(), 3u);
  EXPECT_DOUBLE_EQ(ts.bin(0), 2.0);
  EXPECT_DOUBLE_EQ(ts.bin(1), 1.0);
  EXPECT_DOUBLE_EQ(ts.bin(2), 3.0);
  EXPECT_DOUBLE_EQ(ts.total(), 6.0);
}

TEST(TimeSeries, OutOfRangeBinReadsZero) {
  TimeSeries ts(10);
  ts.record(5);
  EXPECT_DOUBLE_EQ(ts.bin(99), 0.0);
}

TEST(TimeSeries, NegativeTimeClampsToFirstBin) {
  TimeSeries ts(10);
  ts.record(-5);
  EXPECT_DOUBLE_EQ(ts.bin(0), 1.0);
}

TEST(TimeSeries, MeanOverWindow) {
  TimeSeries ts(10);
  for (int t = 0; t < 100; t += 10) ts.record(t, static_cast<double>(t / 10));
  // bins: 0..9
  EXPECT_DOUBLE_EQ(ts.mean_over(0, 10), 4.5);
  EXPECT_DOUBLE_EQ(ts.mean_over(5, 10), 7.0);
  EXPECT_DOUBLE_EQ(ts.mean_over(8, 4), 0.0);  // empty window
}

TEST(Histogram, CountsAndClampsEdges) {
  Histogram h(0.0, 10.0, 10);
  h.push(0.5);
  h.push(9.5);
  h.push(-100.0);  // clamps into bin 0
  h.push(100.0);   // clamps into bin 9
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(9), 2u);
}

TEST(Histogram, BinEdges) {
  Histogram h(0.0, 10.0, 10);
  EXPECT_DOUBLE_EQ(h.bin_lo(3), 3.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(3), 4.0);
}

TEST(Histogram, QuantileOfUniformFill) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.push(i + 0.5);
  EXPECT_NEAR(h.quantile(0.5), 50.0, 1.5);
  EXPECT_NEAR(h.quantile(0.9), 90.0, 1.5);
  EXPECT_NEAR(h.quantile(0.0), 0.0, 1.5);
  EXPECT_NEAR(h.quantile(1.0), 100.0, 1.5);
}

TEST(Histogram, QuantileOnEmptyReturnsLo) {
  Histogram h(5.0, 10.0, 4);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 5.0);
}

}  // namespace
}  // namespace dirq::sim

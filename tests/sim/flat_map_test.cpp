// FlatMap: the sorted-vector map backing the per-node hot-path state.
// Ordered-iteration parity with std::map is what keeps message emission
// deterministic (and the scenario goldens byte-identical).
#include "sim/flat_map.hpp"

#include <gtest/gtest.h>

#include <map>
#include <string>

namespace dirq::sim {
namespace {

TEST(FlatMap, InsertFindEraseRoundTrip) {
  FlatMap<int, std::string> m;
  EXPECT_TRUE(m.empty());
  EXPECT_TRUE(m.insert_or_assign(3, "c"));
  EXPECT_TRUE(m.insert_or_assign(1, "a"));
  EXPECT_FALSE(m.insert_or_assign(3, "c2"));  // assignment, not insertion
  EXPECT_EQ(m.size(), 2u);
  ASSERT_NE(m.find(3), m.end());
  EXPECT_EQ(m.find(3)->second, "c2");
  EXPECT_EQ(m.find(7), m.end());
  EXPECT_TRUE(m.contains(1));
  EXPECT_EQ(m.erase(1), 1u);
  EXPECT_EQ(m.erase(1), 0u);
  EXPECT_FALSE(m.contains(1));
}

TEST(FlatMap, SubscriptDefaultConstructsLikeStdMap) {
  FlatMap<int, int> m;
  m[5] += 2;
  m[5] += 3;
  EXPECT_EQ(m[5], 5);
  EXPECT_EQ(m[9], 0);  // created by access
  EXPECT_EQ(m.size(), 2u);
}

TEST(FlatMap, IterationOrderMatchesStdMap) {
  FlatMap<int, int> flat;
  std::map<int, int> ref;
  const int keys[] = {9, 2, 7, 1, 8, 3, 2, 9, 5};
  for (int i = 0; i < static_cast<int>(std::size(keys)); ++i) {
    flat.insert_or_assign(keys[i], i);
    ref.insert_or_assign(keys[i], i);
  }
  flat.erase(7);
  ref.erase(7);
  ASSERT_EQ(flat.size(), ref.size());
  auto it = ref.begin();
  for (const auto& [k, v] : flat) {
    EXPECT_EQ(k, it->first);
    EXPECT_EQ(v, it->second);
    ++it;
  }
}

}  // namespace
}  // namespace dirq::sim

// Scheduler semantics: ordering, FIFO tie-break, cancellation, run_until.
#include "sim/scheduler.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace dirq::sim {
namespace {

TEST(Scheduler, StartsAtTimeZero) {
  Scheduler s;
  EXPECT_EQ(s.now(), 0);
  EXPECT_EQ(s.pending(), 0u);
  EXPECT_EQ(s.dispatched(), 0u);
}

TEST(Scheduler, DispatchesInTimestampOrder) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(30, [&] { order.push_back(3); });
  s.schedule_at(10, [&] { order.push_back(1); });
  s.schedule_at(20, [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), 30);
}

TEST(Scheduler, EqualTimestampsAreFifo) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.schedule_at(5, [&order, i] { order.push_back(i); });
  }
  s.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Scheduler, ScheduleInIsRelativeToNow) {
  Scheduler s;
  SimTime seen = -1;
  s.schedule_at(100, [&] {
    s.schedule_in(50, [&] { seen = s.now(); });
  });
  s.run();
  EXPECT_EQ(seen, 150);
}

TEST(Scheduler, StepDispatchesExactlyOne) {
  Scheduler s;
  int count = 0;
  s.schedule_at(1, [&] { ++count; });
  s.schedule_at(2, [&] { ++count; });
  EXPECT_TRUE(s.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(s.step());
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(s.step());
}

TEST(Scheduler, CancelPreventsDispatch) {
  Scheduler s;
  bool fired = false;
  EventHandle h = s.schedule_at(10, [&] { fired = true; });
  EXPECT_TRUE(s.cancel(h));
  s.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(s.dispatched(), 0u);
}

TEST(Scheduler, CancelTwiceReturnsFalse) {
  Scheduler s;
  EventHandle h = s.schedule_at(10, [] {});
  EXPECT_TRUE(s.cancel(h));
  EXPECT_FALSE(s.cancel(h));
}

TEST(Scheduler, CancelAfterFireReturnsFalse) {
  Scheduler s;
  EventHandle h = s.schedule_at(10, [] {});
  s.run();
  EXPECT_FALSE(s.cancel(h));
}

TEST(Scheduler, CancelInvalidHandleReturnsFalse) {
  Scheduler s;
  EXPECT_FALSE(s.cancel(EventHandle{}));
  EXPECT_FALSE(s.cancel(EventHandle{9999}));
}

TEST(Scheduler, IsPendingTracksLifecycle) {
  Scheduler s;
  EventHandle h = s.schedule_at(10, [] {});
  EXPECT_TRUE(s.is_pending(h));
  s.run();
  EXPECT_FALSE(s.is_pending(h));
}

TEST(Scheduler, PendingCountsLiveEventsOnly) {
  Scheduler s;
  EventHandle a = s.schedule_at(1, [] {});
  s.schedule_at(2, [] {});
  EXPECT_EQ(s.pending(), 2u);
  s.cancel(a);
  EXPECT_EQ(s.pending(), 1u);
  s.run();
  EXPECT_EQ(s.pending(), 0u);
}

TEST(Scheduler, RunUntilStopsAtBoundaryInclusive) {
  Scheduler s;
  std::vector<SimTime> fired;
  for (SimTime t : {5, 10, 15, 20}) {
    s.schedule_at(t, [&fired, &s] { fired.push_back(s.now()); });
  }
  EXPECT_EQ(s.run_until(10), 2u);
  EXPECT_EQ(fired, (std::vector<SimTime>{5, 10}));
  EXPECT_EQ(s.now(), 10);
  EXPECT_EQ(s.run_until(100), 2u);
  EXPECT_EQ(s.now(), 100);  // clamps forward even after draining
}

TEST(Scheduler, RunUntilAdvancesTimeOnEmptyQueue) {
  Scheduler s;
  EXPECT_EQ(s.run_until(500), 0u);
  EXPECT_EQ(s.now(), 500);
}

TEST(Scheduler, EventsScheduledDuringDispatchAtSameTimeRun) {
  Scheduler s;
  int count = 0;
  s.schedule_at(10, [&] {
    ++count;
    s.schedule_at(10, [&] { ++count; });
  });
  s.run();
  EXPECT_EQ(count, 2);
}

TEST(Scheduler, RunMaxEventsBounds) {
  Scheduler s;
  int count = 0;
  for (int i = 0; i < 100; ++i) s.schedule_at(i, [&] { ++count; });
  EXPECT_EQ(s.run(10), 10u);
  EXPECT_EQ(count, 10);
  EXPECT_EQ(s.pending(), 90u);
}

TEST(Scheduler, SelfReschedulingChainTerminatesWithRunUntil) {
  Scheduler s;
  int ticks = 0;
  std::function<void()> tick = [&] {
    ++ticks;
    s.schedule_in(10, tick);
  };
  s.schedule_at(0, tick);
  s.run_until(95);
  EXPECT_EQ(ticks, 10);  // t = 0,10,...,90
}

TEST(Scheduler, DispatchedCounterAccumulates) {
  Scheduler s;
  for (int i = 0; i < 5; ++i) s.schedule_at(i, [] {});
  s.run();
  EXPECT_EQ(s.dispatched(), 5u);
}

TEST(Scheduler, CancelledEventDoesNotBlockLaterOnes) {
  Scheduler s;
  std::vector<int> order;
  EventHandle h = s.schedule_at(1, [&] { order.push_back(1); });
  s.schedule_at(2, [&] { order.push_back(2); });
  s.cancel(h);
  s.run();
  EXPECT_EQ(order, (std::vector<int>{2}));
}

}  // namespace
}  // namespace dirq::sim

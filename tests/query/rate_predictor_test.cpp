// Gateway query-rate predictor (paper §3): seasonal-naive + EWMA blend
// feeding the hourly EHr broadcast. Covers the cold-start extrapolation,
// the hour-roll bookkeeping (including silent hours), and the EWMA blend.
#include "query/rate_predictor.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "sim/types.hpp"

namespace dirq::query {
namespace {

TEST(QueryRatePredictor, ColdStartPredictsZero) {
  QueryRatePredictor p(0.4, 100);
  EXPECT_DOUBLE_EQ(p.predict_next_hour(), 0.0);
  EXPECT_EQ(p.completed_hours(), 0u);
}

TEST(QueryRatePredictor, DefaultPeriodMatchesPaperHour) {
  QueryRatePredictor p;
  EXPECT_EQ(p.epochs_per_hour(), kEpochsPerHour);
}

TEST(QueryRatePredictor, PartialHourExtrapolatesObservedRate) {
  QueryRatePredictor p(0.4, 100);
  // 10 queries in the first 10 epochs of a 100-epoch hour -> 100/hour pace.
  for (std::int64_t e = 0; e < 10; ++e) p.record_query(e);
  EXPECT_DOUBLE_EQ(p.predict_next_hour(), 100.0);
  // A single query 50 epochs into the hour -> 2/hour pace.
  QueryRatePredictor q(0.4, 100);
  q.record_query(49);
  EXPECT_DOUBLE_EQ(q.predict_next_hour(), 2.0);
}

TEST(QueryRatePredictor, FirstCompletedHourSeedsPrediction) {
  QueryRatePredictor p(0.4, 100);
  for (std::int64_t e = 0; e < 5; ++e) p.record_query(e * 10);  // hour 0
  p.record_query(150);                                          // rolls to hour 1
  ASSERT_EQ(p.completed_hours(), 1u);
  EXPECT_EQ(p.hour_count(0), 5);
  EXPECT_DOUBLE_EQ(p.predict_next_hour(), 5.0);
}

TEST(QueryRatePredictor, EwmaBlendsCompletedHours) {
  QueryRatePredictor p(0.5, 100);
  for (std::int64_t e = 0; e < 3; ++e) p.record_query(e);        // hour 0: 3
  for (std::int64_t e = 100; e < 107; ++e) p.record_query(e);    // hour 1: 7
  p.record_query(250);                                           // roll to hour 2
  ASSERT_EQ(p.completed_hours(), 2u);
  EXPECT_EQ(p.hour_count(0), 3);
  EXPECT_EQ(p.hour_count(1), 7);
  // EWMA(alpha=0.5): 0.5*7 + 0.5*3 = 5.
  EXPECT_DOUBLE_EQ(p.predict_next_hour(), 5.0);
}

TEST(QueryRatePredictor, SilentHoursDecayThePrediction) {
  QueryRatePredictor p(0.4, 100);
  p.record_query(10);   // hour 0: 1 query
  p.record_query(350);  // hour 3: hours 0..2 complete as {1, 0, 0}
  ASSERT_EQ(p.completed_hours(), 3u);
  EXPECT_EQ(p.hour_count(0), 1);
  EXPECT_EQ(p.hour_count(1), 0);
  EXPECT_EQ(p.hour_count(2), 0);
  // 1 -> 0.6*1 -> 0.6*0.6 = 0.36.
  EXPECT_NEAR(p.predict_next_hour(), 0.36, 1e-12);
}

TEST(QueryRatePredictor, HourCountOutOfRangeIsZero) {
  QueryRatePredictor p(0.4, 100);
  p.record_query(10);
  EXPECT_EQ(p.hour_count(0), 0);  // hour 0 not yet complete
  EXPECT_EQ(p.hour_count(99), 0);
}

TEST(QueryRatePredictor, RejectsDecreasingEpochs) {
  QueryRatePredictor p(0.4, 100);
  p.record_query(100);
  EXPECT_THROW(p.record_query(50), std::invalid_argument);
  // Equal epochs are fine (several queries can share an injection epoch).
  EXPECT_NO_THROW(p.record_query(100));
}

TEST(QueryRatePredictor, TracksLoadTrend) {
  // Ramping load: the prediction should land between the first and last
  // hourly counts and above the plain mean's lag, i.e. follow the trend.
  QueryRatePredictor p(0.4, 100);
  std::int64_t epoch = 0;
  for (std::int64_t hour = 0; hour < 6; ++hour) {
    for (std::int64_t i = 0; i < (hour + 1) * 2; ++i) {
      p.record_query(epoch = hour * 100 + i);
    }
  }
  p.record_query(epoch + 100);  // complete hour 5 (12 queries)
  ASSERT_EQ(p.completed_hours(), 6u);
  const double pred = p.predict_next_hour();
  EXPECT_GT(pred, 7.0);   // above the all-time mean (7) — tracks recency
  EXPECT_LT(pred, 12.0);  // below the newest hour — still smoothed
}

}  // namespace
}  // namespace dirq::query

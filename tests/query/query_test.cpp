// Query model semantics: predicate matching, range-table overlap tests
// (the forwarding decision of §4.1), and describe() rendering.
#include "query/query.hpp"

#include <gtest/gtest.h>

#include "net/bbox.hpp"
#include "sim/types.hpp"

namespace dirq::query {
namespace {

TEST(RangeQuery, MatchesIsInclusiveOnBothBounds) {
  const RangeQuery q(1, kSensorTemperature, 22.0, 25.0, 0);
  EXPECT_TRUE(q.matches(22.0));
  EXPECT_TRUE(q.matches(25.0));
  EXPECT_TRUE(q.matches(23.5));
  EXPECT_FALSE(q.matches(21.999));
  EXPECT_FALSE(q.matches(25.001));
}

TEST(RangeQuery, DegenerateWindowMatchesNothing) {
  // An inverted window is an empty predicate: no reading satisfies it.
  // (overlaps() is deliberately not constrained here — the interval test
  // `lo <= max && hi >= min` has no meaning for lo > hi, and the workload
  // generator never emits inverted windows.)
  const RangeQuery q(1, kSensorTemperature, 25.0, 22.0, 0);  // lo > hi
  EXPECT_FALSE(q.matches(23.0));
  EXPECT_FALSE(q.matches(22.0));
  EXPECT_FALSE(q.matches(25.0));
}

TEST(RangeQuery, OverlapsStoredRange) {
  const RangeQuery q(1, kSensorTemperature, 22.0, 25.0, 0);
  EXPECT_TRUE(q.overlaps(20.0, 23.0));   // partial from below
  EXPECT_TRUE(q.overlaps(24.0, 30.0));   // partial from above
  EXPECT_TRUE(q.overlaps(23.0, 23.5));   // contained
  EXPECT_TRUE(q.overlaps(10.0, 40.0));   // containing
  EXPECT_TRUE(q.overlaps(25.0, 30.0));   // touching at hi
  EXPECT_TRUE(q.overlaps(10.0, 22.0));   // touching at lo
  EXPECT_FALSE(q.overlaps(10.0, 21.9));  // below
  EXPECT_FALSE(q.overlaps(25.1, 30.0));  // above
}

TEST(RangeQuery, PointQueryMatchesExactValueOnly) {
  const RangeQuery q(1, kSensorHumidity, 50.0, 50.0, 0);
  EXPECT_TRUE(q.matches(50.0));
  EXPECT_FALSE(q.matches(49.9));
  EXPECT_TRUE(q.overlaps(50.0, 60.0));
  EXPECT_FALSE(q.overlaps(50.1, 60.0));
}

TEST(RangeQuery, DescribeRendersTypeWindowAndEpoch) {
  const RangeQuery q(7, kSensorTemperature, 22.0, 25.0, 140);
  const std::string s = q.describe();
  EXPECT_NE(s.find("query#7"), std::string::npos) << s;
  EXPECT_NE(s.find("temperature"), std::string::npos) << s;
  EXPECT_NE(s.find("[22, 25]"), std::string::npos) << s;
  EXPECT_NE(s.find("@epoch 140"), std::string::npos) << s;
  EXPECT_EQ(s.find("within"), std::string::npos) << s;  // no region clause
}

TEST(RangeQuery, DescribeRendersRegionWhenPresent) {
  const RangeQuery q(3, kSensorLight, 0.0, 100.0, 20,
                     net::BBox{10.0, 20.0, 30.0, 40.0});
  const std::string s = q.describe();
  EXPECT_NE(s.find("light"), std::string::npos) << s;
  EXPECT_NE(s.find("within ["), std::string::npos) << s;
}

TEST(AttributePredicate, MatchesAndOverlapsMirrorRangeQuery) {
  const AttributePredicate p{kSensorSoilMoisture, 5.0, 10.0};
  EXPECT_TRUE(p.matches(5.0));
  EXPECT_TRUE(p.matches(10.0));
  EXPECT_FALSE(p.matches(10.5));
  EXPECT_TRUE(p.overlaps(9.0, 20.0));
  EXPECT_FALSE(p.overlaps(10.5, 20.0));
}

TEST(MultiQuery, DescribeListsEveryConjunct) {
  MultiQuery m;
  m.id = 9;
  m.epoch = 60;
  m.predicates = {{kSensorTemperature, 22.0, 25.0},
                  {kSensorHumidity, 40.0, 60.0}};
  const std::string s = m.describe();
  EXPECT_NE(s.find("multiquery#9"), std::string::npos) << s;
  EXPECT_NE(s.find("temperature"), std::string::npos) << s;
  EXPECT_NE(s.find("humidity"), std::string::npos) << s;
  EXPECT_NE(s.find("@epoch 60"), std::string::npos) << s;
}

}  // namespace
}  // namespace dirq::query

// Query model, ground-truth involvement, workload targeting, predictor.
#include "query/workload.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "net/placement.hpp"
#include "query/rate_predictor.hpp"
#include "sim/rng.hpp"

namespace dirq::query {
namespace {

struct World {
  net::Topology topo;
  net::SpanningTree tree;
  data::Environment env;

  explicit World(std::uint64_t seed)
      : topo(make_topo(seed)),
        tree(topo, 0),
        env(topo, 4, sim::Rng(seed).substream("env")) {}

  static net::Topology make_topo(std::uint64_t seed) {
    sim::Rng rng(seed);
    return net::random_connected(net::RandomPlacementConfig{}, rng);
  }
};

TEST(RangeQuery, MatchesAndOverlaps) {
  RangeQuery q{1, kSensorTemperature, 20.0, 25.0, 0};
  EXPECT_TRUE(q.matches(20.0));
  EXPECT_TRUE(q.matches(25.0));
  EXPECT_FALSE(q.matches(19.99));
  EXPECT_TRUE(q.overlaps(24.0, 30.0));
  EXPECT_TRUE(q.overlaps(10.0, 20.0));
  EXPECT_FALSE(q.overlaps(25.01, 30.0));
  EXPECT_TRUE(q.overlaps(10.0, 40.0));  // query inside stored range
}

TEST(RangeQuery, DescribeMentionsTypeAndBounds) {
  RangeQuery q{7, kSensorHumidity, 40.0, 60.0, 100};
  const std::string s = q.describe();
  EXPECT_NE(s.find("humidity"), std::string::npos);
  EXPECT_NE(s.find("query#7"), std::string::npos);
}

TEST(Involvement, SourcesMatchPredicate) {
  World w(42);
  w.env.advance_to(10);
  RangeQuery q{1, kSensorTemperature, 0.0, 100.0, 10};  // everything
  const Involvement inv = compute_involvement(q, w.topo, w.tree, w.env);
  // All capable non-root nodes are sources.
  EXPECT_EQ(inv.sources.size(),
            w.topo.nodes_with_sensor(kSensorTemperature).size());
  for (NodeId s : inv.sources) {
    EXPECT_TRUE(q.matches(w.env.reading(s, q.type)));
  }
}

TEST(Involvement, InvolvedIsUnionOfPaths) {
  World w(42);
  w.env.advance_to(10);
  RangeQuery q{1, kSensorTemperature, 0.0, 100.0, 10};
  const Involvement inv = compute_involvement(q, w.topo, w.tree, w.env);
  // Every source's full path (minus root) must be inside `involved`.
  for (NodeId s : inv.sources) {
    for (NodeId hop : w.tree.path_from_root(s)) {
      if (hop == w.tree.root()) continue;
      EXPECT_TRUE(std::binary_search(inv.involved.begin(), inv.involved.end(),
                                     hop));
    }
  }
  EXPECT_GE(inv.involved.size(), inv.sources.size());
}

TEST(Involvement, EmptyWindowInvolvesNobody) {
  World w(42);
  w.env.advance_to(10);
  RangeQuery q{1, kSensorTemperature, 1000.0, 1001.0, 10};
  const Involvement inv = compute_involvement(q, w.topo, w.tree, w.env);
  EXPECT_TRUE(inv.sources.empty());
  EXPECT_TRUE(inv.involved.empty());
}

TEST(Involvement, RootIsNeverInvolved) {
  World w(42);
  w.env.advance_to(10);
  RangeQuery q{1, kSensorTemperature, -100.0, 100.0, 10};
  const Involvement inv = compute_involvement(q, w.topo, w.tree, w.env);
  EXPECT_FALSE(std::binary_search(inv.involved.begin(), inv.involved.end(),
                                  w.tree.root()));
}

class WorkloadTargetTest : public ::testing::TestWithParam<double> {};

TEST_P(WorkloadTargetTest, HitsTargetInvolvementApproximately) {
  const double target = GetParam();
  World w(42);
  WorkloadGenerator gen(w.topo, w.tree, w.env, WorkloadConfig{target, 0.02},
                        sim::Rng(1).substream("wl"));
  sim::RunningStat achieved;
  for (std::int64_t e = 20; e <= 2000; e += 20) {
    w.env.advance_to(e);
    RangeQuery q = gen.next(e);
    const Involvement inv = compute_involvement(q, w.topo, w.tree, w.env);
    achieved.push(static_cast<double>(inv.involved.size()) /
                  static_cast<double>(w.tree.size() - 1));
  }
  // Mean achieved involvement within 6 percentage points of the target.
  EXPECT_NEAR(achieved.mean(), target, 0.06) << "target " << target;
}

INSTANTIATE_TEST_SUITE_P(PaperFractions, WorkloadTargetTest,
                         ::testing::Values(0.2, 0.4, 0.6));

TEST(Workload, QueryIdsIncrease) {
  World w(42);
  WorkloadGenerator gen(w.topo, w.tree, w.env, WorkloadConfig{0.4, 0.02},
                        sim::Rng(1));
  w.env.advance_to(20);
  const RangeQuery q1 = gen.next(20);
  const RangeQuery q2 = gen.next(20);
  EXPECT_LT(q1.id, q2.id);
}

TEST(Workload, GeneratedWindowIsNonEmpty) {
  World w(42);
  WorkloadGenerator gen(w.topo, w.tree, w.env, WorkloadConfig{0.4, 0.02},
                        sim::Rng(1));
  w.env.advance_to(20);
  for (int i = 0; i < 50; ++i) {
    const RangeQuery q = gen.next(20);
    EXPECT_LT(q.lo, q.hi);
  }
}

TEST(Workload, TypeComesFromNetwork) {
  World w(42);
  WorkloadGenerator gen(w.topo, w.tree, w.env, WorkloadConfig{0.4, 0.02},
                        sim::Rng(1));
  w.env.advance_to(20);
  for (int i = 0; i < 50; ++i) {
    EXPECT_LT(gen.next(20).type, 4);
  }
}

TEST(Workload, DeterministicPerSeed) {
  World w1(42), w2(42);
  WorkloadGenerator g1(w1.topo, w1.tree, w1.env, WorkloadConfig{0.4, 0.02},
                       sim::Rng(5));
  WorkloadGenerator g2(w2.topo, w2.tree, w2.env, WorkloadConfig{0.4, 0.02},
                       sim::Rng(5));
  w1.env.advance_to(40);
  w2.env.advance_to(40);
  for (int i = 0; i < 10; ++i) {
    const RangeQuery a = g1.next(40);
    const RangeQuery b = g2.next(40);
    EXPECT_EQ(a.type, b.type);
    EXPECT_DOUBLE_EQ(a.lo, b.lo);
    EXPECT_DOUBLE_EQ(a.hi, b.hi);
  }
}

TEST(Predictor, ExtrapolatesPartialFirstHour) {
  QueryRatePredictor p(0.4, 3600);
  for (std::int64_t e = 0; e < 360; e += 20) p.record_query(e);
  // 18 queries in ~1/10 hour -> ~180/hour (up to edge-of-window bias).
  EXPECT_NEAR(p.predict_next_hour(), 180.0, 15.0);
}

TEST(Predictor, UsesCompletedHours) {
  QueryRatePredictor p(0.5, 100);
  for (std::int64_t e = 0; e < 100; e += 10) p.record_query(e);  // 10 in hour 0
  p.record_query(150);  // rolls hour 0
  EXPECT_EQ(p.completed_hours(), 1u);
  EXPECT_EQ(p.hour_count(0), 10);
  EXPECT_DOUBLE_EQ(p.predict_next_hour(), 10.0);
}

TEST(Predictor, EwmaTracksLoadChanges) {
  QueryRatePredictor p(0.5, 100);
  // Hour 0: 10 queries; hour 1: 30 queries; roll into hour 2.
  for (std::int64_t e = 0; e < 100; e += 10) p.record_query(e);
  for (std::int64_t e = 100; e < 200; e += 10) {
    for (int k = 0; k < 3; ++k) p.record_query(e);
  }
  p.record_query(250);
  // EWMA(0.5): 0.5*30 + 0.5*10 = 20.
  EXPECT_DOUBLE_EQ(p.predict_next_hour(), 20.0);
}

TEST(Predictor, SkippedHoursCountAsZero) {
  QueryRatePredictor p(1.0, 100);  // alpha 1: latest hour wins
  p.record_query(10);
  p.record_query(520);  // hours 1..4 empty; hour 0 had 1
  EXPECT_EQ(p.completed_hours(), 5u);
  EXPECT_EQ(p.hour_count(0), 1);
  EXPECT_EQ(p.hour_count(3), 0);
  EXPECT_DOUBLE_EQ(p.predict_next_hour(), 0.0);  // last completed hour empty
}

TEST(Predictor, RejectsTimeTravel) {
  QueryRatePredictor p;
  p.record_query(100);
  EXPECT_THROW(p.record_query(50), std::invalid_argument);
}

TEST(Predictor, NoDataPredictsZero) {
  QueryRatePredictor p;
  EXPECT_DOUBLE_EQ(p.predict_next_hour(), 0.0);
}

}  // namespace
}  // namespace dirq::query

// LMAC: slot election (2-hop exclusivity), frame loop, delivery, neighbour
// death detection via control-message timeout, node join.
#include "mac/lmac.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "net/placement.hpp"
#include "sim/rng.hpp"
#include "sim/scheduler.hpp"

namespace dirq::mac {
namespace {

net::Topology line(std::size_t n) {
  std::vector<net::Node> nodes(n);
  for (std::size_t i = 0; i < n; ++i) nodes[i].x = static_cast<double>(i);
  return net::Topology(std::move(nodes), 1.1);
}

TEST(ElectSlots, TwoHopExclusive) {
  net::Topology t = line(6);
  const auto slots = elect_slots(t, 0, 8);
  for (NodeId u = 0; u < t.size(); ++u) {
    ASSERT_NE(slots[u], kNoSlot);
    std::set<NodeId> two_hop;
    for (NodeId v : t.neighbors(u)) {
      two_hop.insert(v);
      for (NodeId w : t.neighbors(v)) {
        if (w != u) two_hop.insert(w);
      }
    }
    for (NodeId v : two_hop) {
      EXPECT_NE(slots[u], slots[v]) << "nodes " << u << " and " << v;
    }
  }
}

TEST(ElectSlots, LineNeedsOnlyThreeSlots) {
  net::Topology t = line(10);
  const auto slots = elect_slots(t, 0, 3);
  for (NodeId u = 0; u < t.size(); ++u) EXPECT_LT(slots[u], 3);
}

TEST(ElectSlots, ThrowsWhenFrameTooShort) {
  net::Topology t = line(10);
  EXPECT_THROW(elect_slots(t, 0, 2), std::runtime_error);
}

TEST(ElectSlots, SkipsDeadNodes) {
  net::Topology t = line(4);
  t.kill_node(2);
  const auto slots = elect_slots(t, 0, 8);
  EXPECT_EQ(slots[2], kNoSlot);
  EXPECT_NE(slots[0], kNoSlot);
  // Node 3 is disconnected but alive: still gets a slot.
  EXPECT_NE(slots[3], kNoSlot);
}

TEST(ElectSlots, PaperTopologyFitsIn32Slots) {
  sim::Rng rng(42);
  net::Topology t = net::random_connected(net::RandomPlacementConfig{}, rng);
  const auto slots = elect_slots(t, 0, 32);
  for (NodeId u = 0; u < t.size(); ++u) EXPECT_NE(slots[u], kNoSlot);
}

struct Recorder final : LinkObserver {
  std::vector<std::pair<NodeId, std::string>> messages;  // (receiver, payload)
  std::vector<std::pair<NodeId, NodeId>> lost;            // (self, neighbor)
  std::vector<std::pair<NodeId, NodeId>> found;
  void on_message(NodeId self, const Frame& f) override {
    messages.emplace_back(self, std::any_cast<std::string>(f.payload));
  }
  void on_neighbor_lost(NodeId self, NodeId nb) override {
    lost.emplace_back(self, nb);
  }
  void on_neighbor_found(NodeId self, NodeId nb) override {
    found.emplace_back(self, nb);
  }
};

struct Harness {
  sim::Scheduler sched;
  net::Topology topo;
  LmacConfig cfg;
  LmacNetwork mac;
  Recorder rec;

  explicit Harness(net::Topology t, LmacConfig c = {})
      : topo(std::move(t)), cfg(c), mac(sched, topo, cfg) {
    mac.set_observer(&rec);
    mac.start();
  }
  void run_frames(std::int64_t frames) {
    sched.run_until(sched.now() + frames * cfg.frame_ticks());
  }
};

TEST(Lmac, StartAssignsSlotsToAllAliveNodes) {
  Harness h(line(5));
  for (NodeId u = 0; u < 5; ++u) EXPECT_NE(h.mac.slot_of(u), kNoSlot);
}

TEST(Lmac, UnicastDeliversWithinOneFrame) {
  Harness h(line(3));
  h.mac.send(0, 1, std::string("hello"));
  h.run_frames(1);
  ASSERT_EQ(h.rec.messages.size(), 1u);
  EXPECT_EQ(h.rec.messages[0].first, 1u);
  EXPECT_EQ(h.rec.messages[0].second, "hello");
}

TEST(Lmac, UnicastToNonNeighborIsLost) {
  Harness h(line(4));
  h.mac.send(0, 3, std::string("far"));  // 3 hops away
  h.run_frames(2);
  EXPECT_TRUE(h.rec.messages.empty());
  EXPECT_EQ(h.mac.data_tx(0), 1);  // sender still paid
}

TEST(Lmac, BroadcastReachesAllNeighbors) {
  Harness h(line(3));
  h.mac.send(1, kNoNode, std::string{});  // via send() would unicast; use broadcast
  h.mac.broadcast(1, std::string("all"));
  h.run_frames(1);
  std::set<NodeId> receivers;
  for (auto& [id, payload] : h.rec.messages) {
    if (payload == "all") receivers.insert(id);
  }
  EXPECT_EQ(receivers, (std::set<NodeId>{0, 2}));
}

TEST(Lmac, EnergyAccountingPerMessage) {
  Harness h(line(3));
  h.mac.send(0, 1, std::string("a"));
  h.mac.send(0, 1, std::string("b"));
  h.run_frames(1);
  EXPECT_EQ(h.mac.data_tx(0), 2);
  EXPECT_EQ(h.mac.data_rx(1), 2);
  EXPECT_EQ(h.mac.data_rx(2), 0);  // not addressed
  EXPECT_EQ(h.mac.total_data_cost(), 4);
}

TEST(Lmac, ControlTrafficAccrues) {
  Harness h(line(3));
  h.run_frames(5);
  // Every alive node transmits its control section once per frame.
  EXPECT_GE(h.mac.control_tx(0), 4);
  EXPECT_GE(h.mac.control_rx(1), 8);  // hears both neighbours
}

TEST(Lmac, DeadNeighborDetectedByTimeout) {
  LmacConfig cfg;
  cfg.timeout_frames = 3;
  Harness h(line(3), cfg);
  h.run_frames(2);
  h.topo.kill_node(2);
  h.run_frames(cfg.timeout_frames + 2);
  bool node1_lost_2 = false;
  for (auto [self, nb] : h.rec.lost) {
    if (self == 1 && nb == 2) node1_lost_2 = true;
    EXPECT_EQ(nb, 2u);  // only node 2 died
  }
  EXPECT_TRUE(node1_lost_2);
}

TEST(Lmac, NoFalseDeathsOnHealthyNetwork) {
  Harness h(line(5));
  h.run_frames(20);
  EXPECT_TRUE(h.rec.lost.empty());
}

TEST(Lmac, DeadNodeSlotIsFreed) {
  Harness h(line(3));
  const int old_slot = h.mac.slot_of(2);
  ASSERT_NE(old_slot, kNoSlot);
  h.topo.kill_node(2);
  EXPECT_EQ(h.mac.slot_of(2), kNoSlot);
}

TEST(Lmac, JoiningNodeClaimsSlotAndIsDiscovered) {
  Harness h(line(3));
  h.run_frames(2);
  net::Node newcomer;
  newcomer.x = 3.0;
  newcomer.y = 0.0;
  const NodeId id = h.topo.add_node(newcomer);  // neighbour of node 2
  h.run_frames(3);
  EXPECT_NE(h.mac.slot_of(id), kNoSlot);
  bool discovered = false;
  for (auto [self, nb] : h.rec.found) {
    if (self == 2 && nb == id) discovered = true;
  }
  EXPECT_TRUE(discovered);
  // And it can exchange data.
  h.mac.send(id, 2, std::string("hi"));
  h.run_frames(1);
  bool delivered = false;
  for (auto& [r, p] : h.rec.messages) {
    if (r == 2 && p == "hi") delivered = true;
  }
  EXPECT_TRUE(delivered);
}

TEST(Lmac, JoinerAvoidsTwoHopCollisions) {
  Harness h(line(4));
  h.run_frames(2);
  net::Node newcomer;
  newcomer.x = 2.5;  // neighbour of nodes 2 and 3
  const NodeId id = h.topo.add_node(newcomer);
  h.run_frames(3);
  const int s = h.mac.slot_of(id);
  ASSERT_NE(s, kNoSlot);
  for (NodeId v : h.topo.neighbors(id)) {
    EXPECT_NE(s, h.mac.slot_of(v));
    for (NodeId w : h.topo.neighbors(v)) {
      if (w != id) {
        EXPECT_NE(s, h.mac.slot_of(w));
      }
    }
  }
}

TEST(Lmac, KnownNeighborsTracksTopology) {
  Harness h(line(3));
  h.run_frames(2);
  EXPECT_EQ(h.mac.known_neighbors(1), (std::vector<NodeId>{0, 2}));
}

TEST(Lmac, SendBeforeStartThrows) {
  sim::Scheduler sched;
  net::Topology topo = line(2);
  LmacNetwork mac(sched, topo, {});
  EXPECT_THROW(mac.send(0, 1, std::string{}), std::logic_error);
  EXPECT_THROW(mac.broadcast(0, std::string{}), std::logic_error);
}

TEST(Lmac, FrameCounterAdvances) {
  Harness h(line(2));
  h.run_frames(7);
  EXPECT_GE(h.mac.current_frame(), 6);
}

}  // namespace
}  // namespace dirq::mac

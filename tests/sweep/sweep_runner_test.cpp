// SweepRunner: parallel execution must be observationally identical to
// sequential execution — same cells, same order, byte-identical results.
#include "sweep/runner.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <thread>

#include "sweep/sink.hpp"

namespace dirq::sweep {
namespace {

/// A small but non-trivial grid: both theta modes, two fractions, loss,
/// and two seeds — 16 cells of a 300-epoch 20-node run.
ExperimentPlan small_grid() {
  ExperimentPlan plan("determinism-grid", [] {
    core::ExperimentConfig cfg = paper_config();
    cfg.placement.node_count = 20;
    cfg.epochs = 300;
    return cfg;  // keep_records on: summaries cover per-query records too
  }());
  plan.axis(theta_axis({atc(), fixed_theta(5.0)}))
      .axis(relevant_axis({0.2, 0.4}))
      .axis(loss_axis({0.0, 0.2}))
      .axis(seed_axis({7, 42}));
  return plan;
}

TEST(SweepRunner, ParallelRunsAreByteIdenticalToSequential) {
  const ExperimentPlan plan = small_grid();
  SweepOptions seq;
  seq.threads = 1;
  SweepOptions par;
  par.threads = 4;
  const std::vector<CellResult> a = SweepRunner(seq).run(plan);
  const std::vector<CellResult> b = SweepRunner(par).run(plan);
  ASSERT_EQ(a.size(), 16u);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_TRUE(a[i].ok()) << a[i].cell.label << ": " << a[i].error;
    ASSERT_TRUE(b[i].ok()) << b[i].cell.label << ": " << b[i].error;
    // Results arrive in plan order regardless of completion order.
    EXPECT_EQ(a[i].cell.label, b[i].cell.label);
    EXPECT_EQ(a[i].cell.index, i);
    // The canonical summary covers every ledger field, statistic, series,
    // per-node counter, and record: byte equality means no seed or state
    // leaked across cells or threads.
    EXPECT_EQ(summarize(a[i].results), summarize(b[i].results))
        << "cell " << a[i].cell.label
        << " diverged between 1 and 4 threads";
  }
}

TEST(SweepRunner, MorethreadsThanCellsAndHardwareDefaultWork) {
  ExperimentPlan plan("tiny", [] {
    core::ExperimentConfig cfg = paper_config();
    cfg.placement.node_count = 10;
    cfg.epochs = 50;
    cfg.keep_records = false;
    return cfg;
  }());
  plan.axis(seed_axis({1, 2}));
  SweepOptions opts;
  opts.threads = 16;  // pool must clamp to the cell count
  const SweepRunner runner(opts);
  EXPECT_EQ(runner.thread_count(2), 2u);
  EXPECT_GE(SweepRunner().thread_count(8), 1u);  // hardware default
  const std::vector<CellResult> results = runner.run(plan);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_TRUE(results[0].ok());
  EXPECT_TRUE(results[1].ok());
  EXPECT_GT(results[0].wall_seconds, 0.0);
}

TEST(SweepRunner, PerCellErrorsAreCapturedInPlanOrder) {
  ExperimentPlan plan("mixed", [] {
    core::ExperimentConfig cfg = paper_config();
    cfg.placement.node_count = 10;
    cfg.epochs = 50;
    cfg.keep_records = false;
    return cfg;
  }());
  plan.cell("good", [](core::ExperimentConfig&) {});
  plan.cell("bad", [](core::ExperimentConfig& cfg) {
    cfg.relevant_fraction = -1.0;  // rejected by ExperimentConfig::validate
  });
  plan.cell("good2", [](core::ExperimentConfig&) {});
  SweepOptions opts;
  opts.threads = 3;
  const std::vector<CellResult> results = SweepRunner(opts).run(plan);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].ok());
  EXPECT_FALSE(results[1].ok());
  EXPECT_NE(results[1].error.find("relevant_fraction"), std::string::npos);
  EXPECT_TRUE(results[2].ok());
}

TEST(SweepRunner, RequireOkRestoresFailFast) {
  ExperimentPlan plan("mixed", paper_config());
  plan.cell("bad", [](core::ExperimentConfig& cfg) { cfg.loss_rate = 2.0; });
  SweepOptions opts;
  opts.threads = 1;
  EXPECT_THROW((void)require_ok(SweepRunner(opts).run(plan)),
               std::runtime_error);
  ExperimentPlan good("good", [] {
    core::ExperimentConfig cfg = paper_config();
    cfg.placement.node_count = 10;
    cfg.epochs = 50;
    cfg.keep_records = false;
    return cfg;
  }());
  good.cell("ok", [](core::ExperimentConfig&) {});
  EXPECT_EQ(require_ok(SweepRunner(opts).run(good)).size(), 1u);
}

TEST(SweepRunner, ProgressCallbackFiresOncePerCellSerialised) {
  ExperimentPlan plan("progress", [] {
    core::ExperimentConfig cfg = paper_config();
    cfg.placement.node_count = 10;
    cfg.epochs = 50;
    cfg.keep_records = false;
    return cfg;
  }());
  plan.axis(seed_axis({1, 2, 3, 4}));
  std::set<std::string> seen;
  SweepOptions opts;
  opts.threads = 4;
  opts.progress = [&seen](const PlanCell& cell, bool ok) {
    EXPECT_TRUE(ok);
    seen.insert(cell.label);  // mutex-protected by the runner
  };
  (void)SweepRunner(opts).run(plan);
  EXPECT_EQ(seen.size(), 4u);
}

TEST(SweepRunner, MapReturnsValuesInPlanOrderAndRethrows) {
  ExperimentPlan plan("map", [] {
    core::ExperimentConfig cfg = paper_config();
    return cfg;
  }());
  plan.axis(seed_axis({10, 20, 30}));
  SweepOptions opts;
  opts.threads = 3;
  const SweepRunner runner(opts);
  const std::vector<std::uint64_t> seeds = runner.map(
      plan, [](const PlanCell& cell) { return cell.config.seed; });
  EXPECT_EQ(seeds, (std::vector<std::uint64_t>{10, 20, 30}));

  EXPECT_THROW(
      (void)runner.map(plan,
                       [](const PlanCell& cell) -> int {
                         if (cell.index == 1) throw std::runtime_error("boom");
                         return 0;
                       }),
      std::runtime_error);
}

TEST(SweepRunner, CustomCellBodyRunsThroughTheSamePool) {
  ExperimentPlan plan("custom", [] {
    core::ExperimentConfig cfg = paper_config();
    return cfg;
  }());
  plan.axis(seed_axis({5, 6}));
  SweepOptions opts;
  opts.threads = 2;
  std::atomic<int> calls{0};
  const std::vector<CellResult> results = SweepRunner(opts).run(
      plan, [&calls](const PlanCell& cell) {
        ++calls;
        core::ExperimentResults res;
        res.queries = static_cast<std::int64_t>(cell.config.seed);
        return res;
      });
  EXPECT_EQ(calls.load(), 2);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].results.queries, 5);
  EXPECT_EQ(results[1].results.queries, 6);
}

}  // namespace
}  // namespace dirq::sweep

// ResultSink implementations: console table, TSV block, JSON document.
#include "sweep/sink.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

namespace dirq::sweep {
namespace {

std::vector<CellResult> tiny_results() {
  ExperimentPlan plan("tiny", [] {
    core::ExperimentConfig cfg = paper_config();
    cfg.placement.node_count = 12;
    cfg.epochs = 100;
    cfg.keep_records = false;
    return cfg;
  }());
  plan.axis(seed_axis({1, 2}));
  SweepOptions opts;
  opts.threads = 1;
  return SweepRunner(opts).run(plan);
}

RowMapper ratio_mapper() {
  return [](const CellResult& r) {
    return std::vector<std::string>{*r.cell.coordinate("seed"),
                                    format_double(r.results.cost_ratio())};
  };
}

TEST(SweepSink, ConsoleTableRendersHeaderAndRows) {
  std::ostringstream os;
  ConsoleTableSink sink(os);
  report({"t", "tiny", {"seed", "ratio"}}, tiny_results(), ratio_mapper(),
         {&sink});
  const std::string out = os.str();
  EXPECT_NE(out.find("seed"), std::string::npos);
  EXPECT_NE(out.find("ratio"), std::string::npos);
  EXPECT_NE(out.find('1'), std::string::npos);
  EXPECT_NE(out.find('2'), std::string::npos);
}

TEST(SweepSink, TsvBlockHasTitleHeaderAndTabs) {
  std::ostringstream os;
  TsvSink sink(os);
  report({"my series", "tiny", {"seed", "ratio"}}, tiny_results(),
         ratio_mapper(), {&sink});
  const std::string out = os.str();
  EXPECT_EQ(out.rfind("# my series", 0), 0u);
  EXPECT_NE(out.find("seed\tratio"), std::string::npos);
}

TEST(SweepSink, JsonDocumentHasSchemaCoordinatesAndMetrics) {
  std::ostringstream os;
  JsonSink sink(os, /*include_timing=*/true);
  report({"t", "tiny", {"seed", "ratio"}}, tiny_results(), ratio_mapper(),
         {&sink});
  const std::string out = os.str();
  EXPECT_NE(out.find("\"schema\": \"dirq.sweep.v1\""), std::string::npos);
  EXPECT_NE(out.find("\"plan\": \"tiny\""), std::string::npos);
  EXPECT_NE(out.find("\"coordinates\": {\"seed\": \"1\"}"), std::string::npos);
  EXPECT_NE(out.find("\"dirq_total\""), std::string::npos);
  EXPECT_NE(out.find("\"flooding_total\""), std::string::npos);
  EXPECT_NE(out.find("\"wall_seconds\""), std::string::npos);
  EXPECT_NE(out.find("\"peak_rss_kib\""), std::string::npos);
}

TEST(SweepSink, JsonWithoutTimingIsByteStableAcrossRuns) {
  const auto render = [] {
    std::ostringstream os;
    JsonSink sink(os, /*include_timing=*/false);
    report({"t", "tiny", {"seed", "ratio"}}, tiny_results(), ratio_mapper(),
           {&sink});
    return os.str();
  };
  const std::string a = render();
  const std::string b = render();
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.find("wall_seconds"), std::string::npos);
  EXPECT_EQ(a.find("peak_rss_kib"), std::string::npos);
}

TEST(SweepSink, JsonEmitsNullForDegenerateCostRatio) {
  // A run without queries has no flooding baseline: cost_ratio() is NaN
  // and the JSON must say null, not 0.
  CellResult r;
  r.cell.label = "no-queries";
  ASSERT_TRUE(std::isnan(r.results.cost_ratio()));
  std::ostringstream os;
  JsonSink sink(os, /*include_timing=*/false);
  sink.begin({"t", "p", {"label"}});
  sink.row({"no-queries"}, &r.cell, &r);
  sink.end();
  EXPECT_NE(os.str().find("\"cost_ratio\": null"), std::string::npos);
}

TEST(SweepSink, FailedCellsRenderAnErrorRow) {
  ExperimentPlan plan("err", paper_config());
  plan.cell("bad", [](core::ExperimentConfig& cfg) { cfg.loss_rate = 2.0; });
  SweepOptions opts;
  opts.threads = 1;
  const std::vector<CellResult> results = SweepRunner(opts).run(plan);
  ASSERT_FALSE(results[0].ok());
  std::ostringstream os;
  ConsoleTableSink sink(os);
  report({"t", "err", {"cell", "ratio"}}, results, ratio_mapper(), {&sink});
  EXPECT_NE(os.str().find("<error:"), std::string::npos);
  std::ostringstream js;
  JsonSink jsink(js, false);
  report({"t", "err", {"cell", "ratio"}}, results, ratio_mapper(), {&jsink});
  EXPECT_NE(js.str().find("\"error\":"), std::string::npos);
}

TEST(SweepSink, SummarizeIsStableAndCoversStructure) {
  const std::vector<CellResult> results = tiny_results();
  const std::string s = summarize(results[0].results);
  EXPECT_EQ(s, summarize(results[0].results));
  EXPECT_NE(s.find("ledger="), std::string::npos);
  EXPECT_NE(s.find("node_tx="), std::string::npos);
  EXPECT_NE(s.find("updates_per_bin="), std::string::npos);
  // Different seeds produce different summaries.
  EXPECT_NE(s, summarize(results[1].results));
}

TEST(SweepSink, FormatDoubleRoundTrips) {
  EXPECT_EQ(format_double(0.5), "0.5");
  EXPECT_EQ(format_double(42.0), "42");
  const double v = 0.1 + 0.2;
  EXPECT_EQ(std::stod(format_double(v)), v);
}

}  // namespace
}  // namespace dirq::sweep

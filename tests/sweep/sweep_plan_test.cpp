// ExperimentPlan: declarative grid materialisation and validation.
#include "sweep/plan.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace dirq::sweep {
namespace {

TEST(SweepPlan, CartesianProductRowMajorLastAxisFastest) {
  ExperimentPlan plan("p", paper_config());
  plan.axis(theta_axis({atc(), fixed_theta(5.0)}));
  plan.axis(relevant_axis({0.2, 0.4, 0.6}));
  const std::vector<PlanCell> cells = plan.cells();
  ASSERT_EQ(cells.size(), 6u);
  EXPECT_EQ(plan.size(), 6u);
  // First three cells: ATC at 20/40/60 %; then fixed theta.
  EXPECT_EQ(cells[0].label, "theta=ATC relevant=20%");
  EXPECT_EQ(cells[1].label, "theta=ATC relevant=40%");
  EXPECT_EQ(cells[3].label, "theta=delta=5% relevant=20%");
  EXPECT_EQ(cells[5].index, 5u);
  // Config resolution matches the coordinates.
  EXPECT_EQ(cells[0].config.network.mode, core::NetworkConfig::ThetaMode::Atc);
  EXPECT_DOUBLE_EQ(cells[1].config.relevant_fraction, 0.4);
  EXPECT_EQ(cells[3].config.network.mode,
            core::NetworkConfig::ThetaMode::Fixed);
  EXPECT_DOUBLE_EQ(cells[3].config.network.fixed_pct, 5.0);
  // Coordinate lookup by axis name.
  ASSERT_NE(cells[4].coordinate("relevant"), nullptr);
  EXPECT_EQ(*cells[4].coordinate("relevant"), "40%");
  EXPECT_EQ(cells[4].coordinate("no-such-axis"), nullptr);
}

TEST(SweepPlan, ExplicitCellListKeepsOrderAndConfigs) {
  ExperimentPlan plan("p", paper_config(7));
  plan.cell("a", [](core::ExperimentConfig& cfg) { cfg.epochs = 100; });
  core::ExperimentConfig direct = paper_config(9);
  plan.cell("b", direct);
  const std::vector<PlanCell> cells = plan.cells();
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_EQ(cells[0].label, "a");
  EXPECT_EQ(cells[0].config.epochs, 100);
  EXPECT_EQ(cells[0].config.seed, 7u);  // mutation starts from the base
  EXPECT_EQ(cells[1].config.seed, 9u);
  EXPECT_TRUE(cells[1].coordinates.empty());
}

TEST(SweepPlan, SeedAxisGivesEachCellItsOwnSeed) {
  ExperimentPlan plan("p", paper_config());
  plan.axis(seed_axis({1, 2, 3}));
  const std::vector<PlanCell> cells = plan.cells();
  ASSERT_EQ(cells.size(), 3u);
  EXPECT_EQ(cells[0].config.seed, 1u);
  EXPECT_EQ(cells[2].config.seed, 3u);
}

TEST(SweepPlan, SixStandardAxesCompose) {
  ExperimentPlan plan("p", paper_config());
  plan.axis(theta_axis({atc()}))
      .axis(relevant_axis({0.4}))
      .axis(seed_axis({42}))
      .axis(loss_axis({0.0, 0.1}))
      .axis(transport_axis(
          {core::TransportKind::Instant, core::TransportKind::Lmac}))
      .axis(nodes_axis({20, 50}));
  const std::vector<PlanCell> cells = plan.cells();
  ASSERT_EQ(cells.size(), 8u);
  EXPECT_EQ(cells[0].config.transport, core::TransportKind::Instant);
  EXPECT_EQ(cells[2].config.transport, core::TransportKind::Lmac);
  EXPECT_DOUBLE_EQ(cells[4].config.loss_rate, 0.1);
  EXPECT_EQ(cells[1].config.placement.node_count, 50u);
}

TEST(SweepPlan, PaperGridIsTheSection7Grid) {
  const std::vector<PlanCell> cells = paper_grid().cells();
  ASSERT_EQ(cells.size(), 12u);  // {ATC, 3, 5, 9} x {20, 40, 60}%
  EXPECT_EQ(cells[0].config.epochs, 20000);
  EXPECT_EQ(cells[0].config.query_period, 20);
  EXPECT_EQ(*cells[0].coordinate("theta"), "ATC");
  EXPECT_EQ(*cells[11].coordinate("theta"), "delta=9%");
  EXPECT_EQ(*cells[11].coordinate("relevant"), "60%");
}

TEST(SweepPlan, LabelsAreExactForNonRoundValues) {
  // Labels are cell identity in every sink's output: rounding must never
  // make two distinct values collide or misreport a configuration.
  EXPECT_EQ(fixed_theta(2.5).label, "delta=2.5%");
  EXPECT_EQ(fixed_theta(3.0).label, "delta=3%");
  const Axis a = loss_axis({0.201, 0.204});
  EXPECT_EQ(a.values[0].label, "0.201");
  EXPECT_EQ(a.values[1].label, "0.204");
  ExperimentPlan plan("p", paper_config());
  plan.axis(loss_axis({0.201, 0.204}));
  EXPECT_EQ(plan.size(), 2u);  // close-but-distinct rates no longer collide
}

TEST(SweepPlanValidation, ThrowsOnDegeneratePlans) {
  // No axes and no cells.
  EXPECT_THROW((void)ExperimentPlan("p", paper_config()).cells(),
               std::invalid_argument);
  // Axis with no values.
  {
    ExperimentPlan plan("p", paper_config());
    plan.axis(custom_axis("empty", {}));
    EXPECT_THROW((void)plan.cells(), std::invalid_argument);
  }
  // Axis with an empty name.
  {
    ExperimentPlan plan("p", paper_config());
    plan.axis(custom_axis("", {atc()}));
    EXPECT_THROW((void)plan.cells(), std::invalid_argument);
  }
  // Duplicate axis names.
  {
    ExperimentPlan plan("p", paper_config());
    plan.axis(relevant_axis({0.2})).axis(relevant_axis({0.4}));
    EXPECT_THROW((void)plan.cells(), std::invalid_argument);
  }
  // Duplicate value labels within an axis.
  {
    ExperimentPlan plan("p", paper_config());
    plan.axis(relevant_axis({0.4, 0.4}));
    EXPECT_THROW((void)plan.cells(), std::invalid_argument);
  }
  // Value with no mutation.
  {
    ExperimentPlan plan("p", paper_config());
    plan.axis(custom_axis("k", {{"v", nullptr}}));
    EXPECT_THROW((void)plan.cells(), std::invalid_argument);
  }
  // Mixing axes with explicit cells.
  {
    ExperimentPlan plan("p", paper_config());
    plan.axis(relevant_axis({0.4}));
    plan.cell("x", paper_config());
    EXPECT_THROW((void)plan.cells(), std::invalid_argument);
  }
  // size() validates too.
  EXPECT_THROW((void)ExperimentPlan("p", paper_config()).size(),
               std::invalid_argument);
}

}  // namespace
}  // namespace dirq::sweep

// Shared cost-parity assertion: on every transport backend, each
// transmission and each decoded reception is attributed to exactly one
// node, so the summed per-node counters must equal the ledger's tx/rx
// totals — including the bootstrap announce wave carried over at a
// transport swap and, under loss, the CRC-failed receptions accounted
// through the LossySink drop hook. Used by the experiment unit tests and
// the LMAC scenario tier so the invariant's decomposition can never drift
// between the two.
#pragma once

#include <gtest/gtest.h>

#include <numeric>

#include "core/experiment.hpp"

namespace dirq::core {

inline void expect_ledger_reconciles(const ExperimentResults& res) {
  const CostUnits tx_sum =
      std::accumulate(res.node_tx.begin(), res.node_tx.end(), CostUnits{0});
  const CostUnits rx_sum =
      std::accumulate(res.node_rx.begin(), res.node_rx.end(), CostUnits{0});
  EXPECT_EQ(tx_sum,
            res.ledger.query_tx + res.ledger.update_tx + res.ledger.control_tx);
  EXPECT_EQ(rx_sum,
            res.ledger.query_rx + res.ledger.update_rx + res.ledger.control_rx);
}

}  // namespace dirq::core

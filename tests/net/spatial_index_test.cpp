// Grid-indexed link construction vs the O(n^2) brute-force path.
//
// Topology::rebuild_links and add_node query the uniform-grid SpatialIndex
// instead of scanning all pairs; because candidate sets are supersets and
// the exact distance filter is shared, the resulting adjacency must be
// *identical* — not just isomorphic — to Topology::brute_force_adjacency().
// This suite pins that equivalence across random placements and the edge
// cases that break naive grids: nodes exactly at radio_range, co-located
// nodes, dead nodes, revivals redeployed outside the original bounds.
#include "net/spatial_index.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <tuple>
#include <vector>

#include "net/placement.hpp"
#include "net/topology.hpp"
#include "sim/rng.hpp"

namespace dirq::net {
namespace {

std::vector<Node> random_nodes(std::size_t n, double side, sim::Rng& rng) {
  std::vector<Node> nodes(n);
  for (std::size_t i = 0; i < n; ++i) {
    nodes[i].x = rng.uniform(0.0, side);
    nodes[i].y = rng.uniform(0.0, side);
    nodes[i].sensors = {kSensorTemperature};
  }
  return nodes;
}

void expect_adjacency_matches(const Topology& topo) {
  const auto brute = topo.brute_force_adjacency();
  ASSERT_EQ(brute.size(), topo.size());
  std::size_t links = 0;
  for (NodeId u = 0; u < topo.size(); ++u) {
    const auto got = topo.neighbors(u);
    ASSERT_EQ(std::vector<NodeId>(got.begin(), got.end()), brute[u])
        << "adjacency of node " << u;
    links += brute[u].size();
  }
  EXPECT_EQ(topo.link_count(), links / 2);
}

TEST(SpatialIndexEquivalence, RandomPlacementsAcrossSeedsAndDensities) {
  for (std::uint64_t seed : {1ull, 7ull, 42ull, 1337ull}) {
    for (const auto& [n, side, range] :
         {std::tuple{30u, 100.0, 22.0}, std::tuple{200u, 100.0, 9.0},
          std::tuple{400u, 250.0, 22.0}, std::tuple{100u, 10.0, 1.0}}) {
      sim::Rng rng(seed);
      Topology topo(random_nodes(n, side, rng), range);
      expect_adjacency_matches(topo);
    }
  }
}

TEST(SpatialIndexEquivalence, NodesExactlyAtRadioRange) {
  // Distance == radio_range must link (<=, not <) through the grid path
  // exactly as it does through the brute-force path.
  std::vector<Node> nodes(4);
  nodes[0] = {};                 // (0, 0)
  nodes[1].x = 5.0;              // exactly at range
  nodes[2].x = 5.0 + 5.0;       // exactly at range from 1
  nodes[3].x = 5.000001;         // just beyond range from 0
  Topology topo(std::move(nodes), 5.0);
  expect_adjacency_matches(topo);
  EXPECT_TRUE(std::ranges::count(topo.neighbors(0), NodeId{1}) == 1);
  EXPECT_TRUE(std::ranges::count(topo.neighbors(1), NodeId{2}) == 1);
  EXPECT_TRUE(std::ranges::count(topo.neighbors(3), NodeId{0}) == 0);
}

TEST(SpatialIndexEquivalence, CoLocatedNodes) {
  std::vector<Node> nodes(5);
  for (auto& n : nodes) {
    n.x = 3.0;
    n.y = 4.0;
  }
  nodes[4].x = 100.0;  // far away
  Topology topo(std::move(nodes), 2.0);
  expect_adjacency_matches(topo);
  EXPECT_EQ(topo.neighbors(0).size(), 3u);  // the other co-located three
  EXPECT_TRUE(topo.neighbors(4).empty());
}

TEST(SpatialIndexEquivalence, DeadNodesExcludedEverywhere) {
  sim::Rng rng(99);
  Topology topo(random_nodes(60, 50.0, rng), 10.0);
  topo.kill_node(3);
  topo.kill_node(17);
  topo.kill_node(59);
  expect_adjacency_matches(topo);  // brute force also skips dead nodes
  EXPECT_TRUE(topo.neighbors(17).empty());
}

TEST(SpatialIndexEquivalence, AddNodeMatchesBruteForce) {
  sim::Rng rng(5);
  Topology topo(random_nodes(50, 40.0, rng), 8.0);
  // Brand-new node inside the deployment.
  Node extra;
  extra.x = 20.0;
  extra.y = 20.0;
  topo.add_node(extra);
  expect_adjacency_matches(topo);
  // Brand-new node outside the original grid bounds (edge-cell clamping).
  Node outside;
  outside.x = 200.0;
  outside.y = -50.0;
  topo.add_node(outside);
  expect_adjacency_matches(topo);
}

TEST(SpatialIndexEquivalence, RevivalRedeployedElsewhere) {
  sim::Rng rng(11);
  Topology topo(random_nodes(50, 40.0, rng), 8.0);
  topo.kill_node(10);
  Node revived;
  revived.id = 10;
  revived.x = 39.5;  // different cell from the original placement
  revived.y = 0.5;
  topo.add_node(revived);
  expect_adjacency_matches(topo);
  // And a revival clamped outside the original bounds.
  topo.kill_node(20);
  Node far;
  far.id = 20;
  far.x = 400.0;
  far.y = 400.0;
  topo.add_node(far);
  expect_adjacency_matches(topo);
  EXPECT_TRUE(topo.neighbors(20).empty());
}

TEST(SpatialIndex, CandidatesAreASuperset) {
  sim::Rng rng(3);
  const std::size_t n = 120;
  std::vector<double> xs, ys;
  for (std::size_t i = 0; i < n; ++i) {
    xs.push_back(rng.uniform(0.0, 60.0));
    ys.push_back(rng.uniform(0.0, 60.0));
  }
  SpatialIndex index;
  index.build(xs, ys, 7.5);
  std::vector<NodeId> cand;
  for (std::size_t i = 0; i < n; ++i) {
    cand.clear();
    index.candidates(xs[i], ys[i], cand);
    for (std::size_t j = 0; j < n; ++j) {
      const double dx = xs[i] - xs[j];
      const double dy = ys[i] - ys[j];
      if (dx * dx + dy * dy <= 7.5 * 7.5) {
        EXPECT_NE(std::find(cand.begin(), cand.end(), static_cast<NodeId>(j)),
                  cand.end())
            << "true neighbour " << j << " of " << i << " missing";
      }
    }
  }
}

TEST(SpatialIndex, ZeroRadiusDegenerateGrid) {
  // The explicit-link Topology constructor indexes with radius 0 (revived
  // nodes re-link only when co-located). The grid must stay well-formed.
  std::vector<double> xs{0.0, 1.0, 1.0};
  std::vector<double> ys{0.0, 2.0, 2.0};
  SpatialIndex index;
  index.build(xs, ys, 0.0);
  std::vector<NodeId> cand;
  index.candidates(1.0, 2.0, cand);
  EXPECT_NE(std::find(cand.begin(), cand.end(), NodeId{1}), cand.end());
  EXPECT_NE(std::find(cand.begin(), cand.end(), NodeId{2}), cand.end());
}

TEST(SpatialIndex, ScaledPlacementStillSatisfiesPaperBoundsAtFifty) {
  // <= 50 nodes: scaled_placement is exactly the paper's config.
  const RandomPlacementConfig cfg = scaled_placement(50);
  EXPECT_DOUBLE_EQ(cfg.area_side, 100.0);
  EXPECT_DOUBLE_EQ(cfg.radio_range, 22.0);
  EXPECT_EQ(cfg.max_children, 8u);
  EXPECT_EQ(cfg.max_depth, 10u);
  // Beyond 50: density preserved, bounds lifted.
  const RandomPlacementConfig big = scaled_placement(500);
  EXPECT_NEAR(big.area_side, 100.0 * std::sqrt(10.0), 1e-9);
  EXPECT_GT(big.radio_range, 22.0);
  EXPECT_EQ(big.max_children, 500u);
  // Non-geometry knobs of a caller-supplied base survive scaling (and at
  // <= 50 the base's geometry is untouched too — old node_count-only
  // substitution semantics).
  RandomPlacementConfig base;
  base.sensor_type_count = 2;
  base.sensor_probability = 0.9;
  base.radio_range = 30.0;
  const RandomPlacementConfig scaled = scaled_placement(500, base);
  EXPECT_EQ(scaled.sensor_type_count, 2u);
  EXPECT_DOUBLE_EQ(scaled.sensor_probability, 0.9);
  EXPECT_GT(scaled.radio_range, 22.0);  // geometry overwritten above 50
  const RandomPlacementConfig small = scaled_placement(40, base);
  EXPECT_EQ(small.node_count, 40u);
  EXPECT_DOUBLE_EQ(small.radio_range, 30.0);  // geometry kept at <= 50
  EXPECT_EQ(small.sensor_type_count, 2u);
  sim::Rng rng(42);
  const Topology topo = random_connected(big, rng);
  EXPECT_EQ(topo.size(), 500u);
  EXPECT_TRUE(topo.is_connected());
}

}  // namespace
}  // namespace dirq::net

// Placement builders: paper-topology invariants, grids, k-ary trees.
#include "net/placement.hpp"

#include <gtest/gtest.h>

#include "net/spanning_tree.hpp"
#include "sim/rng.hpp"

namespace dirq::net {
namespace {

TEST(RandomConnected, ProducesPaperTopology) {
  sim::Rng rng(42);
  RandomPlacementConfig cfg;  // 50 nodes, k<=8, d<=10, 4 sensor types
  Topology t = random_connected(cfg, rng);
  EXPECT_EQ(t.size(), 50u);
  EXPECT_EQ(t.alive_count(), 50u);
  EXPECT_TRUE(t.is_connected());
}

TEST(RandomConnected, IsDeterministicPerSeed) {
  sim::Rng rng1(7), rng2(7);
  RandomPlacementConfig cfg;
  Topology a = random_connected(cfg, rng1);
  Topology b = random_connected(cfg, rng2);
  ASSERT_EQ(a.size(), b.size());
  for (NodeId i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.node(i).x, b.node(i).x);
    EXPECT_DOUBLE_EQ(a.node(i).y, b.node(i).y);
    EXPECT_EQ(a.node(i).sensors, b.node(i).sensors);
  }
}

TEST(RandomConnected, DifferentSeedsDifferentLayouts) {
  sim::Rng rng1(1), rng2(2);
  RandomPlacementConfig cfg;
  Topology a = random_connected(cfg, rng1);
  Topology b = random_connected(cfg, rng2);
  bool any_diff = false;
  for (NodeId i = 1; i < a.size(); ++i) {
    if (a.node(i).x != b.node(i).x) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(RandomConnected, RootIsGatewayWithoutSensors) {
  sim::Rng rng(42);
  Topology t = random_connected(RandomPlacementConfig{}, rng);
  EXPECT_TRUE(t.node(0).sensors.empty());
}

TEST(RandomConnected, EveryNonRootNodeHasASensor) {
  sim::Rng rng(42);
  Topology t = random_connected(RandomPlacementConfig{}, rng);
  for (NodeId i = 1; i < t.size(); ++i) {
    EXPECT_FALSE(t.node(i).sensors.empty()) << "node " << i;
  }
}

TEST(RandomConnected, SensorTypesWithinConfiguredCount) {
  sim::Rng rng(42);
  RandomPlacementConfig cfg;
  Topology t = random_connected(cfg, rng);
  for (const Node& n : t.nodes()) {
    for (SensorType s : n.sensors) EXPECT_LT(s, cfg.sensor_type_count);
  }
}

TEST(RandomConnected, HeterogeneousComplements) {
  // With p = 0.6 over 4 types, complements must differ across nodes.
  sim::Rng rng(42);
  Topology t = random_connected(RandomPlacementConfig{}, rng);
  bool differ = false;
  for (NodeId i = 2; i < t.size(); ++i) {
    if (t.node(i).sensors != t.node(1).sensors) differ = true;
  }
  EXPECT_TRUE(differ);
}

TEST(RandomConnected, RespectsTreeBounds) {
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL, 4ULL, 5ULL}) {
    sim::Rng rng(seed);
    RandomPlacementConfig cfg;
    Topology t = random_connected(cfg, rng);
    SpanningTree tree(t, 0);
    EXPECT_LE(tree.max_branching(), cfg.max_children) << "seed " << seed;
    EXPECT_LE(static_cast<std::size_t>(tree.max_depth()), cfg.max_depth)
        << "seed " << seed;
  }
}

TEST(RandomConnected, ThrowsOnImpossibleConstraints) {
  sim::Rng rng(1);
  RandomPlacementConfig cfg;
  cfg.radio_range = 0.5;  // 50 nodes can never connect at this range
  cfg.max_attempts = 50;
  EXPECT_THROW(random_connected(cfg, rng), std::runtime_error);
}

TEST(RandomConnected, RejectsEmptyNetwork) {
  sim::Rng rng(1);
  RandomPlacementConfig cfg;
  cfg.node_count = 0;
  EXPECT_THROW(random_connected(cfg, rng), std::invalid_argument);
}

TEST(Grid, StructureAndRoot) {
  Topology t = grid(3, 4, 10.0);
  EXPECT_EQ(t.size(), 12u);
  EXPECT_TRUE(t.is_connected());
  // 4-neighbourhood only: (3*3 + 2*4)... links = rows*(cols-1) + cols*(rows-1)
  EXPECT_EQ(t.link_count(), 3u * 3u + 4u * 2u);
  EXPECT_TRUE(t.node(0).sensors.empty());  // corner root
  EXPECT_FALSE(t.node(5).sensors.empty());
}

TEST(Grid, RejectsEmpty) {
  EXPECT_THROW(grid(0, 3, 1.0), std::invalid_argument);
}

TEST(KnaryTree, NodeCountAndLinks) {
  Topology t = knary_tree(2, 3);
  EXPECT_EQ(t.size(), 15u);
  EXPECT_EQ(t.link_count(), 14u);
  EXPECT_TRUE(t.is_connected());
}

TEST(KnaryTree, DepthZeroIsSingleRoot) {
  Topology t = knary_tree(4, 0);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.link_count(), 0u);
}

TEST(KnaryTree, EveryNonRootHasAllSensors) {
  Topology t = knary_tree(3, 2, 4);
  for (NodeId i = 1; i < t.size(); ++i) {
    EXPECT_EQ(t.node(i).sensors.size(), 4u);
  }
  EXPECT_TRUE(t.node(0).sensors.empty());
}

TEST(KnaryTree, RejectsZeroK) {
  EXPECT_THROW(knary_tree(0, 2), std::invalid_argument);
}

TEST(KnaryTree, ChildLinksMatchHeapIndexing) {
  Topology t = knary_tree(3, 2);
  // Children of node 0 are 1,2,3; children of 1 are 4,5,6.
  auto n0 = t.neighbors(0);
  EXPECT_EQ(std::vector<NodeId>(n0.begin(), n0.end()),
            (std::vector<NodeId>{1, 2, 3}));
  auto n1 = t.neighbors(1);
  EXPECT_EQ(std::vector<NodeId>(n1.begin(), n1.end()),
            (std::vector<NodeId>{0, 4, 5, 6}));
}

}  // namespace
}  // namespace dirq::net

// Topology: unit-disk connectivity, explicit links, dynamics, observers.
#include "net/topology.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace dirq::net {
namespace {

std::vector<Node> line_nodes(std::size_t n, double spacing) {
  std::vector<Node> nodes(n);
  for (std::size_t i = 0; i < n; ++i) {
    nodes[i].x = static_cast<double>(i) * spacing;
    nodes[i].y = 0.0;
    nodes[i].sensors = {kSensorTemperature};
  }
  return nodes;
}

TEST(Topology, UnitDiskLinksNeighborsOnly) {
  Topology t(line_nodes(4, 1.0), 1.5);
  EXPECT_EQ(t.size(), 4u);
  EXPECT_EQ(t.link_count(), 3u);
  auto n1 = t.neighbors(1);
  ASSERT_EQ(n1.size(), 2u);
  EXPECT_EQ(n1[0], 0u);
  EXPECT_EQ(n1[1], 2u);
}

TEST(Topology, WiderRangeAddsLinks) {
  Topology t(line_nodes(4, 1.0), 2.5);
  EXPECT_EQ(t.link_count(), 5u);  // 0-1,0-2,1-2,1-3,2-3
}

TEST(Topology, ConnectivityDetection) {
  Topology connected(line_nodes(5, 1.0), 1.1);
  EXPECT_TRUE(connected.is_connected());
  Topology split(line_nodes(5, 2.0), 1.0);  // spacing > range
  EXPECT_FALSE(split.is_connected());
}

TEST(Topology, SingleNodeIsConnected) {
  Topology t(line_nodes(1, 1.0), 1.0);
  EXPECT_TRUE(t.is_connected());
  EXPECT_EQ(t.link_count(), 0u);
}

TEST(Topology, ExplicitLinksConstructor) {
  std::vector<Node> nodes = line_nodes(4, 100.0);  // far apart
  Topology t(nodes, {{0, 1}, {0, 2}, {2, 3}});
  EXPECT_EQ(t.link_count(), 3u);
  EXPECT_TRUE(t.is_connected());
  EXPECT_EQ(t.neighbors(0).size(), 2u);
}

TEST(Topology, ExplicitLinksRejectBadEndpoints) {
  std::vector<Node> nodes = line_nodes(3, 1.0);
  EXPECT_THROW(Topology(nodes, {{0, 0}}), std::invalid_argument);
  EXPECT_THROW(Topology(nodes, {{0, 7}}), std::invalid_argument);
}

TEST(Topology, KillNodeRemovesLinksAndCount) {
  Topology t(line_nodes(4, 1.0), 1.1);
  t.kill_node(1);
  EXPECT_FALSE(t.is_alive(1));
  EXPECT_EQ(t.alive_count(), 3u);
  EXPECT_EQ(t.link_count(), 1u);  // only 2-3 remains
  EXPECT_TRUE(t.neighbors(1).empty());
  EXPECT_FALSE(t.is_connected());  // 0 separated from 2-3
}

TEST(Topology, KillNodeIsIdempotent) {
  Topology t(line_nodes(3, 1.0), 1.1);
  t.kill_node(1);
  t.kill_node(1);
  EXPECT_EQ(t.alive_count(), 2u);
}

TEST(Topology, ReviveRelinksByDisk) {
  Topology t(line_nodes(4, 1.0), 1.1);
  t.kill_node(1);
  Node revived;
  revived.id = 1;
  revived.x = 1.0;
  revived.y = 0.0;
  revived.sensors = {kSensorHumidity};
  EXPECT_EQ(t.add_node(revived), 1u);
  EXPECT_TRUE(t.is_alive(1));
  EXPECT_EQ(t.link_count(), 3u);
  EXPECT_TRUE(t.node(1).has_sensor(kSensorHumidity));
}

TEST(Topology, AddBrandNewNodeAppends) {
  Topology t(line_nodes(3, 1.0), 1.1);
  Node extra;
  extra.x = 3.0;
  extra.y = 0.0;
  extra.sensors = {kSensorLight};
  const NodeId id = t.add_node(extra);
  EXPECT_EQ(id, 3u);
  EXPECT_EQ(t.size(), 4u);
  EXPECT_EQ(t.link_count(), 3u);  // linked to node 2
}

TEST(Topology, AddAliveNodeThrows) {
  Topology t(line_nodes(3, 1.0), 1.1);
  Node dup;
  dup.id = 1;
  EXPECT_THROW(t.add_node(dup), std::invalid_argument);
}

TEST(Topology, SensorQueries) {
  std::vector<Node> nodes = line_nodes(3, 1.0);
  nodes[1].sensors = {kSensorHumidity, kSensorTemperature};
  nodes[2].sensors = {kSensorHumidity};
  Topology t(std::move(nodes), 1.1);
  auto types = t.sensor_types_present();
  EXPECT_EQ(types, (std::vector<SensorType>{kSensorTemperature, kSensorHumidity}));
  EXPECT_EQ(t.nodes_with_sensor(kSensorHumidity),
            (std::vector<NodeId>{1, 2}));
}

TEST(Topology, SensorMutation) {
  Topology t(line_nodes(2, 1.0), 1.1);
  t.add_sensor(0, kSensorLight);
  EXPECT_TRUE(t.node(0).has_sensor(kSensorLight));
  t.add_sensor(0, kSensorLight);  // idempotent
  t.remove_sensor(0, kSensorLight);
  EXPECT_FALSE(t.node(0).has_sensor(kSensorLight));
}

TEST(Topology, SensorListsAreSortedUnique) {
  std::vector<Node> nodes(1);
  nodes[0].sensors = {3, 1, 3, 2, 1};
  Topology t(std::move(nodes), 1.0);
  EXPECT_EQ(t.node(0).sensors, (std::vector<SensorType>{1, 2, 3}));
}

struct RecordingObserver final : TopologyObserver {
  std::vector<NodeId> died, added;
  std::vector<std::pair<NodeId, SensorType>> sensor_added, sensor_removed;
  void on_node_died(NodeId id) override { died.push_back(id); }
  void on_node_added(NodeId id) override { added.push_back(id); }
  void on_sensor_added(NodeId id, SensorType t) override {
    sensor_added.emplace_back(id, t);
  }
  void on_sensor_removed(NodeId id, SensorType t) override {
    sensor_removed.emplace_back(id, t);
  }
};

TEST(Topology, ObserverReceivesEvents) {
  Topology t(line_nodes(3, 1.0), 1.1);
  RecordingObserver obs;
  t.add_observer(&obs);
  t.kill_node(2);
  Node n;
  n.id = 2;
  n.x = 2.0;
  t.add_node(n);
  t.add_sensor(0, kSensorLight);
  t.remove_sensor(0, kSensorLight);
  EXPECT_EQ(obs.died, (std::vector<NodeId>{2}));
  EXPECT_EQ(obs.added, (std::vector<NodeId>{2}));
  ASSERT_EQ(obs.sensor_added.size(), 1u);
  EXPECT_EQ(obs.sensor_added[0].second, kSensorLight);
  ASSERT_EQ(obs.sensor_removed.size(), 1u);
}

TEST(Topology, RemoveObserverStopsEvents) {
  Topology t(line_nodes(3, 1.0), 1.1);
  RecordingObserver obs;
  t.add_observer(&obs);
  t.remove_observer(&obs);
  t.kill_node(0);
  EXPECT_TRUE(obs.died.empty());
}

TEST(Topology, MaxDegree) {
  // Star: node 0 in the middle.
  std::vector<Node> nodes(5);
  nodes[0] = {};
  for (std::size_t i = 1; i < 5; ++i) {
    nodes[i].x = (i % 2 == 0) ? 0.5 : -0.5;
    nodes[i].y = (i < 3) ? 0.5 : -0.5;
  }
  Topology t(std::move(nodes), 0.9);
  EXPECT_EQ(t.max_degree(), 4u);
}

TEST(Topology, DistanceIsEuclidean) {
  std::vector<Node> nodes(2);
  nodes[1].x = 3.0;
  nodes[1].y = 4.0;
  Topology t(std::move(nodes), 10.0);
  EXPECT_DOUBLE_EQ(t.distance(0, 1), 5.0);
}

}  // namespace
}  // namespace dirq::net

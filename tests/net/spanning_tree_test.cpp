// BFS spanning tree: structure, determinism, rebuild-on-churn, queries.
#include "net/spanning_tree.hpp"

#include <gtest/gtest.h>

#include <set>

#include "net/placement.hpp"
#include "sim/rng.hpp"

namespace dirq::net {
namespace {

std::vector<Node> line_nodes(std::size_t n) {
  std::vector<Node> nodes(n);
  for (std::size_t i = 0; i < n; ++i) nodes[i].x = static_cast<double>(i);
  return nodes;
}

TEST(SpanningTree, LineTopologyIsAChain) {
  Topology t(line_nodes(5), 1.1);
  SpanningTree tree(t, 0);
  EXPECT_EQ(tree.size(), 5u);
  EXPECT_EQ(tree.max_depth(), 4);
  EXPECT_EQ(tree.parent(0), kNoNode);
  for (NodeId i = 1; i < 5; ++i) EXPECT_EQ(tree.parent(i), i - 1);
  EXPECT_EQ(tree.edge_count(), 4u);
}

TEST(SpanningTree, RootMustBeAlive) {
  Topology t(line_nodes(3), 1.1);
  t.kill_node(0);
  EXPECT_THROW(SpanningTree(t, 0), std::invalid_argument);
  EXPECT_THROW(SpanningTree(t, 99), std::invalid_argument);
}

TEST(SpanningTree, KnaryTreeShapeIsExact) {
  Topology t = knary_tree(3, 2);
  SpanningTree tree(t, 0);
  EXPECT_EQ(tree.size(), 13u);
  EXPECT_EQ(tree.max_depth(), 2);
  EXPECT_EQ(tree.max_branching(), 3u);
  EXPECT_EQ(tree.children(0).size(), 3u);
  EXPECT_EQ(tree.leaves().size(), 9u);
  EXPECT_EQ(tree.nodes_at_depth(1).size(), 3u);
}

TEST(SpanningTree, DepthAndInTree) {
  Topology t = knary_tree(2, 3);
  SpanningTree tree(t, 0);
  EXPECT_EQ(tree.depth(0), 0);
  EXPECT_EQ(tree.depth(1), 1);
  EXPECT_EQ(tree.depth(3), 2);
  EXPECT_EQ(tree.depth(7), 3);
  EXPECT_TRUE(tree.in_tree(14));
  EXPECT_FALSE(tree.in_tree(99));
}

TEST(SpanningTree, PathFromRoot) {
  Topology t(line_nodes(5), 1.1);
  SpanningTree tree(t, 0);
  EXPECT_EQ(tree.path_from_root(3), (std::vector<NodeId>{0, 1, 2, 3}));
  EXPECT_EQ(tree.path_from_root(0), (std::vector<NodeId>{0}));
}

TEST(SpanningTree, PathOfDetachedNodeIsEmpty) {
  Topology t(line_nodes(5), 1.1);
  t.kill_node(2);
  SpanningTree tree(t, 0);
  EXPECT_TRUE(tree.path_from_root(4).empty());
  EXPECT_FALSE(tree.in_tree(4));
  EXPECT_EQ(tree.size(), 2u);  // 0, 1
}

TEST(SpanningTree, RebuildAfterDeathReroutes) {
  // Diamond: 0-1, 0-2, 1-3, 2-3. Kill 1: 3 must re-parent to 2.
  std::vector<Node> nodes(4);
  Topology t(nodes, {{0, 1}, {0, 2}, {1, 3}, {2, 3}});
  SpanningTree tree(t, 0);
  EXPECT_EQ(tree.parent(3), 1u);  // lowest-id parent wins
  t.kill_node(1);
  tree.rebuild(t);
  EXPECT_EQ(tree.parent(3), 2u);
  EXPECT_EQ(tree.size(), 3u);
  EXPECT_EQ(tree.depth(3), 2);
}

TEST(SpanningTree, DeterministicTieBreakTowardLowestId) {
  // Node 3 reachable through both 1 and 2 at equal depth.
  std::vector<Node> nodes(4);
  Topology t(nodes, {{0, 1}, {0, 2}, {1, 3}, {2, 3}});
  SpanningTree a(t, 0);
  SpanningTree b(t, 0);
  EXPECT_EQ(a.parent(3), 1u);
  EXPECT_EQ(b.parent(3), 1u);
}

TEST(SpanningTree, BfsOrderIsTopDown) {
  Topology t = knary_tree(2, 3);
  SpanningTree tree(t, 0);
  const auto order = tree.bfs_order();
  ASSERT_EQ(order.size(), 15u);
  EXPECT_EQ(order.front(), 0u);
  for (std::size_t i = 1; i < order.size(); ++i) {
    EXPECT_LT(tree.depth(order[i - 1]), tree.depth(order[i]) + 1);
  }
  // Every node appears after its parent.
  std::vector<std::size_t> pos(order.size());
  for (std::size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
  for (NodeId u = 1; u < 15; ++u) EXPECT_LT(pos[tree.parent(u)], pos[u]);
}

TEST(SpanningTree, SubtreeMembership) {
  Topology t = knary_tree(2, 2);  // 7 nodes
  SpanningTree tree(t, 0);
  const auto sub = tree.subtree(1);
  EXPECT_EQ(sub, (std::vector<NodeId>{1, 3, 4}));
  EXPECT_EQ(tree.subtree(0).size(), 7u);
  EXPECT_EQ(tree.subtree(6), (std::vector<NodeId>{6}));
}

TEST(SpanningTree, LeavesOfChain) {
  Topology t(line_nodes(4), 1.1);
  SpanningTree tree(t, 0);
  EXPECT_EQ(tree.leaves(), (std::vector<NodeId>{3}));
}

TEST(SpanningTree, SubtreePartitionMatchesPerChildSubtrees) {
  Topology t = knary_tree(3, 2);  // 13 nodes, 3 root children
  SpanningTree tree(t, 0);
  const auto parts = tree.subtree_partition();
  const auto kids = tree.children(0);
  ASSERT_EQ(parts.size(), kids.size());
  for (std::size_t i = 0; i < parts.size(); ++i) {
    std::set<NodeId> part(parts[i].begin(), parts[i].end());
    const auto sub = tree.subtree(kids[i]);
    EXPECT_EQ(part, std::set<NodeId>(sub.begin(), sub.end()));
  }
}

TEST(SpanningTree, SubtreePartitionListsFollowBfsOrder) {
  sim::Rng rng(23);
  RandomPlacementConfig cfg;
  Topology t = random_connected(cfg, rng);
  SpanningTree tree(t, 0);
  const auto parts = tree.subtree_partition();

  // Each list is a subsequence of the cached BFS order (reversing a list
  // therefore walks that subtree leaves-first, like the global walk).
  std::vector<std::size_t> pos(t.size());
  const auto& order = tree.bfs_order();
  for (std::size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
  std::set<NodeId> seen;
  for (const auto& part : parts) {
    for (std::size_t j = 1; j < part.size(); ++j) {
      EXPECT_LT(pos[part[j - 1]], pos[part[j]]);
    }
    for (NodeId u : part) EXPECT_TRUE(seen.insert(u).second);  // disjoint
  }
  // Union plus the root is exactly the member set.
  EXPECT_EQ(seen.size() + 1, tree.size());
  EXPECT_FALSE(seen.count(0));
  for (NodeId u : order) {
    if (u != 0) {
      EXPECT_TRUE(seen.count(u));
    }
  }
}

TEST(SpanningTree, SubtreePartitionOfLoneRootIsEmpty) {
  Topology t(line_nodes(1), 1.1);
  SpanningTree tree(t, 0);
  EXPECT_TRUE(tree.subtree_partition().empty());
}

TEST(SpanningTree, MaxBranchingOnRandomTopologyWithinBound) {
  sim::Rng rng(17);
  RandomPlacementConfig cfg;
  Topology t = random_connected(cfg, rng);
  SpanningTree tree(t, 0);
  EXPECT_EQ(tree.size(), cfg.node_count);
  EXPECT_LE(tree.max_branching(), cfg.max_children);
  EXPECT_LE(static_cast<std::size_t>(tree.max_depth()), cfg.max_depth);
}

}  // namespace
}  // namespace dirq::net

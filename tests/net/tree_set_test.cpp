// TreeSet: N spanning trees over one topology — construction contracts,
// overlapping and disjoint tree structure, churn-locality of
// rebuild_affected, single-tree equivalence, and spread_roots placement.
#include "net/tree_set.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "net/placement.hpp"
#include "sim/rng.hpp"

namespace dirq::net {
namespace {

std::vector<Node> line_nodes(std::size_t n) {
  std::vector<Node> nodes(n);
  for (std::size_t i = 0; i < n; ++i) nodes[i].x = static_cast<double>(i);
  return nodes;
}

/// Two disjoint 3-node lines: 0-1-2 (x = 0..2) and 3-4-5 (x = 10..12).
/// Unit-disk with range 1.1 so add_node revivals/additions re-link.
Topology two_islands() {
  std::vector<Node> nodes(6);
  for (std::size_t i = 0; i < 3; ++i) nodes[i].x = static_cast<double>(i);
  for (std::size_t i = 3; i < 6; ++i) nodes[i].x = static_cast<double>(i + 7);
  return Topology(std::move(nodes), 1.1);
}

TEST(TreeSet, ConstructorContracts) {
  Topology t(line_nodes(4), 1.1);
  EXPECT_THROW(TreeSet(t, {}), std::invalid_argument);
  EXPECT_THROW(TreeSet(t, {0, 2, 0}), std::invalid_argument);
  EXPECT_THROW(TreeSet(t, {0, 99}), std::invalid_argument);
  t.kill_node(3);
  EXPECT_THROW(TreeSet(t, {0, 3}), std::invalid_argument);
}

TEST(TreeSet, SingleTreeMatchesSpanningTree) {
  sim::Rng rng(7);
  Topology t = random_connected(RandomPlacementConfig{}, rng);
  const SpanningTree reference(t, 0);
  const TreeSet set(t, {0});
  ASSERT_EQ(set.count(), 1u);
  EXPECT_EQ(set.root(0), 0u);
  for (NodeId u = 0; u < t.size(); ++u) {
    EXPECT_EQ(set.tree(0).parent(u), reference.parent(u)) << "node " << u;
    EXPECT_EQ(set.tree(0).depth(u), reference.depth(u)) << "node " << u;
  }
  EXPECT_EQ(set.tree(0).bfs_order(), reference.bfs_order());
}

TEST(TreeSet, OverlappingTreesSpanFromBothEnds) {
  // One line, roots at both ends: both trees cover every node, with
  // mirrored depths.
  Topology t(line_nodes(5), 1.1);
  const TreeSet set(t, {0, 4});
  ASSERT_EQ(set.count(), 2u);
  EXPECT_EQ(set.tree(0).size(), 5u);
  EXPECT_EQ(set.tree(1).size(), 5u);
  for (NodeId u = 0; u < 5; ++u) {
    EXPECT_EQ(set.tree(0).depth(u), static_cast<std::int64_t>(u));
    EXPECT_EQ(set.tree(1).depth(u), static_cast<std::int64_t>(4 - u));
  }
}

TEST(TreeSet, DisjointTreesStayOnTheirIslands) {
  Topology t = two_islands();
  const TreeSet set(t, {0, 3});
  EXPECT_EQ(set.tree(0).size(), 3u);
  EXPECT_EQ(set.tree(1).size(), 3u);
  EXPECT_FALSE(set.tree(0).in_tree(4));
  EXPECT_FALSE(set.tree(1).in_tree(1));
}

TEST(TreeSet, RebuildAffectedTouchesOnlyTheChangedIsland) {
  Topology t = two_islands();
  TreeSet set(t, {0, 3});
  t.kill_node(1);
  const std::vector<TreeId> rebuilt = set.rebuild_affected(t, 1);
  EXPECT_EQ(rebuilt, (std::vector<TreeId>{0}));
  // Tree 0 lost its only path to node 2; tree 1 is untouched.
  EXPECT_EQ(set.tree(0).size(), 1u);
  EXPECT_FALSE(set.tree(0).in_tree(2));
  EXPECT_EQ(set.tree(1).size(), 3u);
  EXPECT_EQ(set.tree(1).parent(5), 4u);
}

TEST(TreeSet, RebuildAffectedOnMemberRebuildsEveryContainingTree) {
  // Shared line, roots at both ends: a mid-line death affects both trees,
  // and the rebuilt ids come back ascending.
  Topology t(line_nodes(5), 1.1);
  TreeSet set(t, {0, 4});
  t.kill_node(2);
  const std::vector<TreeId> rebuilt = set.rebuild_affected(t, 2);
  EXPECT_EQ(rebuilt, (std::vector<TreeId>{0, 1}));
  EXPECT_EQ(set.tree(0).size(), 2u);  // 0, 1
  EXPECT_EQ(set.tree(1).size(), 2u);  // 4, 3
}

TEST(TreeSet, RebuildAffectedSkipsDetachedStranger) {
  // After the island's bridge dies, the stranded node has no alive
  // neighbour in any tree: reporting it again is a no-op.
  Topology t = two_islands();
  TreeSet set(t, {0, 3});
  t.kill_node(1);
  (void)set.rebuild_affected(t, 1);
  const std::vector<TreeId> rebuilt = set.rebuild_affected(t, 2);
  EXPECT_TRUE(rebuilt.empty());
}

TEST(TreeSet, RebuildAffectedAttachesNewNeighbour) {
  // A node added next to island 0 (unit-disk link to node 2) must pull a
  // tree-0 rebuild and join it; island 1 stays untouched.
  Topology t = two_islands();
  TreeSet set(t, {0, 3});
  Node n;
  n.x = 2.9;  // within radio range of node 2 only
  const NodeId added = t.add_node(n);
  const std::vector<TreeId> rebuilt = set.rebuild_affected(t, added);
  EXPECT_EQ(rebuilt, (std::vector<TreeId>{0}));
  EXPECT_TRUE(set.tree(0).in_tree(added));
  EXPECT_FALSE(set.tree(1).in_tree(added));
}

TEST(SpreadRoots, FirstRootIsTheLowestAliveId) {
  sim::Rng rng(7);
  Topology t = random_connected(RandomPlacementConfig{}, rng);
  EXPECT_EQ(spread_roots(t, 1), (std::vector<NodeId>{0}));
}

TEST(SpreadRoots, FarthestPointOnALine) {
  Topology t(line_nodes(5), 1.1);
  EXPECT_EQ(spread_roots(t, 2), (std::vector<NodeId>{0, 4}));
  // Third root: maximise min distance to {0, 4} -> the midpoint.
  EXPECT_EQ(spread_roots(t, 3), (std::vector<NodeId>{0, 4, 2}));
}

TEST(SpreadRoots, ContractsAndDeterminism) {
  sim::Rng rng(7);
  Topology t = random_connected(RandomPlacementConfig{}, rng);
  EXPECT_THROW(spread_roots(t, 0), std::invalid_argument);
  EXPECT_THROW(spread_roots(t, t.alive_count() + 1), std::invalid_argument);
  const std::vector<NodeId> a = spread_roots(t, 4);
  const std::vector<NodeId> b = spread_roots(t, 4);
  EXPECT_EQ(a, b);
  // Roots are distinct and the full request is honoured.
  EXPECT_EQ(a.size(), 4u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (std::size_t j = i + 1; j < a.size(); ++j) EXPECT_NE(a[i], a[j]);
  }
}

}  // namespace
}  // namespace dirq::net

// BBox: the static location attribute's geometry.
#include "net/bbox.hpp"

#include <gtest/gtest.h>

namespace dirq::net {
namespace {

TEST(BBox, PointBoxContainsOnlyItself) {
  const BBox b = BBox::point(3.0, 4.0);
  EXPECT_TRUE(b.contains(3.0, 4.0));
  EXPECT_FALSE(b.contains(3.1, 4.0));
  EXPECT_DOUBLE_EQ(b.area(), 0.0);
  EXPECT_FALSE(b.is_empty());
}

TEST(BBox, EmptyBoxContainsNothing) {
  const BBox e = BBox::empty();
  EXPECT_TRUE(e.is_empty());
  EXPECT_FALSE(e.contains(0.0, 0.0));
  EXPECT_FALSE(e.contains(1.0, 1.0));
}

TEST(BBox, ContainmentIsInclusive) {
  const BBox b{0.0, 0.0, 10.0, 5.0};
  EXPECT_TRUE(b.contains(0.0, 0.0));
  EXPECT_TRUE(b.contains(10.0, 5.0));
  EXPECT_TRUE(b.contains(5.0, 2.5));
  EXPECT_FALSE(b.contains(10.01, 2.0));
  EXPECT_FALSE(b.contains(5.0, -0.01));
}

TEST(BBox, Intersection) {
  const BBox a{0.0, 0.0, 10.0, 10.0};
  EXPECT_TRUE(a.intersects(BBox{5.0, 5.0, 15.0, 15.0}));
  EXPECT_TRUE(a.intersects(BBox{10.0, 10.0, 20.0, 20.0}));  // corner touch
  EXPECT_FALSE(a.intersects(BBox{10.1, 0.0, 20.0, 10.0}));
  EXPECT_FALSE(a.intersects(BBox{0.0, 11.0, 10.0, 20.0}));
  EXPECT_TRUE(a.intersects(BBox{2.0, 2.0, 3.0, 3.0}));  // containment
}

TEST(BBox, EmptyNeverIntersects) {
  const BBox a{0.0, 0.0, 10.0, 10.0};
  EXPECT_FALSE(a.intersects(BBox::empty()));
  EXPECT_FALSE(BBox::empty().intersects(a));
  EXPECT_FALSE(BBox::empty().intersects(BBox::empty()));
}

TEST(BBox, JoinIsLeastUpperBound) {
  const BBox a{0.0, 0.0, 2.0, 2.0};
  const BBox b{5.0, 1.0, 6.0, 8.0};
  const BBox j = a.join(b);
  EXPECT_DOUBLE_EQ(j.min_x, 0.0);
  EXPECT_DOUBLE_EQ(j.min_y, 0.0);
  EXPECT_DOUBLE_EQ(j.max_x, 6.0);
  EXPECT_DOUBLE_EQ(j.max_y, 8.0);
}

TEST(BBox, EmptyIsJoinIdentity) {
  const BBox a{1.0, 2.0, 3.0, 4.0};
  EXPECT_EQ(a.join(BBox::empty()), a);
  EXPECT_EQ(BBox::empty().join(a), a);
  EXPECT_TRUE(BBox::empty().join(BBox::empty()).is_empty());
}

TEST(BBox, JoinIsCommutativeAndAssociative) {
  const BBox a{0.0, 0.0, 1.0, 1.0};
  const BBox b{2.0, -1.0, 3.0, 0.5};
  const BBox c{-5.0, 4.0, -4.0, 6.0};
  EXPECT_EQ(a.join(b), b.join(a));
  EXPECT_EQ(a.join(b).join(c), a.join(b.join(c)));
}

TEST(BBox, Dimensions) {
  const BBox b{1.0, 2.0, 4.0, 10.0};
  EXPECT_DOUBLE_EQ(b.width(), 3.0);
  EXPECT_DOUBLE_EQ(b.height(), 8.0);
  EXPECT_DOUBLE_EQ(b.area(), 24.0);
  EXPECT_DOUBLE_EQ(BBox::empty().area(), 0.0);
}

TEST(BBox, EqualityTreatsAllEmptiesAlike) {
  EXPECT_EQ(BBox::empty(), (BBox{9.0, 9.0, 0.0, 0.0}));
  EXPECT_NE(BBox::point(1.0, 1.0), BBox::point(1.0, 2.0));
}

}  // namespace
}  // namespace dirq::net

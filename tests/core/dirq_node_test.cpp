// DirqNode in isolation: the per-node state machine driven directly,
// without a network — message emission, table lifecycle, tree maintenance.
#include "core/dirq_node.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace dirq::core {
namespace {

constexpr SensorType kT = kSensorTemperature;
constexpr SensorType kH = kSensorHumidity;

struct Outbox {
  struct Sent {
    NodeId from, to;
    Message msg;
  };
  std::vector<Sent> unicasts;
  std::vector<std::pair<NodeId, std::vector<NodeId>>> multicasts;
  std::vector<NodeId> broadcasts;

  void wire(DirqNode& n) {
    n.set_send([this](NodeId from, NodeId to, const Message& m) {
      unicasts.push_back({from, to, m});
    });
    n.set_multicast([this](NodeId from, const std::vector<NodeId>& targets,
                           const Message&) {
      multicasts.emplace_back(from, targets);
    });
    n.set_broadcast([this](NodeId from, const Message&) {
      broadcasts.push_back(from);
    });
  }

  [[nodiscard]] std::size_t update_count() const {
    std::size_t n = 0;
    for (const Sent& s : unicasts) {
      if (std::holds_alternative<UpdateMessage>(s.msg)) ++n;
    }
    return n;
  }
  [[nodiscard]] const UpdateMessage& last_update() const {
    for (auto it = unicasts.rbegin(); it != unicasts.rend(); ++it) {
      if (const auto* u = std::get_if<UpdateMessage>(&it->msg)) return *u;
    }
    throw std::logic_error("no update sent");
  }
};

DirqNode make_node(NodeId id, std::vector<SensorType> sensors,
                   double pct = 5.0) {
  return DirqNode(id, std::move(sensors),
                  std::make_unique<FixedTheta>(pct));
}

TEST(DirqNode, FirstSampleAnnouncesToParent) {
  DirqNode n = make_node(7, {kT});
  n.set_parent(2);
  Outbox out;
  out.wire(n);
  n.sample(kT, 20.0, 0);
  ASSERT_EQ(out.update_count(), 1u);
  const UpdateMessage& u = out.last_update();
  EXPECT_EQ(u.from, 7u);
  EXPECT_EQ(u.type, kT);
  EXPECT_TRUE(u.has_range);
  EXPECT_DOUBLE_EQ(u.min, 20.0 - 1.1);
  EXPECT_DOUBLE_EQ(u.max, 20.0 + 1.1);
}

TEST(DirqNode, RootSwallowsUpdates) {
  DirqNode n = make_node(0, {kT});  // parent defaults to kNoNode
  Outbox out;
  out.wire(n);
  n.sample(kT, 20.0, 0);
  EXPECT_EQ(out.update_count(), 0u);
  EXPECT_EQ(n.updates_sent(), 0);
}

TEST(DirqNode, SmallMovesStaySilent) {
  DirqNode n = make_node(7, {kT});
  n.set_parent(2);
  Outbox out;
  out.wire(n);
  n.sample(kT, 20.0, 0);
  n.sample(kT, 20.5, 1);   // inside [18.9, 21.1]
  n.sample(kT, 19.2, 2);
  EXPECT_EQ(out.update_count(), 1u);
}

TEST(DirqNode, EscapeRetriggersUpdate) {
  DirqNode n = make_node(7, {kT});
  n.set_parent(2);
  Outbox out;
  out.wire(n);
  n.sample(kT, 20.0, 0);
  n.sample(kT, 25.0, 1);  // escapes: new tuple [23.9, 26.1], moved > theta
  EXPECT_EQ(out.update_count(), 2u);
  EXPECT_EQ(n.updates_sent(), 2);
}

TEST(DirqNode, ChildUpdateMergesAndRelays) {
  DirqNode n = make_node(5, {});
  n.set_parent(0);
  n.set_children({8, 9});
  Outbox out;
  out.wire(n);
  n.handle(Message{UpdateMessage{8, 0, kT, 10.0, 12.0, true}}, 8, 0);
  ASSERT_EQ(out.update_count(), 1u);  // relayed to parent
  EXPECT_DOUBLE_EQ(out.last_update().min, 10.0);
  const RangeTable* t = n.table(kT);
  ASSERT_NE(t, nullptr);
  EXPECT_TRUE(t->child(8).has_value());
}

TEST(DirqNode, UpdateFromNonChildIgnored) {
  DirqNode n = make_node(5, {});
  n.set_parent(0);
  n.set_children({8});
  Outbox out;
  out.wire(n);
  n.handle(Message{UpdateMessage{9, 0, kT, 10.0, 12.0, true}}, 9, 0);
  EXPECT_EQ(out.update_count(), 0u);
  EXPECT_EQ(n.table(kT), nullptr);
}

TEST(DirqNode, RetractionEmptiesTableAndRelays) {
  DirqNode n = make_node(5, {});
  n.set_parent(0);
  n.set_children({8});
  Outbox out;
  out.wire(n);
  n.handle(Message{UpdateMessage{8, 0, kT, 10.0, 12.0, true}}, 8, 0);
  n.handle(Message{UpdateMessage{8, 0, kT, 0.0, 0.0, false}}, 8, 1);
  EXPECT_EQ(n.table(kT), nullptr);  // has_any() false -> hidden
  ASSERT_EQ(out.update_count(), 2u);
  EXPECT_FALSE(out.last_update().has_range);  // retraction relayed
}

TEST(DirqNode, QueryForwardingUsesMulticast) {
  DirqNode n = make_node(5, {});
  n.set_children({8, 9, 10});
  Outbox out;
  out.wire(n);
  n.handle(Message{UpdateMessage{8, 0, kT, 10.0, 12.0, true}}, 8, 0);
  n.handle(Message{UpdateMessage{9, 0, kT, 30.0, 35.0, true}}, 9, 0);
  n.handle(Message{UpdateMessage{10, 0, kT, 11.0, 13.0, true}}, 10, 0);
  out.multicasts.clear();
  n.handle(Message{QueryMessage{query::RangeQuery{1, kT, 11.5, 11.9, 1}}}, 0, 1);
  ASSERT_EQ(out.multicasts.size(), 1u);
  EXPECT_EQ(out.multicasts[0].second, (std::vector<NodeId>{8, 10}));
}

TEST(DirqNode, EhrDuplicateSuppression) {
  DirqNode n = make_node(5, {});
  Outbox out;
  out.wire(n);
  EhrMessage e;
  e.round = 1;
  e.alive_nodes = 10;
  e.umax_per_hour = 100.0;
  n.handle(Message{e}, 2, 0);
  n.handle(Message{e}, 3, 0);  // same round from another neighbour
  EXPECT_EQ(out.broadcasts.size(), 1u);
  EXPECT_EQ(n.last_ehr_round(), 1);
  e.round = 2;
  n.handle(Message{e}, 2, 1);
  EXPECT_EQ(out.broadcasts.size(), 2u);
}

TEST(DirqNode, ChildLossTriggersCorrection) {
  DirqNode n = make_node(5, {kT});
  n.set_parent(0);
  n.set_children({8});
  Outbox out;
  out.wire(n);
  n.sample(kT, 20.0, 0);
  n.handle(Message{UpdateMessage{8, 0, kT, 100.0, 110.0, true}}, 8, 0);
  const std::size_t before = out.update_count();
  n.on_child_lost(8, 1);
  EXPECT_EQ(out.update_count(), before + 1);  // shrunk aggregate relayed
  EXPECT_DOUBLE_EQ(out.last_update().max, 20.0 + 1.1);
  EXPECT_TRUE(n.children().empty());
}

TEST(DirqNode, ForceReannounceResendsEverything) {
  DirqNode n = make_node(5, {kT, kH});
  n.set_parent(0);
  Outbox out;
  out.wire(n);
  n.sample(kT, 20.0, 0);
  n.sample(kH, 60.0, 0);
  const std::size_t before = out.update_count();
  n.set_parent(3);  // re-parented by tree repair
  n.force_reannounce(1);
  EXPECT_EQ(out.update_count(), before + 2);  // both tables re-sent
  EXPECT_EQ(out.unicasts.back().to, 3u);
}

TEST(DirqNode, DetachSensorRetractsOwnTupleOnly) {
  DirqNode n = make_node(5, {kT});
  n.set_parent(0);
  n.set_children({8});
  Outbox out;
  out.wire(n);
  n.sample(kT, 20.0, 0);
  n.handle(Message{UpdateMessage{8, 0, kT, 30.0, 32.0, true}}, 8, 0);
  n.detach_sensor(kT, 1);
  const RangeTable* t = n.table(kT);
  ASSERT_NE(t, nullptr);  // child entry keeps the table alive (Fig. 4)
  EXPECT_FALSE(t->own().has_value());
  // A later sample for the detached type is ignored.
  const std::size_t before = out.update_count();
  n.sample(kT, 50.0, 2);
  EXPECT_EQ(out.update_count(), before);
}

TEST(DirqNode, SubtreeBoxJoinsChildren) {
  DirqNode n = make_node(5, {});
  n.set_position(1.0, 1.0);
  n.set_children({8});
  n.handle(Message{LocationAnnounce{8, 0, net::BBox{3.0, 3.0, 4.0, 4.0}}}, 8, 0);
  const net::BBox box = n.subtree_box();
  EXPECT_DOUBLE_EQ(box.min_x, 1.0);
  EXPECT_DOUBLE_EQ(box.max_x, 4.0);
}

TEST(DirqNode, LocationAnnounceDeduplicates) {
  DirqNode n = make_node(5, {});
  n.set_parent(0);
  n.set_position(1.0, 1.0);
  Outbox out;
  out.wire(n);
  n.announce_location(0);
  n.announce_location(1);  // unchanged box: silent
  std::size_t loc_count = 0;
  for (const auto& s : out.unicasts) {
    if (std::holds_alternative<LocationAnnounce>(s.msg)) ++loc_count;
  }
  EXPECT_EQ(loc_count, 1u);
}

}  // namespace
}  // namespace dirq::core

// LmacTransport unit behaviour: payload addressing (multicast target
// filtering), per-kind ledger accounting, and cross-layer callback wiring —
// isolated from the full DirQ network.
#include "core/lmac_transport.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "sim/scheduler.hpp"

namespace dirq::core {
namespace {

struct Capture final : MessageSink {
  struct Rec {
    NodeId to, from;
    Message msg;
  };
  std::vector<Rec> delivered;
  void deliver(NodeId to, NodeId from, const Message& msg) override {
    delivered.push_back({to, from, msg});
  }
};

struct Rig {
  sim::Scheduler sched;
  net::Topology topo;
  mac::LmacConfig cfg;
  mac::LmacNetwork mac;
  Capture sink;
  LmacTransport transport;

  explicit Rig(std::size_t n)
      : topo(star(n)), cfg(small()), mac(sched, topo, cfg),
        transport(mac, sink) {
    mac.start();
  }
  // Star: node 0 at the centre, leaves on the unit circle (far enough
  // apart that only centre-leaf links form). Unit-disk construction so
  // node revival (add_node) re-links correctly.
  static net::Topology star(std::size_t n) {
    std::vector<net::Node> nodes(n);
    for (std::size_t i = 1; i < n; ++i) {
      const double angle = 2.0 * 3.141592653589793 * static_cast<double>(i - 1) /
                           static_cast<double>(n - 1);
      nodes[i].x = std::cos(angle);
      nodes[i].y = std::sin(angle);
    }
    return net::Topology(std::move(nodes), 1.05);
  }
  static mac::LmacConfig small() {
    mac::LmacConfig c;
    c.slots_per_frame = 8;
    c.ticks_per_slot = 8;
    return c;
  }
  void run_frames(std::int64_t frames) {
    sched.run_until(sched.now() + frames * cfg.frame_ticks());
  }
};

TEST(LmacTransport, UnicastDeliversAndCharges) {
  Rig r(3);
  r.transport.unicast(1, 0, Message{UpdateMessage{1, 0, 0, 1.0, 2.0, true}});
  r.run_frames(2);
  ASSERT_EQ(r.sink.delivered.size(), 1u);
  EXPECT_EQ(r.sink.delivered[0].to, 0u);
  EXPECT_EQ(r.sink.delivered[0].from, 1u);
  EXPECT_EQ(r.transport.costs().update_tx, 1);
  EXPECT_EQ(r.transport.costs().update_rx, 1);
}

TEST(LmacTransport, MulticastOnlyAddressedTargetsDecode) {
  Rig r(5);  // centre 0 with leaves 1-4
  const std::vector<NodeId> targets{1, 3};
  r.transport.multicast(0, targets, Message{QueryMessage{}});
  r.run_frames(2);
  std::vector<NodeId> receivers;
  for (const auto& rec : r.sink.delivered) receivers.push_back(rec.to);
  std::sort(receivers.begin(), receivers.end());
  EXPECT_EQ(receivers, targets);
  // One transmission, two receptions — non-addressed leaves 2 and 4 slept
  // through the data section and were never charged.
  EXPECT_EQ(r.transport.costs().query_tx, 1);
  EXPECT_EQ(r.transport.costs().query_rx, 2);
}

TEST(LmacTransport, MulticastUnsortedTargetsAllReceiveExactlyOnce) {
  // Regression: multicast used to copy the caller's target list verbatim
  // into the Addressed payload while on_message filtered hearers with
  // std::binary_search — undefined behaviour on an unsorted list that in
  // practice silently dropped deliveries for callers passing children in
  // tree order. Every addressed node must decode exactly once; every
  // non-addressed hearer must charge no reception.
  Rig r(6);  // centre 0 with leaves 1-5
  const std::vector<NodeId> targets{4, 1, 3};  // deliberately not sorted
  r.transport.multicast(0, targets, Message{QueryMessage{}});
  r.run_frames(2);
  std::vector<NodeId> receivers;
  for (const auto& rec : r.sink.delivered) receivers.push_back(rec.to);
  std::sort(receivers.begin(), receivers.end());
  EXPECT_EQ(receivers, (std::vector<NodeId>{1, 3, 4}));
  EXPECT_EQ(r.transport.costs().query_tx, 1);
  EXPECT_EQ(r.transport.costs().query_rx, 3);
}

TEST(LmacTransport, LedgerClassifiesEveryMessageKind) {
  // charge_tx/charge_rx routing: Query and MultiQuery feed the query
  // counters, Update the update counters, and everything else (EhrMessage,
  // LocationAnnounce) is control traffic.
  Rig r(3);
  r.transport.unicast(1, 0, Message{QueryMessage{}});
  r.transport.unicast(1, 0, Message{MultiQueryMessage{}});
  r.transport.unicast(1, 0, Message{UpdateMessage{}});
  r.transport.unicast(1, 0, Message{EhrMessage{}});
  r.transport.unicast(1, 0, Message{LocationAnnounce{}});
  r.run_frames(2);
  const CostLedger& l = r.transport.costs();
  EXPECT_EQ(l.query_tx, 2);
  EXPECT_EQ(l.query_rx, 2);
  EXPECT_EQ(l.update_tx, 1);
  EXPECT_EQ(l.update_rx, 1);
  EXPECT_EQ(l.control_tx, 2);
  EXPECT_EQ(l.control_rx, 2);
  EXPECT_EQ(r.sink.delivered.size(), 5u);
}

TEST(LmacTransport, MulticastLedgerClassification) {
  // The multicast path routes through the same charge helpers: an Update
  // multicast to two leaves is 1 update_tx + 2 update_rx, no query units.
  Rig r(4);
  const std::vector<NodeId> targets{2, 1};
  r.transport.multicast(0, targets, Message{UpdateMessage{}});
  r.run_frames(2);
  const CostLedger& l = r.transport.costs();
  EXPECT_EQ(l.update_tx, 1);
  EXPECT_EQ(l.update_rx, 2);
  EXPECT_EQ(l.query_tx, 0);
  EXPECT_EQ(l.control_tx, 0);
}

TEST(LmacTransport, ObserverForwardingStopsWhenHandlersUnset) {
  // Without handlers installed the adapter must swallow the MAC's
  // cross-layer notifications (default-constructed std::function).
  Rig r(3);
  r.run_frames(2);
  r.topo.kill_node(2);
  EXPECT_NO_FATAL_FAILURE(r.run_frames(r.cfg.timeout_frames + 2));
}

TEST(LmacTransport, EmptyMulticastIsFree) {
  Rig r(3);
  r.transport.multicast(0, {}, Message{QueryMessage{}});
  r.run_frames(2);
  EXPECT_TRUE(r.sink.delivered.empty());
  EXPECT_EQ(r.transport.costs().query_tx, 0);
}

TEST(LmacTransport, BroadcastReachesAllNeighbours) {
  Rig r(4);
  r.transport.broadcast(0, Message{EhrMessage{}});
  r.run_frames(2);
  EXPECT_EQ(r.sink.delivered.size(), 3u);
  EXPECT_EQ(r.transport.costs().control_tx, 1);
  EXPECT_EQ(r.transport.costs().control_rx, 3);
}

TEST(LmacTransport, CrossLayerCallbacksForward) {
  Rig r(3);
  std::vector<std::pair<NodeId, NodeId>> lost, found;
  r.transport.set_on_neighbor_lost(
      [&](NodeId self, NodeId nb) { lost.emplace_back(self, nb); });
  r.transport.set_on_neighbor_found(
      [&](NodeId self, NodeId nb) { found.emplace_back(self, nb); });
  r.run_frames(2);
  r.topo.kill_node(2);
  r.run_frames(r.cfg.timeout_frames + 2);
  ASSERT_FALSE(lost.empty());
  EXPECT_EQ(lost[0].second, 2u);

  net::Node fresh;
  fresh.id = 2;  // revive the slot at the dead node's old position
  fresh.x = r.topo.node(2).x;
  fresh.y = r.topo.node(2).y;
  r.topo.add_node(fresh);
  r.run_frames(4);
  bool rediscovered = false;
  for (auto [self, nb] : found) {
    if (nb == 2) rediscovered = true;
  }
  EXPECT_TRUE(rediscovered);
}

TEST(LmacTransport, MessagesQueueAcrossFramesInOrder) {
  Rig r(3);
  for (int i = 0; i < 5; ++i) {
    r.transport.unicast(1, 0,
                        Message{UpdateMessage{1, 0, 0, double(i), double(i), true}});
  }
  r.run_frames(3);
  ASSERT_EQ(r.sink.delivered.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    const auto& u = std::get<UpdateMessage>(
        r.sink.delivered[static_cast<std::size_t>(i)].msg);
    EXPECT_DOUBLE_EQ(u.min, double(i));  // FIFO within the data section
  }
}

}  // namespace
}  // namespace dirq::core

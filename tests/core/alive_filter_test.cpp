// Node-death regression: the alive filter is centralised in the spanning
// tree's cached traversals, so a dead node must disappear consistently
// from (1) the cached BFS order, (2) theta-series averaging, and (3) the
// internal-node count — the three consumers that used to re-filter (or
// forget to filter) ad hoc.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/network.hpp"
#include "net/placement.hpp"
#include "net/spanning_tree.hpp"
#include "net/topology.hpp"

namespace dirq::core {
namespace {

net::Topology line_topology(std::size_t n) {
  std::vector<net::Node> nodes(n);
  for (std::size_t i = 0; i < n; ++i) {
    nodes[i].x = static_cast<double>(i);
    nodes[i].y = 0.0;
    if (i > 0) nodes[i].sensors = {kSensorTemperature};
  }
  return net::Topology(std::move(nodes), 1.5);
}

TEST(AliveFilter, DeadNodeLeavesCachedBfsOrderInternalCountAndThetaMean) {
  net::Topology topo = line_topology(6);  // 0-1-2-3-4-5 with range 1.5
  NetworkConfig cfg;
  cfg.mode = NetworkConfig::ThetaMode::Fixed;
  cfg.fixed_pct = 5.0;
  DirqNetwork net(topo, /*root=*/0, cfg);

  // (1) cached BFS order covers every node before the death...
  EXPECT_EQ(net.tree().bfs_order().size(), 6u);
  // (3) ...internal nodes: every non-leaf of the chain, i.e. 0..4.
  const std::size_t internal_before = net.tree().internal_node_count();
  EXPECT_EQ(internal_before, 5u);
  const double theta_before = net.mean_theta_pct(kSensorTemperature);
  EXPECT_NEAR(theta_before, 5.0, 1e-9);  // fixed theta: every node at 5 %

  // Kill a mid-line node and repair.
  topo.kill_node(4);
  net.handle_node_death(4, /*epoch=*/1);

  // (1) cached BFS order: the dead node is gone, order matches members.
  const std::vector<NodeId>& order = net.tree().bfs_order();
  EXPECT_EQ(order.size(), net.tree().size());
  EXPECT_EQ(std::find(order.begin(), order.end(), NodeId{4}), order.end());
  for (NodeId u : order) EXPECT_TRUE(topo.is_alive(u));

  // (2) theta averaging still sees only alive non-root members.
  EXPECT_NEAR(net.mean_theta_pct(kSensorTemperature), 5.0, 1e-9);

  // (3) internal count is consistent with the rebuilt tree.
  std::size_t expect_internal = 0;
  for (NodeId u : order) {
    if (!net.tree().children(u).empty()) ++expect_internal;
  }
  EXPECT_EQ(net.tree().internal_node_count(), expect_internal);
}

TEST(AliveFilter, ExplicitLinkTopologyNeverTraversesDeadNodes) {
  // The explicit-link constructor keeps links naming dead nodes; the tree
  // and connectivity traversals must still skip them (this used to differ
  // between is_connected, BFS membership, and the per-caller filters).
  std::vector<net::Node> nodes(4);
  nodes[2].alive = false;  // dead on arrival, but named by links below
  for (auto& n : nodes) n.sensors = {kSensorTemperature};
  net::Topology topo(nodes, {{0, 1}, {1, 2}, {2, 3}, {0, 3}});

  net::SpanningTree tree(topo, 0);
  EXPECT_FALSE(tree.in_tree(2));
  const std::vector<NodeId>& order = tree.bfs_order();
  EXPECT_EQ(std::find(order.begin(), order.end(), NodeId{2}), order.end());
  EXPECT_EQ(tree.size(), 3u);  // 0, 1, 3 (3 reached via the 0-3 link)
  // Alive subgraph 0-1, 0-3 is connected even though 2 is a dead bridge.
  EXPECT_TRUE(topo.is_connected());
}

TEST(AliveFilter, RebuildInvalidatesCachedOrderOnEveryMutation) {
  net::Topology topo = line_topology(5);
  net::SpanningTree tree(topo, 0);
  const std::vector<NodeId> before = tree.bfs_order();
  EXPECT_EQ(before.size(), 5u);

  topo.kill_node(2);
  tree.rebuild(topo);
  const std::vector<NodeId> after_death = tree.bfs_order();
  EXPECT_EQ(std::find(after_death.begin(), after_death.end(), NodeId{2}),
            after_death.end());

  net::Node revived;
  revived.id = 2;
  revived.x = 2.0;
  topo.add_node(revived);
  tree.rebuild(topo);
  const std::vector<NodeId> after_revival = tree.bfs_order();
  EXPECT_NE(std::find(after_revival.begin(), after_revival.end(), NodeId{2}),
            after_revival.end());
  EXPECT_EQ(after_revival.size(), 5u);
}

}  // namespace
}  // namespace dirq::core

// The paper-§2 attribute extensions: location-constrained dissemination
// (static attribute) and conjunctive multi-attribute queries.
#include <gtest/gtest.h>

#include "core/network.hpp"
#include "metrics/audit.hpp"
#include "net/placement.hpp"
#include "query/workload.hpp"
#include "sim/rng.hpp"

namespace dirq::core {
namespace {

constexpr SensorType kT = kSensorTemperature;
constexpr SensorType kH = kSensorHumidity;

NetworkConfig fixed_cfg(double pct = 5.0) {
  NetworkConfig cfg;
  cfg.mode = NetworkConfig::ThetaMode::Fixed;
  cfg.fixed_pct = pct;
  return cfg;
}

/// Line 0-1-2-3 along x = 0,1,2,3 with temperature everywhere (non-root).
net::Topology line4() {
  std::vector<net::Node> nodes(4);
  for (std::size_t i = 0; i < 4; ++i) {
    nodes[i].x = static_cast<double>(i);
    if (i > 0) nodes[i].sensors = {kT, kH};
  }
  return net::Topology(std::move(nodes), 1.1);
}

TEST(LocationRouting, SubtreeBoxesAggregateAtBootstrap) {
  net::Topology topo = line4();
  DirqNetwork net(topo, 0, fixed_cfg());
  // Node 1's subtree spans x in [1, 3].
  const net::BBox box = net.node(1).subtree_box();
  EXPECT_DOUBLE_EQ(box.min_x, 1.0);
  EXPECT_DOUBLE_EQ(box.max_x, 3.0);
  // The root's view of child 1 covers the whole chain below it.
  const net::BBox root_box = net.node(0).subtree_box();
  EXPECT_DOUBLE_EQ(root_box.max_x, 3.0);
}

TEST(LocationRouting, RegionPrunesDissemination) {
  net::Topology topo = line4();
  DirqNetwork net(topo, 0, fixed_cfg());
  for (NodeId u = 1; u <= 3; ++u) net.node(u).sample(kT, 20.0, 0);
  // Value window matches everyone; region covers only x <= 1.5.
  query::RangeQuery q{1, kT, 0.0, 100.0, 1};
  q.region = net::BBox{0.0, -1.0, 1.5, 1.0};
  const QueryOutcome out = net.inject(q, 1);
  EXPECT_EQ(out.received, (std::vector<NodeId>{1}));
  EXPECT_EQ(out.believed_sources, (std::vector<NodeId>{1}));
}

TEST(LocationRouting, RegionOutsideDeploymentReachesNobody) {
  net::Topology topo = line4();
  DirqNetwork net(topo, 0, fixed_cfg());
  for (NodeId u = 1; u <= 3; ++u) net.node(u).sample(kT, 20.0, 0);
  query::RangeQuery q{1, kT, 0.0, 100.0, 1};
  q.region = net::BBox{100.0, 100.0, 120.0, 120.0};
  const QueryOutcome out = net.inject(q, 1);
  EXPECT_TRUE(out.received.empty());
}

TEST(LocationRouting, QueryWithoutRegionIsUnconstrained) {
  net::Topology topo = line4();
  DirqNetwork net(topo, 0, fixed_cfg());
  for (NodeId u = 1; u <= 3; ++u) net.node(u).sample(kT, 20.0, 0);
  const QueryOutcome out = net.inject(query::RangeQuery{1, kT, 0.0, 100.0, 1}, 1);
  EXPECT_EQ(out.received.size(), 3u);
}

TEST(LocationRouting, ForwarderInsideRegionPathStillForwards) {
  // Region covers only node 3; nodes 1 and 2 must still forward (their
  // subtree boxes intersect the region even though they lie outside it).
  net::Topology topo = line4();
  DirqNetwork net(topo, 0, fixed_cfg());
  for (NodeId u = 1; u <= 3; ++u) net.node(u).sample(kT, 20.0, 0);
  query::RangeQuery q{1, kT, 0.0, 100.0, 1};
  q.region = net::BBox{2.5, -1.0, 3.5, 1.0};
  const QueryOutcome out = net.inject(q, 1);
  EXPECT_EQ(out.received, (std::vector<NodeId>{1, 2, 3}));
  EXPECT_EQ(out.believed_sources, (std::vector<NodeId>{3}));
}

TEST(LocationRouting, GroundTruthRespectsRegion) {
  sim::Rng rng(42);
  net::Topology topo = net::random_connected(net::RandomPlacementConfig{}, rng);
  net::SpanningTree tree(topo, 0);
  data::Environment env(topo, 4, rng.substream("env"));
  env.advance_to(10);
  query::RangeQuery q{1, kT, -1000.0, 1000.0, 10};
  q.region = net::BBox{0.0, 0.0, 50.0, 50.0};  // quarter of the area
  const query::Involvement inv = query::compute_involvement(q, topo, tree, env);
  for (NodeId s : inv.sources) {
    EXPECT_TRUE(q.region->contains(topo.node(s).x, topo.node(s).y));
  }
  query::RangeQuery unconstrained{2, kT, -1000.0, 1000.0, 10};
  const query::Involvement all =
      query::compute_involvement(unconstrained, topo, tree, env);
  EXPECT_LT(inv.sources.size(), all.sources.size());
}

TEST(LocationRouting, RegionalQueriesCostLessThanUnconstrained) {
  sim::Rng rng(42);
  net::Topology topo = net::random_connected(net::RandomPlacementConfig{}, rng);
  data::Environment env(topo, 4, rng.substream("env"));
  DirqNetwork net(topo, 0, fixed_cfg());
  for (std::int64_t e = 0; e < 50; ++e) {
    env.advance_to(e);
    net.process_epoch(env, e);
  }
  query::WorkloadGenerator gen(topo, net.tree(), env,
                               query::WorkloadConfig{0.4, 0.02},
                               rng.substream("wl"));
  CostUnits regional_cost = 0, full_cost = 0;
  for (int i = 0; i < 40; ++i) {
    query::RangeQuery q = gen.next_regional(50, 0.25);
    regional_cost += net.inject(q, 50).cost;
    q.id += 1000000;  // fresh id, same window, no region
    q.region.reset();
    full_cost += net.inject(q, 50).cost;
  }
  EXPECT_LT(regional_cost, full_cost);
}

TEST(LocationRouting, DeadSubtreeShrinksBoxes) {
  net::Topology topo = line4();
  DirqNetwork net(topo, 0, fixed_cfg());
  topo.kill_node(3);
  net.handle_node_death(3, 1);
  EXPECT_DOUBLE_EQ(net.node(1).subtree_box().max_x, 2.0);
}

TEST(MultiAttribute, ConjunctionRequiresAllPredicates) {
  net::Topology topo = line4();
  DirqNetwork net(topo, 0, fixed_cfg());
  // Node 2 matches both windows; node 3 only the temperature one.
  net.node(1).sample(kT, 10.0, 0);
  net.node(1).sample(kH, 40.0, 0);
  net.node(2).sample(kT, 20.0, 0);
  net.node(2).sample(kH, 60.0, 0);
  net.node(3).sample(kT, 20.5, 0);
  net.node(3).sample(kH, 80.0, 0);
  query::MultiQuery q;
  q.id = 1;
  q.epoch = 1;
  q.predicates = {{kT, 19.0, 21.0}, {kH, 55.0, 65.0}};
  const QueryOutcome out = net.inject(q, 1);
  EXPECT_EQ(out.believed_sources, (std::vector<NodeId>{2}));
}

TEST(MultiAttribute, PrunesBranchMissingOneType) {
  // 0 - 1(temp only), 0 - 2(temp+humidity): a temp+humidity conjunction
  // must never enter node 1's branch (it cannot satisfy the humidity
  // conjunct anywhere).
  std::vector<net::Node> nodes(3);
  nodes[1].sensors = {kT};
  nodes[2].sensors = {kT, kH};
  net::Topology topo(nodes, {{0, 1}, {0, 2}});
  DirqNetwork net(topo, 0, fixed_cfg());
  net.node(1).sample(kT, 20.0, 0);
  net.node(2).sample(kT, 20.0, 0);
  net.node(2).sample(kH, 60.0, 0);
  query::MultiQuery q;
  q.id = 1;
  q.epoch = 1;
  q.predicates = {{kT, 0.0, 100.0}, {kH, 0.0, 100.0}};
  const QueryOutcome out = net.inject(q, 1);
  EXPECT_EQ(out.received, (std::vector<NodeId>{2}));
}

TEST(MultiAttribute, EmptyPredicateListReachesNobody) {
  net::Topology topo = line4();
  DirqNetwork net(topo, 0, fixed_cfg());
  for (NodeId u = 1; u <= 3; ++u) net.node(u).sample(kT, 20.0, 0);
  query::MultiQuery q;
  q.id = 1;
  const QueryOutcome out = net.inject(q, 1);
  EXPECT_TRUE(out.received.empty());
}

TEST(MultiAttribute, SinglePredicateMatchesRangeQueryBehaviour) {
  net::Topology topo = line4();
  DirqNetwork net(topo, 0, fixed_cfg());
  net.node(3).sample(kT, 30.0, 0);
  net.node(2).sample(kT, 20.0, 0);
  net.node(1).sample(kT, 10.0, 0);
  query::MultiQuery mq;
  mq.id = 1;
  mq.predicates = {{kT, 29.5, 30.5}};
  const QueryOutcome multi = net.inject(mq, 1);
  const QueryOutcome single =
      net.inject(query::RangeQuery{2, kT, 29.5, 30.5, 1}, 1);
  EXPECT_EQ(multi.received, single.received);
  EXPECT_EQ(multi.believed_sources, single.believed_sources);
  EXPECT_EQ(multi.cost, single.cost);
}

TEST(MultiAttribute, GroundTruthConjunction) {
  sim::Rng rng(42);
  net::Topology topo = net::random_connected(net::RandomPlacementConfig{}, rng);
  net::SpanningTree tree(topo, 0);
  data::Environment env(topo, 4, rng.substream("env"));
  env.advance_to(10);
  query::MultiQuery q;
  q.id = 1;
  q.predicates = {{kT, -1000.0, 1000.0}, {kH, -1000.0, 1000.0}};
  const query::Involvement inv = query::compute_involvement(q, topo, tree, env);
  // Sources = nodes carrying BOTH sensors (windows are unbounded).
  std::size_t both = 0;
  for (const net::Node& n : topo.nodes()) {
    if (n.id != 0 && n.has_sensor(kT) && n.has_sensor(kH)) ++both;
  }
  EXPECT_EQ(inv.sources.size(), both);
}

TEST(MultiAttribute, WorkloadGeneratorProducesSatisfiableQueries) {
  sim::Rng rng(42);
  net::Topology topo = net::random_connected(net::RandomPlacementConfig{}, rng);
  net::SpanningTree tree(topo, 0);
  data::Environment env(topo, 4, rng.substream("env"));
  env.advance_to(20);
  query::WorkloadGenerator gen(topo, tree, env,
                               query::WorkloadConfig{0.4, 0.02},
                               rng.substream("wl"));
  for (int i = 0; i < 30; ++i) {
    const query::MultiQuery q = gen.next_multi(20, 2);
    ASSERT_EQ(q.predicates.size(), 2u);
    EXPECT_NE(q.predicates[0].type, q.predicates[1].type);
    const query::Involvement inv =
        query::compute_involvement(q, topo, tree, env);
    EXPECT_GE(inv.sources.size(), 1u) << "query " << i << " unsatisfiable";
  }
}

TEST(MultiAttribute, DisseminationCoversAllTrueSources) {
  sim::Rng rng(42);
  net::Topology topo = net::random_connected(net::RandomPlacementConfig{}, rng);
  data::Environment env(topo, 4, rng.substream("env"));
  DirqNetwork net(topo, 0, fixed_cfg(3.0));
  for (std::int64_t e = 0; e < 30; ++e) {
    env.advance_to(e);
    net.process_epoch(env, e);
  }
  query::WorkloadGenerator gen(topo, net.tree(), env,
                               query::WorkloadConfig{0.4, 0.02},
                               rng.substream("wl"));
  sim::RunningStat coverage;
  for (int i = 0; i < 30; ++i) {
    const query::MultiQuery q = gen.next_multi(30, 2);
    const query::Involvement truth =
        query::compute_involvement(q, topo, net.tree(), env);
    const QueryOutcome out = net.inject(q, 30);
    const metrics::QueryAudit audit =
        metrics::audit_query(truth.involved, out.received);
    coverage.push(audit.coverage_pct());
  }
  EXPECT_GT(coverage.mean(), 97.0);
}

TEST(MultiAttribute, RegionAndConjunctionCompose) {
  net::Topology topo = line4();
  DirqNetwork net(topo, 0, fixed_cfg());
  for (NodeId u = 1; u <= 3; ++u) {
    net.node(u).sample(kT, 20.0, 0);
    net.node(u).sample(kH, 60.0, 0);
  }
  query::MultiQuery q;
  q.id = 1;
  q.predicates = {{kT, 0.0, 100.0}, {kH, 0.0, 100.0}};
  q.region = net::BBox{0.0, -1.0, 2.5, 1.0};  // nodes 1, 2 only
  const QueryOutcome out = net.inject(q, 1);
  EXPECT_EQ(out.believed_sources, (std::vector<NodeId>{1, 2}));
}

}  // namespace
}  // namespace dirq::core

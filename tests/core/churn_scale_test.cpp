// Large-topology node churn under the LMAC transport: the §4.2 cross-layer
// neighbour-lost → tree-repair path exercised at 500 nodes (ROADMAP
// follow-on from PR 2 / PR 4 — the repair path had no large-topology test).
//
// Scaled placements route kill/add through the grid spatial index
// (Topology::kill_node / add_node query 3x3 cell neighbourhoods), and LMAC
// death detection is timeout-based — a silently killed node is discovered
// by its neighbours missing its control slot, which must drive
// DirqNetwork's tree repair exactly once per victim. The environment is
// the counter-based fast backend: churn at this scale is exactly the
// workload the O(1)-access field exists for, and the repair logic is
// backend-agnostic.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "core/lmac_transport.hpp"
#include "core/network.hpp"
#include "data/fast_field.hpp"
#include "mac/lmac.hpp"
#include "net/placement.hpp"
#include "query/query.hpp"
#include "query/workload.hpp"
#include "sim/rng.hpp"
#include "sim/scheduler.hpp"

namespace dirq::core {
namespace {

constexpr std::size_t kNodes = 500;

struct ScaleChurnWorld {
  sim::Rng rng{42};
  net::Topology topo;
  data::FastEnvironment env;
  sim::Scheduler sched;
  mac::LmacConfig mac_cfg;
  mac::LmacNetwork mac;
  DirqNetwork net;
  LmacTransport transport;
  std::set<NodeId> repaired;

  ScaleChurnWorld()
      : topo(net::random_connected(net::scaled_placement(kNodes), rng)),
        env(topo, 4, rng.substream("environment")),
        mac_cfg(make_mac_cfg()),
        mac(sched, topo, mac_cfg),
        net(topo, /*root=*/0, make_net_cfg()),
        transport(mac, static_cast<MessageSink&>(net)) {
    net.use_transport(transport);
    transport.set_on_neighbor_lost([this](NodeId, NodeId dead) {
      // One repair per victim; LMAC reports once per surviving neighbour.
      if (repaired.insert(dead).second) {
        net.handle_node_death(dead, current_epoch());
      }
    });
    mac.start();
  }

  static mac::LmacConfig make_mac_cfg() {
    // 64 slots so the denser 2-hop neighbourhoods of a 500-node scaled
    // placement always elect (the paper-scale default of 32 is sized for
    // 50 nodes); 64 x 16 ticks keeps one frame == one sensing epoch.
    mac::LmacConfig cfg;
    cfg.slots_per_frame = 64;
    cfg.ticks_per_slot = 16;
    cfg.timeout_frames = 3;
    return cfg;
  }

  static NetworkConfig make_net_cfg() {
    NetworkConfig cfg;
    cfg.mode = NetworkConfig::ThetaMode::Fixed;
    cfg.fixed_pct = 5.0;
    return cfg;
  }

  [[nodiscard]] std::int64_t current_epoch() const {
    return sched.now() / mac_cfg.frame_ticks();
  }

  void run_epochs(std::int64_t epochs) {
    for (std::int64_t i = 0; i < epochs; ++i) {
      const std::int64_t epoch = current_epoch();
      env.advance_to(epoch);
      net.process_epoch(env, epoch);
      sched.run_until(sched.now() + mac_cfg.frame_ticks());
    }
  }

  /// Injects a full-span temperature query and returns coverage of the
  /// ground-truth involved set after a dissemination window.
  double probe_coverage() {
    query::RangeQuery q{/*id=*/next_query_id_++, kSensorTemperature, -1e9, 1e9,
                        current_epoch()};
    const query::Involvement truth =
        query::compute_involvement(q, topo, net.tree(), env);
    net.inject_async(q, current_epoch());
    sched.run_until(sched.now() + 16 * mac_cfg.frame_ticks());
    const QueryOutcome out = net.collect_outcome();
    if (truth.involved.empty()) return 0.0;
    std::size_t reached = 0;
    for (NodeId u : truth.involved) {
      if (std::binary_search(out.received.begin(), out.received.end(), u)) {
        ++reached;
      }
    }
    return 100.0 * static_cast<double>(reached) /
           static_cast<double>(truth.involved.size());
  }

  QueryId next_query_id_ = 1;
};

TEST(ChurnAtScale, LmacTimeoutDrivesTreeRepairAt500Nodes) {
  ScaleChurnWorld w;
  w.run_epochs(6);  // settle: announce waves + first samples

  ASSERT_EQ(w.net.tree().size(), w.topo.alive_count());
  const double before = w.probe_coverage();
  EXPECT_GT(before, 95.0);

  // Kill one internal (forwarding) node and one leaf, silently: no
  // notification reaches DirQ except through LMAC's control timeout.
  const std::vector<NodeId>& order = w.net.tree().bfs_order();
  NodeId internal = kNoNode;
  for (NodeId u : order) {
    if (u != w.net.root() && !w.net.tree().children(u).empty()) {
      internal = u;
      break;
    }
  }
  ASSERT_NE(internal, kNoNode);
  const NodeId leaf = w.net.tree().leaves().back();
  ASSERT_NE(leaf, internal);

  w.topo.kill_node(internal);
  w.topo.kill_node(leaf);
  // timeout_frames = 3, so 8 epochs comfortably covers detection + the
  // repair announce wave at depth.
  w.run_epochs(8);

  EXPECT_TRUE(w.repaired.contains(internal))
      << "internal node death must surface through the MAC timeout";
  EXPECT_TRUE(w.repaired.contains(leaf));
  // The repaired tree spans every alive node (scaled placements stay
  // connected under two removals with overwhelming margin at k~8; if this
  // ever flakes the topology itself became disconnected, which is a
  // placement bug, not a repair bug).
  EXPECT_EQ(w.net.tree().size(), w.topo.alive_count());
  EXPECT_FALSE(w.net.tree().in_tree(internal));
  EXPECT_FALSE(w.net.tree().in_tree(leaf));

  // Orphaned children were re-parented: the dead internal node's former
  // subtree is still reachable.
  const double after = w.probe_coverage();
  EXPECT_GT(after, 95.0);
}

TEST(ChurnAtScale, GridIndexedAdditionJoinsTreeAndMac) {
  ScaleChurnWorld w;
  w.run_epochs(6);

  // Deploy a newcomer near the middle of the area: add_node routes link
  // construction through the spatial index at this scale.
  net::Node fresh;
  fresh.x = 150.0;
  fresh.y = 150.0;
  fresh.sensors = {kSensorTemperature, kSensorHumidity};
  const NodeId newcomer = w.topo.add_node(fresh);
  ASSERT_GT(w.topo.neighbors(newcomer).size(), 0u)
      << "newcomer must be in radio range of the existing deployment";
  w.net.handle_node_addition(newcomer, w.current_epoch());
  w.run_epochs(8);  // join: listen a frame, elect, announce

  EXPECT_TRUE(w.net.tree().in_tree(newcomer));
  EXPECT_NE(w.net.tree().parent(newcomer), kNoNode);
  EXPECT_NE(w.mac.slot_of(newcomer), mac::kNoSlot);
  EXPECT_EQ(w.net.tree().size(), w.topo.alive_count());

  const double cov = w.probe_coverage();
  EXPECT_GT(cov, 95.0);
}

}  // namespace
}  // namespace dirq::core

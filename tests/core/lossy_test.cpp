// Failure injection: DirQ under message loss. The protocol must degrade
// gracefully — no crashes, no corrupted state, coverage falling with the
// loss rate and healing once the channel recovers.
#include "core/lossy.hpp"

#include <gtest/gtest.h>

#include "core/network.hpp"
#include "metrics/audit.hpp"
#include "data/field_model.hpp"
#include "net/placement.hpp"
#include "query/workload.hpp"
#include "sim/counter_rng.hpp"
#include "sim/rng.hpp"

namespace dirq::core {
namespace {

struct LossyWorld {
  net::Topology topo;
  data::Environment env;
  DirqNetwork net;
  LossySink lossy;
  InstantTransport transport;

  LossyWorld(std::uint64_t seed, double drop)
      : topo(make(seed)),
        env(topo, 4, sim::Rng(seed).substream("env")),
        net(topo, 0, cfg()),
        lossy(net, drop, sim::CounterRng(seed).substream("loss")),
        transport(topo, lossy) {
    net.use_transport(transport);
  }
  static net::Topology make(std::uint64_t seed) {
    sim::Rng rng(seed);
    return net::random_connected(net::RandomPlacementConfig{}, rng);
  }
  static NetworkConfig cfg() {
    NetworkConfig c;
    c.fixed_pct = 5.0;
    return c;
  }
  void run(std::int64_t from, std::int64_t to) {
    for (std::int64_t e = from; e < to; ++e) {
      env.advance_to(e);
      net.process_epoch(env, e);
    }
  }
  double mean_coverage(std::int64_t epoch, int queries, std::uint64_t wl_seed) {
    query::WorkloadGenerator gen(topo, net.tree(), env,
                                 query::WorkloadConfig{0.4, 0.02},
                                 sim::Rng(wl_seed));
    sim::RunningStat cov;
    for (int i = 0; i < queries; ++i) {
      const query::RangeQuery q = gen.next(epoch);
      const query::Involvement truth =
          query::compute_involvement(q, topo, net.tree(), env);
      const QueryOutcome out = net.inject(q, epoch);
      cov.push(metrics::audit_query(truth.involved, out.received).coverage_pct());
    }
    return cov.mean();
  }
};

TEST(LossySink, DropsAtConfiguredRate) {
  struct Null final : MessageSink {
    void deliver(NodeId, NodeId, const Message&) override {}
  } null;
  LossySink lossy(null, 0.3, sim::CounterRng(1));
  const Message msg{UpdateMessage{}};
  for (int i = 0; i < 10000; ++i) lossy.deliver(0, 1, msg);
  EXPECT_EQ(lossy.offered(), 10000);
  EXPECT_NEAR(static_cast<double>(lossy.dropped()) / 10000.0, 0.3, 0.02);
}

TEST(LossySink, ZeroLossIsTransparent) {
  LossyWorld w(3, 0.0);
  w.run(0, 50);
  EXPECT_EQ(w.lossy.dropped(), 0);
  EXPECT_GT(w.lossy.offered(), 0);
  EXPECT_GT(w.mean_coverage(50, 20, 99), 99.0);
}

TEST(LossyProtocol, SurvivesHeavyLossWithoutCrashing) {
  LossyWorld w(3, 0.5);
  w.run(0, 300);
  // Half of everything vanishes; per-hop delivery compounds down the tree
  // (~0.5^depth), so absolute coverage is low — the assertion is that the
  // protocol still routes *something* and the state machine stays sane.
  const double cov = w.mean_coverage(300, 20, 99);
  EXPECT_GT(cov, 2.0);
  EXPECT_LE(cov, 100.0);
}

TEST(LossyProtocol, CoverageDegradesMonotonically) {
  double prev = 101.0;
  for (double drop : {0.0, 0.2, 0.6}) {
    LossyWorld w(7, drop);
    w.run(0, 200);
    const double cov = w.mean_coverage(200, 30, 42);
    EXPECT_LT(cov, prev + 5.0) << "drop " << drop;  // allow small noise
    prev = cov;
  }
}

TEST(LossyProtocol, StaleRangesHealAfterChannelRecovers) {
  // Run lossy, then give the protocol a clean channel: coverage returns to
  // the loss-free level because re-centred tuples re-trigger updates.
  net::Topology topo = LossyWorld::make(11);
  data::Environment env(topo, 4, sim::Rng(11).substream("env"));
  DirqNetwork net(topo, 0, LossyWorld::cfg());
  LossySink lossy(net, 0.5, sim::CounterRng(11).substream("loss"));
  InstantTransport lossy_transport(topo, lossy);
  InstantTransport clean_transport(topo, net);

  net.use_transport(lossy_transport);
  for (std::int64_t e = 0; e < 200; ++e) {
    env.advance_to(e);
    net.process_epoch(env, e);
  }
  net.use_transport(clean_transport);
  // The environment keeps drifting; within a few hundred epochs every
  // subtree whose aggregate moved re-announces over the clean channel.
  for (std::int64_t e = 200; e < 1200; ++e) {
    env.advance_to(e);
    net.process_epoch(env, e);
  }
  query::WorkloadGenerator gen(topo, net.tree(), env,
                               query::WorkloadConfig{0.4, 0.02},
                               sim::Rng(5));
  sim::RunningStat cov;
  for (int i = 0; i < 30; ++i) {
    const query::RangeQuery q = gen.next(1200);
    const query::Involvement truth =
        query::compute_involvement(q, topo, net.tree(), env);
    const QueryOutcome out = net.inject(q, 1200);
    cov.push(metrics::audit_query(truth.involved, out.received).coverage_pct());
  }
  EXPECT_GT(cov.mean(), 90.0);
}

TEST(LossySink, DropHookReconcilesPerNodeRxWithLedger) {
  // The transport charges the ledger's rx before the drop decision
  // (CRC-failure semantics); the drop hook must keep the per-node
  // distribution in step so sum(node_rx) always equals the ledger's rx.
  LossyWorld w(5, 0.3);
  w.lossy.set_drop_hook([&w](NodeId to, NodeId, const Message&) {
    w.net.note_dropped_rx(to);
  });
  const auto rx_sum = [&w] {
    CostUnits s = 0;
    for (NodeId u = 0; u < w.net.size(); ++u) s += w.net.node_rx(u);
    return s;
  };
  // Delta from here on: the constructor's bootstrap wave ran on the
  // internal transport whose ledger w.net.costs() no longer reports.
  const CostUnits before = rx_sum();
  w.run(0, 200);
  ASSERT_GT(w.lossy.dropped(), 0);
  const CostLedger& l = w.net.costs();
  EXPECT_EQ(rx_sum() - before, l.query_rx + l.update_rx + l.control_rx);
}

TEST(LossyProtocol, DeterministicGivenSeed) {
  LossyWorld a(9, 0.3), b(9, 0.3);
  a.run(0, 100);
  b.run(0, 100);
  EXPECT_EQ(a.lossy.dropped(), b.lossy.dropped());
  EXPECT_EQ(a.net.updates_transmitted(), b.net.updates_transmitted());
}

}  // namespace
}  // namespace dirq::core

// Regression tests for the epoch-loop accounting edge cases:
//   - deliver() must attribute rx energy even inside the add_node ->
//     handle_node_addition window (the ledger already charged it);
//   - the LMAC post-run drain's keep-alive traffic must not inflate
//     mac_control_total (a 41-epoch run must stay comparable to 40);
//   - the recorded Umax/Hr series and the flooded EhrMessage value must
//     come from the same formula (analysis::umax_messages_per_hour).
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "analysis/cost_model.hpp"
#include "core/experiment.hpp"
#include "core/network.hpp"
#include "net/placement.hpp"
#include "net/spanning_tree.hpp"
#include "sim/rng.hpp"

namespace dirq::core {
namespace {

constexpr SensorType kT = kSensorTemperature;

net::Topology line(std::size_t n) {
  std::vector<net::Node> nodes(n);
  for (std::size_t i = 0; i < n; ++i) {
    nodes[i].x = static_cast<double>(i);
    if (i > 0) nodes[i].sensors = {kT};
  }
  return net::Topology(std::move(nodes), 1.1);
}

void expect_node_rx_matches_ledger(const DirqNetwork& net,
                                   const net::Topology& topo) {
  CostUnits rx_sum = 0;
  for (NodeId u = 0; u < topo.size(); ++u) rx_sum += net.node_rx(u);
  const CostLedger& c = net.costs();
  EXPECT_EQ(rx_sum, c.query_rx + c.update_rx + c.control_rx);
}

TEST(AccountingRegression, DeliveryInAddNodeWindowIsAttributed) {
  net::Topology topo = line(4);
  NetworkConfig cfg;
  cfg.mode = NetworkConfig::ThetaMode::Fixed;
  cfg.fixed_pct = 5.0;
  DirqNetwork net(topo, 0, cfg);
  expect_node_rx_matches_ledger(net, topo);

  // The newcomer's topology slot (and radio) exists as soon as add_node
  // returns; its protocol instance only after handle_node_addition. A
  // frame arriving in between is charged to the ledger by the transport —
  // the per-node distribution must not lose it.
  net::Node newcomer;
  newcomer.x = 4.0;
  newcomer.sensors = {kT};
  const NodeId added = topo.add_node(newcomer);
  net.transport().unicast(3, added, Message{EhrMessage{}});
  EXPECT_EQ(net.node_rx(added), 1);
  expect_node_rx_matches_ledger(net, topo);

  // Integration replays nothing and loses nothing.
  net.handle_node_addition(added, 1);
  EXPECT_GE(net.node_rx(added), 1);
  expect_node_rx_matches_ledger(net, topo);
}

TEST(AccountingRegression, DeliveryOutsideTopologyIsAContractViolation) {
  net::Topology topo = line(3);
  NetworkConfig cfg;
  DirqNetwork net(topo, 0, cfg);
  EXPECT_THROW(net.deliver(99, 0, Message{EhrMessage{}}), std::logic_error);
}

ExperimentConfig lmac_cfg(std::int64_t epochs) {
  ExperimentConfig cfg;
  cfg.seed = 7;
  cfg.placement.node_count = 30;
  cfg.epochs = epochs;
  cfg.query_period = 20;
  cfg.transport = TransportKind::Lmac;
  cfg.keep_records = false;
  return cfg;
}

TEST(AccountingRegression, LmacDrainDoesNotInflateControlTotal) {
  // 40 epochs: the final query's dissemination window is already inside
  // the run, the drain is a no-op. 41 epochs: the epoch-40 query needs
  // ~query_period extra drain frames, whose keep-alive traffic must land
  // in mac_control_drain — not make the per-epoch total incomparable.
  const ExperimentResults r40 = Experiment(lmac_cfg(40)).run();
  const ExperimentResults r41 = Experiment(lmac_cfg(41)).run();

  ASSERT_GT(r40.mac_control_total, 0);
  EXPECT_EQ(r40.mac_control_drain, 0);
  EXPECT_GT(r41.mac_control_drain, 0);  // the drained frames, separately

  // Pre-fix, the 41-run folded ~19 drain frames into the total (~+47%).
  // Post-fix it exceeds the 40-run by at most a few epochs' keep-alive.
  EXPECT_GE(r41.mac_control_total, r40.mac_control_total);
  EXPECT_LE(r41.mac_control_total - r40.mac_control_total,
            3 * (r40.mac_control_total / 40));
}

TEST(AccountingRegression, BroadcastEhrReturnsTheCostModelValue) {
  sim::Rng rng(21);
  net::RandomPlacementConfig pcfg;
  net::Topology topo = net::random_connected(pcfg, rng);
  NetworkConfig cfg;
  DirqNetwork net(topo, 0, cfg);
  const double ehr = 180.0;
  const double flooded = net.broadcast_ehr(ehr, 0);
  EXPECT_GT(flooded, 0.0);
  EXPECT_DOUBLE_EQ(
      flooded,
      analysis::umax_messages_per_hour(
          static_cast<std::int64_t>(net.tree().size()),
          static_cast<std::int64_t>(topo.link_count()),
          static_cast<std::int64_t>(net.tree().internal_node_count()), ehr));
}

TEST(AccountingRegression, BroadcastEhrOnLoneRootIsZero) {
  net::Topology topo = line(1);
  NetworkConfig cfg;
  DirqNetwork net(topo, 0, cfg);
  EXPECT_EQ(net.broadcast_ehr(100.0, 0), 0.0);
}

TEST(AccountingRegression, RecordedUmaxSeriesIsTheFloodedValue) {
  // The driver must record broadcast_ehr's return, never re-derive the
  // formula: reconstruct hour 0's topology from the seed and pin the
  // series head to the cost model applied to that exact tree.
  ExperimentConfig cfg;
  cfg.seed = 99;
  cfg.epochs = 40;
  cfg.keep_records = false;
  const ExperimentResults res = Experiment(cfg).run();
  ASSERT_FALSE(res.umax_per_hour.empty());
  ASSERT_FALSE(res.ehr_per_hour.empty());

  sim::Rng rng(cfg.seed);
  net::Topology topo = net::random_connected(cfg.placement, rng);
  const net::SpanningTree tree(topo, 0);
  EXPECT_DOUBLE_EQ(
      res.umax_per_hour.front(),
      analysis::umax_messages_per_hour(
          static_cast<std::int64_t>(tree.size()),
          static_cast<std::int64_t>(topo.link_count()),
          static_cast<std::int64_t>(tree.internal_node_count()),
          res.ehr_per_hour.front()));
}

}  // namespace
}  // namespace dirq::core

// Order independence of the counter-keyed loss channel — the property the
// parallel epoch engine leans on when it evaluates drop verdicts inside
// shards. A verdict depends only on the delivery's identity
// (tree, from, to, per-key sequence number), so any interleaving of
// deliveries that preserves each key's own subsequence order must produce
// the identical per-frame verdict set. The sequential engine, the
// tree-sharded engine, and the chunk-sharded LMAC engine are all such
// interleavings of one another.
#include "core/lossy.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <tuple>
#include <utility>
#include <vector>

#include "sim/counter_rng.hpp"
#include "sim/rng.hpp"

namespace dirq::core {
namespace {

struct Frame {
  TreeId tree;
  NodeId from;
  NodeId to;
  std::uint64_t seq;  // position within this frame's (tree, from, to) key
};

/// A synthetic delivery schedule: several trees, senders talking to a few
/// neighbours each, uneven per-key depths so keys finish at different
/// times under any interleaving.
std::vector<Frame> make_frames() {
  std::vector<Frame> frames;
  for (TreeId tree = 0; tree < 3; ++tree) {
    for (NodeId from = 0; from < 6; ++from) {
      for (NodeId to = 0; to < 6; ++to) {
        if (to == from) continue;
        const std::uint64_t depth = 1 + ((from * 7 + to * 3 + tree) % 5);
        for (std::uint64_t seq = 0; seq < depth; ++seq) {
          frames.push_back({tree, from, to, seq});
        }
      }
    }
  }
  return frames;
}

/// Feeds `order` (indices into `frames`) through a fresh LossySink and
/// returns the verdict of every frame, indexed by frame id. A frame's
/// verdict is observed as the dropped-counter delta across its delivery.
std::vector<bool> verdicts_in_order(const std::vector<Frame>& frames,
                                    const std::vector<std::size_t>& order) {
  struct Null final : MessageSink {
    void deliver(NodeId, NodeId, const Message&) override {}
  } null;
  LossySink lossy(null, 0.3, sim::CounterRng(1234).substream("loss"));
  std::vector<bool> verdict(frames.size(), false);
  for (std::size_t id : order) {
    const Frame& f = frames[id];
    UpdateMessage upd;
    upd.tree = f.tree;
    const std::int64_t before = lossy.dropped();
    lossy.deliver(f.to, f.from, Message{upd});
    verdict[id] = lossy.dropped() != before;
  }
  return verdict;
}

/// Permutes whole-schedule order while keeping every key's internal
/// subsequence order (stable sort on a per-frame shuffle rank that is
/// constant within a key prefix-respecting comparison).
std::vector<std::size_t> shuffled_key_preserving(
    const std::vector<Frame>& frames, std::uint64_t seed) {
  // Assign each KEY a random rank, then emit keys in rank order but each
  // key's frames in seq order — an extreme reordering (key-major) that
  // still preserves per-key subsequences. Interleavings between these
  // extremes are covered by the round-robin case below.
  std::vector<std::size_t> order(frames.size());
  std::iota(order.begin(), order.end(), 0);
  sim::Rng rng(seed);
  std::vector<std::uint64_t> key_rank(frames.size());
  const auto key_of = [&](std::size_t id) {
    const Frame& f = frames[id];
    return (static_cast<std::uint64_t>(f.tree) << 32) ^
           (static_cast<std::uint64_t>(f.from) << 16) ^
           static_cast<std::uint64_t>(f.to);
  };
  std::vector<std::pair<std::uint64_t, std::uint64_t>> ranks;  // key -> rank
  for (std::size_t id = 0; id < frames.size(); ++id) {
    const std::uint64_t k = key_of(id);
    auto it = std::find_if(ranks.begin(), ranks.end(),
                           [&](const auto& p) { return p.first == k; });
    if (it == ranks.end()) {
      ranks.emplace_back(k, rng.next_u64());
      it = ranks.end() - 1;
    }
    key_rank[id] = it->second;
  }
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return key_rank[a] < key_rank[b];
  });
  return order;
}

/// Round-robin over keys: deliver one frame from each live key in turn —
/// the opposite extreme from key-major batching.
std::vector<std::size_t> round_robin_order(const std::vector<Frame>& frames) {
  std::vector<std::size_t> order;
  order.reserve(frames.size());
  std::vector<bool> emitted(frames.size(), false);
  std::size_t remaining = frames.size();
  while (remaining > 0) {
    std::vector<std::uint64_t> seen_keys;
    for (std::size_t id = 0; id < frames.size(); ++id) {
      if (emitted[id]) continue;
      const Frame& f = frames[id];
      const std::uint64_t k = (static_cast<std::uint64_t>(f.tree) << 32) ^
                              (static_cast<std::uint64_t>(f.from) << 16) ^
                              static_cast<std::uint64_t>(f.to);
      if (std::find(seen_keys.begin(), seen_keys.end(), k) != seen_keys.end()) {
        continue;  // this key already contributed one frame this round
      }
      seen_keys.push_back(k);
      order.push_back(id);
      emitted[id] = true;
      --remaining;
    }
  }
  return order;
}

TEST(LossyOrder, VerdictsIdenticalAcrossKeyPreservingInterleavings) {
  const std::vector<Frame> frames = make_frames();
  std::vector<std::size_t> canonical(frames.size());
  std::iota(canonical.begin(), canonical.end(), 0);
  const std::vector<bool> base = verdicts_in_order(frames, canonical);
  // Sanity: the channel actually drops and passes something.
  EXPECT_GT(std::count(base.begin(), base.end(), true), 0);
  EXPECT_GT(std::count(base.begin(), base.end(), false), 0);

  std::vector<std::size_t> reversed = canonical;  // key order reversed,
  std::stable_sort(reversed.begin(), reversed.end(),  // seq order kept
                   [&](std::size_t a, std::size_t b) {
                     const Frame &fa = frames[a], &fb = frames[b];
                     return std::tuple(fb.tree, fb.from, fb.to) <
                            std::tuple(fa.tree, fa.from, fa.to);
                   });
  EXPECT_EQ(verdicts_in_order(frames, reversed), base);
  EXPECT_EQ(verdicts_in_order(frames, round_robin_order(frames)), base);
  for (std::uint64_t seed : {7u, 99u, 1337u}) {
    EXPECT_EQ(verdicts_in_order(frames, shuffled_key_preserving(frames, seed)),
              base)
        << "seed " << seed;
  }
}

TEST(LossyOrder, StatefulNextDropMatchesPureDrops) {
  // next_drop must be exactly drops(key, 0), drops(key, 1), ... — the
  // stateful wrapper adds sequencing, never entropy.
  LossChannel channel(0.4, sim::CounterRng(77).substream("loss"));
  for (TreeId tree = 0; tree < 2; ++tree) {
    for (NodeId from = 0; from < 4; ++from) {
      for (std::uint64_t seq = 0; seq < 16; ++seq) {
        EXPECT_EQ(channel.next_drop(tree, from, from + 10),
                  channel.drops(tree, from, from + 10, seq));
      }
    }
  }
}

TEST(LossyOrder, DistinctKeysGetDistinctStreams) {
  // Neighbouring keys must not alias: over 64 verdicts, at least one
  // position differs between (tree, from, to) and its single-field
  // perturbations. Guards the +1 offsets in the hash chain.
  const LossChannel channel(0.5, sim::CounterRng(3).substream("loss"));
  const auto fingerprint = [&](TreeId tree, NodeId from, NodeId to) {
    std::uint64_t bits = 0;
    for (std::uint64_t seq = 0; seq < 64; ++seq) {
      bits = (bits << 1) | (channel.drops(tree, from, to, seq) ? 1u : 0u);
    }
    return bits;
  };
  const std::uint64_t base = fingerprint(1, 2, 3);
  EXPECT_NE(base, fingerprint(2, 2, 3));
  EXPECT_NE(base, fingerprint(1, 3, 3));
  EXPECT_NE(base, fingerprint(1, 2, 4));
  EXPECT_NE(base, fingerprint(3, 1, 2));  // field swap must not collide
}

}  // namespace
}  // namespace dirq::core

// RangeTable: the Fig. 1-3 state machine.
#include "core/range_table.hpp"

#include <gtest/gtest.h>

namespace dirq::core {
namespace {

TEST(RangeTable, FirstObservationCreatesTuple) {
  RangeTable t;
  EXPECT_FALSE(t.has_any());
  EXPECT_TRUE(t.observe(20.0, 2.0));
  ASSERT_TRUE(t.own().has_value());
  EXPECT_DOUBLE_EQ(t.own()->min, 18.0);
  EXPECT_DOUBLE_EQ(t.own()->max, 22.0);
}

TEST(RangeTable, ReadingInsideTupleIsAbsorbed) {
  RangeTable t;
  t.observe(20.0, 2.0);
  EXPECT_FALSE(t.observe(21.9, 2.0));
  EXPECT_FALSE(t.observe(18.1, 2.0));
  EXPECT_DOUBLE_EQ(t.own()->min, 18.0);  // unchanged (Fig. 1)
}

TEST(RangeTable, ReadingOutsideRecentresTuple) {
  RangeTable t;
  t.observe(20.0, 2.0);
  EXPECT_TRUE(t.observe(25.0, 2.0));
  EXPECT_DOUBLE_EQ(t.own()->min, 23.0);
  EXPECT_DOUBLE_EQ(t.own()->max, 27.0);
}

TEST(RangeTable, BoundaryReadingsAreInside) {
  RangeTable t;
  t.observe(20.0, 2.0);
  EXPECT_FALSE(t.observe(22.0, 2.0));  // == max: inside
  EXPECT_FALSE(t.observe(18.0, 2.0));  // == min: inside
}

TEST(RangeTable, ThetaChangeAppliesOnNextRecentre) {
  RangeTable t;
  t.observe(20.0, 2.0);
  t.observe(30.0, 5.0);  // ATC widened theta meanwhile
  EXPECT_DOUBLE_EQ(t.own()->min, 25.0);
  EXPECT_DOUBLE_EQ(t.own()->max, 35.0);
}

TEST(RangeTable, ChildTuplesExtendAggregate) {
  RangeTable t;
  t.observe(20.0, 2.0);             // own: [18, 22]
  t.set_child(5, {10.0, 15.0});
  t.set_child(6, {25.0, 30.0});
  const RangeAggregate agg = t.aggregate();
  ASSERT_TRUE(agg.has_value());
  EXPECT_DOUBLE_EQ(agg->min, 10.0);  // min over n+1 tuples (Fig. 2)
  EXPECT_DOUBLE_EQ(agg->max, 30.0);
}

TEST(RangeTable, AggregateWithoutOwnTuple) {
  RangeTable t;  // pure forwarder for this type (Fig. 4)
  t.set_child(3, {5.0, 9.0});
  const RangeAggregate agg = t.aggregate();
  ASSERT_TRUE(agg.has_value());
  EXPECT_DOUBLE_EQ(agg->min, 5.0);
  EXPECT_DOUBLE_EQ(agg->max, 9.0);
}

TEST(RangeTable, EmptyAggregateIsNull) {
  RangeTable t;
  EXPECT_FALSE(t.aggregate().has_value());
}

TEST(RangeTable, ChildLookupAndRemoval) {
  RangeTable t;
  t.set_child(4, {1.0, 2.0});
  ASSERT_TRUE(t.child(4).has_value());
  EXPECT_FALSE(t.child(5).has_value());
  EXPECT_TRUE(t.remove_child(4));
  EXPECT_FALSE(t.remove_child(4));
  EXPECT_FALSE(t.has_any());
}

TEST(RangeTable, NeedsUpdateBeforeAnySend) {
  RangeTable t;
  t.observe(20.0, 2.0);
  EXPECT_TRUE(t.needs_update(2.0));
  t.mark_sent();
  EXPECT_FALSE(t.needs_update(2.0));
}

TEST(RangeTable, SmallAggregateMovesAreSuppressed) {
  RangeTable t;
  t.observe(20.0, 2.0);
  t.mark_sent();  // sent [18, 22]
  t.observe(23.0, 2.0);  // own now [21, 25]: min moved +3 > theta...
  // min moved from 18 to 21 (3 > 2) -> update needed.
  EXPECT_TRUE(t.needs_update(2.0));
  t.mark_sent();
  t.observe(24.0, 2.0);  // inside [21,25]: nothing changes
  EXPECT_FALSE(t.needs_update(2.0));
}

TEST(RangeTable, Fig3TriggerOnEitherBound) {
  RangeTable t;
  t.set_child(1, {10.0, 20.0});
  t.mark_sent();
  t.set_child(1, {10.0, 20.5});  // max moved 0.5 <= theta 1.0
  EXPECT_FALSE(t.needs_update(1.0));
  t.set_child(1, {10.0, 21.5});  // max moved 1.5 > theta
  EXPECT_TRUE(t.needs_update(1.0));
  t.mark_sent();
  t.set_child(1, {7.0, 21.5});   // min moved 3 > theta
  EXPECT_TRUE(t.needs_update(1.0));
}

TEST(RangeTable, ExactThetaMoveDoesNotTrigger) {
  RangeTable t;
  t.set_child(1, {10.0, 20.0});
  t.mark_sent();
  t.set_child(1, {9.0, 20.0});  // min moved exactly theta = 1.0
  EXPECT_FALSE(t.needs_update(1.0));  // strictly-greater rule (Fig. 3)
}

TEST(RangeTable, RetractionWhenSubtreeLosesType) {
  RangeTable t;
  t.set_child(1, {10.0, 20.0});
  t.mark_sent();
  t.remove_child(1);
  EXPECT_FALSE(t.has_any());
  EXPECT_TRUE(t.needs_update(1.0));  // must retract the outstanding range
  t.mark_sent();
  EXPECT_FALSE(t.needs_update(1.0));  // retraction acknowledged
  EXPECT_FALSE(t.last_sent().has_value());
}

TEST(RangeTable, NoRetractionIfNeverSent) {
  RangeTable t;
  t.set_child(1, {10.0, 20.0});
  t.remove_child(1);
  EXPECT_FALSE(t.needs_update(1.0));
}

TEST(RangeTable, ClearOwnKeepsChildren) {
  RangeTable t;
  t.observe(20.0, 2.0);
  t.set_child(1, {0.0, 5.0});
  t.clear_own();
  EXPECT_FALSE(t.own().has_value());
  EXPECT_TRUE(t.has_any());
  EXPECT_DOUBLE_EQ(t.aggregate()->max, 5.0);
}

TEST(RangeTable, LastSentSnapshotIsStable) {
  RangeTable t;
  t.observe(20.0, 2.0);
  t.mark_sent();
  const RangeAggregate sent = t.last_sent();
  t.observe(40.0, 2.0);  // aggregate moves
  ASSERT_TRUE(t.last_sent().has_value());
  EXPECT_DOUBLE_EQ(t.last_sent()->min, sent->min);  // snapshot unchanged
}

}  // namespace
}  // namespace dirq::core

// Tree-sharded parallel epochs for multi-sink runs: an N-thread multi-sink
// run must produce a byte-identical ExperimentResults summary to the
// 1-thread sequential path (the same contract parallel_epoch_test.cpp pins
// for one sink), across sink counts, routing policies, both field
// backends, ATC and the sampling gate — and the per-sink ledger mirrors
// must still reconcile component-wise against the global ledger when the
// charges were accumulated per shard.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/network.hpp"
#include "data/field_model.hpp"
#include "net/topology.hpp"
#include "sim/rng.hpp"
#include "sweep/sink.hpp"

namespace dirq::core {
namespace {

constexpr SensorType kT = kSensorTemperature;

ExperimentConfig msink_cfg(std::size_t sinks, RoutingPolicy routing) {
  ExperimentConfig cfg;
  cfg.epochs = 400;
  cfg.epochs_per_hour = 100;
  cfg.seed = 1234;
  cfg.sink_count = sinks;
  cfg.routing = routing;
  return cfg;
}

std::string run_summary(ExperimentConfig cfg, unsigned threads) {
  cfg.threads = threads;
  Experiment exp(cfg);
  return sweep::summarize(exp.run());
}

TEST(ParallelMultiSink, SummariesByteIdenticalAcrossSinkCountsAndPolicies) {
  for (const std::size_t sinks : {2, 4, 8}) {
    for (const RoutingPolicy routing :
         {RoutingPolicy::Admission, RoutingPolicy::RoundRobin}) {
      const ExperimentConfig cfg = msink_cfg(sinks, routing);
      const std::string seq = run_summary(cfg, 1);
      EXPECT_EQ(seq, run_summary(cfg, 2))
          << sinks << " sinks, policy " << static_cast<int>(routing);
      EXPECT_EQ(seq, run_summary(cfg, 4))
          << sinks << " sinks, policy " << static_cast<int>(routing);
    }
  }
}

TEST(ParallelMultiSink, FastBackendSummariesByteIdentical) {
  ExperimentConfig cfg = msink_cfg(4, RoutingPolicy::Admission);
  cfg.field_backend = data::EnvironmentBackend::Fast;
  EXPECT_EQ(run_summary(cfg, 1), run_summary(cfg, 4));
}

TEST(ParallelMultiSink, AtcThetaSummariesByteIdentical) {
  ExperimentConfig cfg = msink_cfg(4, RoutingPolicy::Admission);
  cfg.network.mode = NetworkConfig::ThetaMode::Atc;
  EXPECT_EQ(run_summary(cfg, 1), run_summary(cfg, 4));
}

TEST(ParallelMultiSink, SamplingSuppressionSummariesByteIdentical) {
  // The gated tree-sharded walk: shard 0 owns the shared per-node gate
  // while the other shards branch on the precomputed due mask — any
  // divergence between the two views shows up here as a summary diff.
  ExperimentConfig cfg = msink_cfg(4, RoutingPolicy::Admission);
  cfg.network.sampling.enabled = true;
  EXPECT_EQ(run_summary(cfg, 1), run_summary(cfg, 4));
}

TEST(ParallelMultiSink, SinkLedgersReconcileUnderParallelRuns) {
  ExperimentConfig cfg = msink_cfg(4, RoutingPolicy::Admission);
  cfg.threads = 4;
  const ExperimentResults res = Experiment(cfg).run();
  CostLedger sum;
  for (const CostLedger& led : res.sink_ledgers) {
    sum.query_tx += led.query_tx;
    sum.query_rx += led.query_rx;
    sum.update_tx += led.update_tx;
    sum.update_rx += led.update_rx;
    sum.control_tx += led.control_tx;
    sum.control_rx += led.control_rx;
  }
  EXPECT_EQ(sum.query_tx, res.ledger.query_tx);
  EXPECT_EQ(sum.query_rx, res.ledger.query_rx);
  EXPECT_EQ(sum.update_tx, res.ledger.update_tx);
  EXPECT_EQ(sum.update_rx, res.ledger.update_rx);
  EXPECT_EQ(sum.control_tx, res.ledger.control_tx);
  EXPECT_EQ(sum.control_rx, res.ledger.control_rx);
}

/// Cross shape: three 3-node arms (+x, -x, +y) around node 0. Roots 0 and
/// 3 (the +x arm's tip) give two overlapping spanning trees over the same
/// population — the tree-shard geometry, minimally.
net::Topology cross_topology() {
  std::vector<net::Node> nodes(10);
  const double xs[] = {0, 1, 2, 3, -1, -2, -3, 0, 0, 0};
  const double ys[] = {0, 0, 0, 0, 0, 0, 0, 1, 2, 3};
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    nodes[i].x = xs[i];
    nodes[i].y = ys[i];
    if (i > 0) nodes[i].sensors = {kT};
  }
  return net::Topology(std::move(nodes), 1.1);
}

void expect_networks_identical(DirqNetwork& a, DirqNetwork& b) {
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.costs().update_tx, b.costs().update_tx);
  EXPECT_EQ(a.costs().update_rx, b.costs().update_rx);
  EXPECT_EQ(a.costs().control_tx, b.costs().control_tx);
  EXPECT_EQ(a.costs().control_rx, b.costs().control_rx);
  EXPECT_EQ(a.updates_transmitted(), b.updates_transmitted());
  EXPECT_EQ(a.samples_taken(), b.samples_taken());
  for (TreeId t = 0; t < 2; ++t) {
    EXPECT_EQ(a.tree_ledger(t).update_tx, b.tree_ledger(t).update_tx)
        << "tree " << t;
    EXPECT_EQ(a.tree_ledger(t).update_rx, b.tree_ledger(t).update_rx)
        << "tree " << t;
  }
  for (NodeId u = 0; u < a.size(); ++u) {
    EXPECT_EQ(a.node_tx(u), b.node_tx(u)) << "node " << u;
    EXPECT_EQ(a.node_rx(u), b.node_rx(u)) << "node " << u;
  }
  EXPECT_DOUBLE_EQ(a.mean_theta_pct(kT), b.mean_theta_pct(kT));
}

TEST(ParallelMultiSink, ChurnInvalidatesPlanAndMatchesSequentialTwin) {
  NetworkConfig ncfg;
  ncfg.mode = NetworkConfig::ThetaMode::Fixed;
  ncfg.fixed_pct = 5.0;

  net::Topology topo_seq = cross_topology();
  net::Topology topo_par = cross_topology();
  data::Environment env_seq(topo_seq, /*sensor_type_count=*/1, sim::Rng(9));
  data::Environment env_par(topo_par, /*sensor_type_count=*/1, sim::Rng(9));
  DirqNetwork seq(topo_seq, {0, 3}, ncfg);
  DirqNetwork par(topo_par, {0, 3}, ncfg);
  par.set_threads(4);
  EXPECT_EQ(par.threads(), 4u);
  EXPECT_EQ(seq.threads(), 1u);

  const auto step = [&](std::int64_t epoch) {
    env_seq.advance_to(epoch);
    env_par.advance_to(epoch);
    seq.process_epoch(env_seq, epoch);
    par.process_epoch(env_par, epoch);
  };
  const auto churn = [&](auto&& fn) {
    fn(topo_seq, seq);
    fn(topo_par, par);
  };

  std::int64_t epoch = 0;
  for (; epoch < 10; ++epoch) step(epoch);

  // Mid-arm death away from either root: both trees lose the -x arm's
  // tail, and the cached tree-shard plan must be rebuilt (a stale plan
  // would walk a dead node and throw).
  churn([&](net::Topology& t, DirqNetwork& n) {
    t.kill_node(5);
    n.handle_node_death(5, 10);
  });
  for (; epoch < 20; ++epoch) step(epoch);

  // Addition at the +y arm's tip: fresh protocol instances with one slot
  // per tree, plus counter arrays that must stay aligned across paths.
  churn([&](net::Topology& t, DirqNetwork& n) {
    net::Node newcomer;
    newcomer.x = 0.0;
    newcomer.y = 4.0;
    newcomer.sensors = {kT};
    const NodeId id = t.add_node(newcomer);
    n.handle_node_addition(id, 20);
  });
  for (; epoch < 30; ++epoch) step(epoch);

  expect_networks_identical(seq, par);
}

}  // namespace
}  // namespace dirq::core

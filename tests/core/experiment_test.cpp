// Experiment driver: short end-to-end runs of the paper's §7 setup.
// The full 20 000-epoch figure runs live in bench/; these tests keep the
// invariants under CI-scale budgets (2 000-4 000 epochs).
#include "core/experiment.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "support/ledger_parity.hpp"

namespace dirq::core {
namespace {

ExperimentConfig short_cfg(std::int64_t epochs = 2000) {
  ExperimentConfig cfg;
  cfg.seed = 42;
  cfg.epochs = epochs;
  cfg.relevant_fraction = 0.4;
  cfg.network.mode = NetworkConfig::ThetaMode::Fixed;
  cfg.network.fixed_pct = 5.0;
  return cfg;
}

TEST(Experiment, RunsAndInjectsExpectedQueryCount) {
  ExperimentResults res = Experiment(short_cfg()).run();
  // Queries every 20 epochs, starting at epoch 20: 2000/20 - 1 = 99.
  EXPECT_EQ(res.queries, 99);
  EXPECT_EQ(res.records.size(), 99u);
  EXPECT_GT(res.updates_transmitted, 0);
  EXPECT_GT(res.flooding_total, 0);
}

TEST(Experiment, CostRatioIsNaNWhenNoQueriesRan) {
  // A run shorter than one query period injects nothing, so there is no
  // flooding baseline to compare against. The ratio must be explicitly
  // not-a-number — a silent 0.0 would read as "DirQ was free" to any
  // sweep aggregation averaging ratios across cells.
  ExperimentConfig cfg = short_cfg(/*epochs=*/10);
  ASSERT_GT(cfg.query_period, cfg.epochs);
  ExperimentResults res = Experiment(cfg).run();
  EXPECT_EQ(res.queries, 0);
  EXPECT_EQ(res.flooding_total, 0);
  EXPECT_TRUE(std::isnan(res.cost_ratio()));
  // The normal path is unaffected: any run with queries has a finite ratio.
  EXPECT_TRUE(std::isfinite(Experiment(short_cfg(100)).run().cost_ratio()));
}

TEST(Experiment, BurstModeGatesQueryArrivals) {
  // 2000 epochs, query period 20, bursts of 200 epochs with 600-epoch
  // gaps: the cycle is 800 epochs and queries land only at period
  // multiples whose cycle phase is < 200, i.e. phases {0, 20, ..., 180}.
  // Cycle 1 (epochs 0-799) skips phase 0 (epoch 0 never injects): 9.
  // Cycles 2 and 3 (starting at 800 and 1600) contribute 10 each.
  ExperimentConfig cfg = short_cfg();
  cfg.burst_length_epochs = 200;
  cfg.burst_gap_epochs = 600;
  ExperimentResults res = Experiment(cfg).run();
  EXPECT_EQ(res.queries, 9 + 10 + 10);
  // The rate predictor saw a non-smooth stream; the run still audits
  // every query it injected.
  EXPECT_EQ(res.records.size(), static_cast<std::size_t>(res.queries));
  EXPECT_GT(res.flooding_total, 0);
}

TEST(Experiment, BurstModeIsDeterministicAndDefaultsToSmooth) {
  ExperimentConfig cfg = short_cfg();
  cfg.burst_length_epochs = 100;
  cfg.burst_gap_epochs = 300;
  ExperimentResults a = Experiment(cfg).run();
  ExperimentResults b = Experiment(cfg).run();
  EXPECT_EQ(a.queries, b.queries);
  EXPECT_EQ(a.ledger.total(), b.ledger.total());
  // Defaults keep the paper's smooth stream: same count as the plain run.
  EXPECT_EQ(Experiment(short_cfg()).run().queries, 99);
}

TEST(Experiment, BurstModeAuditsEveryLmacQueryOnTheUniformWindow) {
  // LMAC queries disseminate asynchronously and are audited at the next
  // query-period boundary. That boundary must arrive on schedule even
  // inside a burst gap — the last query of a burst must not stay pending
  // until the next burst (it would get a gap-long dissemination window
  // instead of the uniform query_period frames).
  ExperimentConfig cfg = short_cfg(/*epochs=*/400);
  cfg.placement.node_count = 20;
  cfg.transport = TransportKind::Lmac;
  cfg.burst_length_epochs = 100;
  cfg.burst_gap_epochs = 100;
  ExperimentResults res = Experiment(cfg).run();
  // Cycle 200, phases {0,20,...,80} inject: cycle 1 skips epoch 0 (4),
  // cycle 2 contributes 5.
  EXPECT_EQ(res.queries, 4 + 5);
  EXPECT_EQ(res.records.size(), 9u);
  // Every audited query saw a bounded window: with the uniform window the
  // run is deterministic and each record carries a delivery audit.
  ExperimentResults res2 = Experiment(cfg).run();
  EXPECT_EQ(res.ledger.total(), res2.ledger.total());
  EXPECT_DOUBLE_EQ(res.coverage_pct.mean(), res2.coverage_pct.mean());
}

TEST(Experiment, BurstConfigValidation) {
  ExperimentConfig cfg = short_cfg();
  cfg.burst_length_epochs = -1;
  EXPECT_THROW(Experiment(cfg).run(), std::invalid_argument);
  cfg.burst_length_epochs = 0;
  cfg.burst_gap_epochs = 100;  // gap without bursts is meaningless
  EXPECT_THROW(Experiment(cfg).run(), std::invalid_argument);
  cfg.burst_length_epochs = 100;
  cfg.burst_gap_epochs = -5;
  EXPECT_THROW(Experiment(cfg).run(), std::invalid_argument);
}

TEST(Experiment, DeterministicAcrossRuns) {
  ExperimentResults a = Experiment(short_cfg()).run();
  ExperimentResults b = Experiment(short_cfg()).run();
  EXPECT_EQ(a.updates_transmitted, b.updates_transmitted);
  EXPECT_EQ(a.ledger.total(), b.ledger.total());
  EXPECT_DOUBLE_EQ(a.overshoot_pct.mean(), b.overshoot_pct.mean());
}

TEST(Experiment, SeedsChangeOutcomes) {
  ExperimentConfig cfg = short_cfg();
  cfg.seed = 1;
  ExperimentResults a = Experiment(cfg).run();
  cfg.seed = 2;
  ExperimentResults b = Experiment(cfg).run();
  EXPECT_NE(a.updates_transmitted, b.updates_transmitted);
}

TEST(Experiment, QueriesNeverMissTrueSources) {
  // Coverage invariant: every node whose reading matches is reached
  // (ranges are theta-conservative, so DirQ overshoots but does not skip
  // settled sources). Allow a tiny slack for same-epoch transitions.
  ExperimentResults res = Experiment(short_cfg()).run();
  EXPECT_GT(res.coverage_pct.mean(), 97.0);
}

TEST(Experiment, OvershootGrowsWithTheta) {
  ExperimentConfig cfg = short_cfg();
  cfg.network.fixed_pct = 3.0;
  const double small = Experiment(cfg).run().overshoot_pct.mean();
  cfg.network.fixed_pct = 9.0;
  const double large = Experiment(cfg).run().overshoot_pct.mean();
  EXPECT_GT(large, small);
}

TEST(Experiment, UpdateTrafficShrinksWithTheta) {
  ExperimentConfig cfg = short_cfg();
  cfg.network.fixed_pct = 3.0;
  const std::int64_t small = Experiment(cfg).run().updates_transmitted;
  cfg.network.fixed_pct = 9.0;
  const std::int64_t large = Experiment(cfg).run().updates_transmitted;
  EXPECT_LT(large, small);
}

TEST(Experiment, AtcKeepsDirqBelowFloodingWhereFixedThetaCannot) {
  // Paper §7.2: "The main drawback of using a fixed threshold is that
  // there is a possibility that the cost of the directed dissemination
  // scheme may exceed the cost of flooding." ATC exists to prevent that.
  ExperimentConfig cfg = short_cfg(6000);
  cfg.network.mode = NetworkConfig::ThetaMode::Fixed;
  cfg.network.fixed_pct = 3.0;
  const double fixed_ratio = Experiment(cfg).run().cost_ratio();

  cfg.network.mode = NetworkConfig::ThetaMode::Atc;
  const double atc_ratio = Experiment(cfg).run().cost_ratio();

  EXPECT_LT(atc_ratio, 1.0);
  EXPECT_LT(atc_ratio, fixed_ratio);
  EXPECT_GT(atc_ratio, 0.0);
}

TEST(Experiment, AtcModeRuns) {
  ExperimentConfig cfg = short_cfg(4000);
  cfg.network.mode = NetworkConfig::ThetaMode::Atc;
  ExperimentResults res = Experiment(cfg).run();
  EXPECT_GT(res.queries, 0);
  EXPECT_GT(res.updates_transmitted, 0);
  EXPECT_LT(res.cost_ratio(), 1.0);
  // Theta trace exists and moved away from the initial value at least once.
  ASSERT_FALSE(res.theta_pct_series.empty());
}

TEST(Experiment, ReceivePctTracksShouldPct) {
  ExperimentResults res = Experiment(short_cfg()).run();
  // Directed dissemination: receive >= should (conservative ranges) but
  // far below 100% of the network for a 40% target.
  EXPECT_GE(res.receive_pct.mean(), res.should_pct.mean() - 1.0);
  EXPECT_LT(res.receive_pct.mean(), 90.0);
  EXPECT_NEAR(res.should_pct.mean(), 40.0, 8.0);
}

TEST(Experiment, UmaxRecordedHourly) {
  ExperimentConfig cfg = short_cfg(2000);  // < 1 hour: only hour 0
  ExperimentResults res = Experiment(cfg).run();
  ASSERT_EQ(res.umax_per_hour.size(), 1u);
  EXPECT_GT(res.umax_per_hour[0], 0.0);
  ASSERT_EQ(res.ehr_per_hour.size(), 1u);
  // Hour-0 prior: one query per 20 epochs = 180/hour.
  EXPECT_DOUBLE_EQ(res.ehr_per_hour[0], 180.0);
}

TEST(Experiment, UpdateSeriesBinsCoverRun) {
  ExperimentConfig cfg = short_cfg();
  ExperimentResults res = Experiment(cfg).run();
  EXPECT_EQ(res.updates_per_bin.bin_width(), 100);
  EXPECT_LE(res.updates_per_bin.bin_count(), 21u);
  EXPECT_EQ(static_cast<std::int64_t>(res.updates_per_bin.total()),
            res.updates_transmitted);
}

TEST(Experiment, RecordsCanBeDisabled) {
  ExperimentConfig cfg = short_cfg();
  cfg.keep_records = false;
  ExperimentResults res = Experiment(cfg).run();
  EXPECT_TRUE(res.records.empty());
  EXPECT_EQ(res.queries, 99);
}

TEST(Experiment, SourcePctBelowShouldPct) {
  // Sources are a subset of the involved set (forwarders included).
  ExperimentResults res = Experiment(short_cfg()).run();
  EXPECT_LE(res.source_pct.mean(), res.should_pct.mean() + 1e-9);
}

TEST(Experiment, ConfigValidationRejectsDivisionByZeroKnobs) {
  // run() divides by query_period and modulos by epochs_per_hour and
  // series_bin; zero or negative values must be rejected up front instead
  // of hitting integer-division UB mid-run.
  {
    ExperimentConfig cfg = short_cfg();
    cfg.query_period = 0;
    EXPECT_THROW(Experiment(cfg).run(), std::invalid_argument);
  }
  {
    ExperimentConfig cfg = short_cfg();
    cfg.query_period = -20;
    EXPECT_THROW(Experiment(cfg).run(), std::invalid_argument);
  }
  {
    ExperimentConfig cfg = short_cfg();
    cfg.epochs_per_hour = 0;
    EXPECT_THROW(Experiment(cfg).run(), std::invalid_argument);
  }
  {
    ExperimentConfig cfg = short_cfg();
    cfg.series_bin = -1;
    EXPECT_THROW(Experiment(cfg).run(), std::invalid_argument);
  }
  {
    ExperimentConfig cfg = short_cfg();
    cfg.epochs = -1;
    EXPECT_THROW(Experiment(cfg).run(), std::invalid_argument);
  }
}

TEST(Experiment, ConfigValidationRejectsBadRatesAndLmacGeometry) {
  {
    ExperimentConfig cfg = short_cfg();
    cfg.loss_rate = 1.0;
    EXPECT_THROW(Experiment(cfg).run(), std::invalid_argument);
  }
  {
    ExperimentConfig cfg = short_cfg();
    cfg.relevant_fraction = 0.0;
    EXPECT_THROW(Experiment(cfg).run(), std::invalid_argument);
  }
  {
    ExperimentConfig cfg = short_cfg();
    cfg.transport = TransportKind::Lmac;
    cfg.lmac.slots_per_frame = 0;
    EXPECT_THROW(Experiment(cfg).run(), std::invalid_argument);
  }
  {
    ExperimentConfig cfg = short_cfg();
    cfg.transport = TransportKind::Lmac;
    cfg.lmac.slots_per_frame = 65;  // > the occupied-view bitmask width
    EXPECT_THROW(Experiment(cfg).run(), std::invalid_argument);
  }
  {
    ExperimentConfig cfg = short_cfg();
    cfg.transport = TransportKind::Lmac;
    cfg.lmac.ticks_per_slot = 0;
    EXPECT_THROW(Experiment(cfg).run(), std::invalid_argument);
  }
}

ExperimentConfig lmac_cfg(std::int64_t epochs = 800) {
  ExperimentConfig cfg = short_cfg(epochs);
  cfg.transport = TransportKind::Lmac;
  return cfg;
}

TEST(Experiment, LmacBackendRunsAndInjectsExpectedQueryCount) {
  ExperimentResults res = Experiment(lmac_cfg()).run();
  EXPECT_EQ(res.queries, 800 / 20 - 1);
  EXPECT_EQ(res.records.size(), static_cast<std::size_t>(res.queries));
  EXPECT_GT(res.updates_transmitted, 0);
  EXPECT_GT(res.flooding_total, 0);
  // Slot-synchronous delivery lags instant by at most the tree depth in
  // frames; with 20 frames between queries coverage stays near-complete.
  EXPECT_GT(res.coverage_pct.mean(), 95.0);
}

TEST(Experiment, LmacBackendDeterministicAcrossRuns) {
  ExperimentResults a = Experiment(lmac_cfg()).run();
  ExperimentResults b = Experiment(lmac_cfg()).run();
  EXPECT_EQ(a.updates_transmitted, b.updates_transmitted);
  EXPECT_EQ(a.ledger.total(), b.ledger.total());
  EXPECT_EQ(a.node_tx, b.node_tx);
  EXPECT_EQ(a.node_rx, b.node_rx);
  EXPECT_DOUBLE_EQ(a.overshoot_pct.mean(), b.overshoot_pct.mean());
  EXPECT_DOUBLE_EQ(a.coverage_pct.mean(), b.coverage_pct.mean());
}

TEST(Experiment, LmacLedgerReconcilesWithPerNodeEnergy) {
  // Cost parity across backends: the LMAC ledger (bootstrap carry-over
  // included) must attribute to per-node counters exactly the way the
  // instant transport already does.
  expect_ledger_reconciles(Experiment(lmac_cfg()).run());
  expect_ledger_reconciles(Experiment(short_cfg()).run());
}

TEST(Experiment, LmacComposesWithChannelLoss) {
  ExperimentConfig clean = lmac_cfg();
  ExperimentConfig noisy = lmac_cfg();
  noisy.loss_rate = 0.25;
  const ExperimentResults a = Experiment(clean).run();
  const ExperimentResults b = Experiment(noisy).run();
  // CRC loss on the MAC backend: coverage degrades, the deployment (and
  // hence the flooding baseline) is unchanged, and the drop-hook keeps the
  // per-node rx attribution reconciled with the ledger.
  EXPECT_LT(b.coverage_pct.mean(), a.coverage_pct.mean());
  EXPECT_EQ(a.flooding_total, b.flooding_total);
  expect_ledger_reconciles(b);
}

TEST(Experiment, LmacDrainAuditsFinalQueryWhenEpochsNotAMultipleOfPeriod) {
  // With epochs = 310 the last query is injected at epoch 300 and the
  // epoch loop ends 10 frames later — the post-loop drain must run the
  // remaining 10 frames (the live scheduling path) so the final query
  // gets the same 20-frame window as every other one.
  ExperimentConfig cfg = lmac_cfg(310);
  const ExperimentResults res = Experiment(cfg).run();
  EXPECT_EQ(res.queries, 310 / 20);  // epochs 20, 40, ..., 300
  ASSERT_FALSE(res.records.empty());
  EXPECT_EQ(res.records.back().epoch, 300);
  expect_ledger_reconciles(res);
  // Determinism holds through the drain frames too.
  const ExperimentResults again = Experiment(cfg).run();
  EXPECT_EQ(res.ledger.total(), again.ledger.total());
  EXPECT_EQ(res.node_rx, again.node_rx);
}

TEST(Experiment, FastFieldBackendRunsDeterministically) {
  // The fast backend is a different deterministic dataset: the protocol
  // must behave sanely on it (every query injected, sources never missed
  // thanks to conservative ranges) and two runs must agree bit-for-bit.
  ExperimentConfig cfg;
  cfg.epochs = 600;
  cfg.network.mode = NetworkConfig::ThetaMode::Fixed;
  cfg.network.fixed_pct = 5.0;
  cfg.field_backend = data::EnvironmentBackend::Fast;
  cfg.keep_records = true;
  const ExperimentResults a = Experiment(cfg).run();
  const ExperimentResults b = Experiment(cfg).run();
  EXPECT_EQ(a.queries, 600 / 20 - 1);
  EXPECT_GT(a.updates_transmitted, 0);
  EXPECT_GT(a.coverage_pct.mean(), 97.0);  // lossless: sources reached
  EXPECT_EQ(a.ledger.total(), b.ledger.total());
  EXPECT_EQ(a.updates_transmitted, b.updates_transmitted);
  EXPECT_EQ(a.node_tx, b.node_tx);
}

TEST(Experiment, FastAndPinnedBackendsDiverge) {
  // Same seed, different noise processes: the runs must not coincide —
  // if they did, the seam would not actually be switching backends.
  ExperimentConfig cfg;
  cfg.epochs = 400;
  cfg.network.mode = NetworkConfig::ThetaMode::Fixed;
  cfg.network.fixed_pct = 5.0;
  const ExperimentResults pinned = Experiment(cfg).run();
  cfg.field_backend = data::EnvironmentBackend::Fast;
  const ExperimentResults fast = Experiment(cfg).run();
  EXPECT_EQ(pinned.queries, fast.queries);  // same schedule either way
  EXPECT_TRUE(pinned.updates_transmitted != fast.updates_transmitted ||
              pinned.node_tx != fast.node_tx);
}

TEST(Experiment, MacControlTotalZeroOnInstantPositiveOnLmac) {
  ExperimentConfig cfg;
  cfg.epochs = 200;
  cfg.network.mode = NetworkConfig::ThetaMode::Fixed;
  cfg.network.fixed_pct = 5.0;
  const ExperimentResults instant = Experiment(cfg).run();
  EXPECT_EQ(instant.mac_control_total, 0);
  cfg.transport = TransportKind::Lmac;
  const ExperimentResults lmac = Experiment(cfg).run();
  // The TDMA schedule beacons every frame regardless of DirQ traffic.
  EXPECT_GT(lmac.mac_control_total, 0);
}

TEST(Experiment, LmacFrameGeometryIsConfigurable) {
  // A shorter frame (16 slots x 8 ticks) still hosts one epoch per frame;
  // the run completes and stays deterministic.
  ExperimentConfig cfg = lmac_cfg(400);
  cfg.lmac.slots_per_frame = 16;
  cfg.lmac.ticks_per_slot = 8;
  const ExperimentResults a = Experiment(cfg).run();
  const ExperimentResults b = Experiment(cfg).run();
  EXPECT_EQ(a.queries, 400 / 20 - 1);
  EXPECT_EQ(a.ledger.total(), b.ledger.total());
  expect_ledger_reconciles(a);
}

}  // namespace
}  // namespace dirq::core

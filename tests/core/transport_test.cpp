// InstantTransport cost accounting and delivery semantics; the metrics
// audit arithmetic.
#include "core/transport.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "metrics/audit.hpp"

namespace dirq::core {
namespace {

struct Capture final : MessageSink {
  struct Rec {
    NodeId to, from;
    Message msg;
  };
  std::vector<Rec> delivered;
  void deliver(NodeId to, NodeId from, const Message& msg) override {
    delivered.push_back({to, from, msg});
  }
};

net::Topology line(std::size_t n) {
  std::vector<net::Node> nodes(n);
  for (std::size_t i = 0; i < n; ++i) nodes[i].x = static_cast<double>(i);
  return net::Topology(std::move(nodes), 1.1);
}

Message update_msg() { return Message{UpdateMessage{}}; }
Message query_msg() { return Message{QueryMessage{}}; }
Message ehr_msg() { return Message{EhrMessage{}}; }

TEST(InstantTransport, UnicastDeliversToNeighbor) {
  net::Topology t = line(3);
  Capture cap;
  InstantTransport tr(t, cap);
  tr.unicast(0, 1, update_msg());
  ASSERT_EQ(cap.delivered.size(), 1u);
  EXPECT_EQ(cap.delivered[0].to, 1u);
  EXPECT_EQ(cap.delivered[0].from, 0u);
  EXPECT_EQ(tr.costs().update_tx, 1);
  EXPECT_EQ(tr.costs().update_rx, 1);
}

TEST(InstantTransport, UnicastToNonNeighborCostsTxOnly) {
  net::Topology t = line(4);
  Capture cap;
  InstantTransport tr(t, cap);
  tr.unicast(0, 3, update_msg());
  EXPECT_TRUE(cap.delivered.empty());
  EXPECT_EQ(tr.costs().update_tx, 1);
  EXPECT_EQ(tr.costs().update_rx, 0);
}

TEST(InstantTransport, UnicastToDeadNodeIsLost) {
  net::Topology t = line(3);
  t.kill_node(1);
  Capture cap;
  InstantTransport tr(t, cap);
  tr.unicast(0, 1, update_msg());
  EXPECT_TRUE(cap.delivered.empty());
  EXPECT_EQ(tr.costs().update_tx, 1);
}

TEST(InstantTransport, MulticastOneTxManyRx) {
  // Star: 0 center.
  std::vector<net::Node> nodes(4);
  net::Topology t(nodes, {{0, 1}, {0, 2}, {0, 3}});
  Capture cap;
  InstantTransport tr(t, cap);
  const std::vector<NodeId> targets{1, 3};
  tr.multicast(0, targets, query_msg());
  EXPECT_EQ(cap.delivered.size(), 2u);
  EXPECT_EQ(tr.costs().query_tx, 1);
  EXPECT_EQ(tr.costs().query_rx, 2);
}

TEST(InstantTransport, EmptyMulticastIsFree) {
  net::Topology t = line(2);
  Capture cap;
  InstantTransport tr(t, cap);
  tr.multicast(0, {}, query_msg());
  EXPECT_EQ(tr.costs().query_tx, 0);
}

TEST(InstantTransport, MulticastSkipsDeadTargets) {
  std::vector<net::Node> nodes(4);
  net::Topology t(nodes, {{0, 1}, {0, 2}, {0, 3}});
  t.kill_node(2);
  Capture cap;
  InstantTransport tr(t, cap);
  const std::vector<NodeId> targets{1, 2, 3};
  tr.multicast(0, targets, query_msg());
  EXPECT_EQ(cap.delivered.size(), 2u);
  EXPECT_EQ(tr.costs().query_rx, 2);
}

TEST(InstantTransport, BroadcastReachesAllAliveNeighbors) {
  net::Topology t = line(3);
  Capture cap;
  InstantTransport tr(t, cap);
  tr.broadcast(1, ehr_msg());
  EXPECT_EQ(cap.delivered.size(), 2u);
  EXPECT_EQ(tr.costs().control_tx, 1);
  EXPECT_EQ(tr.costs().control_rx, 2);
}

TEST(InstantTransport, LedgerSeparatesKinds) {
  net::Topology t = line(3);
  Capture cap;
  InstantTransport tr(t, cap);
  tr.unicast(0, 1, update_msg());
  tr.unicast(0, 1, query_msg());
  tr.unicast(0, 1, ehr_msg());
  EXPECT_EQ(tr.costs().update_cost(), 2);
  EXPECT_EQ(tr.costs().query_cost(), 2);
  EXPECT_EQ(tr.costs().control_cost(), 2);
  EXPECT_EQ(tr.costs().total(), 6);
}

}  // namespace
}  // namespace dirq::core

namespace dirq::metrics {
namespace {

TEST(Audit, DisjointSets) {
  const std::vector<NodeId> should{1, 2, 3};
  const std::vector<NodeId> received{4, 5};
  const QueryAudit a = audit_query(should, received);
  EXPECT_EQ(a.correct, 0u);
  EXPECT_EQ(a.wrong, 2u);
  EXPECT_EQ(a.missed, 3u);
  EXPECT_NEAR(a.overshoot_pct(), 200.0 / 3.0, 1e-9);
  EXPECT_DOUBLE_EQ(a.coverage_pct(), 0.0);
}

TEST(Audit, PerfectDelivery) {
  const std::vector<NodeId> nodes{1, 2, 3, 4};
  const QueryAudit a = audit_query(nodes, nodes);
  EXPECT_EQ(a.wrong, 0u);
  EXPECT_EQ(a.missed, 0u);
  EXPECT_DOUBLE_EQ(a.overshoot_pct(), 0.0);
  EXPECT_DOUBLE_EQ(a.reach_ratio_pct(), 100.0);
  EXPECT_DOUBLE_EQ(a.coverage_pct(), 100.0);
}

TEST(Audit, OvershootCounting) {
  const std::vector<NodeId> should{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  const std::vector<NodeId> received{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11};
  const QueryAudit a = audit_query(should, received);
  EXPECT_EQ(a.wrong, 1u);
  EXPECT_DOUBLE_EQ(a.overshoot_pct(), 10.0);
  EXPECT_DOUBLE_EQ(a.reach_ratio_pct(), 110.0);
}

TEST(Audit, EmptyShouldSet) {
  const std::vector<NodeId> received{1};
  const QueryAudit a = audit_query({}, received);
  EXPECT_DOUBLE_EQ(a.overshoot_pct(), 0.0);
  EXPECT_DOUBLE_EQ(a.coverage_pct(), 100.0);
  EXPECT_EQ(a.wrong, 1u);
}

TEST(Audit, EmptyBothIsClean) {
  const QueryAudit a = audit_query({}, {});
  EXPECT_DOUBLE_EQ(a.overshoot_pct(), 0.0);
  EXPECT_DOUBLE_EQ(a.reach_ratio_pct(), 100.0);
}

TEST(Audit, PartialOverlap) {
  const std::vector<NodeId> should{2, 4, 6, 8};
  const std::vector<NodeId> received{4, 5, 8, 9};
  const QueryAudit a = audit_query(should, received);
  EXPECT_EQ(a.correct, 2u);
  EXPECT_EQ(a.wrong, 2u);
  EXPECT_EQ(a.missed, 2u);
  EXPECT_DOUBLE_EQ(a.coverage_pct(), 50.0);
}

}  // namespace
}  // namespace dirq::metrics

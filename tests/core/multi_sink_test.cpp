// Multi-sink query plane, driver level: single-sink equivalence, 1-vs-N
// determinism, per-sink ledger parity against the global ledger on every
// transport backend, admission-vs-roundrobin behaviour, config
// validation, and the thread-clamp policy (multi-sink is no longer
// clamped — see parallel_multi_sink_test.cpp for the engine itself).
#include <gtest/gtest.h>

#include <stdexcept>

#include "core/experiment.hpp"
#include "support/ledger_parity.hpp"
#include "sweep/sink.hpp"

namespace dirq::core {
namespace {

ExperimentConfig small_config(std::size_t sinks) {
  ExperimentConfig cfg;
  cfg.seed = 42;
  cfg.epochs = 600;
  cfg.query_period = 20;
  cfg.network.mode = NetworkConfig::ThetaMode::Fixed;
  cfg.network.fixed_pct = 5.0;
  cfg.sink_count = sinks;
  cfg.keep_records = false;
  return cfg;
}

/// Componentwise sum of the per-sink mirrors must equal the global ledger:
/// every message is attributed to exactly one tree.
void expect_sink_ledgers_reconcile(const ExperimentResults& res) {
  CostLedger sum;
  std::int64_t queries = 0;
  for (const CostLedger& led : res.sink_ledgers) {
    sum.query_tx += led.query_tx;
    sum.query_rx += led.query_rx;
    sum.update_tx += led.update_tx;
    sum.update_rx += led.update_rx;
    sum.control_tx += led.control_tx;
    sum.control_rx += led.control_rx;
  }
  for (std::int64_t q : res.sink_queries) queries += q;
  EXPECT_EQ(sum.query_tx, res.ledger.query_tx);
  EXPECT_EQ(sum.query_rx, res.ledger.query_rx);
  EXPECT_EQ(sum.update_tx, res.ledger.update_tx);
  EXPECT_EQ(sum.update_rx, res.ledger.update_rx);
  EXPECT_EQ(sum.control_tx, res.ledger.control_tx);
  EXPECT_EQ(sum.control_rx, res.ledger.control_rx);
  EXPECT_EQ(queries, res.queries);
}

TEST(MultiSink, ExplicitRootZeroMatchesDefaultExactly) {
  const ExperimentResults base = Experiment(small_config(1)).run();
  ExperimentConfig cfg = small_config(1);
  cfg.sinks = {0};
  const ExperimentResults explicit_root = Experiment(cfg).run();
  // The full fingerprint (ledger, series, per-node counters) must match:
  // an explicit {0} is the same deployment as the paper's default.
  EXPECT_EQ(sweep::summarize(base), sweep::summarize(explicit_root));
  EXPECT_EQ(base.sink_roots, (std::vector<NodeId>{0}));
}

TEST(MultiSink, RunsAreDeterministic) {
  const ExperimentResults a = Experiment(small_config(4)).run();
  const ExperimentResults b = Experiment(small_config(4)).run();
  EXPECT_EQ(sweep::summarize(a), sweep::summarize(b));
  EXPECT_EQ(a.sink_roots, b.sink_roots);
}

TEST(MultiSink, QueryStreamIsIdenticalAcrossSinkCounts) {
  // Same seed, 1 vs 4 sinks: the workload substream is untouched by the
  // sink count, so both runs inject the same number of queries.
  const ExperimentResults one = Experiment(small_config(1)).run();
  const ExperimentResults four = Experiment(small_config(4)).run();
  EXPECT_EQ(one.queries, four.queries);
  EXPECT_EQ(four.sink_roots.size(), 4u);
}

TEST(MultiSink, SinkLedgersReconcileOnInstantTransport) {
  const ExperimentResults res = Experiment(small_config(4)).run();
  expect_sink_ledgers_reconcile(res);
  expect_ledger_reconciles(res);
}

TEST(MultiSink, SinkLedgersReconcileOnLmac) {
  ExperimentConfig cfg = small_config(3);
  cfg.epochs = 300;
  cfg.transport = TransportKind::Lmac;
  const ExperimentResults res = Experiment(cfg).run();
  expect_sink_ledgers_reconcile(res);
  expect_ledger_reconciles(res);
}

TEST(MultiSink, SinkLedgersReconcileUnderLoss) {
  ExperimentConfig cfg = small_config(3);
  cfg.loss_rate = 0.15;
  const ExperimentResults res = Experiment(cfg).run();
  expect_sink_ledgers_reconcile(res);
  expect_ledger_reconciles(res);
}

TEST(MultiSink, CrossTreeOverheadCountsOnlyExtraTrees) {
  const ExperimentResults one = Experiment(small_config(1)).run();
  EXPECT_EQ(one.cross_tree_update_overhead, 0);
  const ExperimentResults four = Experiment(small_config(4)).run();
  CostUnits expected = 0;
  for (std::size_t k = 1; k < four.sink_ledgers.size(); ++k) {
    expected += four.sink_ledgers[k].update_cost() +
                four.sink_ledgers[k].control_cost();
  }
  EXPECT_EQ(four.cross_tree_update_overhead, expected);
  EXPECT_GT(four.cross_tree_update_overhead, 0);
}

TEST(MultiSink, RoundRobinSpreadsQueryCountsEvenly) {
  ExperimentConfig cfg = small_config(4);
  cfg.routing = RoutingPolicy::RoundRobin;
  const ExperimentResults res = Experiment(cfg).run();
  ASSERT_EQ(res.sink_queries.size(), 4u);
  std::int64_t lo = res.sink_queries[0], hi = res.sink_queries[0];
  for (std::int64_t q : res.sink_queries) {
    lo = std::min(lo, q);
    hi = std::max(hi, q);
  }
  EXPECT_LE(hi - lo, 1);  // modulo counter: counts differ by at most one
  expect_sink_ledgers_reconcile(res);
}

TEST(MultiSink, AdmissionBalancesEnergyAtLeastAsWellAsRoundRobin) {
  ExperimentConfig admission = small_config(4);
  ExperimentConfig rr = small_config(4);
  rr.routing = RoutingPolicy::RoundRobin;
  const ExperimentResults a = Experiment(admission).run();
  const ExperimentResults r = Experiment(rr).run();
  EXPECT_LE(a.sink_energy_spread(), r.sink_energy_spread());
}

TEST(MultiSink, EffectiveThreadsHonoursMultiSinkRequests) {
  // Every backend honours the requested thread count now: the lossy
  // channel evaluates counter-mode drops in-shard and LMAC parallelises
  // its epoch phases, so no configuration clamps back to sequential.
  ExperimentConfig cfg = small_config(4);
  cfg.threads = 4;
  EXPECT_EQ(Experiment::effective_threads(cfg), 4u);
  EXPECT_EQ(Experiment::thread_clamp_reason(cfg), nullptr);
  cfg.transport = TransportKind::Lmac;
  EXPECT_EQ(Experiment::effective_threads(cfg), 4u);
  EXPECT_EQ(Experiment::thread_clamp_reason(cfg), nullptr);
  EXPECT_NE(Experiment::thread_mode_note(cfg), nullptr);
  cfg.transport = TransportKind::Instant;
  cfg.loss_rate = 0.1;
  EXPECT_EQ(Experiment::effective_threads(cfg), 4u);
  EXPECT_EQ(Experiment::thread_clamp_reason(cfg), nullptr);
  EXPECT_EQ(Experiment::thread_mode_note(cfg), nullptr);
}

TEST(MultiSink, ValidateRejectsBadSinkConfigs) {
  ExperimentConfig cfg = small_config(1);
  cfg.sink_count = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = small_config(1);
  cfg.sinks = {0, 0};
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = small_config(1);
  cfg.sinks = {0, 9999};
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = small_config(1);
  cfg.sink_count = 100000;  // more sinks than nodes
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(MultiSink, ValidateRejectsBadMultiAttrConfigs) {
  ExperimentConfig cfg = small_config(1);
  cfg.multi_attr_fraction = 1.5;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = small_config(1);
  cfg.multi_attr_fraction = 0.5;
  cfg.multi_attr_count = 1;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = small_config(1);
  cfg.multi_attr_fraction = 0.5;
  cfg.multi_attr_count = 100;  // beyond the sensor complement
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(MultiSink, MultiAttrMixRunsAndReconciles) {
  ExperimentConfig cfg = small_config(2);
  cfg.multi_attr_fraction = 0.5;
  cfg.multi_attr_count = 2;
  const ExperimentResults res = Experiment(cfg).run();
  EXPECT_GT(res.queries, 0);
  expect_sink_ledgers_reconcile(res);
  expect_ledger_reconciles(res);
}

TEST(MultiSink, ZeroMultiAttrFractionIsByteIdenticalToDefault) {
  // fraction = 0 must not consume the multi-attr substream: the run is
  // indistinguishable from one where the knob does not exist.
  const ExperimentResults base = Experiment(small_config(1)).run();
  ExperimentConfig cfg = small_config(1);
  cfg.multi_attr_fraction = 0.0;
  cfg.multi_attr_count = 3;
  const ExperimentResults res = Experiment(cfg).run();
  EXPECT_EQ(sweep::summarize(base), sweep::summarize(res));
}

}  // namespace
}  // namespace dirq::core

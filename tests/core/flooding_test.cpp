// Flooding baseline: simulated flood must equal the Eq. (3)/(4) closed
// forms on every topology shape.
#include "core/flooding.hpp"

#include <gtest/gtest.h>

#include "analysis/cost_model.hpp"
#include "net/placement.hpp"
#include "sim/rng.hpp"

namespace dirq::core {
namespace {

net::Topology line(std::size_t n) {
  std::vector<net::Node> nodes(n);
  for (std::size_t i = 0; i < n; ++i) nodes[i].x = static_cast<double>(i);
  return net::Topology(std::move(nodes), 1.1);
}

TEST(Flooding, LineCostMatchesClosedForm) {
  net::Topology t = line(5);
  FloodingScheme f(t);
  const FloodOutcome out = f.flood_from(0);
  EXPECT_EQ(out.tx, 5);
  EXPECT_EQ(out.rx, 8);  // 2 * 4 links
  EXPECT_EQ(out.cost(), f.analytical_cost());
  EXPECT_EQ(out.received.size(), 4u);
}

TEST(Flooding, EveryNodeBroadcastsExactlyOnce) {
  net::Topology t = line(7);
  const FloodOutcome out = FloodingScheme(t).flood_from(0);
  EXPECT_EQ(out.tx, static_cast<CostUnits>(t.alive_count()));
}

TEST(Flooding, KnaryTreeMatchesEq4) {
  for (std::int64_t k = 2; k <= 4; ++k) {
    for (std::int64_t d = 1; d <= 4; ++d) {
      net::Topology t = net::knary_tree(static_cast<std::size_t>(k),
                                        static_cast<std::size_t>(d));
      const FloodOutcome out = FloodingScheme(t).flood_from(0);
      EXPECT_EQ(out.cost(), analysis::flooding_cost(k, d))
          << "k=" << k << " d=" << d;
    }
  }
}

TEST(Flooding, RandomTopologyMatchesEq3) {
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    sim::Rng rng(seed);
    net::Topology t = net::random_connected(net::RandomPlacementConfig{}, rng);
    FloodingScheme f(t);
    const FloodOutcome out = f.flood_from(0);
    EXPECT_EQ(out.cost(), f.analytical_cost()) << "seed " << seed;
    EXPECT_EQ(out.cost(),
              analysis::flooding_cost_graph(
                  static_cast<std::int64_t>(t.alive_count()),
                  static_cast<std::int64_t>(t.link_count())));
    EXPECT_EQ(out.received.size(), t.alive_count() - 1);
  }
}

TEST(Flooding, DeadOriginFloodsNothing) {
  net::Topology t = line(3);
  t.kill_node(0);
  const FloodOutcome out = FloodingScheme(t).flood_from(0);
  EXPECT_EQ(out.cost(), 0);
  EXPECT_TRUE(out.received.empty());
}

TEST(Flooding, PartitionOnlyFloodsReachableComponent) {
  net::Topology t = line(5);
  t.kill_node(2);
  FloodingScheme f(t);
  const FloodOutcome out = f.flood_from(0);
  EXPECT_EQ(out.received, (std::vector<NodeId>{1}));
  EXPECT_EQ(out.tx, 2);  // nodes 0 and 1 broadcast
  EXPECT_EQ(out.rx, 2);  // both directions of link 0-1
  // Note: analytical_cost() counts the whole alive graph (4 nodes, 2
  // links); a partitioned flood costs less than the closed form.
  EXPECT_LT(out.cost(), f.analytical_cost());
}

TEST(Flooding, CostGrowsWithDensity) {
  std::vector<net::Node> sparse_nodes(9), dense_nodes(9);
  for (std::size_t i = 0; i < 9; ++i) {
    sparse_nodes[i].x = static_cast<double>(i);
    dense_nodes[i].x = static_cast<double>(i) * 0.4;
  }
  net::Topology sparse(std::move(sparse_nodes), 1.1);
  net::Topology dense(std::move(dense_nodes), 1.1);
  EXPECT_GT(FloodingScheme(dense).flood_from(0).cost(),
            FloodingScheme(sparse).flood_from(0).cost());
}

}  // namespace
}  // namespace dirq::core

// The branch-light gate sweep (mask + compact) must select exactly the
// nodes the scalar branchy filter selects, for any due vector, epoch, and
// sub-range — gate_filter_ref is the oracle.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/gate_scan.hpp"
#include "sim/rng.hpp"

namespace dirq::core {
namespace {

std::vector<NodeId> scan_compact(const std::vector<std::int64_t>& due,
                                 const std::vector<NodeId>& nodes,
                                 std::size_t begin, std::size_t end,
                                 std::int64_t epoch) {
  std::vector<std::uint8_t> mask(due.size());
  gate_scan_mask(due.data(), due.size(), epoch, mask.data());
  std::vector<NodeId> out(end - begin);
  out.resize(gate_compact(nodes.data(), mask.data(), begin, end, out.data()));
  return out;
}

std::vector<NodeId> filter_ref(const std::vector<std::int64_t>& due,
                               const std::vector<NodeId>& nodes,
                               std::size_t begin, std::size_t end,
                               std::int64_t epoch) {
  std::vector<NodeId> out(end - begin);
  out.resize(
      gate_filter_ref(due.data(), nodes.data(), begin, end, epoch, out.data()));
  return out;
}

TEST(GateScan, EmptyRangeSelectsNothing) {
  std::vector<std::int64_t> due;
  std::vector<NodeId> nodes;
  EXPECT_TRUE(scan_compact(due, nodes, 0, 0, 5).empty());
}

TEST(GateScan, AllDueAndNoneDue) {
  const std::vector<std::int64_t> due{1, 2, 3, 4};
  const std::vector<NodeId> nodes{10, 20, 30, 40};
  EXPECT_EQ(scan_compact(due, nodes, 0, 4, 4), nodes);
  EXPECT_TRUE(scan_compact(due, nodes, 0, 4, 0).empty());
}

TEST(GateScan, BoundaryIsInclusive) {
  // due == epoch counts as due (the controller contract: fire at next_due).
  const std::vector<std::int64_t> due{7, 8, 7, 9};
  const std::vector<NodeId> nodes{1, 2, 3, 4};
  EXPECT_EQ(scan_compact(due, nodes, 0, 4, 7), (std::vector<NodeId>{1, 3}));
}

TEST(GateScan, MatchesScalarReferenceOnRandomizedVectors) {
  sim::Rng rng(20260808);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t n =
        static_cast<std::size_t>(rng.uniform_int(0, trial < 100 ? 17 : 700));
    std::vector<std::int64_t> due(n);
    std::vector<NodeId> nodes(n);
    for (std::size_t j = 0; j < n; ++j) {
      due[j] = rng.uniform_int(-4, 40);
      nodes[j] = static_cast<NodeId>(rng.uniform_int(0, 100000));
    }
    const std::int64_t epoch = rng.uniform_int(-6, 42);
    // Full range plus a random interior segment, the shapes the engine
    // uses (tree shards take [0, n); subtree shards take [seg_lo, seg_hi)).
    const std::size_t begin = n == 0 ? 0 : static_cast<std::size_t>(
                                               rng.uniform_int(0, n - 1));
    const std::size_t end =
        static_cast<std::size_t>(rng.uniform_int(begin, n));
    EXPECT_EQ(scan_compact(due, nodes, 0, n, epoch),
              filter_ref(due, nodes, 0, n, epoch))
        << "trial " << trial;
    EXPECT_EQ(scan_compact(due, nodes, begin, end, epoch),
              filter_ref(due, nodes, begin, end, epoch))
        << "trial " << trial << " segment [" << begin << ", " << end << ")";
  }
}

}  // namespace
}  // namespace dirq::core

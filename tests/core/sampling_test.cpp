// Sampling suppression (paper §8 future work): Holt predictor, interval
// doubling/reset, energy accounting, and the end-to-end accuracy trade.
#include "core/sampling.hpp"

#include <gtest/gtest.h>

#include "core/experiment.hpp"

namespace dirq::core {
namespace {

constexpr SensorType kT = kSensorTemperature;

SamplingConfig enabled_cfg(double margin = 0.5, int max_interval = 16) {
  SamplingConfig cfg;
  cfg.enabled = true;
  cfg.margin_frac = margin;
  cfg.max_interval = max_interval;
  return cfg;
}

TEST(Sampling, DisabledAlwaysSamples) {
  SamplingController s(SamplingConfig{});  // enabled = false
  for (std::int64_t e = 0; e < 20; ++e) {
    EXPECT_TRUE(s.should_sample(kT, e));
    s.on_sample(kT, 20.0, 1.0, e);
  }
  EXPECT_EQ(s.samples_taken(), 20);
  EXPECT_EQ(s.samples_skipped(), 0);
}

TEST(Sampling, FirstTwoEpochsAlwaysSampled) {
  SamplingController s(enabled_cfg());
  EXPECT_TRUE(s.should_sample(kT, 0));
  s.on_sample(kT, 20.0, 1.0, 0);
  EXPECT_TRUE(s.should_sample(kT, 1));  // trend needs a second point
}

TEST(Sampling, LinearSignalDoublesInterval) {
  SamplingController s(enabled_cfg());
  double v = 20.0;
  std::int64_t epoch = 0;
  for (int i = 0; i < 200; ++i) {
    if (s.should_sample(kT, epoch)) {
      s.on_sample(kT, v, /*theta=*/1.0, epoch);
    } else {
      s.on_skip(kT);
    }
    v += 0.01;  // perfectly linear drift
    ++epoch;
  }
  EXPECT_EQ(s.interval(kT), 16);  // capped at max_interval
  EXPECT_GT(s.samples_skipped(), s.samples_taken());
}

TEST(Sampling, SurpriseResetsIntervalToOne) {
  SamplingController s(enabled_cfg());
  std::int64_t epoch = 0;
  double v = 20.0;
  for (int i = 0; i < 100; ++i) {
    if (s.should_sample(kT, epoch)) s.on_sample(kT, v, 1.0, epoch);
    v += 0.01;
    ++epoch;
  }
  ASSERT_GT(s.interval(kT), 1);
  // Step change far beyond the margin at the next due sample.
  while (!s.should_sample(kT, epoch)) ++epoch;
  s.on_sample(kT, v + 50.0, 1.0, epoch);
  EXPECT_EQ(s.interval(kT), 1);
}

TEST(Sampling, PredictionExtrapolatesTrend) {
  SamplingController s(enabled_cfg());
  s.on_sample(kT, 10.0, 1.0, 0);
  s.on_sample(kT, 11.0, 1.0, 1);  // slope 1/epoch
  EXPECT_NEAR(s.predict(kT, 3), 13.0, 1e-9);
}

TEST(Sampling, TypesAreIndependent) {
  SamplingController s(enabled_cfg());
  std::int64_t epoch = 0;
  for (int i = 0; i < 100; ++i) {
    if (s.should_sample(kT, epoch)) s.on_sample(kT, 20.0, 1.0, epoch);
    ++epoch;
  }
  EXPECT_GT(s.interval(kT), 1);
  EXPECT_EQ(s.interval(kSensorHumidity), 1);  // untouched type
  EXPECT_TRUE(s.should_sample(kSensorHumidity, epoch));
}

TEST(Sampling, MaxIntervalBoundsDetectionDelay) {
  SamplingController s(enabled_cfg(0.5, 4));
  std::int64_t epoch = 0;
  for (int i = 0; i < 100; ++i) {
    if (s.should_sample(kT, epoch)) s.on_sample(kT, 20.0, 1.0, epoch);
    ++epoch;
  }
  EXPECT_LE(s.interval(kT), 4);
}

class SamplingExperimentTest : public ::testing::TestWithParam<double> {};

TEST_P(SamplingExperimentTest, SavesSamplesWithBoundedAccuracyLoss) {
  const double margin = GetParam();
  ExperimentConfig cfg;
  cfg.seed = 42;
  cfg.epochs = 3000;
  cfg.relevant_fraction = 0.4;
  cfg.network.fixed_pct = 5.0;
  cfg.keep_records = false;

  const ExperimentResults base = Experiment(cfg).run();
  EXPECT_EQ(base.samples_skipped, 0);

  cfg.network.sampling.enabled = true;
  cfg.network.sampling.margin_frac = margin;
  const ExperimentResults sup = Experiment(cfg).run();

  // Real savings...
  EXPECT_GT(sup.samples_skipped, 0);
  EXPECT_LT(sup.samples_taken, base.samples_taken);
  const double reduction =
      1.0 - static_cast<double>(sup.samples_taken) /
                static_cast<double>(base.samples_taken);
  EXPECT_GT(reduction, 0.2) << "margin " << margin;
  // ...with bounded accuracy damage: coverage stays high because skipping
  // is gated on the predictor tracking within a fraction of theta.
  EXPECT_GT(sup.coverage_pct.mean(), base.coverage_pct.mean() - 5.0);
}

INSTANTIATE_TEST_SUITE_P(Margins, SamplingExperimentTest,
                         ::testing::Values(0.25, 0.5, 1.0));

TEST(SamplingExperiment, TighterMarginSavesLess) {
  ExperimentConfig cfg;
  cfg.seed = 42;
  cfg.epochs = 3000;
  cfg.network.fixed_pct = 5.0;
  cfg.keep_records = false;
  cfg.network.sampling.enabled = true;

  cfg.network.sampling.margin_frac = 0.1;
  const std::int64_t tight = Experiment(cfg).run().samples_taken;
  cfg.network.sampling.margin_frac = 1.0;
  const std::int64_t loose = Experiment(cfg).run().samples_taken;
  EXPECT_GT(tight, loose);
}

}  // namespace
}  // namespace dirq::core

// The acceptance bar for unclamping the last sequential backends: a lossy
// run and an LMAC run at N threads must produce byte-identical
// ExperimentResults to the same run at --threads 1, on every transport and
// at every sink count. The sequential engine is the specification; the
// shard geometries (subtree, tree, LMAC chunk) are implementations that
// must be observationally invisible.
#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "support/ledger_parity.hpp"
#include "sweep/sink.hpp"

namespace dirq::core {
namespace {

ExperimentConfig base_config(std::size_t sinks, double loss,
                             TransportKind transport) {
  ExperimentConfig cfg;
  cfg.seed = 42;
  cfg.epochs = 600;
  cfg.query_period = 20;
  cfg.network.mode = NetworkConfig::ThetaMode::Fixed;
  cfg.network.fixed_pct = 5.0;
  cfg.sink_count = sinks;
  cfg.loss_rate = loss;
  cfg.transport = transport;
  cfg.keep_records = false;
  return cfg;
}

std::string run_at(ExperimentConfig cfg, unsigned threads) {
  cfg.threads = threads;
  return sweep::summarize(Experiment(cfg).run());
}

TEST(LossyParallel, LossyInstantByteIdenticalAcrossThreads) {
  const ExperimentConfig cfg = base_config(1, 0.15, TransportKind::Instant);
  const std::string sequential = run_at(cfg, 1);
  for (unsigned threads : {2u, 4u}) {
    EXPECT_EQ(run_at(cfg, threads), sequential) << "threads " << threads;
  }
}

TEST(LossyParallel, LossyMultiSinkByteIdenticalAcrossThreads) {
  const ExperimentConfig cfg = base_config(4, 0.15, TransportKind::Instant);
  const std::string sequential = run_at(cfg, 1);
  for (unsigned threads : {2u, 4u}) {
    EXPECT_EQ(run_at(cfg, threads), sequential) << "threads " << threads;
  }
}

TEST(LossyParallel, LmacByteIdenticalAcrossThreads) {
  const ExperimentConfig cfg = base_config(1, 0.0, TransportKind::Lmac);
  const std::string sequential = run_at(cfg, 1);
  for (unsigned threads : {2u, 4u}) {
    EXPECT_EQ(run_at(cfg, threads), sequential) << "threads " << threads;
  }
}

TEST(LossyParallel, LmacMultiSinkByteIdenticalAcrossThreads) {
  const ExperimentConfig cfg = base_config(3, 0.0, TransportKind::Lmac);
  const std::string sequential = run_at(cfg, 1);
  for (unsigned threads : {2u, 4u}) {
    EXPECT_EQ(run_at(cfg, threads), sequential) << "threads " << threads;
  }
}

TEST(LossyParallel, LossyLmacByteIdenticalAcrossThreads) {
  // Both unclamped backends stacked: counter-mode drops riding the
  // chunk-sharded LMAC epoch walk.
  const ExperimentConfig cfg = base_config(2, 0.15, TransportKind::Lmac);
  const std::string sequential = run_at(cfg, 1);
  for (unsigned threads : {2u, 4u}) {
    EXPECT_EQ(run_at(cfg, threads), sequential) << "threads " << threads;
  }
}

TEST(LossyParallel, LossyMultiSinkLedgerReconcilesAtEverySinkCount) {
  // Under loss, a CRC-failed reception still charges the ledger and the
  // receiving node (note_dropped_rx); the per-node attribution must stay
  // in lockstep with the ledger at every sink count and thread count.
  for (std::size_t sinks : {2u, 4u, 8u}) {
    // The channel must actually be engaging (a vacuous reconcile proves
    // nothing): the lossy run's fingerprint differs from the lossless one.
    const std::string lossless =
        run_at(base_config(sinks, 0.0, TransportKind::Instant), 1);
    for (unsigned threads : {1u, 2u, 4u}) {
      ExperimentConfig cfg = base_config(sinks, 0.2, TransportKind::Instant);
      cfg.threads = threads;
      const ExperimentResults res = Experiment(cfg).run();
      EXPECT_NE(sweep::summarize(res), lossless)
          << "sinks " << sinks << " threads " << threads;
      expect_ledger_reconciles(res);
    }
  }
}

}  // namespace
}  // namespace dirq::core

// Intra-run parallelism determinism tier: an N-thread run must produce a
// byte-identical ExperimentResults summary to the 1-thread sequential
// path (goldens are only ever recorded against --threads 1, so this is
// the contract that makes the parallel engine safe to enable at all),
// and order-sensitive backends must fall back to 1 thread.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/network.hpp"
#include "data/field_model.hpp"
#include "net/topology.hpp"
#include "sim/rng.hpp"
#include "sweep/sink.hpp"

namespace dirq::core {
namespace {

constexpr SensorType kT = kSensorTemperature;

ExperimentConfig small_cfg() {
  ExperimentConfig cfg;
  cfg.epochs = 400;        // 20 queries at the default period
  cfg.epochs_per_hour = 100;  // 4 EHr broadcasts interleaved with the epochs
  cfg.seed = 1234;
  return cfg;
}

std::string run_summary(ExperimentConfig cfg, unsigned threads) {
  cfg.threads = threads;
  Experiment exp(cfg);
  return sweep::summarize(exp.run());
}

TEST(ParallelEpoch, PinnedBackendSummariesByteIdentical) {
  const ExperimentConfig cfg = small_cfg();
  const std::string seq = run_summary(cfg, 1);
  EXPECT_EQ(seq, run_summary(cfg, 4));
  EXPECT_EQ(seq, run_summary(cfg, 0));  // all hardware threads
}

TEST(ParallelEpoch, FastBackendSummariesByteIdentical) {
  ExperimentConfig cfg = small_cfg();
  cfg.field_backend = data::EnvironmentBackend::Fast;
  EXPECT_EQ(run_summary(cfg, 1), run_summary(cfg, 4));
}

TEST(ParallelEpoch, AtcThetaSummariesByteIdentical) {
  ExperimentConfig cfg = small_cfg();
  cfg.network.mode = NetworkConfig::ThetaMode::Atc;
  EXPECT_EQ(run_summary(cfg, 1), run_summary(cfg, 4));
}

TEST(ParallelEpoch, SamplingSuppressionSummariesByteIdentical) {
  // The gated walk is the trickiest parallel surface: the engine mirrors
  // each node's next_due gate into per-shard slots and must keep them in
  // lock-step with the sequential controllers.
  ExperimentConfig cfg = small_cfg();
  cfg.network.sampling.enabled = true;
  EXPECT_EQ(run_summary(cfg, 1), run_summary(cfg, 4));
}

TEST(ParallelEpoch, EffectiveThreadsHonoursEveryBackend) {
  // Historically LMAC and lossy runs clamped to one thread; counter-mode
  // drop decisions and chunk-sharded LMAC epochs removed both clamps.
  ExperimentConfig cfg;
  cfg.threads = 4;
  EXPECT_EQ(Experiment::effective_threads(cfg), 4u);
  cfg.transport = TransportKind::Lmac;
  EXPECT_EQ(Experiment::effective_threads(cfg), 4u);
  EXPECT_EQ(Experiment::thread_clamp_reason(cfg), nullptr);
  cfg.transport = TransportKind::Instant;
  cfg.loss_rate = 0.1;
  EXPECT_EQ(Experiment::effective_threads(cfg), 4u);
  EXPECT_EQ(Experiment::thread_clamp_reason(cfg), nullptr);
  cfg.loss_rate = 0.0;
  cfg.threads = 0;
  EXPECT_GE(Experiment::effective_threads(cfg), 1u);
}

/// Cross shape: root 0 at the origin, three 3-node arms (+x, -x, +y).
/// Three root children -> three shards; every non-root node senses kT.
net::Topology cross_topology() {
  std::vector<net::Node> nodes(10);
  const double xs[] = {0, 1, 2, 3, -1, -2, -3, 0, 0, 0};
  const double ys[] = {0, 0, 0, 0, 0, 0, 0, 1, 2, 3};
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    nodes[i].x = xs[i];
    nodes[i].y = ys[i];
    if (i > 0) nodes[i].sensors = {kT};
  }
  return net::Topology(std::move(nodes), 1.1);
}

void expect_networks_identical(DirqNetwork& a, DirqNetwork& b) {
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.costs().query_tx, b.costs().query_tx);
  EXPECT_EQ(a.costs().query_rx, b.costs().query_rx);
  EXPECT_EQ(a.costs().update_tx, b.costs().update_tx);
  EXPECT_EQ(a.costs().update_rx, b.costs().update_rx);
  EXPECT_EQ(a.costs().control_tx, b.costs().control_tx);
  EXPECT_EQ(a.costs().control_rx, b.costs().control_rx);
  EXPECT_EQ(a.updates_transmitted(), b.updates_transmitted());
  EXPECT_EQ(a.samples_taken(), b.samples_taken());
  for (NodeId u = 0; u < a.size(); ++u) {
    EXPECT_EQ(a.node_tx(u), b.node_tx(u)) << "node " << u;
    EXPECT_EQ(a.node_rx(u), b.node_rx(u)) << "node " << u;
  }
  EXPECT_DOUBLE_EQ(a.mean_theta_pct(kT), b.mean_theta_pct(kT));
}

TEST(ParallelEpoch, ChurnInvalidatesPlanAndMatchesSequentialTwin) {
  NetworkConfig ncfg;
  ncfg.mode = NetworkConfig::ThetaMode::Fixed;
  ncfg.fixed_pct = 5.0;

  net::Topology topo_seq = cross_topology();
  net::Topology topo_par = cross_topology();
  data::Environment env_seq(topo_seq, /*sensor_type_count=*/1, sim::Rng(9));
  data::Environment env_par(topo_par, /*sensor_type_count=*/1, sim::Rng(9));
  DirqNetwork seq(topo_seq, 0, ncfg);
  DirqNetwork par(topo_par, 0, ncfg);
  par.set_threads(4);
  EXPECT_EQ(par.threads(), 4u);
  EXPECT_EQ(seq.threads(), 1u);

  const auto step = [&](std::int64_t epoch) {
    env_seq.advance_to(epoch);
    env_par.advance_to(epoch);
    seq.process_epoch(env_seq, epoch);
    par.process_epoch(env_par, epoch);
  };
  const auto churn = [&](auto&& fn) {
    fn(topo_seq, seq);
    fn(topo_par, par);
  };

  std::int64_t epoch = 0;
  for (; epoch < 10; ++epoch) step(epoch);

  // Mid-arm death: node 3 detaches, the tree shrinks, the cached shard
  // plan must be rebuilt (a stale plan would walk a dead node and throw).
  churn([&](net::Topology& t, DirqNetwork& n) {
    t.kill_node(2);
    n.handle_node_death(2, 10);
  });
  for (; epoch < 20; ++epoch) step(epoch);

  // Addition at the +y arm's tip: a fresh protocol instance plus counter
  // arrays that must stay aligned across both paths.
  churn([&](net::Topology& t, DirqNetwork& n) {
    net::Node newcomer;
    newcomer.x = 0.0;
    newcomer.y = 4.0;
    newcomer.sensors = {kT};
    const NodeId id = t.add_node(newcomer);
    n.handle_node_addition(id, 20);
  });
  for (; epoch < 30; ++epoch) step(epoch);

  expect_networks_identical(seq, par);
}

}  // namespace
}  // namespace dirq::core

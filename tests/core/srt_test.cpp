// SRT baseline: static index construction and routing semantics, plus the
// DirQ-vs-SRT contrast the paper's §2 argues.
#include "core/srt.hpp"

#include <gtest/gtest.h>

#include "core/network.hpp"
#include "data/field_model.hpp"
#include "metrics/audit.hpp"
#include "net/placement.hpp"
#include "query/workload.hpp"
#include "sim/rng.hpp"

namespace dirq::core {
namespace {

constexpr SensorType kT = kSensorTemperature;
constexpr SensorType kH = kSensorHumidity;

net::Topology hetero_line() {
  // 0 - 1(T) - 2(H) - 3(T,H)
  std::vector<net::Node> nodes(4);
  for (std::size_t i = 0; i < 4; ++i) nodes[i].x = static_cast<double>(i);
  nodes[1].sensors = {kT};
  nodes[2].sensors = {kH};
  nodes[3].sensors = {kT, kH};
  return net::Topology(std::move(nodes), 1.1);
}

TEST(Srt, IndexAggregatesSubtreeTypes) {
  net::Topology topo = hetero_line();
  net::SpanningTree tree(topo, 0);
  SrtScheme srt(topo, tree);
  EXPECT_EQ(srt.subtree_types(3), (std::set<SensorType>{kT, kH}));
  EXPECT_EQ(srt.subtree_types(2), (std::set<SensorType>{kT, kH}));
  EXPECT_EQ(srt.subtree_types(1), (std::set<SensorType>{kT, kH}));
}

TEST(Srt, BuildCostIsTwoPerNonRootNode) {
  net::Topology topo = hetero_line();
  net::SpanningTree tree(topo, 0);
  SrtScheme srt(topo, tree);
  EXPECT_EQ(srt.build_cost(), 6);
}

TEST(Srt, ValueWindowDoesNotPrune) {
  // SRT delivers a temperature query to every T-capable subtree member no
  // matter how selective the value window is.
  net::Topology topo = hetero_line();
  net::SpanningTree tree(topo, 0);
  SrtScheme srt(topo, tree);
  const auto narrow = srt.disseminate(query::RangeQuery{1, kT, 1.0, 1.1, 0});
  const auto wide = srt.disseminate(query::RangeQuery{2, kT, -1e9, 1e9, 0});
  EXPECT_EQ(narrow.received, wide.received);
  EXPECT_EQ(narrow.cost, wide.cost);
}

TEST(Srt, TypePruningWorks) {
  // 0 - 1(T only, leaf), 0 - 2(H only, leaf).
  std::vector<net::Node> nodes(3);
  nodes[1].sensors = {kT};
  nodes[2].sensors = {kH};
  net::Topology topo(nodes, {{0, 1}, {0, 2}});
  net::SpanningTree tree(topo, 0);
  SrtScheme srt(topo, tree);
  const auto out = srt.disseminate(query::RangeQuery{1, kT, 0.0, 1.0, 0});
  EXPECT_EQ(out.received, (std::vector<NodeId>{1}));
}

TEST(Srt, RegionPruningWorks) {
  net::Topology topo = hetero_line();
  net::SpanningTree tree(topo, 0);
  SrtScheme srt(topo, tree);
  query::RangeQuery q{1, kT, -1e9, 1e9, 0};
  q.region = net::BBox{0.0, -1.0, 1.5, 1.0};  // node 1 only
  const auto out = srt.disseminate(q);
  EXPECT_EQ(out.received, (std::vector<NodeId>{1}));
}

TEST(Srt, RebuildAfterChurnRecountsIndex) {
  net::Topology topo = hetero_line();
  net::SpanningTree tree(topo, 0);
  SrtScheme srt(topo, tree);
  topo.kill_node(3);
  tree.rebuild(topo);
  srt.rebuild(topo, tree);
  EXPECT_EQ(srt.subtree_types(2), (std::set<SensorType>{kH}));
  const auto out = srt.disseminate(query::RangeQuery{1, kT, -1e9, 1e9, 0});
  EXPECT_EQ(out.received, (std::vector<NodeId>{1}));
}

TEST(Srt, CoversEveryCapableNodeAlways) {
  sim::Rng rng(42);
  net::Topology topo = net::random_connected(net::RandomPlacementConfig{}, rng);
  net::SpanningTree tree(topo, 0);
  SrtScheme srt(topo, tree);
  const auto out = srt.disseminate(query::RangeQuery{1, kT, 123.0, 124.0, 0});
  // Every T-capable node received (coverage by construction) plus the
  // forwarders toward them.
  for (NodeId u : topo.nodes_with_sensor(kT)) {
    EXPECT_TRUE(std::binary_search(out.received.begin(), out.received.end(), u));
  }
}

TEST(SrtVsDirq, DirqPrunesWhereSrtCannot) {
  // The §2 contrast, end to end: on selective value queries DirQ's dynamic
  // ranges prune far below SRT's static index, at the price of update
  // traffic SRT does not pay.
  sim::Rng rng(42);
  net::Topology topo = net::random_connected(net::RandomPlacementConfig{}, rng);
  data::Environment env(topo, 4, rng.substream("env"));
  NetworkConfig cfg;
  cfg.fixed_pct = 3.0;
  DirqNetwork net(topo, 0, cfg);
  for (std::int64_t e = 0; e < 100; ++e) {
    env.advance_to(e);
    net.process_epoch(env, e);
  }
  SrtScheme srt(topo, net.tree());
  query::WorkloadGenerator gen(topo, net.tree(), env,
                               query::WorkloadConfig{0.2, 0.02},
                               rng.substream("wl"));
  sim::RunningStat dirq_cost, srt_cost, dirq_recv, srt_recv;
  for (int i = 0; i < 50; ++i) {
    const query::RangeQuery q = gen.next(100);
    const QueryOutcome d = net.inject(q, 100);
    const SrtScheme::Outcome s = srt.disseminate(q);
    dirq_cost.push(static_cast<double>(d.cost));
    srt_cost.push(static_cast<double>(s.cost));
    dirq_recv.push(static_cast<double>(d.received.size()));
    srt_recv.push(static_cast<double>(s.received.size()));
    // SRT never misses a node DirQ reaches for the same type (its reach is
    // a superset of any value-based pruning of capable subtrees).
    EXPECT_TRUE(std::includes(s.received.begin(), s.received.end(),
                              d.believed_sources.begin(),
                              d.believed_sources.end()));
  }
  EXPECT_LT(dirq_cost.mean(), srt_cost.mean());
  EXPECT_LT(dirq_recv.mean(), srt_recv.mean());
}

}  // namespace
}  // namespace dirq::core

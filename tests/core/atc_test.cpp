// Threshold controllers: fixed percentages and the ATC reconstruction
// (DESIGN.md §1.7): budget derivation from EHr, band steering, clamping,
// variability-scaled steps.
#include "core/atc.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace dirq::core {
namespace {

TEST(NominalSpan, PositiveForAllTypes) {
  for (SensorType t = 0; t < 8; ++t) EXPECT_GT(nominal_span(t), 0.0);
}

TEST(FixedTheta, PercentageOfSpan) {
  FixedTheta f(5.0);
  EXPECT_DOUBLE_EQ(f.theta(kSensorTemperature),
                   0.05 * nominal_span(kSensorTemperature));
  EXPECT_DOUBLE_EQ(f.theta_pct(kSensorTemperature), 5.0);
  EXPECT_DOUBLE_EQ(f.theta_pct(kSensorLight), 5.0);
}

TEST(FixedTheta, HooksAreNoOps) {
  FixedTheta f(3.0);
  f.on_reading(kSensorTemperature, 25.0);
  f.on_update_sent(kSensorTemperature, 10);
  f.on_epoch(10);
  EXPECT_DOUBLE_EQ(f.theta_pct(kSensorTemperature), 3.0);
}

EhrMessage ehr(double umax_per_hour, std::uint32_t nodes = 50) {
  EhrMessage m;
  m.expected_queries_per_hour = 180.0;
  m.umax_per_hour = umax_per_hour;
  m.alive_nodes = nodes;
  m.round = 1;
  return m;
}

TEST(Atc, StartsAtInitialPct) {
  AtcController c(AtcConfig{});
  EXPECT_NEAR(c.theta_pct(kSensorTemperature), 5.0, 1e-9);
}

TEST(Atc, BudgetIsFairShare) {
  AtcController c(AtcConfig{});
  c.on_ehr(ehr(500.0, 50), 0);
  EXPECT_DOUBLE_EQ(c.budget_per_hour(), 10.0);
}

TEST(Atc, ZeroNodesIgnored) {
  AtcController c(AtcConfig{});
  c.on_ehr(ehr(500.0, 0), 0);
  EXPECT_DOUBLE_EQ(c.budget_per_hour(), 0.0);
}

TEST(Atc, RateEstimateScalesToHour) {
  AtcConfig cfg;
  cfg.rate_window_epochs = 600;
  AtcController c(cfg);
  for (std::int64_t e = 1000; e < 1010; ++e) c.on_update_sent(kSensorTemperature, e);
  // 10 updates in a 600-epoch window -> 60/hour (3600-epoch hour).
  EXPECT_NEAR(c.estimated_rate_per_hour(1300), 60.0, 1e-9);
}

TEST(Atc, OldUpdatesLeaveTheWindow) {
  AtcConfig cfg;
  cfg.rate_window_epochs = 100;
  AtcController c(cfg);
  c.on_update_sent(kSensorTemperature, 0);
  c.on_epoch(500);  // trims
  EXPECT_DOUBLE_EQ(c.estimated_rate_per_hour(500), 0.0);
}

TEST(Atc, OverBudgetWidensTheta) {
  AtcConfig cfg;
  cfg.rate_window_epochs = 100;
  cfg.adjust_period = 10;
  AtcController c(cfg);
  c.on_reading(kSensorTemperature, 20.0);  // register the type
  c.on_reading(kSensorTemperature, 21.0);
  c.on_ehr(ehr(50.0, 50), 0);  // budget = 1/hour
  const double before = c.theta_pct(kSensorTemperature);
  for (std::int64_t e = 1; e <= 50; ++e) {
    c.on_update_sent(kSensorTemperature, e);  // way over 1/hour
    c.on_epoch(e);
  }
  EXPECT_GT(c.theta_pct(kSensorTemperature), before);
}

TEST(Atc, UnderBudgetNarrowsTheta) {
  AtcConfig cfg;
  cfg.rate_window_epochs = 100;
  cfg.adjust_period = 10;
  AtcController c(cfg);
  c.on_reading(kSensorTemperature, 20.0);
  c.on_reading(kSensorTemperature, 21.0);
  c.on_ehr(ehr(1e6, 50), 0);  // enormous budget, zero updates sent
  const double before = c.theta_pct(kSensorTemperature);
  for (std::int64_t e = 1; e <= 50; ++e) c.on_epoch(e);
  EXPECT_LT(c.theta_pct(kSensorTemperature), before);
}

TEST(Atc, InsideBandHolds) {
  AtcConfig cfg;
  cfg.rate_window_epochs = 3600;
  cfg.adjust_period = 10;
  AtcController c(cfg);
  c.on_reading(kSensorTemperature, 20.0);
  c.on_reading(kSensorTemperature, 21.0);
  c.on_ehr(ehr(100.0, 1), 0);  // budget = 100/hour; band [45, 55]
  // Send 50/hour steadily. During the first hour the sliding window is
  // still filling (rate reads low, theta narrows); once primed, the rate
  // sits mid-band and theta must hold perfectly still.
  auto drive_hour = [&](std::int64_t from) {
    for (std::int64_t e = from; e < from + 3600; ++e) {
      if (e % 72 == 0) c.on_update_sent(kSensorTemperature, e);
      c.on_epoch(e);
    }
  };
  drive_hour(1);
  const double primed = c.theta_pct(kSensorTemperature);
  drive_hour(3601);
  EXPECT_NEAR(c.theta_pct(kSensorTemperature), primed, 1e-9);
}

TEST(Atc, NoEhrNoAdjustment) {
  AtcConfig cfg;
  cfg.adjust_period = 10;
  AtcController c(cfg);
  c.on_reading(kSensorTemperature, 20.0);
  for (std::int64_t e = 1; e <= 100; ++e) {
    c.on_update_sent(kSensorTemperature, e);
    c.on_epoch(e);
  }
  EXPECT_NEAR(c.theta_pct(kSensorTemperature), 5.0, 1e-9);
}

TEST(Atc, ThetaClampsAtMax) {
  AtcConfig cfg;
  cfg.rate_window_epochs = 100;
  cfg.adjust_period = 1;
  cfg.max_pct = 12.0;
  AtcController c(cfg);
  c.on_reading(kSensorTemperature, 20.0);
  c.on_reading(kSensorTemperature, 30.0);
  c.on_ehr(ehr(0.1, 50), 0);
  for (std::int64_t e = 1; e <= 2000; ++e) {
    c.on_update_sent(kSensorTemperature, e);
    c.on_epoch(e);
  }
  EXPECT_LE(c.theta_pct(kSensorTemperature), 12.0 + 1e-9);
  EXPECT_NEAR(c.theta_pct(kSensorTemperature), 12.0, 0.5);
}

TEST(Atc, ThetaClampsAtMin) {
  AtcConfig cfg;
  cfg.rate_window_epochs = 100;
  cfg.adjust_period = 1;
  cfg.min_pct = 1.0;
  AtcController c(cfg);
  c.on_reading(kSensorTemperature, 20.0);
  c.on_reading(kSensorTemperature, 21.0);
  c.on_ehr(ehr(1e9, 1), 0);
  for (std::int64_t e = 1; e <= 2000; ++e) c.on_epoch(e);
  EXPECT_GE(c.theta_pct(kSensorTemperature), 1.0 - 1e-9);
  EXPECT_NEAR(c.theta_pct(kSensorTemperature), 1.0, 0.1);
}

TEST(Atc, VolatileTypeMovesFaster) {
  // Two controllers over budget; the one whose signal varies more per
  // epoch must widen theta faster (variability-scaled steps).
  AtcConfig cfg;
  cfg.rate_window_epochs = 100;
  cfg.adjust_period = 10;
  AtcController calm(cfg), wild(cfg);
  double v = 20.0;
  for (int i = 0; i < 50; ++i) {
    calm.on_reading(kSensorTemperature, v + 0.01 * (i % 2));
    wild.on_reading(kSensorTemperature, v + 10.0 * (i % 2));
  }
  calm.on_ehr(ehr(0.1, 50), 0);
  wild.on_ehr(ehr(0.1, 50), 0);
  for (std::int64_t e = 1; e <= 30; ++e) {
    calm.on_update_sent(kSensorTemperature, e);
    wild.on_update_sent(kSensorTemperature, e);
    calm.on_epoch(e);
    wild.on_epoch(e);
  }
  EXPECT_GT(wild.theta_pct(kSensorTemperature),
            calm.theta_pct(kSensorTemperature));
}

TEST(Atc, AdjustsOnlyOnPeriodBoundaries) {
  AtcConfig cfg;
  cfg.rate_window_epochs = 100;
  cfg.adjust_period = 1000;
  AtcController c(cfg);
  c.on_reading(kSensorTemperature, 20.0);
  c.on_reading(kSensorTemperature, 25.0);
  c.on_ehr(ehr(0.1, 50), 0);
  for (std::int64_t e = 1; e <= 500; ++e) {
    c.on_update_sent(kSensorTemperature, e);
    c.on_epoch(e);
  }
  EXPECT_NEAR(c.theta_pct(kSensorTemperature), 5.0, 1e-9);  // not yet
}

}  // namespace
}  // namespace dirq::core

// Query latency as a first-class metric (ROADMAP multi-sink follow-on):
// per-sink histograms in ExperimentResults, and the LMAC deferred-audit
// attribution fix — a query that disseminates until the next injection
// boundary must count that deferral window in its latency, not just the
// audit round-trip.
#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "net/placement.hpp"

namespace dirq::core {
namespace {

ExperimentConfig small_config(TransportKind transport) {
  ExperimentConfig cfg;
  cfg.seed = 7;
  cfg.placement.node_count = 30;
  cfg.epochs = 400;
  cfg.network.mode = NetworkConfig::ThetaMode::Fixed;
  cfg.network.fixed_pct = 5.0;
  cfg.transport = transport;
  return cfg;
}

TEST(QueryLatency, InstantAnswersSynchronously) {
  const ExperimentResults res =
      Experiment(small_config(TransportKind::Instant)).run();
  ASSERT_GT(res.queries, 0);
  EXPECT_EQ(res.query_latency_epochs.count(), res.queries);
  EXPECT_EQ(res.query_latency_epochs.max(), 0);
  ASSERT_EQ(res.sink_query_latency.size(), 1u);
  EXPECT_EQ(res.sink_query_latency[0].count(), res.queries);
  for (const QueryRecord& rec : res.records) {
    EXPECT_EQ(rec.latency_epochs, 0);
  }
}

TEST(QueryLatency, LmacDeferralWindowCountsOnTheSameSeed) {
  const ExperimentResults instant =
      Experiment(small_config(TransportKind::Instant)).run();
  const ExperimentResults lmac =
      Experiment(small_config(TransportKind::Lmac)).run();
  ASSERT_EQ(instant.queries, lmac.queries);  // same seed, same query stream
  // Every LMAC query is audited at the next injection boundary, one full
  // query_period after injection — the deferral window is the latency.
  EXPECT_EQ(lmac.query_latency_epochs.count(), lmac.queries);
  EXPECT_EQ(lmac.query_latency_epochs.min(), 20);
  EXPECT_EQ(lmac.query_latency_epochs.max(), 20);
  EXPECT_GT(lmac.query_latency_epochs.quantile(0.5),
            instant.query_latency_epochs.quantile(0.5));
  for (const QueryRecord& rec : lmac.records) {
    EXPECT_EQ(rec.latency_epochs, 20);
  }
}

TEST(QueryLatency, LmacDrainQueryGetsTheFullWindowToo) {
  // 410 epochs with query_period 20: the epoch-400 query is still pending
  // when the loop ends and is audited by the post-run drain — its latency
  // must be the same query_period window every mid-run query gets.
  ExperimentConfig cfg = small_config(TransportKind::Lmac);
  cfg.epochs = 410;
  const ExperimentResults res = Experiment(cfg).run();
  ASSERT_GT(res.queries, 0);
  ASSERT_FALSE(res.records.empty());
  EXPECT_EQ(res.records.back().epoch, 400);
  EXPECT_EQ(res.records.back().latency_epochs, 20);
}

TEST(QueryLatency, PerSinkHistogramsMergeToTheGlobalOne) {
  ExperimentConfig cfg = small_config(TransportKind::Instant);
  cfg.sink_count = 3;
  const ExperimentResults res = Experiment(cfg).run();
  ASSERT_EQ(res.sink_query_latency.size(), 3u);
  std::int64_t per_sink_total = 0;
  for (const metrics::LatencyHistogram& h : res.sink_query_latency) {
    per_sink_total += h.count();
  }
  EXPECT_EQ(per_sink_total, res.query_latency_epochs.count());
  EXPECT_EQ(per_sink_total, res.queries);
}

}  // namespace
}  // namespace dirq::core

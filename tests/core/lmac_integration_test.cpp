// DirQ over the real (simulated) LMAC: slot-synchronous update delivery,
// query dissemination across frames, and the §4.2 cross-layer path —
// LMAC's timeout-based death detection driving DirQ's tree repair.
#include <gtest/gtest.h>

#include "core/lmac_transport.hpp"
#include "core/network.hpp"
#include "mac/lmac.hpp"
#include "sim/scheduler.hpp"

namespace dirq::core {
namespace {

constexpr SensorType kT = kSensorTemperature;

struct LmacWorld {
  sim::Scheduler sched;
  net::Topology topo;
  mac::LmacConfig mac_cfg;
  mac::LmacNetwork mac;
  DirqNetwork net;
  LmacTransport transport;

  explicit LmacWorld(std::size_t n)
      : topo(make_line(n)),
        mac_cfg(make_mac_cfg()),
        mac(sched, topo, mac_cfg),
        net(topo, 0, make_net_cfg()),
        transport(mac, *static_cast<MessageSink*>(&net)) {
    net.use_transport(transport);
    // Cross-layer wiring: LMAC death detection triggers DirQ tree repair.
    // The parent-side notification is the one that matters for the range
    // tables; DirqNetwork::handle_node_death is idempotent per epoch.
    transport.set_on_neighbor_lost([this](NodeId, NodeId dead) {
      if (!repaired_.contains(dead)) {
        repaired_.insert(dead);
        net.handle_node_death(dead, current_epoch());
      }
    });
    mac.start();
  }

  static net::Topology make_line(std::size_t n) {
    std::vector<net::Node> nodes(n);
    for (std::size_t i = 0; i < n; ++i) {
      nodes[i].x = static_cast<double>(i);
      if (i > 0) nodes[i].sensors = {kT};
    }
    return net::Topology(std::move(nodes), 1.1);
  }
  static mac::LmacConfig make_mac_cfg() {
    mac::LmacConfig cfg;
    cfg.slots_per_frame = 8;
    cfg.ticks_per_slot = 16;  // frame = 128 ticks
    cfg.timeout_frames = 3;
    return cfg;
  }
  static NetworkConfig make_net_cfg() {
    NetworkConfig cfg;
    cfg.mode = NetworkConfig::ThetaMode::Fixed;
    cfg.fixed_pct = 5.0;
    return cfg;
  }

  [[nodiscard]] std::int64_t current_epoch() const {
    return sched.now() / kTicksPerEpoch;
  }
  void run_frames(std::int64_t frames) {
    sched.run_until(sched.now() + frames * mac_cfg.frame_ticks());
  }

  std::set<NodeId> repaired_;
};

TEST(LmacIntegration, UpdatesPropagateAcrossFrames) {
  LmacWorld w(4);
  w.net.node(3).sample(kT, 30.0, 0);
  w.net.node(2).sample(kT, 20.0, 0);
  w.net.node(1).sample(kT, 10.0, 0);
  // Messages are queued in data sections; each hop needs a frame to relay.
  w.run_frames(5);
  const RangeTable* t = w.net.node(0).table(kT);
  ASSERT_NE(t, nullptr);
  const RangeAggregate agg = t->aggregate();
  ASSERT_TRUE(agg.has_value());
  EXPECT_DOUBLE_EQ(agg->min, 10.0 - 1.1);
  EXPECT_DOUBLE_EQ(agg->max, 30.0 + 1.1);
}

TEST(LmacIntegration, QueryDisseminatesSlotSynchronously) {
  LmacWorld w(4);
  w.net.node(3).sample(kT, 30.0, 0);
  w.net.node(2).sample(kT, 20.0, 0);
  w.net.node(1).sample(kT, 10.0, 0);
  w.run_frames(5);
  w.net.inject_async(query::RangeQuery{1, kT, 29.5, 30.5, 1}, 1);
  w.run_frames(5);  // one hop per frame down the chain
  const QueryOutcome out = w.net.collect_outcome();
  EXPECT_EQ(out.received, (std::vector<NodeId>{1, 2, 3}));
  EXPECT_EQ(out.believed_sources, (std::vector<NodeId>{3}));
}

TEST(LmacIntegration, MulticastChargesSingleTransmission) {
  LmacWorld w(4);
  w.net.node(3).sample(kT, 30.0, 0);
  w.net.node(2).sample(kT, 20.0, 0);
  w.net.node(1).sample(kT, 10.0, 0);
  w.run_frames(5);
  const CostUnits qtx_before = w.transport.costs().query_tx;
  w.net.inject_async(query::RangeQuery{1, kT, 0.0, 100.0, 1}, 1);
  w.run_frames(5);
  (void)w.net.collect_outcome();
  // Forwarders 0, 1, 2: one query transmission each.
  EXPECT_EQ(w.transport.costs().query_tx - qtx_before, 3);
}

TEST(LmacIntegration, CrossLayerDeathDetectionRepairsTables) {
  LmacWorld w(4);
  w.net.node(3).sample(kT, 30.0, 0);
  w.net.node(2).sample(kT, 20.0, 0);
  w.net.node(1).sample(kT, 10.0, 0);
  w.run_frames(5);
  // Node 3 dies silently; nobody tells DirQ directly.
  w.topo.kill_node(3);
  w.run_frames(8);  // timeout (3 frames) + repair traffic
  EXPECT_TRUE(w.repaired_.contains(3));
  const RangeTable* t2 = w.net.node(2).table(kT);
  if (t2 != nullptr) {
    EXPECT_FALSE(t2->child(3).has_value());
  }
  // Root aggregate no longer includes node 3's 31.1 ceiling.
  const RangeTable* t0 = w.net.node(0).table(kT);
  ASSERT_NE(t0, nullptr);
  ASSERT_TRUE(t0->aggregate().has_value());
  EXPECT_DOUBLE_EQ(t0->aggregate()->max, 20.0 + 1.1);
}

TEST(LmacIntegration, EhrFloodOverMac) {
  LmacWorld w(4);
  w.run_frames(2);
  w.net.broadcast_ehr(180.0, 0);
  w.run_frames(6);  // one hop per frame
  // All four nodes rebroadcast once.
  EXPECT_EQ(w.transport.costs().control_tx, 4);
}

}  // namespace
}  // namespace dirq::core

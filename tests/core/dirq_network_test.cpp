// DirQ protocol end-to-end on small controlled topologies: update
// propagation, directed dissemination, heterogeneous types, EHr flooding,
// churn repair, sensor addition/removal.
#include "core/network.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "net/placement.hpp"

namespace dirq::core {
namespace {

constexpr SensorType kT = kSensorTemperature;
constexpr SensorType kH = kSensorHumidity;

// theta = 5% of temperature span (22.0) = 1.1; of humidity span (45) = 2.25.
NetworkConfig fixed_cfg(double pct = 5.0) {
  NetworkConfig cfg;
  cfg.mode = NetworkConfig::ThetaMode::Fixed;
  cfg.fixed_pct = pct;
  return cfg;
}

/// Line 0-1-2-...-(n-1), every non-root node with the given sensors.
net::Topology line(std::size_t n, std::vector<SensorType> sensors = {kT}) {
  std::vector<net::Node> nodes(n);
  for (std::size_t i = 0; i < n; ++i) {
    nodes[i].x = static_cast<double>(i);
    if (i > 0) nodes[i].sensors = sensors;
  }
  return net::Topology(std::move(nodes), 1.1);
}

query::RangeQuery make_query(QueryId id, SensorType type, double lo, double hi,
                             std::int64_t epoch = 1) {
  return query::RangeQuery{id, type, lo, hi, epoch};
}

TEST(DirqNetwork, BootstrapUpdateCascade) {
  net::Topology topo = line(4);
  DirqNetwork net(topo, 0, fixed_cfg());
  net.node(3).sample(kT, 30.0, 0);
  net.node(2).sample(kT, 20.0, 0);
  net.node(1).sample(kT, 10.0, 0);
  // Leaf-first: 3 + 2 + 1 = 6 update transmissions to converge.
  EXPECT_EQ(net.updates_transmitted(), 6);
  // Root's table aggregates the whole network.
  const RangeTable* t = net.node(0).table(kT);
  ASSERT_NE(t, nullptr);
  const RangeAggregate agg = t->aggregate();
  ASSERT_TRUE(agg.has_value());
  EXPECT_DOUBLE_EQ(agg->min, 10.0 - 1.1);
  EXPECT_DOUBLE_EQ(agg->max, 30.0 + 1.1);
}

TEST(DirqNetwork, StableReadingsSendNothing) {
  net::Topology topo = line(4);
  DirqNetwork net(topo, 0, fixed_cfg());
  for (NodeId u = 1; u <= 3; ++u) net.node(u).sample(kT, 20.0, 0);
  const std::int64_t after_bootstrap = net.updates_transmitted();
  for (std::int64_t e = 1; e < 50; ++e) {
    for (NodeId u = 1; u <= 3; ++u) {
      net.node(u).sample(kT, 20.0 + 0.1 * static_cast<double>(u % 2), e);
    }
  }
  EXPECT_EQ(net.updates_transmitted(), after_bootstrap);
}

TEST(DirqNetwork, QueryDirectedOnlyToMatchingBranch) {
  net::Topology topo = line(4);
  DirqNetwork net(topo, 0, fixed_cfg());
  net.node(3).sample(kT, 30.0, 0);
  net.node(2).sample(kT, 20.0, 0);
  net.node(1).sample(kT, 10.0, 0);
  // Window around node 3's reading only: all of 1, 2 forward; 3 believes.
  const QueryOutcome out = net.inject(make_query(1, kT, 29.5, 30.5), 1);
  EXPECT_EQ(out.received, (std::vector<NodeId>{1, 2, 3}));
  EXPECT_EQ(out.believed_sources, (std::vector<NodeId>{3}));
}

TEST(DirqNetwork, QueryPrunedAtFirstNonOverlap) {
  net::Topology topo = line(4);
  DirqNetwork net(topo, 0, fixed_cfg());
  net.node(3).sample(kT, 30.0, 0);
  net.node(2).sample(kT, 20.0, 0);
  net.node(1).sample(kT, 10.0, 0);
  // Window around node 1 only: stops there (subtree of 2 is [18.9, 31.1]).
  const QueryOutcome out = net.inject(make_query(2, kT, 9.9, 10.1), 1);
  EXPECT_EQ(out.received, (std::vector<NodeId>{1}));
  EXPECT_EQ(out.believed_sources, (std::vector<NodeId>{1}));
}

TEST(DirqNetwork, NonMatchingQueryReachesNobody) {
  net::Topology topo = line(4);
  DirqNetwork net(topo, 0, fixed_cfg());
  for (NodeId u = 1; u <= 3; ++u) net.node(u).sample(kT, 20.0, 0);
  const QueryOutcome out = net.inject(make_query(3, kT, 100.0, 200.0), 1);
  EXPECT_TRUE(out.received.empty());
  EXPECT_EQ(out.cost, 0);
}

TEST(DirqNetwork, QueryCostIsOneTxPerForwarderPlusRx) {
  net::Topology topo = line(4);
  DirqNetwork net(topo, 0, fixed_cfg());
  net.node(3).sample(kT, 30.0, 0);
  net.node(2).sample(kT, 20.0, 0);
  net.node(1).sample(kT, 10.0, 0);
  const QueryOutcome out = net.inject(make_query(4, kT, 0.0, 100.0), 1);
  // Forwarders: 0, 1, 2 (one multicast each) + receptions 1, 2, 3.
  EXPECT_EQ(out.cost, 6);
}

TEST(DirqNetwork, ThetaWideningCausesOvershoot) {
  // Query just outside node 3's true reading but inside its theta-widened
  // tuple: DirQ delivers anyway (the paper's overshoot mechanism).
  net::Topology topo = line(4);
  DirqNetwork net(topo, 0, fixed_cfg(9.0));  // theta = 1.98
  net.node(3).sample(kT, 30.0, 0);
  net.node(2).sample(kT, 20.0, 0);
  net.node(1).sample(kT, 10.0, 0);
  const QueryOutcome out = net.inject(make_query(5, kT, 31.0, 31.5), 1);
  EXPECT_EQ(out.received, (std::vector<NodeId>{1, 2, 3}));
  EXPECT_EQ(out.believed_sources, (std::vector<NodeId>{3}));  // false positive
}

TEST(DirqNetwork, HeterogeneousTypesRouteIndependently) {
  // Star-ish: 0 - 1 (temp), 0 - 2 (humidity).
  std::vector<net::Node> nodes(3);
  nodes[1].sensors = {kT};
  nodes[2].sensors = {kH};
  net::Topology topo(nodes, {{0, 1}, {0, 2}});
  DirqNetwork net(topo, 0, fixed_cfg());
  net.node(1).sample(kT, 20.0, 0);
  net.node(2).sample(kH, 60.0, 0);
  const QueryOutcome t_out = net.inject(make_query(1, kT, 0.0, 100.0), 1);
  EXPECT_EQ(t_out.received, (std::vector<NodeId>{1}));
  const QueryOutcome h_out = net.inject(make_query(2, kH, 0.0, 100.0), 1);
  EXPECT_EQ(h_out.received, (std::vector<NodeId>{2}));
}

TEST(DirqNetwork, Fig4ForwarderWithoutOwnSensorKeepsTables) {
  // Chain 0 - 1(humidity only) - 2(temp): node 1 must maintain a
  // temperature table for its child despite having no temp sensor.
  net::Topology topo = [&] {
    std::vector<net::Node> nodes(3);
    for (std::size_t i = 0; i < 3; ++i) nodes[i].x = static_cast<double>(i);
    nodes[1].sensors = {kH};
    nodes[2].sensors = {kT};
    return net::Topology(std::move(nodes), 1.1);
  }();
  DirqNetwork net(topo, 0, fixed_cfg());
  net.node(2).sample(kT, 25.0, 0);
  net.node(1).sample(kH, 55.0, 0);
  const RangeTable* t = net.node(1).table(kT);
  ASSERT_NE(t, nullptr);
  EXPECT_FALSE(t->own().has_value());
  EXPECT_TRUE(t->child(2).has_value());
  const QueryOutcome out = net.inject(make_query(1, kT, 24.0, 26.0), 1);
  EXPECT_EQ(out.received, (std::vector<NodeId>{1, 2}));
  EXPECT_EQ(out.believed_sources, (std::vector<NodeId>{2}));
}

TEST(DirqNetwork, SampleForMissingSensorIsIgnored) {
  net::Topology topo = line(3);
  DirqNetwork net(topo, 0, fixed_cfg());
  net.node(1).sample(kH, 50.0, 0);  // node 1 has no humidity sensor
  EXPECT_EQ(net.updates_transmitted(), 0);
  EXPECT_EQ(net.node(1).table(kH), nullptr);
}

TEST(DirqNetwork, EhrFloodReachesEveryNodeOnce) {
  net::Topology topo = line(5);
  NetworkConfig cfg;
  cfg.mode = NetworkConfig::ThetaMode::Atc;
  DirqNetwork net(topo, 0, cfg);
  net.broadcast_ehr(180.0, 0);
  // Control traffic = the location bootstrap (one unicast per non-root
  // node: 4 tx + 4 rx) + the EHr flood (every alive node broadcasts once:
  // 5 tx, 2 * links = 8 rx).
  EXPECT_EQ(net.costs().control_tx, 4 + 5);
  EXPECT_EQ(net.costs().control_rx, 4 + 8);
  // Every node's controller received a budget.
  for (NodeId u = 0; u < 5; ++u) {
    auto* atc = dynamic_cast<AtcController*>(&net.node(u).controller());
    ASSERT_NE(atc, nullptr);
    EXPECT_GT(atc->budget_per_hour(), 0.0) << "node " << u;
  }
}

TEST(DirqNetwork, SecondEhrRoundFloodsAgain) {
  net::Topology topo = line(3);
  DirqNetwork net(topo, 0, fixed_cfg());
  net.broadcast_ehr(100.0, 0);
  net.broadcast_ehr(120.0, kEpochsPerHour);
  // 2 location announcements at bootstrap + two 3-node EHr floods.
  EXPECT_EQ(net.costs().control_tx, 2 + 6);
}

TEST(DirqNetwork, LeafDeathRetractsItsRange) {
  net::Topology topo = line(4);
  DirqNetwork net(topo, 0, fixed_cfg());
  net.node(3).sample(kT, 30.0, 0);
  net.node(2).sample(kT, 20.0, 0);
  net.node(1).sample(kT, 10.0, 0);
  topo.kill_node(3);
  net.handle_node_death(3, 1);
  // Node 2 dropped its only child entry; aggregates shrank up the chain.
  const RangeTable* t2 = net.node(2).table(kT);
  ASSERT_NE(t2, nullptr);
  EXPECT_FALSE(t2->child(3).has_value());
  const RangeAggregate root_agg = net.node(0).table(kT)->aggregate();
  ASSERT_TRUE(root_agg.has_value());
  EXPECT_DOUBLE_EQ(root_agg->max, 20.0 + 1.1);  // node 3's 31.1 is gone
  // A query for the dead node's range reaches nobody relevant.
  const QueryOutcome out = net.inject(make_query(9, kT, 29.5, 30.5), 2);
  EXPECT_TRUE(out.believed_sources.empty());
}

TEST(DirqNetwork, DiamondReparentingKeepsSubtreeReachable) {
  // 0-1, 0-2, 1-3, 2-3. BFS parents 3 under 1; killing 1 moves it to 2.
  std::vector<net::Node> nodes(4);
  nodes[1].sensors = {kT};
  nodes[2].sensors = {kT};
  nodes[3].sensors = {kT};
  net::Topology topo(nodes, {{0, 1}, {0, 2}, {1, 3}, {2, 3}});
  DirqNetwork net(topo, 0, fixed_cfg());
  net.node(3).sample(kT, 30.0, 0);
  net.node(2).sample(kT, 20.0, 0);
  net.node(1).sample(kT, 10.0, 0);
  ASSERT_EQ(net.tree().parent(3), 1u);
  topo.kill_node(1);
  net.handle_node_death(1, 1);
  EXPECT_EQ(net.tree().parent(3), 2u);
  // Node 2 now carries node 3's range; the query routes through it.
  const QueryOutcome out = net.inject(make_query(1, kT, 29.5, 30.5), 2);
  EXPECT_EQ(out.received, (std::vector<NodeId>{2, 3}));
  EXPECT_EQ(out.believed_sources, (std::vector<NodeId>{3}));
}

TEST(DirqNetwork, NodeAdditionJoinsTreeAndAnnounces) {
  net::Topology topo = line(3);
  DirqNetwork net(topo, 0, fixed_cfg());
  net.node(2).sample(kT, 20.0, 0);
  net.node(1).sample(kT, 10.0, 0);
  net::Node newcomer;
  newcomer.x = 3.0;
  newcomer.sensors = {kT};
  const NodeId id = topo.add_node(newcomer);
  net.handle_node_addition(id, 1);
  EXPECT_TRUE(net.tree().in_tree(id));
  EXPECT_EQ(net.tree().parent(id), 2u);
  net.node(id).sample(kT, 40.0, 1);
  const QueryOutcome out = net.inject(make_query(1, kT, 39.0, 41.0), 2);
  EXPECT_EQ(out.believed_sources, (std::vector<NodeId>{id}));
}

TEST(DirqNetwork, PostDeploymentSensorAddition) {
  net::Topology topo = line(3);
  DirqNetwork net(topo, 0, fixed_cfg());
  net.node(1).sample(kT, 10.0, 0);
  net.handle_sensor_added(1, kH, 1);
  net.node(1).sample(kH, 55.0, 1);
  // Humidity is now queryable even though deployment had none.
  const QueryOutcome out = net.inject(make_query(1, kH, 50.0, 60.0), 2);
  EXPECT_EQ(out.believed_sources, (std::vector<NodeId>{1}));
}

TEST(DirqNetwork, SensorRemovalRetractsType) {
  net::Topology topo = line(3, {kT, kH});
  DirqNetwork net(topo, 0, fixed_cfg());
  net.node(2).sample(kH, 60.0, 0);
  net.node(1).sample(kH, 50.0, 0);
  net.handle_sensor_removed(2, kH, 1);
  // Node 2's own humidity tuple is gone; a humidity query matching only
  // its old value must not believe node 2 a source.
  const QueryOutcome out = net.inject(make_query(1, kH, 58.0, 62.0), 2);
  EXPECT_TRUE(out.believed_sources.empty());
}

TEST(DirqNetwork, UpdateHookSeesEveryTransmission) {
  net::Topology topo = line(4);
  DirqNetwork net(topo, 0, fixed_cfg());
  std::int64_t hook_count = 0;
  net.set_update_hook([&](std::int64_t) { ++hook_count; });
  net.node(3).sample(kT, 30.0, 0);
  net.node(2).sample(kT, 20.0, 0);
  net.node(1).sample(kT, 10.0, 0);
  EXPECT_EQ(hook_count, net.updates_transmitted());
  EXPECT_EQ(hook_count, 6);
}

TEST(DirqNetwork, NestedAuditThrows) {
  net::Topology topo = line(3);
  DirqNetwork net(topo, 0, fixed_cfg());
  net.inject_async(make_query(1, kT, 0.0, 1.0), 1);
  EXPECT_THROW(net.inject_async(make_query(2, kT, 0.0, 1.0), 1),
               std::logic_error);
  net.collect_outcome();
  EXPECT_THROW(net.collect_outcome(), std::logic_error);
}

TEST(DirqNetwork, ProcessEpochSamplesEverySensor) {
  sim::Rng rng(42);
  net::Topology topo = net::random_connected(net::RandomPlacementConfig{}, rng);
  data::Environment env(topo, 4, rng.substream("env"));
  DirqNetwork net(topo, 0, fixed_cfg());
  env.advance_to(0);
  net.process_epoch(env, 0);
  // After the bootstrap epoch the root has a table for every type present.
  for (SensorType t : topo.sensor_types_present()) {
    EXPECT_NE(net.node(0).table(t), nullptr) << "type " << t;
  }
  EXPECT_GT(net.updates_transmitted(), 0);
}

TEST(DirqNetwork, RootAggregateCoversAllCurrentReadings) {
  sim::Rng rng(42);
  net::Topology topo = net::random_connected(net::RandomPlacementConfig{}, rng);
  data::Environment env(topo, 4, rng.substream("env"));
  DirqNetwork net(topo, 0, fixed_cfg());
  for (std::int64_t e = 0; e < 20; ++e) {
    env.advance_to(e);
    net.process_epoch(env, e);
  }
  // Invariant: every node's current reading lies inside the root's
  // aggregate for that type, up to the accumulated hysteresis slack. Each
  // hop suppresses aggregate moves of at most theta (Fig. 3), so a reading
  // can sit at most depth * theta outside the root's stored range.
  for (SensorType t : topo.sensor_types_present()) {
    const RangeAggregate agg = net.node(0).table(t)->aggregate();
    ASSERT_TRUE(agg.has_value());
    const double theta = 0.05 * nominal_span(t);
    for (NodeId u : topo.nodes_with_sensor(t)) {
      const double r = env.reading(u, t);
      const double slack = theta * static_cast<double>(net.tree().depth(u));
      EXPECT_GE(r, agg->min - slack) << "node " << u << " type " << t;
      EXPECT_LE(r, agg->max + slack) << "node " << u << " type " << t;
    }
  }
}


TEST(DirqNetwork, PerNodeEnergyAccounting) {
  net::Topology topo = line(4);
  DirqNetwork net(topo, 0, fixed_cfg());
  // Location bootstrap: nodes 1-3 each announce once; 0-2 receive once.
  EXPECT_EQ(net.node_tx(3), 1);
  EXPECT_EQ(net.node_rx(2), 1);
  net.node(3).sample(kT, 30.0, 0);
  net.node(2).sample(kT, 20.0, 0);
  net.node(1).sample(kT, 10.0, 0);
  // Bootstrap cascade: node 3 sent 1 location + 1 update; node 2 relayed
  // plus its own: 1 location + 2 updates; node 1: 1 + 3.
  EXPECT_EQ(net.node_tx(3), 2);
  EXPECT_EQ(net.node_tx(2), 3);
  EXPECT_EQ(net.node_tx(1), 4);
  EXPECT_EQ(net.node_tx(0), 0);  // root never transmits upward
  // Receptions: node 0 got 1 location + 3 updates from node 1.
  EXPECT_EQ(net.node_rx(0), 4);
  // A query to the deep end charges each hop.
  (void)net.inject(make_query(1, kT, 29.5, 30.5), 1);
  EXPECT_EQ(net.node_tx(0), 1);  // root forwarded
  EXPECT_EQ(net.node_rx(3), 1);  // the leaf's only reception is the query
  const CostUnits total_tx =
      net.node_tx(0) + net.node_tx(1) + net.node_tx(2) + net.node_tx(3);
  const CostUnits total_rx =
      net.node_rx(0) + net.node_rx(1) + net.node_rx(2) + net.node_rx(3);
  const CostLedger& ledger = net.costs();
  EXPECT_EQ(total_tx, ledger.query_tx + ledger.update_tx + ledger.control_tx);
  EXPECT_EQ(total_rx, ledger.query_rx + ledger.update_rx + ledger.control_rx);
}

TEST(DirqNetworkBatch, DuplicateSensorListsAreDedupedByTopology) {
  // The batched sampling path relies on a (node, type) pair occurring at
  // most once per epoch walk: pass 1 gathers on the gate's pre-epoch
  // state, and a duplicate's first consume would move next_due and desync
  // the per-type value cursors. Topology guarantees the invariant by
  // sorting + deduplicating every node's sensor list at every entry
  // point — this test pins that guarantee to the batching that needs it.
  std::vector<net::Node> nodes(4);
  for (std::size_t i = 0; i < 4; ++i) {
    nodes[i].x = static_cast<double>(i);
    nodes[i].sensors = {kT};
  }
  nodes[3].sensors = {kT, kT, kH, kT};  // duplicates via the constructor
  net::Topology topo(std::move(nodes), 1.1);
  EXPECT_EQ(topo.node(3).sensors, (std::vector<SensorType>{kT, kH}));

  net::Node late;
  late.x = 3.0;
  late.y = 1.0;
  late.sensors = {kH, kH, kH};  // duplicates via add_node
  const NodeId added = topo.add_node(late);
  EXPECT_EQ(topo.node(added).sensors, (std::vector<SensorType>{kH}));
  topo.add_sensor(added, kH);  // re-adding an existing type is a no-op
  EXPECT_EQ(topo.node(added).sensors, (std::vector<SensorType>{kH}));

  // And the batched epoch loop on such a topology keeps every node's own
  // tuple centred on its own reading (zero margin keeps the gate's
  // interval at 1, so any cursor desync would recur every epoch and
  // never self-correct).
  NetworkConfig cfg = fixed_cfg();
  cfg.sampling.enabled = true;
  cfg.sampling.margin_frac = 0.0;
  DirqNetwork net(topo, 0, cfg);
  data::Environment env(topo, 2, sim::Rng(7));
  for (std::int64_t e = 0; e < 12; ++e) {
    env.advance_to(e);
    net.process_epoch(env, e);
  }
  for (NodeId u = 1; u < 4; ++u) {
    const RangeTable* t = net.node(u).table(kT);
    ASSERT_NE(t, nullptr) << "node " << u;
    ASSERT_TRUE(t->own().has_value()) << "node " << u;
    const double r = env.reading(u, kT);
    EXPECT_GE(r, t->own()->min) << "node " << u;
    EXPECT_LE(r, t->own()->max) << "node " << u;
  }
}

}  // namespace
}  // namespace dirq::core

// Trace record/replay: fidelity, TSV round-trip, replay semantics, and a
// full experiment driven from a replayed trace.
#include "data/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "core/network.hpp"
#include "data/field_model.hpp"
#include "net/placement.hpp"
#include "sim/rng.hpp"

namespace dirq::data {
namespace {

struct World {
  net::Topology topo;
  Environment env;
  explicit World(std::uint64_t seed)
      : topo(make(seed)), env(topo, 4, sim::Rng(seed).substream("env")) {}
  static net::Topology make(std::uint64_t seed) {
    sim::Rng rng(seed);
    net::RandomPlacementConfig cfg;
    cfg.node_count = 20;
    return net::random_connected(cfg, rng);
  }
};

TEST(Trace, RecordsExactReadings) {
  World w(5);
  Trace trace = record(w.env, w.topo.size(), 50);
  EXPECT_EQ(trace.epoch_count(), 50u);
  EXPECT_EQ(trace.node_count(), w.topo.size());
  EXPECT_EQ(trace.type_count(), 4u);
  // Spot check: trace value at (49, node, type) equals the live value.
  for (NodeId u = 0; u < w.topo.size(); ++u) {
    for (SensorType t = 0; t < 4; ++t) {
      EXPECT_DOUBLE_EQ(trace.at(49, u, t), w.env.reading(u, t));
    }
  }
}

TEST(Trace, ReplayMatchesRecording) {
  World w(6);
  Trace trace = record(w.env, w.topo.size(), 30);
  for (std::int64_t e = 0; e < 30; ++e) {
    trace.advance_to(e);
    for (NodeId u = 0; u < w.topo.size(); ++u) {
      EXPECT_DOUBLE_EQ(trace.reading(u, 0), trace.at(e, u, 0));
    }
  }
}

TEST(Trace, AdvancePastEndClampsToLastEpoch) {
  World w(6);
  Trace trace = record(w.env, w.topo.size(), 10);
  trace.advance_to(999);
  EXPECT_EQ(trace.epoch(), 9);
  EXPECT_DOUBLE_EQ(trace.reading(1, 0), trace.at(9, 1, 0));
}

TEST(Trace, MonotonicAdvanceEnforced) {
  World w(6);
  Trace trace = record(w.env, w.topo.size(), 10);
  trace.advance_to(5);
  EXPECT_THROW(trace.advance_to(4), std::invalid_argument);
}

TEST(Trace, OutOfRangeAccessesThrow) {
  World w(6);
  Trace trace = record(w.env, w.topo.size(), 5);
  EXPECT_THROW((void)trace.at(0, 9999, 0), std::out_of_range);
  EXPECT_THROW((void)trace.at(0, 0, 99), std::out_of_range);
  EXPECT_THROW((void)trace.at(99, 0, 0), std::out_of_range);
}

TEST(Trace, TsvRoundTripIsExact) {
  World w(7);
  Trace trace = record(w.env, w.topo.size(), 20);
  std::ostringstream out;
  trace.save(out);
  std::istringstream in(out.str());
  Trace loaded = Trace::load(in);
  ASSERT_EQ(loaded.epoch_count(), trace.epoch_count());
  ASSERT_EQ(loaded.node_count(), trace.node_count());
  ASSERT_EQ(loaded.type_count(), trace.type_count());
  for (std::size_t e = 0; e < 20; ++e) {
    for (NodeId u = 0; u < trace.node_count(); ++u) {
      for (SensorType t = 0; t < 4; ++t) {
        EXPECT_DOUBLE_EQ(loaded.at(static_cast<std::int64_t>(e), u, t),
                         trace.at(static_cast<std::int64_t>(e), u, t));
      }
    }
  }
}

TEST(Trace, LoadRejectsGarbage) {
  std::istringstream empty("");
  EXPECT_THROW(Trace::load(empty), std::runtime_error);
  std::istringstream no_values("epoch\tnode\n");
  EXPECT_THROW(Trace::load(no_values), std::runtime_error);
  std::istringstream ragged("epoch\tnode\tv0\n0\t0\t1.5\n0\t1\t2.5\n1\t0\t3.5\n");
  EXPECT_THROW(Trace::load(ragged), std::runtime_error);
}

TEST(Trace, DrivesTheProtocolIdenticallyToLiveEnvironment) {
  // The whole point: replaying a trace must reproduce the exact protocol
  // behaviour of the live environment it was recorded from.
  World live(8);
  Trace trace = [&] {
    World rec(8);
    return record(rec.env, rec.topo.size(), 100);
  }();

  core::NetworkConfig cfg;
  cfg.fixed_pct = 5.0;
  net::Topology topo_a = World::make(8);
  net::Topology topo_b = World::make(8);
  core::DirqNetwork net_a(topo_a, 0, cfg);
  core::DirqNetwork net_b(topo_b, 0, cfg);
  for (std::int64_t e = 0; e < 100; ++e) {
    live.env.advance_to(e);
    net_a.process_epoch(live.env, e);
    trace.advance_to(e);
    net_b.process_epoch(trace, e);
  }
  EXPECT_EQ(net_a.updates_transmitted(), net_b.updates_transmitted());
  EXPECT_EQ(net_a.costs().update_cost(), net_b.costs().update_cost());
}

}  // namespace
}  // namespace dirq::data

// FastField / FastEnvironment: the counter-based environment backend must
// reproduce the §7 dataset properties (spatial coherence, temporal
// correlation approximating the pinned AR(1) targets) while delivering the
// guarantees the pinned backend cannot: O(1) epoch jumps and bit-identical
// out-of-order reads.
#include "data/fast_field.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "data/field_model.hpp"
#include "net/placement.hpp"
#include "sim/rng.hpp"
#include "sim/stats.hpp"

namespace dirq::data {
namespace {

net::Topology paper_topology(std::uint64_t seed = 42) {
  sim::Rng rng(seed);
  return net::random_connected(net::RandomPlacementConfig{}, rng);
}

TEST(FastField, DeterministicForSameSeed) {
  net::Topology topo = paper_topology();
  FastField a(kSensorTemperature, default_params(kSensorTemperature), topo,
              sim::Rng(9));
  FastField b(kSensorTemperature, default_params(kSensorTemperature), topo,
              sim::Rng(9));
  a.advance_to(100);
  b.advance_to(100);
  for (NodeId u = 0; u < topo.size(); ++u) {
    EXPECT_EQ(a.reading(u), b.reading(u));
  }
}

TEST(FastField, DifferentSeedsDiffer) {
  net::Topology topo = paper_topology();
  FastField a(kSensorTemperature, default_params(kSensorTemperature), topo,
              sim::Rng(9));
  FastField b(kSensorTemperature, default_params(kSensorTemperature), topo,
              sim::Rng(10));
  a.advance_to(100);
  b.advance_to(100);
  bool differ = false;
  for (NodeId u = 0; u < topo.size(); ++u) {
    if (a.reading(u) != b.reading(u)) differ = true;
  }
  EXPECT_TRUE(differ);
}

TEST(FastField, EpochsAreMonotonic) {
  net::Topology topo = paper_topology();
  FastField f(kSensorTemperature, default_params(kSensorTemperature), topo,
              sim::Rng(9));
  f.advance_to(50);
  EXPECT_THROW(f.advance_to(49), std::invalid_argument);
  f.advance_to(50);  // same epoch is a no-op
  EXPECT_EQ(f.epoch(), 50);
}

TEST(FastField, JumpEqualsStep) {
  // O(1) random access: jumping straight to an epoch must produce exactly
  // the values a step-by-step advance produces (the property the pinned
  // backend's sequential AR(1) state structurally cannot offer).
  net::Topology topo = paper_topology();
  FastField stepped(kSensorTemperature, default_params(kSensorTemperature),
                    topo, sim::Rng(5));
  FastField jumped(kSensorTemperature, default_params(kSensorTemperature),
                   topo, sim::Rng(5));
  for (std::int64_t e = 1; e <= 777; ++e) {
    stepped.advance_to(e);
    // Touch readings along the way so caches are warm and mid-stream.
    if (e % 13 == 0) (void)stepped.reading(e % topo.size());
  }
  jumped.advance_to(777);
  for (NodeId u = 0; u < topo.size(); ++u) {
    EXPECT_EQ(stepped.reading(u), jumped.reading(u)) << "node " << u;
  }
  EXPECT_EQ(stepped.field_at(30.0, 40.0), jumped.field_at(30.0, 40.0));
}

TEST(FastField, OutOfOrderNodeQueriesAreDeterministic) {
  net::Topology topo = paper_topology();
  FastField a(kSensorTemperature, default_params(kSensorTemperature), topo,
              sim::Rng(3));
  FastField b(kSensorTemperature, default_params(kSensorTemperature), topo,
              sim::Rng(3));
  a.advance_to(500);
  b.advance_to(500);
  // a reads ascending; b reads a shuffled order with repeats.
  std::vector<double> forward(topo.size());
  for (NodeId u = 0; u < topo.size(); ++u) forward[u] = a.reading(u);
  std::vector<NodeId> order(topo.size());
  std::iota(order.begin(), order.end(), NodeId{0});
  sim::Rng shuffle_rng(77);
  shuffle_rng.shuffle(std::span<NodeId>(order));
  for (NodeId u : order) {
    EXPECT_EQ(b.reading(u), forward[u]) << "node " << u;
    EXPECT_EQ(b.reading(u), forward[u]) << "repeat read, node " << u;
  }
}

TEST(FastField, BatchMatchesPerNodeReads) {
  net::Topology topo = paper_topology();
  FastField f(kSensorTemperature, default_params(kSensorTemperature), topo,
              sim::Rng(3));
  f.advance_to(250);
  std::vector<NodeId> nodes(topo.size());
  std::iota(nodes.begin(), nodes.end(), NodeId{0});
  std::reverse(nodes.begin(), nodes.end());  // order must not matter
  std::vector<double> batch(nodes.size());
  f.readings(nodes, batch);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    EXPECT_EQ(batch[i], f.reading(nodes[i]));
  }
}

TEST(FastField, SpatialCoherenceViaFieldAt) {
  // §7: nearby positions must read closer than distant ones — the
  // gradient + front structure is shared arithmetic with the pinned
  // backend and the regional noise is cell-coherent by construction.
  net::Topology topo = paper_topology();
  FastField f(kSensorTemperature, default_params(kSensorTemperature), topo,
              sim::Rng(5));
  sim::Rng pos_rng(17);
  sim::RunningStat near_diff, far_diff;
  for (std::int64_t e = 100; e <= 2000; e += 100) {
    f.advance_to(e);
    for (int i = 0; i < 200; ++i) {
      const double x = pos_rng.uniform(0.0, 100.0);
      const double y = pos_rng.uniform(0.0, 100.0);
      // A nearby probe (within 5 units) and a distant one (over 60 away).
      const double nx = std::clamp(x + pos_rng.uniform(-5.0, 5.0), 0.0, 100.0);
      const double ny = std::clamp(y + pos_rng.uniform(-5.0, 5.0), 0.0, 100.0);
      const double fx = std::fmod(x + 60.0 + pos_rng.uniform(0.0, 30.0), 100.0);
      const double fy = std::fmod(y + 60.0 + pos_rng.uniform(0.0, 30.0), 100.0);
      const double v = f.field_at(x, y);
      near_diff.push(std::abs(v - f.field_at(nx, ny)));
      far_diff.push(std::abs(v - f.field_at(fx, fy)));
    }
  }
  EXPECT_LT(near_diff.mean(), far_diff.mean() * 0.8);
}

/// Mean lag-k autocorrelation of per-node noise series (reading minus
/// field_at at the node's position isolates exactly the node process).
double node_noise_autocorr(FastField& f, const net::Topology& topo,
                           std::int64_t lag, std::int64_t epochs) {
  const std::size_t n = std::min<std::size_t>(topo.size(), 20);
  std::vector<std::vector<double>> series(n);
  for (std::int64_t e = 1; e <= epochs; ++e) {
    f.advance_to(e);
    for (std::size_t u = 0; u < n; ++u) {
      const net::Node& node = topo.node(static_cast<NodeId>(u));
      series[u].push_back(f.reading(static_cast<NodeId>(u)) -
                          f.field_at(node.x, node.y));
    }
  }
  double corr_sum = 0.0;
  std::size_t counted = 0;
  for (const std::vector<double>& s : series) {
    const auto len = static_cast<std::int64_t>(s.size());
    double mean = 0.0;
    for (double v : s) mean += v;
    mean /= static_cast<double>(len);
    double var = 0.0, cov = 0.0;
    for (std::int64_t i = 0; i < len; ++i) {
      var += (s[i] - mean) * (s[i] - mean);
      if (i + lag < len) cov += (s[i] - mean) * (s[i + lag] - mean);
    }
    if (var > 0.0) {
      corr_sum += (cov / static_cast<double>(len - lag)) /
                  (var / static_cast<double>(len));
      ++counted;
    }
  }
  return counted > 0 ? corr_sum / static_cast<double>(counted) : 0.0;
}

TEST(FastField, NodeNoiseLagAutocorrelationTracksAr1Target) {
  // The counter noise must approximate the pinned AR(1)'s rho^k
  // autocorrelation. Tolerance covers both the estimator's sampling noise
  // over 4000 epochs and the documented model error (piecewise-linear
  // interpolation between block anchors vs exact exponential decay).
  net::Topology topo = paper_topology();
  const FieldParams p = default_params(kSensorTemperature);
  FastField f(kSensorTemperature, p, topo, sim::Rng(5));
  constexpr std::int64_t kEpochs = 4000;
  double prev = 1.1;
  for (const std::int64_t lag : {1, 2, 4, 8, 16}) {
    const double target = std::pow(p.node_rho, static_cast<double>(lag));
    FastField fresh(kSensorTemperature, p, topo, sim::Rng(5));
    const double measured = node_noise_autocorr(fresh, topo, lag, kEpochs);
    EXPECT_NEAR(measured, target, 0.15) << "lag " << lag;
    EXPECT_LT(measured, prev + 0.02) << "decay must be monotone, lag " << lag;
    prev = measured;
  }
}

TEST(FastField, RegionalNoiseLagAutocorrelationTracksAr1Target) {
  // field_at - deterministic_at isolates the regional (cell) process.
  net::Topology topo = paper_topology();
  const FieldParams p = default_params(kSensorTemperature);
  FastField f(kSensorTemperature, p, topo, sim::Rng(5));
  constexpr std::int64_t kEpochs = 6000;
  std::vector<double> series;
  series.reserve(kEpochs);
  for (std::int64_t e = 1; e <= kEpochs; ++e) {
    f.advance_to(e);
    series.push_back(f.field_at(50.0, 50.0) - f.deterministic_at(50.0, 50.0));
  }
  double mean = 0.0;
  for (double v : series) mean += v;
  mean /= static_cast<double>(series.size());
  double var = 0.0;
  for (double v : series) var += (v - mean) * (v - mean);
  var /= static_cast<double>(series.size());
  ASSERT_GT(var, 0.0);
  for (const std::int64_t lag : {1, 8, 16, 32}) {
    double cov = 0.0;
    for (std::size_t i = 0; i + lag < series.size(); ++i) {
      cov += (series[i] - mean) * (series[i + lag] - mean);
    }
    cov /= static_cast<double>(series.size() - lag);
    const double target = std::pow(p.regional_rho, static_cast<double>(lag));
    EXPECT_NEAR(cov / var, target, 0.15) << "lag " << lag;
  }
}

TEST(FastField, NodeNoiseVarianceMatchesStationaryAr1) {
  net::Topology topo = paper_topology();
  const FieldParams p = default_params(kSensorTemperature);
  FastField f(kSensorTemperature, p, topo, sim::Rng(5));
  sim::RunningStat s;
  for (std::int64_t e = 1; e <= 4000; ++e) {
    f.advance_to(e);
    for (NodeId u = 0; u < std::min<NodeId>(topo.size(), 10); ++u) {
      const net::Node& node = topo.node(u);
      s.push(f.reading(u) - f.field_at(node.x, node.y));
    }
  }
  const double target_sd = p.node_sigma / std::sqrt(1.0 - p.node_rho * p.node_rho);
  EXPECT_NEAR(s.mean(), 0.0, target_sd * 0.2);
  EXPECT_GT(s.stddev(), target_sd * 0.7);
  EXPECT_LT(s.stddev(), target_sd * 1.3);
}

TEST(FastField, ReadingsStayInPlausibleRange) {
  net::Topology topo = paper_topology();
  FastField f(kSensorTemperature, default_params(kSensorTemperature), topo,
              sim::Rng(7));
  for (std::int64_t e = 0; e <= 5000; e += 50) {
    f.advance_to(e);
    for (NodeId u = 0; u < topo.size(); ++u) {
      EXPECT_GT(f.reading(u), -20.0);
      EXPECT_LT(f.reading(u), 60.0);
    }
  }
}

TEST(FastField, SharesFrontGeometryWithPinnedField) {
  // Both backends consume the same "bumps" substream, so at epoch 0 (where
  // the pinned fronts have not stepped yet) the deterministic structure is
  // identical: with zeroed noise the difference of the two fields at any
  // position is exactly the pinned regional noise (zero at epoch 0).
  net::Topology topo = paper_topology();
  const FieldParams p = default_params(kSensorTemperature);
  Field pinned(kSensorTemperature, p, topo, sim::Rng(5));
  FastField fast(kSensorTemperature, p, topo, sim::Rng(5));
  EXPECT_NEAR(pinned.field_at(30.0, 40.0), fast.deterministic_at(30.0, 40.0),
              1e-12);
  EXPECT_NEAR(pinned.field_at(80.0, 10.0), fast.deterministic_at(80.0, 10.0),
              1e-12);
}

TEST(FastEnvironment, LockstepAdvance) {
  net::Topology topo = paper_topology();
  FastEnvironment env(topo, 4, sim::Rng(11));
  env.advance_to(123);
  EXPECT_EQ(env.epoch(), 123);
  for (SensorType t = 0; t < 4; ++t) {
    EXPECT_EQ(env.field(t).epoch(), 123);
  }
}

TEST(FastEnvironment, TypesEvolveIndependently) {
  net::Topology topo = paper_topology();
  FastEnvironment env(topo, 4, sim::Rng(11));
  env.advance_to(200);
  const double a = env.reading(1, kSensorTemperature);
  const double b = env.reading(1, kSensorHumidity);
  EXPECT_NE(a, b);
}

TEST(FastEnvironment, RejectsUnknownNodeLikePinned) {
  // Both backends are interchangeable behind ReadingSource: an id the
  // topology has never seen throws on either, never UB.
  net::Topology topo = paper_topology();
  FastEnvironment fast(topo, 2, sim::Rng(11));
  Environment pinned(topo, 2, sim::Rng(11));
  const NodeId bogus = static_cast<NodeId>(topo.size() + 100);
  EXPECT_THROW((void)fast.reading(bogus, 0), std::out_of_range);
  EXPECT_THROW((void)pinned.reading(bogus, 0), std::out_of_range);
}

TEST(FastEnvironment, RejectsUnknownType) {
  net::Topology topo = paper_topology();
  FastEnvironment env(topo, 2, sim::Rng(11));
  EXPECT_THROW((void)env.reading(0, 5), std::out_of_range);
}

TEST(FastEnvironment, AdoptsLateDeployedNodes) {
  net::Topology topo = paper_topology();
  FastEnvironment env(topo, 2, sim::Rng(11));
  env.advance_to(100);
  net::Node fresh;
  fresh.x = 12.0;
  fresh.y = 34.0;
  fresh.sensors = {kSensorTemperature};
  const NodeId id = topo.add_node(fresh);
  const double v = env.reading(id, kSensorTemperature);
  EXPECT_TRUE(std::isfinite(v));
  EXPECT_EQ(env.reading(id, kSensorTemperature), v);  // stable re-read
}

TEST(MakeEnvironment, PinnedFactoryIsBitIdenticalToDirectConstruction) {
  // The seam must not perturb the pinned streams: the factory's Pinned
  // product and a hand-built Environment from the same substream agree
  // bit-for-bit (this is what keeps every golden untouched).
  net::Topology topo = paper_topology();
  sim::Rng rng_a(42);
  sim::Rng rng_b(42);
  const std::unique_ptr<ReadingSource> via_factory = make_environment(
      EnvironmentBackend::Pinned, topo, 4, rng_a.substream("environment"));
  Environment direct(topo, 4, rng_b.substream("environment"));
  via_factory->advance_to(321);
  direct.advance_to(321);
  for (NodeId u = 0; u < topo.size(); ++u) {
    for (SensorType t = 0; t < 4; ++t) {
      EXPECT_EQ(via_factory->reading(u, t), direct.reading(u, t));
    }
  }
}

TEST(MakeEnvironment, BackendsProduceDifferentButDeterministicData) {
  net::Topology topo = paper_topology();
  sim::Rng rng(42);
  const std::unique_ptr<ReadingSource> pinned = make_environment(
      EnvironmentBackend::Pinned, topo, 4, rng.substream("environment"));
  const std::unique_ptr<ReadingSource> fast = make_environment(
      EnvironmentBackend::Fast, topo, 4, rng.substream("environment"));
  pinned->advance_to(200);
  fast->advance_to(200);
  bool differ = false;
  for (NodeId u = 0; u < topo.size(); ++u) {
    if (pinned->reading(u, 0) != fast->reading(u, 0)) differ = true;
  }
  EXPECT_TRUE(differ);  // different noise processes, same structure
  EXPECT_STREQ(backend_name(EnvironmentBackend::Pinned), "pinned");
  EXPECT_STREQ(backend_name(EnvironmentBackend::Fast), "fast");
}

}  // namespace
}  // namespace dirq::data

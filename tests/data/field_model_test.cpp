// Synthetic field: determinism, monotonic epochs, spatial and temporal
// correlation (the §7 dataset properties), per-type parameterisation.
#include "data/field_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "net/placement.hpp"
#include "sim/rng.hpp"
#include "sim/stats.hpp"

namespace dirq::data {
namespace {

net::Topology paper_topology(std::uint64_t seed = 42) {
  sim::Rng rng(seed);
  return net::random_connected(net::RandomPlacementConfig{}, rng);
}

TEST(Field, DeterministicForSameSeed) {
  net::Topology topo = paper_topology();
  Field a(kSensorTemperature, default_params(kSensorTemperature), topo,
          sim::Rng(9));
  Field b(kSensorTemperature, default_params(kSensorTemperature), topo,
          sim::Rng(9));
  a.advance_to(100);
  b.advance_to(100);
  for (NodeId u = 0; u < topo.size(); ++u) {
    EXPECT_DOUBLE_EQ(a.reading(u), b.reading(u));
  }
}

TEST(Field, DifferentSeedsDiffer) {
  net::Topology topo = paper_topology();
  Field a(kSensorTemperature, default_params(kSensorTemperature), topo,
          sim::Rng(9));
  Field b(kSensorTemperature, default_params(kSensorTemperature), topo,
          sim::Rng(10));
  a.advance_to(100);
  b.advance_to(100);
  bool differ = false;
  for (NodeId u = 0; u < topo.size(); ++u) {
    if (a.reading(u) != b.reading(u)) differ = true;
  }
  EXPECT_TRUE(differ);
}

TEST(Field, EpochsAreMonotonic) {
  net::Topology topo = paper_topology();
  Field f(kSensorTemperature, default_params(kSensorTemperature), topo,
          sim::Rng(9));
  f.advance_to(50);
  EXPECT_THROW(f.advance_to(49), std::invalid_argument);
  f.advance_to(50);  // same epoch is a no-op
  EXPECT_EQ(f.epoch(), 50);
}

TEST(Field, SpatialCorrelation) {
  // §7: "sensor values of nodes located close to one another are spatially
  // related". Mean |reading difference| of close pairs must be well below
  // that of far pairs.
  net::Topology topo = paper_topology();
  Field f(kSensorTemperature, default_params(kSensorTemperature), topo,
          sim::Rng(5));
  sim::RunningStat near_diff, far_diff;
  for (std::int64_t e = 100; e <= 2000; e += 100) {
    f.advance_to(e);
    for (NodeId a = 1; a < topo.size(); ++a) {
      for (NodeId b = a + 1; b < topo.size(); ++b) {
        const double d = topo.distance(a, b);
        const double diff = std::abs(f.reading(a) - f.reading(b));
        if (d < 15.0) {
          near_diff.push(diff);
        } else if (d > 60.0) {
          far_diff.push(diff);
        }
      }
    }
  }
  ASSERT_GT(near_diff.count(), 100u);
  ASSERT_GT(far_diff.count(), 100u);
  EXPECT_LT(near_diff.mean(), far_diff.mean() * 0.8);
}

TEST(Field, TemporalCorrelation) {
  // Consecutive-epoch changes must be small relative to the field's
  // overall dynamic range (AR(1) + slow drift, not white noise).
  net::Topology topo = paper_topology();
  Field f(kSensorTemperature, default_params(kSensorTemperature), topo,
          sim::Rng(5));
  sim::RunningStat step, range;
  double prev = 0.0;
  for (std::int64_t e = 1; e <= 4000; ++e) {
    f.advance_to(e);
    const double v = f.reading(1);
    if (e > 1) step.push(std::abs(v - prev));
    range.push(v);
    prev = v;
  }
  EXPECT_LT(step.mean(), (range.max() - range.min()) * 0.05);
}

TEST(Field, DiurnalCycleMovesTheMean) {
  net::Topology topo = paper_topology();
  FieldParams p = default_params(kSensorTemperature);
  Field f(kSensorTemperature, p, topo, sim::Rng(5));
  // Peak of sin at t = period/4; trough at 3*period/4.
  f.advance_to(static_cast<std::int64_t>(p.diurnal_period / 4));
  const double warm = f.field_at(50, 50);
  f.advance_to(static_cast<std::int64_t>(3 * p.diurnal_period / 4));
  const double cool = f.field_at(50, 50);
  EXPECT_GT(warm - cool, p.diurnal_amplitude);  // 2*amp minus noise slack
}

TEST(Field, ReadingsStayInPlausibleRange) {
  net::Topology topo = paper_topology();
  Field f(kSensorTemperature, default_params(kSensorTemperature), topo,
          sim::Rng(7));
  for (std::int64_t e = 0; e <= 5000; e += 50) {
    f.advance_to(e);
    for (NodeId u = 0; u < topo.size(); ++u) {
      EXPECT_GT(f.reading(u), -20.0);
      EXPECT_LT(f.reading(u), 60.0);
    }
  }
}

TEST(Field, PerNodeNoiseDecorralatesCoLocatedNodes) {
  // Two nodes at the same position differ only by node noise: non-zero but
  // small.
  std::vector<net::Node> nodes(2);
  nodes[0].x = nodes[1].x = 10.0;
  nodes[0].y = nodes[1].y = 10.0;
  net::Topology topo(std::move(nodes), 5.0);
  Field f(kSensorTemperature, default_params(kSensorTemperature), topo,
          sim::Rng(3));
  f.advance_to(500);
  const double diff = std::abs(f.reading(0) - f.reading(1));
  EXPECT_GT(diff, 0.0);
  EXPECT_LT(diff, 3.0);
}

TEST(DefaultParams, TypesAreDistinct) {
  const FieldParams temp = default_params(kSensorTemperature);
  const FieldParams hum = default_params(kSensorHumidity);
  const FieldParams light = default_params(kSensorLight);
  const FieldParams soil = default_params(kSensorSoilMoisture);
  EXPECT_NE(temp.base, hum.base);
  EXPECT_NE(hum.base, light.base);
  EXPECT_GT(light.diurnal_amplitude, temp.diurnal_amplitude);
  EXPECT_LT(soil.bump_drift, temp.bump_drift);  // soil fronts crawl
}

TEST(DefaultParams, UnknownTypeGetsFallback) {
  const FieldParams p = default_params(77);
  EXPECT_GT(p.base, 0.0);
}

TEST(Environment, LockstepAdvance) {
  net::Topology topo = paper_topology();
  Environment env(topo, 4, sim::Rng(11));
  env.advance_to(123);
  EXPECT_EQ(env.epoch(), 123);
  for (SensorType t = 0; t < 4; ++t) {
    EXPECT_EQ(env.field(t).epoch(), 123);
  }
}

TEST(Environment, TypesEvolveIndependently) {
  net::Topology topo = paper_topology();
  Environment env(topo, 4, sim::Rng(11));
  env.advance_to(200);
  // Same node, different types: values come from different fields.
  const double a = env.reading(1, kSensorTemperature);
  const double b = env.reading(1, kSensorHumidity);
  EXPECT_NE(a, b);
}

TEST(Environment, RejectsUnknownType) {
  net::Topology topo = paper_topology();
  Environment env(topo, 2, sim::Rng(11));
  EXPECT_THROW((void)env.reading(0, 5), std::out_of_range);
}

}  // namespace
}  // namespace dirq::data

// The batch reading plane (ReadingSource::readings) must be a pure
// transport optimisation: for the pinned backend — the one every golden is
// recorded against — batch values are bit-identical to per-node reading()
// calls, across scenario seeds, node subsets, query orders, and both
// dispatch paths (the Environment override and the base-class default).
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "data/field_model.hpp"
#include "data/trace.hpp"
#include "net/placement.hpp"
#include "sim/rng.hpp"

namespace dirq::data {
namespace {

/// A sink-style probe that only sees the ReadingSource interface, so the
/// default readings() implementation is exercised through the base class.
void expect_batch_matches_loop(const ReadingSource& src,
                               std::span<const NodeId> nodes,
                               SensorType type) {
  std::vector<double> batch(nodes.size());
  src.readings(type, nodes, batch);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    EXPECT_EQ(batch[i], src.reading(nodes[i], type))
        << "node " << nodes[i] << " type " << type;
  }
}

class ReadingBatchAcrossSeeds : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(ReadingBatchAcrossSeeds, PinnedBatchBitIdenticalToPerNodeLoop) {
  // The scenario-grid seeds: the same worlds the golden matrix pins.
  sim::Rng rng(GetParam());
  net::Topology topo = net::random_connected(net::RandomPlacementConfig{}, rng);
  Environment env(topo, 4, rng.substream("environment"));

  std::vector<NodeId> all(topo.size());
  std::iota(all.begin(), all.end(), NodeId{0});
  std::vector<NodeId> shuffled = all;
  sim::Rng order_rng(GetParam() ^ 0xABCDULL);
  order_rng.shuffle(std::span<NodeId>(shuffled));
  // A subset with repeats, as the sampling gate may produce.
  std::vector<NodeId> subset;
  for (std::size_t i = 0; i < all.size(); i += 3) subset.push_back(all[i]);
  subset.push_back(all.front());
  subset.push_back(all.front());

  for (const std::int64_t epoch : {0, 1, 7, 100, 101, 500}) {
    env.advance_to(epoch);
    for (SensorType t = 0; t < 4; ++t) {
      expect_batch_matches_loop(env, all, t);
      expect_batch_matches_loop(env, shuffled, t);
      expect_batch_matches_loop(env, subset, t);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(ScenarioSeeds, ReadingBatchAcrossSeeds,
                         ::testing::Values(1, 42, 1337));

TEST(ReadingBatch, ScaledTopologyBatchMatches) {
  sim::Rng rng(42);
  net::Topology topo = net::random_connected(net::scaled_placement(200), rng);
  Environment env(topo, 4, rng.substream("environment"));
  env.advance_to(50);
  std::vector<NodeId> all(topo.size());
  std::iota(all.begin(), all.end(), NodeId{0});
  for (SensorType t = 0; t < 4; ++t) {
    expect_batch_matches_loop(env, all, t);
  }
}

TEST(ReadingBatch, DefaultImplementationCoversTrace) {
  // Trace does not override readings(); the base-class default must
  // delegate per node and agree with reading().
  sim::Rng rng(7);
  net::Topology topo = net::random_connected(net::RandomPlacementConfig{}, rng);
  Environment env(topo, 2, rng.substream("environment"));
  Trace trace(topo.size(), 2);
  for (std::int64_t e = 0; e < 5; ++e) {
    env.advance_to(e);
    trace.record_epoch(env);
  }
  trace.advance_to(3);
  std::vector<NodeId> all(topo.size());
  std::iota(all.begin(), all.end(), NodeId{0});
  expect_batch_matches_loop(trace, all, 0);
  expect_batch_matches_loop(trace, all, 1);
}

TEST(ReadingBatch, EmptyBatchIsANoOp) {
  sim::Rng rng(7);
  net::Topology topo = net::random_connected(net::RandomPlacementConfig{}, rng);
  Environment env(topo, 2, rng.substream("environment"));
  std::vector<NodeId> none;
  std::vector<double> out;
  env.readings(0, none, out);  // must not throw or write
  SUCCEED();
}

TEST(ReadingBatch, UnknownTypeThrowsLikePerNodePath) {
  sim::Rng rng(7);
  net::Topology topo = net::random_connected(net::RandomPlacementConfig{}, rng);
  Environment env(topo, 2, rng.substream("environment"));
  std::vector<NodeId> one{0};
  std::vector<double> out(1);
  EXPECT_THROW(env.readings(5, one, out), std::out_of_range);
}

}  // namespace
}  // namespace dirq::data

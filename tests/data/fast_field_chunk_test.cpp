// Intra-type batch chunking: the capability flag, and the contract it
// advertises — fetching a type's reading batch in disjoint sub-span chunks
// (serially in any order, or concurrently from a thread pool) must be
// bitwise identical to one whole-batch readings() call, because the
// per-cell anchor memo moves to thread-local scratch and anchors are pure
// functions of (seed, stream, block).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <span>
#include <vector>

#include "data/fast_field.hpp"
#include "data/field_model.hpp"
#include "net/topology.hpp"
#include "sim/rng.hpp"
#include "sim/thread_pool.hpp"

namespace dirq::data {
namespace {

constexpr std::size_t kTypes = 2;

net::Topology grid_topology(std::size_t side) {
  std::vector<net::Node> nodes(side * side);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    nodes[i].x = static_cast<double>(i % side);
    nodes[i].y = static_cast<double>(i / side);
    nodes[i].sensors = {0, 1};
  }
  return net::Topology(std::move(nodes), 1.5);
}

/// Every node, shuffled — batch order must not matter.
std::vector<NodeId> shuffled_nodes(const net::Topology& topo,
                                   std::uint64_t seed) {
  std::vector<NodeId> nodes(topo.size());
  for (NodeId u = 0; u < topo.size(); ++u) nodes[u] = u;
  sim::Rng rng(seed);
  for (std::size_t i = nodes.size(); i > 1; --i) {
    std::swap(nodes[i - 1],
              nodes[static_cast<std::size_t>(rng.uniform_int(0, i - 1))]);
  }
  return nodes;
}

TEST(FastFieldChunk, CapabilityFlagsMatchBackends) {
  const net::Topology topo = grid_topology(4);
  const FastEnvironment fast(topo, kTypes, sim::Rng(7));
  EXPECT_TRUE(fast.concurrent_type_batches());
  EXPECT_TRUE(fast.concurrent_intra_type_chunks());
  const Environment pinned(topo, kTypes, sim::Rng(7));
  EXPECT_TRUE(pinned.concurrent_type_batches());
  // The pinned backend shares one mutable cache across a type's batch, so
  // it must keep refusing intra-type splits (and so must the base-class
  // default any future backend inherits).
  EXPECT_FALSE(pinned.concurrent_intra_type_chunks());
}

TEST(FastFieldChunk, SerialChunksAreBitwiseIdenticalToWholeBatch) {
  const net::Topology topo = grid_topology(12);
  FastEnvironment env(topo, kTypes, sim::Rng(99));
  const std::vector<NodeId> nodes = shuffled_nodes(topo, 5);
  for (const std::int64_t epoch : {0, 3, 250}) {
    env.advance_to(epoch);
    for (SensorType t = 0; t < kTypes; ++t) {
      std::vector<double> whole(nodes.size());
      env.readings(t, nodes, whole);
      for (const std::size_t chunk : {1, 3, 7, 16, 64}) {
        std::vector<double> split(nodes.size());
        for (std::size_t b = 0; b < nodes.size(); b += chunk) {
          const std::size_t len = std::min(chunk, nodes.size() - b);
          env.readings(t, std::span(nodes).subspan(b, len),
                       std::span(split).subspan(b, len));
        }
        EXPECT_EQ(whole, split)
            << "epoch " << epoch << " type " << t << " chunk " << chunk;
      }
    }
  }
}

TEST(FastFieldChunk, ConcurrentChunksAreBitwiseIdenticalToWholeBatch) {
  const net::Topology topo = grid_topology(12);
  FastEnvironment env(topo, kTypes, sim::Rng(4242));
  const std::vector<NodeId> nodes = shuffled_nodes(topo, 11);
  // The engine's precondition before chunking a batch: one serial reading
  // of the highest node id settles lazy adoption.
  const NodeId max_node = *std::max_element(nodes.begin(), nodes.end());
  sim::ThreadPool pool(4);
  constexpr std::size_t kChunk = 16;
  const std::size_t chunks = (nodes.size() + kChunk - 1) / kChunk;
  for (const std::int64_t epoch : {0, 40, 41, 500}) {
    env.advance_to(epoch);
    for (SensorType t = 0; t < kTypes; ++t) {
      (void)env.reading(max_node, t);
      std::vector<double> whole(nodes.size());
      env.readings(t, nodes, whole);
      std::vector<double> split(nodes.size());
      pool.parallel_for(chunks, [&](std::size_t k) {
        const std::size_t b = k * kChunk;
        const std::size_t len = std::min(kChunk, nodes.size() - b);
        env.readings(t, std::span(nodes).subspan(b, len),
                     std::span(split).subspan(b, len));
      });
      EXPECT_EQ(whole, split) << "epoch " << epoch << " type " << t;
    }
  }
}

TEST(FastFieldChunk, ScratchSurvivesAcrossEnvironments) {
  // Two live environments interleaved on one thread: the thread-local
  // scratch is keyed by a never-reused instance id, so switching between
  // fields (and destroying one, then creating another) must never serve
  // stale anchors.
  const net::Topology topo = grid_topology(8);
  const std::vector<NodeId> nodes = shuffled_nodes(topo, 3);
  std::vector<double> expect_a(nodes.size());
  std::vector<double> expect_b(nodes.size());
  {
    FastEnvironment a(topo, kTypes, sim::Rng(1));
    FastEnvironment b(topo, kTypes, sim::Rng(2));
    a.advance_to(10);
    b.advance_to(10);
    a.readings(0, nodes, expect_a);
    b.readings(0, nodes, expect_b);
    std::vector<double> again(nodes.size());
    a.readings(0, nodes, again);
    EXPECT_EQ(expect_a, again);
  }
  FastEnvironment c(topo, kTypes, sim::Rng(1));
  c.advance_to(10);
  std::vector<double> fresh(nodes.size());
  c.readings(0, nodes, fresh);
  EXPECT_EQ(expect_a, fresh);
  EXPECT_NE(expect_a, expect_b);  // different seeds really differ
}

}  // namespace
}  // namespace dirq::data

// Multi-attribute scenario regression tier: the query mix blends
// conjunctive multi-attribute queries (ExperimentConfig::multi_attr_*)
// into the single-range stream, golden-checked on the core metrics so the
// mix axis sits on the same determinism leash as the loss and transport
// axes. Structural expectations: update traffic is untouched by the query
// mix (the update plane never sees queries), while conjunctions are
// disseminated through per-predicate range checks — coarser than the
// joint predicate — so overshoot rises with the predicate count.
//
// The grid axes and per-cell config live in scenario_grid.hpp, shared with
// the `scenario_goldens` regenerator tool (tools/scenario_goldens.cpp).
// Exact golden values are libstdc++-specific (std::uniform_real_distribution
// et al. are implementation-defined); elsewhere the tier still runs with
// the structural + determinism assertions.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "core/experiment.hpp"
#include "scenarios/scenario_grid.hpp"
#include "support/ledger_parity.hpp"

namespace dirq::core {
namespace {

struct MultiCase {
  std::uint64_t seed;
  double fraction;
  std::size_t count;
  // Goldens (libstdc++, any optimisation level — integer exact):
  std::int64_t updates;
  std::int64_t dirq_total_cost;
  std::int64_t flooding_total;
  double coverage_mean;
  double overshoot_mean;
  double receive_mean;
};

constexpr std::int64_t kExpectedQueries =
    scenarios::kEpochs / scenarios::kQueryPeriod - 1;  // 59

// Regenerate with the `scenario_goldens` tool (multi-attr tier block).
const std::vector<MultiCase>& cases() {
  static const std::vector<MultiCase> kCases = {
      {1, 0.30, 2, 1953, 5494, 8732, 99.3760476811, 47.0905742092, 50.6721215663},
      {1, 0.30, 3, 1953, 5329, 8732, 99.1742720556, 81.5639163097, 44.1846873174},
      {1, 1.00, 2, 1953, 5335, 8732, 98.8559322034, 85.7860218877, 43.5417884278},
      {1, 1.00, 3, 1953, 4959, 8732, 99.4350282486, 144.5713185120, 30.6838106371},
      {42, 0.30, 2, 2215, 6136, 7552, 98.5033681008, 34.5466021737, 51.7241379310},
      {42, 0.30, 3, 2215, 6137, 7552, 97.9972475735, 44.4685752101, 51.2565751023},
      {42, 1.00, 2, 2215, 6055, 7552, 100.0000000000, 53.8614304716, 48.4511981297},
      {42, 1.00, 3, 2215, 5793, 7552, 99.2467043315, 71.5408273459, 38.8661601403},
  };
  return kCases;
}

ExperimentConfig make_config(const MultiCase& c) {
  return scenarios::make_multi_config(c.seed, c.fraction, c.count);
}

/// Each cell is simulated once and shared by every assertion suite
/// (RerunIsBitIdentical proves determinism with a deliberate fresh run).
const ExperimentResults& cell_results(const MultiCase& c) {
  using Key = std::tuple<std::uint64_t, std::int64_t, std::size_t>;
  static std::map<Key, ExperimentResults> cache;
  const Key key{c.seed, static_cast<std::int64_t>(c.fraction * 100), c.count};
  auto it = cache.find(key);
  if (it == cache.end()) {
    it = cache.emplace(key, Experiment(make_config(c)).run()).first;
  }
  return it->second;
}

TEST(MultiGrid, GoldenTableCoversExactlyTheSharedGrid) {
  std::size_t i = 0;
  scenarios::for_each_multi_cell(
      [&i](std::uint64_t seed, double fraction, std::size_t count) {
        ASSERT_LT(i, cases().size());
        EXPECT_EQ(cases()[i].seed, seed) << "row " << i;
        EXPECT_DOUBLE_EQ(cases()[i].fraction, fraction) << "row " << i;
        EXPECT_EQ(cases()[i].count, count) << "row " << i;
        ++i;
      });
  EXPECT_EQ(i, cases().size());
}

class MultiMatrix : public ::testing::TestWithParam<MultiCase> {};

TEST_P(MultiMatrix, StructuralInvariantsHold) {
  const MultiCase& c = GetParam();
  const ExperimentResults& res = cell_results(c);

  EXPECT_EQ(res.queries, kExpectedQueries);
  EXPECT_GT(res.updates_transmitted, 0);
  EXPECT_GT(res.ledger.total(), 0);
  EXPECT_GT(res.flooding_total, 0);
  EXPECT_GE(res.coverage_pct.mean(), 0.0);
  EXPECT_LE(res.coverage_pct.mean(), 100.0);
  EXPECT_GE(res.overshoot_pct.mean(), 0.0);
  expect_ledger_reconciles(res);

  // The update plane never sees queries: the mix must leave the update
  // counter exactly where the base (fraction-0) cell put it.
  const ExperimentResults base =
      Experiment(scenarios::make_config(c.seed, 30, 0.0)).run();
  EXPECT_EQ(res.updates_transmitted, base.updates_transmitted);
}

TEST_P(MultiMatrix, MetricsMatchGolden) {
#if !defined(__GLIBCXX__)
  GTEST_SKIP() << "golden values are recorded against libstdc++'s "
                  "distribution implementations";
#else
  const MultiCase& c = GetParam();
  const ExperimentResults& res = cell_results(c);

  EXPECT_EQ(res.updates_transmitted, c.updates);
  EXPECT_EQ(res.ledger.total(), c.dirq_total_cost);
  EXPECT_EQ(res.flooding_total, c.flooding_total);
  EXPECT_NEAR(res.coverage_pct.mean(), c.coverage_mean, 1e-6);
  EXPECT_NEAR(res.overshoot_pct.mean(), c.overshoot_mean, 1e-6);
  EXPECT_NEAR(res.receive_pct.mean(), c.receive_mean, 1e-6);
#endif
}

std::string case_name(const ::testing::TestParamInfo<MultiCase>& info) {
  const MultiCase& c = info.param;
  return "seed" + std::to_string(c.seed) + "_frac" +
         std::to_string(static_cast<int>(c.fraction * 100)) + "_k" +
         std::to_string(c.count);
}

INSTANTIATE_TEST_SUITE_P(Grid, MultiMatrix, ::testing::ValuesIn(cases()),
                         case_name);

TEST(MultiMatrixCross, RerunIsBitIdentical) {
  const MultiCase& c = cases()[3];  // seed 1, full mix, 3 predicates
  const ExperimentResults& a = cell_results(c);
  const ExperimentResults b = Experiment(make_config(c)).run();
  EXPECT_EQ(a.updates_transmitted, b.updates_transmitted);
  EXPECT_EQ(a.ledger.total(), b.ledger.total());
  EXPECT_EQ(a.flooding_total, b.flooding_total);
  EXPECT_DOUBLE_EQ(a.coverage_pct.mean(), b.coverage_pct.mean());
  EXPECT_DOUBLE_EQ(a.overshoot_pct.mean(), b.overshoot_pct.mean());
  EXPECT_DOUBLE_EQ(a.receive_pct.mean(), b.receive_pct.mean());
}

TEST(MultiMatrixCross, WiderConjunctionsOvershootMore) {
  // Per-predicate dissemination is coarser than the joint predicate, so
  // raising the predicate count (at the same seed and fraction) must not
  // reduce mean overshoot. A pinned-stream property, gated like the
  // goldens.
#if defined(__GLIBCXX__)
  for (std::size_t i = 0; i + 1 < cases().size(); i += 2) {
    const MultiCase& narrow = cases()[i];
    const MultiCase& wide = cases()[i + 1];
    ASSERT_EQ(narrow.seed, wide.seed);
    ASSERT_LT(narrow.count, wide.count);
    EXPECT_LT(cell_results(narrow).overshoot_pct.mean(),
              cell_results(wide).overshoot_pct.mean())
        << "seed " << narrow.seed << " fraction " << narrow.fraction;
  }
#endif
}

}  // namespace
}  // namespace dirq::core

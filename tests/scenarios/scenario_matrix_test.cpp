// Scenario regression matrix: full DirqExperiment runs across a
// seeds x topology-size x loss-rate grid, golden-checked on the core
// metrics (update traffic, energy ledger, flooding baseline, accuracy).
//
// Purpose: catch determinism regressions *structurally*. Any change to the
// RNG substream layout, topology builder, field model, protocol logic, or
// cost accounting shifts at least one golden value and fails loudly here,
// instead of silently invalidating every figure bench.
//
// The grid axes and per-cell config live in scenario_grid.hpp, shared with
// the `scenario_goldens` regenerator tool (tools/scenario_goldens.cpp).
//
// The exact golden values are tied to libstdc++'s distribution
// implementations (std::uniform_real_distribution et al. are
// implementation-defined). On other standard libraries the suite still
// runs every cell and enforces the structural + determinism assertions,
// skipping only the exact-value comparison.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "core/experiment.hpp"
#include "scenarios/scenario_grid.hpp"

namespace dirq::core {
namespace {

struct ScenarioCase {
  std::uint64_t seed;
  std::size_t nodes;
  double loss;
  // Goldens (libstdc++, any optimisation level — integer exact):
  std::int64_t updates;
  std::int64_t dirq_total_cost;
  std::int64_t flooding_total;
  double coverage_mean;
  double overshoot_mean;
  double receive_mean;
};

constexpr std::int64_t kExpectedQueries =
    scenarios::kEpochs / scenarios::kQueryPeriod - 1;  // 59

// Regenerate with the `scenario_goldens` tool (see tools/scenario_goldens.cpp).
const std::vector<ScenarioCase>& cases() {
  static const std::vector<ScenarioCase> kCases = {
      {1, 30, 0.00, 1953, 5609, 8732, 99.7392438070, 28.7247780468, 54.5879602572},
      {1, 30, 0.15, 1731, 4910, 8732, 71.7340286832, 20.4783634445, 39.0999415546},
      {1, 50, 0.00, 3002, 8938, 20178, 99.5843422115, 34.1680144959, 55.4825319958},
      {1, 50, 0.15, 2687, 7592, 20178, 61.7311870149, 20.0167641251, 33.9674852992},
      {42, 30, 0.00, 2215, 6271, 7552, 99.7392438070, 27.6756224002, 56.2828755114},
      {42, 30, 0.15, 1913, 5129, 7552, 56.3217079531, 17.3949990687, 32.4956165985},
      {42, 50, 0.00, 3123, 9021, 18762, 97.8362315650, 28.9369056392, 52.7499135247},
      {42, 50, 0.15, 2798, 7696, 18762, 60.7967026832, 16.9828562496, 32.3417502594},
      {1337, 30, 0.00, 1726, 5114, 11092, 99.8587570621, 26.4481281430, 53.1268264173},
      {1337, 30, 0.15, 1587, 4500, 11092, 65.0835040666, 17.0919476004, 34.5412039743},
      {1337, 50, 0.00, 3209, 9330, 21948, 99.3260694108, 25.8676351897, 52.7153234175},
      {1337, 50, 0.15, 2828, 7786, 21948, 57.7215942986, 15.0484261501, 30.5776547907},
  };
  return kCases;
}

ExperimentConfig make_config(const ScenarioCase& c) {
  return scenarios::make_config(c.seed, c.nodes, c.loss);
}

/// Each 1200-epoch cell is simulated once and the results shared by every
/// assertion suite (runs are deterministic, so caching cannot mask bugs —
/// RerunIsBitIdentical below proves it with a deliberate fresh run).
const ExperimentResults& cell_results(const ScenarioCase& c) {
  using Key = std::tuple<std::uint64_t, std::size_t, std::int64_t>;
  static std::map<Key, ExperimentResults> cache;
  const Key key{c.seed, c.nodes, static_cast<std::int64_t>(c.loss * 100)};
  auto it = cache.find(key);
  if (it == cache.end()) {
    it = cache.emplace(key, Experiment(make_config(c)).run()).first;
  }
  return it->second;
}

TEST(ScenarioGrid, GoldenTableCoversExactlyTheSharedGrid) {
  // The golden rows must track the shared grid cell-for-cell, in the
  // canonical order the regenerator prints.
  std::size_t i = 0;
  scenarios::for_each_cell(
      [&i](std::uint64_t seed, std::size_t nodes, double loss) {
        ASSERT_LT(i, cases().size());
        EXPECT_EQ(cases()[i].seed, seed) << "row " << i;
        EXPECT_EQ(cases()[i].nodes, nodes) << "row " << i;
        EXPECT_DOUBLE_EQ(cases()[i].loss, loss) << "row " << i;
        ++i;
      });
  EXPECT_EQ(i, cases().size());
}

class ScenarioMatrix : public ::testing::TestWithParam<ScenarioCase> {};

TEST_P(ScenarioMatrix, StructuralInvariantsHold) {
  const ScenarioCase& c = GetParam();
  const ExperimentResults& res = cell_results(c);

  EXPECT_EQ(res.queries, kExpectedQueries);
  EXPECT_GT(res.updates_transmitted, 0);
  EXPECT_GT(res.ledger.total(), 0);
  EXPECT_GT(res.flooding_total, 0);
  EXPECT_GE(res.coverage_pct.mean(), 0.0);
  EXPECT_LE(res.coverage_pct.mean(), 100.0);
  EXPECT_GE(res.overshoot_pct.mean(), 0.0);
  // The Fig. 6 series always reconciles with the scalar counter.
  EXPECT_EQ(static_cast<std::int64_t>(res.updates_per_bin.total()),
            res.updates_transmitted);
  if (c.loss == 0.0) {
    // Lossless channel: conservative ranges never skip settled sources.
    EXPECT_GT(res.coverage_pct.mean(), 97.0);
  } else {
    // Lossy channel: the protocol keeps routing something.
    EXPECT_GT(res.coverage_pct.mean(), 10.0);
#if defined(__GLIBCXX__)
    // That loss actually bit (coverage strictly below 100%) is a property
    // of the pinned realization: in principle no query-path frame need
    // drop, so only assert it where the goldens pin the stream.
    EXPECT_LT(res.coverage_pct.mean(), 100.0);
#endif
  }
}

TEST_P(ScenarioMatrix, MetricsMatchGolden) {
#if !defined(__GLIBCXX__)
  GTEST_SKIP() << "golden values are recorded against libstdc++'s "
                  "distribution implementations";
#else
  const ScenarioCase& c = GetParam();
  const ExperimentResults& res = cell_results(c);

  EXPECT_EQ(res.updates_transmitted, c.updates);
  EXPECT_EQ(res.ledger.total(), c.dirq_total_cost);
  EXPECT_EQ(res.flooding_total, c.flooding_total);
  EXPECT_NEAR(res.coverage_pct.mean(), c.coverage_mean, 1e-6);
  EXPECT_NEAR(res.overshoot_pct.mean(), c.overshoot_mean, 1e-6);
  EXPECT_NEAR(res.receive_pct.mean(), c.receive_mean, 1e-6);
#endif
}

std::string case_name(const ::testing::TestParamInfo<ScenarioCase>& info) {
  const ScenarioCase& c = info.param;
  return "seed" + std::to_string(c.seed) + "_n" + std::to_string(c.nodes) +
         "_loss" + std::to_string(static_cast<int>(c.loss * 100));
}

INSTANTIATE_TEST_SUITE_P(Grid, ScenarioMatrix, ::testing::ValuesIn(cases()),
                         case_name);

TEST(ScenarioMatrixCross, RerunIsBitIdentical) {
  // Full determinism on one representative cell: every tracked metric,
  // not just the goldened subset, must be identical across runs. The
  // first run comes from the shared cache, the second is deliberately
  // fresh — this also guards the cache itself.
  const ScenarioCase& c = cases()[7];  // 42/50/lossy
  const ExperimentResults& a = cell_results(c);
  const ExperimentResults b = Experiment(make_config(c)).run();
  EXPECT_EQ(a.updates_transmitted, b.updates_transmitted);
  EXPECT_EQ(a.ledger.total(), b.ledger.total());
  EXPECT_EQ(a.flooding_total, b.flooding_total);
  EXPECT_EQ(a.samples_taken, b.samples_taken);
  EXPECT_DOUBLE_EQ(a.coverage_pct.mean(), b.coverage_pct.mean());
  EXPECT_DOUBLE_EQ(a.overshoot_pct.mean(), b.overshoot_pct.mean());
  EXPECT_DOUBLE_EQ(a.receive_pct.mean(), b.receive_pct.mean());
  EXPECT_DOUBLE_EQ(a.should_pct.mean(), b.should_pct.mean());
}

TEST(ScenarioMatrixCross, LossReducesCoverageAndCost) {
  // Within each (seed, nodes) pair: dropping 15% of deliveries lowers both
  // delivered coverage and DirQ's spent energy (lost frames terminate
  // dissemination subtrees early), and leaves the analytical flooding
  // baseline untouched. The flooding equality is structural (it depends
  // only on the topology realization, which the loss knob never touches);
  // the strict reductions are properties of the pinned libstdc++ stream —
  // stale-range dynamics could in principle push either metric the other
  // way — so they are gated like the goldens.
  for (std::size_t i = 0; i + 1 < cases().size(); i += 2) {
    const ScenarioCase& clean = cases()[i];
    const ScenarioCase& lossy = cases()[i + 1];
    ASSERT_EQ(clean.seed, lossy.seed);
    ASSERT_EQ(clean.nodes, lossy.nodes);
    const ExperimentResults& a = cell_results(clean);
    const ExperimentResults& b = cell_results(lossy);
    EXPECT_EQ(a.flooding_total, b.flooding_total);
#if defined(__GLIBCXX__)
    EXPECT_LT(b.coverage_pct.mean(), a.coverage_pct.mean())
        << "seed " << clean.seed << " nodes " << clean.nodes;
    EXPECT_LT(b.ledger.total(), a.ledger.total());
#endif
  }
}

}  // namespace
}  // namespace dirq::core

// LMAC scenario regression tier: the same full-experiment grid as
// scenario_matrix_test.cpp, but with queries and updates riding the TDMA
// slot schedule (TransportKind::Lmac). Golden-checked on the core metrics,
// plus the cost-parity invariant the LMAC backend must share with the
// instant one: the transport ledger reconciles exactly with the per-node
// tx/rx energy attribution.
//
// The grid axes and per-cell config live in scenario_grid.hpp, shared with
// the `scenario_goldens` regenerator tool (tools/scenario_goldens.cpp).
// Exact golden values are libstdc++-specific (std::uniform_real_distribution
// et al. are implementation-defined); elsewhere the tier still runs with
// the structural + determinism + parity assertions.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "core/experiment.hpp"
#include "scenarios/scenario_grid.hpp"
#include "support/ledger_parity.hpp"

namespace dirq::core {
namespace {

struct LmacCase {
  std::uint64_t seed;
  std::size_t nodes;
  double loss;
  // Goldens (libstdc++, any optimisation level — integer exact):
  std::int64_t updates;
  std::int64_t dirq_total_cost;
  std::int64_t flooding_total;
  double coverage_mean;
  double overshoot_mean;
  double receive_mean;
};

constexpr std::int64_t kExpectedQueries =
    scenarios::kEpochs / scenarios::kQueryPeriod - 1;  // 59

// Regenerate with the `scenario_goldens` tool (lmac tier block).
const std::vector<LmacCase>& cases() {
  static const std::vector<LmacCase> kCases = {
      {1, 30, 0.00, 1940, 5578, 8732, 99.5132551065, 28.5835351090, 54.4126241964},
      {1, 30, 0.15, 1736, 4866, 8732, 68.4162165518, 20.8757062147, 37.8141437756},
      {1, 50, 0.00, 2974, 8855, 20178, 98.6521388216, 33.8492090076, 54.9636803874},
      {1, 50, 0.15, 2682, 7520, 20178, 60.7141900104, 18.3192329655, 32.8606018679},
      {42, 30, 0.00, 2197, 6230, 7552, 98.8917861799, 28.1971347861, 56.1659848042},
      {42, 30, 0.15, 1900, 5068, 7552, 57.3842118334, 14.9063295462, 31.8527177089},
      {42, 50, 0.00, 3134, 9079, 18762, 99.1848264730, 29.5766699525, 53.5800760982},
      {42, 50, 0.15, 2800, 7795, 18762, 63.6949822469, 18.2957217187, 34.1058457281},
  };
  return kCases;
}

ExperimentConfig make_config(const LmacCase& c) {
  return scenarios::make_lmac_config(c.seed, c.nodes, c.loss);
}

/// Each cell is simulated once and shared by every assertion suite
/// (RerunIsBitIdentical proves determinism with a deliberate fresh run).
const ExperimentResults& cell_results(const LmacCase& c) {
  using Key = std::tuple<std::uint64_t, std::size_t, std::int64_t>;
  static std::map<Key, ExperimentResults> cache;
  const Key key{c.seed, c.nodes, static_cast<std::int64_t>(c.loss * 100)};
  auto it = cache.find(key);
  if (it == cache.end()) {
    it = cache.emplace(key, Experiment(make_config(c)).run()).first;
  }
  return it->second;
}

TEST(LmacGrid, GoldenTableCoversExactlyTheSharedGrid) {
  std::size_t i = 0;
  scenarios::for_each_lmac_cell(
      [&i](std::uint64_t seed, std::size_t nodes, double loss) {
        ASSERT_LT(i, cases().size());
        EXPECT_EQ(cases()[i].seed, seed) << "row " << i;
        EXPECT_EQ(cases()[i].nodes, nodes) << "row " << i;
        EXPECT_DOUBLE_EQ(cases()[i].loss, loss) << "row " << i;
        ++i;
      });
  EXPECT_EQ(i, cases().size());
}

class LmacMatrix : public ::testing::TestWithParam<LmacCase> {};

TEST_P(LmacMatrix, StructuralInvariantsHold) {
  const LmacCase& c = GetParam();
  const ExperimentResults& res = cell_results(c);

  EXPECT_EQ(res.queries, kExpectedQueries);
  EXPECT_GT(res.updates_transmitted, 0);
  EXPECT_GT(res.ledger.total(), 0);
  EXPECT_GT(res.flooding_total, 0);
  EXPECT_GE(res.coverage_pct.mean(), 0.0);
  EXPECT_LE(res.coverage_pct.mean(), 100.0);
  EXPECT_GE(res.overshoot_pct.mean(), 0.0);
  EXPECT_EQ(static_cast<std::int64_t>(res.updates_per_bin.total()),
            res.updates_transmitted);
  if (c.loss == 0.0) {
    // Slot-synchronous delivery lags the instant transport by at most the
    // dissemination depth in frames; with 20 frames between queries the
    // conservative-range coverage property still holds to the same bound.
    EXPECT_GT(res.coverage_pct.mean(), 95.0);
  } else {
    EXPECT_GT(res.coverage_pct.mean(), 10.0);
  }
}

TEST_P(LmacMatrix, LedgerReconcilesWithPerNodeEnergy) {
  // Cost parity with the instant backend (shared assertion — see
  // tests/support/ledger_parity.hpp for the invariant's statement).
  expect_ledger_reconciles(cell_results(GetParam()));
}

TEST_P(LmacMatrix, MetricsMatchGolden) {
#if !defined(__GLIBCXX__)
  GTEST_SKIP() << "golden values are recorded against libstdc++'s "
                  "distribution implementations";
#else
  const LmacCase& c = GetParam();
  const ExperimentResults& res = cell_results(c);

  EXPECT_EQ(res.updates_transmitted, c.updates);
  EXPECT_EQ(res.ledger.total(), c.dirq_total_cost);
  EXPECT_EQ(res.flooding_total, c.flooding_total);
  EXPECT_NEAR(res.coverage_pct.mean(), c.coverage_mean, 1e-6);
  EXPECT_NEAR(res.overshoot_pct.mean(), c.overshoot_mean, 1e-6);
  EXPECT_NEAR(res.receive_pct.mean(), c.receive_mean, 1e-6);
#endif
}

std::string case_name(const ::testing::TestParamInfo<LmacCase>& info) {
  const LmacCase& c = info.param;
  return "seed" + std::to_string(c.seed) + "_n" + std::to_string(c.nodes) +
         "_loss" + std::to_string(static_cast<int>(c.loss * 100));
}

INSTANTIATE_TEST_SUITE_P(Grid, LmacMatrix, ::testing::ValuesIn(cases()),
                         case_name);

TEST(LmacMatrixCross, RerunIsBitIdentical) {
  // Full determinism on one representative cell (42/50/lossy): scheduler
  // event ordering, slot election, and the loss stream must all replay.
  const LmacCase& c = cases()[7];
  const ExperimentResults& a = cell_results(c);
  const ExperimentResults b = Experiment(make_config(c)).run();
  EXPECT_EQ(a.updates_transmitted, b.updates_transmitted);
  EXPECT_EQ(a.ledger.total(), b.ledger.total());
  EXPECT_EQ(a.flooding_total, b.flooding_total);
  EXPECT_EQ(a.samples_taken, b.samples_taken);
  EXPECT_EQ(a.node_tx, b.node_tx);
  EXPECT_EQ(a.node_rx, b.node_rx);
  EXPECT_DOUBLE_EQ(a.coverage_pct.mean(), b.coverage_pct.mean());
  EXPECT_DOUBLE_EQ(a.overshoot_pct.mean(), b.overshoot_pct.mean());
  EXPECT_DOUBLE_EQ(a.receive_pct.mean(), b.receive_pct.mean());
  EXPECT_DOUBLE_EQ(a.should_pct.mean(), b.should_pct.mean());
}

TEST(LmacMatrixCross, FloodingBaselineMatchesInstantTier) {
  // The analytical flooding baseline depends only on the topology
  // realization, which the transport choice never touches — so each LMAC
  // cell's flooding_total must equal the instant tier's for the same
  // (seed, nodes), pinning that the two backends really simulate the same
  // deployment.
  for (const LmacCase& c : cases()) {
    if (c.loss != 0.0) continue;  // one instant run per (seed, nodes)
    const ExperimentResults instant =
        Experiment(scenarios::make_config(c.seed, c.nodes, 0.0)).run();
    EXPECT_EQ(cell_results(c).flooding_total, instant.flooding_total)
        << "seed " << c.seed << " nodes " << c.nodes;
  }
}

}  // namespace
}  // namespace dirq::core

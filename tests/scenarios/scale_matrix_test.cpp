// Large-topology scenario tier: 200- and 500-node scaled placements
// through the full experiment driver.
//
// The paper's evaluation stops at 50 nodes; this tier exercises the
// scaling machinery (density-preserving placement, grid-indexed link
// construction, cached tree traversals, flat per-node state) end-to-end.
// Assertions are structural + determinism (the portable subset the libc++
// job also runs); exact value goldens stay with the 30/50-node tiers.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/experiment.hpp"
#include "net/placement.hpp"
#include "net/spanning_tree.hpp"
#include "scenarios/scenario_grid.hpp"
#include "sim/rng.hpp"

namespace dirq::core {
namespace {

struct ScaleCase {
  std::uint64_t seed;
  std::size_t nodes;
};

std::vector<ScaleCase> scale_cases() {
  std::vector<ScaleCase> out;
  scenarios::for_each_scale_cell([&out](std::uint64_t seed, std::size_t nodes) {
    out.push_back({seed, nodes});
  });
  return out;
}

class ScaleMatrix : public ::testing::TestWithParam<ScaleCase> {};

TEST_P(ScaleMatrix, StructuralInvariantsHold) {
  const ScaleCase& c = GetParam();
  const ExperimentResults res =
      Experiment(scenarios::make_scale_config(c.seed, c.nodes)).run();

  constexpr std::int64_t kExpectedQueries =
      scenarios::kScaleEpochs / scenarios::kQueryPeriod - 1;
  EXPECT_EQ(res.queries, kExpectedQueries);
  EXPECT_GT(res.updates_transmitted, 0);
  EXPECT_GT(res.ledger.total(), 0);
  EXPECT_GT(res.flooding_total, 0);
  EXPECT_GT(res.coverage_pct.mean(), 97.0);  // lossless channel
  EXPECT_GE(res.overshoot_pct.mean(), 0.0);
  EXPECT_EQ(static_cast<std::int64_t>(res.updates_per_bin.total()),
            res.updates_transmitted);
  // Per-node energy attribution covers the whole population.
  EXPECT_EQ(res.node_tx.size(), c.nodes);
  EXPECT_EQ(res.node_rx.size(), c.nodes);
}

TEST_P(ScaleMatrix, RerunIsBitIdentical) {
  const ScaleCase& c = GetParam();
  const ExperimentResults a =
      Experiment(scenarios::make_scale_config(c.seed, c.nodes)).run();
  const ExperimentResults b =
      Experiment(scenarios::make_scale_config(c.seed, c.nodes)).run();
  EXPECT_EQ(a.updates_transmitted, b.updates_transmitted);
  EXPECT_EQ(a.ledger.total(), b.ledger.total());
  EXPECT_EQ(a.flooding_total, b.flooding_total);
  EXPECT_DOUBLE_EQ(a.coverage_pct.mean(), b.coverage_pct.mean());
  EXPECT_DOUBLE_EQ(a.overshoot_pct.mean(), b.overshoot_pct.mean());
  EXPECT_DOUBLE_EQ(a.receive_pct.mean(), b.receive_pct.mean());
  EXPECT_EQ(a.node_tx, b.node_tx);
}

std::string scale_case_name(const ::testing::TestParamInfo<ScaleCase>& info) {
  return "seed" + std::to_string(info.param.seed) + "_n" +
         std::to_string(info.param.nodes);
}

INSTANTIATE_TEST_SUITE_P(Grid, ScaleMatrix, ::testing::ValuesIn(scale_cases()),
                         scale_case_name);

TEST(ScaleMatrixCross, ScaledPlacementsStayConnectedAndTreeCoversNetwork) {
  // 2 000 nodes — the acceptance-scale topology — places, connects, and
  // the communication tree spans every node (placement-time guarantee).
  sim::Rng rng(42);
  const net::Topology topo =
      net::random_connected(net::scaled_placement(2000), rng);
  EXPECT_EQ(topo.size(), 2000u);
  EXPECT_TRUE(topo.is_connected());
  const net::SpanningTree tree(topo, 0);
  EXPECT_EQ(tree.size(), 2000u);
  EXPECT_EQ(tree.bfs_order().size(), 2000u);
}

}  // namespace
}  // namespace dirq::core

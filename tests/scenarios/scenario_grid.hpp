// Single source of truth for the scenario regression grid: the
// seeds x topology-size x loss-rate axes and the experiment config every
// cell runs under. Included by both the golden-checked test
// (scenario_matrix_test.cpp) and the regenerator tool
// (tools/scenario_goldens.cpp) so the two can never drift apart.
#pragma once

#include <cstddef>
#include <cstdint>

#include "core/experiment.hpp"

namespace dirq::scenarios {

inline constexpr std::uint64_t kSeeds[] = {1, 42, 1337};
inline constexpr std::size_t kNodeCounts[] = {30, 50};
inline constexpr double kLossRates[] = {0.0, 0.15};

inline constexpr std::int64_t kEpochs = 1200;
inline constexpr std::int64_t kQueryPeriod = 20;

inline core::ExperimentConfig make_config(std::uint64_t seed,
                                          std::size_t nodes, double loss) {
  core::ExperimentConfig cfg;
  cfg.seed = seed;
  cfg.placement.node_count = nodes;
  cfg.epochs = kEpochs;
  cfg.query_period = kQueryPeriod;
  cfg.loss_rate = loss;
  cfg.network.mode = core::NetworkConfig::ThetaMode::Fixed;
  cfg.network.fixed_pct = 5.0;
  cfg.keep_records = false;
  return cfg;
}

/// Visits every grid cell in the canonical order (the order of the golden
/// table rows): seeds outermost, then node counts, then loss rates.
template <typename Fn>
void for_each_cell(Fn&& fn) {
  for (std::uint64_t seed : kSeeds) {
    for (std::size_t nodes : kNodeCounts) {
      for (double loss : kLossRates) {
        fn(seed, nodes, loss);
      }
    }
  }
}

// --- LMAC tier ------------------------------------------------------------
// Same experiment, but queries and updates ride the TDMA slot schedule
// (TransportKind::Lmac): one sensing epoch per LMAC frame, multi-frame
// query dissemination, MAC-timeout death detection. A smaller seed axis
// keeps the tier fast under asan; the loss axis is shared so CRC loss is
// exercised on both backends.

inline constexpr std::uint64_t kLmacSeeds[] = {1, 42};

inline core::ExperimentConfig make_lmac_config(std::uint64_t seed,
                                               std::size_t nodes,
                                               double loss) {
  core::ExperimentConfig cfg = make_config(seed, nodes, loss);
  cfg.transport = core::TransportKind::Lmac;
  return cfg;
}

template <typename Fn>
void for_each_lmac_cell(Fn&& fn) {
  for (std::uint64_t seed : kLmacSeeds) {
    for (std::size_t nodes : kNodeCounts) {
      for (double loss : kLossRates) {
        fn(seed, nodes, loss);
      }
    }
  }
}

// --- multi-attribute tier --------------------------------------------------
// The query mix blends conjunctive multi-attribute queries into the
// single-range stream (ExperimentConfig::multi_attr_fraction /
// multi_attr_count). Golden coverage here keeps the mix axis on the same
// determinism leash as the loss and transport axes: any drift in the
// multi-attr substream layout or the MultiQuery dissemination path fails
// loudly. 30-node cells only — the tier guards the mix, not the topology.

inline constexpr std::uint64_t kMultiSeeds[] = {1, 42};
inline constexpr double kMultiFractions[] = {0.3, 1.0};
inline constexpr std::size_t kMultiCounts[] = {2, 3};

inline core::ExperimentConfig make_multi_config(std::uint64_t seed,
                                                double fraction,
                                                std::size_t count) {
  core::ExperimentConfig cfg = make_config(seed, 30, 0.0);
  cfg.multi_attr_fraction = fraction;
  cfg.multi_attr_count = count;
  return cfg;
}

template <typename Fn>
void for_each_multi_cell(Fn&& fn) {
  for (std::uint64_t seed : kMultiSeeds) {
    for (double fraction : kMultiFractions) {
      for (std::size_t count : kMultiCounts) {
        fn(seed, fraction, count);
      }
    }
  }
}

// --- large-topology tier ---------------------------------------------------
// Scaled placements (density-preserving area, lifted k/d bounds) at sizes
// the paper never reaches. Short runs — the tier guards the scaling path
// (spatial-index link construction, cached traversals, flat hot state)
// structurally and for determinism; exact goldens stay with the 30/50-node
// tiers where they are cheap to regenerate.

inline constexpr std::size_t kScaleNodeCounts[] = {200, 500};
inline constexpr std::int64_t kScaleEpochs = 400;

inline core::ExperimentConfig make_scale_config(std::uint64_t seed,
                                                std::size_t nodes) {
  core::ExperimentConfig cfg;
  cfg.seed = seed;
  cfg.placement = net::scaled_placement(nodes);
  cfg.epochs = kScaleEpochs;
  cfg.query_period = kQueryPeriod;
  cfg.network.mode = core::NetworkConfig::ThetaMode::Fixed;
  cfg.network.fixed_pct = 5.0;
  cfg.keep_records = false;
  return cfg;
}

template <typename Fn>
void for_each_scale_cell(Fn&& fn) {
  for (std::uint64_t seed : {std::uint64_t{1}, std::uint64_t{42}}) {
    for (std::size_t nodes : kScaleNodeCounts) {
      fn(seed, nodes);
    }
  }
}

}  // namespace dirq::scenarios

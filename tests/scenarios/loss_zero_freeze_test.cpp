// Loss-zero freeze tier: pins the loss_rate=0 experiment output to the
// exact summaries produced BEFORE the lossy channel moved from a
// sequential sim::Rng stream to counter-mode drop decisions
// (sim::CounterRng, one pure verdict per (tree, from, to, seq)). That
// migration deliberately re-rolled every loss>0 golden — the scenario
// matrix tiers were regenerated once for it — but a loss_rate=0 run never
// consults the channel, so its output had no licence to move. These
// literals are the pre-migration summaries, captured verbatim; if either
// comparison fails, the zero-loss path picked up an accidental RNG or
// accounting perturbation.
//
// Exact bytes are libstdc++-specific (the workload stream uses
// std::uniform_real_distribution et al.); other standard libraries skip.
#include <gtest/gtest.h>

#include <string>

#include "core/experiment.hpp"
#include "scenarios/scenario_grid.hpp"
#include "sweep/sink.hpp"

namespace dirq::core {
namespace {

#if defined(__GLIBCXX__)

// `dirq::sweep::summarize` of make_config(seed=1, nodes=30, loss=0.0),
// recorded at the commit immediately before the counter-mode loss channel
// landed. Do NOT regenerate with current code — the point is that current
// code must still emit these bytes.
constexpr const char* kFrozenInstant =
    "ledger=543,934,1953,1953,69,157\n"
    "flooding_total=8732\n"
    "mac_control_total=0\n"
    "cost_ratio=0.6423499770957398\n"
    "queries=59\n"
    "updates_transmitted=1953\n"
    "samples=80400/0\n"
    "overshoot_pct=count:59,mean:28.72477804681195,stddev:21.75600541394034,"
    "min:0,max:91.66666666666667\n"
    "should_pct=count:59,mean:42.54821741671536,stddev:2.1632677408909093,"
    "min:41.37931034482759,max:51.724137931034484\n"
    "receive_pct=count:59,mean:54.58796025715955,stddev:9.225483821099072,"
    "min:41.37931034482759,max:79.3103448275862\n"
    "source_pct=count:59,mean:27.761542957334893,stddev:6.29855464130969,"
    "min:17.24137931034483,max:37.93103448275862\n"
    "wrong_pct=count:59,mean:12.156633547632962,stddev:9.164186714904146,"
    "min:0,max:37.93103448275862\n"
    "coverage_pct=count:59,mean:99.7392438070404,stddev:1.9858600015290508,"
    "min:84.61538461538461,max:100\n"
    "source_overshoot_pct=count:59,mean:50.45815295815296,"
    "stddev:32.83220043482444,min:0,max:142.85714285714286\n"
    "source_coverage_pct=count:59,mean:99.75786924939469,"
    "stddev:1.8440128585626863,min:85.71428571428571,max:100\n"
    "updates_per_bin=322,179,91,21,177,249,242,157,77,34,157,247\n"
    "umax_per_hour=9450\n"
    "ehr_per_hour=180\n"
    "theta_pct_series=5,5,5,5,5,5,5,5,5,5,5,5\n"
    "node_tx=60,82,158,183,135,46,4,119,31,180,157,116,122,38,72,4,70,69,"
    "131,47,33,18,68,51,3,155,166,155,51,41\n"
    "node_rx=593,70,170,348,143,24,16,91,16,177,221,96,110,31,33,9,44,34,"
    "157,23,17,11,52,26,11,188,141,142,21,29\n"
    "records=0\n";

// Same cell on the LMAC transport (make_lmac_config(1, 30, 0.0)).
constexpr const char* kFrozenLmac =
    "ledger=542,931,1940,1939,69,157\n"
    "flooding_total=8732\n"
    "mac_control_total=177600\n"
    "cost_ratio=0.6387998167659185\n"
    "queries=59\n"
    "updates_transmitted=1940\n"
    "samples=80400/0\n"
    "overshoot_pct=count:59,mean:28.583535108958838,stddev:21.64418852213515,"
    "min:0,max:91.66666666666667\n"
    "should_pct=count:59,mean:42.54821741671536,stddev:2.1632677408909093,"
    "min:41.37931034482759,max:51.724137931034484\n"
    "receive_pct=count:59,mean:54.412624196376406,stddev:9.223632318115955,"
    "min:41.37931034482759,max:79.3103448275862\n"
    "source_pct=count:59,mean:27.761542957334893,stddev:6.29855464130969,"
    "min:17.24137931034483,max:37.93103448275862\n"
    "wrong_pct=count:59,mean:12.098188194038578,stddev:9.120471865870796,"
    "min:0,max:37.93103448275862\n"
    "coverage_pct=count:59,mean:99.51325510647541,stddev:2.605359057916422,"
    "min:84.61538461538461,max:100\n"
    "source_overshoot_pct=count:59,mean:50.246288551373304,"
    "stddev:32.63220964095572,min:0,max:142.85714285714286\n"
    "source_coverage_pct=count:59,mean:99.603786044464,"
    "stddev:2.168589779749122,min:85.71428571428571,max:100\n"
    "updates_per_bin=312,175,91,21,176,250,241,158,77,34,159,246\n"
    "umax_per_hour=9450\n"
    "ehr_per_hour=180\n"
    "theta_pct_series=5,5,5,5,5,5,5,5,5,5,5,5\n"
    "node_tx=60,83,157,183,132,46,4,120,31,179,154,111,122,38,72,4,70,69,"
    "130,47,33,18,68,51,3,158,166,150,51,41\n"
    "node_rx=589,70,165,348,142,24,16,91,16,176,221,96,110,30,33,9,44,34,"
    "157,22,17,11,52,26,11,189,141,137,21,29\n"
    "records=0\n";

TEST(LossZeroFreeze, InstantSummaryMatchesPreMigrationBytes) {
  const ExperimentResults res =
      Experiment(scenarios::make_config(1, 30, 0.0)).run();
  EXPECT_EQ(sweep::summarize(res), kFrozenInstant);
}

TEST(LossZeroFreeze, LmacSummaryMatchesPreMigrationBytes) {
  const ExperimentResults res =
      Experiment(scenarios::make_lmac_config(1, 30, 0.0)).run();
  EXPECT_EQ(sweep::summarize(res), kFrozenLmac);
}

#else

TEST(LossZeroFreeze, SkippedOnNonLibstdcxx) {
  GTEST_SKIP() << "frozen summaries are libstdc++-specific";
}

#endif  // defined(__GLIBCXX__)

}  // namespace
}  // namespace dirq::core

// Property suites: protocol invariants swept across seeds (parameterised).
//
// These are the guarantees DirQ's correctness argument rests on, checked
// on a fresh random world per seed:
//   P1  dissemination reaches a root-connected set (no teleporting queries)
//   P2  believed sources are always a subset of the delivered set
//   P3  query cost decomposes exactly into transmissions + receptions
//   P4  the simulated flood equals the Eq. (3) closed form
//   P5  update traffic is monotonically non-increasing in theta
//   P6  identical seeds give identical runs (determinism)
//   P7  LMAC slot assignments stay 2-hop exclusive through churn
//   P8  after tree repair, every alive node is reachable and announced
#include <gtest/gtest.h>

#include <set>

#include "core/experiment.hpp"
#include "core/flooding.hpp"
#include "core/network.hpp"
#include "mac/lmac.hpp"
#include "net/placement.hpp"
#include "query/workload.hpp"
#include "sim/rng.hpp"
#include "sim/scheduler.hpp"

namespace dirq {
namespace {

struct World {
  net::Topology topo;
  data::Environment env;
  core::DirqNetwork net;

  explicit World(std::uint64_t seed, double theta_pct = 5.0)
      : topo(make(seed)),
        env(topo, 4, sim::Rng(seed).substream("env")),
        net(topo, 0, cfg(theta_pct)) {}

  static net::Topology make(std::uint64_t seed) {
    sim::Rng rng(seed);
    return net::random_connected(net::RandomPlacementConfig{}, rng);
  }
  static core::NetworkConfig cfg(double pct) {
    core::NetworkConfig c;
    c.fixed_pct = pct;
    return c;
  }
  void settle(std::int64_t epochs) {
    for (std::int64_t e = 0; e < epochs; ++e) {
      env.advance_to(e);
      net.process_epoch(env, e);
    }
  }
};

class SeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedSweep, P1_ReceivedSetIsRootConnected) {
  World w(GetParam());
  w.settle(30);
  query::WorkloadGenerator gen(w.topo, w.net.tree(), w.env,
                               query::WorkloadConfig{0.4, 0.02},
                               sim::Rng(GetParam()).substream("wl"));
  for (int i = 0; i < 20; ++i) {
    const core::QueryOutcome out = w.net.inject(gen.next(30), 30);
    const std::set<NodeId> received(out.received.begin(), out.received.end());
    for (NodeId u : out.received) {
      const NodeId p = w.net.tree().parent(u);
      EXPECT_TRUE(p == w.net.root() || received.contains(p))
          << "node " << u << " received without its parent " << p;
    }
  }
}

TEST_P(SeedSweep, P2_BelievedSubsetOfReceived) {
  World w(GetParam());
  w.settle(30);
  query::WorkloadGenerator gen(w.topo, w.net.tree(), w.env,
                               query::WorkloadConfig{0.4, 0.02},
                               sim::Rng(GetParam()).substream("wl"));
  for (int i = 0; i < 20; ++i) {
    const core::QueryOutcome out = w.net.inject(gen.next(30), 30);
    EXPECT_TRUE(std::includes(out.received.begin(), out.received.end(),
                              out.believed_sources.begin(),
                              out.believed_sources.end()));
  }
}

TEST_P(SeedSweep, P3_QueryCostDecomposition) {
  World w(GetParam());
  w.settle(30);
  query::WorkloadGenerator gen(w.topo, w.net.tree(), w.env,
                               query::WorkloadConfig{0.4, 0.02},
                               sim::Rng(GetParam()).substream("wl"));
  for (int i = 0; i < 20; ++i) {
    const core::QueryOutcome out = w.net.inject(gen.next(30), 30);
    // Cost = (#nodes that transmitted, i.e. root + received nodes with at
    // least one forwarded child) + (#receptions = |received|). Receptions
    // follow directly; transmissions are bounded by the internal nodes of
    // the received set + 1 (root).
    const auto rx = static_cast<CostUnits>(out.received.size());
    EXPECT_GE(out.cost, rx);
    EXPECT_LE(out.cost, rx + static_cast<CostUnits>(out.received.size()) + 1);
  }
}

TEST_P(SeedSweep, P4_FloodMatchesClosedForm) {
  sim::Rng rng(GetParam());
  net::Topology topo = net::random_connected(net::RandomPlacementConfig{}, rng);
  core::FloodingScheme flood(topo);
  EXPECT_EQ(flood.flood_from(0).cost(), flood.analytical_cost());
}

TEST_P(SeedSweep, P5_UpdateTrafficMonotoneInTheta) {
  std::int64_t prev = std::numeric_limits<std::int64_t>::max();
  for (double pct : {2.0, 4.0, 8.0}) {
    World w(GetParam(), pct);
    w.settle(400);
    EXPECT_LE(w.net.updates_transmitted(), prev) << "theta " << pct;
    prev = w.net.updates_transmitted();
  }
}

TEST_P(SeedSweep, P6_Determinism) {
  World a(GetParam()), b(GetParam());
  a.settle(100);
  b.settle(100);
  EXPECT_EQ(a.net.updates_transmitted(), b.net.updates_transmitted());
  EXPECT_EQ(a.net.costs().update_cost(), b.net.costs().update_cost());
  for (SensorType t : a.topo.sensor_types_present()) {
    const auto* ta = a.net.node(0).table(t);
    const auto* tb = b.net.node(0).table(t);
    ASSERT_EQ(ta == nullptr, tb == nullptr);
    if (ta != nullptr) {
      EXPECT_DOUBLE_EQ(ta->aggregate()->min, tb->aggregate()->min);
      EXPECT_DOUBLE_EQ(ta->aggregate()->max, tb->aggregate()->max);
    }
  }
}

TEST_P(SeedSweep, P7_LmacSlotsStayTwoHopExclusiveThroughChurn) {
  sim::Rng rng(GetParam());
  net::RandomPlacementConfig pcfg;
  pcfg.node_count = 25;
  net::Topology topo = net::random_connected(pcfg, rng);
  sim::Scheduler sched;
  mac::LmacConfig mcfg;
  mcfg.slots_per_frame = 32;
  mac::LmacNetwork mac(sched, topo, mcfg);
  mac.start();
  sched.run_until(5 * mcfg.frame_ticks());

  // Kill a leaf-ish node, add a newcomer, let the MAC settle.
  topo.kill_node(static_cast<NodeId>(1 + rng.index(topo.size() - 1)));
  net::Node fresh;
  fresh.x = topo.node(2).x + 1.0;
  fresh.y = topo.node(2).y;
  topo.add_node(fresh);
  sched.run_until(sched.now() + 10 * mcfg.frame_ticks());

  for (NodeId u = 0; u < topo.size(); ++u) {
    if (!topo.is_alive(u) || mac.slot_of(u) == mac::kNoSlot) continue;
    for (NodeId v : topo.neighbors(u)) {
      if (mac.slot_of(v) != mac::kNoSlot) {
        EXPECT_NE(mac.slot_of(u), mac.slot_of(v)) << u << " vs " << v;
      }
      for (NodeId x : topo.neighbors(v)) {
        if (x != u && mac.slot_of(x) != mac::kNoSlot) {
          EXPECT_NE(mac.slot_of(u), mac.slot_of(x)) << u << " vs " << x;
        }
      }
    }
  }
}

TEST_P(SeedSweep, P8_TreeRepairKeepsNetworkQueryable) {
  World w(GetParam());
  w.settle(30);
  sim::Rng rng(GetParam() * 31 + 7);
  // Kill three random non-root nodes, repairing after each.
  for (int k = 0; k < 3; ++k) {
    std::vector<NodeId> alive;
    for (const net::Node& n : w.topo.nodes()) {
      if (n.alive && n.id != 0) alive.push_back(n.id);
    }
    const NodeId victim = alive[rng.index(alive.size())];
    w.topo.kill_node(victim);
    if (!w.topo.is_connected()) continue;  // partition: nothing to assert
    w.net.handle_node_death(victim, 31 + k);
    // Every alive node must be back in the tree...
    for (const net::Node& n : w.topo.nodes()) {
      if (n.alive) {
        EXPECT_TRUE(w.net.tree().in_tree(n.id)) << "node " << n.id;
      }
    }
    // ...and an all-matching query must reach every capable node.
    query::RangeQuery q{static_cast<QueryId>(900 + k), kSensorTemperature,
                        -1e9, 1e9, 40};
    const core::QueryOutcome out = w.net.inject(q, 40);
    const query::Involvement truth =
        query::compute_involvement(q, w.topo, w.net.tree(), w.env);
    const metrics::QueryAudit audit =
        metrics::audit_query(truth.involved, out.received);
    EXPECT_EQ(audit.missed, 0u) << "after death " << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

}  // namespace
}  // namespace dirq

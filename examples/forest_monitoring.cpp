// Forest-monitoring scenario — the paper's Section 3 application.
//
// A 50-node environmental network serves a mixed user population
// (researchers, students, the public) whose query load varies over the
// day. The gateway predicts the hourly query count (EHr) from history and
// DirQ's ATC adapts every node's threshold autonomously: busy hours buy
// accuracy with more updates, quiet hours conserve energy.
//
//   $ ./forest_monitoring
#include <iostream>

#include "dirq/dirq.hpp"

int main() {
  using namespace dirq;

  sim::Rng rng(7);
  net::Topology topo = net::random_connected(net::RandomPlacementConfig{}, rng);
  data::Environment env(topo, 4, rng.substream("environment"));

  core::NetworkConfig cfg;
  cfg.mode = core::NetworkConfig::ThetaMode::Atc;
  core::DirqNetwork network(topo, 0, cfg);
  core::FloodingScheme flooding(topo);
  query::QueryRatePredictor predictor(0.4, kEpochsPerHour);
  query::WorkloadGenerator workload(topo, network.tree(), env,
                                    query::WorkloadConfig{0.4, 0.02},
                                    rng.substream("workload"));
  sim::Rng arrivals = rng.substream("arrivals");

  // Diurnal user demand: queries arrive with a period that swings between
  // one per 10 epochs (daytime peak) and one per 80 epochs (night).
  const auto query_period = [](std::int64_t epoch) {
    const double day = static_cast<double>(epoch % (2 * kEpochsPerHour)) /
                       static_cast<double>(2 * kEpochsPerHour);
    return static_cast<std::int64_t>(10.0 + 70.0 * (0.5 + 0.5 * std::cos(
                                                        6.283185 * day)));
  };

  metrics::Table table({"hour", "EHr_predicted", "queries_actual",
                        "updates_sent", "mean_theta_%", "dirq_cost",
                        "flood_equiv", "ratio"});

  std::int64_t next_query = 20;
  std::int64_t queries_this_hour = 0;
  std::int64_t updates_at_hour_start = 0;
  CostUnits cost_at_hour_start = 0;
  CostUnits flood_equiv = 0;
  const std::int64_t total_epochs = 6 * kEpochsPerHour;  // six hours

  for (std::int64_t epoch = 0; epoch < total_epochs; ++epoch) {
    env.advance_to(epoch);
    if (epoch % kEpochsPerHour == 0) {
      const double ehr = predictor.completed_hours() > 0
                             ? predictor.predict_next_hour()
                             : 180.0;
      network.broadcast_ehr(ehr, epoch);
      queries_this_hour = 0;
      updates_at_hour_start = network.updates_transmitted();
      cost_at_hour_start = network.costs().total();
      flood_equiv = 0;
    }
    network.process_epoch(env, epoch);
    if (epoch == next_query) {
      const query::RangeQuery q = workload.next(epoch);
      predictor.record_query(epoch);
      (void)network.inject(q, epoch);
      ++queries_this_hour;
      flood_equiv += flooding.analytical_cost();
      next_query = epoch + query_period(epoch) +
                   arrivals.uniform_int(-3, 3);  // jittered arrivals
    }
    if ((epoch + 1) % kEpochsPerHour == 0) {
      double theta_sum = 0.0;
      std::size_t n = 0;
      for (NodeId u : network.tree().bfs_order()) {
        if (u == network.root()) continue;
        theta_sum += network.node(u).controller().theta_pct(kSensorTemperature);
        ++n;
      }
      const CostUnits dirq_cost = network.costs().total() - cost_at_hour_start;
      table.add_row(
          {std::to_string(epoch / kEpochsPerHour),
           metrics::fmt(predictor.predict_next_hour(), 0),
           std::to_string(queries_this_hour),
           std::to_string(network.updates_transmitted() - updates_at_hour_start),
           metrics::fmt(theta_sum / static_cast<double>(n)),
           std::to_string(dirq_cost), std::to_string(flood_equiv),
           flood_equiv > 0
               ? metrics::fmt(static_cast<double>(dirq_cost) /
                                  static_cast<double>(flood_equiv),
                              2)
               : "-"});
    }
  }

  std::cout << "Six simulated hours of forest monitoring under diurnal user "
               "demand\n(ATC adapts thresholds to the predicted load):\n\n";
  table.print(std::cout);
  std::cout << "\nNote how update spend tracks the query load while the "
               "hourly cost ratio stays\nwell under 1.0 (flooding).\n";
  return 0;
}

// Adaptive Threshold Control up close — the paper's §6 / Fig. 6 behaviour
// at node granularity.
//
// Runs the standard network under ATC while the query load steps up and
// down, and prints how individual nodes' thresholds move autonomously:
// a node sitting on a volatile light field behaves differently from one on
// placid soil moisture, using only locally available information.
//
//   $ ./adaptive_thresholds
#include <iostream>

#include "dirq/dirq.hpp"

int main() {
  using namespace dirq;

  sim::Rng rng(23);
  net::Topology topo = net::random_connected(net::RandomPlacementConfig{}, rng);
  data::Environment env(topo, 4, rng.substream("environment"));

  core::NetworkConfig cfg;
  cfg.mode = core::NetworkConfig::ThetaMode::Atc;
  core::DirqNetwork net(topo, 0, cfg);
  query::WorkloadGenerator workload(topo, net.tree(), env,
                                    query::WorkloadConfig{0.4, 0.02},
                                    rng.substream("workload"));
  // A responsive predictor (alpha 0.7) keeps the EHr estimate within about
  // an hour of an abrupt load change; the budget necessarily lags by that
  // much (the root can only predict from history, paper §3).
  query::QueryRatePredictor predictor(0.7, kEpochsPerHour);

  // Pick two contrasting reporter nodes: one with a light sensor (fast
  // diurnal field) and one with soil moisture (almost static field).
  NodeId light_node = kNoNode, soil_node = kNoNode;
  for (const net::Node& n : topo.nodes()) {
    if (n.id == 0) continue;
    if (light_node == kNoNode && n.has_sensor(kSensorLight)) light_node = n.id;
    if (soil_node == kNoNode && n.has_sensor(kSensorSoilMoisture) &&
        !n.has_sensor(kSensorLight)) {
      soil_node = n.id;
    }
  }
  std::cout << "reporters: node " << light_node << " (light), node "
            << soil_node << " (soil moisture)\n\n";

  // Load profile: hours 0-1 normal (1 query / 20 epochs), hours 2-3 heavy
  // (1 / 5), hours 4-7 idle (1 / 100). EHr predictions follow with about
  // one hour of lag, and ATC re-budgets every hour.
  const auto period_for_hour = [](std::int64_t hour) -> std::int64_t {
    if (hour < 2) return 20;
    if (hour < 4) return 5;
    return 100;
  };

  metrics::Table table({"hour", "query_period", "EHr", "updates/hr",
                        "theta(light_node)%", "theta(soil_node)%", "net_mean%"});

  std::int64_t updates_at_start = 0;
  const std::int64_t hours = 8;
  for (std::int64_t epoch = 0; epoch < hours * kEpochsPerHour; ++epoch) {
    env.advance_to(epoch);
    const std::int64_t hour = epoch / kEpochsPerHour;
    if (epoch % kEpochsPerHour == 0) {
      const double ehr =
          predictor.completed_hours() > 0
              ? predictor.predict_next_hour()
              : static_cast<double>(kEpochsPerHour) /
                    static_cast<double>(period_for_hour(0));
      net.broadcast_ehr(ehr, epoch);
      updates_at_start = net.updates_transmitted();
    }
    net.process_epoch(env, epoch);
    if (epoch > 0 && epoch % period_for_hour(hour) == 0) {
      (void)net.inject(workload.next(epoch), epoch);
      predictor.record_query(epoch);
    }
    if ((epoch + 1) % kEpochsPerHour == 0) {
      double mean = 0.0;
      std::size_t n = 0;
      for (NodeId u : net.tree().bfs_order()) {
        if (u == net.root()) continue;
        mean += net.node(u).controller().theta_pct(kSensorTemperature);
        ++n;
      }
      const auto& light_ctl = net.node(light_node).controller();
      const auto& soil_ctl = net.node(soil_node).controller();
      table.add_row(
          {std::to_string(hour), std::to_string(period_for_hour(hour)),
           metrics::fmt(predictor.predict_next_hour(), 0),
           std::to_string(net.updates_transmitted() - updates_at_start),
           metrics::fmt(light_ctl.theta_pct(kSensorLight)),
           metrics::fmt(soil_ctl.theta_pct(kSensorSoilMoisture)),
           metrics::fmt(mean / static_cast<double>(n))});
    }
  }

  table.print(std::cout);
  std::cout << "\nHeavy-load hours (2-3) raise the EHr estimate -> bigger "
               "update budget -> thresholds\nnarrow for accuracy. The switch "
               "to idle at hour 4 reaches the budget with about an\nhour of "
               "prediction lag (the root can only extrapolate history), after "
               "which\nthresholds widen again to save energy. The volatile "
               "light field holds a wider\ntheta than the placid soil field "
               "at the same node budget — all decisions from\nlocally "
               "available information only.\n";
  return 0;
}

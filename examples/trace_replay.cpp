// Trace record/replay: capture the synthetic environment to a TSV file,
// reload it, and drive an identical experiment from the file — the path a
// user takes to run DirQ against real deployment data.
//
//   $ ./trace_replay [trace.tsv]
#include <fstream>
#include <iostream>
#include <sstream>

#include "dirq/dirq.hpp"

int main(int argc, char** argv) {
  using namespace dirq;
  const std::string path = argc > 1 ? argv[1] : "/tmp/dirq_trace.tsv";

  // 1. Record 2 000 epochs of the live synthetic environment.
  sim::Rng rng(99);
  net::RandomPlacementConfig pcfg;
  pcfg.node_count = 30;
  net::Topology topo = net::random_connected(pcfg, rng);
  data::Environment env(topo, 4, rng.substream("environment"));
  data::Trace trace = data::record(env, topo.size(), 2000);
  {
    std::ofstream out(path);
    trace.save(out);
  }
  std::cout << "recorded " << trace.epoch_count() << " epochs x "
            << trace.node_count() << " nodes x " << trace.type_count()
            << " types -> " << path << "\n";

  // 2. Reload from disk.
  data::Trace replay = [&] {
    std::ifstream in(path);
    return data::Trace::load(in);
  }();

  // 3. Drive two identical networks: one from the live environment
  //    (rewound via a fresh instance), one from the replayed file.
  auto run = [&](data::ReadingSource& source) {
    sim::Rng r2(99);
    net::Topology t2 = net::random_connected(pcfg, r2);
    core::NetworkConfig cfg;
    cfg.fixed_pct = 5.0;
    core::DirqNetwork net(t2, 0, cfg);
    for (std::int64_t e = 0; e < 2000; ++e) {
      source.advance_to(e);
      net.process_epoch(source, e);
    }
    return std::pair{net.updates_transmitted(), net.costs().update_cost()};
  };

  sim::Rng rng_live(99);
  net::Topology topo_live = net::random_connected(pcfg, rng_live);
  data::Environment env_live(topo_live, 4, rng_live.substream("environment"));
  const auto [live_updates, live_cost] = run(env_live);
  const auto [replay_updates, replay_cost] = run(replay);

  std::cout << "live environment : " << live_updates << " updates, cost "
            << live_cost << "\n"
            << "trace replay     : " << replay_updates << " updates, cost "
            << replay_cost << "\n"
            << (live_updates == replay_updates && live_cost == replay_cost
                    ? "bit-identical protocol run — replace the TSV with real "
                      "deployment data to study DirQ on it\n"
                    : "MISMATCH (should not happen)\n");
  return live_updates == replay_updates ? 0 : 1;
}

// Quickstart: build the paper's 50-node network, let DirQ settle, pose one
// range query, and compare the directed dissemination against flooding.
//
//   $ ./quickstart
//
// Walks through the whole public API in ~60 lines: placement, environment,
// DirqNetwork, workload, audit, flooding baseline.
#include <iostream>

#include "dirq/dirq.hpp"

int main() {
  using namespace dirq;

  // 1. A connected 50-node deployment with heterogeneous sensor payloads
  //    (4 types), bounded by the paper's k = 8 / d = 10 tree limits.
  sim::Rng rng(/*seed=*/2026);
  net::Topology topo = net::random_connected(net::RandomPlacementConfig{}, rng);
  std::cout << "deployed " << topo.size() << " nodes, " << topo.link_count()
            << " links\n";

  // 2. The synthetic spatio-temporal environment (paper Section 7).
  data::Environment env(topo, 4, rng.substream("environment"));

  // 3. The DirQ protocol instance with Adaptive Threshold Control.
  core::NetworkConfig cfg;
  cfg.mode = core::NetworkConfig::ThetaMode::Atc;
  core::DirqNetwork network(topo, /*root=*/0, cfg);
  std::cout << "spanning tree: depth " << network.tree().max_depth()
            << ", max branching " << network.tree().max_branching() << "\n";

  // 4. Run 500 sensing epochs so range tables converge, with the hourly
  //    EHr broadcast priming the threshold controllers.
  network.broadcast_ehr(/*expected queries per hour=*/180.0, 0);
  for (std::int64_t epoch = 0; epoch < 500; ++epoch) {
    env.advance_to(epoch);
    network.process_epoch(env, epoch);
  }
  std::cout << "after 500 epochs: " << network.updates_transmitted()
            << " update messages transmitted\n\n";

  // 5. Pose a range query: "all temperature readings currently in a window
  //    that involves roughly 30% of the network".
  query::WorkloadGenerator workload(topo, network.tree(), env,
                                    query::WorkloadConfig{0.3, 0.02},
                                    rng.substream("workload"));
  const query::RangeQuery q = workload.next(500);
  std::cout << "injecting " << q.describe() << "\n";

  // 6. Direct it with DirQ and audit against ground truth.
  const query::Involvement truth =
      query::compute_involvement(q, topo, network.tree(), env);
  const core::QueryOutcome out = network.inject(q, 500);
  const metrics::QueryAudit audit =
      metrics::audit_query(truth.involved, out.received);
  std::cout << "  ground truth: " << truth.sources.size() << " sources, "
            << truth.involved.size() << " involved (sources+forwarders)\n"
            << "  DirQ delivered to " << out.received.size() << " nodes ("
            << out.believed_sources.size() << " answered), cost " << out.cost
            << " units\n"
            << "  coverage " << metrics::fmt(audit.coverage_pct())
            << "%, overshoot " << metrics::fmt(audit.overshoot_pct()) << "%\n";

  // 7. The baseline: flooding the same query costs Eq. (3).
  const core::FloodOutcome flood = core::FloodingScheme(topo).flood_from(0);
  std::cout << "  flooding the same query: cost " << flood.cost()
            << " units -> DirQ spent "
            << metrics::fmt(100.0 * static_cast<double>(out.cost) /
                            static_cast<double>(flood.cost()))
            << "% of that (dissemination only)\n";
  return 0;
}

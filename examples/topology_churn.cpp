// Topology churn over the real (simulated) LMAC — the paper's §4.2 story.
//
// DirQ runs over LMAC with the cross-layer hook wired up: when a node dies
// silently, its neighbours detect the loss by missing its TDMA control
// messages, notify DirQ, and the range tables + spanning tree repair
// themselves. A node added later joins LMAC by listening for a frame,
// claims a free slot, and announces its ranges up the tree. Queries keep
// routing correctly throughout.
//
//   $ ./topology_churn
#include <iostream>
#include <set>

#include "dirq/dirq.hpp"
#include "sim/scheduler.hpp"

using namespace dirq;

namespace {

void status(const char* phase, core::DirqNetwork& net,
            const net::Topology& topo) {
  std::cout << phase << ": " << topo.alive_count() << " alive nodes, tree "
            << net.tree().size() << " members, depth "
            << net.tree().max_depth() << "\n";
}

void probe_query(core::DirqNetwork& net, const net::Topology& topo,
                 const data::Environment& env, sim::Scheduler& sched,
                 mac::LmacNetwork& mac, std::int64_t epoch, QueryId id) {
  query::RangeQuery q{id, kSensorTemperature, 0.0, 100.0, epoch};
  const query::Involvement truth =
      query::compute_involvement(q, topo, net.tree(), env);
  net.inject_async(q, epoch);
  sched.run_until(sched.now() + 12 * mac.config().frame_ticks());
  const core::QueryOutcome out = net.collect_outcome();
  const metrics::QueryAudit audit =
      metrics::audit_query(truth.involved, out.received);
  std::cout << "  probe query reached " << out.received.size() << "/"
            << truth.involved.size()
            << " involved nodes (coverage " << metrics::fmt(audit.coverage_pct())
            << "%)\n";
}

}  // namespace

int main() {
  sim::Rng rng(11);
  net::RandomPlacementConfig pcfg;
  pcfg.node_count = 30;  // smaller network keeps the frame log readable
  net::Topology topo = net::random_connected(pcfg, rng);
  data::Environment env(topo, 4, rng.substream("environment"));

  sim::Scheduler sched;
  mac::LmacConfig mac_cfg;  // 32 slots x 32 ticks = 1 epoch per frame
  mac::LmacNetwork mac(sched, topo, mac_cfg);

  core::NetworkConfig cfg;
  cfg.mode = core::NetworkConfig::ThetaMode::Fixed;
  cfg.fixed_pct = 5.0;
  core::DirqNetwork net(topo, 0, cfg);
  core::LmacTransport transport(mac, static_cast<core::MessageSink&>(net));
  net.use_transport(transport);

  // Cross-layer wiring (paper §4.2): LMAC's timeout-based neighbour-death
  // notification triggers DirQ's tree/table repair.
  std::set<NodeId> handled;
  transport.set_on_neighbor_lost([&](NodeId self, NodeId dead) {
    if (handled.insert(dead).second) {
      std::cout << "  [cross-layer] node " << self << " timed out neighbour "
                << dead << " -> DirQ repairs tree + range tables\n";
      net.handle_node_death(dead, sched.now() / kTicksPerEpoch);
    }
  });
  mac.start();

  auto run_epochs = [&](std::int64_t epochs) {
    for (std::int64_t i = 0; i < epochs; ++i) {
      const std::int64_t epoch = sched.now() / kTicksPerEpoch;
      env.advance_to(epoch);
      net.process_epoch(env, epoch);
      sched.run_until(sched.now() + kTicksPerEpoch);
    }
  };

  status("bootstrap", net, topo);
  run_epochs(30);
  probe_query(net, topo, env, sched, mac, 30, 1);

  // --- silent node death ----------------------------------------------------
  const NodeId victim = net.tree().leaves().front();
  std::cout << "\nkilling node " << victim << " (a leaf) silently...\n";
  topo.kill_node(victim);
  run_epochs(10);  // timeout_frames = 4 frames < 10 epochs
  status("after death", net, topo);
  probe_query(net, topo, env, sched, mac, 40, 2);

  // --- node addition ----------------------------------------------------------
  std::cout << "\ndeploying a replacement node with a fresh soil sensor...\n";
  net::Node fresh;
  fresh.x = topo.node(victim).x + 1.0;
  fresh.y = topo.node(victim).y;
  fresh.sensors = {kSensorTemperature, kSensorSoilMoisture};
  const NodeId newcomer = topo.add_node(fresh);
  net.handle_node_addition(newcomer, sched.now() / kTicksPerEpoch);
  run_epochs(10);  // joiner listens one frame, claims a slot, announces
  std::cout << "  newcomer " << newcomer << " claimed LMAC slot "
            << mac.slot_of(newcomer) << ", tree parent "
            << net.tree().parent(newcomer) << "\n";
  status("after join", net, topo);
  probe_query(net, topo, env, sched, mac, 60, 3);

  // --- post-deployment sensor addition (paper §4.2 scalability) ---------------
  std::cout << "\nattaching a humidity sensor to node " << newcomer
            << " post-deployment...\n";
  topo.add_sensor(newcomer, kSensorHumidity);
  net.handle_sensor_added(newcomer, kSensorHumidity, sched.now() / kTicksPerEpoch);
  run_epochs(5);
  query::RangeQuery hq{4, kSensorHumidity, 0.0, 200.0, 65};
  net.inject_async(hq, 65);
  sched.run_until(sched.now() + 12 * mac_cfg.frame_ticks());
  const core::QueryOutcome out = net.collect_outcome();
  const bool reached = std::binary_search(out.received.begin(),
                                          out.received.end(), newcomer);
  std::cout << "  humidity query now reaches the new sensor: "
            << (reached ? "yes" : "no") << "\n";
  return reached ? 0 : 1;
}

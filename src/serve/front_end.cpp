#include "serve/front_end.hpp"

#include <stdexcept>
#include <utility>

namespace dirq::serve {

void FrontEndConfig::validate() const {
  if (inject_period <= 0) {
    throw std::invalid_argument("FrontEndConfig: inject_period must be > 0");
  }
  if (max_inject_per_boundary == 0) {
    throw std::invalid_argument(
        "FrontEndConfig: max_inject_per_boundary must be > 0");
  }
  if (max_queue == 0) {
    throw std::invalid_argument("FrontEndConfig: max_queue must be > 0");
  }
  if (cache_enabled && cache_entries == 0) {
    throw std::invalid_argument("FrontEndConfig: cache_entries must be > 0");
  }
  if (stale_epochs < 0) {
    throw std::invalid_argument("FrontEndConfig: stale_epochs must be >= 0");
  }
}

FrontEnd::FrontEnd(FrontEndConfig cfg, core::DirqNetwork& network,
                   core::QueryAdmission& admission)
    : cfg_(cfg),
      network_(network),
      admission_(admission),
      cache_(cfg.cache_enabled ? cfg.cache_entries : 1, cfg.stale_epochs),
      sink_latency_(network.tree_count()),
      sink_injected_(network.tree_count(), 0) {
  cfg_.validate();
  network_.set_query_done_hook([this](const core::QueryOutcome& outcome) {
    last_outcome_ = outcome;
    outcome_valid_ = true;
  });
}

void FrontEnd::offer(const Arrival& a) {
  ++totals_.arrived;
  if (queue_.size() >= cfg_.max_queue) {
    ++totals_.shed;
    return;
  }
  queue_.push_back(a);
  const auto depth = static_cast<std::int64_t>(queue_.size());
  if (depth > totals_.peak_queue_depth) totals_.peak_queue_depth = depth;
}

void FrontEnd::on_boundary(std::int64_t epoch) {
  std::size_t budget = cfg_.max_inject_per_boundary;
  while (!queue_.empty()) {
    const Arrival& head = queue_.front();
    const bool cacheable = !head.multi && !head.range.region.has_value();
    if (cacheable && cfg_.cache_enabled) {
      CacheLookup hit =
          cache_.lookup(head.range.type, head.range.lo, head.range.hi, epoch,
                        network_.updates_transmitted());
      if (hit.kind != CacheLookup::Kind::Miss) {
        record_answer(head, epoch, hit.tree);
        ++totals_.cache_answered;
        queue_.pop_front();
        continue;  // hits never consume the injection budget
      }
    }
    if (budget == 0) break;  // strict FIFO: nothing overtakes the head
    --budget;
    if (!cacheable) cache_.note_uncacheable();
    const Arrival a = queue_.front();
    queue_.pop_front();
    inject_and_account(a, epoch);
  }
}

void FrontEnd::inject_and_account(const Arrival& a, std::int64_t epoch) {
  // Same discipline as the batch driver: refresh every sink's load from
  // its ledger mirror, then let admission pick the sink.
  for (TreeId t = 0; t < static_cast<TreeId>(network_.tree_count()); ++t) {
    admission_.sync_load(t, network_.tree_ledger(t).total());
  }
  const TreeId routed = admission_.route();
  if (on_injected_) on_injected_(routed, epoch);
  outcome_valid_ = false;
  if (a.multi) {
    query::MultiQuery q = a.multi_q;
    q.id = next_id_++;
    q.epoch = epoch;
    network_.inject(routed, q, epoch);
  } else {
    query::RangeQuery q = a.range;
    q.id = next_id_++;
    q.epoch = epoch;
    network_.inject(routed, q, epoch);
    if (outcome_valid_ && cfg_.cache_enabled) {
      capture_entry(q, last_outcome_, epoch);
    }
  }
  if (!outcome_valid_) {
    throw std::logic_error(
        "FrontEnd: query-done hook did not fire (hook overwritten?)");
  }
  admission_.note_cost(routed, last_outcome_.cost);
  ++totals_.injected;
  ++sink_injected_.at(routed);
  record_answer(a, epoch, routed);
}

void FrontEnd::capture_entry(const query::RangeQuery& q,
                             const core::QueryOutcome& outcome,
                             std::int64_t epoch) {
  std::vector<CachedSource> sources;
  sources.reserve(outcome.believed_sources.size());
  for (NodeId n : outcome.believed_sources) {
    const core::RangeTable* table = network_.node(n).table(outcome.tree, q.type);
    if (table == nullptr || !table->own().has_value()) {
      // A believed source always holds an own tuple right after the
      // instant-transport audit; if that invariant ever fails the entry
      // would be unverifiable, so cache nothing rather than a guess.
      return;
    }
    sources.push_back({n, table->own()->min, table->own()->max});
  }
  cache_.insert(q.type, q.lo, q.hi, outcome.tree, epoch,
                network_.updates_transmitted(), std::move(sources));
}

void FrontEnd::record_answer(const Arrival& a, std::int64_t epoch,
                             TreeId tree) {
  const std::int64_t latency = epoch - a.epoch;
  latency_.record(latency);
  sink_latency_.at(tree).record(latency);
  ++totals_.answered;
}

void FrontEnd::notify_churn() { cache_.invalidate_all(); }

}  // namespace dirq::serve

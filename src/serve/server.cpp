#include "serve/server.hpp"

#include <chrono>
#include <fstream>
#include <ostream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "data/fast_field.hpp"
#include "net/tree_set.hpp"
#include "query/rate_predictor.hpp"
#include "query/workload.hpp"
#include "sim/rng.hpp"
#include "sweep/plan.hpp"

namespace dirq::serve {

void ServeConfig::validate() const {
  exp.validate();
  if (exp.transport != core::TransportKind::Instant) {
    throw std::invalid_argument(
        "ServeConfig: serve requires the instant transport (the front-end "
        "answers at the injecting boundary)");
  }
  if (exp.loss_rate > 0.0) {
    throw std::invalid_argument(
        "ServeConfig: serve does not support lossy channels yet");
  }
  if (duration_epochs <= 0) {
    throw std::invalid_argument("ServeConfig: duration_epochs must be > 0");
  }
  if (replay_path.empty()) trace.validate();
  front_end.validate();
  if (!(pace_epochs_per_sec >= 0.0)) {
    throw std::invalid_argument(
        "ServeConfig: pace_epochs_per_sec must be >= 0");
  }
  if (trace.multi_attr_fraction > 0.0 &&
      trace.multi_attr_count >
          static_cast<std::size_t>(exp.placement.sensor_type_count)) {
    throw std::invalid_argument(
        "ServeConfig: trace.multi_attr_count exceeds sensor_type_count");
  }
}

ServeResults Server::run() {
  cfg_.validate();

  // World build: the same seed->substream derivations as Experiment::run,
  // so a serve run and a batch run over one seed agree on placement,
  // environment and workload pool.
  sim::Rng rng(cfg_.exp.seed);
  net::Topology topo = net::random_connected(cfg_.exp.placement, rng);
  const std::unique_ptr<data::ReadingSource> env_owner =
      data::make_environment(cfg_.exp.field_backend, topo,
                             cfg_.exp.placement.sensor_type_count,
                             rng.substream("environment"));
  data::ReadingSource& env = *env_owner;
  std::vector<NodeId> roots;
  if (!cfg_.exp.sinks.empty()) {
    roots = cfg_.exp.sinks;
  } else if (cfg_.exp.sink_count <= 1) {
    roots = {0};
  } else {
    roots = net::spread_roots(topo, cfg_.exp.sink_count);
  }
  core::DirqNetwork network(topo, roots, cfg_.exp.network);
  const std::size_t n_sinks = network.tree_count();
  const unsigned threads = core::Experiment::effective_threads(cfg_.exp);
  if (threads > 1) network.set_threads(threads);

  // The arrival stream's predicate pool is drawn against the epoch-0
  // field, like the batch workload's first query.
  env.advance_to(0);
  query::WorkloadGenerator workload(
      topo, network.tree(), env,
      query::WorkloadConfig{cfg_.exp.relevant_fraction, 0.02},
      rng.substream("workload"));
  TraceGen trace = [&]() -> TraceGen {
    if (!cfg_.replay_path.empty()) {
      std::ifstream in(cfg_.replay_path);
      if (!in) {
        throw std::runtime_error("serve: cannot open replay trace " +
                                 cfg_.replay_path);
      }
      return TraceGen(cfg_.trace, TraceGen::load_trace(in));
    }
    return TraceGen(cfg_.trace, workload, rng.substream("serve-trace"));
  }();

  core::QueryAdmission admission(cfg_.exp.routing, network.trees());
  FrontEnd front_end(cfg_.front_end, network, admission);
  std::vector<query::QueryRatePredictor> predictors;
  predictors.reserve(n_sinks);
  for (std::size_t t = 0; t < n_sinks; ++t) {
    predictors.emplace_back(0.4, cfg_.exp.epochs_per_hour);
  }
  front_end.set_on_injected([&predictors](TreeId tree, std::int64_t epoch) {
    predictors.at(tree).record_query(epoch);
  });

  // Hour-0 prior: the offered rate itself is the best advertised estimate
  // of queries per hour, split evenly across sinks like the batch driver.
  const double prior_ehr =
      cfg_.trace.rate * static_cast<double>(cfg_.exp.epochs_per_hour);

  using Clock = std::chrono::steady_clock;
  const Clock::time_point wall_start = Clock::now();

  std::vector<Arrival> arrivals;
  for (std::int64_t epoch = 0; epoch < cfg_.duration_epochs; ++epoch) {
    env.advance_to(epoch);
    if (epoch % cfg_.exp.epochs_per_hour == 0) {
      for (TreeId t = 0; t < static_cast<TreeId>(n_sinks); ++t) {
        const double ehr =
            predictors[t].completed_hours() > 0
                ? predictors[t].predict_next_hour()
                : prior_ehr / static_cast<double>(n_sinks);
        network.broadcast_ehr(t, ehr, epoch);
      }
    }
    network.process_epoch(env, epoch);
    arrivals.clear();
    trace.drain_until(epoch, arrivals);
    for (const Arrival& a : arrivals) front_end.offer(a);
    if (epoch % cfg_.front_end.inject_period == 0) {
      front_end.on_boundary(epoch);
    }
    if (cfg_.pace_epochs_per_sec > 0.0) {
      // Wall-clock pacing for live demos: sleep until this epoch's
      // deadline. Virtual results never depend on the sleep.
      const auto deadline =
          wall_start + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(
                               static_cast<double>(epoch + 1) /
                               cfg_.pace_epochs_per_sec));
      std::this_thread::sleep_until(deadline);
    }
  }

  ServeResults res;
  res.duration_epochs = cfg_.duration_epochs;
  res.totals = front_end.totals();
  res.cache = front_end.cache_stats();
  res.latency = front_end.latency();
  res.sinks.resize(n_sinks);
  for (TreeId t = 0; t < static_cast<TreeId>(n_sinks); ++t) {
    res.sinks[t].root = network.root(t);
    res.sinks[t].injected = front_end.sink_injected(t);
    res.sinks[t].latency = front_end.sink_latency(t);
  }
  res.final_queue_depth = static_cast<std::int64_t>(front_end.queue_depth());
  res.updates_transmitted = network.updates_transmitted();
  res.energy_total = network.costs().total();
  return res;
}

namespace {

using sweep::format_double;

void write_histogram(std::ostream& os, const metrics::LatencyHistogram& h,
                     const char* indent) {
  os << "{\n"
     << indent << "  \"count\": " << h.count() << ",\n"
     << indent << "  \"min\": " << h.min() << ",\n"
     << indent << "  \"max\": " << h.max() << ",\n"
     << indent << "  \"mean\": " << format_double(h.mean()) << ",\n"
     << indent << "  \"p50\": " << h.quantile(0.5) << ",\n"
     << indent << "  \"p95\": " << h.quantile(0.95) << ",\n"
     << indent << "  \"p99\": " << h.quantile(0.99) << "\n"
     << indent << "}";
}

}  // namespace

void write_serve_json(const ServeConfig& cfg, const ServeResults& res,
                      std::ostream& os) {
  const char* arrivals =
      !cfg.replay_path.empty()
          ? "replay"
          : (cfg.trace.shape == ArrivalShape::Burst ? "burst" : "poisson");
  const char* routing = cfg.exp.routing == core::RoutingPolicy::RoundRobin
                            ? "round-robin"
                            : "admission";
  const char* backend =
      cfg.exp.field_backend == data::EnvironmentBackend::Fast ? "fast"
                                                              : "pinned";
  const bool atc =
      cfg.exp.network.mode == core::NetworkConfig::ThetaMode::Atc;
  os << "{\n";
  os << "  \"schema\": \"dirq.serve.v1\",\n";
  os << "  \"config\": {\n";
  os << "    \"seed\": " << cfg.exp.seed << ",\n";
  os << "    \"nodes\": " << cfg.exp.placement.node_count << ",\n";
  os << "    \"sinks\": " << cfg.exp.resolved_sink_count() << ",\n";
  os << "    \"routing\": \"" << routing << "\",\n";
  os << "    \"backend\": \"" << backend << "\",\n";
  os << "    \"theta\": \""
     << (atc ? std::string("atc")
             : "fixed:" + format_double(cfg.exp.network.fixed_pct))
     << "\",\n";
  os << "    \"duration_epochs\": " << res.duration_epochs << ",\n";
  os << "    \"arrivals\": \"" << arrivals << "\",\n";
  os << "    \"rate\": " << format_double(cfg.trace.rate) << ",\n";
  os << "    \"cache\": " << (cfg.front_end.cache_enabled ? "true" : "false")
     << ",\n";
  os << "    \"cache_entries\": " << cfg.front_end.cache_entries << ",\n";
  os << "    \"stale_epochs\": " << cfg.front_end.stale_epochs << ",\n";
  os << "    \"inject_period\": " << cfg.front_end.inject_period << ",\n";
  os << "    \"max_inject_per_boundary\": "
     << cfg.front_end.max_inject_per_boundary << ",\n";
  os << "    \"max_queue\": " << cfg.front_end.max_queue << "\n";
  os << "  },\n";
  os << "  \"totals\": {\n";
  os << "    \"arrived\": " << res.totals.arrived << ",\n";
  os << "    \"answered\": " << res.totals.answered << ",\n";
  os << "    \"injected\": " << res.totals.injected << ",\n";
  os << "    \"cache_answered\": " << res.totals.cache_answered << ",\n";
  os << "    \"shed\": " << res.totals.shed << ",\n";
  os << "    \"peak_queue_depth\": " << res.totals.peak_queue_depth << ",\n";
  os << "    \"final_queue_depth\": " << res.final_queue_depth << "\n";
  os << "  },\n";
  os << "  \"cache\": {\n";
  os << "    \"fresh_hits\": " << res.cache.fresh_hits << ",\n";
  os << "    \"stale_hits\": " << res.cache.stale_hits << ",\n";
  os << "    \"containment_hits\": " << res.cache.containment_hits << ",\n";
  os << "    \"misses\": " << res.cache.misses << ",\n";
  os << "    \"expired\": " << res.cache.expired << ",\n";
  os << "    \"insertions\": " << res.cache.insertions << ",\n";
  os << "    \"evictions\": " << res.cache.evictions << ",\n";
  os << "    \"uncacheable\": " << res.cache.uncacheable << "\n";
  os << "  },\n";
  os << "  \"throughput\": {\n";
  os << "    \"offered_per_epoch\": " << format_double(res.offered_rate())
     << ",\n";
  os << "    \"qps\": " << format_double(res.qps()) << "\n";
  os << "  },\n";
  os << "  \"latency_epochs\": ";
  write_histogram(os, res.latency, "  ");
  os << ",\n";
  os << "  \"sinks\": [\n";
  for (std::size_t k = 0; k < res.sinks.size(); ++k) {
    os << "    {\"root\": " << res.sinks[k].root
       << ", \"injected\": " << res.sinks[k].injected
       << ", \"answered\": " << res.sinks[k].latency.count()
       << ", \"p50\": " << res.sinks[k].latency.quantile(0.5)
       << ", \"p99\": " << res.sinks[k].latency.quantile(0.99) << "}"
       << (k + 1 < res.sinks.size() ? "," : "") << "\n";
  }
  os << "  ],\n";
  os << "  \"network\": {\n";
  os << "    \"updates_transmitted\": " << res.updates_transmitted << ",\n";
  os << "    \"energy_total\": " << res.energy_total << "\n";
  os << "  }\n";
  os << "}\n";
}

}  // namespace dirq::serve

// Open-loop query trace generator for the serve plane.
//
// The generator emits a seeded, rate-parameterised stream of query
// *arrivals* on the virtual clock (1 sensing epoch == 1 virtual second),
// fully decoupled from the network's progress: arrivals keep coming
// whether or not the front-end can keep up, which is exactly what makes
// overload representable — a closed-loop generator would throttle itself
// and hide the saturation point.
//
// Arrival shapes:
//   Poisson — exponential inter-arrival times at `rate` arrivals per
//     virtual second, accumulated in continuous time and floored onto the
//     epoch lattice.
//   Burst — the same Poisson process thinned to an on/off duty cycle:
//     arrivals landing in the silent `burst_gap_epochs` window are
//     dropped, so the long-run mean rate is
//     rate * length / (length + gap).
//
// What a query asks is drawn from a fixed predicate pool generated once
// (through the paper's WorkloadGenerator against the epoch-0 field), with
// a popularity skew so the same predicates recur — the recurrence is what
// gives the front-end's result cache something to hit. A slice of
// arrivals narrows its pool window to the middle half, exercising the
// cache's containment path; an optional multi-attribute slice reuses the
// ExperimentConfig::multi_attr_* semantics (those bypass the cache).
//
// Recorded-trace replay: `load_trace` reads a TSV of
// (epoch, type, lo, hi) rows, so a captured production stream (or a
// hand-written scenario) can drive the same front-end.
//
// Determinism: every draw comes from the one Rng handed in; the stream is
// a pure function of (seed, rate, shape, pool) and never observes network
// state — the serve determinism tests lean on exactly that.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "query/query.hpp"
#include "query/workload.hpp"
#include "sim/rng.hpp"

namespace dirq::serve {

enum class ArrivalShape { Poisson, Burst };

/// One query arrival of the open-loop stream. Ids are unset (0) — the
/// front-end stamps a fresh QueryId at injection time.
struct Arrival {
  std::int64_t epoch = 0;  // virtual arrival time
  bool multi = false;      // conjunctive multi-attribute request
  query::RangeQuery range;   // valid when !multi
  query::MultiQuery multi_q;  // valid when multi
};

struct TraceGenConfig {
  /// Mean arrivals per virtual second (== per epoch).
  double rate = 10.0;
  ArrivalShape shape = ArrivalShape::Poisson;
  /// Burst duty cycle (ignored for Poisson): `burst_length_epochs` of
  /// arrivals, then `burst_gap_epochs` of silence.
  std::int64_t burst_length_epochs = 50;
  std::int64_t burst_gap_epochs = 150;
  /// Distinct base predicates in the pool.
  std::size_t pool_size = 32;
  /// Fraction of arrivals narrowed to the middle half of their pool
  /// window (the cache-containment slice).
  double subset_fraction = 0.25;
  /// Multi-attribute slice (cache-bypassing), reusing the
  /// ExperimentConfig::multi_attr_* semantics.
  double multi_attr_fraction = 0.0;
  std::size_t multi_attr_count = 2;

  /// Throws std::invalid_argument naming the offending field.
  void validate() const;
};

class TraceGen {
 public:
  /// Synthetic stream: the pool is drawn through `workload` (which must be
  /// bound to an environment already advanced to epoch 0) and arrivals
  /// from `rng`. The workload generator is only used during construction.
  TraceGen(TraceGenConfig cfg, query::WorkloadGenerator& workload,
           sim::Rng rng);

  /// Replay stream: arrivals come verbatim from a recorded list (see
  /// load_trace); cfg's rate/shape/pool knobs are ignored.
  TraceGen(TraceGenConfig cfg, std::vector<Arrival> recorded);

  /// Appends every not-yet-emitted arrival with arrival epoch <= `epoch`
  /// to `out`, in arrival order. Monotone: epochs passed in must not
  /// decrease.
  void drain_until(std::int64_t epoch, std::vector<Arrival>& out);

  /// Parses a recorded trace: one header line, then one
  /// `epoch <TAB> type <TAB> lo <TAB> hi` row per arrival, epochs
  /// non-decreasing. Throws std::runtime_error on malformed input.
  static std::vector<Arrival> load_trace(std::istream& is);

  [[nodiscard]] const TraceGenConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] std::int64_t emitted() const noexcept { return emitted_; }

 private:
  struct PoolEntry {
    SensorType type = 0;
    double lo = 0.0;
    double hi = 0.0;
  };

  void emit_one(std::int64_t epoch, std::vector<Arrival>& out);

  TraceGenConfig cfg_;
  sim::Rng rng_;
  std::vector<PoolEntry> pool_;
  std::vector<query::MultiQuery> multi_pool_;
  double clock_ = 0.0;  // continuous virtual time of the next arrival
  std::int64_t emitted_ = 0;
  // Replay state.
  bool replay_ = false;
  std::vector<Arrival> recorded_;
  std::size_t replay_cursor_ = 0;
};

}  // namespace dirq::serve

// Serve front-end: admission batching between the open-loop arrival
// stream and the DirQ network.
//
// Arrivals are offered as they occur on the virtual clock and wait in a
// strict-FIFO bounded queue; once the queue is full further arrivals are
// shed (counted, never silently dropped). At every injection boundary the
// front-end drains the queue head-first:
//
//   - cacheable range queries first consult the ResultCache — a hit is
//     answered on the spot, costs the network nothing, and does not count
//     against the boundary's injection budget;
//   - misses (and uncacheable multi-attribute/regional queries) are routed
//     through core::QueryAdmission to a sink tree and injected, at most
//     `max_inject_per_boundary` per boundary — the knob that models the
//     sink's finite dissemination capacity and makes overload visible as
//     queue growth rather than as an unbounded injection storm;
//   - whatever the budget could not serve stays queued, strictly in
//     arrival order, for the next boundary.
//
// Latency of a query is (answer boundary − arrival epoch) in virtual
// epochs: queueing delay plus the injection wait, which is what a client
// of the serve plane actually observes. Completion is learned through
// DirqNetwork's query-done hook (not by re-reading audit state), so the
// front-end also works unchanged if injection ever becomes asynchronous.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <utility>
#include <vector>

#include "core/admission.hpp"
#include "core/network.hpp"
#include "metrics/histogram.hpp"
#include "serve/cache.hpp"
#include "serve/trace_gen.hpp"

namespace dirq::serve {

struct FrontEndConfig {
  bool cache_enabled = true;
  std::size_t cache_entries = 1024;
  /// How long a cache entry may keep serving after the network's update
  /// counter moves (Fresh entries never expire — see serve/cache.hpp).
  std::int64_t stale_epochs = 64;
  /// Injection boundary period in epochs (the serve-plane analogue of the
  /// batch driver's query_period; 1 = a boundary every epoch).
  std::int64_t inject_period = 1;
  /// Network injections allowed per boundary. Cache hits are free and do
  /// not consume this budget.
  std::size_t max_inject_per_boundary = 4;
  /// Queue bound; arrivals beyond it are shed.
  std::size_t max_queue = 8192;

  void validate() const;
};

class FrontEnd {
 public:
  struct Totals {
    std::int64_t arrived = 0;
    std::int64_t answered = 0;        // injected_answered + cache_answered
    std::int64_t injected = 0;        // answered over the network
    std::int64_t cache_answered = 0;  // answered from the cache
    std::int64_t shed = 0;            // dropped at the full queue
    std::int64_t peak_queue_depth = 0;
  };

  /// The network and admission layer must outlive the front-end. Installs
  /// itself as the network's query-done hook.
  FrontEnd(FrontEndConfig cfg, core::DirqNetwork& network,
           core::QueryAdmission& admission);

  /// Offers one arrival (sheds it if the queue is full).
  void offer(const Arrival& a);

  /// Drains the queue at an injection boundary at virtual time `epoch`.
  void on_boundary(std::int64_t epoch);

  /// Call after topology churn: cached tuples no longer bound the new
  /// tree structure, so the whole cache is dropped.
  void notify_churn();

  /// Invoked once per network injection with (sink tree, epoch) — the
  /// server feeds each sink's rate predictor through this so the hourly
  /// EHr floods track the served (not the offered) stream.
  using InjectedHook = std::function<void(TreeId, std::int64_t)>;
  void set_on_injected(InjectedHook hook) { on_injected_ = std::move(hook); }

  [[nodiscard]] const Totals& totals() const noexcept { return totals_; }
  [[nodiscard]] const CacheStats& cache_stats() const noexcept {
    return cache_.stats();
  }
  [[nodiscard]] const metrics::LatencyHistogram& latency() const noexcept {
    return latency_;
  }
  [[nodiscard]] const metrics::LatencyHistogram& sink_latency(
      TreeId t) const {
    return sink_latency_.at(t);
  }
  [[nodiscard]] std::int64_t sink_injected(TreeId t) const {
    return sink_injected_.at(t);
  }
  [[nodiscard]] std::size_t queue_depth() const noexcept {
    return queue_.size();
  }
  [[nodiscard]] const FrontEndConfig& config() const noexcept { return cfg_; }

 private:
  /// Injects the queued arrival and finishes its bookkeeping. Returns the
  /// sink tree it was routed to.
  void inject_and_account(const Arrival& a, std::int64_t epoch);
  /// Captures the believed sources' own tuples and inserts a cache entry
  /// for the answered range query.
  void capture_entry(const query::RangeQuery& q,
                     const core::QueryOutcome& outcome, std::int64_t epoch);
  void record_answer(const Arrival& a, std::int64_t epoch, TreeId tree);

  FrontEndConfig cfg_;
  core::DirqNetwork& network_;
  core::QueryAdmission& admission_;
  ResultCache cache_;
  std::deque<Arrival> queue_;
  Totals totals_;
  metrics::LatencyHistogram latency_;
  std::vector<metrics::LatencyHistogram> sink_latency_;
  std::vector<std::int64_t> sink_injected_;
  QueryId next_id_ = 1;
  InjectedHook on_injected_;
  /// Outcome delivered by the network's query-done hook for the inject in
  /// flight (instant transport: synchronously, inside inject()).
  core::QueryOutcome last_outcome_;
  bool outcome_valid_ = false;
};

}  // namespace dirq::serve

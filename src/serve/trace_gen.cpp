#include "serve/trace_gen.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>

namespace dirq::serve {

void TraceGenConfig::validate() const {
  if (!(rate > 0.0) || !std::isfinite(rate)) {
    throw std::invalid_argument("TraceGenConfig: rate must be finite and > 0");
  }
  if (shape == ArrivalShape::Burst) {
    if (burst_length_epochs <= 0) {
      throw std::invalid_argument(
          "TraceGenConfig: burst_length_epochs must be > 0");
    }
    if (burst_gap_epochs < 0) {
      throw std::invalid_argument(
          "TraceGenConfig: burst_gap_epochs must be >= 0");
    }
  }
  if (pool_size == 0) {
    throw std::invalid_argument("TraceGenConfig: pool_size must be > 0");
  }
  if (subset_fraction < 0.0 || subset_fraction > 1.0) {
    throw std::invalid_argument(
        "TraceGenConfig: subset_fraction must be in [0, 1]");
  }
  if (multi_attr_fraction < 0.0 || multi_attr_fraction > 1.0) {
    throw std::invalid_argument(
        "TraceGenConfig: multi_attr_fraction must be in [0, 1]");
  }
  if (multi_attr_fraction > 0.0 && multi_attr_count < 2) {
    throw std::invalid_argument(
        "TraceGenConfig: multi_attr_count must be >= 2");
  }
}

TraceGen::TraceGen(TraceGenConfig cfg, query::WorkloadGenerator& workload,
                   sim::Rng rng)
    : cfg_(cfg), rng_(std::move(rng)) {
  cfg_.validate();
  pool_.reserve(cfg_.pool_size);
  for (std::size_t i = 0; i < cfg_.pool_size; ++i) {
    const query::RangeQuery q = workload.next(0);
    pool_.push_back({q.type, q.lo, q.hi});
  }
  if (cfg_.multi_attr_fraction > 0.0) {
    // A small multi pool suffices — these arrivals bypass the cache, so
    // recurrence buys nothing; variety matters more than popularity.
    const std::size_t multi_pool = std::max<std::size_t>(cfg_.pool_size / 4, 1);
    multi_pool_.reserve(multi_pool);
    for (std::size_t i = 0; i < multi_pool; ++i) {
      multi_pool_.push_back(workload.next_multi(0, cfg_.multi_attr_count));
    }
  }
}

TraceGen::TraceGen(TraceGenConfig cfg, std::vector<Arrival> recorded)
    : cfg_(cfg), rng_(0), replay_(true), recorded_(std::move(recorded)) {}

void TraceGen::drain_until(std::int64_t epoch, std::vector<Arrival>& out) {
  if (replay_) {
    while (replay_cursor_ < recorded_.size() &&
           recorded_[replay_cursor_].epoch <= epoch) {
      out.push_back(recorded_[replay_cursor_]);
      ++replay_cursor_;
      ++emitted_;
    }
    return;
  }
  // Continuous-time Poisson arrivals floored onto the epoch lattice. The
  // clock only moves forward, so draining is monotone and each arrival is
  // emitted exactly once.
  while (clock_ <= static_cast<double>(epoch) + 1.0 - 1e-12) {
    const std::int64_t at = static_cast<std::int64_t>(std::floor(clock_));
    if (at > epoch) break;
    bool keep = true;
    if (cfg_.shape == ArrivalShape::Burst) {
      const std::int64_t period = cfg_.burst_length_epochs + cfg_.burst_gap_epochs;
      keep = (at % period) < cfg_.burst_length_epochs;
    }
    // Draw the arrival's content even when the burst gap drops it, so the
    // kept sub-stream is identical across shapes sharing a seed.
    if (keep) {
      emit_one(at, out);
    } else {
      std::vector<Arrival> discard;
      emit_one(at, discard);
      --emitted_;
    }
    clock_ += rng_.exponential(cfg_.rate);
  }
}

void TraceGen::emit_one(std::int64_t epoch, std::vector<Arrival>& out) {
  Arrival a;
  a.epoch = epoch;
  if (!multi_pool_.empty() && rng_.bernoulli(cfg_.multi_attr_fraction)) {
    a.multi = true;
    a.multi_q = multi_pool_[rng_.index(multi_pool_.size())];
    a.multi_q.id = 0;
    a.multi_q.epoch = epoch;
  } else {
    // Popularity skew: squaring a uniform draw concentrates picks on the
    // low indices, so a handful of pool entries dominate the stream and
    // the cache sees genuine recurrence.
    const double u = rng_.uniform(0.0, 1.0);
    const std::size_t idx = std::min(
        static_cast<std::size_t>(u * u * static_cast<double>(pool_.size())),
        pool_.size() - 1);
    const PoolEntry& base = pool_[idx];
    a.range.id = 0;
    a.range.type = base.type;
    a.range.epoch = epoch;
    if (rng_.bernoulli(cfg_.subset_fraction)) {
      // Middle half of the base window: a strict sub-range, answerable by
      // containment from a cached answer for the base predicate.
      const double quarter = (base.hi - base.lo) / 4.0;
      a.range.lo = base.lo + quarter;
      a.range.hi = base.hi - quarter;
    } else {
      a.range.lo = base.lo;
      a.range.hi = base.hi;
    }
  }
  out.push_back(std::move(a));
  ++emitted_;
}

std::vector<Arrival> TraceGen::load_trace(std::istream& is) {
  std::vector<Arrival> arrivals;
  std::string line;
  if (!std::getline(is, line)) {
    throw std::runtime_error("serve trace: empty input (expected header)");
  }
  std::size_t line_no = 1;
  std::int64_t prev_epoch = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::istringstream row(line);
    Arrival a;
    long long type = 0;
    if (!(row >> a.epoch >> type >> a.range.lo >> a.range.hi)) {
      throw std::runtime_error("serve trace: malformed row at line " +
                               std::to_string(line_no));
    }
    if (a.epoch < prev_epoch) {
      throw std::runtime_error("serve trace: epochs must be non-decreasing "
                               "(line " + std::to_string(line_no) + ")");
    }
    if (a.range.lo > a.range.hi) {
      throw std::runtime_error("serve trace: lo > hi at line " +
                               std::to_string(line_no));
    }
    prev_epoch = a.epoch;
    a.range.type = static_cast<SensorType>(type);
    a.range.epoch = a.epoch;
    arrivals.push_back(std::move(a));
  }
  return arrivals;
}

}  // namespace dirq::serve

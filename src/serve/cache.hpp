// Range-result cache for the serve front-end.
//
// A cached entry stores, for one answered range query, the believed
// sources together with the own-range tuple ([min, max] advertised to the
// tree) each of them held when the answer was produced. That tuple is the
// exact forwarding predicate DirQ evaluates at the node itself, which
// gives the cache a containment rule that is *exact* rather than
// heuristic: as long as no range table changed since the answer was
// captured, a node believes a narrower window W' ⊆ W if and only if it
// believed W and its own tuple overlaps W' — every ancestor aggregate
// contains the descendant tuples, so the path tests that admitted the node
// under W still admit it under any sub-window its own tuple meets. A
// superset answer therefore serves every subset query by filtering the
// stored tuples, with no network traffic at all.
//
// Staleness is tracked without a change-feed: each entry snapshots the
// network-wide Update Message counter at creation. A lookup that finds the
// counter unmoved is Fresh (provably no table changed anywhere — the
// containment rule is exact and the hit never expires). A moved counter
// degrades the entry to Stale, served only within `stale_epochs` of its
// creation; beyond that it expires. The counter is a deliberately blunt
// instrument — any update anywhere demotes every entry — but it is exact,
// costs nothing on the hot path, and is byte-identical across thread
// counts because the parallel epoch engine merges the counter
// deterministically.
//
// Multi-attribute and region-constrained queries are not cacheable here
// (their admission involves per-type aggregates and bounding boxes that
// the single-tuple containment rule does not cover); the front-end counts
// them as `uncacheable` and injects them directly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

#include "sim/types.hpp"

namespace dirq::serve {

/// One believed source with the own-range tuple it advertised when the
/// answer was captured.
struct CachedSource {
  NodeId node = 0;
  double tuple_min = 0.0;
  double tuple_max = 0.0;
};

struct CacheStats {
  std::int64_t fresh_hits = 0;        // update counter unmoved: exact
  std::int64_t stale_hits = 0;        // counter moved, within stale bound
  std::int64_t containment_hits = 0;  // hit served from a strict superset
  std::int64_t misses = 0;
  std::int64_t expired = 0;     // would have hit, but past the stale bound
  std::int64_t insertions = 0;
  std::int64_t evictions = 0;   // FIFO displacement at capacity
  std::int64_t uncacheable = 0; // multi-attribute / regional traffic

  [[nodiscard]] std::int64_t hits() const noexcept {
    return fresh_hits + stale_hits;
  }
  [[nodiscard]] std::int64_t lookups() const noexcept {
    return hits() + misses;
  }
};

struct CacheLookup {
  enum class Kind { Miss, Fresh, Stale };
  Kind kind = Kind::Miss;
  /// Believed sources for the queried window (sorted by node id), valid
  /// for Fresh/Stale.
  std::vector<NodeId> answer;
  /// Sink tree the cached answer was produced on.
  TreeId tree = 0;
};

class ResultCache {
 public:
  /// `max_entries` bounds memory (FIFO eviction); `stale_epochs` bounds
  /// how long an entry may serve hits after the update counter moves.
  ResultCache(std::size_t max_entries, std::int64_t stale_epochs);

  /// Looks up believed sources for (type, [lo, hi]) at virtual time
  /// `epoch`, given the network's current Update Message counter. Entries
  /// are matched by containment (entry window ⊇ query window); the first
  /// Fresh match wins, else the first Stale one.
  CacheLookup lookup(SensorType type, double lo, double hi,
                     std::int64_t epoch, std::int64_t updates_now);

  /// Records an answered query. `sources` carries each believed source's
  /// own tuple as read back from its range table immediately after the
  /// answer; it need not be sorted.
  void insert(SensorType type, double lo, double hi, TreeId tree,
              std::int64_t epoch, std::int64_t updates_at_answer,
              std::vector<CachedSource> sources);

  /// Drops every entry (topology churn: tuples may now belong to dead
  /// nodes or re-parented subtrees, so containment no longer holds).
  void invalidate_all();

  [[nodiscard]] const CacheStats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  /// Counts the uncacheable traffic the front-end routed around the cache.
  void note_uncacheable() { ++stats_.uncacheable; }

 private:
  struct CacheEntry {
    SensorType type = 0;
    double lo = 0.0;
    double hi = 0.0;
    TreeId tree = 0;
    std::int64_t created_epoch = 0;
    std::int64_t updates_at_create = 0;
    std::vector<CachedSource> sources;  // sorted by node id
  };

  std::size_t max_entries_;
  std::int64_t stale_epochs_;
  std::deque<CacheEntry> entries_;  // FIFO order
  CacheStats stats_;
};

}  // namespace dirq::serve

#include "serve/cache.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace dirq::serve {

ResultCache::ResultCache(std::size_t max_entries, std::int64_t stale_epochs)
    : max_entries_(max_entries), stale_epochs_(stale_epochs) {
  if (max_entries_ == 0) {
    throw std::invalid_argument("ResultCache: max_entries must be > 0");
  }
  if (stale_epochs_ < 0) {
    throw std::invalid_argument("ResultCache: stale_epochs must be >= 0");
  }
}

CacheLookup ResultCache::lookup(SensorType type, double lo, double hi,
                                std::int64_t epoch,
                                std::int64_t updates_now) {
  // Scan in FIFO order; the first Fresh containing entry wins, else the
  // first Stale one. Linear scan is deliberate: the cache is small
  // (O(1k) entries), the order is deterministic, and containment match
  // does not index well.
  const CacheEntry* fresh = nullptr;
  const CacheEntry* stale = nullptr;
  bool saw_expired = false;
  for (const CacheEntry& e : entries_) {
    if (e.type != type || e.lo > lo || e.hi < hi) continue;
    if (e.updates_at_create == updates_now) {
      fresh = &e;
      break;  // exact — nothing can beat it
    }
    if (epoch - e.created_epoch <= stale_epochs_) {
      if (stale == nullptr) stale = &e;
    } else {
      saw_expired = true;
    }
  }
  const CacheEntry* chosen = fresh != nullptr ? fresh : stale;
  if (chosen == nullptr) {
    ++stats_.misses;
    if (saw_expired) ++stats_.expired;
    return {};
  }
  CacheLookup out;
  out.kind = fresh != nullptr ? CacheLookup::Kind::Fresh
                              : CacheLookup::Kind::Stale;
  out.tree = chosen->tree;
  const bool strict_subset = chosen->lo < lo || chosen->hi > hi;
  // Containment filter: a stored source answers the narrower window iff
  // its own tuple overlaps it (see the header for why this is exact when
  // the entry is Fresh).
  for (const CachedSource& s : chosen->sources) {
    if (s.tuple_min <= hi && s.tuple_max >= lo) out.answer.push_back(s.node);
  }
  if (fresh != nullptr) {
    ++stats_.fresh_hits;
  } else {
    ++stats_.stale_hits;
  }
  if (strict_subset) ++stats_.containment_hits;
  return out;
}

void ResultCache::insert(SensorType type, double lo, double hi, TreeId tree,
                         std::int64_t epoch, std::int64_t updates_at_answer,
                         std::vector<CachedSource> sources) {
  std::sort(sources.begin(), sources.end(),
            [](const CachedSource& a, const CachedSource& b) {
              return a.node < b.node;
            });
  CacheEntry e;
  e.type = type;
  e.lo = lo;
  e.hi = hi;
  e.tree = tree;
  e.created_epoch = epoch;
  e.updates_at_create = updates_at_answer;
  e.sources = std::move(sources);
  entries_.push_back(std::move(e));
  ++stats_.insertions;
  while (entries_.size() > max_entries_) {
    entries_.pop_front();
    ++stats_.evictions;
  }
}

void ResultCache::invalidate_all() { entries_.clear(); }

}  // namespace dirq::serve

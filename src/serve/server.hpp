// The serve plane's long-lived driver: `dirqsim serve`.
//
// Where core::Experiment runs the paper's closed evaluation loop (one
// query every query_period, answered before the next), the Server runs the
// network as a *service*: a virtual-time pacer advances DirqNetwork epochs
// deterministically (1 epoch == 1 virtual second) while an open-loop
// serve::TraceGen pushes query arrivals at the front-end, which batches
// them through admission and the result cache. Overload is a first-class
// state — arrivals outrun the injection budget, the queue grows, latency
// climbs, and eventually arrivals shed — instead of being unrepresentable.
//
// Determinism contract: a run is a pure function of its ServeConfig. The
// dirq.serve.v1 JSON contains no wall-clock times and no thread counts, so
// two runs with the same config — at ANY --threads value, since the
// parallel epoch engine merges deterministically — emit byte-identical
// bytes. Wall-clock pacing (`pace_epochs_per_sec`) only throttles how fast
// virtual time advances; it never leaks into results.
//
// The serve plane is instant-transport and lossless only: the front-end
// answers a query at the boundary that injects it (needs the synchronous
// audit), and the result cache's cache-vs-live bitwise contract assumes
// re-running a query reads identical network state — a lossy channel's
// per-delivery counters advance on re-injection and would break that.
// The parallel epoch engine itself handles LMAC and lossy batch runs now
// (DirqNetwork::set_threads); serving them needs an asynchronous
// completion path and loss-aware cache invalidation — validate() rejects
// those configs rather than quietly mis-measuring.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "core/experiment.hpp"
#include "metrics/histogram.hpp"
#include "serve/cache.hpp"
#include "serve/front_end.hpp"
#include "serve/trace_gen.hpp"

namespace dirq::serve {

struct ServeConfig {
  /// World parameters (seed, placement, sinks, routing, theta, backend,
  /// threads). transport must stay Instant and loss_rate 0 — validate()
  /// enforces it. epochs/query_period/burst fields are ignored: the serve
  /// plane has its own clock and arrival process.
  core::ExperimentConfig exp{};
  /// Virtual run length: how many epochs the pacer advances.
  std::int64_t duration_epochs = 2000;
  TraceGenConfig trace{};
  FrontEndConfig front_end{};
  /// Non-empty: replay a recorded TSV trace instead of the synthetic
  /// stream (see TraceGen::load_trace).
  std::string replay_path;
  /// 0 (default): advance virtual time as fast as the host allows. > 0:
  /// pace the loop to this many epochs per wall-clock second (a live
  /// service demo; results are identical either way).
  double pace_epochs_per_sec = 0.0;

  /// Throws std::invalid_argument naming the offending field.
  void validate() const;
};

struct ServeSinkStats {
  NodeId root = 0;
  std::int64_t injected = 0;
  metrics::LatencyHistogram latency;
};

struct ServeResults {
  std::int64_t duration_epochs = 0;
  FrontEnd::Totals totals;
  CacheStats cache;
  metrics::LatencyHistogram latency;
  std::vector<ServeSinkStats> sinks;
  std::int64_t final_queue_depth = 0;  // in-flight backlog at shutdown
  std::int64_t updates_transmitted = 0;
  CostUnits energy_total = 0;

  /// Served throughput in queries per virtual second (== per epoch).
  [[nodiscard]] double qps() const noexcept {
    return duration_epochs > 0 ? static_cast<double>(totals.answered) /
                                     static_cast<double>(duration_epochs)
                               : 0.0;
  }
  [[nodiscard]] double offered_rate() const noexcept {
    return duration_epochs > 0 ? static_cast<double>(totals.arrived) /
                                     static_cast<double>(duration_epochs)
                               : 0.0;
  }
};

class Server {
 public:
  explicit Server(ServeConfig cfg) : cfg_(std::move(cfg)) {}

  /// Builds the world from the seed and runs the paced serve loop.
  ServeResults run();

  [[nodiscard]] const ServeConfig& config() const noexcept { return cfg_; }

 private:
  ServeConfig cfg_;
};

/// Emits the dirq.serve.v1 JSON document: config echo, totals, cache
/// stats, throughput, latency percentiles, per-sink breakdown, network
/// counters. Byte-stable — numbers via sweep::format_double, no wall
/// times, no thread counts.
void write_serve_json(const ServeConfig& cfg, const ServeResults& res,
                      std::ostream& os);

}  // namespace dirq::serve

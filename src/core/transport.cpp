#include "core/transport.hpp"

#include <algorithm>
#include <stdexcept>

namespace dirq::core {

void Transport::unicast_uncharged(NodeId /*from*/, NodeId /*to*/,
                                  const Message& /*msg*/) {
  throw std::logic_error(
      "unicast_uncharged: transport does not defer delivery");
}

void InstantTransport::charge_tx(CostLedger& ledger, const Message& msg,
                                 CostUnits n) {
  if (std::holds_alternative<QueryMessage>(msg) ||
      std::holds_alternative<MultiQueryMessage>(msg)) {
    ledger.query_tx += n;
  } else if (std::holds_alternative<UpdateMessage>(msg)) {
    ledger.update_tx += n;
  } else {
    ledger.control_tx += n;  // EHr floods and location announcements
  }
}

void InstantTransport::charge_rx(CostLedger& ledger, const Message& msg,
                                 CostUnits n) {
  if (std::holds_alternative<QueryMessage>(msg) ||
      std::holds_alternative<MultiQueryMessage>(msg)) {
    ledger.query_rx += n;
  } else if (std::holds_alternative<UpdateMessage>(msg)) {
    ledger.update_rx += n;
  } else {
    ledger.control_rx += n;
  }
}

void InstantTransport::unicast(NodeId from, NodeId to, const Message& msg) {
  charge_tx(ledger_, msg);
  if (to >= topo_.size() || !topo_.is_alive(to)) return;  // lost
  const auto nbrs = topo_.neighbors(from);
  if (!std::binary_search(nbrs.begin(), nbrs.end(), to)) return;  // out of range
  charge_rx(ledger_, msg);
  sink_.deliver(to, from, msg);
}

void InstantTransport::multicast(NodeId from, std::span<const NodeId> targets,
                                 const Message& msg) {
  if (targets.empty()) return;
  charge_tx(ledger_, msg);
  // Copy both lists: delivery handlers may mutate the topology or reuse
  // the caller's buffer.
  const auto span = topo_.neighbors(from);
  const std::vector<NodeId> nbrs(span.begin(), span.end());
  const std::vector<NodeId> copy(targets.begin(), targets.end());
  for (NodeId to : copy) {
    if (to >= topo_.size() || !topo_.is_alive(to)) continue;
    if (!std::binary_search(nbrs.begin(), nbrs.end(), to)) continue;
    charge_rx(ledger_, msg);
    sink_.deliver(to, from, msg);
  }
}

void InstantTransport::broadcast(NodeId from, const Message& msg) {
  charge_tx(ledger_, msg);
  // Copy the neighbour list: delivery handlers may mutate the topology.
  const auto span = topo_.neighbors(from);
  const std::vector<NodeId> nbrs(span.begin(), span.end());
  for (NodeId v : nbrs) {
    if (!topo_.is_alive(v)) continue;
    charge_rx(ledger_, msg);
    sink_.deliver(v, from, msg);
  }
}

}  // namespace dirq::core

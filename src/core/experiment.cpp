#include "core/experiment.hpp"

#include <algorithm>
#include <optional>

#include "analysis/cost_model.hpp"
#include "core/lossy.hpp"
#include "data/field_model.hpp"
#include "query/rate_predictor.hpp"
#include "query/workload.hpp"
#include "sim/rng.hpp"

namespace dirq::core {

ExperimentResults Experiment::run() {
  sim::Rng rng(cfg_.seed);
  net::Topology topo = net::random_connected(cfg_.placement, rng);
  data::Environment env(topo, cfg_.placement.sensor_type_count,
                        rng.substream("environment"));
  DirqNetwork network(topo, /*root=*/0, cfg_.network);
  std::optional<LossySink> lossy;
  std::optional<InstantTransport> lossy_transport;
  if (cfg_.loss_rate > 0.0) {
    lossy.emplace(network, cfg_.loss_rate, rng.substream("loss"));
    lossy->set_drop_hook([&network](NodeId to, NodeId, const Message&) {
      network.note_dropped_rx(to);
    });
    lossy_transport.emplace(topo, *lossy);
    // The constructor's bootstrap announce wave ran on the built-in
    // transport (deployment happens before the channel model applies);
    // carry its ledger over so swapping transports keeps that cost in
    // the results.
    lossy_transport->mutable_costs() = network.costs();
    network.use_transport(*lossy_transport);
  }
  query::WorkloadGenerator workload(
      topo, network.tree(), env,
      query::WorkloadConfig{cfg_.relevant_fraction, 0.02},
      rng.substream("workload"));
  query::QueryRatePredictor predictor(0.4, cfg_.epochs_per_hour);
  FloodingScheme flooding(topo);

  ExperimentResults res;
  res.updates_per_bin = sim::TimeSeries(cfg_.series_bin);
  network.set_update_hook(
      [&res](std::int64_t epoch) { res.updates_per_bin.record(epoch); });

  // The operator's prior for hour 0: the advertised query interface rate.
  const double prior_ehr = static_cast<double>(cfg_.epochs_per_hour) /
                           static_cast<double>(cfg_.query_period);

  for (std::int64_t epoch = 0; epoch < cfg_.epochs; ++epoch) {
    env.advance_to(epoch);

    if (epoch % cfg_.epochs_per_hour == 0) {
      const double ehr = predictor.completed_hours() > 0
                             ? predictor.predict_next_hour()
                             : prior_ehr;
      network.broadcast_ehr(ehr, epoch);
      res.ehr_per_hour.push_back(ehr);
      // Record the same Umax/Hr the root just derived (Fig. 6 lines).
      const auto nodes = static_cast<std::int64_t>(network.tree().size());
      const auto links = static_cast<std::int64_t>(topo.link_count());
      std::int64_t internal = 0;
      for (NodeId u : network.tree().bfs_order()) {
        if (!network.tree().children(u).empty()) ++internal;
      }
      res.umax_per_hour.push_back(
          nodes >= 2
              ? std::max(0.0, analysis::f_max_graph(nodes, links, internal)) *
                    ehr * static_cast<double>(nodes - 1)
              : 0.0);
    }

    network.process_epoch(env, epoch);

    if (epoch % cfg_.query_period == 0 && epoch > 0) {
      query::RangeQuery q = workload.next(epoch);
      predictor.record_query(epoch);
      const query::Involvement truth =
          query::compute_involvement(q, topo, network.tree(), env);
      const QueryOutcome outcome = network.inject(q, epoch);
      const metrics::QueryAudit audit =
          metrics::audit_query(truth.involved, outcome.received);
      const metrics::QueryAudit source_audit =
          metrics::audit_query(truth.sources, outcome.believed_sources);

      const std::size_t population =
          network.tree().size() > 0 ? network.tree().size() - 1 : 0;
      const auto pct = [population](std::size_t n) {
        return population == 0 ? 0.0
                               : 100.0 * static_cast<double>(n) /
                                     static_cast<double>(population);
      };
      res.overshoot_pct.push(audit.overshoot_pct());
      res.should_pct.push(pct(audit.should_count));
      res.receive_pct.push(pct(audit.received_count));
      res.source_pct.push(pct(truth.sources.size()));
      res.wrong_pct.push(pct(audit.wrong));
      res.coverage_pct.push(audit.coverage_pct());
      res.source_overshoot_pct.push(source_audit.overshoot_pct());
      res.source_coverage_pct.push(source_audit.coverage_pct());
      res.flooding_total += flooding.analytical_cost();
      ++res.queries;

      if (cfg_.keep_records) {
        QueryRecord rec;
        rec.epoch = epoch;
        rec.type = q.type;
        rec.audit = audit;
        rec.source_audit = source_audit;
        rec.dirq_query_cost = outcome.cost;
        rec.flooding_cost = flooding.analytical_cost();
        rec.sources = truth.sources.size();
        rec.population = population;
        res.records.push_back(rec);
      }
    }

    if (epoch % cfg_.series_bin == 0) {
      // Mean temperature-theta across alive non-root nodes: ATC trace.
      double sum = 0.0;
      std::size_t n = 0;
      for (NodeId u : network.tree().bfs_order()) {
        if (u == network.root()) continue;
        sum += network.node(u).controller().theta_pct(kSensorTemperature);
        ++n;
      }
      res.theta_pct_series.push_back(n ? sum / static_cast<double>(n) : 0.0);
    }
  }

  res.ledger = network.costs();
  res.updates_transmitted = network.updates_transmitted();
  res.samples_taken = network.samples_taken();
  res.samples_skipped = network.samples_skipped();
  return res;
}

}  // namespace dirq::core

#include "core/experiment.hpp"

#include <algorithm>
#include <optional>
#include <set>
#include <stdexcept>
#include <string>

#include "analysis/cost_model.hpp"
#include "core/lmac_transport.hpp"
#include "core/lossy.hpp"
#include "data/fast_field.hpp"
#include "data/field_model.hpp"
#include "query/rate_predictor.hpp"
#include "query/workload.hpp"
#include "sim/counter_rng.hpp"
#include "sim/rng.hpp"
#include "sim/scheduler.hpp"
#include "sim/thread_pool.hpp"

namespace dirq::core {

const char* Experiment::thread_clamp_reason(const ExperimentConfig& /*cfg*/) {
  // No clamped backends remain: lossy channels decide drops through
  // order-independent counter-keyed verdicts (core/lossy.hpp), and LMAC
  // chunk-parallelises the epoch walk around the sequential slot loop.
  return nullptr;
}

const char* Experiment::thread_mode_note(const ExperimentConfig& cfg) {
  if (cfg.transport == TransportKind::Lmac) {
    return "epoch phases parallel; slot delivery stays sequential";
  }
  return nullptr;
}

unsigned Experiment::effective_threads(const ExperimentConfig& cfg) {
  if (thread_clamp_reason(cfg) != nullptr) return 1;
  return sim::ThreadPool::resolve(cfg.threads);
}

void ExperimentConfig::validate() const {
  const auto fail = [](const std::string& what) {
    throw std::invalid_argument("ExperimentConfig: " + what);
  };
  if (placement.node_count < 1) fail("placement.node_count must be >= 1");
  if (epochs < 0) fail("epochs must be >= 0");
  if (query_period < 1) fail("query_period must be >= 1");
  if (epochs_per_hour < 1) fail("epochs_per_hour must be >= 1");
  if (series_bin < 1) fail("series_bin must be >= 1");
  if (!(relevant_fraction > 0.0 && relevant_fraction <= 1.0)) {
    fail("relevant_fraction must be in (0, 1]");  // negated: rejects NaN
  }
  if (!(loss_rate >= 0.0 && loss_rate < 1.0)) {
    fail("loss_rate must be in [0, 1)");
  }
  if (sinks.empty() && sink_count < 1) fail("sink_count must be >= 1");
  if (resolved_sink_count() > static_cast<std::size_t>(placement.node_count)) {
    fail("sink count exceeds placement.node_count");
  }
  if (!sinks.empty()) {
    std::vector<NodeId> sorted = sinks;
    std::sort(sorted.begin(), sorted.end());
    if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end()) {
      fail("duplicate sink id " +
           std::to_string(*std::adjacent_find(sorted.begin(), sorted.end())));
    }
    for (NodeId s : sinks) {
      if (s >= static_cast<NodeId>(placement.node_count)) {
        fail("sink id " + std::to_string(s) +
             " is outside the topology (placement.node_count = " +
             std::to_string(placement.node_count) + ")");
      }
    }
  }
  if (!(multi_attr_fraction >= 0.0 && multi_attr_fraction <= 1.0)) {
    fail("multi_attr_fraction must be in [0, 1]");
  }
  if (multi_attr_fraction > 0.0) {
    if (multi_attr_count < 2) {
      fail("multi_attr_count must be >= 2 when multi_attr_fraction > 0");
    }
    if (multi_attr_count >
        static_cast<std::size_t>(placement.sensor_type_count)) {
      fail("multi_attr_count exceeds placement.sensor_type_count");
    }
  }
  if (burst_length_epochs < 0) fail("burst_length_epochs must be >= 0");
  if (burst_gap_epochs < 0) fail("burst_gap_epochs must be >= 0");
  if (burst_length_epochs == 0 && burst_gap_epochs > 0) {
    fail("burst_gap_epochs requires burst_length_epochs > 0");
  }
  if (transport == TransportKind::Lmac) {
    if (lmac.slots_per_frame < 1 || lmac.slots_per_frame > 64) {
      fail("lmac.slots_per_frame must be in [1, 64]");
    }
    if (lmac.ticks_per_slot < 1) fail("lmac.ticks_per_slot must be >= 1");
    if (lmac.timeout_frames < 1) fail("lmac.timeout_frames must be >= 1");
  }
}

ExperimentResults Experiment::run() {
  cfg_.validate();
  sim::Rng rng(cfg_.seed);
  net::Topology topo = net::random_connected(cfg_.placement, rng);
  // Environment backend seam: Pinned constructs data::Environment with
  // exactly the arguments this driver always used (same substream, same
  // sequential streams — goldens untouched); Fast swaps in the
  // counter-based twin behind the same ReadingSource interface.
  const std::unique_ptr<data::ReadingSource> env_owner = data::make_environment(
      cfg_.field_backend, topo, cfg_.placement.sensor_type_count,
      rng.substream("environment"));
  data::ReadingSource& env = *env_owner;
  // Sink roots: the explicit list, or spread_roots for a bare count. Both
  // paths keep node 0 — the paper's root — as tree 0 when sink_count is 1,
  // so the default deployment is byte-identical to the single-root ctor.
  std::vector<NodeId> roots;
  if (!cfg_.sinks.empty()) {
    roots = cfg_.sinks;
  } else if (cfg_.sink_count <= 1) {
    roots = {0};
  } else {
    roots = net::spread_roots(topo, cfg_.sink_count);
  }
  DirqNetwork network(topo, roots, cfg_.network);
  const std::size_t n_sinks = network.tree_count();

  // Backend plumbing. The constructor's bootstrap announce wave ran on the
  // network's built-in instant transport (deployment happens before the
  // channel model / MAC applies); the LMAC transport carries that ledger
  // over so cost is continuous across the swap.
  const bool use_lmac = cfg_.transport == TransportKind::Lmac;
  std::optional<LossChannel> loss;
  std::optional<sim::Scheduler> sched;
  std::optional<mac::LmacNetwork> mac;
  std::optional<LmacTransport> lmac_transport;
  std::int64_t current_epoch = 0;
  std::set<NodeId> mac_repaired;  // nodes already handled by tree repair

  if (cfg_.loss_rate > 0.0) {
    // The CRC-loss model lives inside DirqNetwork::deliver (not a sink
    // wrapper): every drop verdict is a pure function of (seed, tree,
    // from, to, per-pair delivery counter) on the seed's dedicated "loss"
    // substream, so the parallel epoch engine evaluates drops inside its
    // shards and any transport — instant or LMAC — sees the same channel.
    // Installed after construction: the bootstrap announce wave models
    // deployment, before the channel applies.
    loss.emplace(cfg_.loss_rate, sim::CounterRng(cfg_.seed).substream("loss"));
    network.set_loss(&*loss);
  }
  if (use_lmac) {
    sched.emplace();
    mac.emplace(*sched, topo, cfg_.lmac);
    lmac_transport.emplace(*mac, network);
    lmac_transport->mutable_costs() = network.costs();
    network.use_transport(*lmac_transport);
    // Cross-layer path (§4.2): LMAC's timeout-based death detection drives
    // DirQ's tree repair. One repair per dead node; LMAC reports the loss
    // once per surviving neighbour.
    lmac_transport->set_on_neighbor_lost(
        [&network, &mac_repaired, &current_epoch](NodeId, NodeId dead) {
          if (mac_repaired.insert(dead).second) {
            network.handle_node_death(dead, current_epoch);
          }
        });
    mac->start();
  }

  // Intra-run parallelism: a pool only exists when the resolved count is
  // > 1. Every backend honours it now — lossy runs evaluate their
  // order-independent drop verdicts in-shard, LMAC runs chunk the epoch
  // walk around the sequential slot loop.
  const unsigned threads = effective_threads(cfg_);
  if (threads > 1) network.set_threads(threads);

  // The generator stays bound to tree 0 whatever the sink count, so the
  // query *stream* is identical across 1-vs-N runs — only the admission
  // decision (which sink injects) varies. Ground-truth involvement is
  // computed per query against the tree it was actually routed to.
  query::WorkloadGenerator workload(
      topo, network.tree(), env,
      query::WorkloadConfig{cfg_.relevant_fraction, 0.02},
      rng.substream("workload"));
  // One rate predictor per sink: each sink floods the EHr it observed.
  std::vector<query::QueryRatePredictor> predictors;
  predictors.reserve(n_sinks);
  for (std::size_t t = 0; t < n_sinks; ++t) {
    predictors.emplace_back(0.4, cfg_.epochs_per_hour);
  }
  QueryAdmission admission(cfg_.routing, network.trees());
  // The multi-attribute mix draws from its own named substream, and only
  // when the mix is enabled — a 0-fraction run consumes no RNG here and
  // every pre-existing golden stays byte-identical.
  std::optional<sim::Rng> multi_rng;
  if (cfg_.multi_attr_fraction > 0.0) {
    multi_rng.emplace(rng.substream("multi-attr"));
  }
  FloodingScheme flooding(topo);

  ExperimentResults res;
  res.sink_roots = roots;
  res.sink_ledgers.resize(n_sinks);
  res.sink_queries.assign(n_sinks, 0);
  res.sink_query_latency.resize(n_sinks);
  res.sink_umax_per_hour.resize(n_sinks);
  res.updates_per_bin = sim::TimeSeries(cfg_.series_bin);
  network.set_update_hook(
      [&res](std::int64_t epoch) { res.updates_per_bin.record(epoch); });

  // A query injected on the LMAC backend disseminates across the following
  // frames; its outcome is collected just before the next injection (or
  // after the post-run drain). The instant backend collects synchronously.
  struct PendingQuery {
    std::int64_t epoch = 0;
    TreeId tree = 0;  // sink the admission layer routed it to
    SensorType type = 0;
    query::Involvement truth;
    std::size_t population = 0;
    CostUnits flooding_cost = 0;
  };
  std::optional<PendingQuery> pending;

  // `answer_epoch` is when the audit closed: the injection epoch itself on
  // the instant transport, the boundary that collected the outcome on LMAC
  // — so a deferred audit's latency includes the full deferral window, not
  // just the dissemination round-trip.
  const auto finalize_query = [this, &res, &admission](
                                  const PendingQuery& p,
                                  const QueryOutcome& outcome,
                                  std::int64_t answer_epoch) {
    const metrics::QueryAudit audit =
        metrics::audit_query(p.truth.involved, outcome.received);
    const metrics::QueryAudit source_audit =
        metrics::audit_query(p.truth.sources, outcome.believed_sources);
    const auto pct = [&p](std::size_t n) {
      return p.population == 0 ? 0.0
                               : 100.0 * static_cast<double>(n) /
                                     static_cast<double>(p.population);
    };
    res.overshoot_pct.push(audit.overshoot_pct());
    res.should_pct.push(pct(audit.should_count));
    res.receive_pct.push(pct(audit.received_count));
    res.source_pct.push(pct(p.truth.sources.size()));
    res.wrong_pct.push(pct(audit.wrong));
    res.coverage_pct.push(audit.coverage_pct());
    res.source_overshoot_pct.push(source_audit.overshoot_pct());
    res.source_coverage_pct.push(source_audit.coverage_pct());
    res.flooding_total += p.flooding_cost;
    const std::int64_t latency = answer_epoch - p.epoch;
    res.query_latency_epochs.record(latency);
    res.sink_query_latency[p.tree].record(latency);
    ++res.queries;
    ++res.sink_queries[p.tree];
    // Close the admission feedback loop: the audited dissemination cost of
    // this query becomes part of its sink's load score.
    admission.note_cost(p.tree, outcome.cost);

    if (cfg_.keep_records) {
      QueryRecord rec;
      rec.epoch = p.epoch;
      rec.type = p.type;
      rec.audit = audit;
      rec.source_audit = source_audit;
      rec.dirq_query_cost = outcome.cost;
      rec.flooding_cost = p.flooding_cost;
      rec.sources = p.truth.sources.size();
      rec.population = p.population;
      rec.latency_epochs = latency;
      res.records.push_back(rec);
    }
  };

  // The operator's prior for hour 0: the advertised query interface rate.
  const double prior_ehr = static_cast<double>(cfg_.epochs_per_hour) /
                           static_cast<double>(cfg_.query_period);
  const SimTime frame_ticks = cfg_.lmac.frame_ticks();

  for (std::int64_t epoch = 0; epoch < cfg_.epochs; ++epoch) {
    current_epoch = epoch;
    env.advance_to(epoch);

    if (epoch % cfg_.epochs_per_hour == 0) {
      for (TreeId t = 0; t < static_cast<TreeId>(n_sinks); ++t) {
        // Each sink floods the EHr *it* observed; hour 0 splits the
        // advertised prior evenly (== prior_ehr when n_sinks is 1, so the
        // single-sink series is bit-identical to the pre-multi-sink code).
        const double ehr =
            predictors[t].completed_hours() > 0
                ? predictors[t].predict_next_hour()
                : prior_ehr / static_cast<double>(n_sinks);
        // Record the exact Umax/Hr each root flooded (Fig. 6 lines): the
        // broadcast's return value is the single source of truth
        // (analysis::umax_messages_per_hour), never a re-derivation.
        const double umax = network.broadcast_ehr(t, ehr, epoch);
        res.sink_umax_per_hour[t].push_back(umax);
        if (t == 0) {
          // The global series stays the tree-0 view — the paper's root.
          res.umax_per_hour.push_back(umax);
          res.ehr_per_hour.push_back(ehr);
        }
      }
    }

    network.process_epoch(env, epoch);

    if (epoch % cfg_.query_period == 0 && epoch > 0) {
      // A pending (LMAC) query is audited at every period boundary — also
      // inside a burst gap — so each one gets the same query_period-frame
      // dissemination window regardless of the arrival shape.
      if (pending) {
        finalize_query(*pending, network.collect_outcome(), epoch);
        pending.reset();
      }
      const bool in_burst =
          cfg_.burst_length_epochs <= 0 ||
          epoch % (cfg_.burst_length_epochs + cfg_.burst_gap_epochs) <
              cfg_.burst_length_epochs;
      if (in_burst) {
        // Admission decides *where* the query enters; the workload decides
        // *what* it asks. Keeping the two independent means the query
        // stream is identical across sink counts and routing policies.
        for (TreeId t = 0; t < static_cast<TreeId>(n_sinks); ++t) {
          admission.sync_load(t, network.tree_ledger(t).total());
        }
        const TreeId routed = admission.route();
        const net::SpanningTree& sink_tree = network.tree(routed);
        predictors[routed].record_query(epoch);
        PendingQuery p;
        p.epoch = epoch;
        p.tree = routed;
        p.population = sink_tree.size() > 0 ? sink_tree.size() - 1 : 0;
        p.flooding_cost = flooding.analytical_cost();
        const bool is_multi =
            multi_rng && multi_rng->bernoulli(cfg_.multi_attr_fraction);
        if (is_multi) {
          query::MultiQuery q =
              workload.next_multi(epoch, cfg_.multi_attr_count);
          p.type = q.predicates.empty() ? 0 : q.predicates.front().type;
          p.truth = query::compute_involvement(q, topo, sink_tree, env);
          if (use_lmac) {
            network.inject_async(routed, q, epoch);
            pending = std::move(p);
          } else {
            finalize_query(p, network.inject(routed, q, epoch), epoch);
          }
        } else {
          query::RangeQuery q = workload.next(epoch);
          p.type = q.type;
          p.truth = query::compute_involvement(q, topo, sink_tree, env);
          if (use_lmac) {
            network.inject_async(routed, q, epoch);
            pending = std::move(p);
          } else {
            finalize_query(p, network.inject(routed, q, epoch), epoch);
          }
        }
      }
    }

    if (epoch % cfg_.series_bin == 0) {
      // Mean temperature-theta across alive non-root nodes: ATC trace.
      res.theta_pct_series.push_back(
          network.mean_theta_pct(kSensorTemperature));
    }

    if (use_lmac) {
      // One sensing epoch = one LMAC frame: deliver every slot of frame
      // `epoch` but stop short of frame epoch+1's first slot (scheduled at
      // exactly (epoch+1) * frame_ticks).
      sched->run_until((epoch + 1) * frame_ticks - 1);
    }
  }

  // The MAC's standing cost: control-section tx+rx over all nodes —
  // traffic LMAC spends keeping the schedule alive whether or not DirQ
  // sends anything (bench_lmac_overhead's comparison row). Snapshotted
  // *before* the drain below: the drain advances extra frames whenever
  // epochs is not a multiple of query_period, and folding their
  // keep-alive traffic into the per-epoch total would make a 20001-epoch
  // run incomparable to a 20000-epoch one. Drain-frame cost is attributed
  // separately.
  const auto mac_control_sum = [&] {
    CostUnits sum = 0;
    for (NodeId u = 0; u < topo.size(); ++u) {
      sum += mac->control_tx(u) + mac->control_rx(u);
    }
    return sum;
  };

  if (use_lmac) res.mac_control_total = mac_control_sum();

  if (pending) {
    // Drain: audit the final query after exactly the same query_period-frame
    // dissemination window every mid-run query gets (the loop has already
    // advanced past this time when epochs is a multiple of query_period, in
    // which case this is a no-op).
    sched->run_until((pending->epoch + cfg_.query_period) * frame_ticks - 1);
    finalize_query(*pending, network.collect_outcome(),
                   pending->epoch + cfg_.query_period);
    pending.reset();
  }
  if (use_lmac) res.mac_control_drain = mac_control_sum() - res.mac_control_total;

  res.ledger = network.costs();
  for (TreeId t = 0; t < static_cast<TreeId>(n_sinks); ++t) {
    res.sink_ledgers[t] = network.tree_ledger(t);
  }
  // Marginal maintenance price of the extra trees: everything the k>=1
  // overlays spent on updates and control. Tree 0 is the baseline the
  // single-sink deployment would have paid anyway.
  res.cross_tree_update_overhead = 0;
  for (TreeId t = 1; t < static_cast<TreeId>(n_sinks); ++t) {
    res.cross_tree_update_overhead += res.sink_ledgers[t].update_cost() +
                                      res.sink_ledgers[t].control_cost();
  }
  res.updates_transmitted = network.updates_transmitted();
  res.samples_taken = network.samples_taken();
  res.samples_skipped = network.samples_skipped();
  res.node_tx.resize(network.size());
  res.node_rx.resize(network.size());
  for (NodeId u = 0; u < network.size(); ++u) {
    res.node_tx[u] = network.node_tx(u);
    res.node_rx[u] = network.node_rx(u);
  }
  return res;
}

}  // namespace dirq::core

// LMAC-backed transport: DirQ over the real (simulated) TDMA MAC.
//
// Messages ride slot-synchronously in the sender's data section; deaths
// are discovered by LMAC's control-message timeout and surface as
// cross-layer callbacks, which this adapter forwards to a user-supplied
// handler (typically DirqNetwork::handle_node_death via the integration
// harness). This is the paper's §4.2 cross-layer path.
//
// Cost note: this transport reports *data-section* costs in its ledger
// (the DirQ messages); LMAC's own control traffic is accounted inside
// LmacNetwork and is the MAC's standing cost, present for flooding and
// DirQ alike.
#pragma once

#include <functional>

#include "core/transport.hpp"
#include "mac/lmac.hpp"

namespace dirq::core {

class LmacTransport final : public Transport, public mac::LinkObserver {
 public:
  /// The LmacNetwork must be started by the caller; this adapter installs
  /// itself as the MAC's observer.
  LmacTransport(mac::LmacNetwork& mac, MessageSink& sink);

  // --- Transport ------------------------------------------------------------
  void unicast(NodeId from, NodeId to, const Message& msg) override;
  void multicast(NodeId from, std::span<const NodeId> targets,
                 const Message& msg) override;
  void broadcast(NodeId from, const Message& msg) override;
  [[nodiscard]] const CostLedger& costs() const override { return ledger_; }
  /// Writable ledger access so a driver swapping transports mid-run can
  /// carry an earlier transport's accumulated costs over (the same pattern
  /// InstantTransport offers for the LossySink swap).
  CostLedger& mutable_costs() noexcept { return ledger_; }

  // --- cross-layer notifications ---------------------------------------------
  using NeighborHandler = std::function<void(NodeId self, NodeId neighbor)>;
  void set_on_neighbor_lost(NeighborHandler h) { on_lost_ = std::move(h); }
  void set_on_neighbor_found(NeighborHandler h) { on_found_ = std::move(h); }

  // --- mac::LinkObserver -------------------------------------------------------
  void on_message(NodeId self, const mac::Frame& frame) override;
  void on_neighbor_lost(NodeId self, NodeId neighbor) override;
  void on_neighbor_found(NodeId self, NodeId neighbor) override;

 private:
  struct Addressed {  // multicast payload: explicit target set
    std::vector<NodeId> targets;
    Message msg;
  };

  void charge_tx(const Message& msg);
  void charge_rx(const Message& msg);

  mac::LmacNetwork& mac_;
  MessageSink& sink_;
  CostLedger ledger_;
  NeighborHandler on_lost_;
  NeighborHandler on_found_;
};

}  // namespace dirq::core

// LMAC-backed transport: DirQ over the real (simulated) TDMA MAC.
//
// Messages ride slot-synchronously in the sender's data section; deaths
// are discovered by LMAC's control-message timeout and surface as
// cross-layer callbacks, which this adapter forwards to a user-supplied
// handler (typically DirqNetwork::handle_node_death via the integration
// harness). This is the paper's §4.2 cross-layer path.
//
// Cost note: this transport reports *data-section* costs in its ledger
// (the DirQ messages); LMAC's own control traffic is accounted inside
// LmacNetwork and is the MAC's standing cost, present for flooding and
// DirQ alike.
#pragma once

#include <functional>

#include "core/transport.hpp"
#include "mac/lmac.hpp"

namespace dirq::core {

class LmacTransport final : public Transport, public mac::LinkObserver {
 public:
  /// The LmacNetwork must be started by the caller; this adapter installs
  /// itself as the MAC's observer.
  LmacTransport(mac::LmacNetwork& mac, MessageSink& sink);

  // --- Transport ------------------------------------------------------------
  void unicast(NodeId from, NodeId to, const Message& msg) override;
  void multicast(NodeId from, std::span<const NodeId> targets,
                 const Message& msg) override;
  void broadcast(NodeId from, const Message& msg) override;
  [[nodiscard]] const CostLedger& costs() const override { return ledger_; }
  /// Writable ledger access so a driver swapping transports mid-run can
  /// carry an earlier transport's accumulated costs over, and so the
  /// parallel epoch engine can merge its shard-local ledgers in.
  [[nodiscard]] CostLedger& mutable_costs() noexcept override {
    return ledger_;
  }
  /// Sends only enqueue into the sender's per-node tx queue; delivery
  /// happens later in the scheduler's slot loop. This is what lets the
  /// epoch engine walk nodes in parallel chunks: during the walk nothing
  /// is delivered, so slot order — the MAC's contract — is untouched.
  [[nodiscard]] bool deferred_delivery() const noexcept override {
    return true;
  }
  /// Enqueue without charging ledger_ — mac::LmacNetwork::send is a pure
  /// push into the sender's own queue, so distinct senders can enqueue
  /// concurrently while the engine's shard-local ledgers take the charge.
  void unicast_uncharged(NodeId from, NodeId to, const Message& msg) override;

  // --- cross-layer notifications ---------------------------------------------
  using NeighborHandler = std::function<void(NodeId self, NodeId neighbor)>;
  void set_on_neighbor_lost(NeighborHandler h) { on_lost_ = std::move(h); }
  void set_on_neighbor_found(NeighborHandler h) { on_found_ = std::move(h); }

  // --- mac::LinkObserver -------------------------------------------------------
  void on_message(NodeId self, const mac::Frame& frame) override;
  void on_neighbor_lost(NodeId self, NodeId neighbor) override;
  void on_neighbor_found(NodeId self, NodeId neighbor) override;

 private:
  struct Addressed {  // multicast payload: explicit target set
    std::vector<NodeId> targets;
    Message msg;
  };

  void charge_tx(const Message& msg);
  void charge_rx(const Message& msg);

  mac::LmacNetwork& mac_;
  MessageSink& sink_;
  CostLedger ledger_;
  NeighborHandler on_lost_;
  NeighborHandler on_found_;
};

}  // namespace dirq::core

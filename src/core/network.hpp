// DirqNetwork: the whole-network DirQ instance.
//
// Owns one DirqNode per topology node, wires them to a transport, runs the
// epoch loop (sampling -> update propagation), injects queries at a sink
// root and audits which nodes the dissemination reaches, floods the hourly
// EHr estimate, and repairs the communication trees on node
// death/addition (paper §4.2).
//
// Multi-sink query plane: the network owns a net::TreeSet — N BFS
// spanning trees over the one shared topology, one per sink. Every node
// runs one protocol slot per tree (core/dirq_node.hpp); messages carry
// their TreeId; a per-tree CostLedger mirrors the transport's global
// ledger so each sink's energy bill is attributable (the mirrors sum to
// the global ledger on every transport — asserted by core.multi_sink).
// The single-root constructor builds a one-tree set, and every TreeId-less
// entry point addresses tree 0, so the paper's single-sink deployment is
// byte-identical to the pre-refactor code.
//
// The per-query audit records the exact set of nodes the query message was
// delivered to — this is the "nodes that RECEIVE a query" series of
// Fig. 5, compared by the metrics layer against the ground-truth
// involvement from query::compute_involvement.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "core/dirq_node.hpp"
#include "core/messages.hpp"
#include "core/sampling.hpp"
#include "core/transport.hpp"
#include "data/field_model.hpp"
#include "net/tree_set.hpp"
#include "net/topology.hpp"
#include "query/query.hpp"
#include "sim/types.hpp"

namespace dirq::core {

/// Result of injecting one query.
struct QueryOutcome {
  QueryId id = 0;
  TreeId tree = 0;                       // sink tree it was injected into
  std::vector<NodeId> received;          // nodes the query was delivered to
  std::vector<NodeId> believed_sources;  // received && own tuple overlaps
  CostUnits cost = 0;                    // tx+rx spent on this dissemination
};

struct NetworkConfig {
  enum class ThetaMode { Fixed, Atc };
  ThetaMode mode = ThetaMode::Fixed;
  double fixed_pct = 5.0;  // theta as % of each type's nominal span
  AtcConfig atc;
  /// Optional sampling suppression (paper §8 future work); off by default
  /// to match the paper's evaluated configuration.
  SamplingConfig sampling;
};

struct EpochShardCtx;  // parallel epoch internals (network.cpp)
class LossChannel;     // counter-keyed CRC-loss model (core/lossy.hpp)

class DirqNetwork final : public MessageSink {
 public:
  /// Builds the node set and one BFS communication tree rooted at `root`
  /// (the paper's deployment). The topology must outlive the network.
  DirqNetwork(net::Topology& topo, NodeId root, NetworkConfig cfg);

  /// Multi-sink form: one BFS tree per root over the shared topology.
  /// Root validity (non-empty, unique, in-topology, alive) is enforced by
  /// the TreeSet constructor.
  DirqNetwork(net::Topology& topo, std::vector<NodeId> roots,
              NetworkConfig cfg);
  ~DirqNetwork() override;

  DirqNetwork(const DirqNetwork&) = delete;
  DirqNetwork& operator=(const DirqNetwork&) = delete;

  // --- wiring ---------------------------------------------------------------

  /// Default transport: the built-in InstantTransport. Replaceable (the
  /// LMAC transport installs itself here); the transport must outlive the
  /// network's use of it.
  void use_transport(Transport& t) { transport_ = &t; }
  [[nodiscard]] Transport& transport() noexcept { return *transport_; }
  [[nodiscard]] const CostLedger& costs() const { return transport_->costs(); }

  /// Installs (or clears, with nullptr) the lossy-channel model: every
  /// delivery — any transport — rolls a counter-keyed drop verdict after
  /// the radio's rx has been charged, and dropped frames never reach the
  /// protocol (the exact LossySink semantics, folded into deliver() so the
  /// parallel epoch engine can evaluate verdicts inside its shards). The
  /// channel must outlive the network's use of it; its counter planes are
  /// pre-sized here and kept sized across churn.
  void set_loss(LossChannel* loss);
  [[nodiscard]] const LossChannel* loss() const noexcept { return loss_; }

  /// The sink's share of the global ledger: every tx is booked against the
  /// tree its message belongs to at send time, every rx at delivery (or
  /// CRC-drop) time, so sum(tree_ledger(k)) == costs() holds on every
  /// transport at all times.
  [[nodiscard]] const CostLedger& tree_ledger(TreeId t) const {
    return tree_ledgers_.at(t);
  }

  [[nodiscard]] const net::TreeSet& trees() const noexcept { return trees_; }
  [[nodiscard]] std::size_t tree_count() const noexcept {
    return trees_.count();
  }
  [[nodiscard]] const net::SpanningTree& tree() const noexcept {
    return trees_.tree(0);
  }
  [[nodiscard]] const net::SpanningTree& tree(TreeId t) const {
    return trees_.tree(t);
  }
  [[nodiscard]] NodeId root() const noexcept { return root_; }
  [[nodiscard]] NodeId root(TreeId t) const { return trees_.root(t); }
  [[nodiscard]] DirqNode& node(NodeId id) { return nodes_.at(id); }
  [[nodiscard]] const DirqNode& node(NodeId id) const { return nodes_.at(id); }
  [[nodiscard]] std::size_t size() const noexcept { return nodes_.size(); }

  // --- protocol operation ----------------------------------------------------

  /// One sensing epoch: every alive tree member samples each of its
  /// sensors; threshold crossings emit Update Messages that propagate
  /// toward each tree's root (instant transport: synchronously). Readings
  /// are pulled through the environment's batch plane — one
  /// ReadingSource::readings call per sensor type per epoch instead of a
  /// virtual reading() per node — and each physical sample is observed by
  /// every tree slot, so N sinks never multiply the sensing energy. The
  /// walk is tree 0's cached BFS order (extended by members of other
  /// trees outside it), so the per-node evaluation order — and therefore
  /// every message, golden, and ledger entry — is unchanged for one sink.
  void process_epoch(const data::ReadingSource& env, std::int64_t epoch);

  /// Intra-run worker count for process_epoch. 1 (the default) keeps the
  /// exact sequential code path — the only configuration goldens are
  /// recorded against; 0 means all hardware threads. With more than one
  /// thread, epochs on the built-in instant transport shard the consume
  /// pass — by root-child subtree for one sink (all update traffic is
  /// up-tree unicast, so shards only interact at the root, whose
  /// ledger/counter/FlatMap state is order-independent), and by spanning
  /// tree for several sinks (each shard advances only its own tree's
  /// per-node slot, so the shards are write-disjoint; shard 0 owns the
  /// shared sampling gate) — and run reading batches concurrently, split
  /// below whole types when the source allows. A deferred-delivery
  /// transport (LMAC) gets a third geometry: contiguous chunks of the
  /// epoch walk, each node fully processed in one chunk — sends only
  /// enqueue into the sender's own per-node MAC queue, so the walk is
  /// write-disjoint and the slot-ordered delivery loop (the MAC's
  /// contract) stays sequential and untouched. A lossy channel
  /// (set_loss) no longer forces the sequential path either: drop
  /// verdicts are pure functions of delivery identity (core/lossy.hpp),
  /// so shards evaluate them inline. Summaries are byte-identical to the
  /// sequential path on every transport, single- and multi-sink. Epochs
  /// inside an open query audit on the instant transport silently run the
  /// sequential path (chunk-mode epochs perform no deliveries, so audits
  /// are safe there). Callers that mutate topology aliveness or sensors
  /// must route through the handle_* entry points (as always) so the
  /// cached shard plan is invalidated.
  void set_threads(unsigned threads);
  [[nodiscard]] unsigned threads() const noexcept;

  /// Hourly sink broadcast (paper §4): EHr plus the derived network-wide
  /// update budget Umax/Hr = fMax(graph) * EHr, flooded from the tree's
  /// root to every node (per-tree flood round, per-slot duplicate
  /// suppression). Returns the Umax/Hr value carried by the flooded
  /// message (0 when the tree has fewer than two members and nothing is
  /// flooded) — the single source the driver records, so the Fig. 6
  /// series can never drift from what the network disseminated.
  double broadcast_ehr(double expected_queries_per_hour, std::int64_t epoch) {
    return broadcast_ehr(0, expected_queries_per_hour, epoch);
  }
  double broadcast_ehr(TreeId tree, double expected_queries_per_hour,
                       std::int64_t epoch);

  /// Injects a query at a sink's root and returns the audited outcome.
  /// With the instant transport the dissemination completes synchronously;
  /// with an event-driven transport use inject_async + collect_outcome
  /// instead. The TreeId-less forms inject at tree 0 (the paper's sink).
  QueryOutcome inject(const query::RangeQuery& q, std::int64_t epoch) {
    return inject(0, q, epoch);
  }
  QueryOutcome inject(const query::MultiQuery& q, std::int64_t epoch) {
    return inject(0, q, epoch);
  }
  QueryOutcome inject(TreeId tree, const query::RangeQuery& q,
                      std::int64_t epoch);
  QueryOutcome inject(TreeId tree, const query::MultiQuery& q,
                      std::int64_t epoch);

  /// Starts an asynchronous dissemination (event-driven transports). The
  /// audit keeps accumulating until collect_outcome is called.
  void inject_async(const query::RangeQuery& q, std::int64_t epoch) {
    inject_async(0, q, epoch);
  }
  void inject_async(const query::MultiQuery& q, std::int64_t epoch) {
    inject_async(0, q, epoch);
  }
  void inject_async(TreeId tree, const query::RangeQuery& q,
                    std::int64_t epoch);
  void inject_async(TreeId tree, const query::MultiQuery& q,
                    std::int64_t epoch);

  /// Finishes the audit started by the last inject_async.
  QueryOutcome collect_outcome();

  // --- topology dynamics (paper §4.2) -----------------------------------------

  /// Call after Topology::kill_node: repairs every affected tree, drops
  /// the dead child's tuples (triggering upward updates), re-announces
  /// re-parented subtrees. Trees the change provably cannot touch keep
  /// their cached structure (net::TreeSet::rebuild_affected).
  void handle_node_death(NodeId dead, std::int64_t epoch);

  /// Call after Topology::add_node: attaches the newcomer to the affected
  /// trees and integrates any re-parented neighbours.
  void handle_node_addition(NodeId added, std::int64_t epoch);

  /// Post-deployment sensor change on a node (propagates up, §4.2).
  void handle_sensor_added(NodeId id, SensorType type, std::int64_t epoch);
  void handle_sensor_removed(NodeId id, SensorType type, std::int64_t epoch);

  // --- statistics ---------------------------------------------------------------

  /// Total Update Message transmissions network-wide (origins + relays,
  /// all trees).
  [[nodiscard]] std::int64_t updates_transmitted() const noexcept {
    return updates_transmitted_;
  }

  /// Physical sensor samples taken / suppressed network-wide (paper §8
  /// sampling suppression; skipped == 0 when the feature is disabled).
  [[nodiscard]] std::int64_t samples_taken() const;
  [[nodiscard]] std::int64_t samples_skipped() const;

  /// Mean threshold (as % of the type's nominal span) over alive non-root
  /// members of tree 0 — the ATC trajectory series (kept a tree-0 series:
  /// the paper's figure tracks the primary sink's tree). Centralises the
  /// alive filter: dead nodes never contribute, matching the tree's
  /// cached (alive-only) BFS order.
  [[nodiscard]] double mean_theta_pct(SensorType type) const;

  /// The per-node sampling gate (tests and diagnostics).
  [[nodiscard]] const SamplingController& sampler(NodeId id) const {
    return samplers_.at(id);
  }

  /// Per-node radio energy (tx + rx units attributed to each node). The
  /// network's lifetime is governed by its hottest node, so the
  /// *distribution* matters as much as the total (bench/energy_hotspots).
  [[nodiscard]] CostUnits node_tx(NodeId id) const { return node_tx_.at(id); }
  [[nodiscard]] CostUnits node_rx(NodeId id) const { return node_rx_.at(id); }
  [[nodiscard]] CostUnits node_energy(NodeId id) const {
    return node_tx_.at(id) + node_rx_.at(id);
  }

  /// Accounts the reception energy of a frame the radio received but the
  /// protocol never saw (CRC failure — a lossy-channel drop). The transport's
  /// ledger already charged this rx; calling it keeps the per-node
  /// distribution reconciled with the ledger (see core/lossy.hpp). Like
  /// deliver(), grows the attribution array when the recipient's topology
  /// slot exists but its protocol instance does not yet (the add_node →
  /// retarget window) — the ledger was charged, so the node must be too.
  /// The message-carrying form also books the rx against the dropped
  /// frame's tree, keeping the per-sink mirrors reconciled under loss.
  void note_dropped_rx(NodeId to) {
    if (to >= node_rx_.size()) node_rx_.resize(topo_.size(), 0);
    node_rx_.at(to) += 1;
  }
  void note_dropped_rx(NodeId to, const Message& msg) {
    charge_tree_rx(msg);
    note_dropped_rx(to);
  }

  /// Hook invoked once per Update Message transmission with the epoch —
  /// the driver records the Fig. 6 time series through this.
  using UpdateHook = std::function<void(std::int64_t epoch)>;
  void set_update_hook(UpdateHook hook) { update_hook_ = std::move(hook); }

  /// Hook invoked with the audited outcome every time a query audit
  /// closes (collect_outcome — which the synchronous inject() forms call
  /// too). The serve front-end learns answer completion through this
  /// instead of polling the audit state; batch drivers that consume the
  /// inject() return value directly can leave it unset.
  using QueryDoneHook = std::function<void(const QueryOutcome&)>;
  void set_query_done_hook(QueryDoneHook hook) {
    query_done_hook_ = std::move(hook);
  }

  // --- MessageSink -----------------------------------------------------------------

  void deliver(NodeId to, NodeId from, const Message& msg) override;

 private:
  struct ParallelEngine;

  void wire_node(DirqNode& n);
  void begin_audit(QueryId id, TreeId tree, std::int64_t epoch);
  /// Re-runs BFS on every tree `changed` could have touched and
  /// reconciles those trees' parent/children pointers, removing stale
  /// child tuples and re-announcing moved subtrees.
  void retarget_trees(NodeId changed, std::int64_t epoch);
  /// The sequential epoch walk: tree 0's cached BFS order for one sink,
  /// the cached union walk (tree 0 + members of other trees outside it)
  /// otherwise.
  [[nodiscard]] const std::vector<NodeId>& epoch_walk_order() const;
  void rebuild_union_walk();
  void charge_tree_tx(const Message& msg);
  void charge_tree_rx(const Message& msg);
  [[nodiscard]] std::int64_t internal_node_count() const;

  // Parallel epoch path (network.cpp): shard plan, per-shard consume,
  // shard-local unicast mirroring InstantTransport's accounting.
  void rebuild_parallel_plan();
  void process_epoch_parallel(const data::ReadingSource& env,
                              std::int64_t epoch);
  void run_shard_consume(std::size_t shard, std::int64_t epoch);
  void run_tree_shard_consume(std::size_t shard, std::int64_t epoch);
  void parallel_unicast(EpochShardCtx& ctx, NodeId from, NodeId to,
                        const Message& msg);

  net::Topology& topo_;
  NetworkConfig cfg_;
  net::TreeSet trees_;
  NodeId root_;  // trees_.root(0), cached for the hot paths
  std::vector<DirqNode> nodes_;
  std::vector<SamplingController> samplers_;  // one per node
  std::vector<CostUnits> node_tx_, node_rx_;  // per-node radio energy
  /// prev_parent_[tree][node]: snapshot for churn reconciliation.
  std::vector<std::vector<NodeId>> prev_parent_;
  /// Per-sink mirror of the transport ledger (see tree_ledger()).
  std::vector<CostLedger> tree_ledgers_;
  std::vector<NodeId> union_order_;  // multi-tree epoch walk (empty for 1)

  std::unique_ptr<InstantTransport> instant_;
  Transport* transport_ = nullptr;
  LossChannel* loss_ = nullptr;  // CRC-loss model, nullptr when lossless

  /// Present iff set_threads(> 1): the persistent worker pool plus the
  /// cached shard-major walk plan (see network.cpp).
  std::unique_ptr<ParallelEngine> par_;

  // Scratch for the batched sampling path (reused across epochs so the
  // hot loop never allocates): per sensor type, the nodes that will
  // physically sample this epoch in walk order, their readings, and the
  // consumption cursor of the second pass.
  std::vector<std::vector<NodeId>> batch_nodes_;
  std::vector<std::vector<double>> batch_values_;
  std::vector<std::size_t> batch_cursor_;

  std::int64_t current_epoch_ = 0;
  std::int64_t updates_transmitted_ = 0;
  UpdateHook update_hook_;
  QueryDoneHook query_done_hook_;

  /// True while the parallel merge replays deferred root deliveries:
  /// their rx was already charged into the shard ledger (and merged into
  /// the tree mirror), so deliver() must not book it twice.
  bool merging_parallel_ = false;

  // Per-query audit state.
  bool audit_active_ = false;
  QueryId audit_query_ = 0;
  TreeId audit_tree_ = 0;
  CostUnits audit_cost_start_ = 0;
  std::vector<NodeId> audit_received_;
  std::vector<NodeId> audit_believed_;

  std::int64_t ehr_round_ = 0;
};

std::unique_ptr<ThetaController> make_controller(const NetworkConfig& cfg);

}  // namespace dirq::core

// DirqNetwork: the whole-network DirQ instance.
//
// Owns one DirqNode per topology node, wires them to a transport, runs the
// epoch loop (sampling -> update propagation), injects queries at the root
// and audits which nodes the dissemination reaches, floods the hourly EHr
// estimate, and repairs the communication tree on node death/addition
// (paper §4.2).
//
// The per-query audit records the exact set of nodes the query message was
// delivered to — this is the "nodes that RECEIVE a query" series of
// Fig. 5, compared by the metrics layer against the ground-truth
// involvement from query::compute_involvement.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "core/dirq_node.hpp"
#include "core/messages.hpp"
#include "core/sampling.hpp"
#include "core/transport.hpp"
#include "data/field_model.hpp"
#include "net/spanning_tree.hpp"
#include "net/topology.hpp"
#include "query/query.hpp"
#include "sim/types.hpp"

namespace dirq::core {

/// Result of injecting one query.
struct QueryOutcome {
  QueryId id = 0;
  std::vector<NodeId> received;          // nodes the query was delivered to
  std::vector<NodeId> believed_sources;  // received && own tuple overlaps
  CostUnits cost = 0;                    // tx+rx spent on this dissemination
};

struct NetworkConfig {
  enum class ThetaMode { Fixed, Atc };
  ThetaMode mode = ThetaMode::Fixed;
  double fixed_pct = 5.0;  // theta as % of each type's nominal span
  AtcConfig atc;
  /// Optional sampling suppression (paper §8 future work); off by default
  /// to match the paper's evaluated configuration.
  SamplingConfig sampling;
};

struct EpochShardCtx;  // parallel epoch internals (network.cpp)

class DirqNetwork final : public MessageSink {
 public:
  /// Builds the node set and the BFS communication tree rooted at `root`.
  /// The topology must outlive the network.
  DirqNetwork(net::Topology& topo, NodeId root, NetworkConfig cfg);
  ~DirqNetwork() override;

  DirqNetwork(const DirqNetwork&) = delete;
  DirqNetwork& operator=(const DirqNetwork&) = delete;

  // --- wiring ---------------------------------------------------------------

  /// Default transport: the built-in InstantTransport. Replaceable (the
  /// LMAC transport installs itself here); the transport must outlive the
  /// network's use of it.
  void use_transport(Transport& t) { transport_ = &t; }
  [[nodiscard]] Transport& transport() noexcept { return *transport_; }
  [[nodiscard]] const CostLedger& costs() const { return transport_->costs(); }

  [[nodiscard]] const net::SpanningTree& tree() const noexcept { return tree_; }
  [[nodiscard]] NodeId root() const noexcept { return root_; }
  [[nodiscard]] DirqNode& node(NodeId id) { return nodes_.at(id); }
  [[nodiscard]] const DirqNode& node(NodeId id) const { return nodes_.at(id); }
  [[nodiscard]] std::size_t size() const noexcept { return nodes_.size(); }

  // --- protocol operation ----------------------------------------------------

  /// One sensing epoch: every alive tree member samples each of its
  /// sensors; threshold crossings emit Update Messages that propagate
  /// toward the root (instant transport: synchronously). Readings are
  /// pulled through the environment's batch plane — one
  /// ReadingSource::readings call per sensor type per epoch instead of a
  /// virtual reading() per node — while the per-node evaluation order
  /// (and therefore every message, golden, and ledger entry) is
  /// unchanged.
  void process_epoch(const data::ReadingSource& env, std::int64_t epoch);

  /// Intra-run worker count for process_epoch. 1 (the default) keeps the
  /// exact sequential code path — the only configuration goldens are
  /// recorded against; 0 means all hardware threads. With more than one
  /// thread, epochs on the built-in instant transport shard the consume
  /// pass by root-child subtree (all update traffic is up-tree unicast,
  /// so shards only interact at the root, whose ledger/counter/FlatMap
  /// state is order-independent) and run per-type reading batches
  /// concurrently when the source allows — byte-identical summaries to
  /// the sequential path on both synthetic backends. Epochs on a swapped
  /// transport (LMAC, lossy) or inside an open query audit silently run
  /// the sequential path. Callers that mutate topology aliveness or
  /// sensors must route through the handle_* entry points (as always) so
  /// the cached shard plan is invalidated.
  void set_threads(unsigned threads);
  [[nodiscard]] unsigned threads() const noexcept;

  /// Hourly root broadcast (paper §4): EHr plus the derived network-wide
  /// update budget Umax/Hr = fMax(graph) * EHr, flooded to every node.
  /// Returns the Umax/Hr value carried by the flooded message (0 when the
  /// tree has fewer than two members and nothing is flooded) — the single
  /// source the driver records, so the Fig. 6 series can never drift from
  /// what the network disseminated.
  double broadcast_ehr(double expected_queries_per_hour, std::int64_t epoch);

  /// Injects a query at the root and returns the audited outcome. With the
  /// instant transport the dissemination completes synchronously; with an
  /// event-driven transport use inject_async + collect_outcome instead.
  QueryOutcome inject(const query::RangeQuery& q, std::int64_t epoch);
  QueryOutcome inject(const query::MultiQuery& q, std::int64_t epoch);

  /// Starts an asynchronous dissemination (event-driven transports). The
  /// audit keeps accumulating until collect_outcome is called.
  void inject_async(const query::RangeQuery& q, std::int64_t epoch);
  void inject_async(const query::MultiQuery& q, std::int64_t epoch);

  /// Finishes the audit started by the last inject_async.
  QueryOutcome collect_outcome();

  // --- topology dynamics (paper §4.2) -----------------------------------------

  /// Call after Topology::kill_node: repairs the tree, drops the dead
  /// child's tuples (triggering upward updates), re-announces re-parented
  /// subtrees.
  void handle_node_death(NodeId dead, std::int64_t epoch);

  /// Call after Topology::add_node: attaches the newcomer to the tree and
  /// integrates any re-parented neighbours.
  void handle_node_addition(NodeId added, std::int64_t epoch);

  /// Post-deployment sensor change on a node (propagates up, §4.2).
  void handle_sensor_added(NodeId id, SensorType type, std::int64_t epoch);
  void handle_sensor_removed(NodeId id, SensorType type, std::int64_t epoch);

  // --- statistics ---------------------------------------------------------------

  /// Total Update Message transmissions network-wide (origins + relays).
  [[nodiscard]] std::int64_t updates_transmitted() const noexcept {
    return updates_transmitted_;
  }

  /// Physical sensor samples taken / suppressed network-wide (paper §8
  /// sampling suppression; skipped == 0 when the feature is disabled).
  [[nodiscard]] std::int64_t samples_taken() const;
  [[nodiscard]] std::int64_t samples_skipped() const;

  /// Mean threshold (as % of the type's nominal span) over alive non-root
  /// tree members — the ATC trajectory series. Centralises the alive
  /// filter: dead nodes never contribute, matching the tree's cached
  /// (alive-only) BFS order.
  [[nodiscard]] double mean_theta_pct(SensorType type) const;

  /// The per-node sampling gate (tests and diagnostics).
  [[nodiscard]] const SamplingController& sampler(NodeId id) const {
    return samplers_.at(id);
  }

  /// Per-node radio energy (tx + rx units attributed to each node). The
  /// network's lifetime is governed by its hottest node, so the
  /// *distribution* matters as much as the total (bench/energy_hotspots).
  [[nodiscard]] CostUnits node_tx(NodeId id) const { return node_tx_.at(id); }
  [[nodiscard]] CostUnits node_rx(NodeId id) const { return node_rx_.at(id); }
  [[nodiscard]] CostUnits node_energy(NodeId id) const {
    return node_tx_.at(id) + node_rx_.at(id);
  }

  /// Accounts the reception energy of a frame the radio received but the
  /// protocol never saw (CRC failure — a LossySink drop). The transport's
  /// ledger already charged this rx; calling it keeps the per-node
  /// distribution reconciled with the ledger (see core/lossy.hpp). Like
  /// deliver(), grows the attribution array when the recipient's topology
  /// slot exists but its protocol instance does not yet (the add_node →
  /// retarget window) — the ledger was charged, so the node must be too.
  void note_dropped_rx(NodeId to) {
    if (to >= node_rx_.size()) node_rx_.resize(topo_.size(), 0);
    node_rx_.at(to) += 1;
  }

  /// Hook invoked once per Update Message transmission with the epoch —
  /// the driver records the Fig. 6 time series through this.
  using UpdateHook = std::function<void(std::int64_t epoch)>;
  void set_update_hook(UpdateHook hook) { update_hook_ = std::move(hook); }

  // --- MessageSink -----------------------------------------------------------------

  void deliver(NodeId to, NodeId from, const Message& msg) override;

 private:
  struct ParallelEngine;

  void wire_node(DirqNode& n);
  void begin_audit(QueryId id, std::int64_t epoch);
  /// Re-runs BFS and reconciles every node's parent/children pointers,
  /// removing stale child tuples and re-announcing moved subtrees.
  void retarget_tree(std::int64_t epoch);
  [[nodiscard]] std::int64_t internal_node_count() const;

  // Parallel epoch path (network.cpp): shard plan, per-shard consume,
  // shard-local unicast mirroring InstantTransport's accounting.
  void rebuild_parallel_plan();
  void process_epoch_parallel(const data::ReadingSource& env,
                              std::int64_t epoch);
  void run_shard_consume(std::size_t shard, std::int64_t epoch);
  void parallel_unicast(EpochShardCtx& ctx, NodeId from, NodeId to,
                        const Message& msg);

  net::Topology& topo_;
  NodeId root_;
  NetworkConfig cfg_;
  net::SpanningTree tree_;
  std::vector<DirqNode> nodes_;
  std::vector<SamplingController> samplers_;  // one per node
  std::vector<CostUnits> node_tx_, node_rx_;  // per-node radio energy
  std::vector<NodeId> prev_parent_;  // snapshot for churn reconciliation

  std::unique_ptr<InstantTransport> instant_;
  Transport* transport_ = nullptr;

  /// Present iff set_threads(> 1): the persistent worker pool plus the
  /// cached shard-major walk plan (see network.cpp).
  std::unique_ptr<ParallelEngine> par_;

  // Scratch for the batched sampling path (reused across epochs so the
  // hot loop never allocates): per sensor type, the nodes that will
  // physically sample this epoch in walk order, their readings, and the
  // consumption cursor of the second pass.
  std::vector<std::vector<NodeId>> batch_nodes_;
  std::vector<std::vector<double>> batch_values_;
  std::vector<std::size_t> batch_cursor_;

  std::int64_t current_epoch_ = 0;
  std::int64_t updates_transmitted_ = 0;
  UpdateHook update_hook_;

  // Per-query audit state.
  bool audit_active_ = false;
  QueryId audit_query_ = 0;
  CostUnits audit_cost_start_ = 0;
  std::vector<NodeId> audit_received_;
  std::vector<NodeId> audit_believed_;

  std::int64_t ehr_round_ = 0;
};

std::unique_ptr<ThetaController> make_controller(const NetworkConfig& cfg);

}  // namespace dirq::core

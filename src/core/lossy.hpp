// Failure injection: a counter-keyed lossy-channel model that drops
// deliveries with a configurable probability, simulating CRC-failed
// receptions on a noisy wireless channel.
//
// Semantics deliberately match radio reality: the *transmitter* always
// pays its cost, and the receiver's radio also spends the reception energy
// (rx is charged before the drop decision) — the frame simply never
// reaches the protocol. Used by robustness tests to show DirQ keeps
// functioning (stale ranges heal on the next threshold crossing; queries
// lose coverage gracefully, never crash) and by users who want a quick
// sensitivity estimate before a real-channel study.
//
// Order independence (the property that lets lossy epochs parallelise):
// each drop verdict is a pure function of the delivery's identity —
// (tree, from, to, per-key delivery sequence number) hashed through
// sim::counter_hash on a dedicated "loss" substream — never of how many
// unrelated deliveries happened before it. Reordering deliveries across
// distinct (tree, from, to) keys cannot change a single verdict, so the
// parallel epoch engine's shards (which each preserve their own keys'
// subsequence order) reproduce the sequential drop pattern exactly
// (tests/core/lossy_order_test.cpp).
#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "core/messages.hpp"
#include "core/transport.hpp"
#include "sim/counter_rng.hpp"

namespace dirq::core {

/// The channel model: pure per-delivery verdicts, the per-key sequence
/// counters that advance them, and the offered/dropped totals.
///
/// Threading contract: `drops` is const and pure. `next_drop` advances a
/// counter stored under counters_[tree][from] — distinct (tree, from)
/// pairs touch disjoint state, which is exactly the write-disjointness
/// both parallel shard geometries guarantee (tree shards own whole tree
/// planes; subtree shards own whole sender nodes). Concurrent callers
/// must pre-size the planes from a sequential context (configure /
/// ensure_nodes); the lazy growth inside next_drop is for sequential use.
class LossChannel {
 public:
  LossChannel(double drop_probability, sim::CounterRng rng)
      : drop_(drop_probability), rng_(rng) {}

  /// Pre-sizes the per-tree, per-sender counter planes (sequential
  /// context only). Idempotent; never shrinks.
  void configure(std::size_t tree_count, std::size_t node_count) {
    if (counters_.size() < tree_count) counters_.resize(tree_count);
    ensure_nodes(node_count);
  }

  /// Grows every tree plane to `node_count` senders (call after
  /// Topology::add_node, before the next parallel epoch).
  void ensure_nodes(std::size_t node_count) {
    for (auto& plane : counters_) {
      if (plane.size() < node_count) plane.resize(node_count);
    }
  }

  /// Pure verdict for the seq-th delivery on (tree, from, to). O(1),
  /// order-independent by construction.
  [[nodiscard]] bool drops(TreeId tree, NodeId from, NodeId to,
                           std::uint64_t seq) const noexcept {
    std::uint64_t s = sim::counter_hash(rng_.stream(),
                                        static_cast<std::uint64_t>(tree) + 1);
    s = sim::counter_hash(s, static_cast<std::uint64_t>(from) + 1);
    s = sim::counter_hash(s, static_cast<std::uint64_t>(to) + 1);
    const double u =
        static_cast<double>(sim::counter_hash(s, seq) >> 11) * 0x1.0p-53;
    return u < drop_;
  }

  /// Stateful form: advances the (tree, from, to) sequence counter and
  /// returns that delivery's verdict. Does NOT touch the offered/dropped
  /// totals — parallel shards accumulate those locally and merge through
  /// add_counts; sequential callers pair it with note().
  [[nodiscard]] bool next_drop(TreeId tree, NodeId from, NodeId to) {
    if (static_cast<std::size_t>(tree) >= counters_.size()) {
      counters_.resize(static_cast<std::size_t>(tree) + 1);
    }
    auto& plane = counters_[static_cast<std::size_t>(tree)];
    if (static_cast<std::size_t>(from) >= plane.size()) {
      plane.resize(static_cast<std::size_t>(from) + 1);
    }
    auto& cell = plane[static_cast<std::size_t>(from)];
    for (auto& [peer, next_seq] : cell) {
      if (peer == to) return drops(tree, from, to, next_seq++);
    }
    cell.emplace_back(to, 1);
    return drops(tree, from, to, 0);
  }

  /// Books one delivery into the totals (sequential path).
  void note(bool dropped) noexcept {
    ++offered_;
    if (dropped) ++dropped_;
  }

  /// Merges a shard's locally-accumulated totals (called in fixed shard
  /// order at the parallel merge, so the totals stay deterministic).
  void add_counts(std::int64_t offered, std::int64_t dropped) noexcept {
    offered_ += offered;
    dropped_ += dropped;
  }

  [[nodiscard]] std::int64_t offered() const noexcept { return offered_; }
  [[nodiscard]] std::int64_t dropped() const noexcept { return dropped_; }
  [[nodiscard]] double drop_probability() const noexcept { return drop_; }

 private:
  double drop_;
  sim::CounterRng rng_;  // the "loss" substream of the experiment seed
  /// counters_[tree][from]: small (to, next-seq) association — a sender
  /// talks to a handful of tree neighbours, so linear scan beats a map.
  std::vector<std::vector<std::vector<std::pair<NodeId, std::uint64_t>>>>
      counters_;
  std::int64_t offered_ = 0;
  std::int64_t dropped_ = 0;
};

/// MessageSink decorator over a LossChannel — the composition surface for
/// tests and custom transport stacks. (DirqNetwork consumes a LossChannel
/// directly via set_loss so its parallel engine can evaluate drops inside
/// shards; this wrapper stays sequential.)
class LossySink final : public MessageSink {
 public:
  /// Invoked for every dropped frame. The transport has already charged
  /// the ledger's rx for it; DirqNetwork users hook this to
  /// note_dropped_rx so the per-node energy distribution stays
  /// consistent with the ledger.
  using DropHook = std::function<void(NodeId to, NodeId from, const Message& msg)>;

  /// Drops each delivery independently with `drop_probability`; `rng`
  /// names the channel's counter stream (conventionally the experiment
  /// seed's "loss" substream).
  LossySink(MessageSink& inner, double drop_probability, sim::CounterRng rng)
      : inner_(inner), channel_(drop_probability, rng) {}

  void set_drop_hook(DropHook hook) { on_drop_ = std::move(hook); }

  void deliver(NodeId to, NodeId from, const Message& msg) override {
    const bool dropped = channel_.next_drop(message_tree(msg), from, to);
    channel_.note(dropped);
    if (dropped) {
      if (on_drop_) on_drop_(to, from, msg);
      return;
    }
    inner_.deliver(to, from, msg);
  }

  [[nodiscard]] std::int64_t offered() const noexcept {
    return channel_.offered();
  }
  [[nodiscard]] std::int64_t dropped() const noexcept {
    return channel_.dropped();
  }
  [[nodiscard]] double drop_probability() const noexcept {
    return channel_.drop_probability();
  }
  [[nodiscard]] const LossChannel& channel() const noexcept { return channel_; }

 private:
  MessageSink& inner_;
  LossChannel channel_;
  DropHook on_drop_;
};

}  // namespace dirq::core

// Failure injection: a MessageSink decorator that drops deliveries with a
// configurable probability, simulating CRC-failed receptions on a noisy
// wireless channel.
//
// Semantics deliberately match radio reality: the *transmitter* always
// pays its cost, and the receiver's radio also spends the reception energy
// (the transport charges rx before the drop decision) — the frame simply
// never reaches the protocol. Used by robustness tests to show DirQ keeps
// functioning (stale ranges heal on the next threshold crossing; queries
// lose coverage gracefully, never crash) and by users who want a quick
// sensitivity estimate before a real-channel study.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>

#include "core/transport.hpp"
#include "sim/rng.hpp"

namespace dirq::core {

class LossySink final : public MessageSink {
 public:
  /// Invoked for every dropped frame. The transport has already charged
  /// the ledger's rx for it; DirqNetwork users hook this to
  /// note_dropped_rx so the per-node energy distribution stays
  /// consistent with the ledger.
  using DropHook = std::function<void(NodeId to, NodeId from, const Message& msg)>;

  /// Drops each delivery independently with `drop_probability`.
  LossySink(MessageSink& inner, double drop_probability, sim::Rng rng)
      : inner_(inner), drop_(drop_probability), rng_(rng) {}

  void set_drop_hook(DropHook hook) { on_drop_ = std::move(hook); }

  void deliver(NodeId to, NodeId from, const Message& msg) override {
    ++offered_;
    if (rng_.bernoulli(drop_)) {
      ++dropped_;
      if (on_drop_) on_drop_(to, from, msg);
      return;
    }
    inner_.deliver(to, from, msg);
  }

  [[nodiscard]] std::int64_t offered() const noexcept { return offered_; }
  [[nodiscard]] std::int64_t dropped() const noexcept { return dropped_; }
  [[nodiscard]] double drop_probability() const noexcept { return drop_; }

 private:
  MessageSink& inner_;
  double drop_;
  sim::Rng rng_;
  DropHook on_drop_;
  std::int64_t offered_ = 0;
  std::int64_t dropped_ = 0;
};

}  // namespace dirq::core

#include "core/atc.hpp"

#include <algorithm>
#include <cmath>

namespace dirq::core {

AtcController::AtcController(AtcConfig cfg) : cfg_(cfg) {}

AtcController::TypeState& AtcController::state(SensorType type) {
  auto it = types_.find(type);
  if (it == types_.end()) {
    it = types_.emplace(type, TypeState(cfg_.variability_alpha)).first;
  }
  return it->second;
}

double AtcController::theta(SensorType type) const {
  double scale = 1.0;
  if (auto it = types_.find(type); it != types_.end()) {
    scale = it->second.theta_scale;
  }
  const double pct =
      std::clamp(cfg_.initial_pct * scale, cfg_.min_pct, cfg_.max_pct);
  return pct / 100.0 * nominal_span(type);
}

void AtcController::on_reading(SensorType type, double reading) {
  TypeState& st = state(type);
  if (st.has_prev) {
    st.variability.push(std::abs(reading - st.prev_reading));
  }
  st.prev_reading = reading;
  st.has_prev = true;
}

void AtcController::on_update_sent(SensorType type, std::int64_t epoch) {
  sent_epochs_.push_back(epoch);
  state(type).sent_epochs.push_back(epoch);
}

void AtcController::on_ehr(const EhrMessage& msg, std::int64_t /*epoch*/) {
  if (msg.alive_nodes == 0) return;
  // Fair share of the network-wide budget. Every transmission (origin or
  // relay) counts against it, matching Fig. 6's network-wide msg count.
  budget_per_hour_ = msg.umax_per_hour / static_cast<double>(msg.alive_nodes);
}

double AtcController::estimated_rate_per_hour(std::int64_t epoch) const {
  const std::int64_t window_start = epoch - cfg_.rate_window_epochs;
  std::size_t in_window = 0;
  for (auto it = sent_epochs_.rbegin(); it != sent_epochs_.rend(); ++it) {
    if (*it < window_start) break;
    ++in_window;
  }
  return static_cast<double>(in_window) *
         static_cast<double>(kEpochsPerHour) /
         static_cast<double>(cfg_.rate_window_epochs);
}

void AtcController::on_epoch(std::int64_t epoch) {
  // Trim the sliding windows.
  const std::int64_t window_start = epoch - cfg_.rate_window_epochs;
  while (!sent_epochs_.empty() && sent_epochs_.front() < window_start) {
    sent_epochs_.pop_front();
  }
  for (auto& [type, st] : types_) {
    while (!st.sent_epochs.empty() && st.sent_epochs.front() < window_start) {
      st.sent_epochs.pop_front();
    }
  }
  if (epoch - last_adjust_epoch_ >= cfg_.adjust_period) {
    last_adjust_epoch_ = epoch;
    adjust(epoch);
  }
}

void AtcController::adjust(std::int64_t epoch) {
  if (budget_per_hour_ <= 0.0) return;  // no EHr received yet
  const double rate = estimated_rate_per_hour(epoch);
  const double lo = cfg_.band_lo * budget_per_hour_;
  const double hi = cfg_.band_hi * budget_per_hour_;

  // Direction is shared by all types (updates are not attributed to a
  // type in the window), but the step is scaled per type by the observed
  // variability: a volatile signal needs a bigger theta change to alter
  // its update rate, a quiet one barely any.
  double direction = 0.0;
  if (rate > hi) {
    direction = cfg_.gain_up;
  } else if (rate < lo) {
    direction = -cfg_.gain_down;
  } else {
    return;  // inside the paper's 45-55 % band: hold
  }

  const double total_sent = static_cast<double>(sent_epochs_.size());
  for (auto& [type, st] : types_) {
    // Widening throttles update traffic, so it only makes sense for types
    // actually producing traffic: scale the widen step by this type's
    // share of the window's transmissions. A silent type (e.g. a slow
    // soil-moisture field) must never be dragged wide by its chatty
    // co-located siblings — wide-and-stale ranges miss real sources.
    // Narrowing (direction < 0) buys accuracy for free and applies to all.
    double share = 1.0;
    if (direction > 0.0) {
      share = total_sent > 0.0
                  ? static_cast<double>(st.sent_epochs.size()) / total_sent
                  : 0.0;
      if (share <= 0.0) continue;
    }
    double vol_factor = 1.0;
    if (st.variability.initialized()) {
      // Normalise variability against the current absolute theta: if the
      // signal moves ~theta per epoch, full step; if it barely moves,
      // shrink the step (nothing to gain from changing theta fast).
      const double theta_abs =
          std::clamp(cfg_.initial_pct * st.theta_scale, cfg_.min_pct,
                     cfg_.max_pct) /
          100.0 * nominal_span(type);
      const double vol = st.variability.value() / std::max(theta_abs, 1e-9);
      vol_factor = std::clamp(vol, 0.25, 2.0);
    }
    if (cfg_.law == AtcLaw::Multiplicative) {
      st.theta_scale *= (1.0 + direction * vol_factor * share);
    } else {
      // Additive: move theta by a fixed number of span-percentage points
      // (expressed in scale units), same sign convention.
      const double step_scale = cfg_.additive_step_pct / cfg_.initial_pct;
      st.theta_scale +=
          (direction > 0.0 ? 1.0 : -1.0) * step_scale * vol_factor * share;
    }
    // Keep the scale inside the pct clamp range so it cannot wind up.
    const double min_scale = cfg_.min_pct / cfg_.initial_pct;
    const double max_scale = cfg_.max_pct / cfg_.initial_pct;
    st.theta_scale = std::clamp(st.theta_scale, min_scale, max_scale);
  }
}

}  // namespace dirq::core

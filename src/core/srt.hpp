// Semantic Routing Tree baseline (Madden et al., the paper's ref [5]).
//
// The paper positions DirQ against SRT (§2): "SRT however, only considers
// single attributes where as DirQ can use multiple attributes. Also, SRT
// is more suited for constant attributes such as location, where as DirQ
// is capable of working with varying attributes."
//
// This implementation captures exactly that contrast. An SRT over the same
// communication tree indexes the *constant* attributes once at build time:
//   * the set of sensor types present in each child's subtree, and
//   * each child subtree's location bounding box.
// Queries route on those static indexes only. A range predicate over a
// *dynamic* attribute (the sensor value) cannot be pruned — SRT must
// deliver the query to every type-capable node (in the region, if one is
// given) and let nodes evaluate locally. In exchange, SRT sends no update
// traffic at all: its index is built once (one announcement per node) and
// only changes on topology/sensor churn.
//
// The baseline_srt bench quantifies the resulting trade: SRT beats
// flooding (type/region pruning is real) but pays for every value query
// with a full capable-subtree sweep, while DirQ's range tables pay update
// traffic to prune by current values.
#pragma once

#include <map>
#include <set>
#include <vector>

#include "net/bbox.hpp"
#include "net/spanning_tree.hpp"
#include "net/topology.hpp"
#include "query/query.hpp"
#include "sim/types.hpp"

namespace dirq::core {

class SrtScheme {
 public:
  /// Builds the static index over the given tree. Costs one announcement
  /// (1 tx + 1 rx) per non-root node, recorded in build_cost().
  SrtScheme(const net::Topology& topo, const net::SpanningTree& tree);

  struct Outcome {
    std::vector<NodeId> received;  // nodes the query reached (root excluded)
    CostUnits cost = 0;            // 1 per forwarding tx + 1 per reception
  };

  /// Routes a query using the static index only: children pruned when
  /// their subtree lacks the sensor type or (for regional queries) lies
  /// outside the region. The value window is NOT used for pruning — SRT
  /// has no dynamic-attribute state.
  [[nodiscard]] Outcome disseminate(const query::RangeQuery& q) const;

  /// One-time index construction cost (tx + rx units).
  [[nodiscard]] CostUnits build_cost() const noexcept { return build_cost_; }

  /// Rebuild after topology churn (new announcements charged).
  void rebuild(const net::Topology& topo, const net::SpanningTree& tree);

  /// Static index inspection (tests).
  [[nodiscard]] const std::set<SensorType>& subtree_types(NodeId id) const {
    return subtree_types_.at(id);
  }
  [[nodiscard]] const net::BBox& subtree_box(NodeId id) const {
    return subtree_boxes_.at(id);
  }

 private:
  const net::Topology* topo_;
  const net::SpanningTree* tree_;
  std::vector<std::set<SensorType>> subtree_types_;
  std::vector<net::BBox> subtree_boxes_;
  CostUnits build_cost_ = 0;
};

}  // namespace dirq::core

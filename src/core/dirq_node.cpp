#include "core/dirq_node.hpp"

#include <algorithm>

#include "sim/logging.hpp"

namespace dirq::core {

DirqNode::DirqNode(NodeId id, std::vector<SensorType> sensors,
                   std::unique_ptr<ThetaController> controller)
    : id_(id), sensors_(std::move(sensors)), controller_(std::move(controller)) {
  std::sort(sensors_.begin(), sensors_.end());
  sensors_.erase(std::unique(sensors_.begin(), sensors_.end()), sensors_.end());
}

void DirqNode::set_children(std::vector<NodeId> children) {
  std::sort(children.begin(), children.end());
  children_ = std::move(children);
}

RangeTable& DirqNode::table_mut(SensorType type) { return tables_[type]; }

const RangeTable* DirqNode::table(SensorType type) const {
  auto it = tables_.find(type);
  if (it == tables_.end() || !it->second.has_any()) return nullptr;
  return &it->second;
}

void DirqNode::sample(SensorType type, double reading, std::int64_t epoch) {
  if (!std::binary_search(sensors_.begin(), sensors_.end(), type)) {
    return;  // not our sensor: ignore
  }
  controller_->on_reading(type, reading);
  RangeTable& t = table_mut(type);
  if (t.observe(reading, controller_->theta(type))) {
    maybe_send_update(type, epoch);
  }
}

void DirqNode::end_epoch(std::int64_t epoch) { controller_->on_epoch(epoch); }

void DirqNode::maybe_send_update(SensorType type, std::int64_t epoch) {
  RangeTable& t = table_mut(type);
  if (!t.needs_update(controller_->theta(type))) return;
  const RangeAggregate agg = t.aggregate();
  t.mark_sent();
  if (parent_ == kNoNode) return;  // root: aggregates stop here
  UpdateMessage u;
  u.from = id_;
  u.type = type;
  if (agg.has_value()) {
    u.min = agg->min;
    u.max = agg->max;
    u.has_range = true;
  } else {
    u.has_range = false;  // retraction: type left this subtree
  }
  ++updates_sent_;
  controller_->on_update_sent(type, epoch);
  if (send_) send_(id_, parent_, Message{u});
}

void DirqNode::handle(const Message& msg, NodeId from, std::int64_t epoch) {
  if (const auto* u = std::get_if<UpdateMessage>(&msg)) {
    handle_update(*u, from, epoch);
  } else if (const auto* q = std::get_if<QueryMessage>(&msg)) {
    handle_query(*q, epoch);
  } else if (const auto* mq = std::get_if<MultiQueryMessage>(&msg)) {
    handle_multi_query(*mq, epoch);
  } else if (const auto* e = std::get_if<EhrMessage>(&msg)) {
    handle_ehr(*e, from, epoch);
  } else if (const auto* l = std::get_if<LocationAnnounce>(&msg)) {
    handle_location(*l, from, epoch);
  }
}

void DirqNode::handle_update(const UpdateMessage& u, NodeId from,
                             std::int64_t epoch) {
  // Updates are only meaningful from tree children; stale senders (e.g. a
  // message in flight across a re-parenting) are ignored.
  if (!std::binary_search(children_.begin(), children_.end(), from)) return;
  RangeTable& t = table_mut(u.type);
  if (u.has_range) {
    t.set_child(from, RangeEntry{u.min, u.max});
  } else {
    t.remove_child(from);
  }
  maybe_send_update(u.type, epoch);
}

void DirqNode::handle_query(const QueryMessage& qm, std::int64_t /*epoch*/) {
  // Delivery itself is recorded by the network (audit). Here the node
  // directs the query onward: one transmission addressed to every child
  // whose announced range overlaps the query window (§4.1, Eq. 6 cost
  // accounting). Answering (data extraction) is out of the paper's scope.
  const std::vector<NodeId> targets = forwarding_set(qm.q);
  if (!targets.empty() && multicast_) multicast_(id_, targets, Message{qm});
}

void DirqNode::handle_multi_query(const MultiQueryMessage& qm,
                                  std::int64_t /*epoch*/) {
  const std::vector<NodeId> targets = forwarding_set(qm.q);
  if (!targets.empty() && multicast_) multicast_(id_, targets, Message{qm});
}

net::BBox DirqNode::subtree_box() const {
  net::BBox box = has_position_ ? net::BBox::point(x_, y_) : net::BBox::empty();
  for (const auto& [child, b] : child_boxes_) box = box.join(b);
  return box;
}

void DirqNode::announce_location(std::int64_t /*epoch*/) {
  const net::BBox box = subtree_box();
  if (box.is_empty()) return;  // nothing located in this subtree
  if (box_sent_ && box == sent_box_) return;
  sent_box_ = box;
  box_sent_ = true;
  if (parent_ != kNoNode && send_) {
    send_(id_, parent_, Message{LocationAnnounce{id_, box}});
  }
}

void DirqNode::handle_location(const LocationAnnounce& l, NodeId from,
                               std::int64_t epoch) {
  if (!std::binary_search(children_.begin(), children_.end(), from)) return;
  child_boxes_[from] = l.box;
  announce_location(epoch);  // propagate growth toward the root
}

void DirqNode::handle_ehr(const EhrMessage& e, NodeId /*from*/,
                          std::int64_t epoch) {
  if (e.round <= last_ehr_round_) return;  // duplicate of this flood round
  last_ehr_round_ = e.round;
  controller_->on_ehr(e, epoch);
  if (broadcast_) broadcast_(id_, Message{e});  // re-flood once
}

bool DirqNode::child_may_be_in_region(
    NodeId child, const std::optional<net::BBox>& region) const {
  if (!region.has_value()) return true;
  auto it = child_boxes_.find(child);
  if (it == child_boxes_.end()) return true;  // unknown box: never prune
  return region->intersects(it->second);
}

std::vector<NodeId> DirqNode::forwarding_set(const query::RangeQuery& q) const {
  std::vector<NodeId> out;
  auto it = tables_.find(q.type);
  if (it == tables_.end()) return out;
  for (const auto& [child, range] : it->second.children()) {
    if (q.overlaps(range.min, range.max) &&
        child_may_be_in_region(child, q.region)) {
      out.push_back(child);
    }
  }
  return out;
}

std::vector<NodeId> DirqNode::forwarding_set(const query::MultiQuery& q) const {
  // Conjunctive pruning: a child survives only if EVERY predicate's
  // subtree range overlaps (and the region test passes). A child that
  // never announced some predicate's type provably has no node carrying
  // all types in its subtree — prune it.
  std::vector<NodeId> out;
  if (q.predicates.empty()) return out;
  for (NodeId child : children_) {
    bool all = child_may_be_in_region(child, q.region);
    for (const query::AttributePredicate& p : q.predicates) {
      if (!all) break;
      auto it = tables_.find(p.type);
      const std::optional<RangeEntry> range =
          it == tables_.end() ? std::nullopt : it->second.child(child);
      all = range.has_value() && p.overlaps(range->min, range->max);
    }
    if (all) out.push_back(child);
  }
  return out;
}

bool DirqNode::believes_relevant(const query::RangeQuery& q) const {
  if (q.region && has_position_ && !q.region->contains(x_, y_)) return false;
  auto it = tables_.find(q.type);
  if (it == tables_.end() || !it->second.own().has_value()) return false;
  const RangeEntry& own = *it->second.own();
  return q.overlaps(own.min, own.max);
}

bool DirqNode::believes_relevant(const query::MultiQuery& q) const {
  if (q.predicates.empty()) return false;
  if (q.region && has_position_ && !q.region->contains(x_, y_)) return false;
  for (const query::AttributePredicate& p : q.predicates) {
    if (!std::binary_search(sensors_.begin(), sensors_.end(), p.type)) {
      return false;
    }
    auto it = tables_.find(p.type);
    if (it == tables_.end() || !it->second.own().has_value()) return false;
    const RangeEntry& own = *it->second.own();
    if (!p.overlaps(own.min, own.max)) return false;
  }
  return true;
}

void DirqNode::on_child_lost(NodeId child, std::int64_t epoch) {
  for (auto& [type, t] : tables_) {
    if (t.remove_child(child)) {
      sim::log(sim::LogLevel::Debug, "dirq", "node ", id_,
               " dropped child ", child, " from table ", type);
      maybe_send_update(type, epoch);
    }
  }
  if (child_boxes_.erase(child) > 0) announce_location(epoch);
  std::erase(children_, child);
}

void DirqNode::force_reannounce(std::int64_t epoch) {
  for (auto& [type, t] : tables_) {
    if (!t.has_any()) continue;
    const RangeAggregate agg = t.aggregate();
    t.mark_sent();
    if (parent_ == kNoNode) continue;
    UpdateMessage u;
    u.from = id_;
    u.type = type;
    u.min = agg->min;
    u.max = agg->max;
    u.has_range = true;
    ++updates_sent_;
    controller_->on_update_sent(type, epoch);
    if (send_) send_(id_, parent_, Message{u});
  }
  // The new parent also needs our subtree bounding box.
  box_sent_ = false;
  announce_location(epoch);
}

void DirqNode::attach_sensor(SensorType type) {
  const auto it = std::lower_bound(sensors_.begin(), sensors_.end(), type);
  if (it == sensors_.end() || *it != type) sensors_.insert(it, type);
}

void DirqNode::detach_sensor(SensorType type, std::int64_t epoch) {
  const auto s = std::lower_bound(sensors_.begin(), sensors_.end(), type);
  if (s == sensors_.end() || *s != type) return;
  sensors_.erase(s);
  auto it = tables_.find(type);
  if (it == tables_.end()) return;
  it->second.clear_own();
  maybe_send_update(type, epoch);
}

}  // namespace dirq::core

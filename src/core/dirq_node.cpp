#include "core/dirq_node.hpp"

#include <algorithm>

#include "sim/logging.hpp"

namespace dirq::core {

DirqNode::DirqNode(NodeId id, std::vector<SensorType> sensors,
                   std::unique_ptr<ThetaController> controller)
    : id_(id), sensors_(std::move(sensors)) {
  std::sort(sensors_.begin(), sensors_.end());
  sensors_.erase(std::unique(sensors_.begin(), sensors_.end()), sensors_.end());
  slots_.emplace_back();
  slots_.back().controller = std::move(controller);
}

void DirqNode::add_slot(std::unique_ptr<ThetaController> controller) {
  slots_.emplace_back();
  slots_.back().controller = std::move(controller);
}

void DirqNode::set_children(TreeId tree, std::vector<NodeId> children) {
  std::sort(children.begin(), children.end());
  slots_.at(tree).children = std::move(children);
}

const RangeTable* DirqNode::table(TreeId tree, SensorType type) const {
  const TreeSlot& slot = slots_.at(tree);
  auto it = slot.tables.find(type);
  if (it == slot.tables.end() || !it->second.has_any()) return nullptr;
  return &it->second;
}

void DirqNode::sample(SensorType type, double reading, std::int64_t epoch) {
  if (!std::binary_search(sensors_.begin(), sensors_.end(), type)) {
    return;  // not our sensor: ignore
  }
  // One physical sample, observed by every tree slot: each tree keeps its
  // own theta and its own sent tuple, so one reading can trigger an update
  // in one tree and none in another.
  for (TreeId tree = 0; tree < slots_.size(); ++tree) {
    TreeSlot& slot = slots_[tree];
    slot.controller->on_reading(type, reading);
    RangeTable& t = slot.tables[type];
    if (t.observe(reading, slot.controller->theta(type))) {
      maybe_send_update(tree, type, epoch);
    }
  }
}

void DirqNode::sample_slot(TreeId tree, SensorType type, double reading,
                           std::int64_t epoch) {
  if (!std::binary_search(sensors_.begin(), sensors_.end(), type)) {
    return;  // not our sensor: ignore (same guard as sample())
  }
  TreeSlot& slot = slots_.at(tree);
  slot.controller->on_reading(type, reading);
  RangeTable& t = slot.tables[type];
  if (t.observe(reading, slot.controller->theta(type))) {
    maybe_send_update(tree, type, epoch);
  }
}

void DirqNode::end_epoch(std::int64_t epoch) {
  for (TreeSlot& slot : slots_) slot.controller->on_epoch(epoch);
}

void DirqNode::end_epoch_slot(TreeId tree, std::int64_t epoch) {
  slots_.at(tree).controller->on_epoch(epoch);
}

void DirqNode::maybe_send_update(TreeId tree, SensorType type,
                                 std::int64_t epoch) {
  TreeSlot& slot = slots_.at(tree);
  RangeTable& t = slot.tables[type];
  if (!t.needs_update(slot.controller->theta(type))) return;
  const RangeAggregate agg = t.aggregate();
  t.mark_sent();
  if (slot.parent == kNoNode) return;  // root: aggregates stop here
  UpdateMessage u;
  u.from = id_;
  u.tree = tree;
  u.type = type;
  if (agg.has_value()) {
    u.min = agg->min;
    u.max = agg->max;
    u.has_range = true;
  } else {
    u.has_range = false;  // retraction: type left this subtree
  }
  ++slot.updates_sent;
  slot.controller->on_update_sent(type, epoch);
  if (send_) send_(id_, slot.parent, Message{u});
}

void DirqNode::handle(const Message& msg, NodeId from, std::int64_t epoch) {
  // A message tagged for a tree this node has no slot for (e.g. in flight
  // across a reconfiguration) is dropped, mirroring the stale-sender rule.
  if (!slot_exists(message_tree(msg))) return;
  if (const auto* u = std::get_if<UpdateMessage>(&msg)) {
    handle_update(*u, from, epoch);
  } else if (const auto* q = std::get_if<QueryMessage>(&msg)) {
    handle_query(*q, epoch);
  } else if (const auto* mq = std::get_if<MultiQueryMessage>(&msg)) {
    handle_multi_query(*mq, epoch);
  } else if (const auto* e = std::get_if<EhrMessage>(&msg)) {
    handle_ehr(*e, from, epoch);
  } else if (const auto* l = std::get_if<LocationAnnounce>(&msg)) {
    handle_location(*l, from, epoch);
  }
}

void DirqNode::handle_update(const UpdateMessage& u, NodeId from,
                             std::int64_t epoch) {
  TreeSlot& slot = slots_.at(u.tree);
  // Updates are only meaningful from tree children; stale senders (e.g. a
  // message in flight across a re-parenting) are ignored.
  if (!std::binary_search(slot.children.begin(), slot.children.end(), from)) {
    return;
  }
  RangeTable& t = slot.tables[u.type];
  if (u.has_range) {
    t.set_child(from, RangeEntry{u.min, u.max});
  } else {
    t.remove_child(from);
  }
  maybe_send_update(u.tree, u.type, epoch);
}

void DirqNode::handle_query(const QueryMessage& qm, std::int64_t /*epoch*/) {
  // Delivery itself is recorded by the network (audit). Here the node
  // directs the query onward: one transmission addressed to every child
  // whose announced range overlaps the query window (§4.1, Eq. 6 cost
  // accounting). Answering (data extraction) is out of the paper's scope.
  const std::vector<NodeId> targets = forwarding_set(qm.tree, qm.q);
  if (!targets.empty() && multicast_) multicast_(id_, targets, Message{qm});
}

void DirqNode::handle_multi_query(const MultiQueryMessage& qm,
                                  std::int64_t /*epoch*/) {
  const std::vector<NodeId> targets = forwarding_set(qm.tree, qm.q);
  if (!targets.empty() && multicast_) multicast_(id_, targets, Message{qm});
}

net::BBox DirqNode::subtree_box(TreeId tree) const {
  const TreeSlot& slot = slots_.at(tree);
  net::BBox box = has_position_ ? net::BBox::point(x_, y_) : net::BBox::empty();
  for (const auto& [child, b] : slot.child_boxes) box = box.join(b);
  return box;
}

void DirqNode::announce_location(TreeId tree, std::int64_t /*epoch*/) {
  TreeSlot& slot = slots_.at(tree);
  const net::BBox box = subtree_box(tree);
  if (box.is_empty()) return;  // nothing located in this subtree
  if (slot.box_sent && box == slot.sent_box) return;
  slot.sent_box = box;
  slot.box_sent = true;
  if (slot.parent != kNoNode && send_) {
    send_(id_, slot.parent, Message{LocationAnnounce{id_, tree, box}});
  }
}

void DirqNode::handle_location(const LocationAnnounce& l, NodeId from,
                               std::int64_t epoch) {
  TreeSlot& slot = slots_.at(l.tree);
  if (!std::binary_search(slot.children.begin(), slot.children.end(), from)) {
    return;
  }
  slot.child_boxes[from] = l.box;
  announce_location(l.tree, epoch);  // propagate growth toward the root
}

void DirqNode::handle_ehr(const EhrMessage& e, NodeId /*from*/,
                          std::int64_t epoch) {
  TreeSlot& slot = slots_.at(e.tree);
  if (e.round <= slot.last_ehr_round) return;  // duplicate of this flood round
  slot.last_ehr_round = e.round;
  slot.controller->on_ehr(e, epoch);
  if (broadcast_) broadcast_(id_, Message{e});  // re-flood once
}

bool DirqNode::child_may_be_in_region(
    const TreeSlot& slot, NodeId child,
    const std::optional<net::BBox>& region) const {
  if (!region.has_value()) return true;
  auto it = slot.child_boxes.find(child);
  if (it == slot.child_boxes.end()) return true;  // unknown box: never prune
  return region->intersects(it->second);
}

std::vector<NodeId> DirqNode::forwarding_set(TreeId tree,
                                             const query::RangeQuery& q) const {
  const TreeSlot& slot = slots_.at(tree);
  std::vector<NodeId> out;
  auto it = slot.tables.find(q.type);
  if (it == slot.tables.end()) return out;
  for (const auto& [child, range] : it->second.children()) {
    if (q.overlaps(range.min, range.max) &&
        child_may_be_in_region(slot, child, q.region)) {
      out.push_back(child);
    }
  }
  return out;
}

std::vector<NodeId> DirqNode::forwarding_set(TreeId tree,
                                             const query::MultiQuery& q) const {
  // Conjunctive pruning: a child survives only if EVERY predicate's
  // subtree range overlaps (and the region test passes). A child that
  // never announced some predicate's type provably has no node carrying
  // all types in its subtree — prune it.
  const TreeSlot& slot = slots_.at(tree);
  std::vector<NodeId> out;
  if (q.predicates.empty()) return out;
  for (NodeId child : slot.children) {
    bool all = child_may_be_in_region(slot, child, q.region);
    for (const query::AttributePredicate& p : q.predicates) {
      if (!all) break;
      auto it = slot.tables.find(p.type);
      const std::optional<RangeEntry> range =
          it == slot.tables.end() ? std::nullopt : it->second.child(child);
      all = range.has_value() && p.overlaps(range->min, range->max);
    }
    if (all) out.push_back(child);
  }
  return out;
}

bool DirqNode::believes_relevant(TreeId tree,
                                 const query::RangeQuery& q) const {
  const TreeSlot& slot = slots_.at(tree);
  if (q.region && has_position_ && !q.region->contains(x_, y_)) return false;
  auto it = slot.tables.find(q.type);
  if (it == slot.tables.end() || !it->second.own().has_value()) return false;
  const RangeEntry& own = *it->second.own();
  return q.overlaps(own.min, own.max);
}

bool DirqNode::believes_relevant(TreeId tree,
                                 const query::MultiQuery& q) const {
  const TreeSlot& slot = slots_.at(tree);
  if (q.predicates.empty()) return false;
  if (q.region && has_position_ && !q.region->contains(x_, y_)) return false;
  for (const query::AttributePredicate& p : q.predicates) {
    if (!std::binary_search(sensors_.begin(), sensors_.end(), p.type)) {
      return false;
    }
    auto it = slot.tables.find(p.type);
    if (it == slot.tables.end() || !it->second.own().has_value()) return false;
    const RangeEntry& own = *it->second.own();
    if (!p.overlaps(own.min, own.max)) return false;
  }
  return true;
}

void DirqNode::on_child_lost(TreeId tree, NodeId child, std::int64_t epoch) {
  TreeSlot& slot = slots_.at(tree);
  for (auto& [type, t] : slot.tables) {
    if (t.remove_child(child)) {
      sim::log(sim::LogLevel::Debug, "dirq", "node ", id_,
               " dropped child ", child, " from table ", type);
      maybe_send_update(tree, type, epoch);
    }
  }
  if (slot.child_boxes.erase(child) > 0) announce_location(tree, epoch);
  std::erase(slot.children, child);
}

void DirqNode::force_reannounce(TreeId tree, std::int64_t epoch) {
  TreeSlot& slot = slots_.at(tree);
  for (auto& [type, t] : slot.tables) {
    if (!t.has_any()) continue;
    const RangeAggregate agg = t.aggregate();
    t.mark_sent();
    if (slot.parent == kNoNode) continue;
    UpdateMessage u;
    u.from = id_;
    u.tree = tree;
    u.type = type;
    u.min = agg->min;
    u.max = agg->max;
    u.has_range = true;
    ++slot.updates_sent;
    slot.controller->on_update_sent(type, epoch);
    if (send_) send_(id_, slot.parent, Message{u});
  }
  // The new parent also needs our subtree bounding box.
  slot.box_sent = false;
  announce_location(tree, epoch);
}

void DirqNode::attach_sensor(SensorType type) {
  const auto it = std::lower_bound(sensors_.begin(), sensors_.end(), type);
  if (it == sensors_.end() || *it != type) sensors_.insert(it, type);
}

void DirqNode::detach_sensor(SensorType type, std::int64_t epoch) {
  const auto s = std::lower_bound(sensors_.begin(), sensors_.end(), type);
  if (s == sensors_.end() || *s != type) return;
  sensors_.erase(s);
  for (TreeId tree = 0; tree < slots_.size(); ++tree) {
    TreeSlot& slot = slots_[tree];
    auto it = slot.tables.find(type);
    if (it == slot.tables.end()) continue;
    it->second.clear_own();
    maybe_send_update(tree, type, epoch);
  }
}

}  // namespace dirq::core

// Sampling suppression — the paper's stated future work (§8):
//
//   "A drawback of DirQ is that we assume that nodes are able to sample
//    sensors continuously to check if the thresholds have been exceeded.
//    This consumes a lot of energy. We are currently developing a
//    statistical prediction technique that can be used by DirQ to ensure
//    that sensor sampling costs are minimized."
//
// This module implements that technique in the spirit of model-driven
// acquisition (the paper's ref [12]): per (node, type), a Holt linear
// (level + trend) predictor models the reading's trajectory. While the
// prediction keeps matching reality to within a fraction of theta, the
// physical sampling interval doubles (up to a cap); the first surprise
// snaps it back to every-epoch sampling. Skipped epochs cost no ADC energy
// and feed nothing into the range table — which is safe precisely when the
// predictor is accurate, because a reading tracking its prediction inside
// the theta margin cannot have escaped the stored tuple.
#pragma once

#include <cstdint>

#include "sim/flat_map.hpp"
#include "sim/types.hpp"

namespace dirq::core {

struct SamplingConfig {
  bool enabled = false;
  /// Hard cap on the sampling interval (epochs). Bounds the worst-case
  /// detection delay of an unpredicted threshold crossing.
  int max_interval = 16;
  /// Accepted prediction error as a fraction of the current theta; larger
  /// values suppress more samples and risk more missed crossings.
  double margin_frac = 0.5;
  /// Trend smoothing factor of the Holt predictor.
  double trend_beta = 0.3;
};

/// Per-node sampling gate. One instance per DirqNode; tracks all types.
class SamplingController {
 public:
  explicit SamplingController(SamplingConfig cfg) : cfg_(cfg) {}

  /// True if a physical sample is due at `epoch`. Always true when
  /// disabled, on the first epoch for a type, or once the current interval
  /// has elapsed.
  [[nodiscard]] bool should_sample(SensorType type, std::int64_t epoch) const;

  /// Feeds an actual sampled value. `theta` is the node's current absolute
  /// threshold for the type (the error budget the range table already
  /// tolerates). Adapts the interval: accurate prediction doubles it,
  /// a surprise resets it to 1.
  void on_sample(SensorType type, double value, double theta,
                 std::int64_t epoch);

  /// Records an epoch where sampling was skipped (for the energy ledger).
  void on_skip(SensorType type);

  /// Fast path for the disabled gate: counts the physical sample without
  /// maintaining predictor state (which is dead weight when suppression is
  /// off — the epoch loop calls this once per sensor per node per epoch).
  void count_sample() noexcept { ++taken_; }

  [[nodiscard]] bool enabled() const noexcept { return cfg_.enabled; }

  [[nodiscard]] std::int64_t samples_taken() const noexcept { return taken_; }
  [[nodiscard]] std::int64_t samples_skipped() const noexcept { return skipped_; }

  /// Current interval for a type (1 when unknown).
  [[nodiscard]] int interval(SensorType type) const;

  /// Epoch the next physical sample is due for a type (0 — always due —
  /// when the type has never been sampled). This is the whole gate:
  /// should_sample(t, e) == (e >= next_due(t)) for an enabled controller,
  /// which is what lets the parallel epoch engine mirror the gate into a
  /// flat per-shard array and evaluate it without touching the FlatMap.
  [[nodiscard]] std::int64_t next_due(SensorType type) const;

  /// Predicted value at `epoch` (level + trend extrapolation); only
  /// meaningful after two samples. Exposed for tests.
  [[nodiscard]] double predict(SensorType type, std::int64_t epoch) const;

  [[nodiscard]] const SamplingConfig& config() const noexcept { return cfg_; }

 private:
  struct TypeState {
    double level = 0.0;
    double trend = 0.0;  // per-epoch slope estimate
    std::int64_t last_epoch = -1;
    int interval = 1;
    std::int64_t next_due = 0;
    bool has_level = false;
    bool has_trend = false;
  };

  SamplingConfig cfg_;
  sim::FlatMap<SensorType, TypeState> types_;
  std::int64_t taken_ = 0;
  std::int64_t skipped_ = 0;
};

}  // namespace dirq::core

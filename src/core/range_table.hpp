// The Range Table: DirQ's per-sensor-type routing state (paper §4.1,
// Figs. 1-3).
//
// A node's table for sensor type T holds
//   * its own threshold tuple (THmin, THmax) = (R - theta, R + theta),
//     re-centred whenever a new reading R falls outside the stored tuple
//     (Fig. 1), and
//   * one tuple per one-hop child, holding that child's last *transmitted*
//     subtree aggregate (Fig. 2) — n+1 tuples for n children.
//
// The table aggregates min over THmin / max over THmax, and signals an
// Update Message when either aggregate has moved by more than theta since
// the last transmission (Fig. 3's shaded regions).
#pragma once

#include <optional>
#include <utility>

#include "sim/flat_map.hpp"
#include "sim/types.hpp"

namespace dirq::core {

/// A [min, max] tuple as stored in a range table.
struct RangeEntry {
  double min = 0.0;
  double max = 0.0;
};

/// Aggregate over a table: min of mins, max of maxes.
using RangeAggregate = std::optional<RangeEntry>;

class RangeTable {
 public:
  // --- own tuple (Fig. 1) -------------------------------------------------

  /// Feeds a new sensor reading. If the reading escapes the stored own
  /// tuple (or none exists yet), the tuple is re-centred to
  /// [reading - theta, reading + theta] and true is returned; otherwise the
  /// table is untouched and false is returned ("only major changes are
  /// reflected", §4.1).
  bool observe(double reading, double theta);

  /// Drops the own tuple (the node lost this sensor, §4.2).
  void clear_own();

  [[nodiscard]] const std::optional<RangeEntry>& own() const noexcept {
    return own_;
  }

  // --- child tuples (Fig. 2) ----------------------------------------------

  /// Installs/overwrites the tuple for a one-hop child. Returns true if the
  /// stored value changed.
  bool set_child(NodeId child, RangeEntry range);

  /// Removes a child's tuple (child died or retracted the type, §4.2).
  /// Returns true if a tuple was present.
  bool remove_child(NodeId child);

  [[nodiscard]] std::optional<RangeEntry> child(NodeId id) const;
  /// Child tuples in ascending child-id order (flat storage: the paper's
  /// k = 8 bound keeps this a few cache lines).
  [[nodiscard]] const sim::FlatMap<NodeId, RangeEntry>& children()
      const noexcept {
    return children_;
  }

  // --- aggregation & update decision (Fig. 3) ------------------------------

  /// True if the table has any tuple at all (own or child). A table with
  /// no tuples means the type vanished from the subtree.
  [[nodiscard]] bool has_any() const noexcept {
    return own_.has_value() || !children_.empty();
  }

  /// min(THmin) / max(THmax) over all tuples; nullopt when empty.
  [[nodiscard]] RangeAggregate aggregate() const;

  /// Decides whether an Update Message must be sent (Fig. 3): true when no
  /// aggregate was ever transmitted, when the type vanished while a
  /// transmitted range is still outstanding (retraction), or when either
  /// aggregate bound moved by more than theta.
  [[nodiscard]] bool needs_update(double theta) const;

  /// Marks the current aggregate as transmitted; next needs_update()
  /// compares against it. Call after actually sending.
  void mark_sent();

  /// Last transmitted aggregate (nullopt if none or retracted).
  [[nodiscard]] const RangeAggregate& last_sent() const noexcept {
    return sent_;
  }

 private:
  std::optional<RangeEntry> own_;
  sim::FlatMap<NodeId, RangeEntry> children_;
  RangeAggregate sent_;
  bool ever_sent_ = false;
};

}  // namespace dirq::core

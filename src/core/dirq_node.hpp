// One DirQ protocol instance — the state machine running on every sensor
// node (paper §4).
//
// The node is transport-agnostic and clock-agnostic: the surrounding
// DirqNetwork feeds it readings, delivered messages and tree-maintenance
// events, and it emits messages through a send callback. All decisions use
// only locally available information (own readings, one-hop child tuples,
// the hourly EHr broadcast) — the paper's core autonomy claim.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "core/atc.hpp"
#include "core/messages.hpp"
#include "core/range_table.hpp"
#include "sim/flat_map.hpp"
#include "sim/types.hpp"

namespace dirq::core {

class DirqNode {
 public:
  /// Sends a message to a one-hop neighbour (wired to the transport).
  using SendFn = std::function<void(NodeId from, NodeId to, const Message&)>;
  /// One transmission addressed to several children (query forwarding).
  using MulticastFn = std::function<void(NodeId from, const std::vector<NodeId>&,
                                         const Message&)>;
  /// Link-layer broadcast (used to re-flood the EHr estimate).
  using BroadcastFn = std::function<void(NodeId from, const Message&)>;

  DirqNode(NodeId id, std::vector<SensorType> sensors,
           std::unique_ptr<ThetaController> controller);

  [[nodiscard]] NodeId id() const noexcept { return id_; }

  // --- wiring -------------------------------------------------------------

  void set_send(SendFn fn) { send_ = std::move(fn); }
  void set_multicast(MulticastFn fn) { multicast_ = std::move(fn); }
  void set_broadcast(BroadcastFn fn) { broadcast_ = std::move(fn); }

  /// Tree position maintenance (driven by DirqNetwork on build/churn).
  void set_parent(NodeId parent) noexcept { parent_ = parent; }
  [[nodiscard]] NodeId parent() const noexcept { return parent_; }
  void set_children(std::vector<NodeId> children);
  [[nodiscard]] const std::vector<NodeId>& children() const noexcept {
    return children_;
  }

  /// Physical position — the optional static location attribute (§2).
  /// DirQ works without it; with it, regional queries prune on subtree
  /// bounding boxes.
  void set_position(double x, double y) noexcept {
    x_ = x;
    y_ = y;
    has_position_ = true;
  }
  [[nodiscard]] bool has_position() const noexcept { return has_position_; }

  // --- sensing (paper §4.1, Fig. 1) ----------------------------------------

  /// Feeds one epoch's reading for an attached sensor. May emit an Update
  /// Message toward the parent if an aggregate moved beyond theta.
  void sample(SensorType type, double reading, std::int64_t epoch);

  /// End-of-epoch hook: drives the threshold controller's window/steps.
  void end_epoch(std::int64_t epoch);

  // --- message handling ----------------------------------------------------

  /// Delivered message from a one-hop neighbour.
  void handle(const Message& msg, NodeId from, std::int64_t epoch);

  // --- topology dynamics (paper §4.2) ---------------------------------------

  /// A one-hop child vanished (cross-layer notification routed through the
  /// network): drop its tuples from every table, propagate any resulting
  /// aggregate changes.
  void on_child_lost(NodeId child, std::int64_t epoch);

  /// Node re-parented after tree repair: every table (and the subtree
  /// bounding box) must be re-announced to the new parent regardless of
  /// theta (it knows nothing of us).
  void force_reannounce(std::int64_t epoch);

  /// Announces the subtree bounding box to the parent if it changed since
  /// the last announcement (bootstrap, churn, child box growth).
  void announce_location(std::int64_t epoch);

  /// This node's current subtree bounding box (own point + child boxes);
  /// empty when the node has no position and no located descendants.
  [[nodiscard]] net::BBox subtree_box() const;

  /// Post-deployment sensor change on this node (§4.2 scalability).
  void attach_sensor(SensorType type);
  void detach_sensor(SensorType type, std::int64_t epoch);
  /// Attached sensor types, sorted ascending.
  [[nodiscard]] const std::vector<SensorType>& sensors() const noexcept {
    return sensors_;
  }

  // --- inspection ------------------------------------------------------------

  /// Range table for a type, or nullptr if the type is absent from this
  /// node's subtree (tables exist lazily, Fig. 4).
  [[nodiscard]] const RangeTable* table(SensorType type) const;

  /// True if this node believes its own reading may satisfy the query
  /// (its own stored tuple overlaps the query window, and it lies inside
  /// the region when one is given). This is DirQ's local relevance test;
  /// it can err toward extra deliveries (overshoot) because the tuple is
  /// theta-wide.
  [[nodiscard]] bool believes_relevant(const query::RangeQuery& q) const;
  [[nodiscard]] bool believes_relevant(const query::MultiQuery& q) const;

  /// Children this node would forward the query to right now.
  [[nodiscard]] std::vector<NodeId> forwarding_set(const query::RangeQuery& q) const;
  [[nodiscard]] std::vector<NodeId> forwarding_set(const query::MultiQuery& q) const;

  [[nodiscard]] ThetaController& controller() noexcept { return *controller_; }
  [[nodiscard]] const ThetaController& controller() const noexcept {
    return *controller_;
  }

  /// Update Messages this node transmitted (origin + relay).
  [[nodiscard]] std::int64_t updates_sent() const noexcept { return updates_sent_; }

  /// EHr rounds seen (flood dedup state), exposed for tests.
  [[nodiscard]] std::int64_t last_ehr_round() const noexcept { return last_ehr_round_; }

 private:
  RangeTable& table_mut(SensorType type);
  /// Emits an update/retraction for `type` if the table demands one.
  void maybe_send_update(SensorType type, std::int64_t epoch);
  void handle_update(const UpdateMessage& u, NodeId from, std::int64_t epoch);
  void handle_query(const QueryMessage& qm, std::int64_t epoch);
  void handle_multi_query(const MultiQueryMessage& qm, std::int64_t epoch);
  void handle_ehr(const EhrMessage& e, NodeId from, std::int64_t epoch);
  void handle_location(const LocationAnnounce& l, NodeId from,
                       std::int64_t epoch);
  /// Region pruning for a child: false only when the child's box is known
  /// and provably outside the region (unknown boxes are never pruned).
  [[nodiscard]] bool child_may_be_in_region(
      NodeId child, const std::optional<net::BBox>& region) const;

  NodeId id_;
  NodeId parent_ = kNoNode;
  std::vector<NodeId> children_;
  // Hot-path state is flat: sorted vectors / FlatMaps keyed by the dense
  // sensor-type and node-id domains, iterated every epoch by every node.
  std::vector<SensorType> sensors_;  // sorted, unique
  sim::FlatMap<SensorType, RangeTable> tables_;
  double x_ = 0.0, y_ = 0.0;
  bool has_position_ = false;
  sim::FlatMap<NodeId, net::BBox> child_boxes_;
  net::BBox sent_box_ = net::BBox::empty();
  bool box_sent_ = false;
  std::unique_ptr<ThetaController> controller_;
  SendFn send_;
  MulticastFn multicast_;
  BroadcastFn broadcast_;
  std::int64_t updates_sent_ = 0;
  std::int64_t last_ehr_round_ = -1;
};

}  // namespace dirq::core

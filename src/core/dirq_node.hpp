// One DirQ protocol instance — the state machine running on every sensor
// node (paper §4).
//
// The node is transport-agnostic and clock-agnostic: the surrounding
// DirqNetwork feeds it readings, delivered messages and tree-maintenance
// events, and it emits messages through a send callback. All decisions use
// only locally available information (own readings, one-hop child tuples,
// the hourly EHr broadcast) — the paper's core autonomy claim.
//
// Multi-sink refactor: the per-tree protocol state (parent, children,
// range tables, subtree bounding box, threshold controller, EHr dedup)
// lives in TreeSlots keyed by a dense TreeId — one slot per spanning tree
// of the owning net::TreeSet. Readings, the sensor list and the sampling
// gate stay shared: a physical sample is taken once and observed by every
// slot, but each tree propagates its own updates with its own thresholds.
// The original single-tree accessors are tree-0 wrappers, so the paper's
// single-sink deployment is byte-identical to the pre-refactor code.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "core/atc.hpp"
#include "core/messages.hpp"
#include "core/range_table.hpp"
#include "sim/flat_map.hpp"
#include "sim/types.hpp"

namespace dirq::core {

class DirqNode {
 public:
  /// Sends a message to a one-hop neighbour (wired to the transport).
  using SendFn = std::function<void(NodeId from, NodeId to, const Message&)>;
  /// One transmission addressed to several children (query forwarding).
  using MulticastFn = std::function<void(NodeId from, const std::vector<NodeId>&,
                                         const Message&)>;
  /// Link-layer broadcast (used to re-flood the EHr estimate).
  using BroadcastFn = std::function<void(NodeId from, const Message&)>;

  /// Constructs with one tree slot (tree 0) owning `controller`.
  DirqNode(NodeId id, std::vector<SensorType> sensors,
           std::unique_ptr<ThetaController> controller);

  [[nodiscard]] NodeId id() const noexcept { return id_; }

  // --- wiring -------------------------------------------------------------

  void set_send(SendFn fn) { send_ = std::move(fn); }
  void set_multicast(MulticastFn fn) { multicast_ = std::move(fn); }
  void set_broadcast(BroadcastFn fn) { broadcast_ = std::move(fn); }

  /// Appends one more tree slot (the network adds a slot per extra sink).
  void add_slot(std::unique_ptr<ThetaController> controller);
  [[nodiscard]] std::size_t slot_count() const noexcept {
    return slots_.size();
  }

  /// Tree position maintenance (driven by DirqNetwork on build/churn).
  /// The TreeId-less forms address tree 0 — the paper's single tree.
  void set_parent(NodeId parent) { set_parent(0, parent); }
  void set_parent(TreeId tree, NodeId parent) {
    slots_.at(tree).parent = parent;
  }
  [[nodiscard]] NodeId parent() const { return parent(0); }
  [[nodiscard]] NodeId parent(TreeId tree) const {
    return slots_.at(tree).parent;
  }
  void set_children(std::vector<NodeId> children) {
    set_children(0, std::move(children));
  }
  void set_children(TreeId tree, std::vector<NodeId> children);
  [[nodiscard]] const std::vector<NodeId>& children() const noexcept {
    return slots_.front().children;
  }
  [[nodiscard]] const std::vector<NodeId>& children(TreeId tree) const {
    return slots_.at(tree).children;
  }

  /// Physical position — the optional static location attribute (§2).
  /// DirQ works without it; with it, regional queries prune on subtree
  /// bounding boxes.
  void set_position(double x, double y) noexcept {
    x_ = x;
    y_ = y;
    has_position_ = true;
  }
  [[nodiscard]] bool has_position() const noexcept { return has_position_; }

  // --- sensing (paper §4.1, Fig. 1) ----------------------------------------

  /// Feeds one epoch's reading for an attached sensor. The reading is
  /// observed by every tree slot (one physical sample, N protocol views);
  /// each slot may emit an Update Message toward its own parent if its
  /// aggregate moved beyond its theta.
  void sample(SensorType type, double reading, std::int64_t epoch);

  /// One slot's share of sample(): observes the reading in `tree` only.
  /// The tree-sharded parallel engine calls this once per tree from the
  /// shard that owns the tree; calling it for every slot in ascending
  /// TreeId order is equivalent to one sample() call, because slots share
  /// no mutable state (per-slot update counters included).
  void sample_slot(TreeId tree, SensorType type, double reading,
                   std::int64_t epoch);

  /// End-of-epoch hook: drives every slot's threshold controller.
  void end_epoch(std::int64_t epoch);

  /// One slot's share of end_epoch() (see sample_slot).
  void end_epoch_slot(TreeId tree, std::int64_t epoch);

  // --- message handling ----------------------------------------------------

  /// Delivered message from a one-hop neighbour; dispatches to the slot
  /// named by the message's TreeId tag.
  void handle(const Message& msg, NodeId from, std::int64_t epoch);

  // --- topology dynamics (paper §4.2) ---------------------------------------

  /// A one-hop child vanished in the given tree (cross-layer notification
  /// routed through the network): drop its tuples from that slot's
  /// tables, propagate any resulting aggregate changes.
  void on_child_lost(NodeId child, std::int64_t epoch) {
    on_child_lost(0, child, epoch);
  }
  void on_child_lost(TreeId tree, NodeId child, std::int64_t epoch);

  /// Node re-parented after a tree repair: the slot's tables (and subtree
  /// bounding box) must be re-announced to the new parent regardless of
  /// theta (it knows nothing of us).
  void force_reannounce(std::int64_t epoch) { force_reannounce(0, epoch); }
  void force_reannounce(TreeId tree, std::int64_t epoch);

  /// Announces the slot's subtree bounding box to its parent if it
  /// changed since the last announcement.
  void announce_location(std::int64_t epoch) { announce_location(0, epoch); }
  void announce_location(TreeId tree, std::int64_t epoch);

  /// This node's current subtree bounding box in a tree (own point +
  /// child boxes); empty when nothing in the subtree is located.
  [[nodiscard]] net::BBox subtree_box() const { return subtree_box(0); }
  [[nodiscard]] net::BBox subtree_box(TreeId tree) const;

  /// Post-deployment sensor change on this node (§4.2 scalability).
  void attach_sensor(SensorType type);
  void detach_sensor(SensorType type, std::int64_t epoch);
  /// Attached sensor types, sorted ascending.
  [[nodiscard]] const std::vector<SensorType>& sensors() const noexcept {
    return sensors_;
  }

  // --- inspection ------------------------------------------------------------

  /// Range table for a type in a tree, or nullptr if the type is absent
  /// from this node's subtree there (tables exist lazily, Fig. 4).
  [[nodiscard]] const RangeTable* table(SensorType type) const {
    return table(0, type);
  }
  [[nodiscard]] const RangeTable* table(TreeId tree, SensorType type) const;

  /// True if this node believes its own reading may satisfy the query
  /// (its own stored tuple in the tree's slot overlaps the query window,
  /// and it lies inside the region when one is given). This is DirQ's
  /// local relevance test; it can err toward extra deliveries (overshoot)
  /// because the tuple is theta-wide.
  [[nodiscard]] bool believes_relevant(const query::RangeQuery& q) const {
    return believes_relevant(0, q);
  }
  [[nodiscard]] bool believes_relevant(const query::MultiQuery& q) const {
    return believes_relevant(0, q);
  }
  [[nodiscard]] bool believes_relevant(TreeId tree,
                                       const query::RangeQuery& q) const;
  [[nodiscard]] bool believes_relevant(TreeId tree,
                                       const query::MultiQuery& q) const;

  /// Children this node would forward the query to right now (per tree).
  [[nodiscard]] std::vector<NodeId> forwarding_set(
      const query::RangeQuery& q) const {
    return forwarding_set(0, q);
  }
  [[nodiscard]] std::vector<NodeId> forwarding_set(
      const query::MultiQuery& q) const {
    return forwarding_set(0, q);
  }
  [[nodiscard]] std::vector<NodeId> forwarding_set(
      TreeId tree, const query::RangeQuery& q) const;
  [[nodiscard]] std::vector<NodeId> forwarding_set(
      TreeId tree, const query::MultiQuery& q) const;

  [[nodiscard]] ThetaController& controller() noexcept {
    return *slots_.front().controller;
  }
  [[nodiscard]] const ThetaController& controller() const noexcept {
    return *slots_.front().controller;
  }
  [[nodiscard]] ThetaController& controller(TreeId tree) {
    return *slots_.at(tree).controller;
  }
  [[nodiscard]] const ThetaController& controller(TreeId tree) const {
    return *slots_.at(tree).controller;
  }

  /// Update Messages this node transmitted (origin + relay, all trees).
  /// The counter lives per slot so concurrent tree shards never share a
  /// cache line through it; this accessor sums the slots.
  [[nodiscard]] std::int64_t updates_sent() const noexcept {
    std::int64_t total = 0;
    for (const TreeSlot& slot : slots_) total += slot.updates_sent;
    return total;
  }

  /// EHr rounds seen (flood dedup state), exposed for tests.
  [[nodiscard]] std::int64_t last_ehr_round() const noexcept {
    return slots_.front().last_ehr_round;
  }
  [[nodiscard]] std::int64_t last_ehr_round(TreeId tree) const {
    return slots_.at(tree).last_ehr_round;
  }

 private:
  /// Everything DirQ keeps per spanning tree: position in the tree, the
  /// aggregated range tables, the location attribute, the threshold
  /// controller, and the EHr flood dedup round.
  struct TreeSlot {
    NodeId parent = kNoNode;
    std::vector<NodeId> children;
    sim::FlatMap<SensorType, RangeTable> tables;
    sim::FlatMap<NodeId, net::BBox> child_boxes;
    net::BBox sent_box = net::BBox::empty();
    bool box_sent = false;
    std::unique_ptr<ThetaController> controller;
    std::int64_t last_ehr_round = -1;
    std::int64_t updates_sent = 0;
  };

  /// Emits an update/retraction for `type` in `tree` if the slot's table
  /// demands one.
  void maybe_send_update(TreeId tree, SensorType type, std::int64_t epoch);
  void handle_update(const UpdateMessage& u, NodeId from, std::int64_t epoch);
  void handle_query(const QueryMessage& qm, std::int64_t epoch);
  void handle_multi_query(const MultiQueryMessage& qm, std::int64_t epoch);
  void handle_ehr(const EhrMessage& e, NodeId from, std::int64_t epoch);
  void handle_location(const LocationAnnounce& l, NodeId from,
                       std::int64_t epoch);
  /// Region pruning for a child: false only when the child's box is known
  /// and provably outside the region (unknown boxes are never pruned).
  [[nodiscard]] bool child_may_be_in_region(
      const TreeSlot& slot, NodeId child,
      const std::optional<net::BBox>& region) const;
  [[nodiscard]] bool slot_exists(TreeId tree) const noexcept {
    return tree < slots_.size();
  }

  NodeId id_;
  // Hot-path state is flat: sorted vectors / FlatMaps keyed by the dense
  // sensor-type and node-id domains, iterated every epoch by every node.
  std::vector<SensorType> sensors_;  // sorted, unique; shared by all slots
  std::vector<TreeSlot> slots_;      // one per spanning tree, TreeId-dense
  double x_ = 0.0, y_ = 0.0;
  bool has_position_ = false;
  SendFn send_;
  MulticastFn multicast_;
  BroadcastFn broadcast_;
};

}  // namespace dirq::core

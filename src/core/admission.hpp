// Query admission for the multi-sink query plane: which sink should
// inject the next query?
//
// The paper's deployment has one sink, so every query enters at the one
// root. With N sinks the gateway has a choice, and the choice drives both
// total cost (a deeper tree forwards each query across more hops) and
// energy balance (a hot sink's subtree drains first, and the first dead
// battery ends the deployment). The admission policy is greedy
// projected-energy routing: score each sink by
//
//   load_k + marginal_k
//
// where load_k is the energy that sink's tree has drawn so far (the
// gateway mirrors it from the per-sink ledger via sync_load) and
// marginal_k is the expected cost of one more query there — the running
// average of audited query costs previously routed to k, the global
// average before k has seen one, and a hop-depth prior (1 + mean tree
// depth, a depth-proportional unit-free proxy) before any query has been
// audited at all. Deeper trees cost more per query, so depth enters
// through the marginal; as ledgers diverge the load term dominates and
// routing turns into least-drained-first — the online greedy that keeps
// the worst per-sink energy (the deployment's lifetime) minimal. The
// argmin breaks ties toward the lowest TreeId, every input is observable
// at the gateway (tree structure, its own ledgers, its own audits), and
// the whole layer is RNG-free, so a run is deterministic for a fixed
// query stream.
//
// RoundRobin is the strawman baseline bench_multi_sink compares against:
// a modulo counter, blind to depth and load.
#pragma once

#include <cstdint>

#include "net/tree_set.hpp"
#include "sim/types.hpp"

namespace dirq::core {

enum class RoutingPolicy { Admission, RoundRobin };

class QueryAdmission {
 public:
  /// The TreeSet must outlive the admission layer; its current structure
  /// (post-churn) is re-read on every route() call.
  QueryAdmission(RoutingPolicy policy, const net::TreeSet& trees)
      : policy_(policy),
        trees_(&trees),
        load_(trees.count(), 0),
        noted_cost_(trees.count(), 0),
        noted_count_(trees.count(), 0) {}

  /// Picks the sink for the next query. Admission: argmin of
  /// load + expected marginal query cost, tie -> lowest TreeId.
  /// RoundRobin: the injection counter modulo the sink count.
  [[nodiscard]] TreeId route();

  /// Mirrors a sink's accumulated energy (its ledger total) into the load
  /// term. Replaces, never adds: the ledger is the single source of truth
  /// and already contains every audited query.
  void sync_load(TreeId tree, CostUnits total) { load_.at(tree) = total; }

  /// Feeds the audited dissemination cost of a finished query back into
  /// its sink's marginal-cost estimate. Called by the driver at query
  /// finalize.
  void note_cost(TreeId tree, CostUnits cost) {
    noted_cost_.at(tree) += cost;
    ++noted_count_.at(tree);
  }

  [[nodiscard]] CostUnits load(TreeId tree) const { return load_.at(tree); }
  [[nodiscard]] RoutingPolicy policy() const noexcept { return policy_; }

 private:
  [[nodiscard]] double mean_depth(TreeId tree) const;
  [[nodiscard]] double marginal(TreeId tree) const;

  RoutingPolicy policy_;
  const net::TreeSet* trees_;
  std::vector<CostUnits> load_;        // mirrored per-sink energy
  std::vector<CostUnits> noted_cost_;  // audited query cost per sink
  std::vector<std::int64_t> noted_count_;
  std::uint64_t injected_ = 0;  // RoundRobin counter
};

}  // namespace dirq::core

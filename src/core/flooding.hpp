// Flooding baseline (paper §5.1): every node rebroadcasts an incoming
// query exactly once, regardless of its neighbourhood — "even if a node
// does not have any other neighbor apart from the node it has received a
// message from, it still carries out a broadcast operation."
//
// Cost: N transmissions (one MAC broadcast per node) + 2*links receptions
// (each link delivers the broadcast in both directions over the run of the
// flood) = Eq. (3). The simulated flood reproduces that number exactly;
// tests assert simulation == closed form.
#pragma once

#include <vector>

#include "net/topology.hpp"
#include "sim/types.hpp"

namespace dirq::core {

struct FloodOutcome {
  std::vector<NodeId> received;  // every node the flood reached (origin excluded)
  CostUnits tx = 0;
  CostUnits rx = 0;
  [[nodiscard]] CostUnits cost() const noexcept { return tx + rx; }
};

class FloodingScheme {
 public:
  explicit FloodingScheme(const net::Topology& topo) : topo_(topo) {}

  /// Simulates one flood from `origin` over the alive subgraph.
  [[nodiscard]] FloodOutcome flood_from(NodeId origin) const;

  /// Eq. (3) closed form for the current topology: N + 2 * links.
  [[nodiscard]] CostUnits analytical_cost() const;

 private:
  const net::Topology& topo_;
};

}  // namespace dirq::core

#include "core/flooding.hpp"

#include <algorithm>
#include <deque>

namespace dirq::core {

FloodOutcome FloodingScheme::flood_from(NodeId origin) const {
  FloodOutcome out;
  if (origin >= topo_.size() || !topo_.is_alive(origin)) return out;

  // BFS over "first reception triggers the node's single rebroadcast".
  std::vector<bool> broadcasted(topo_.size(), false);
  std::deque<NodeId> pending{origin};
  broadcasted[origin] = true;
  while (!pending.empty()) {
    const NodeId u = pending.front();
    pending.pop_front();
    out.tx += 1;  // one MAC broadcast, no matter how many neighbours
    for (NodeId v : topo_.neighbors(u)) {
      out.rx += 1;  // every neighbour hears it (duplicates included)
      if (!broadcasted[v]) {
        broadcasted[v] = true;
        out.received.push_back(v);
        pending.push_back(v);
      }
    }
  }
  std::sort(out.received.begin(), out.received.end());
  return out;
}

CostUnits FloodingScheme::analytical_cost() const {
  return static_cast<CostUnits>(topo_.alive_count()) +
         2 * static_cast<CostUnits>(topo_.link_count());
}

}  // namespace dirq::core

#include "core/range_table.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace dirq::core {

bool RangeTable::observe(double reading, double theta) {
  if (own_ && reading >= own_->min && reading <= own_->max) {
    return false;  // inside the stored tuple: table unchanged (Fig. 1)
  }
  own_ = RangeEntry{reading - theta, reading + theta};
  return true;
}

void RangeTable::clear_own() { own_.reset(); }

bool RangeTable::set_child(NodeId child, RangeEntry range) {
  children_.insert_or_assign(child, range);
  // Conservative: treat any assign as a change (callers that avoid
  // re-aggregating would need a by-value comparison here).
  return true;
}

bool RangeTable::remove_child(NodeId child) {
  return children_.erase(child) > 0;
}

std::optional<RangeEntry> RangeTable::child(NodeId id) const {
  auto it = children_.find(id);
  if (it == children_.end()) return std::nullopt;
  return it->second;
}

RangeAggregate RangeTable::aggregate() const {
  if (!has_any()) return std::nullopt;
  double mn = std::numeric_limits<double>::infinity();
  double mx = -std::numeric_limits<double>::infinity();
  if (own_) {
    mn = own_->min;
    mx = own_->max;
  }
  for (const auto& [id, r] : children_) {
    mn = std::min(mn, r.min);
    mx = std::max(mx, r.max);
  }
  return RangeEntry{mn, mx};
}

bool RangeTable::needs_update(double theta) const {
  const RangeAggregate now = aggregate();
  if (!now.has_value()) {
    // Type vanished from the subtree: retract iff a range is outstanding.
    return ever_sent_ && sent_.has_value();
  }
  if (!ever_sent_ || !sent_.has_value()) return true;  // nothing sent yet
  // Fig. 3: transmit when either bound moved by more than theta.
  return std::abs(now->min - sent_->min) > theta ||
         std::abs(now->max - sent_->max) > theta;
}

void RangeTable::mark_sent() {
  sent_ = aggregate();
  ever_sent_ = true;
}

}  // namespace dirq::core

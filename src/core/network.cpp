#include "core/network.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <utility>

#include "analysis/cost_model.hpp"
#include "core/gate_scan.hpp"
#include "core/lossy.hpp"
#include "sim/logging.hpp"
#include "sim/thread_pool.hpp"

namespace dirq::core {

/// Shard-local accounting for one parallel consume pass. Every message a
/// shard's nodes emit is charged here instead of the shared transport
/// ledger, and per-node tx/rx attribution lands in shard-local dense
/// delta arrays (in tree-shard mode the same node transmits in several
/// shards, so direct writes to the shared counters would race). In
/// subtree mode root-bound deliveries are deferred so the root — the only
/// node reachable from more than one shard — is touched by exactly one
/// thread. Merged into the real ledger/counters in shard-index order
/// after the join, which keeps the totals equal to the sequential pass
/// (they are sums of the same per-message charges).
///
/// alignas(64): each shard's hot merge state gets its own cache line(s);
/// without it neighbouring shards' ledgers share lines and every charge
/// bounces the line between cores (see BM_ParallelEpochShardScaling).
struct alignas(64) EpochShardCtx {
  std::size_t index = 0;
  CostLedger ledger;
  std::int64_t update_msgs = 0;  // wire-level UpdateMessage transmissions
  std::vector<std::pair<NodeId, Message>> to_root;  // {from, msg}, in order
  // Per-type walk cursors (resized to the plan's type count each epoch).
  std::vector<std::size_t> plan_cur;
  std::vector<std::size_t> val_cur;
  // Per-node tx/rx deltas for this shard's pass (cleared each epoch,
  // merged in shard-index order).
  std::vector<CostUnits> tx_delta;
  std::vector<CostUnits> rx_delta;
  // Lossy-channel totals for this shard's pass (the verdicts themselves
  // are order-independent; only these tallies need the ordered merge).
  std::int64_t loss_offered = 0;
  std::int64_t loss_dropped = 0;
  // Chunk mode only: per-tree tx mirror — a chunk carries several trees'
  // messages when multiple sinks ride a deferred transport, so the
  // shard's single ledger cannot be attributed to one tree at merge.
  std::vector<CostLedger> tree_delta;
};

namespace {
/// Routes the wire_node send path: while a shard task runs, its context
/// lives here and unicasts charge the shard ledger. Distinct DirqNetwork
/// instances own distinct pools, so a worker thread only ever serves one
/// network at a time and the single slot cannot cross-talk.
thread_local EpochShardCtx* tls_shard = nullptr;

struct TlsShardGuard {
  explicit TlsShardGuard(EpochShardCtx* ctx) noexcept { tls_shard = ctx; }
  ~TlsShardGuard() { tls_shard = nullptr; }
  TlsShardGuard(const TlsShardGuard&) = delete;
  TlsShardGuard& operator=(const TlsShardGuard&) = delete;
};

void accumulate(CostLedger& into, const CostLedger& from) {
  into.query_tx += from.query_tx;
  into.query_rx += from.query_rx;
  into.update_tx += from.update_tx;
  into.update_rx += from.update_rx;
  into.control_tx += from.control_tx;
  into.control_rx += from.control_rx;
}
}  // namespace

/// The parallel epoch engine: a persistent pool plus the cached shard plan.
///
/// Three shard geometries share the machinery:
///
/// * Subtree mode (one tree): shard s is the s-th root child's subtree in
///   leaves-first (reversed cached-BFS) order, and for every sensor type
///   t, plan_nodes[t] lists the nodes carrying t in that same shard-major
///   walk order with the root's sensors at the tail (the root is
///   processed serially, last, exactly as the reversed global order
///   does). plan_seg[t] holds shards.size() + 2 offsets: segment s is
///   [seg[s], seg[s+1]) and the root segment is the final one.
///
/// * Tree-shard mode (several sinks): shard k IS spanning tree k. Every
///   shard walks the same reversed union order, but only advances its own
///   tree's slot on each node (DirqNode::sample_slot / end_epoch_slot) —
///   slots share no mutable state, so the shards are write-disjoint by
///   construction and no root pass is needed (each tree's cascade,
///   including into its own root, stays inside its shard). Shard 0
///   additionally owns the shared sampling gate: it performs the
///   on_skip/on_sample/count_sample bookkeeping inline, exactly where the
///   sequential walk does (the gate reads the tree-0 controller's theta,
///   which only shard 0 mutates). plan_nodes[t] is the full reversed
///   union walk per type; plan_seg is unused.
///
/// * Chunk mode (deferred-delivery transport, i.e. LMAC): shard s is a
///   contiguous chunk of the reversed epoch walk, each node fully
///   processed — all tree slots — inside its chunk. This is safe for any
///   sink count because sends on a deferred transport only enqueue into
///   the *sender's* per-node MAC queue (mac::LmacNetwork::send is a pure
///   push), so nothing crosses chunks during the walk; the slot-ordered
///   transmit/deliver loop — the MAC's ordering contract — runs later,
///   sequentially, in the scheduler. plan_seg carries the chunk segments
///   with an empty serial-root segment (the root sits inside a chunk,
///   which is fine precisely because no deliveries happen). Sends charge
///   the shard ledger plus a per-tree tree_delta mirror, both merged in
///   shard order. An open query audit does not force chunk-mode epochs
///   sequential: the audit arrays and the query-cost baseline only move
///   on deliveries and query traffic, neither of which the walk produces.
///
/// next_due mirrors the sampling gate per plan slot (struct-of-arrays, so
/// the per-epoch gate filter is a flat int64 scan — gate_scan.hpp — over
/// a dense array instead of a FlatMap lookup per sensor); shard 0 (or the
/// owning subtree shard) writes a slot back right after on_sample. In
/// gated epochs due_mask[t] holds the per-slot decision byte computed
/// before the shards run, so every shard branches on the same snapshot.
struct DirqNetwork::ParallelEngine {
  explicit ParallelEngine(unsigned threads) : pool(threads) {}

  static constexpr std::size_t kNoShard = static_cast<std::size_t>(-1);

  /// One readings() call: a contiguous slice of type t's batch. Splitting
  /// below whole types is only done when the source advertises
  /// concurrent_intra_type_chunks().
  struct FetchTask {
    SensorType type = 0;
    std::size_t begin = 0;
    std::size_t end = 0;
  };

  sim::ThreadPool pool;
  bool plan_dirty = true;
  bool tree_mode = false;      // shard per tree instead of per subtree
  bool mac_mode = false;       // chunk shards over a deferred transport
  std::size_t plan_alive = 0;  // cheap staleness guard vs the topology

  std::vector<std::vector<NodeId>> shards;  // subtree mode: leaves-first
  std::vector<NodeId> walk;                 // tree mode: shared walk order
  std::vector<std::size_t> claim_order;     // largest shard first
  std::vector<std::size_t> shard_of;        // per node, kNoShard if none
  bool gated = false;                       // sampling suppression on?

  std::vector<std::vector<NodeId>> plan_nodes;
  std::vector<std::vector<std::size_t>> plan_seg;
  std::vector<std::vector<std::int64_t>> next_due;  // gate mirror (gated)

  // Per-epoch scratch, reused so the hot loop never allocates.
  std::vector<EpochShardCtx> ctx;
  std::vector<std::vector<std::uint8_t>> due_mask;  // gated: 0/1 per slot
  std::vector<std::vector<NodeId>> filt_nodes;  // gated: nodes due this epoch
  std::vector<std::vector<std::size_t>> filt_seg;
  std::vector<std::vector<double>> values;
  std::vector<FetchTask> fetch_tasks;
  std::vector<std::size_t> root_plan_cur, root_val_cur;
  std::vector<SensorType> active_types;  // non-empty batches this epoch

  // The gather/consume batch for type t this epoch: the filtered list
  // when the gate is on, the full plan list otherwise.
  [[nodiscard]] const std::vector<NodeId>& batch(std::size_t t) const {
    return gated ? filt_nodes[t] : plan_nodes[t];
  }
  [[nodiscard]] const std::vector<std::size_t>& offsets(std::size_t t) const {
    return gated ? filt_seg[t] : plan_seg[t];
  }
};

std::unique_ptr<ThetaController> make_controller(const NetworkConfig& cfg) {
  if (cfg.mode == NetworkConfig::ThetaMode::Fixed) {
    return std::make_unique<FixedTheta>(cfg.fixed_pct);
  }
  return std::make_unique<AtcController>(cfg.atc);
}

DirqNetwork::DirqNetwork(net::Topology& topo, NodeId root, NetworkConfig cfg)
    : DirqNetwork(topo, std::vector<NodeId>{root}, cfg) {}

DirqNetwork::DirqNetwork(net::Topology& topo, std::vector<NodeId> roots,
                         NetworkConfig cfg)
    : topo_(topo),
      cfg_(cfg),
      trees_(topo, std::move(roots)),
      root_(trees_.root(0)) {
  const std::size_t n_trees = trees_.count();
  nodes_.reserve(topo.size());
  for (const net::Node& n : topo.nodes()) {
    nodes_.emplace_back(n.id,
                        std::vector<SensorType>(n.sensors.begin(), n.sensors.end()),
                        make_controller(cfg_));
    for (TreeId t = 1; t < n_trees; ++t) {
      nodes_.back().add_slot(make_controller(cfg_));
    }
    samplers_.emplace_back(cfg_.sampling);
  }
  node_tx_.assign(topo.size(), 0);
  node_rx_.assign(topo.size(), 0);
  tree_ledgers_.assign(n_trees, CostLedger{});
  instant_ = std::make_unique<InstantTransport>(topo_, *this);
  transport_ = instant_.get();
  prev_parent_.assign(n_trees, std::vector<NodeId>(topo.size(), kNoNode));
  for (NodeId u = 0; u < topo.size(); ++u) {
    nodes_[u].set_position(topo.node(u).x, topo.node(u).y);
    for (TreeId t = 0; t < n_trees; ++t) {
      const net::SpanningTree& tr = trees_.tree(t);
      if (!tr.in_tree(u)) continue;
      nodes_[u].set_parent(t, tr.parent(u));
      const auto ch = tr.children(u);
      nodes_[u].set_children(t, std::vector<NodeId>(ch.begin(), ch.end()));
      prev_parent_[t][u] = tr.parent(u);
    }
  }
  for (DirqNode& n : nodes_) wire_node(n);
  // Bootstrap the static location attribute: leaves-first announcement so
  // subtree bounding boxes aggregate toward each root in a single wave
  // per tree.
  for (TreeId t = 0; t < n_trees; ++t) {
    const std::vector<NodeId>& order = trees_.tree(t).bfs_order();
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      nodes_[*it].announce_location(t, 0);
    }
  }
  rebuild_union_walk();
}

DirqNetwork::~DirqNetwork() = default;

void DirqNetwork::set_threads(unsigned threads) {
  const unsigned n = sim::ThreadPool::resolve(threads);
  if (n <= 1) {
    par_.reset();
    return;
  }
  if (par_ && par_->pool.size() == n) return;
  par_ = std::make_unique<ParallelEngine>(n);
}

unsigned DirqNetwork::threads() const noexcept {
  return par_ ? par_->pool.size() : 1;
}

void DirqNetwork::set_loss(LossChannel* loss) {
  loss_ = loss;
  // Pre-size the counter planes so parallel shards never grow the outer
  // vectors (their per-(tree, from) cells stay shard-owned); kept sized
  // across churn by retarget_trees.
  if (loss_ != nullptr) loss_->configure(trees_.count(), topo_.size());
}

void DirqNetwork::charge_tree_tx(const Message& msg) {
  const TreeId t = message_tree(msg);
  if (t < tree_ledgers_.size()) {
    InstantTransport::charge_tx(tree_ledgers_[t], msg);
  }
}

void DirqNetwork::charge_tree_rx(const Message& msg) {
  const TreeId t = message_tree(msg);
  if (t < tree_ledgers_.size()) {
    InstantTransport::charge_rx(tree_ledgers_[t], msg);
  }
}

void DirqNetwork::wire_node(DirqNode& n) {
  n.set_send([this](NodeId from, NodeId to, const Message& msg) {
    if (EpochShardCtx* ctx = tls_shard) {
      // Parallel consume pass: charge the shard, not the shared ledger;
      // the update hook is replayed (same epoch, same count) at merge,
      // and the shard ledger is merged into the message's tree mirror.
      // Per-node attribution goes through the shard's delta array — in
      // tree-shard mode `from` transmits in several shards at once.
      if (std::holds_alternative<UpdateMessage>(msg)) ++ctx->update_msgs;
      ctx->tx_delta.at(from) += 1;
      if (par_->mac_mode) {
        // Chunk mode: the send only enqueues into `from`'s own MAC queue
        // (single-writer — this shard owns `from`). Charge the shard
        // ledger and the message's per-tree mirror locally; both merge in
        // shard order after the join.
        InstantTransport::charge_tx(ctx->ledger, msg);
        const TreeId t = message_tree(msg);
        if (t < ctx->tree_delta.size()) {
          InstantTransport::charge_tx(ctx->tree_delta[t], msg);
        }
        transport_->unicast_uncharged(from, to, msg);
        return;
      }
      parallel_unicast(*ctx, from, to, msg);
      return;
    }
    if (std::holds_alternative<UpdateMessage>(msg)) {
      ++updates_transmitted_;
      if (update_hook_) update_hook_(current_epoch_);
    }
    node_tx_.at(from) += 1;
    charge_tree_tx(msg);
    transport_->unicast(from, to, msg);
  });
  n.set_multicast([this](NodeId from, const std::vector<NodeId>& targets,
                         const Message& msg) {
    if (tls_shard != nullptr) {
      // The consume pass is strictly up-tree unicast; anything else here
      // means protocol state diverged from the tree. Fail loud.
      throw std::logic_error("DirqNetwork: multicast during a parallel epoch");
    }
    node_tx_.at(from) += 1;  // one transmission regardless of target count
    charge_tree_tx(msg);
    transport_->multicast(from, targets, msg);
  });
  n.set_broadcast([this](NodeId from, const Message& msg) {
    if (tls_shard != nullptr) {
      throw std::logic_error("DirqNetwork: broadcast during a parallel epoch");
    }
    node_tx_.at(from) += 1;
    charge_tree_tx(msg);
    transport_->broadcast(from, msg);
  });
}

void DirqNetwork::deliver(NodeId to, NodeId from, const Message& msg) {
  // The transport has already charged ledger rx for this delivery, so the
  // per-node attribution must follow even when the protocol instance for
  // `to` does not exist yet (the Topology::add_node →
  // handle_node_addition window: the radio exists as soon as the topology
  // slot does — cost parity is an invariant, not a best effort). An id
  // beyond the topology itself is a transport contract violation.
  if (to >= topo_.size()) {
    throw std::logic_error("DirqNetwork::deliver: recipient outside topology");
  }
  // Mirror the rx into the message's tree ledger — except while replaying
  // deferred root deliveries at the parallel merge, whose rx the shard
  // ledger already booked.
  if (!merging_parallel_) charge_tree_rx(msg);
  if (to >= node_rx_.size()) node_rx_.resize(topo_.size(), 0);
  node_rx_[to] += 1;
  // CRC loss: the radio has paid its rx (ledger, tree mirror, per-node) —
  // the protocol never sees the frame. Skipped while replaying deferred
  // root deliveries at the parallel merge: those already survived their
  // in-shard verdict (parallel_unicast).
  if (loss_ != nullptr && !merging_parallel_) {
    const bool dropped = loss_->next_drop(message_tree(msg), from, to);
    loss_->note(dropped);
    if (dropped) return;
  }
  if (to >= nodes_.size()) return;  // heard, but not yet integrated
  if (audit_active_) {
    if (const auto* qm = std::get_if<QueryMessage>(&msg);
        qm != nullptr && qm->q.id == audit_query_) {
      audit_received_.push_back(to);
      if (nodes_[to].believes_relevant(qm->tree, qm->q)) {
        audit_believed_.push_back(to);
      }
    } else if (const auto* mq = std::get_if<MultiQueryMessage>(&msg);
               mq != nullptr && mq->q.id == audit_query_) {
      audit_received_.push_back(to);
      if (nodes_[to].believes_relevant(mq->tree, mq->q)) {
        audit_believed_.push_back(to);
      }
    }
  }
  nodes_[to].handle(msg, from, current_epoch_);
}

const std::vector<NodeId>& DirqNetwork::epoch_walk_order() const {
  return trees_.count() == 1 ? trees_.tree(0).bfs_order() : union_order_;
}

void DirqNetwork::rebuild_union_walk() {
  union_order_.clear();
  if (trees_.count() == 1) return;  // tree 0's cached order is the walk
  // Tree 0's BFS order first — identical prefix to the single-sink walk —
  // then members of the other trees outside tree 0, in their own BFS
  // order. Deterministic, and any order is correct for the cascade (each
  // parent re-checks on every child update).
  std::vector<char> seen(topo_.size(), 0);
  for (TreeId t = 0; t < trees_.count(); ++t) {
    for (NodeId u : trees_.tree(t).bfs_order()) {
      if (seen[u]) continue;
      seen[u] = 1;
      union_order_.push_back(u);
    }
  }
}

void DirqNetwork::process_epoch(const data::ReadingSource& env,
                                std::int64_t epoch) {
  current_epoch_ = epoch;
  if (par_ != nullptr) {
    if (transport_ == instant_.get()) {
      // Instant transport: deliveries happen inline during the walk, so
      // an open audit (whose received/believed arrays are only written in
      // deliver()) forces the sequential path.
      if (!audit_active_) {
        process_epoch_parallel(env, epoch);
        return;
      }
    } else if (transport_->deferred_delivery()) {
      // Deferred transport (LMAC): the walk performs no deliveries — it
      // only enqueues into per-sender queues — so chunk-mode epochs are
      // safe even inside an open (asynchronous) audit.
      process_epoch_parallel(env, epoch);
      return;
    }
  }
  // Sequential fallback (audited instant epoch, or a custom synchronous
  // transport) while a pool exists: node state advances outside the plan,
  // so the gate mirror is stale for the next parallel epoch.
  if (par_ != nullptr) par_->plan_dirty = true;
  // Leaves-first (reverse BFS) ordering makes the within-epoch update
  // cascade settle in a single pass with the instant transport; any order
  // is correct since parents re-check on every child update. The order is
  // tree 0's cached (alive-only) BFS order — extended by other trees'
  // extra members when several sinks are deployed — no per-epoch
  // allocation — and each node's epoch work (sampling, theta checks,
  // update propagation, controller end-of-epoch step) is batched into
  // this one walk. The end-of-epoch step only mutates the node's own
  // controllers, so running it per node inside the pass is equivalent to
  // a separate whole-network sweep.
  //
  // Readings cross the environment boundary in one batch per sensor type:
  // pass 1 gathers, per type and in walk order, the nodes that will
  // physically sample; one ReadingSource::readings call per type fills the
  // values; pass 2 re-runs the identical walk consuming them. Readings are
  // pure at a fixed epoch and the gate decision for (node, type) reads
  // only prior-epoch state, so both passes branch identically and the
  // per-node evaluation order (messages, goldens) is unchanged.
  const std::vector<NodeId>& order = epoch_walk_order();
  if (batch_nodes_.size() < env.type_count()) {
    batch_nodes_.resize(env.type_count());
    batch_values_.resize(env.type_count());
    batch_cursor_.resize(env.type_count());
  }
  for (std::size_t t = 0; t < batch_nodes_.size(); ++t) {
    batch_nodes_[t].clear();
    batch_cursor_[t] = 0;
  }
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const NodeId u = *it;
    if (!topo_.is_alive(u)) continue;
    const net::Node& info = topo_.node(u);
    const SamplingController& gate = samplers_[u];
    // Node::sensors is sorted + deduplicated by every Topology entry
    // point (constructor, add_node, add_sensor), so a (node, type) pair
    // occurs at most once per walk — the gate decision re-evaluated in
    // pass 2 cannot have been perturbed by an earlier occurrence, and the
    // two passes always branch identically (asserted by
    // DirqNetworkBatch.DuplicateSensorListsAreDedupedByTopology).
    for (SensorType t : info.sensors) {
      if (!gate.enabled() || gate.should_sample(t, epoch)) {
        // Post-deployment sensor types can exceed the environment's type
        // count; keep them in the batch so the backend raises the same
        // out_of_range the per-node path always did.
        if (t >= batch_nodes_.size()) {
          batch_nodes_.resize(t + 1);
          batch_values_.resize(t + 1);
          batch_cursor_.resize(t + 1, 0);
        }
        batch_nodes_[t].push_back(u);
      }
    }
  }
  for (std::size_t t = 0; t < batch_nodes_.size(); ++t) {
    if (batch_nodes_[t].empty()) continue;
    batch_values_[t].resize(batch_nodes_[t].size());
    env.readings(static_cast<SensorType>(t), batch_nodes_[t],
                 batch_values_[t]);
  }
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const NodeId u = *it;
    if (!topo_.is_alive(u)) continue;
    const net::Node& info = topo_.node(u);
    SamplingController& gate = samplers_[u];
    if (!gate.enabled()) {
      // Suppression off (the paper's evaluated configuration): sample
      // every sensor, skip the predictor bookkeeping entirely.
      for (SensorType t : info.sensors) {
        nodes_[u].sample(t, batch_values_[t][batch_cursor_[t]++], epoch);
        gate.count_sample();
      }
    } else {
      for (SensorType t : info.sensors) {
        if (!gate.should_sample(t, epoch)) {
          gate.on_skip(t);  // predictor confident: save the ADC energy (§8)
          continue;
        }
        const double reading = batch_values_[t][batch_cursor_[t]++];
        nodes_[u].sample(t, reading, epoch);
        gate.on_sample(t, reading, nodes_[u].controller().theta(t), epoch);
      }
    }
    nodes_[u].end_epoch(epoch);
  }
}

void DirqNetwork::rebuild_parallel_plan() {
  ParallelEngine& pe = *par_;
  pe.mac_mode = transport_ != instant_.get();
  pe.tree_mode = !pe.mac_mode && trees_.count() > 1;
  if (pe.mac_mode) {
    // Chunk mode: contiguous chunks of the reversed (alive-filtered)
    // epoch walk, concatenating to exactly the sequential order — so each
    // per-type batch stays one contiguous segment per shard and the
    // existing plan_seg/offsets machinery applies, with an empty
    // serial-root segment.
    pe.walk.clear();
    const std::vector<NodeId>& order = epoch_walk_order();
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      if (topo_.is_alive(*it)) pe.walk.push_back(*it);
    }
    const std::size_t S = std::max<std::size_t>(
        1, std::min<std::size_t>(pe.pool.size(), pe.walk.size()));
    pe.shards.assign(S, {});
    pe.shard_of.assign(nodes_.size(), ParallelEngine::kNoShard);
    for (std::size_t s = 0; s < S; ++s) {
      const std::size_t b = s * pe.walk.size() / S;
      const std::size_t e = (s + 1) * pe.walk.size() / S;
      pe.shards[s].assign(pe.walk.begin() + b, pe.walk.begin() + e);
      for (NodeId u : pe.shards[s]) pe.shard_of[u] = s;
    }
    pe.claim_order.resize(S);
    std::iota(pe.claim_order.begin(), pe.claim_order.end(), std::size_t{0});

    std::size_t type_count = 0;
    for (NodeId u : pe.walk) {
      for (SensorType t : topo_.node(u).sensors) {
        type_count = std::max<std::size_t>(type_count, t + 1);
      }
    }
    pe.plan_nodes.assign(type_count, {});
    pe.plan_seg.assign(type_count, std::vector<std::size_t>(S + 2, 0));
    for (std::size_t s = 0; s < S; ++s) {
      for (std::size_t t = 0; t < type_count; ++t) {
        pe.plan_seg[t][s] = pe.plan_nodes[t].size();
      }
      for (NodeId u : pe.shards[s]) {
        for (SensorType t : topo_.node(u).sensors) {
          pe.plan_nodes[t].push_back(u);
        }
      }
    }
    for (std::size_t t = 0; t < type_count; ++t) {
      // The root is inside a chunk; the serial-root segment is empty.
      pe.plan_seg[t][S] = pe.plan_nodes[t].size();
      pe.plan_seg[t][S + 1] = pe.plan_nodes[t].size();
    }

    pe.gated = cfg_.sampling.enabled;
    if (pe.gated) {
      pe.next_due.assign(type_count, {});
      for (std::size_t t = 0; t < type_count; ++t) {
        pe.next_due[t].resize(pe.plan_nodes[t].size());
        for (std::size_t j = 0; j < pe.plan_nodes[t].size(); ++j) {
          pe.next_due[t][j] = samplers_[pe.plan_nodes[t][j]].next_due(
              static_cast<SensorType>(t));
        }
      }
    } else {
      pe.next_due.clear();
    }

    pe.ctx.resize(S);
    for (EpochShardCtx& ctx : pe.ctx) {
      ctx.tx_delta.assign(topo_.size(), 0);
      ctx.rx_delta.assign(topo_.size(), 0);
      ctx.tree_delta.assign(trees_.count(), CostLedger{});
    }
    pe.due_mask.assign(type_count, {});
    pe.filt_nodes.assign(type_count, {});
    pe.filt_seg.assign(type_count, std::vector<std::size_t>(S + 2, 0));
    pe.values.resize(type_count);
    pe.plan_alive = topo_.alive_count();
    pe.plan_dirty = false;
    return;
  }
  if (pe.tree_mode) {
    // Tree-shard mode: shard k is tree k. Every shard repeats the full
    // reversed union walk (the sequential multi-sink order), advancing
    // only its own tree's slot per node; plan_nodes[t] is that walk
    // restricted to nodes carrying t, which is exactly the sequential
    // gather order, so batches — and therefore readings — are identical.
    const std::size_t S = trees_.count();
    pe.shards.clear();
    pe.shard_of.clear();
    pe.walk.clear();
    const std::vector<NodeId>& order = epoch_walk_order();
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      if (topo_.is_alive(*it)) pe.walk.push_back(*it);
    }
    pe.claim_order.resize(S);
    std::iota(pe.claim_order.begin(), pe.claim_order.end(), std::size_t{0});

    std::size_t type_count = 0;
    for (NodeId u : pe.walk) {
      for (SensorType t : topo_.node(u).sensors) {
        type_count = std::max<std::size_t>(type_count, t + 1);
      }
    }
    pe.plan_nodes.assign(type_count, {});
    pe.plan_seg.clear();
    for (NodeId u : pe.walk) {
      for (SensorType t : topo_.node(u).sensors) pe.plan_nodes[t].push_back(u);
    }

    pe.gated = cfg_.sampling.enabled;
    if (pe.gated) {
      pe.next_due.assign(type_count, {});
      for (std::size_t t = 0; t < type_count; ++t) {
        pe.next_due[t].resize(pe.plan_nodes[t].size());
        for (std::size_t j = 0; j < pe.plan_nodes[t].size(); ++j) {
          pe.next_due[t][j] = samplers_[pe.plan_nodes[t][j]].next_due(
              static_cast<SensorType>(t));
        }
      }
    } else {
      pe.next_due.clear();
    }

    pe.ctx.resize(S);
    for (EpochShardCtx& ctx : pe.ctx) {
      ctx.tx_delta.assign(topo_.size(), 0);
      ctx.rx_delta.assign(topo_.size(), 0);
    }
    pe.due_mask.assign(type_count, {});
    pe.filt_nodes.assign(type_count, {});
    pe.filt_seg.clear();
    pe.values.resize(type_count);
    pe.plan_alive = topo_.alive_count();
    pe.plan_dirty = false;
    return;
  }
  const net::SpanningTree& tree0 = trees_.tree(0);
  pe.shards = tree0.subtree_partition();
  // Leaves-first within each shard: the same relative order the reversed
  // global walk visits that subtree in, so intra-shard cascades settle in
  // one pass exactly as they do sequentially.
  for (std::vector<NodeId>& s : pe.shards) std::reverse(s.begin(), s.end());
  const std::size_t S = pe.shards.size();
  pe.shard_of.assign(nodes_.size(), ParallelEngine::kNoShard);
  for (std::size_t s = 0; s < S; ++s) {
    for (NodeId u : pe.shards[s]) pe.shard_of[u] = s;
  }
  // Dynamic claiming plus largest-first ordering keeps the pool busy when
  // subtree sizes are skewed; processing order is unobservable (shards are
  // disjoint and root-bound merges happen in shard-index order later).
  pe.claim_order.resize(S);
  std::iota(pe.claim_order.begin(), pe.claim_order.end(), std::size_t{0});
  std::stable_sort(pe.claim_order.begin(), pe.claim_order.end(),
                   [&pe](std::size_t a, std::size_t b) {
                     return pe.shards[a].size() > pe.shards[b].size();
                   });

  std::size_t type_count = 0;
  const auto scan_types = [&](NodeId u) {
    for (SensorType t : topo_.node(u).sensors) {
      type_count = std::max<std::size_t>(type_count, t + 1);
    }
  };
  for (const std::vector<NodeId>& shard : pe.shards) {
    for (NodeId u : shard) scan_types(u);
  }
  const bool root_in_tree = tree0.in_tree(root_);
  if (root_in_tree) scan_types(root_);

  pe.plan_nodes.assign(type_count, {});
  pe.plan_seg.assign(type_count, std::vector<std::size_t>(S + 2, 0));
  const auto append_walk = [&](NodeId u) {
    for (SensorType t : topo_.node(u).sensors) pe.plan_nodes[t].push_back(u);
  };
  for (std::size_t s = 0; s < S; ++s) {
    for (std::size_t t = 0; t < type_count; ++t) {
      pe.plan_seg[t][s] = pe.plan_nodes[t].size();
    }
    for (NodeId u : pe.shards[s]) append_walk(u);
  }
  for (std::size_t t = 0; t < type_count; ++t) {
    pe.plan_seg[t][S] = pe.plan_nodes[t].size();
  }
  if (root_in_tree) append_walk(root_);
  for (std::size_t t = 0; t < type_count; ++t) {
    pe.plan_seg[t][S + 1] = pe.plan_nodes[t].size();
  }

  pe.gated = cfg_.sampling.enabled;
  if (pe.gated) {
    pe.next_due.assign(type_count, {});
    for (std::size_t t = 0; t < type_count; ++t) {
      pe.next_due[t].resize(pe.plan_nodes[t].size());
      for (std::size_t j = 0; j < pe.plan_nodes[t].size(); ++j) {
        pe.next_due[t][j] =
            samplers_[pe.plan_nodes[t][j]].next_due(static_cast<SensorType>(t));
      }
    }
  } else {
    pe.next_due.clear();
  }

  pe.ctx.resize(S);
  for (EpochShardCtx& ctx : pe.ctx) {
    ctx.tx_delta.assign(topo_.size(), 0);
    ctx.rx_delta.assign(topo_.size(), 0);
  }
  pe.due_mask.assign(type_count, {});
  pe.filt_nodes.assign(type_count, {});
  pe.filt_seg.assign(type_count, std::vector<std::size_t>(S + 2, 0));
  pe.values.resize(type_count);
  pe.plan_alive = topo_.alive_count();
  pe.plan_dirty = false;
}

void DirqNetwork::parallel_unicast(EpochShardCtx& ctx, NodeId from, NodeId to,
                                   const Message& msg) {
  // Mirrors InstantTransport::unicast against the shard ledger (same
  // classification helpers, same lost/out-of-range semantics); in subtree
  // mode root-bound deliveries are deferred to the serial merge.
  InstantTransport::charge_tx(ctx.ledger, msg);
  if (to >= topo_.size() || !topo_.is_alive(to)) return;  // lost
  const auto nbrs = topo_.neighbors(from);
  if (!std::binary_search(nbrs.begin(), nbrs.end(), to)) return;
  InstantTransport::charge_rx(ctx.ledger, msg);
  // CRC loss, decided inside the shard: the verdict is a pure function of
  // (tree, from, to, per-key seq) and this shard owns the key — tree-shard
  // mode owns the whole tree plane, subtree mode owns the sender — so it
  // equals the sequential verdict. The radio paid (rx charged above +
  // rx_delta here, mirroring note_dropped_rx); the frame goes no further
  // — root-bound drops are never deferred.
  if (loss_ != nullptr) {
    ++ctx.loss_offered;
    if (loss_->next_drop(message_tree(msg), from, to)) {
      ++ctx.loss_dropped;
      ctx.rx_delta[to] += 1;
      return;
    }
  }
  if (par_->tree_mode) {
    // Shard k owns tree k: the receiver's slot k is only ever touched by
    // this thread (DirqNode::handle dispatches on the message's tree tag),
    // so delivery is inline — roots included.
    if (message_tree(msg) != static_cast<TreeId>(ctx.index)) {
      throw std::logic_error(
          "DirqNetwork: cross-tree message during a tree-sharded epoch");
    }
    ctx.rx_delta[to] += 1;
    nodes_[to].handle(msg, from, current_epoch_);
    return;
  }
  if (to == root_) {
    ctx.to_root.emplace_back(from, msg);
    return;
  }
  if (par_->shard_of[to] != ctx.index) {
    throw std::logic_error(
        "DirqNetwork: cross-shard delivery — node parent state diverged "
        "from the spanning tree");
  }
  ctx.rx_delta[to] += 1;
  nodes_[to].handle(msg, from, current_epoch_);
}

void DirqNetwork::run_shard_consume(std::size_t shard, std::int64_t epoch) {
  ParallelEngine& pe = *par_;
  EpochShardCtx& ctx = pe.ctx[shard];
  const TlsShardGuard guard(&ctx);
  const std::size_t type_count = pe.plan_nodes.size();
  ctx.plan_cur.resize(type_count);
  ctx.val_cur.resize(type_count);
  for (std::size_t t = 0; t < type_count; ++t) {
    ctx.plan_cur[t] = pe.plan_seg[t][shard];
    ctx.val_cur[t] = pe.offsets(t)[shard];
  }
  for (NodeId u : pe.shards[shard]) {
    if (!topo_.is_alive(u)) {
      throw std::logic_error(
          "DirqNetwork: aliveness changed without tree repair during a "
          "parallel run");
    }
    const net::Node& info = topo_.node(u);
    SamplingController& gate = samplers_[u];
    if (!pe.gated) {
      for (SensorType t : info.sensors) {
        nodes_[u].sample(t, pe.values[t][ctx.val_cur[t]++], epoch);
        gate.count_sample();
      }
    } else {
      for (SensorType t : info.sensors) {
        const std::size_t j = ctx.plan_cur[t]++;
        if (!pe.due_mask[t][j]) {
          gate.on_skip(t);
          continue;
        }
        const double reading = pe.values[t][ctx.val_cur[t]++];
        nodes_[u].sample(t, reading, epoch);
        gate.on_sample(t, reading, nodes_[u].controller().theta(t), epoch);
        pe.next_due[t][j] = gate.next_due(t);  // slot owned by this shard
      }
    }
    nodes_[u].end_epoch(epoch);
  }
}

void DirqNetwork::run_tree_shard_consume(std::size_t shard,
                                         std::int64_t epoch) {
  ParallelEngine& pe = *par_;
  EpochShardCtx& ctx = pe.ctx[shard];
  const TlsShardGuard guard(&ctx);
  const TreeId tree = static_cast<TreeId>(shard);
  // Shard 0 owns the shared sampling gate: it does the predictor
  // bookkeeping inline, exactly where the sequential walk does, and it is
  // also the shard that mutates the tree-0 controller whose theta the
  // gate reads — so its interleaving matches the sequential pass. The
  // other shards branch on the due_mask snapshot instead of touching the
  // gate at all.
  const bool lead = shard == 0;
  const std::size_t type_count = pe.plan_nodes.size();
  ctx.plan_cur.assign(type_count, 0);
  ctx.val_cur.assign(type_count, 0);
  for (NodeId u : pe.walk) {
    if (!topo_.is_alive(u)) {
      throw std::logic_error(
          "DirqNetwork: aliveness changed without tree repair during a "
          "parallel run");
    }
    const net::Node& info = topo_.node(u);
    SamplingController& gate = samplers_[u];
    if (!pe.gated) {
      for (SensorType t : info.sensors) {
        nodes_[u].sample_slot(tree, t, pe.values[t][ctx.val_cur[t]++], epoch);
        if (lead) gate.count_sample();
      }
    } else {
      for (SensorType t : info.sensors) {
        const std::size_t j = ctx.plan_cur[t]++;
        if (!pe.due_mask[t][j]) {
          if (lead) gate.on_skip(t);
          continue;
        }
        const double reading = pe.values[t][ctx.val_cur[t]++];
        nodes_[u].sample_slot(tree, t, reading, epoch);
        if (lead) {
          gate.on_sample(t, reading, nodes_[u].controller().theta(t), epoch);
          pe.next_due[t][j] = gate.next_due(t);  // only shard 0 writes
        }
      }
    }
    nodes_[u].end_epoch_slot(tree, epoch);
  }
}

void DirqNetwork::process_epoch_parallel(const data::ReadingSource& env,
                                         std::int64_t epoch) {
  ParallelEngine& pe = *par_;
  const bool want_mac = transport_ != instant_.get();
  const bool rebuilt = pe.plan_dirty || pe.plan_alive != topo_.alive_count() ||
                       pe.mac_mode != want_mac;
  if (rebuilt) rebuild_parallel_plan();
  const std::size_t S = pe.tree_mode ? pe.ctx.size() : pe.shards.size();
  const std::size_t type_count = pe.plan_nodes.size();

  // Intra-type chunking needs the source's lazy node adoption settled
  // before chunks of one type run concurrently (FastField grows its
  // per-node cache on first sight of a node id). One serial probe of the
  // highest planned node per type — readings are pure, so this has no
  // observable effect — guarantees every chunk only reads adopted state.
  const bool chunked_fetch = env.concurrent_type_batches() &&
                             env.concurrent_intra_type_chunks();
  if (rebuilt && chunked_fetch) {
    for (std::size_t t = 0; t < type_count; ++t) {
      if (pe.plan_nodes[t].empty() || t >= env.type_count()) continue;
      const NodeId mx =
          *std::max_element(pe.plan_nodes[t].begin(), pe.plan_nodes[t].end());
      (void)env.reading(mx, static_cast<SensorType>(t));
    }
  }

  // Gather: with the gate off (the paper's configuration) the cached plan
  // lists *are* the batches — zero per-epoch work. With it on, the gate
  // is a branch-light two-pass sweep per type over the next_due mirror
  // (gate_scan.hpp: a vectorizable compare pass into due_mask, then an
  // unconditional-store compaction); slots only change through on_sample,
  // so the mask branches exactly like the sequential should_sample walk.
  if (pe.gated) {
    for (std::size_t t = 0; t < type_count; ++t) {
      const std::vector<NodeId>& pn = pe.plan_nodes[t];
      const std::vector<std::int64_t>& due = pe.next_due[t];
      const std::size_t n = pn.size();
      pe.due_mask[t].resize(n);
      gate_scan_mask(due.data(), n, epoch, pe.due_mask[t].data());
      pe.filt_nodes[t].resize(n);
      if (pe.tree_mode) {
        const std::size_t m = gate_compact(pn.data(), pe.due_mask[t].data(),
                                           0, n, pe.filt_nodes[t].data());
        pe.filt_nodes[t].resize(m);
      } else {
        std::size_t m = 0;
        for (std::size_t s = 0; s <= S; ++s) {
          pe.filt_seg[t][s] = m;
          m += gate_compact(pn.data(), pe.due_mask[t].data(),
                            pe.plan_seg[t][s], pe.plan_seg[t][s + 1],
                            pe.filt_nodes[t].data() + m);
        }
        pe.filt_seg[t][S + 1] = m;
        pe.filt_nodes[t].resize(m);
      }
    }
  }

  // Readings: batched per sensor type; types run concurrently when the
  // source's per-type state is disjoint (both synthetic backends), and a
  // single type's batch additionally splits into chunks when the source
  // supports it (FastField's per-thread cell scratch) — either way the
  // same values, since readings are pure at a fixed epoch.
  pe.active_types.clear();
  pe.fetch_tasks.clear();
  std::size_t total_batch = 0;
  for (std::size_t t = 0; t < type_count; ++t) {
    const std::vector<NodeId>& batch = pe.batch(t);
    pe.values[t].resize(batch.size());
    total_batch += batch.size();
    if (!batch.empty()) pe.active_types.push_back(static_cast<SensorType>(t));
  }
  // Chunk size depends only on the plan and the pool width, never on
  // timing, so the task list — and every readings() argument — is
  // deterministic.
  constexpr std::size_t kMinChunk = 128;
  const std::size_t target =
      chunked_fetch
          ? std::max(kMinChunk,
                     total_batch / (static_cast<std::size_t>(pe.pool.size()) * 2))
          : 0;
  for (SensorType t : pe.active_types) {
    const std::size_t n = pe.batch(t).size();
    if (!chunked_fetch || n <= target) {
      pe.fetch_tasks.push_back({t, 0, n});
      continue;
    }
    for (std::size_t b = 0; b < n; b += target) {
      pe.fetch_tasks.push_back({t, b, std::min(b + target, n)});
    }
  }
  const auto fetch = [&](std::size_t k) {
    const ParallelEngine::FetchTask& ft = pe.fetch_tasks[k];
    const std::vector<NodeId>& batch = pe.batch(ft.type);
    env.readings(ft.type,
                 std::span<const NodeId>(batch).subspan(ft.begin,
                                                        ft.end - ft.begin),
                 std::span<double>(pe.values[ft.type])
                     .subspan(ft.begin, ft.end - ft.begin));
  };
  if (env.concurrent_type_batches()) {
    pe.pool.parallel_for(pe.fetch_tasks.size(), fetch);
  } else {
    for (std::size_t k = 0; k < pe.fetch_tasks.size(); ++k) fetch(k);
  }

  // Consume: one task per shard (per tree in tree-shard mode).
  for (std::size_t s = 0; s < S; ++s) {
    EpochShardCtx& ctx = pe.ctx[s];
    ctx.index = s;
    ctx.ledger = CostLedger{};
    ctx.update_msgs = 0;
    ctx.to_root.clear();
    ctx.loss_offered = 0;
    ctx.loss_dropped = 0;
    if (pe.mac_mode) ctx.tree_delta.assign(trees_.count(), CostLedger{});
  }
  if (pe.tree_mode) {
    pe.pool.parallel_for(S, [this, epoch](std::size_t k) {
      run_tree_shard_consume(k, epoch);
    });
  } else {
    pe.pool.parallel_for(S, [this, &pe, epoch](std::size_t k) {
      run_shard_consume(pe.claim_order[k], epoch);
    });
  }

  // Merge, in shard-index order (deterministic): ledgers and counters are
  // sums, so totals equal the sequential pass; the update hook fires once
  // per transmission with the same epoch, so recorded series are
  // identical. Each shard's ledger also merges into its tree's mirror —
  // in tree-shard mode shard k carries exactly tree k's traffic (asserted
  // in parallel_unicast), in subtree mode everything belongs to tree 0,
  // and in chunk mode the shard carried its own per-tree tree_delta
  // mirror. Lossy-channel offered/dropped tallies merge in the same fixed
  // order. Per-node tx/rx deltas merge (and reset) likewise.
  CostLedger& ledger = transport_->mutable_costs();
  for (std::size_t s = 0; s < S; ++s) {
    EpochShardCtx& ctx = pe.ctx[s];
    accumulate(ledger, ctx.ledger);
    if (pe.mac_mode) {
      for (std::size_t t = 0; t < ctx.tree_delta.size(); ++t) {
        accumulate(tree_ledgers_[t], ctx.tree_delta[t]);
      }
    } else {
      accumulate(tree_ledgers_[pe.tree_mode ? s : 0], ctx.ledger);
    }
    if (loss_ != nullptr) {
      loss_->add_counts(ctx.loss_offered, ctx.loss_dropped);
    }
    updates_transmitted_ += ctx.update_msgs;
    if (update_hook_) {
      for (std::int64_t i = 0; i < ctx.update_msgs; ++i) update_hook_(epoch);
    }
    const std::size_t n = std::min(ctx.tx_delta.size(), node_tx_.size());
    for (std::size_t u = 0; u < n; ++u) {
      node_tx_[u] += ctx.tx_delta[u];
      node_rx_[u] += ctx.rx_delta[u];
      ctx.tx_delta[u] = 0;
      ctx.rx_delta[u] = 0;
    }
  }
  // Tree-shard and chunk modes: no deferred deliveries, no serial root
  // pass (each tree's cascade stayed inside its shard / the root sat
  // inside its chunk).
  if (pe.tree_mode || pe.mac_mode) return;
  merging_parallel_ = true;
  for (std::size_t s = 0; s < S; ++s) {
    for (const auto& [from, msg] : pe.ctx[s].to_root) {
      deliver(root_, from, msg);  // rx already charged by the shard
    }
  }
  merging_parallel_ = false;

  // The root itself, serially and last — as the reversed global walk does.
  if (trees_.tree(0).in_tree(root_)) {
    if (!topo_.is_alive(root_)) {
      throw std::logic_error(
          "DirqNetwork: aliveness changed without tree repair during a "
          "parallel run");
    }
    pe.root_plan_cur.resize(type_count);
    pe.root_val_cur.resize(type_count);
    for (std::size_t t = 0; t < type_count; ++t) {
      pe.root_plan_cur[t] = pe.plan_seg[t][S];
      pe.root_val_cur[t] = pe.offsets(t)[S];
    }
    const net::Node& info = topo_.node(root_);
    SamplingController& gate = samplers_[root_];
    if (!pe.gated) {
      for (SensorType t : info.sensors) {
        nodes_[root_].sample(t, pe.values[t][pe.root_val_cur[t]++], epoch);
        gate.count_sample();
      }
    } else {
      for (SensorType t : info.sensors) {
        const std::size_t j = pe.root_plan_cur[t]++;
        if (!pe.due_mask[t][j]) {
          gate.on_skip(t);
          continue;
        }
        const double reading = pe.values[t][pe.root_val_cur[t]++];
        nodes_[root_].sample(t, reading, epoch);
        gate.on_sample(t, reading, nodes_[root_].controller().theta(t), epoch);
        pe.next_due[t][j] = gate.next_due(t);
      }
    }
    nodes_[root_].end_epoch(epoch);
  }
}

std::int64_t DirqNetwork::internal_node_count() const {
  return static_cast<std::int64_t>(trees_.tree(0).internal_node_count());
}

double DirqNetwork::mean_theta_pct(SensorType type) const {
  double sum = 0.0;
  std::size_t n = 0;
  for (NodeId u : trees_.tree(0).bfs_order()) {
    if (u == root_ || !topo_.is_alive(u)) continue;
    sum += nodes_[u].controller().theta_pct(type);
    ++n;
  }
  return n > 0 ? sum / static_cast<double>(n) : 0.0;
}

double DirqNetwork::broadcast_ehr(TreeId tree,
                                  double expected_queries_per_hour,
                                  std::int64_t epoch) {
  current_epoch_ = epoch;
  const net::SpanningTree& tr = trees_.tree(tree);
  const auto nodes = static_cast<std::int64_t>(tr.size());
  if (nodes < 2) return 0.0;
  const auto links = static_cast<std::int64_t>(topo_.link_count());
  EhrMessage msg;
  msg.tree = tree;
  msg.expected_queries_per_hour = expected_queries_per_hour;
  msg.umax_per_hour = analysis::umax_messages_per_hour(
      nodes, links, static_cast<std::int64_t>(tr.internal_node_count()),
      expected_queries_per_hour);
  msg.alive_nodes = static_cast<std::uint32_t>(topo_.alive_count());
  msg.round = ++ehr_round_;
  // The gateway hands the estimate to the tree's root, which floods it.
  nodes_[trees_.root(tree)].handle(Message{msg}, kNoNode, epoch);
  return msg.umax_per_hour;
}

void DirqNetwork::begin_audit(QueryId id, TreeId tree, std::int64_t epoch) {
  if (audit_active_) {
    throw std::logic_error("DirqNetwork: previous query audit still open");
  }
  current_epoch_ = epoch;
  audit_active_ = true;
  audit_query_ = id;
  audit_tree_ = tree;
  audit_received_.clear();
  audit_believed_.clear();
  audit_cost_start_ = transport_->costs().query_cost();
}

void DirqNetwork::inject_async(TreeId tree, const query::RangeQuery& q,
                               std::int64_t epoch) {
  begin_audit(q.id, tree, epoch);
  // The gateway delivers the query to the sink's root (no radio cost: the
  // root is wired to the server, paper §3). The root then directs it
  // down its own tree.
  nodes_[trees_.root(tree)].handle(Message{QueryMessage{q, tree}}, kNoNode,
                                   epoch);
}

void DirqNetwork::inject_async(TreeId tree, const query::MultiQuery& q,
                               std::int64_t epoch) {
  begin_audit(q.id, tree, epoch);
  nodes_[trees_.root(tree)].handle(Message{MultiQueryMessage{q, tree}},
                                   kNoNode, epoch);
}

QueryOutcome DirqNetwork::collect_outcome() {
  if (!audit_active_) {
    throw std::logic_error("DirqNetwork: no query audit open");
  }
  QueryOutcome out;
  out.id = audit_query_;
  out.tree = audit_tree_;
  out.received = audit_received_;
  std::sort(out.received.begin(), out.received.end());
  out.received.erase(std::unique(out.received.begin(), out.received.end()),
                     out.received.end());
  out.believed_sources = audit_believed_;
  std::sort(out.believed_sources.begin(), out.believed_sources.end());
  out.believed_sources.erase(
      std::unique(out.believed_sources.begin(), out.believed_sources.end()),
      out.believed_sources.end());
  out.cost = transport_->costs().query_cost() - audit_cost_start_;
  audit_active_ = false;
  if (query_done_hook_) query_done_hook_(out);
  return out;
}

QueryOutcome DirqNetwork::inject(TreeId tree, const query::RangeQuery& q,
                                 std::int64_t epoch) {
  inject_async(tree, q, epoch);  // instant transport: completes synchronously
  return collect_outcome();
}

QueryOutcome DirqNetwork::inject(TreeId tree, const query::MultiQuery& q,
                                 std::int64_t epoch) {
  inject_async(tree, q, epoch);
  return collect_outcome();
}

void DirqNetwork::retarget_trees(NodeId changed, std::int64_t epoch) {
  const std::vector<TreeId> rebuilt = trees_.rebuild_affected(topo_, changed);
  if (par_ != nullptr) par_->plan_dirty = true;
  // Keep the lossy counter planes sized to the (possibly grown) topology
  // before the next parallel epoch.
  if (loss_ != nullptr) loss_->configure(trees_.count(), topo_.size());
  if (nodes_.size() < topo_.size()) {
    // Brand-new node slots appended by Topology::add_node.
    for (NodeId u = static_cast<NodeId>(nodes_.size()); u < topo_.size(); ++u) {
      const net::Node& info = topo_.node(u);
      nodes_.emplace_back(
          u, std::vector<SensorType>(info.sensors.begin(), info.sensors.end()),
          make_controller(cfg_));
      for (TreeId t = 1; t < trees_.count(); ++t) {
        nodes_.back().add_slot(make_controller(cfg_));
      }
      nodes_.back().set_position(info.x, info.y);
      wire_node(nodes_.back());
      samplers_.emplace_back(cfg_.sampling);
      for (std::vector<NodeId>& pp : prev_parent_) pp.push_back(kNoNode);
    }
    // resize, not push_back: deliver() may already have grown node_rx_ to
    // the topology size inside the add_node → retarget window.
    node_tx_.resize(nodes_.size(), 0);
    node_rx_.resize(nodes_.size(), 0);
  }
  // Revived nodes may have been redeployed at a new position, whichever
  // trees they end up in.
  for (NodeId u = 0; u < nodes_.size(); ++u) {
    if (topo_.is_alive(u)) {
      nodes_[u].set_position(topo_.node(u).x, topo_.node(u).y);
    }
  }

  for (TreeId t : rebuilt) {
    const net::SpanningTree& tr = trees_.tree(t);
    // Pass 1: install the new structure everywhere.
    std::vector<NodeId> new_parent(nodes_.size(), kNoNode);
    for (NodeId u = 0; u < nodes_.size(); ++u) {
      if (tr.in_tree(u)) {
        new_parent[u] = tr.parent(u);
        const auto ch = tr.children(u);
        nodes_[u].set_children(t, std::vector<NodeId>(ch.begin(), ch.end()));
        nodes_[u].set_parent(t, tr.parent(u));
      } else {
        nodes_[u].set_children(t, {});
        nodes_[u].set_parent(t, kNoNode);
      }
    }

    // Pass 2: reconcile tables. A node whose parent changed must (a) be
    // dropped from its old parent's tables and (b) announce its subtree
    // ranges to its new parent.
    for (NodeId u = 0; u < nodes_.size(); ++u) {
      if (new_parent[u] == prev_parent_[t][u]) continue;
      const NodeId old_p = prev_parent_[t][u];
      if (old_p != kNoNode && old_p < nodes_.size() && topo_.is_alive(old_p)) {
        nodes_[old_p].on_child_lost(t, u, epoch);
      }
      if (new_parent[u] != kNoNode && topo_.is_alive(u)) {
        nodes_[u].force_reannounce(t, epoch);
      }
    }
    prev_parent_[t] = std::move(new_parent);
  }
  rebuild_union_walk();
}

void DirqNetwork::handle_node_death(NodeId dead, std::int64_t epoch) {
  current_epoch_ = epoch;
  sim::log(sim::LogLevel::Info, "dirq", "node ", dead, " died; repairing tree");
  retarget_trees(dead, epoch);
}

void DirqNetwork::handle_node_addition(NodeId added, std::int64_t epoch) {
  current_epoch_ = epoch;
  sim::log(sim::LogLevel::Info, "dirq", "node ", added, " joined; repairing tree");
  retarget_trees(added, epoch);
}

void DirqNetwork::handle_sensor_added(NodeId id, SensorType type,
                                      std::int64_t epoch) {
  current_epoch_ = epoch;
  if (par_ != nullptr) par_->plan_dirty = true;
  nodes_.at(id).attach_sensor(type);
  // The new sensor announces itself with the node's next sample; nothing
  // to push yet (there is no reading).
}

void DirqNetwork::handle_sensor_removed(NodeId id, SensorType type,
                                        std::int64_t epoch) {
  current_epoch_ = epoch;
  if (par_ != nullptr) par_->plan_dirty = true;
  nodes_.at(id).detach_sensor(type, epoch);
}

std::int64_t DirqNetwork::samples_taken() const {
  std::int64_t total = 0;
  for (const SamplingController& s : samplers_) total += s.samples_taken();
  return total;
}

std::int64_t DirqNetwork::samples_skipped() const {
  std::int64_t total = 0;
  for (const SamplingController& s : samplers_) total += s.samples_skipped();
  return total;
}

}  // namespace dirq::core

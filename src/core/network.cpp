#include "core/network.hpp"

#include <algorithm>
#include <stdexcept>

#include "analysis/cost_model.hpp"
#include "sim/logging.hpp"

namespace dirq::core {

std::unique_ptr<ThetaController> make_controller(const NetworkConfig& cfg) {
  if (cfg.mode == NetworkConfig::ThetaMode::Fixed) {
    return std::make_unique<FixedTheta>(cfg.fixed_pct);
  }
  return std::make_unique<AtcController>(cfg.atc);
}

DirqNetwork::DirqNetwork(net::Topology& topo, NodeId root, NetworkConfig cfg)
    : topo_(topo), root_(root), cfg_(cfg), tree_(topo, root) {
  nodes_.reserve(topo.size());
  for (const net::Node& n : topo.nodes()) {
    nodes_.emplace_back(n.id,
                        std::vector<SensorType>(n.sensors.begin(), n.sensors.end()),
                        make_controller(cfg_));
    samplers_.emplace_back(cfg_.sampling);
  }
  node_tx_.assign(topo.size(), 0);
  node_rx_.assign(topo.size(), 0);
  instant_ = std::make_unique<InstantTransport>(topo_, *this);
  transport_ = instant_.get();
  prev_parent_.assign(topo.size(), kNoNode);
  for (NodeId u = 0; u < topo.size(); ++u) {
    nodes_[u].set_position(topo.node(u).x, topo.node(u).y);
    if (!tree_.in_tree(u)) continue;
    nodes_[u].set_parent(tree_.parent(u));
    const auto ch = tree_.children(u);
    nodes_[u].set_children(std::vector<NodeId>(ch.begin(), ch.end()));
    prev_parent_[u] = tree_.parent(u);
  }
  for (DirqNode& n : nodes_) wire_node(n);
  // Bootstrap the static location attribute: leaves-first announcement so
  // subtree bounding boxes aggregate toward the root in a single wave.
  const std::vector<NodeId>& order = tree_.bfs_order();
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    nodes_[*it].announce_location(0);
  }
}

void DirqNetwork::wire_node(DirqNode& n) {
  n.set_send([this](NodeId from, NodeId to, const Message& msg) {
    if (std::holds_alternative<UpdateMessage>(msg)) {
      ++updates_transmitted_;
      if (update_hook_) update_hook_(current_epoch_);
    }
    node_tx_.at(from) += 1;
    transport_->unicast(from, to, msg);
  });
  n.set_multicast([this](NodeId from, const std::vector<NodeId>& targets,
                         const Message& msg) {
    node_tx_.at(from) += 1;  // one transmission regardless of target count
    transport_->multicast(from, targets, msg);
  });
  n.set_broadcast([this](NodeId from, const Message& msg) {
    node_tx_.at(from) += 1;
    transport_->broadcast(from, msg);
  });
}

void DirqNetwork::deliver(NodeId to, NodeId from, const Message& msg) {
  if (to >= nodes_.size()) return;
  node_rx_[to] += 1;
  if (audit_active_) {
    if (const auto* qm = std::get_if<QueryMessage>(&msg);
        qm != nullptr && qm->q.id == audit_query_) {
      audit_received_.push_back(to);
      if (nodes_[to].believes_relevant(qm->q)) audit_believed_.push_back(to);
    } else if (const auto* mq = std::get_if<MultiQueryMessage>(&msg);
               mq != nullptr && mq->q.id == audit_query_) {
      audit_received_.push_back(to);
      if (nodes_[to].believes_relevant(mq->q)) audit_believed_.push_back(to);
    }
  }
  nodes_[to].handle(msg, from, current_epoch_);
}

void DirqNetwork::process_epoch(const data::ReadingSource& env,
                                std::int64_t epoch) {
  current_epoch_ = epoch;
  // Leaves-first (reverse BFS) ordering makes the within-epoch update
  // cascade settle in a single pass with the instant transport; any order
  // is correct since parents re-check on every child update. The order is
  // the tree's cached (alive-only) BFS order — no per-epoch allocation —
  // and each node's epoch work (sampling, theta checks, update
  // propagation, controller end-of-epoch step) is batched into this one
  // walk. The end-of-epoch step only mutates the node's own controller, so
  // running it per node inside the pass is equivalent to a separate
  // whole-network sweep.
  //
  // Readings cross the environment boundary in one batch per sensor type:
  // pass 1 gathers, per type and in walk order, the nodes that will
  // physically sample; one ReadingSource::readings call per type fills the
  // values; pass 2 re-runs the identical walk consuming them. Readings are
  // pure at a fixed epoch and the gate decision for (node, type) reads
  // only prior-epoch state, so both passes branch identically and the
  // per-node evaluation order (messages, goldens) is unchanged.
  const std::vector<NodeId>& order = tree_.bfs_order();
  if (batch_nodes_.size() < env.type_count()) {
    batch_nodes_.resize(env.type_count());
    batch_values_.resize(env.type_count());
    batch_cursor_.resize(env.type_count());
  }
  for (std::size_t t = 0; t < batch_nodes_.size(); ++t) {
    batch_nodes_[t].clear();
    batch_cursor_[t] = 0;
  }
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const NodeId u = *it;
    if (!topo_.is_alive(u)) continue;
    const net::Node& info = topo_.node(u);
    const SamplingController& gate = samplers_[u];
    // Node::sensors is sorted + deduplicated by every Topology entry
    // point (constructor, add_node, add_sensor), so a (node, type) pair
    // occurs at most once per walk — the gate decision re-evaluated in
    // pass 2 cannot have been perturbed by an earlier occurrence, and the
    // two passes always branch identically (asserted by
    // DirqNetworkBatch.DuplicateSensorListsAreDedupedByTopology).
    for (SensorType t : info.sensors) {
      if (!gate.enabled() || gate.should_sample(t, epoch)) {
        // Post-deployment sensor types can exceed the environment's type
        // count; keep them in the batch so the backend raises the same
        // out_of_range the per-node path always did.
        if (t >= batch_nodes_.size()) {
          batch_nodes_.resize(t + 1);
          batch_values_.resize(t + 1);
          batch_cursor_.resize(t + 1, 0);
        }
        batch_nodes_[t].push_back(u);
      }
    }
  }
  for (std::size_t t = 0; t < batch_nodes_.size(); ++t) {
    if (batch_nodes_[t].empty()) continue;
    batch_values_[t].resize(batch_nodes_[t].size());
    env.readings(static_cast<SensorType>(t), batch_nodes_[t],
                 batch_values_[t]);
  }
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const NodeId u = *it;
    if (!topo_.is_alive(u)) continue;
    const net::Node& info = topo_.node(u);
    SamplingController& gate = samplers_[u];
    if (!gate.enabled()) {
      // Suppression off (the paper's evaluated configuration): sample
      // every sensor, skip the predictor bookkeeping entirely.
      for (SensorType t : info.sensors) {
        nodes_[u].sample(t, batch_values_[t][batch_cursor_[t]++], epoch);
        gate.count_sample();
      }
    } else {
      for (SensorType t : info.sensors) {
        if (!gate.should_sample(t, epoch)) {
          gate.on_skip(t);  // predictor confident: save the ADC energy (§8)
          continue;
        }
        const double reading = batch_values_[t][batch_cursor_[t]++];
        nodes_[u].sample(t, reading, epoch);
        gate.on_sample(t, reading, nodes_[u].controller().theta(t), epoch);
      }
    }
    nodes_[u].end_epoch(epoch);
  }
}

std::int64_t DirqNetwork::internal_node_count() const {
  return static_cast<std::int64_t>(tree_.internal_node_count());
}

double DirqNetwork::mean_theta_pct(SensorType type) const {
  double sum = 0.0;
  std::size_t n = 0;
  for (NodeId u : tree_.bfs_order()) {
    if (u == root_ || !topo_.is_alive(u)) continue;
    sum += nodes_[u].controller().theta_pct(type);
    ++n;
  }
  return n > 0 ? sum / static_cast<double>(n) : 0.0;
}

void DirqNetwork::broadcast_ehr(double expected_queries_per_hour,
                                std::int64_t epoch) {
  current_epoch_ = epoch;
  const auto nodes = static_cast<std::int64_t>(tree_.size());
  if (nodes < 2) return;
  const auto links = static_cast<std::int64_t>(topo_.link_count());
  const double fmax =
      analysis::f_max_graph(nodes, links, internal_node_count());
  EhrMessage msg;
  msg.expected_queries_per_hour = expected_queries_per_hour;
  // Umax/Hr in update *messages* per hour (Fig. 6's unit): fMax is in
  // network-wide update waves per query; one wave is N-1 messages.
  msg.umax_per_hour = std::max(0.0, fmax) * expected_queries_per_hour *
                      static_cast<double>(nodes - 1);
  msg.alive_nodes = static_cast<std::uint32_t>(topo_.alive_count());
  msg.round = ++ehr_round_;
  // The gateway hands the estimate to the root node, which floods it.
  nodes_[root_].handle(Message{msg}, kNoNode, epoch);
}

void DirqNetwork::begin_audit(QueryId id, std::int64_t epoch) {
  if (audit_active_) {
    throw std::logic_error("DirqNetwork: previous query audit still open");
  }
  current_epoch_ = epoch;
  audit_active_ = true;
  audit_query_ = id;
  audit_received_.clear();
  audit_believed_.clear();
  audit_cost_start_ = transport_->costs().query_cost();
}

void DirqNetwork::inject_async(const query::RangeQuery& q, std::int64_t epoch) {
  begin_audit(q.id, epoch);
  // The gateway delivers the query to the root (no radio cost: the root is
  // wired to the server, paper §3). The root then directs it down-tree.
  nodes_[root_].handle(Message{QueryMessage{q}}, kNoNode, epoch);
}

void DirqNetwork::inject_async(const query::MultiQuery& q, std::int64_t epoch) {
  begin_audit(q.id, epoch);
  nodes_[root_].handle(Message{MultiQueryMessage{q}}, kNoNode, epoch);
}

QueryOutcome DirqNetwork::collect_outcome() {
  if (!audit_active_) {
    throw std::logic_error("DirqNetwork: no query audit open");
  }
  QueryOutcome out;
  out.id = audit_query_;
  out.received = audit_received_;
  std::sort(out.received.begin(), out.received.end());
  out.received.erase(std::unique(out.received.begin(), out.received.end()),
                     out.received.end());
  out.believed_sources = audit_believed_;
  std::sort(out.believed_sources.begin(), out.believed_sources.end());
  out.believed_sources.erase(
      std::unique(out.believed_sources.begin(), out.believed_sources.end()),
      out.believed_sources.end());
  out.cost = transport_->costs().query_cost() - audit_cost_start_;
  audit_active_ = false;
  return out;
}

QueryOutcome DirqNetwork::inject(const query::RangeQuery& q,
                                 std::int64_t epoch) {
  inject_async(q, epoch);  // instant transport: completes synchronously
  return collect_outcome();
}

QueryOutcome DirqNetwork::inject(const query::MultiQuery& q,
                                 std::int64_t epoch) {
  inject_async(q, epoch);
  return collect_outcome();
}

void DirqNetwork::retarget_tree(std::int64_t epoch) {
  tree_.rebuild(topo_);
  if (nodes_.size() < topo_.size()) {
    // Brand-new node slots appended by Topology::add_node.
    for (NodeId u = static_cast<NodeId>(nodes_.size()); u < topo_.size(); ++u) {
      const net::Node& info = topo_.node(u);
      nodes_.emplace_back(
          u, std::vector<SensorType>(info.sensors.begin(), info.sensors.end()),
          make_controller(cfg_));
      nodes_.back().set_position(info.x, info.y);
      wire_node(nodes_.back());
      samplers_.emplace_back(cfg_.sampling);
      node_tx_.push_back(0);
      node_rx_.push_back(0);
      prev_parent_.push_back(kNoNode);
    }
  }

  // Pass 1: install the new structure everywhere.
  std::vector<NodeId> new_parent(nodes_.size(), kNoNode);
  for (NodeId u = 0; u < nodes_.size(); ++u) {
    if (topo_.is_alive(u)) {
      // Revived nodes may have been redeployed at a new position.
      nodes_[u].set_position(topo_.node(u).x, topo_.node(u).y);
    }
    if (tree_.in_tree(u)) {
      new_parent[u] = tree_.parent(u);
      const auto ch = tree_.children(u);
      nodes_[u].set_children(std::vector<NodeId>(ch.begin(), ch.end()));
      nodes_[u].set_parent(tree_.parent(u));
    } else {
      nodes_[u].set_children({});
      nodes_[u].set_parent(kNoNode);
    }
  }

  // Pass 2: reconcile tables. A node whose parent changed must (a) be
  // dropped from its old parent's tables and (b) announce its subtree
  // ranges to its new parent.
  for (NodeId u = 0; u < nodes_.size(); ++u) {
    if (new_parent[u] == prev_parent_[u]) continue;
    const NodeId old_p = prev_parent_[u];
    if (old_p != kNoNode && old_p < nodes_.size() && topo_.is_alive(old_p)) {
      nodes_[old_p].on_child_lost(u, epoch);
    }
    if (new_parent[u] != kNoNode && topo_.is_alive(u)) {
      nodes_[u].force_reannounce(epoch);
    }
  }
  prev_parent_ = new_parent;
}

void DirqNetwork::handle_node_death(NodeId dead, std::int64_t epoch) {
  current_epoch_ = epoch;
  sim::log(sim::LogLevel::Info, "dirq", "node ", dead, " died; repairing tree");
  retarget_tree(epoch);
}

void DirqNetwork::handle_node_addition(NodeId added, std::int64_t epoch) {
  current_epoch_ = epoch;
  sim::log(sim::LogLevel::Info, "dirq", "node ", added, " joined; repairing tree");
  retarget_tree(epoch);
}

void DirqNetwork::handle_sensor_added(NodeId id, SensorType type,
                                      std::int64_t epoch) {
  current_epoch_ = epoch;
  nodes_.at(id).attach_sensor(type);
  // The new sensor announces itself with the node's next sample; nothing
  // to push yet (there is no reading).
}

void DirqNetwork::handle_sensor_removed(NodeId id, SensorType type,
                                        std::int64_t epoch) {
  current_epoch_ = epoch;
  nodes_.at(id).detach_sensor(type, epoch);
}

std::int64_t DirqNetwork::samples_taken() const {
  std::int64_t total = 0;
  for (const SamplingController& s : samplers_) total += s.samples_taken();
  return total;
}

std::int64_t DirqNetwork::samples_skipped() const {
  std::int64_t total = 0;
  for (const SamplingController& s : samplers_) total += s.samples_skipped();
  return total;
}

}  // namespace dirq::core

#include "core/srt.hpp"

#include <algorithm>
#include <deque>

namespace dirq::core {

SrtScheme::SrtScheme(const net::Topology& topo, const net::SpanningTree& tree)
    : topo_(&topo), tree_(&tree) {
  rebuild(topo, tree);
}

void SrtScheme::rebuild(const net::Topology& topo,
                        const net::SpanningTree& tree) {
  topo_ = &topo;
  tree_ = &tree;
  subtree_types_.assign(topo.size(), {});
  subtree_boxes_.assign(topo.size(), net::BBox::empty());

  // Leaves-first aggregation: each node folds its own statics and its
  // children's indexes, then announces upward (1 tx + 1 rx per non-root
  // node — the one-time SRT build the paper's ref [5] describes).
  const std::vector<NodeId> order = tree.bfs_order();
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const NodeId u = *it;
    const net::Node& info = topo.node(u);
    auto& types = subtree_types_[u];
    types.insert(info.sensors.begin(), info.sensors.end());
    net::BBox box = net::BBox::point(info.x, info.y);
    for (NodeId c : tree.children(u)) {
      types.insert(subtree_types_[c].begin(), subtree_types_[c].end());
      box = box.join(subtree_boxes_[c]);
    }
    subtree_boxes_[u] = box;
    if (u != tree.root()) build_cost_ += 2;  // announcement tx + rx
  }
}

SrtScheme::Outcome SrtScheme::disseminate(const query::RangeQuery& q) const {
  Outcome out;
  // BFS down the tree; each forwarding node pays one multicast tx, each
  // addressed child one rx (same accounting as DirQ's dissemination).
  std::deque<NodeId> frontier{tree_->root()};
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop_front();
    std::vector<NodeId> targets;
    for (NodeId c : tree_->children(u)) {
      if (!topo_->is_alive(c)) continue;
      if (!subtree_types_[c].contains(q.type)) continue;  // static prune
      if (q.region && !q.region->intersects(subtree_boxes_[c])) continue;
      targets.push_back(c);
    }
    if (targets.empty()) continue;
    out.cost += 1;  // one forwarding transmission
    for (NodeId c : targets) {
      out.cost += 1;  // reception
      out.received.push_back(c);
      frontier.push_back(c);
    }
  }
  std::sort(out.received.begin(), out.received.end());
  return out;
}

}  // namespace dirq::core

// Branch-light sweep over the struct-of-arrays sampling-gate mirror.
//
// The parallel epoch engine keeps, per sensor type, a dense array of
// `SamplingController::next_due` epochs aligned with the type's plan-order
// node list. Every epoch the engine must turn that array into the list of
// due nodes (the reading batch). Doing it with one data-dependent branch
// per slot defeats vectorization, so the sweep is split into two passes:
//
//   1. gate_scan_mask — a pure arithmetic loop (sign bit of due-epoch-1)
//      producing a 0/1 byte mask. No branches, no stores that depend on
//      the data: gcc auto-vectorizes it at -O3 on baseline x86-64
//      (verified with -fopt-info-vec, see bench/micro_kernel.cpp
//      BM_GateScan).
//   2. gate_compact — an unconditional-store compaction (`out[m] = n[j];
//      m += mask[j]`) that stays branch-free in the loop body.
//
// gate_filter_ref is the obvious scalar branchy loop, kept as the test
// oracle (tests/core/gate_scan_test.cpp asserts equivalence on randomized
// due vectors).
#pragma once

#include <cstddef>
#include <cstdint>

#include "sim/types.hpp"

namespace dirq::core {

/// Writes mask[j] = 1 iff due[j] <= epoch for j in [0, n). The mask is a
/// plain byte array so it can be consumed both by the compaction below and
/// by shards that walk the full plan order (tree-sharded engine).
///
/// The body is the sign bit of (due - epoch - 1) rather than the obvious
/// `due[j] <= epoch`: baseline x86-64 (SSE2) has no packed 64-bit compare,
/// so gcc only vectorizes the comparison form under -msse4.2+, while
/// subtract + logical shift are packed ops on every target and vectorize
/// at -O3 everywhere (16-byte vectors on the default target; confirmed
/// via -fopt-info-vec, see BM_GateScan). The wrap-around subtraction is
/// exact whenever |due - epoch| < 2^63, which holds for any pair of
/// simulation epochs.
inline void gate_scan_mask(const std::int64_t* due, std::size_t n,
                           std::int64_t epoch, std::uint8_t* mask) noexcept {
  const std::uint64_t bound = static_cast<std::uint64_t>(epoch) + 1;
  for (std::size_t j = 0; j < n; ++j) {
    mask[j] = static_cast<std::uint8_t>(
        (static_cast<std::uint64_t>(due[j]) - bound) >> 63);
  }
}

/// Compacts nodes[j] for every set mask bit in [begin, end) into `out`
/// (which must have room for end - begin entries); returns the count
/// written. The store is unconditional and the cursor advances by the mask
/// byte, so the loop body has no data-dependent branch.
inline std::size_t gate_compact(const NodeId* nodes, const std::uint8_t* mask,
                                std::size_t begin, std::size_t end,
                                NodeId* out) noexcept {
  std::size_t m = 0;
  for (std::size_t j = begin; j < end; ++j) {
    out[m] = nodes[j];
    m += mask[j];
  }
  return m;
}

/// Scalar reference: the branchy filter the two passes above replace.
/// Kept as the oracle for tests and the baseline for BM_GateScan.
inline std::size_t gate_filter_ref(const std::int64_t* due,
                                   const NodeId* nodes, std::size_t begin,
                                   std::size_t end, std::int64_t epoch,
                                   NodeId* out) noexcept {
  std::size_t m = 0;
  for (std::size_t j = begin; j < end; ++j) {
    if (due[j] <= epoch) out[m++] = nodes[j];
  }
  return m;
}

}  // namespace dirq::core

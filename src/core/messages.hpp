// DirQ protocol messages.
//
// Three message kinds cross the tree (paper §4):
//   UpdateMessage — child -> parent; new aggregate (min(THmin), max(THmax))
//                   for one sensor type, or a retraction when the subtree
//                   no longer carries the type (§4.2).
//   QueryMessage  — parent -> child; a range query being directed down the
//                   tree toward relevant nodes.
//   EhrMessage    — root -> everyone, hourly; the expected query count for
//                   the next hour plus the derived network-wide update
//                   budget Umax/Hr that parameterises ATC (§6, Fig. 6).
//
// Every message carries the TreeId of the spanning tree it belongs to:
// the multi-sink query plane runs N trees over one topology, and a node's
// per-tree protocol slots dispatch on this tag. Single-sink deployments
// leave it at the default 0, so the wire format (and every golden) is
// unchanged for the paper's configuration.
#pragma once

#include <variant>

#include "query/query.hpp"
#include "sim/types.hpp"

namespace dirq::core {

struct UpdateMessage {
  NodeId from = kNoNode;
  TreeId tree = 0;
  SensorType type = 0;
  double min = 0.0;
  double max = 0.0;
  /// False = retraction: the sender's subtree no longer has this type.
  bool has_range = true;
};

struct QueryMessage {
  query::RangeQuery q;
  TreeId tree = 0;
};

/// Conjunctive multi-attribute query in flight (paper §2 capability).
struct MultiQueryMessage {
  query::MultiQuery q;
  TreeId tree = 0;
};

/// Static-attribute announcement: the sender's subtree bounding box
/// (paper §2's optional location attribute). Sent once at bootstrap and on
/// churn; parents fold child boxes into their own subtree box.
struct LocationAnnounce {
  NodeId from = kNoNode;
  TreeId tree = 0;
  net::BBox box;
};

struct EhrMessage {
  TreeId tree = 0;
  double expected_queries_per_hour = 0.0;  // EHr
  double umax_per_hour = 0.0;              // fMax(k,d) * EHr (DESIGN.md §1.7)
  std::uint32_t alive_nodes = 0;           // for fair per-node budget shares
  std::int64_t round = 0;                  // flood round (duplicate suppression)
};

using Message = std::variant<UpdateMessage, QueryMessage, MultiQueryMessage,
                             EhrMessage, LocationAnnounce>;

/// The spanning tree a message belongs to (the per-sink cost ledgers and
/// the per-tree slot dispatch both key on this).
inline TreeId message_tree(const Message& msg) noexcept {
  return std::visit([](const auto& m) { return m.tree; }, msg);
}

}  // namespace dirq::core

#include "core/admission.hpp"

namespace dirq::core {

double QueryAdmission::mean_depth(TreeId tree) const {
  const net::SpanningTree& tr = trees_->tree(tree);
  if (tr.size() == 0) return 0.0;
  std::int64_t sum = 0;
  for (NodeId u : tr.bfs_order()) sum += tr.depth(u);
  return static_cast<double>(sum) / static_cast<double>(tr.size());
}

double QueryAdmission::marginal(TreeId tree) const {
  // Best available estimate of "what one more query costs here", in order
  // of preference: this sink's own audited average, the global audited
  // average (before this sink has served a query), the hop-depth prior
  // (before any query has been audited anywhere).
  if (noted_count_[tree] > 0) {
    return static_cast<double>(noted_cost_[tree]) /
           static_cast<double>(noted_count_[tree]);
  }
  CostUnits total = 0;
  std::int64_t count = 0;
  for (std::size_t k = 0; k < noted_cost_.size(); ++k) {
    total += noted_cost_[k];
    count += noted_count_[k];
  }
  if (count > 0) return static_cast<double>(total) / static_cast<double>(count);
  return 1.0 + mean_depth(tree);
}

TreeId QueryAdmission::route() {
  const std::size_t n = trees_->count();
  if (policy_ == RoutingPolicy::RoundRobin) {
    return static_cast<TreeId>(injected_++ % n);
  }
  TreeId best = 0;
  double best_score = 0.0;
  for (TreeId t = 0; t < n; ++t) {
    const double score = static_cast<double>(load_[t]) + marginal(t);
    if (t == 0 || score < best_score) {  // strict <: ties -> lowest TreeId
      best = t;
      best_score = score;
    }
  }
  ++injected_;
  return best;
}

}  // namespace dirq::core

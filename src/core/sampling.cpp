#include "core/sampling.hpp"

#include <algorithm>
#include <cmath>

namespace dirq::core {

bool SamplingController::should_sample(SensorType type,
                                       std::int64_t epoch) const {
  if (!cfg_.enabled) return true;
  auto it = types_.find(type);
  if (it == types_.end()) return true;  // never sampled this type
  return epoch >= it->second.next_due;
}

double SamplingController::predict(SensorType type, std::int64_t epoch) const {
  auto it = types_.find(type);
  if (it == types_.end() || !it->second.has_level) return 0.0;
  const TypeState& st = it->second;
  const double gap = static_cast<double>(epoch - st.last_epoch);
  return st.level + st.trend * gap;
}

void SamplingController::on_sample(SensorType type, double value, double theta,
                                   std::int64_t epoch) {
  ++taken_;
  TypeState& st = types_[type];
  if (!st.has_level) {
    st.level = value;
    st.has_level = true;
    st.last_epoch = epoch;
    st.next_due = epoch + 1;  // need a second sample to estimate the trend
    return;
  }
  const auto gap = static_cast<double>(std::max<std::int64_t>(
      1, epoch - st.last_epoch));
  const double predicted = st.level + st.trend * gap;
  const double slope = (value - st.level) / gap;
  if (st.has_trend) {
    st.trend = cfg_.trend_beta * slope + (1.0 - cfg_.trend_beta) * st.trend;
  } else {
    st.trend = slope;
    st.has_trend = true;
  }
  st.level = value;
  st.last_epoch = epoch;

  const double margin = cfg_.margin_frac * theta;
  if (std::abs(value - predicted) <= margin) {
    st.interval = std::min(st.interval * 2, cfg_.max_interval);
  } else {
    st.interval = 1;  // surprised: back to every-epoch sampling
  }
  st.next_due = epoch + st.interval;
}

void SamplingController::on_skip(SensorType /*type*/) { ++skipped_; }

int SamplingController::interval(SensorType type) const {
  auto it = types_.find(type);
  return it == types_.end() ? 1 : it->second.interval;
}

std::int64_t SamplingController::next_due(SensorType type) const {
  auto it = types_.find(type);
  return it == types_.end() ? 0 : it->second.next_due;
}

}  // namespace dirq::core

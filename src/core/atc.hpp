// Threshold control: fixed thresholds (paper §7.1) and the Adaptive
// Threshold Control mechanism (paper §6).
//
// The paper expresses thresholds as percentages (theta = 3%, 5%, 9%); we
// interpret the percentage against each sensor type's nominal value span
// (the realistic dynamic range of the physical quantity), giving an
// absolute threshold in sensor units:
//
//     theta_abs(type) = theta_pct / 100 * nominal_span(type)
//
// ATC itself is reconstructed from the paper's constraints — the detailed
// mechanism lives in the unavailable ref [13]; see DESIGN.md §1.7 for the
// full rationale. In short:
//
//   * the root derives Umax/Hr = fMax(k, d) * EHr and broadcasts it with
//     the hourly EHr estimate;
//   * each node takes the fair share Umax/Hr / N as its local update-rate
//     budget and steers its transmission rate into the paper's
//     [0.45, 0.55] * budget band by multiplicative theta adjustment;
//   * adjustment steps scale with the locally observed rate of variation
//     of the measured parameter (EWMA of |reading delta|), so a volatile
//     sensor converges in a few steps instead of drifting for hours.
#pragma once

#include <cstdint>
#include <deque>
#include <map>

#include "core/messages.hpp"
#include "sim/stats.hpp"
#include "sim/types.hpp"

namespace dirq::core {

/// Nominal dynamic range of each sensor type in sensor units; the base the
/// paper's theta percentages are applied to. Matches the default field
/// parameters in src/data (diurnal swing + front amplitude + noise).
/// Constexpr-inline: theta(type) sits on the per-sample hot path.
constexpr double nominal_span(SensorType type) noexcept {
  switch (type) {
    case kSensorTemperature: return 22.0;   // ~11 C to ~33 C
    case kSensorHumidity: return 45.0;      // ~35 % to ~80 %
    case kSensorLight: return 1100.0;       // ~0 to ~1100 lux
    case kSensorSoilMoisture: return 25.0;  // ~22 % to ~47 %
    default: return 30.0;
  }
}

/// Strategy interface consulted by DirqNode for the current threshold.
class ThetaController {
 public:
  virtual ~ThetaController() = default;

  /// Absolute threshold for this sensor type, in sensor units.
  [[nodiscard]] virtual double theta(SensorType type) const = 0;

  /// Threshold as a percentage of the type's nominal span (for reporting).
  [[nodiscard]] double theta_pct(SensorType type) const {
    return theta(type) / nominal_span(type) * 100.0;
  }

  // Feedback hooks (no-ops for fixed thresholds).
  virtual void on_reading(SensorType /*type*/, double /*reading*/) {}
  virtual void on_update_sent(SensorType /*type*/, std::int64_t /*epoch*/) {}
  virtual void on_ehr(const EhrMessage& /*msg*/, std::int64_t /*epoch*/) {}
  virtual void on_epoch(std::int64_t /*epoch*/) {}
};

/// Fixed threshold: theta_pct percent of each type's nominal span.
class FixedTheta final : public ThetaController {
 public:
  explicit FixedTheta(double theta_pct) : pct_(theta_pct) {}
  [[nodiscard]] double theta(SensorType type) const override {
    return pct_ / 100.0 * nominal_span(type);
  }

 private:
  double pct_;
};

/// Control law for the theta adjustment step (ablation A1, DESIGN.md §4).
enum class AtcLaw {
  Multiplicative,  // theta *= (1 +- gain): scale-free, the default
  Additive,        // theta += +- step_pct of span: fixed-size steps
};

struct AtcConfig {
  AtcLaw law = AtcLaw::Multiplicative;
  double additive_step_pct = 0.4;  // step size (in span %) for Additive
  double initial_pct = 5.0;  // starting theta before the first EHr arrives
  double min_pct = 0.5;      // accuracy floor
  /// Update-suppression ceiling. Also bounds the worst-case staleness of
  /// any announced range (theta per hop), i.e. the coverage guarantee.
  double max_pct = 12.0;
  /// Sliding window (epochs) over which the node estimates its own
  /// update-transmission rate. One paper "hour" is 3600 epochs; a shorter
  /// window reacts faster at the price of estimation noise.
  std::int64_t rate_window_epochs = 600;
  /// Control step applied every `adjust_period` epochs.
  std::int64_t adjust_period = 50;
  double gain_up = 0.10;    // multiplicative widen step when over budget
  double gain_down = 0.05;  // multiplicative narrow step when under budget
  /// Band targeted around the fair-share budget; the paper pins the
  /// network-wide cost between 0.45 and 0.55 of flooding (abstract, §6).
  double band_lo = 0.45;
  double band_hi = 0.55;
  /// EWMA smoothing for the local rate-of-variation estimate.
  double variability_alpha = 0.05;
};

/// Per-node ATC state machine (one instance per node; tracks all types).
class AtcController final : public ThetaController {
 public:
  explicit AtcController(AtcConfig cfg);

  [[nodiscard]] double theta(SensorType type) const override;

  void on_reading(SensorType type, double reading) override;
  void on_update_sent(SensorType type, std::int64_t epoch) override;
  void on_ehr(const EhrMessage& msg, std::int64_t epoch) override;
  void on_epoch(std::int64_t epoch) override;

  /// Node's current updates/hour budget share (0 before the first EHr).
  [[nodiscard]] double budget_per_hour() const noexcept { return budget_per_hour_; }

  /// Estimated own update transmissions per hour over the sliding window.
  [[nodiscard]] double estimated_rate_per_hour(std::int64_t epoch) const;

  [[nodiscard]] const AtcConfig& config() const noexcept { return cfg_; }

 private:
  struct TypeState {
    double theta_scale = 1.0;  // multiplier on the initial theta
    sim::Ewma variability;     // EWMA of |reading - prev reading|
    double prev_reading = 0.0;
    bool has_prev = false;
    std::deque<std::int64_t> sent_epochs;  // this type's txs in the window
    TypeState() : variability(0.0) {}
    explicit TypeState(double alpha) : variability(alpha) {}
  };

  TypeState& state(SensorType type);
  void adjust(std::int64_t epoch);

  AtcConfig cfg_;
  std::map<SensorType, TypeState> types_;
  std::deque<std::int64_t> sent_epochs_;  // all update txs inside the window
  double budget_per_hour_ = 0.0;
  std::int64_t last_adjust_epoch_ = 0;
};

}  // namespace dirq::core

// Transport abstraction under the DirQ protocol logic.
//
// DirQ's node logic is transport-agnostic: it emits unicasts (to its tree
// parent or children) and link-layer broadcasts (the hourly EHr estimate),
// and consumes delivered messages. Two implementations exist:
//
//   InstantTransport — synchronous delivery on the topology graph with
//     unit-cost accounting (1 tx + 1 rx per unicast, 1 tx + deg rx per
//     broadcast, paper §5). This is the fast path used by the 20 000-epoch
//     figure sweeps; it preserves the paper's cost model exactly while
//     skipping MAC latency.
//
//   LmacTransport (lmac_transport.hpp) — rides the src/mac LMAC instance
//     over the event scheduler: slot-synchronous delivery, real timeout-
//     based neighbour-death detection. Used by integration tests and the
//     topology-churn example.
#pragma once

#include <span>

#include "core/messages.hpp"
#include "net/topology.hpp"
#include "sim/types.hpp"

namespace dirq::core {

/// Receives messages from a transport. Implemented by DirqNetwork.
class MessageSink {
 public:
  virtual ~MessageSink() = default;
  virtual void deliver(NodeId to, NodeId from, const Message& msg) = 0;
};

/// Per-kind energy ledger (1 unit per transmit, 1 per receive; paper §5).
struct CostLedger {
  CostUnits query_tx = 0, query_rx = 0;
  CostUnits update_tx = 0, update_rx = 0;
  CostUnits control_tx = 0, control_rx = 0;  // EHr dissemination

  [[nodiscard]] CostUnits query_cost() const noexcept { return query_tx + query_rx; }
  [[nodiscard]] CostUnits update_cost() const noexcept { return update_tx + update_rx; }
  [[nodiscard]] CostUnits control_cost() const noexcept { return control_tx + control_rx; }
  [[nodiscard]] CostUnits total() const noexcept {
    return query_cost() + update_cost() + control_cost();
  }
};

class Transport {
 public:
  virtual ~Transport() = default;

  /// Sends to a one-hop neighbour. Sending to a dead/out-of-range node
  /// costs the transmission and delivers nothing.
  virtual void unicast(NodeId from, NodeId to, const Message& msg) = 0;

  /// One transmission addressed to a subset of neighbours; each addressed
  /// alive neighbour receives (1 tx + |delivered| rx). This matches the
  /// paper's Eq. (6) accounting, where a forwarding node pays a single
  /// transmission no matter how many children it targets.
  virtual void multicast(NodeId from, std::span<const NodeId> targets,
                         const Message& msg) = 0;

  /// Link-layer broadcast to all alive one-hop neighbours.
  virtual void broadcast(NodeId from, const Message& msg) = 0;

  [[nodiscard]] virtual const CostLedger& costs() const = 0;

  /// Writable ledger access. The parallel epoch engine merges its
  /// shard-local ledgers into this, and drivers swapping transports
  /// mid-run use it to carry accumulated costs over.
  [[nodiscard]] virtual CostLedger& mutable_costs() noexcept = 0;

  /// True when sends enqueue for later delivery instead of delivering
  /// synchronously (LMAC: frames ride the slot schedule). The epoch
  /// engine keys its shard geometry on this — deferred transports see no
  /// deliveries during the epoch walk, so whole nodes can be processed
  /// in parallel chunks with delivery order untouched.
  [[nodiscard]] virtual bool deferred_delivery() const noexcept {
    return false;
  }

  /// Enqueues a unicast without charging the shared ledger — the
  /// parallel engine charges its shard-local ledger instead and merges
  /// deterministically. Only meaningful on deferred-delivery transports;
  /// the default throws.
  virtual void unicast_uncharged(NodeId from, NodeId to, const Message& msg);
};

/// Synchronous unit-cost transport over the topology graph.
class InstantTransport final : public Transport {
 public:
  InstantTransport(const net::Topology& topo, MessageSink& sink)
      : topo_(topo), sink_(sink) {}

  void unicast(NodeId from, NodeId to, const Message& msg) override;
  void multicast(NodeId from, std::span<const NodeId> targets,
                 const Message& msg) override;
  void broadcast(NodeId from, const Message& msg) override;

  [[nodiscard]] const CostLedger& costs() const override { return ledger_; }
  [[nodiscard]] CostLedger& mutable_costs() noexcept override {
    return ledger_;
  }

  /// Message-kind classification of one charge (query / update / control),
  /// shared with the parallel epoch engine's shard-local ledgers so the
  /// kind split can never drift from the transport's.
  static void charge_tx(CostLedger& ledger, const Message& msg,
                        CostUnits n = 1);
  static void charge_rx(CostLedger& ledger, const Message& msg,
                        CostUnits n = 1);

 private:
  const net::Topology& topo_;
  MessageSink& sink_;
  CostLedger ledger_;
};

}  // namespace dirq::core

#include "core/lmac_transport.hpp"

#include <algorithm>

namespace dirq::core {

LmacTransport::LmacTransport(mac::LmacNetwork& mac, MessageSink& sink)
    : mac_(mac), sink_(sink) {
  mac_.set_observer(this);
}

void LmacTransport::charge_tx(const Message& msg) {
  if (std::holds_alternative<QueryMessage>(msg) ||
      std::holds_alternative<MultiQueryMessage>(msg)) {
    ledger_.query_tx += 1;
  } else if (std::holds_alternative<UpdateMessage>(msg)) {
    ledger_.update_tx += 1;
  } else {
    ledger_.control_tx += 1;
  }
}

void LmacTransport::charge_rx(const Message& msg) {
  if (std::holds_alternative<QueryMessage>(msg) ||
      std::holds_alternative<MultiQueryMessage>(msg)) {
    ledger_.query_rx += 1;
  } else if (std::holds_alternative<UpdateMessage>(msg)) {
    ledger_.update_rx += 1;
  } else {
    ledger_.control_rx += 1;
  }
}

void LmacTransport::unicast(NodeId from, NodeId to, const Message& msg) {
  charge_tx(msg);
  mac_.send(from, to, msg);
}

void LmacTransport::unicast_uncharged(NodeId from, NodeId to,
                                      const Message& msg) {
  mac_.send(from, to, msg);
}

void LmacTransport::multicast(NodeId from, std::span<const NodeId> targets,
                              const Message& msg) {
  if (targets.empty()) return;
  charge_tx(msg);
  // One transmission; the target set rides in the payload (as in LMAC's
  // data section addressing). Delivered via link broadcast; non-addressed
  // hearers discard without charging reception (they sleep through the
  // data section). Callers pass targets in arbitrary (tree) order;
  // on_message looks them up with binary_search, so sort here.
  Addressed a{std::vector<NodeId>(targets.begin(), targets.end()), msg};
  std::sort(a.targets.begin(), a.targets.end());
  mac_.broadcast(from, std::move(a));
}

void LmacTransport::broadcast(NodeId from, const Message& msg) {
  charge_tx(msg);
  mac_.broadcast(from, msg);
}

void LmacTransport::on_message(NodeId self, const mac::Frame& frame) {
  if (const auto* addressed = std::any_cast<Addressed>(&frame.payload)) {
    if (!std::binary_search(addressed->targets.begin(),
                            addressed->targets.end(), self)) {
      return;  // data section not addressed to us
    }
    charge_rx(addressed->msg);
    sink_.deliver(self, frame.src, addressed->msg);
    return;
  }
  if (const auto* msg = std::any_cast<Message>(&frame.payload)) {
    charge_rx(*msg);
    sink_.deliver(self, frame.src, *msg);
  }
}

void LmacTransport::on_neighbor_lost(NodeId self, NodeId neighbor) {
  if (on_lost_) on_lost_(self, neighbor);
}

void LmacTransport::on_neighbor_found(NodeId self, NodeId neighbor) {
  if (on_found_) on_found_(self, neighbor);
}

}  // namespace dirq::core

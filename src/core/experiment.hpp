// The experiment driver: reproduces the paper's §7 simulation setup
// end-to-end.
//
//   "The results are based on a network topology of 50 nodes which
//    includes one root where k=8 and d=10. ... A synthetic dataset with
//    4 sensor types has been generated ... Each sensor acquires a reading
//    every time unit for a period of 20,000 time units. ... Random queries
//    which covered 20%, 40% and 60% of the nodes were generated every 20
//    epochs."
//
// One Experiment = one (theta-mode, relevant-fraction, seed) cell of the
// evaluation grid; the bench binaries run grids of them.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "core/admission.hpp"
#include "core/flooding.hpp"
#include "core/network.hpp"
#include "data/reading_source.hpp"
#include "mac/lmac.hpp"
#include "metrics/audit.hpp"
#include "metrics/histogram.hpp"
#include "net/placement.hpp"
#include "sim/stats.hpp"
#include "sim/types.hpp"

namespace dirq::core {

/// Which transport carries the protocol traffic.
///   Instant — synchronous unit-cost delivery on the topology graph (the
///     paper's cost model without MAC latency; fast figure sweeps).
///   Lmac — the reimplemented TDMA MAC (paper ref [2]): messages ride
///     slot-synchronously in data sections, one sensing epoch per LMAC
///     frame, and neighbour death surfaces through the MAC's control
///     timeout (the §4.2 cross-layer path).
enum class TransportKind { Instant, Lmac };

struct ExperimentConfig {
  std::uint64_t seed = 42;
  net::RandomPlacementConfig placement{};  // defaults to the paper's 50 nodes
  std::int64_t epochs = 20000;             // paper §7
  std::int64_t query_period = 20;          // paper §7
  double relevant_fraction = 0.4;          // 0.2 / 0.4 / 0.6 in the paper
  /// Multi-sink query plane. `sinks` names the sink roots explicitly;
  /// when empty, `sink_count` roots are chosen by net::spread_roots
  /// (node 0 — the paper's root — first, then greedy farthest-point).
  /// The defaults reproduce the paper's single-sink deployment exactly.
  std::vector<NodeId> sinks{};
  std::size_t sink_count = 1;
  /// How the gateway assigns each query to a sink when several exist
  /// (see core/admission.hpp). Irrelevant with one sink.
  RoutingPolicy routing = RoutingPolicy::Admission;
  /// Fraction of injected queries drawn as conjunctive multi-attribute
  /// queries over `multi_attr_count` sensor types (paper §2: "DirQ can
  /// use multiple attributes"). 0 (the default, every golden) keeps the
  /// paper's pure range-query stream and consumes no extra RNG.
  double multi_attr_fraction = 0.0;
  std::size_t multi_attr_count = 2;
  /// Channel drop probability in [0, 1). 0 keeps the paper's lossless
  /// setup; > 0 routes every operational delivery through a LossySink
  /// (CRC-failed receptions: tx and rx energy are still spent, the frame
  /// is lost). The constructor's one-off deployment bootstrap (location
  /// announce wave) always runs lossless; its cost stays in the ledger.
  double loss_rate = 0.0;
  NetworkConfig network{};
  std::int64_t epochs_per_hour = kEpochsPerHour;
  std::int64_t series_bin = 100;  // Fig. 6's "every 100 epochs"
  /// Bursty/diurnal query arrivals (ROADMAP "new workloads"): when
  /// burst_length_epochs > 0, queries are injected only while the cycle
  /// phase epoch % (burst_length_epochs + burst_gap_epochs) falls inside
  /// the burst; the gap is silent. Injection stays on the query_period
  /// lattice within a burst, so the rate predictor sees strongly
  /// non-smooth hourly counts instead of the paper's constant stream.
  /// burst_length_epochs == 0 (default) keeps the smooth arrivals.
  std::int64_t burst_length_epochs = 0;
  std::int64_t burst_gap_epochs = 0;
  /// Which synthetic-environment backend supplies readings (see
  /// data/fast_field.hpp). Pinned is the default and the only backend any
  /// golden is recorded against; Fast reproduces the same correlation
  /// structure with counter-based noise whose per-epoch cost is
  /// independent of history — the backend for large-topology runs.
  data::EnvironmentBackend field_backend = data::EnvironmentBackend::Pinned;
  /// Keep the full per-query record list (1 000 entries for the default
  /// run); benches that only need aggregates can switch it off.
  bool keep_records = true;
  /// Intra-run worker count for the epoch loop (DirqNetwork::set_threads):
  /// 1 (default) is the exact sequential path — the only golden
  /// configuration; 0 means all hardware threads. Single-sink instant
  /// runs shard by root-child subtree, multi-sink instant runs by
  /// spanning tree, LMAC runs chunk the epoch walk around the (still
  /// sequential) slot loop, and lossy channels evaluate their
  /// counter-keyed drop verdicts inside the shards; every combination is
  /// byte-identical to 1 thread — see Experiment::effective_threads.
  unsigned threads = 1;
  TransportKind transport = TransportKind::Instant;
  /// Frame geometry when transport == Lmac. The default (32 slots x 32
  /// ticks = 1024 ticks) makes one LMAC frame exactly one sensing epoch
  /// (kTicksPerEpoch); the driver advances the scheduler one frame per
  /// epoch regardless of the geometry chosen here.
  mac::LmacConfig lmac{};

  /// Sinks this config deploys: the explicit list's size when one is
  /// given, `sink_count` otherwise.
  [[nodiscard]] std::size_t resolved_sink_count() const noexcept {
    return sinks.empty() ? sink_count : sinks.size();
  }

  /// Validates every field the driver divides or modulos by (and the
  /// probability/fraction knobs), including the sink plane: duplicate
  /// sink ids, ids outside the placement, and a zero sink count all throw
  /// with a message naming the problem. (Initial placements are fully
  /// alive, so "dead root" cannot arise here; net::TreeSet re-checks
  /// aliveness at construction for callers that mutate first.) Called by
  /// Experiment::run; throws std::invalid_argument naming the offending
  /// field.
  void validate() const;
};

/// One injected query's bookkeeping.
struct QueryRecord {
  std::int64_t epoch = 0;
  SensorType type = 0;
  metrics::QueryAudit audit;         // delivery audit (received vs involved)
  metrics::QueryAudit source_audit;  // answer audit (believed vs true sources)
  CostUnits dirq_query_cost = 0;
  CostUnits flooding_cost = 0;  // Eq. (3) for the same instant's topology
  std::size_t sources = 0;      // ground-truth source count
  std::size_t population = 0;   // non-root tree members at injection time
  /// Injection -> answer delay in virtual epochs. 0 on the instant
  /// transport (the audit closes synchronously); on LMAC the query
  /// disseminates until the next injection boundary, so the deferral
  /// window — a full query_period — counts toward its latency.
  std::int64_t latency_epochs = 0;
};

struct ExperimentResults {
  // Fig. 6: update messages per `series_bin` epochs.
  sim::TimeSeries updates_per_bin{100};
  // Per-query aggregates (percentages are of the non-root population).
  sim::RunningStat overshoot_pct;   // delivery overshoot: wrong / should
  sim::RunningStat should_pct;      // "nodes that SHOULD receive"
  sim::RunningStat receive_pct;     // "nodes that RECEIVE"
  sim::RunningStat source_pct;      // "source nodes"
  sim::RunningStat wrong_pct;       // "nodes that SHOULD NOT receive" yet did
  sim::RunningStat coverage_pct;    // fraction of should-set reached
  // Answer-level accuracy: nodes that believe they satisfy the query
  // (false positives come from the theta-widened own tuples) vs the
  // ground-truth sources. This is the Fig. 7 metric; see EXPERIMENTS.md
  // "overshoot definition".
  sim::RunningStat source_overshoot_pct;  // wrongly answering / true sources
  sim::RunningStat source_coverage_pct;   // true sources that answer
  // Energy.
  CostLedger ledger;                // DirQ: query + update + control units
  CostUnits flooding_total = 0;     // same query stream, flooded
  /// The MAC's standing cost on the Lmac transport: LMAC control-section
  /// traffic (slot schedules, liveness beacons) summed over all nodes.
  /// Present for flooding and DirQ alike — the denominator context for
  /// bench_lmac_overhead's "protocol cost vs MAC keep-alive cost" figure.
  /// Always 0 on the Instant transport (no MAC is simulated). Covers the
  /// run's epochs only — the post-run drain window is attributed to
  /// mac_control_drain, so a 20001-epoch run stays comparable to 20000.
  CostUnits mac_control_total = 0;
  /// MAC control traffic spent after the final epoch, during the drain
  /// frames that give the last in-flight query its full query_period
  /// dissemination window. 0 when the drain was a no-op (epochs a
  /// multiple of query_period — every golden configuration) and on the
  /// Instant transport.
  CostUnits mac_control_drain = 0;
  std::int64_t queries = 0;
  std::int64_t updates_transmitted = 0;
  std::int64_t samples_taken = 0;    // physical ADC samples (paper §8)
  std::int64_t samples_skipped = 0;  // suppressed by the predictor
  // Hourly context: Umax/Hr per hour (Fig. 6 reference lines) and EHr.
  std::vector<double> umax_per_hour;
  std::vector<double> ehr_per_hour;
  // Mean theta (as % of span, temperature type) per series_bin epochs —
  // shows ATC's autonomous threshold trajectory.
  std::vector<double> theta_pct_series;
  // Per-node radio energy attribution. The network's lifetime is governed
  // by its hottest node, and sum(node_tx)/sum(node_rx) must reconcile with
  // the ledger's tx/rx totals on every backend (the cost-parity tests).
  std::vector<CostUnits> node_tx;
  std::vector<CostUnits> node_rx;
  std::vector<QueryRecord> records;
  // Multi-sink accounting. Sized to the deployed sink count (1 for the
  // paper's configuration — the tree-0 entries then mirror the globals).
  std::vector<NodeId> sink_roots;          // resolved root of each tree
  std::vector<CostLedger> sink_ledgers;    // per-sink share; sums to ledger
  std::vector<std::int64_t> sink_queries;  // queries routed to each sink
  // Per-sink hourly Umax/Hr — each sink floods its own budget from its
  // own tree's fMax and its own predicted EHr (umax_per_hour above stays
  // the tree-0 series the Fig. 6 goldens record).
  std::vector<std::vector<double>> sink_umax_per_hour;
  /// Update+control energy spent maintaining the extra trees (k >= 1) on
  /// top of the paper's single tree — the price of multi-sink redundancy.
  CostUnits cross_tree_update_overhead = 0;
  /// Injection -> answer latency in virtual epochs, all queries (the
  /// per-sink histograms below merge to exactly this). Instant-transport
  /// answers are synchronous (latency 0); LMAC answers close at the next
  /// injection boundary (latency query_period) — the serve plane is where
  /// queueing makes this distribution non-trivial.
  metrics::LatencyHistogram query_latency_epochs;
  /// Per-sink latency split, sized to the deployed sink count — the
  /// multi-sink follow-on metric (printed by dirqsim when --sinks > 1).
  std::vector<metrics::LatencyHistogram> sink_query_latency;

  /// Energy-balance spread across sinks: (max - min) / mean of per-sink
  /// total cost. 0 for a single sink (or an all-idle plane). The
  /// admission policy's target metric — bench_multi_sink compares it
  /// against round-robin.
  [[nodiscard]] double sink_energy_spread() const noexcept {
    if (sink_ledgers.size() < 2) return 0.0;
    CostUnits lo = sink_ledgers.front().total(), hi = lo, sum = 0;
    for (const CostLedger& l : sink_ledgers) {
      const CostUnits t = l.total();
      lo = t < lo ? t : lo;
      hi = t > hi ? t : hi;
      sum += t;
    }
    if (sum == 0) return 0.0;
    const double mean =
        static_cast<double>(sum) / static_cast<double>(sink_ledgers.size());
    return static_cast<double>(hi - lo) / mean;
  }

  /// Headline ratio: DirQ total cost / flooding total cost (paper:
  /// "DirQ spends between 45% and 55% the cost of flooding").
  ///
  /// Degenerate case: a run that injected no queries has no flooding
  /// baseline (flooding_total == 0), so there is no ratio — the result is
  /// quiet NaN, never a fake 0.0 a sweep aggregation could mistake for
  /// "DirQ was free". Callers that aggregate ratios must filter with
  /// std::isfinite (the JSON sink emits null).
  [[nodiscard]] double cost_ratio() const noexcept {
    return flooding_total == 0
               ? std::numeric_limits<double>::quiet_NaN()
               : static_cast<double>(ledger.total()) /
                     static_cast<double>(flooding_total);
  }
};

class Experiment {
 public:
  explicit Experiment(ExperimentConfig cfg) : cfg_(cfg) {}

  /// Builds the world from the seed and runs the full epoch loop.
  ExperimentResults run();

  /// The worker count a config actually runs with: cfg.threads resolved
  /// (0 → hardware concurrency). No backend clamps any more: lossy
  /// channels use order-independent counter-keyed drop verdicts
  /// (core/lossy.hpp) and LMAC runs its epoch walk in parallel chunks
  /// around the still-sequential slot loop — every transport is
  /// byte-identical to --threads 1. Exposed so the CLI reports the
  /// resolved count.
  [[nodiscard]] static unsigned effective_threads(const ExperimentConfig& cfg);

  /// Why a config is forced sequential, or nullptr when cfg.threads is
  /// honoured as requested. Always nullptr today — the last clamped
  /// backends (LMAC, lossy) were unclamped when drop verdicts became
  /// order-independent and the LMAC walk chunk-parallel — but the seam
  /// stays: the CLI prints it next to the effective thread count whenever
  /// a future backend needs the exact sequential path again.
  [[nodiscard]] static const char* thread_clamp_reason(
      const ExperimentConfig& cfg);

  /// A short note on *how* a config parallelises when that needs saying —
  /// LMAC reports partial parallelism (the slot-ordered delivery loop is
  /// the MAC's contract and stays sequential; sampling, gating, and
  /// update preparation fan out). nullptr when there is nothing to add.
  [[nodiscard]] static const char* thread_mode_note(
      const ExperimentConfig& cfg);

  [[nodiscard]] const ExperimentConfig& config() const noexcept { return cfg_; }

 private:
  ExperimentConfig cfg_;
};

}  // namespace dirq::core

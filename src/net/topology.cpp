#include "net/topology.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dirq::net {

bool Node::has_sensor(SensorType t) const noexcept {
  return std::binary_search(sensors.begin(), sensors.end(), t);
}

Topology::Topology(std::vector<Node> nodes, double radio_range)
    : nodes_(std::move(nodes)), radio_range_(radio_range) {
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    nodes_[i].id = static_cast<NodeId>(i);
    std::sort(nodes_[i].sensors.begin(), nodes_[i].sensors.end());
    nodes_[i].sensors.erase(
        std::unique(nodes_[i].sensors.begin(), nodes_[i].sensors.end()),
        nodes_[i].sensors.end());
  }
  rebuild_links();
}

Topology::Topology(std::vector<Node> nodes,
                   const std::vector<std::pair<NodeId, NodeId>>& links)
    : nodes_(std::move(nodes)), radio_range_(0.0) {
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    nodes_[i].id = static_cast<NodeId>(i);
    std::sort(nodes_[i].sensors.begin(), nodes_[i].sensors.end());
    nodes_[i].sensors.erase(
        std::unique(nodes_[i].sensors.begin(), nodes_[i].sensors.end()),
        nodes_[i].sensors.end());
    if (nodes_[i].alive) ++alive_count_;
  }
  adjacency_.assign(nodes_.size(), {});
  for (auto [a, b] : links) {
    if (a == b) throw std::invalid_argument("Topology: self link");
    if (a >= nodes_.size() || b >= nodes_.size())
      throw std::invalid_argument("Topology: link endpoint out of range");
    link(a, b);
  }
  // Index the positions anyway: add_node revivals re-link by unit disk.
  std::vector<double> xs, ys;
  xs.reserve(nodes_.size());
  ys.reserve(nodes_.size());
  for (const Node& n : nodes_) {
    xs.push_back(n.x);
    ys.push_back(n.y);
  }
  index_.build(xs, ys, radio_range_);
}

std::span<const NodeId> Topology::neighbors(NodeId id) const {
  return adjacency_.at(id);
}

bool Topology::is_connected() const {
  if (alive_count_ <= 1) return true;
  NodeId start = kNoNode;
  for (const Node& n : nodes_) {
    if (n.alive) {
      start = n.id;
      break;
    }
  }
  std::vector<bool> seen(nodes_.size(), false);
  std::vector<NodeId> stack{start};
  seen[start] = true;
  std::size_t reached = 0;
  while (!stack.empty()) {
    NodeId u = stack.back();
    stack.pop_back();
    ++reached;
    for (NodeId v : adjacency_[u]) {
      // Explicit-link topologies may keep links naming dead nodes; the
      // alive filter here matches SpanningTree::rebuild.
      if (!seen[v] && nodes_[v].alive) {
        seen[v] = true;
        stack.push_back(v);
      }
    }
  }
  return reached == alive_count_;
}

std::size_t Topology::max_degree() const {
  std::size_t best = 0;
  for (const Node& n : nodes_) {
    if (n.alive) best = std::max(best, adjacency_[n.id].size());
  }
  return best;
}

void Topology::kill_node(NodeId id) {
  Node& n = nodes_.at(id);
  if (!n.alive) return;
  n.alive = false;
  --alive_count_;
  unlink_all(id);
  for (TopologyObserver* obs : observers_) obs->on_node_died(id);
}

NodeId Topology::add_node(Node n) {
  NodeId id;
  if (n.id != kNoNode && n.id < nodes_.size()) {
    // Revival of an existing (dead) slot, possibly redeployed elsewhere.
    id = n.id;
    Node& slot = nodes_[id];
    if (slot.alive) throw std::invalid_argument("add_node: node already alive");
    const double old_x = slot.x, old_y = slot.y;
    n.alive = true;
    std::sort(n.sensors.begin(), n.sensors.end());
    n.sensors.erase(std::unique(n.sensors.begin(), n.sensors.end()), n.sensors.end());
    slot = std::move(n);
    index_.move(id, old_x, old_y, slot.x, slot.y);
  } else {
    id = static_cast<NodeId>(nodes_.size());
    n.id = id;
    n.alive = true;
    std::sort(n.sensors.begin(), n.sensors.end());
    n.sensors.erase(std::unique(n.sensors.begin(), n.sensors.end()), n.sensors.end());
    index_.insert(id, n.x, n.y);
    nodes_.push_back(std::move(n));
    adjacency_.emplace_back();
  }
  ++alive_count_;
  std::vector<NodeId> cand;
  index_.candidates(nodes_[id].x, nodes_[id].y, cand);
  for (NodeId other : cand) {
    if (other == id || !nodes_[other].alive) continue;
    if (distance(id, other) <= radio_range_) link(id, other);
  }
  for (TopologyObserver* obs : observers_) obs->on_node_added(id);
  return id;
}

void Topology::add_sensor(NodeId id, SensorType t) {
  Node& n = nodes_.at(id);
  auto it = std::lower_bound(n.sensors.begin(), n.sensors.end(), t);
  if (it != n.sensors.end() && *it == t) return;
  n.sensors.insert(it, t);
  for (TopologyObserver* obs : observers_) obs->on_sensor_added(id, t);
}

void Topology::remove_sensor(NodeId id, SensorType t) {
  Node& n = nodes_.at(id);
  auto it = std::lower_bound(n.sensors.begin(), n.sensors.end(), t);
  if (it == n.sensors.end() || *it != t) return;
  n.sensors.erase(it);
  for (TopologyObserver* obs : observers_) obs->on_sensor_removed(id, t);
}

std::vector<SensorType> Topology::sensor_types_present() const {
  std::vector<SensorType> out;
  for (const Node& n : nodes_) {
    if (!n.alive) continue;
    out.insert(out.end(), n.sensors.begin(), n.sensors.end());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<NodeId> Topology::nodes_with_sensor(SensorType t) const {
  std::vector<NodeId> out;
  for (const Node& n : nodes_) {
    if (n.alive && n.has_sensor(t)) out.push_back(n.id);
  }
  return out;
}

void Topology::remove_observer(TopologyObserver* obs) {
  std::erase(observers_, obs);
}

double Topology::distance(NodeId a, NodeId b) const {
  const Node& na = nodes_.at(a);
  const Node& nb = nodes_.at(b);
  return std::hypot(na.x - nb.x, na.y - nb.y);
}

void Topology::rebuild_links() {
  adjacency_.assign(nodes_.size(), {});
  link_count_ = 0;
  alive_count_ = 0;
  std::vector<double> xs, ys;
  xs.reserve(nodes_.size());
  ys.reserve(nodes_.size());
  for (const Node& n : nodes_) {
    if (n.alive) ++alive_count_;
    xs.push_back(n.x);
    ys.push_back(n.y);
  }
  index_.build(xs, ys, radio_range_);
  // Grid cells replace the all-pairs scan: candidate lists are a superset
  // of the true neighbourhood, and the exact distance filter below makes
  // the resulting adjacency byte-identical to brute_force_adjacency()
  // (links are undirected, so each pair is linked once, from its lower id).
  std::vector<NodeId> cand;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (!nodes_[i].alive) continue;
    cand.clear();
    index_.candidates(nodes_[i].x, nodes_[i].y, cand);
    for (NodeId j : cand) {
      if (j <= i || !nodes_[j].alive) continue;
      if (distance(static_cast<NodeId>(i), j) <= radio_range_) {
        link(static_cast<NodeId>(i), j);
      }
    }
  }
}

std::vector<std::vector<NodeId>> Topology::brute_force_adjacency() const {
  std::vector<std::vector<NodeId>> adj(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (!nodes_[i].alive) continue;
    for (std::size_t j = i + 1; j < nodes_.size(); ++j) {
      if (!nodes_[j].alive) continue;
      if (distance(static_cast<NodeId>(i), static_cast<NodeId>(j)) <=
          radio_range_) {
        adj[i].insert(
            std::lower_bound(adj[i].begin(), adj[i].end(), static_cast<NodeId>(j)),
            static_cast<NodeId>(j));
        adj[j].insert(
            std::lower_bound(adj[j].begin(), adj[j].end(), static_cast<NodeId>(i)),
            static_cast<NodeId>(i));
      }
    }
  }
  return adj;
}

void Topology::link(NodeId a, NodeId b) {
  adjacency_[a].insert(
      std::lower_bound(adjacency_[a].begin(), adjacency_[a].end(), b), b);
  adjacency_[b].insert(
      std::lower_bound(adjacency_[b].begin(), adjacency_[b].end(), a), a);
  ++link_count_;
}

void Topology::unlink_all(NodeId id) {
  for (NodeId v : adjacency_[id]) {
    auto& adj = adjacency_[v];
    adj.erase(std::lower_bound(adj.begin(), adj.end(), id));
    --link_count_;
  }
  adjacency_[id].clear();
}

}  // namespace dirq::net

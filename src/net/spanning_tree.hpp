// BFS spanning tree over the alive subgraph — DirQ's communication tree.
//
// The paper sets the tree up once after deployment ("Once the nodes have
// been placed in the network, a spanning tree is set up", §4) and repairs
// it when the MAC layer reports node death/addition (§4.2). The BFS tree
// gives shortest hop paths from the root; ties are broken toward the
// lowest-id parent so rebuilds are deterministic.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "net/topology.hpp"
#include "sim/types.hpp"

namespace dirq::net {

class SpanningTree {
 public:
  SpanningTree() = default;

  /// Builds the BFS tree rooted at `root` over the alive subgraph.
  SpanningTree(const Topology& topo, NodeId root);

  /// Recomputes the whole tree against the (possibly mutated) topology.
  /// Deterministic, so unchanged regions keep their shape.
  void rebuild(const Topology& topo);

  [[nodiscard]] NodeId root() const noexcept { return root_; }

  /// Parent of `id`, or kNoNode for the root and for unreachable/dead nodes.
  [[nodiscard]] NodeId parent(NodeId id) const { return parent_.at(id); }

  /// Children of `id` in ascending id order.
  [[nodiscard]] std::span<const NodeId> children(NodeId id) const {
    return children_.at(id);
  }

  /// Hop distance from the root, or -1 if not in the tree.
  [[nodiscard]] int depth(NodeId id) const { return depth_.at(id); }

  /// True if the node is attached to the tree (root included).
  [[nodiscard]] bool in_tree(NodeId id) const {
    return id < depth_.size() && depth_[id] >= 0;
  }

  /// Number of nodes attached to the tree (root included).
  [[nodiscard]] std::size_t size() const noexcept { return member_count_; }

  /// Tree edges = size() - 1 (when non-empty).
  [[nodiscard]] std::size_t edge_count() const noexcept {
    return member_count_ == 0 ? 0 : member_count_ - 1;
  }

  /// Maximum depth over tree members (0 for a lone root).
  [[nodiscard]] int max_depth() const noexcept { return max_depth_; }

  /// Maximum child count over tree members — the paper's k bound.
  [[nodiscard]] std::size_t max_branching() const;

  /// Members at exactly the given depth.
  [[nodiscard]] std::vector<NodeId> nodes_at_depth(int d) const;

  /// Leaves (tree members with no children).
  [[nodiscard]] std::vector<NodeId> leaves() const;

  /// Path from the root to `id` inclusive; empty if `id` is not in the
  /// tree. Used by the per-query audit to compute the "should receive"
  /// set (sources plus intermediate forwarders, paper §7.1).
  [[nodiscard]] std::vector<NodeId> path_from_root(NodeId id) const;

  /// All tree members in BFS (root-first) order. The order is cached at
  /// rebuild time (every mutation — repair, node death, re-parent — goes
  /// through rebuild(), which re-derives it), so this is allocation-free:
  /// Experiment::run and DirqNetwork::process_epoch call it every epoch.
  /// Only alive nodes are ever members (rebuild() filters on the alive
  /// flag, not just on adjacency reachability).
  [[nodiscard]] const std::vector<NodeId>& bfs_order() const noexcept {
    return order_;
  }

  /// Tree members with at least one child — the f_max denominator (Eq. 5).
  /// Cached at rebuild time alongside the BFS order.
  [[nodiscard]] std::size_t internal_node_count() const noexcept {
    return internal_count_;
  }

  /// Members of the subtree rooted at `id` (including `id`).
  [[nodiscard]] std::vector<NodeId> subtree(NodeId id) const;

  /// Partition of the non-root members into per-root-child subtrees:
  /// result[i] holds every member of the subtree rooted at the i-th root
  /// child (children(root) order), each list in the cached BFS order's
  /// relative order — so reversing a list walks that subtree leaves-first
  /// exactly as the reversed global order does. The subtrees are disjoint
  /// and their union plus the root is the member set; all DirQ update
  /// traffic is up-tree unicast, so each list is an independently
  /// processable region whose only external edge points at the root (the
  /// parallel epoch engine's shards).
  [[nodiscard]] std::vector<std::vector<NodeId>> subtree_partition() const;

 private:
  NodeId root_ = kNoNode;
  std::vector<NodeId> parent_;
  std::vector<std::vector<NodeId>> children_;
  std::vector<int> depth_;
  std::vector<NodeId> order_;  // cached BFS (root-first) order
  std::size_t member_count_ = 0;
  std::size_t internal_count_ = 0;
  int max_depth_ = 0;
};

}  // namespace dirq::net

// N spanning trees over one topology — the multi-sink query plane's
// routing substrate.
//
// The paper deploys a single sink; production means many concurrent
// queriers, each with its own BFS tree over the same shared node field
// (Yggdrasil's MiRAge multi-root aggregation is the exemplar — see
// SNIPPETS.md "Multi Root Aggregation"). A TreeSet owns one SpanningTree
// per sink, keyed by a dense TreeId, and repairs them on churn while
// rebuilding only the trees the change could actually have touched: a
// tree in a different connected component keeps its cached structure.
#pragma once

#include <cstddef>
#include <vector>

#include "net/spanning_tree.hpp"
#include "net/topology.hpp"
#include "sim/types.hpp"

namespace dirq::net {

class TreeSet {
 public:
  /// Builds one BFS tree per root over the alive subgraph. Throws
  /// std::invalid_argument on an empty root list, a duplicate root, an id
  /// outside the topology, or a dead root (the same checks
  /// ExperimentConfig::validate applies up front, enforced again here so
  /// direct users get the same contract).
  TreeSet(const Topology& topo, std::vector<NodeId> roots);

  [[nodiscard]] std::size_t count() const noexcept { return trees_.size(); }
  [[nodiscard]] const std::vector<NodeId>& roots() const noexcept {
    return roots_;
  }
  [[nodiscard]] NodeId root(TreeId t) const { return roots_.at(t); }
  [[nodiscard]] const SpanningTree& tree(TreeId t) const {
    return trees_.at(t);
  }

  /// Repairs the set after a topology mutation at `changed` (death,
  /// addition, revival). Only affected trees rebuild: a tree is affected
  /// when the changed node is one of its members, or is alive with an
  /// alive neighbour in the tree (it could attach and shorten paths).
  /// Returns the TreeIds rebuilt, ascending — the churn-locality tests
  /// and the network's per-tree reconciliation both consume this.
  std::vector<TreeId> rebuild_affected(const Topology& topo, NodeId changed);

  /// Unconditional rebuild of every tree (topology mutated wholesale).
  void rebuild_all(const Topology& topo);

 private:
  std::vector<NodeId> roots_;
  std::vector<SpanningTree> trees_;
};

/// Picks `count` sink positions spread across the alive field: the lowest
/// alive id first (node 0 — the paper's root — in every standard
/// placement), then greedy farthest-point selection (each next root
/// maximises its minimum Euclidean distance to the roots chosen so far,
/// ties toward the lowest id). Deterministic, RNG-free; `--sinks 1`
/// therefore reproduces the paper's single-root deployment exactly.
/// Throws std::invalid_argument when count is 0 or exceeds the alive
/// population.
std::vector<NodeId> spread_roots(const Topology& topo, std::size_t count);

}  // namespace dirq::net

// Topology builders.
//
// `random_connected` reproduces the paper's evaluation network: N nodes
// placed uniformly in a square, rejection-sampled until the unit-disk graph
// is connected and the BFS tree rooted at node 0 respects the paper's
// bounds (max k children per node, max depth d). `grid` and `knary_tree`
// support tests and the Section-5 analytical validation.
#pragma once

#include <cstddef>
#include <vector>

#include "net/topology.hpp"
#include "sim/rng.hpp"

namespace dirq::net {

struct RandomPlacementConfig {
  std::size_t node_count = 50;       // paper §7: 50 nodes incl. one root
  double area_side = 100.0;          // square deployment area
  double radio_range = 22.0;         // unit-disk radius
  std::size_t max_children = 8;      // paper's k = 8
  std::size_t max_depth = 10;        // paper's d = 10
  std::size_t max_attempts = 10000;  // rejection-sampling budget
  /// Sensor complement assignment: each node gets each of the
  /// `sensor_type_count` types independently with this probability; nodes
  /// that would end up with no sensor get one uniformly chosen type.
  /// The root (node 0) carries no sensors — it is the gateway.
  std::size_t sensor_type_count = 4;  // paper §7: 4 sensor types
  double sensor_probability = 0.6;    // heterogeneous complements (Fig. 4)
};

/// Builds a connected random topology per the config. Throws
/// std::runtime_error if no acceptable placement is found within
/// max_attempts (practically unreachable with the default parameters).
Topology random_connected(const RandomPlacementConfig& cfg, sim::Rng& rng);

/// Placement config for an arbitrary network size, derived from `base`
/// (pass the caller's config to keep its non-geometry knobs — sensor
/// complement, rejection budget). For node_count <= 50 only the count is
/// substituted — exactly the paper's setup, so existing goldens are
/// untouched. Beyond 50 nodes the geometry is overwritten with a
/// density-preserving scaling: the area side grows with sqrt(n/50) (so
/// the area itself grows linearly with n), the radio
/// range grows by sqrt(ln n / ln 50) (random geometric graphs need mean
/// degree ~ ln n to stay connected), and the 50-node k/d bounds are
/// lifted. The cutoff is a policy choice, not the exact failure point:
/// the paper's fixed 100x100 geometry still places (with shrinking
/// acceptance) up to ~120 nodes, and rejects everything from roughly 150
/// nodes on as the k = 8 branching bound bites — scaling from 51 up keeps
/// the density (and therefore the tree shape statistics) continuous
/// instead of letting runs degrade toward a cliff. Note this changes the
/// topology produced for --nodes 51..120 relative to pre-scaling builds.
RandomPlacementConfig scaled_placement(std::size_t node_count,
                                       RandomPlacementConfig base = {});

/// rows x cols grid with the given spacing; radio range chosen so the
/// 4-neighbourhood (not diagonals) is connected. Every node carries all
/// `sensor_type_count` types. Node 0 (corner) is the root.
Topology grid(std::size_t rows, std::size_t cols, double spacing,
              std::size_t sensor_type_count = 4);

/// Complete k-ary tree of depth d embedded so that the unit-disk graph is
/// exactly the tree (parent-child links only). Node 0 is the root; depth-0
/// tree is a single node. Every non-root node carries all sensor types.
/// Used to validate the Section-5 closed forms against simulation.
Topology knary_tree(std::size_t k, std::size_t d,
                    std::size_t sensor_type_count = 4);

}  // namespace dirq::net

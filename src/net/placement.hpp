// Topology builders.
//
// `random_connected` reproduces the paper's evaluation network: N nodes
// placed uniformly in a square, rejection-sampled until the unit-disk graph
// is connected and the BFS tree rooted at node 0 respects the paper's
// bounds (max k children per node, max depth d). `grid` and `knary_tree`
// support tests and the Section-5 analytical validation.
#pragma once

#include <cstddef>
#include <vector>

#include "net/topology.hpp"
#include "sim/rng.hpp"

namespace dirq::net {

struct RandomPlacementConfig {
  std::size_t node_count = 50;       // paper §7: 50 nodes incl. one root
  double area_side = 100.0;          // square deployment area
  double radio_range = 22.0;         // unit-disk radius
  std::size_t max_children = 8;      // paper's k = 8
  std::size_t max_depth = 10;        // paper's d = 10
  std::size_t max_attempts = 10000;  // rejection-sampling budget
  /// Sensor complement assignment: each node gets each of the
  /// `sensor_type_count` types independently with this probability; nodes
  /// that would end up with no sensor get one uniformly chosen type.
  /// The root (node 0) carries no sensors — it is the gateway.
  std::size_t sensor_type_count = 4;  // paper §7: 4 sensor types
  double sensor_probability = 0.6;    // heterogeneous complements (Fig. 4)
};

/// Builds a connected random topology per the config. Throws
/// std::runtime_error if no acceptable placement is found within
/// max_attempts (practically unreachable with the default parameters).
Topology random_connected(const RandomPlacementConfig& cfg, sim::Rng& rng);

/// rows x cols grid with the given spacing; radio range chosen so the
/// 4-neighbourhood (not diagonals) is connected. Every node carries all
/// `sensor_type_count` types. Node 0 (corner) is the root.
Topology grid(std::size_t rows, std::size_t cols, double spacing,
              std::size_t sensor_type_count = 4);

/// Complete k-ary tree of depth d embedded so that the unit-disk graph is
/// exactly the tree (parent-child links only). Node 0 is the root; depth-0
/// tree is a single node. Every non-root node carries all sensor types.
/// Used to validate the Section-5 closed forms against simulation.
Topology knary_tree(std::size_t k, std::size_t d,
                    std::size_t sensor_type_count = 4);

}  // namespace dirq::net

#include "net/placement.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

#include "net/spanning_tree.hpp"

namespace dirq::net {
namespace {

/// Assigns a heterogeneous sensor complement (Fig. 4) to every non-root
/// node: each type independently with probability p, at least one type.
void assign_sensors(std::vector<Node>& nodes, std::size_t type_count,
                    double p, sim::Rng& rng) {
  for (std::size_t i = 1; i < nodes.size(); ++i) {
    auto& sensors = nodes[i].sensors;
    sensors.clear();
    for (SensorType t = 0; t < type_count; ++t) {
      if (rng.bernoulli(p)) sensors.push_back(t);
    }
    if (sensors.empty()) {
      sensors.push_back(static_cast<SensorType>(
          rng.uniform_int(0, static_cast<std::int64_t>(type_count) - 1)));
    }
  }
}

}  // namespace

Topology random_connected(const RandomPlacementConfig& cfg, sim::Rng& rng) {
  if (cfg.node_count == 0) throw std::invalid_argument("random_connected: empty network");
  sim::Rng place_rng = rng.substream("placement");
  sim::Rng sensor_rng = rng.substream("sensors");

  for (std::size_t attempt = 0; attempt < cfg.max_attempts; ++attempt) {
    std::vector<Node> nodes(cfg.node_count);
    // Root at the area centre: in environmental deployments the gateway
    // sits where it can be serviced; centring also keeps BFS depth small.
    nodes[0].x = cfg.area_side / 2.0;
    nodes[0].y = cfg.area_side / 2.0;
    for (std::size_t i = 1; i < cfg.node_count; ++i) {
      nodes[i].x = place_rng.uniform(0.0, cfg.area_side);
      nodes[i].y = place_rng.uniform(0.0, cfg.area_side);
    }
    assign_sensors(nodes, cfg.sensor_type_count, cfg.sensor_probability, sensor_rng);

    Topology topo(std::move(nodes), cfg.radio_range);
    if (!topo.is_connected()) continue;

    SpanningTree tree(topo, /*root=*/0);
    if (tree.size() != cfg.node_count) continue;
    if (tree.max_branching() > cfg.max_children) continue;
    if (static_cast<std::size_t>(tree.max_depth()) > cfg.max_depth) continue;
    return topo;
  }
  throw std::runtime_error(
      "random_connected: no acceptable placement in " +
      std::to_string(cfg.max_attempts) + " attempts");
}

RandomPlacementConfig scaled_placement(std::size_t node_count,
                                       RandomPlacementConfig base) {
  base.node_count = node_count;
  if (node_count <= 50) return base;  // the paper's evaluated scale
  const double ratio = static_cast<double>(node_count) / 50.0;
  base.area_side = 100.0 * std::sqrt(ratio);
  base.radio_range =
      22.0 * std::sqrt(std::log(static_cast<double>(node_count)) /
                       std::log(50.0));
  base.max_children = node_count;
  base.max_depth = node_count;
  return base;
}

Topology grid(std::size_t rows, std::size_t cols, double spacing,
              std::size_t sensor_type_count) {
  if (rows == 0 || cols == 0) throw std::invalid_argument("grid: empty");
  std::vector<Node> nodes;
  nodes.reserve(rows * cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      Node n;
      n.x = static_cast<double>(c) * spacing;
      n.y = static_cast<double>(r) * spacing;
      for (SensorType t = 0; t < sensor_type_count; ++t) n.sensors.push_back(t);
      nodes.push_back(std::move(n));
    }
  }
  nodes[0].sensors.clear();  // corner root is the gateway
  // Range strictly between spacing and the diagonal, so only the
  // 4-neighbourhood is connected.
  return Topology(std::move(nodes), spacing * 1.1);
}

Topology knary_tree(std::size_t k, std::size_t d, std::size_t sensor_type_count) {
  if (k == 0) throw std::invalid_argument("knary_tree: k must be >= 1");
  // Node count: (k^{d+1} - 1) / (k - 1), or d+1 for k == 1.
  std::size_t count = 0;
  {
    std::size_t level = 1;
    for (std::size_t depth = 0; depth <= d; ++depth) {
      count += level;
      level *= k;
    }
  }
  std::vector<Node> nodes(count);
  std::vector<std::pair<NodeId, NodeId>> links;
  links.reserve(count - 1);
  for (std::size_t i = 1; i < count; ++i) {
    const NodeId parent = static_cast<NodeId>((i - 1) / k);
    links.emplace_back(parent, static_cast<NodeId>(i));
    for (SensorType t = 0; t < sensor_type_count; ++t) {
      nodes[i].sensors.push_back(t);
    }
  }
  // Positions are cosmetic for trees (links are explicit): lay levels out
  // on concentric rings so plots stay readable.
  for (std::size_t i = 0; i < count; ++i) {
    std::size_t depth = 0, first = 0, level = 1;
    while (first + level <= i) {
      first += level;
      level *= k;
      ++depth;
    }
    const double angle = level == 0 ? 0.0
        : 2.0 * 3.141592653589793 * static_cast<double>(i - first) /
              static_cast<double>(level);
    nodes[i].x = static_cast<double>(depth) * std::cos(angle);
    nodes[i].y = static_cast<double>(depth) * std::sin(angle);
  }
  return Topology(std::move(nodes), links);
}

}  // namespace dirq::net

#include "net/tree_set.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <string>

namespace dirq::net {

TreeSet::TreeSet(const Topology& topo, std::vector<NodeId> roots)
    : roots_(std::move(roots)) {
  if (roots_.empty()) {
    throw std::invalid_argument("TreeSet: at least one root is required");
  }
  std::vector<NodeId> sorted = roots_;
  std::sort(sorted.begin(), sorted.end());
  if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end()) {
    throw std::invalid_argument("TreeSet: duplicate root id");
  }
  trees_.reserve(roots_.size());
  for (NodeId r : roots_) {
    if (r >= topo.size()) {
      throw std::invalid_argument("TreeSet: root " + std::to_string(r) +
                                  " is outside the topology");
    }
    if (!topo.is_alive(r)) {
      throw std::invalid_argument("TreeSet: root " + std::to_string(r) +
                                  " is dead");
    }
    trees_.emplace_back(topo, r);
  }
}

std::vector<TreeId> TreeSet::rebuild_affected(const Topology& topo,
                                              NodeId changed) {
  std::vector<TreeId> rebuilt;
  for (TreeId t = 0; t < trees_.size(); ++t) {
    bool affected = trees_[t].in_tree(changed);
    if (!affected && changed < topo.size() && topo.is_alive(changed)) {
      // Not a member yet: it can only alter this tree by attaching, which
      // needs an alive neighbour already in the tree.
      for (NodeId v : topo.neighbors(changed)) {
        if (topo.is_alive(v) && trees_[t].in_tree(v)) {
          affected = true;
          break;
        }
      }
    }
    if (!affected) continue;
    trees_[t].rebuild(topo);
    rebuilt.push_back(t);
  }
  return rebuilt;
}

void TreeSet::rebuild_all(const Topology& topo) {
  for (SpanningTree& t : trees_) t.rebuild(topo);
}

std::vector<NodeId> spread_roots(const Topology& topo, std::size_t count) {
  if (count == 0) {
    throw std::invalid_argument("spread_roots: count must be >= 1");
  }
  if (count > topo.alive_count()) {
    throw std::invalid_argument(
        "spread_roots: count exceeds the alive population");
  }
  std::vector<NodeId> roots;
  roots.reserve(count);
  // First root: the lowest alive id — node 0 in every standard placement,
  // which is the paper's root (--sinks 1 equivalence).
  for (NodeId u = 0; u < topo.size(); ++u) {
    if (topo.is_alive(u)) {
      roots.push_back(u);
      break;
    }
  }
  // min_dist[u]: distance from u to its nearest chosen root so far.
  std::vector<double> min_dist(topo.size(),
                               std::numeric_limits<double>::infinity());
  while (roots.size() < count) {
    const NodeId last = roots.back();
    NodeId best = kNoNode;
    double best_dist = -1.0;
    for (NodeId u = 0; u < topo.size(); ++u) {
      if (!topo.is_alive(u)) continue;
      min_dist[u] = std::min(min_dist[u], topo.distance(u, last));
      if (min_dist[u] > best_dist &&
          std::find(roots.begin(), roots.end(), u) == roots.end()) {
        best_dist = min_dist[u];
        best = u;
      }
    }
    roots.push_back(best);
  }
  return roots;
}

}  // namespace dirq::net

// Wireless network topology: node positions, alive flags, per-node sensor
// complements, and unit-disk radio connectivity.
//
// The paper's evaluation network is 50 nodes with one root, heterogeneous
// sensor complements (Fig. 4), and a tree bounded by k = 8 (max children)
// and d = 10 (max depth). Topology is mutable: DirQ's §4.2 dynamics are
// node death, node addition and post-deployment sensor addition/removal,
// all of which are first-class operations here with observer callbacks so
// the MAC and DirQ layers can react.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <utility>
#include <vector>

#include "net/spatial_index.hpp"
#include "sim/types.hpp"

namespace dirq::net {

/// Immutable-by-value description of a node.
struct Node {
  NodeId id = kNoNode;
  double x = 0.0;
  double y = 0.0;
  bool alive = true;
  std::vector<SensorType> sensors;  // sorted, unique

  [[nodiscard]] bool has_sensor(SensorType t) const noexcept;
};

/// Observer interface for topology mutations. The MAC layer registers one
/// to drive its neighbour tables; tests register one to assert event flow.
class TopologyObserver {
 public:
  virtual ~TopologyObserver() = default;
  virtual void on_node_died(NodeId /*id*/) {}
  virtual void on_node_added(NodeId /*id*/) {}
  virtual void on_sensor_added(NodeId /*id*/, SensorType /*t*/) {}
  virtual void on_sensor_removed(NodeId /*id*/, SensorType /*t*/) {}
};

class Topology {
 public:
  Topology() = default;

  /// Constructs from a node list; connectivity is unit-disk with the given
  /// radio range (two alive nodes are linked iff their Euclidean distance
  /// is <= radio_range).
  Topology(std::vector<Node> nodes, double radio_range);

  /// Constructs with an explicit link list (used for exact k-ary trees in
  /// the analytical validation, where a unit-disk embedding would add
  /// unwanted cross links). Later add_node calls link by unit disk with
  /// radio_range 0, i.e. revived nodes start isolated.
  Topology(std::vector<Node> nodes,
           const std::vector<std::pair<NodeId, NodeId>>& links);

  // --- structure ---------------------------------------------------------

  [[nodiscard]] std::size_t size() const noexcept { return nodes_.size(); }
  [[nodiscard]] std::size_t alive_count() const noexcept { return alive_count_; }
  [[nodiscard]] double radio_range() const noexcept { return radio_range_; }

  [[nodiscard]] const Node& node(NodeId id) const { return nodes_.at(id); }
  [[nodiscard]] bool is_alive(NodeId id) const { return nodes_.at(id).alive; }
  [[nodiscard]] std::span<const Node> nodes() const noexcept { return nodes_; }

  /// Alive neighbours of an alive node (empty for dead nodes).
  [[nodiscard]] std::span<const NodeId> neighbors(NodeId id) const;

  /// Number of undirected links between alive nodes. Flooding reception
  /// cost is 2x this (paper Eq. 3).
  [[nodiscard]] std::size_t link_count() const noexcept { return link_count_; }

  /// True if the alive subgraph is connected (trivially true for <= 1 node).
  /// Dead nodes are never traversed, even if links name them (possible
  /// with the explicit-link constructor).
  [[nodiscard]] bool is_connected() const;

  /// Reference O(n^2) unit-disk adjacency (the pre-spatial-index link
  /// construction), kept for the grid-equivalence regression tests: the
  /// grid-indexed rebuild must produce exactly these lists.
  [[nodiscard]] std::vector<std::vector<NodeId>> brute_force_adjacency() const;

  /// Maximum degree over alive nodes.
  [[nodiscard]] std::size_t max_degree() const;

  // --- dynamics (paper §4.2) ---------------------------------------------

  /// Marks a node dead and removes its links. Observers are notified.
  void kill_node(NodeId id);

  /// Revives a previously dead node (re-links by unit disk) or appends a
  /// brand-new node. Returns the node's id. Observers are notified.
  NodeId add_node(Node n);

  /// Post-deployment sensor mutation (§4.2: "any changes in sensor types
  /// such as the addition or removal of sensors also propagates up").
  void add_sensor(NodeId id, SensorType t);
  void remove_sensor(NodeId id, SensorType t);

  /// All sensor types present on any alive node, sorted and unique.
  [[nodiscard]] std::vector<SensorType> sensor_types_present() const;

  /// Alive nodes carrying the given sensor type.
  [[nodiscard]] std::vector<NodeId> nodes_with_sensor(SensorType t) const;

  void add_observer(TopologyObserver* obs) { observers_.push_back(obs); }
  void remove_observer(TopologyObserver* obs);

  [[nodiscard]] double distance(NodeId a, NodeId b) const;

 private:
  void rebuild_links();
  void link(NodeId a, NodeId b);
  void unlink_all(NodeId id);

  std::vector<Node> nodes_;
  std::vector<std::vector<NodeId>> adjacency_;
  std::vector<TopologyObserver*> observers_;
  SpatialIndex index_;  // all node slots, dead or alive
  double radio_range_ = 1.0;
  std::size_t link_count_ = 0;
  std::size_t alive_count_ = 0;
};

}  // namespace dirq::net

#include "net/spanning_tree.hpp"

#include <algorithm>
#include <stdexcept>

namespace dirq::net {

SpanningTree::SpanningTree(const Topology& topo, NodeId root) : root_(root) {
  if (root >= topo.size() || !topo.is_alive(root)) {
    throw std::invalid_argument("SpanningTree: root must be an alive node");
  }
  rebuild(topo);
}

void SpanningTree::rebuild(const Topology& topo) {
  const std::size_t n = topo.size();
  parent_.assign(n, kNoNode);
  children_.assign(n, {});
  depth_.assign(n, -1);
  order_.clear();
  member_count_ = 0;
  internal_count_ = 0;
  max_depth_ = 0;
  if (root_ >= n || !topo.is_alive(root_)) return;

  // The cached order_ doubles as the BFS frontier: nodes are appended on
  // discovery and visited in append order, which is exactly the root-first
  // order bfs_order() exposes.
  order_.reserve(topo.alive_count());
  order_.push_back(root_);
  depth_[root_] = 0;
  for (std::size_t i = 0; i < order_.size(); ++i) {
    const NodeId u = order_[i];
    max_depth_ = std::max(max_depth_, depth_[u]);
    // Topology adjacency lists are sorted ascending, so children adopt the
    // lowest-id reachable parent first: deterministic rebuilds. The alive
    // filter is centralised here: a dead node never becomes a member even
    // when links still name it (explicit-link topologies).
    for (NodeId v : topo.neighbors(u)) {
      if (depth_[v] >= 0 || !topo.is_alive(v)) continue;
      depth_[v] = depth_[u] + 1;
      parent_[v] = u;
      children_[u].push_back(v);
      order_.push_back(v);
    }
    if (!children_[u].empty()) ++internal_count_;
  }
  member_count_ = order_.size();
}

std::size_t SpanningTree::max_branching() const {
  std::size_t best = 0;
  for (std::size_t i = 0; i < children_.size(); ++i) {
    if (depth_[i] >= 0) best = std::max(best, children_[i].size());
  }
  return best;
}

std::vector<NodeId> SpanningTree::nodes_at_depth(int d) const {
  std::vector<NodeId> out;
  for (std::size_t i = 0; i < depth_.size(); ++i) {
    if (depth_[i] == d) out.push_back(static_cast<NodeId>(i));
  }
  return out;
}

std::vector<NodeId> SpanningTree::leaves() const {
  std::vector<NodeId> out;
  for (std::size_t i = 0; i < depth_.size(); ++i) {
    if (depth_[i] >= 0 && children_[i].empty()) out.push_back(static_cast<NodeId>(i));
  }
  return out;
}

std::vector<NodeId> SpanningTree::path_from_root(NodeId id) const {
  if (!in_tree(id)) return {};
  std::vector<NodeId> path;
  for (NodeId u = id; u != kNoNode; u = parent_[u]) path.push_back(u);
  std::reverse(path.begin(), path.end());
  return path;
}

std::vector<std::vector<NodeId>> SpanningTree::subtree_partition() const {
  std::vector<std::vector<NodeId>> out;
  if (member_count_ == 0) return out;
  const std::span<const NodeId> top = children(root_);
  out.resize(top.size());
  // shard index per member; the root itself and non-members stay unmapped.
  std::vector<std::size_t> shard_of(depth_.size(), top.size());
  for (std::size_t i = 0; i < top.size(); ++i) shard_of[top[i]] = i;
  for (NodeId u : order_) {
    if (u == root_) continue;
    const std::size_t s =
        parent_[u] == root_ ? shard_of[u] : shard_of[parent_[u]];
    shard_of[u] = s;
    out[s].push_back(u);
  }
  return out;
}

std::vector<NodeId> SpanningTree::subtree(NodeId id) const {
  std::vector<NodeId> out;
  if (!in_tree(id)) return out;
  out.push_back(id);
  for (std::size_t i = 0; i < out.size(); ++i) {
    for (NodeId c : children_[out[i]]) out.push_back(c);
  }
  return out;
}

}  // namespace dirq::net

#include "net/spanning_tree.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>

namespace dirq::net {

SpanningTree::SpanningTree(const Topology& topo, NodeId root) : root_(root) {
  if (root >= topo.size() || !topo.is_alive(root)) {
    throw std::invalid_argument("SpanningTree: root must be an alive node");
  }
  rebuild(topo);
}

void SpanningTree::rebuild(const Topology& topo) {
  const std::size_t n = topo.size();
  parent_.assign(n, kNoNode);
  children_.assign(n, {});
  depth_.assign(n, -1);
  member_count_ = 0;
  max_depth_ = 0;
  if (root_ >= n || !topo.is_alive(root_)) return;

  std::deque<NodeId> frontier{root_};
  depth_[root_] = 0;
  while (!frontier.empty()) {
    NodeId u = frontier.front();
    frontier.pop_front();
    ++member_count_;
    max_depth_ = std::max(max_depth_, depth_[u]);
    // Topology adjacency lists are sorted ascending, so children adopt the
    // lowest-id reachable parent first: deterministic rebuilds.
    for (NodeId v : topo.neighbors(u)) {
      if (depth_[v] >= 0) continue;
      depth_[v] = depth_[u] + 1;
      parent_[v] = u;
      children_[u].push_back(v);
      frontier.push_back(v);
    }
  }
}

std::size_t SpanningTree::max_branching() const {
  std::size_t best = 0;
  for (std::size_t i = 0; i < children_.size(); ++i) {
    if (depth_[i] >= 0) best = std::max(best, children_[i].size());
  }
  return best;
}

std::vector<NodeId> SpanningTree::nodes_at_depth(int d) const {
  std::vector<NodeId> out;
  for (std::size_t i = 0; i < depth_.size(); ++i) {
    if (depth_[i] == d) out.push_back(static_cast<NodeId>(i));
  }
  return out;
}

std::vector<NodeId> SpanningTree::leaves() const {
  std::vector<NodeId> out;
  for (std::size_t i = 0; i < depth_.size(); ++i) {
    if (depth_[i] >= 0 && children_[i].empty()) out.push_back(static_cast<NodeId>(i));
  }
  return out;
}

std::vector<NodeId> SpanningTree::path_from_root(NodeId id) const {
  if (!in_tree(id)) return {};
  std::vector<NodeId> path;
  for (NodeId u = id; u != kNoNode; u = parent_[u]) path.push_back(u);
  std::reverse(path.begin(), path.end());
  return path;
}

std::vector<NodeId> SpanningTree::bfs_order() const {
  std::vector<NodeId> order;
  if (!in_tree(root_)) return order;
  order.reserve(member_count_);
  order.push_back(root_);
  for (std::size_t i = 0; i < order.size(); ++i) {
    for (NodeId c : children_[order[i]]) order.push_back(c);
  }
  return order;
}

std::vector<NodeId> SpanningTree::subtree(NodeId id) const {
  std::vector<NodeId> out;
  if (!in_tree(id)) return out;
  out.push_back(id);
  for (std::size_t i = 0; i < out.size(); ++i) {
    for (NodeId c : children_[out[i]]) out.push_back(c);
  }
  return out;
}

}  // namespace dirq::net

// Uniform-grid spatial index over node positions.
//
// Topology link construction is a fixed-radius neighbour problem: two alive
// nodes are linked iff their Euclidean distance is <= radio_range. The
// paper-scale 50-node network tolerates the O(n^2) all-pairs scan, but the
// large-topology tier (500-5 000 nodes) does not — rebuild_links and
// add_node instead query this grid, whose cells are at least radio_range
// wide, so every node within range of a point lies in the point's 3x3 cell
// neighbourhood. Candidate lists are a superset; callers keep the exact
// distance filter, which is why grid-built adjacency is byte-identical to
// the brute-force path (asserted by tests/net/spatial_index_test.cpp).
//
// The index stores every node slot, dead or alive (alive-ness is the
// caller's filter — dead nodes keep their position and may be revived),
// and supports point updates for revivals that redeploy a node elsewhere.
#pragma once

#include <cstddef>
#include <vector>

#include "sim/types.hpp"

namespace dirq::net {

class SpatialIndex {
 public:
  SpatialIndex() = default;

  /// Rebuilds the grid over the given points with the given interaction
  /// radius. Cell size is max(radius, extent/sqrt(n), epsilon): never
  /// below the radius (so a 3x3 neighbourhood is sufficient) and never so
  /// small that the grid outgrows O(n) cells.
  void build(const std::vector<double>& xs, const std::vector<double>& ys,
             double radius);

  /// Adds one point with the given id (grows the grid bounds by clamping:
  /// out-of-bounds points land in the nearest edge cell, which only ever
  /// enlarges candidate sets, never drops a true neighbour).
  void insert(NodeId id, double x, double y);

  /// Moves an existing point (node revived at a new position).
  void move(NodeId id, double old_x, double old_y, double x, double y);

  /// Appends to `out` the ids of every indexed point whose cell lies in
  /// the 3x3 neighbourhood of (x, y) — a superset of all points within
  /// `radius`. The caller applies the exact distance (and alive) filter.
  void candidates(double x, double y, std::vector<NodeId>& out) const;

  [[nodiscard]] std::size_t size() const noexcept { return count_; }
  [[nodiscard]] double cell_size() const noexcept { return cell_; }

 private:
  [[nodiscard]] std::size_t cell_index(double x, double y) const;

  std::vector<std::vector<NodeId>> cells_;
  std::size_t cols_ = 1, rows_ = 1;
  double min_x_ = 0.0, min_y_ = 0.0;
  double cell_ = 1.0;
  std::size_t count_ = 0;
};

}  // namespace dirq::net

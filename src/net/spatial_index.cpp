#include "net/spatial_index.hpp"

#include <algorithm>
#include <cmath>

namespace dirq::net {

void SpatialIndex::build(const std::vector<double>& xs,
                         const std::vector<double>& ys, double radius) {
  const std::size_t n = xs.size();
  count_ = n;
  double min_x = 0.0, min_y = 0.0, max_x = 0.0, max_y = 0.0;
  if (n > 0) {
    min_x = max_x = xs[0];
    min_y = max_y = ys[0];
    for (std::size_t i = 1; i < n; ++i) {
      min_x = std::min(min_x, xs[i]);
      max_x = std::max(max_x, xs[i]);
      min_y = std::min(min_y, ys[i]);
      max_y = std::max(max_y, ys[i]);
    }
  }
  min_x_ = min_x;
  min_y_ = min_y;
  const double extent = std::max(max_x - min_x, max_y - min_y);
  // Cell >= radius keeps the 3x3 query sufficient; cell >= extent/sqrt(n)
  // bounds the grid at ~n cells even when the radius is tiny.
  const double side = n > 0 ? std::sqrt(static_cast<double>(n)) : 1.0;
  cell_ = std::max({radius, extent / std::max(side, 1.0), 1e-9});
  cols_ = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::floor((max_x - min_x) / cell_)) + 1);
  rows_ = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::floor((max_y - min_y) / cell_)) + 1);
  cells_.assign(cols_ * rows_, {});
  for (std::size_t i = 0; i < n; ++i) {
    cells_[cell_index(xs[i], ys[i])].push_back(static_cast<NodeId>(i));
  }
}

std::size_t SpatialIndex::cell_index(double x, double y) const {
  const auto clamp_cell = [](double v, std::size_t n) {
    if (!(v > 0.0)) return std::size_t{0};  // also catches NaN
    const auto c = static_cast<std::size_t>(v);
    return std::min(c, n - 1);
  };
  const std::size_t cx = clamp_cell((x - min_x_) / cell_, cols_);
  const std::size_t cy = clamp_cell((y - min_y_) / cell_, rows_);
  return cy * cols_ + cx;
}

void SpatialIndex::insert(NodeId id, double x, double y) {
  if (cells_.empty()) {  // never built: degenerate 1x1 grid
    cols_ = rows_ = 1;
    cells_.assign(1, {});
    min_x_ = x;
    min_y_ = y;
  }
  cells_[cell_index(x, y)].push_back(id);
  ++count_;
}

void SpatialIndex::move(NodeId id, double old_x, double old_y, double x,
                        double y) {
  const std::size_t from = cell_index(old_x, old_y);
  const std::size_t to = cell_index(x, y);
  if (from == to) return;
  auto& cell = cells_[from];
  cell.erase(std::find(cell.begin(), cell.end(), id));
  cells_[to].push_back(id);
}

void SpatialIndex::candidates(double x, double y,
                              std::vector<NodeId>& out) const {
  const std::size_t centre = cell_index(x, y);
  const std::size_t cx = centre % cols_;
  const std::size_t cy = centre / cols_;
  const std::size_t x0 = cx > 0 ? cx - 1 : 0;
  const std::size_t x1 = std::min(cx + 1, cols_ - 1);
  const std::size_t y0 = cy > 0 ? cy - 1 : 0;
  const std::size_t y1 = std::min(cy + 1, rows_ - 1);
  for (std::size_t gy = y0; gy <= y1; ++gy) {
    for (std::size_t gx = x0; gx <= x1; ++gx) {
      const auto& cell = cells_[gy * cols_ + gx];
      out.insert(out.end(), cell.begin(), cell.end());
    }
  }
}

}  // namespace dirq::net

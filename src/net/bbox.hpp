// Axis-aligned bounding box — the static location attribute (paper §2:
// "queries can be directed based on a combination of static and dynamic
// attributes, e.g. sensor values (dynamic), sensor types (static) and even
// location (static) if it is available").
#pragma once

#include <algorithm>

namespace dirq::net {

struct BBox {
  double min_x = 0.0, min_y = 0.0;
  double max_x = 0.0, max_y = 0.0;

  /// A box containing exactly one point.
  static BBox point(double x, double y) noexcept { return {x, y, x, y}; }

  /// An "empty" box that is the identity of join() (contains nothing).
  static BBox empty() noexcept {
    return {1.0, 1.0, -1.0, -1.0};  // inverted: max < min
  }

  [[nodiscard]] bool is_empty() const noexcept {
    return max_x < min_x || max_y < min_y;
  }

  [[nodiscard]] bool contains(double x, double y) const noexcept {
    return !is_empty() && x >= min_x && x <= max_x && y >= min_y && y <= max_y;
  }

  [[nodiscard]] bool intersects(const BBox& other) const noexcept {
    if (is_empty() || other.is_empty()) return false;
    return min_x <= other.max_x && max_x >= other.min_x &&
           min_y <= other.max_y && max_y >= other.min_y;
  }

  /// Smallest box containing both (empty boxes are identities).
  [[nodiscard]] BBox join(const BBox& other) const noexcept {
    if (is_empty()) return other;
    if (other.is_empty()) return *this;
    return {std::min(min_x, other.min_x), std::min(min_y, other.min_y),
            std::max(max_x, other.max_x), std::max(max_y, other.max_y)};
  }

  [[nodiscard]] double width() const noexcept {
    return is_empty() ? 0.0 : max_x - min_x;
  }
  [[nodiscard]] double height() const noexcept {
    return is_empty() ? 0.0 : max_y - min_y;
  }
  [[nodiscard]] double area() const noexcept { return width() * height(); }

  friend bool operator==(const BBox& a, const BBox& b) noexcept {
    if (a.is_empty() && b.is_empty()) return true;
    return a.min_x == b.min_x && a.min_y == b.min_y && a.max_x == b.max_x &&
           a.max_y == b.max_y;
  }
};

}  // namespace dirq::net

#include "sweep/sink.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace dirq::sweep {

namespace {

/// JSON string escaping (control characters, quote, backslash).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_str(const std::string& s) { return '"' + json_escape(s) + '"'; }

/// JSON number; non-finite doubles become null (cost_ratio() is NaN on
/// the query-less degenerate run — null keeps aggregators honest).
std::string json_num(double v) {
  if (!std::isfinite(v)) return "null";
  return format_double(v);
}

}  // namespace

// --- ConsoleTableSink --------------------------------------------------------

void ConsoleTableSink::begin(const SweepHeader& header) {
  table_.clear();
  table_.emplace_back(header.columns);
}

void ConsoleTableSink::row(const std::vector<std::string>& values,
                           const PlanCell*, const CellResult*) {
  table_.back().add_row(values);
}

void ConsoleTableSink::end() {
  table_.back().print(os_);
  table_.clear();
}

// --- TsvSink -----------------------------------------------------------------

void TsvSink::begin(const SweepHeader& header) {
  block_.clear();
  block_.emplace_back(header.title, header.columns);
}

void TsvSink::row(const std::vector<std::string>& values, const PlanCell*,
                  const CellResult*) {
  block_.back().add_row(values);
}

void TsvSink::end() {
  block_.back().print(os_);
  block_.clear();
}

// --- JsonSink ----------------------------------------------------------------

void JsonSink::begin(const SweepHeader& header) {
  header_ = header;
  cells_.str({});
  rows_ = 0;
}

void JsonSink::row(const std::vector<std::string>& values, const PlanCell* cell,
                   const CellResult* result) {
  if (rows_++ > 0) cells_ << ",";
  cells_ << "\n    {";
  if (cell != nullptr) {
    cells_ << "\"label\": " << json_str(cell->label) << ", \"coordinates\": {";
    for (std::size_t i = 0; i < cell->coordinates.size(); ++i) {
      if (i) cells_ << ", ";
      cells_ << json_str(cell->coordinates[i].first) << ": "
             << json_str(cell->coordinates[i].second);
    }
    cells_ << "}, ";
  }
  cells_ << "\"row\": {";
  for (std::size_t i = 0; i < values.size() && i < header_.columns.size(); ++i) {
    if (i) cells_ << ", ";
    cells_ << json_str(header_.columns[i]) << ": " << json_str(values[i]);
  }
  cells_ << "}";
  if (result != nullptr && result->ok()) {
    const core::ExperimentResults& r = result->results;
    CostUnits hottest = 0;
    for (std::size_t u = 0; u < r.node_tx.size(); ++u) {
      hottest = std::max(hottest, r.node_tx[u] + r.node_rx[u]);
    }
    cells_ << ", \"metrics\": {"
           << "\"query_cost\": " << r.ledger.query_cost()
           << ", \"update_cost\": " << r.ledger.update_cost()
           << ", \"control_cost\": " << r.ledger.control_cost()
           << ", \"dirq_total\": " << r.ledger.total()
           << ", \"flooding_total\": " << r.flooding_total
           << ", \"mac_control_total\": " << r.mac_control_total
           << ", \"cost_ratio\": " << json_num(r.cost_ratio())
           << ", \"queries\": " << r.queries
           << ", \"updates_transmitted\": " << r.updates_transmitted
           << ", \"samples_taken\": " << r.samples_taken
           << ", \"samples_skipped\": " << r.samples_skipped
           << ", \"mean_overshoot_pct\": " << json_num(r.overshoot_pct.mean())
           << ", \"mean_coverage_pct\": " << json_num(r.coverage_pct.mean())
           << ", \"mean_should_pct\": " << json_num(r.should_pct.mean())
           << ", \"mean_receive_pct\": " << json_num(r.receive_pct.mean())
           << ", \"hottest_node_energy\": " << hottest << "}";
  }
  if (result != nullptr && !result->ok()) {
    cells_ << ", \"error\": " << json_str(result->error);
  }
  if (result != nullptr && include_timing_) {
    cells_ << ", \"wall_seconds\": " << json_num(result->wall_seconds);
  }
  cells_ << "}";
}

void JsonSink::end() {
  os_ << "{\n  \"schema\": \"dirq.sweep.v1\",\n  \"plan\": "
      << json_str(header_.plan) << ",\n  \"title\": " << json_str(header_.title)
      << ",\n  \"columns\": [";
  for (std::size_t i = 0; i < header_.columns.size(); ++i) {
    if (i) os_ << ", ";
    os_ << json_str(header_.columns[i]);
  }
  os_ << "],\n  \"cells\": [" << cells_.str() << "\n  ]";
  if (include_timing_) {
    const long rss = peak_rss_kib();
    os_ << ",\n  \"peak_rss_kib\": ";
    if (rss > 0) {
      os_ << rss;
    } else {
      os_ << "null";
    }
  }
  os_ << "\n}\n";
  cells_.str({});
  rows_ = 0;
}

// --- report driver -----------------------------------------------------------

void report(const SweepHeader& header, const std::vector<CellResult>& results,
            const RowMapper& mapper, std::initializer_list<ResultSink*> sinks) {
  report(header, results, mapper, std::vector<ResultSink*>(sinks));
}

void report(const SweepHeader& header, const std::vector<CellResult>& results,
            const RowMapper& mapper, const std::vector<ResultSink*>& sinks) {
  for (ResultSink* s : sinks) s->begin(header);
  for (const CellResult& r : results) {
    std::vector<std::string> values;
    if (r.ok()) {
      values = mapper(r);
    } else {
      // Failed cells still occupy their plan-order row: label first, the
      // error where the first metric would go.
      values.assign(header.columns.size(), "-");
      if (!values.empty()) values[0] = r.cell.label;
      if (values.size() > 1) values[1] = "<error: " + r.error + ">";
    }
    for (ResultSink* s : sinks) s->row(values, &r.cell, &r);
  }
  for (ResultSink* s : sinks) s->end();
}

// --- canonical summary -------------------------------------------------------

namespace {

void put(std::ostringstream& os, const char* key, double v) {
  os << key << '=' << format_double(v) << '\n';
}

void put_stat(std::ostringstream& os, const char* key,
              const sim::RunningStat& s) {
  os << key << "=count:" << s.count() << ",mean:" << format_double(s.mean())
     << ",stddev:" << format_double(s.stddev())
     << ",min:" << format_double(s.min()) << ",max:" << format_double(s.max())
     << '\n';
}

void put_series(std::ostringstream& os, const char* key,
                const std::vector<double>& v) {
  os << key << '=';
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i) os << ',';
    os << format_double(v[i]);
  }
  os << '\n';
}

void put_audit(std::ostringstream& os, const metrics::QueryAudit& a) {
  os << a.should_count << '/' << a.received_count << '/' << a.correct << '/'
     << a.wrong << '/' << a.missed;
}

}  // namespace

std::string summarize(const core::ExperimentResults& r) {
  std::ostringstream os;
  os << "ledger=" << r.ledger.query_tx << ',' << r.ledger.query_rx << ','
     << r.ledger.update_tx << ',' << r.ledger.update_rx << ','
     << r.ledger.control_tx << ',' << r.ledger.control_rx << '\n';
  os << "flooding_total=" << r.flooding_total << '\n';
  os << "mac_control_total=" << r.mac_control_total << '\n';
  put(os, "cost_ratio", r.cost_ratio());
  os << "queries=" << r.queries << '\n';
  os << "updates_transmitted=" << r.updates_transmitted << '\n';
  os << "samples=" << r.samples_taken << '/' << r.samples_skipped << '\n';
  put_stat(os, "overshoot_pct", r.overshoot_pct);
  put_stat(os, "should_pct", r.should_pct);
  put_stat(os, "receive_pct", r.receive_pct);
  put_stat(os, "source_pct", r.source_pct);
  put_stat(os, "wrong_pct", r.wrong_pct);
  put_stat(os, "coverage_pct", r.coverage_pct);
  put_stat(os, "source_overshoot_pct", r.source_overshoot_pct);
  put_stat(os, "source_coverage_pct", r.source_coverage_pct);
  put_series(os, "updates_per_bin", r.updates_per_bin.bins());
  put_series(os, "umax_per_hour", r.umax_per_hour);
  put_series(os, "ehr_per_hour", r.ehr_per_hour);
  put_series(os, "theta_pct_series", r.theta_pct_series);
  os << "node_tx=";
  for (std::size_t u = 0; u < r.node_tx.size(); ++u) {
    os << (u ? "," : "") << r.node_tx[u];
  }
  os << "\nnode_rx=";
  for (std::size_t u = 0; u < r.node_rx.size(); ++u) {
    os << (u ? "," : "") << r.node_rx[u];
  }
  os << '\n';
  // Per-sink block only when the run actually had several sinks: the
  // single-sink fingerprint (every recorded golden) stays byte-identical.
  if (r.sink_roots.size() > 1) {
    os << "sink_roots=";
    for (std::size_t k = 0; k < r.sink_roots.size(); ++k) {
      os << (k ? "," : "") << r.sink_roots[k];
    }
    os << '\n';
    for (std::size_t k = 0; k < r.sink_ledgers.size(); ++k) {
      const core::CostLedger& led = r.sink_ledgers[k];
      os << "sink_ledger[" << k << "]=" << led.query_tx << ',' << led.query_rx
         << ',' << led.update_tx << ',' << led.update_rx << ','
         << led.control_tx << ',' << led.control_rx << '\n';
      os << "sink_queries[" << k << "]=" << r.sink_queries[k] << '\n';
      const std::string umax_key =
          "sink_umax_per_hour[" + std::to_string(k) + "]";
      put_series(os, umax_key.c_str(), r.sink_umax_per_hour[k]);
    }
    put(os, "sink_energy_spread", r.sink_energy_spread());
    os << "cross_tree_update_overhead=" << r.cross_tree_update_overhead
       << '\n';
  }
  os << "records=" << r.records.size() << '\n';
  for (const core::QueryRecord& rec : r.records) {
    os << "record=" << rec.epoch << ',' << static_cast<int>(rec.type) << ','
       << rec.dirq_query_cost << ',' << rec.flooding_cost << ',' << rec.sources
       << ',' << rec.population << ",audit:";
    put_audit(os, rec.audit);
    os << ",source_audit:";
    put_audit(os, rec.source_audit);
    os << '\n';
  }
  return os.str();
}

long peak_rss_kib() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return usage.ru_maxrss / 1024;  // macOS reports bytes
#else
  return usage.ru_maxrss;  // Linux reports KiB
#endif
#else
  return 0;
#endif
}

}  // namespace dirq::sweep

#include "sweep/runner.hpp"

#include <algorithm>
#include <mutex>
#include <stdexcept>

#include "sim/thread_pool.hpp"

namespace dirq::sweep {

unsigned SweepRunner::thread_count(std::size_t cells) const {
  const unsigned n = sim::ThreadPool::resolve(opts_.threads);
  return static_cast<unsigned>(
      std::min<std::size_t>(n, std::max<std::size_t>(cells, 1)));
}

void SweepRunner::for_each_index(
    std::size_t count, const std::function<void(std::size_t)>& work) const {
  // The pool is per sweep, not per cell: a sweep makes exactly one
  // for_each_index call, so constructing here matches the historical
  // thread lifetime while sharing the claiming loop with the intra-run
  // parallel epoch path.
  sim::ThreadPool pool(thread_count(count));
  pool.parallel_for(count, work);
}

std::vector<CellResult> SweepRunner::run(const ExperimentPlan& plan) const {
  return run(plan, [](const PlanCell& cell) {
    return core::Experiment(cell.config).run();
  });
}

std::vector<CellResult> SweepRunner::run(const ExperimentPlan& plan,
                                         const CellFn& fn) const {
  const std::vector<PlanCell> cells = plan.cells();
  std::vector<CellResult> results(cells.size());
  std::mutex progress_mutex;
  for_each_index(cells.size(), [&](std::size_t i) {
    CellResult& r = results[i];
    r.cell = cells[i];
    const auto start = std::chrono::steady_clock::now();
    try {
      r.results = fn(cells[i]);
    } catch (const std::exception& e) {
      r.error = e.what();
      if (r.error.empty()) r.error = "unknown error";
    } catch (...) {
      r.error = "unknown error";
    }
    r.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    if (opts_.progress) {
      const std::lock_guard<std::mutex> lock(progress_mutex);
      opts_.progress(r.cell, r.ok());
    }
  });
  return results;
}

std::vector<CellResult> require_ok(std::vector<CellResult> results) {
  for (const CellResult& r : results) {
    if (!r.ok()) {
      throw std::runtime_error("sweep cell '" + r.cell.label +
                               "' failed: " + r.error);
    }
  }
  return results;
}

}  // namespace dirq::sweep

#include "sweep/plan.hpp"

#include <charconv>
#include <sstream>
#include <stdexcept>
#include <unordered_set>

#include "data/fast_field.hpp"
#include "net/placement.hpp"

namespace dirq::sweep {

std::string format_double(double value) {
#if defined(__cpp_lib_to_chars)
  char buf[64];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, value);
  if (ec == std::errc()) return std::string(buf, ptr);
#endif
  std::ostringstream oss;
  oss.precision(17);
  oss << value;
  return oss.str();
}

const std::string* PlanCell::coordinate(std::string_view axis) const {
  for (const auto& [name, value] : coordinates) {
    if (name == axis) return &value;
  }
  return nullptr;
}

ExperimentPlan::ExperimentPlan(std::string name, core::ExperimentConfig base)
    : name_(std::move(name)), base_(base) {}

ExperimentPlan& ExperimentPlan::axis(Axis a) {
  axes_.push_back(std::move(a));
  return *this;
}

ExperimentPlan& ExperimentPlan::cell(std::string label,
                                     core::ExperimentConfig cfg) {
  PlanCell c;
  c.label = std::move(label);
  c.config = cfg;
  explicit_cells_.push_back(std::move(c));
  return *this;
}

ExperimentPlan& ExperimentPlan::cell(
    std::string label, const std::function<void(core::ExperimentConfig&)>& apply) {
  core::ExperimentConfig cfg = base_;
  if (apply) apply(cfg);
  return cell(std::move(label), cfg);
}

void ExperimentPlan::validate() const {
  const auto fail = [this](const std::string& what) {
    throw std::invalid_argument("ExperimentPlan '" + name_ + "': " + what);
  };
  if (axes_.empty() && explicit_cells_.empty()) {
    fail("plan has no axes and no cells");
  }
  if (!axes_.empty() && !explicit_cells_.empty()) {
    fail("mixing cartesian axes with an explicit cell list");
  }
  std::unordered_set<std::string> axis_names;
  for (const Axis& a : axes_) {
    if (a.name.empty()) fail("axis with an empty name");
    if (!axis_names.insert(a.name).second) {
      fail("duplicate axis name '" + a.name + "'");
    }
    if (a.values.empty()) fail("axis '" + a.name + "' has no values");
    std::unordered_set<std::string> labels;
    for (const AxisValue& v : a.values) {
      if (v.label.empty()) fail("axis '" + a.name + "' has a value with an empty label");
      if (!v.apply) fail("axis '" + a.name + "' value '" + v.label + "' has no mutation");
      if (!labels.insert(v.label).second) {
        fail("axis '" + a.name + "' has duplicate value label '" + v.label + "'");
      }
    }
  }
  for (const PlanCell& c : explicit_cells_) {
    if (c.label.empty()) fail("explicit cell with an empty label");
  }
}

std::size_t ExperimentPlan::size() const {
  validate();
  if (!explicit_cells_.empty()) return explicit_cells_.size();
  std::size_t n = 1;
  for (const Axis& a : axes_) n *= a.values.size();
  return n;
}

std::vector<PlanCell> ExperimentPlan::cells() const {
  validate();
  std::vector<PlanCell> out;
  if (!explicit_cells_.empty()) {
    out = explicit_cells_;
    for (std::size_t i = 0; i < out.size(); ++i) out[i].index = i;
    return out;
  }
  // Row-major cartesian product: odometer over axis value indices, the
  // last axis varying fastest.
  std::vector<std::size_t> at(axes_.size(), 0);
  const std::size_t total = size();
  out.reserve(total);
  for (std::size_t i = 0; i < total; ++i) {
    PlanCell c;
    c.index = i;
    c.config = base_;
    for (std::size_t ax = 0; ax < axes_.size(); ++ax) {
      const AxisValue& v = axes_[ax].values[at[ax]];
      v.apply(c.config);
      c.coordinates.emplace_back(axes_[ax].name, v.label);
      if (!c.label.empty()) c.label += ' ';
      c.label += axes_[ax].name + '=' + v.label;
    }
    out.push_back(std::move(c));
    for (std::size_t ax = axes_.size(); ax-- > 0;) {
      if (++at[ax] < axes_[ax].values.size()) break;
      at[ax] = 0;
    }
  }
  return out;
}

core::ExperimentConfig paper_config(std::uint64_t seed) {
  core::ExperimentConfig cfg;
  cfg.seed = seed;
  cfg.epochs = 20000;     // paper §7
  cfg.query_period = 20;  // paper §7
  return cfg;
}

AxisValue atc() {
  return {"ATC", [](core::ExperimentConfig& cfg) {
            cfg.network.mode = core::NetworkConfig::ThetaMode::Atc;
          }};
}

AxisValue fixed_theta(double pct) {
  return {"delta=" + format_double(pct) + "%",
          [pct](core::ExperimentConfig& cfg) {
            cfg.network.mode = core::NetworkConfig::ThetaMode::Fixed;
            cfg.network.fixed_pct = pct;
          }};
}

AxisValue relevant(double fraction) {
  return {format_double(fraction * 100.0) + "%",
          [fraction](core::ExperimentConfig& cfg) {
            cfg.relevant_fraction = fraction;
          }};
}

Axis theta_axis(std::vector<AxisValue> modes) {
  return {"theta", std::move(modes)};
}

Axis relevant_axis(const std::vector<double>& fractions) {
  Axis a{"relevant", {}};
  for (double f : fractions) a.values.push_back(relevant(f));
  return a;
}

Axis seed_axis(const std::vector<std::uint64_t>& seeds) {
  Axis a{"seed", {}};
  for (std::uint64_t s : seeds) {
    a.values.push_back({std::to_string(s), [s](core::ExperimentConfig& cfg) {
                          cfg.seed = s;
                        }});
  }
  return a;
}

Axis loss_axis(const std::vector<double>& rates) {
  Axis a{"loss", {}};
  for (double r : rates) {
    a.values.push_back({format_double(r), [r](core::ExperimentConfig& cfg) {
                          cfg.loss_rate = r;
                        }});
  }
  return a;
}

Axis transport_axis(const std::vector<core::TransportKind>& transports) {
  Axis a{"mac", {}};
  for (core::TransportKind t : transports) {
    a.values.push_back({t == core::TransportKind::Lmac ? "lmac" : "instant",
                        [t](core::ExperimentConfig& cfg) { cfg.transport = t; }});
  }
  return a;
}

Axis nodes_axis(const std::vector<std::size_t>& node_counts) {
  Axis a{"nodes", {}};
  for (std::size_t n : node_counts) {
    a.values.push_back({std::to_string(n), [n](core::ExperimentConfig& cfg) {
                          // Density-preserving scaling: beyond the paper's
                          // 50 nodes the fixed 100x100 area has no valid
                          // placements (see net::scaled_placement); at or
                          // below 50 this is exactly the old node_count
                          // substitution. Passing the cell's placement as
                          // the base keeps non-geometry knobs (sensor
                          // complement) from the plan's base config.
                          cfg.placement =
                              net::scaled_placement(n, cfg.placement);
                        }});
  }
  return a;
}

Axis burst_axis(
    const std::vector<std::pair<std::int64_t, std::int64_t>>& bursts) {
  Axis a{"burst", {}};
  for (const auto& [length, gap] : bursts) {
    const std::string label =
        length <= 0 ? "smooth"
                    : std::to_string(length) + "/" + std::to_string(gap);
    a.values.push_back(
        {label, [length, gap](core::ExperimentConfig& cfg) {
           cfg.burst_length_epochs = length <= 0 ? 0 : length;
           cfg.burst_gap_epochs = length <= 0 ? 0 : gap;
         }});
  }
  return a;
}

Axis sinks_axis(const std::vector<std::size_t>& sink_counts) {
  Axis a{"sinks", {}};
  for (std::size_t n : sink_counts) {
    a.values.push_back({std::to_string(n), [n](core::ExperimentConfig& cfg) {
                          // Bare counts only on the sweep axis: explicit id
                          // lists are a single-run concern (they would not
                          // transfer across a nodes axis).
                          cfg.sinks.clear();
                          cfg.sink_count = n;
                        }});
  }
  return a;
}

Axis field_axis(const std::vector<data::EnvironmentBackend>& backends) {
  Axis a{"field", {}};
  for (data::EnvironmentBackend b : backends) {
    a.values.push_back({data::backend_name(b), [b](core::ExperimentConfig& cfg) {
                          cfg.field_backend = b;
                        }});
  }
  return a;
}

Axis scale_nodes_axis() { return nodes_axis({500, 1000, 2000}); }

Axis custom_axis(std::string name, std::vector<AxisValue> values) {
  return {std::move(name), std::move(values)};
}

Axis paper_theta_axis() {
  return theta_axis({atc(), fixed_theta(3.0), fixed_theta(5.0), fixed_theta(9.0)});
}

Axis paper_relevant_axis() { return relevant_axis({0.2, 0.4, 0.6}); }

ExperimentPlan paper_grid(std::uint64_t seed) {
  ExperimentPlan plan("paper-s7-grid", paper_config(seed));
  plan.axis(paper_theta_axis()).axis(paper_relevant_axis());
  return plan;
}

}  // namespace dirq::sweep

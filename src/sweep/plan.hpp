// Declarative experiment sweeps: the paper's §7 evaluation grids as data.
//
// The evaluation (Figs. 5-7) is a grid of (theta-mode × relevant-fraction ×
// seed) cells; each bench used to hand-roll its own sequential loop over
// ExperimentConfig copies. An ExperimentPlan instead *describes* a grid:
// named axes (theta mode, relevant fraction, seed, loss rate, transport,
// topology size, or any custom knob) whose cartesian product — or an
// explicit cell list — materialises into labelled, fully-resolved
// ExperimentConfigs. SweepRunner (runner.hpp) executes a plan on a worker
// pool; ResultSinks (sink.hpp) render the outcome.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/experiment.hpp"

namespace dirq::sweep {

/// One setting of a single experiment knob: a display label ("ATC",
/// "seed=7") plus the config mutation it stands for.
struct AxisValue {
  std::string label;
  std::function<void(core::ExperimentConfig&)> apply;
};

/// A named list of settings — one dimension of the grid.
struct Axis {
  std::string name;
  std::vector<AxisValue> values;
};

/// One fully-resolved cell of a materialised plan.
struct PlanCell {
  std::size_t index = 0;  // position in plan order
  std::string label;      // "theta=ATC relevant=40%" (axis-joined) or custom
  /// (axis name, value label) pairs in axis-declaration order; empty for
  /// cells added explicitly without coordinates.
  std::vector<std::pair<std::string, std::string>> coordinates;
  core::ExperimentConfig config;

  /// Value label for a named axis, or nullptr when the cell has no such
  /// coordinate.
  [[nodiscard]] const std::string* coordinate(std::string_view axis) const;
};

/// Declarative description of an experiment grid. Compose either with
/// `axis()` calls (cartesian product, cells in row-major axis order) or
/// with explicit `cell()` calls (exactly the listed cells, in order) —
/// mixing the two styles is rejected at materialisation time.
///
/// Determinism: every cell carries its own fully-resolved config, and
/// Experiment derives all randomness from config.seed, so cells are
/// independent by construction — no seed state leaks across cells no
/// matter what order (or thread) runs them.
class ExperimentPlan {
 public:
  /// `base` is the config every axis mutation starts from.
  explicit ExperimentPlan(std::string name, core::ExperimentConfig base);

  /// Adds one cartesian dimension. Axes apply in declaration order; the
  /// last-added axis varies fastest.
  ExperimentPlan& axis(Axis a);

  /// Adds one explicit cell with a fully-resolved config.
  ExperimentPlan& cell(std::string label, core::ExperimentConfig cfg);

  /// Adds one explicit cell as a mutation of the plan's base config.
  ExperimentPlan& cell(std::string label,
                       const std::function<void(core::ExperimentConfig&)>& apply);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const core::ExperimentConfig& base() const noexcept {
    return base_;
  }

  /// Cell count after validation (throws like cells()).
  [[nodiscard]] std::size_t size() const;

  /// Validates and materialises the grid. Throws std::invalid_argument on
  /// degenerate plans: no axes and no cells, an axis with no values or an
  /// empty/duplicate name, a value with an empty label or no mutation,
  /// duplicate value labels within an axis, or axes mixed with explicit
  /// cells.
  [[nodiscard]] std::vector<PlanCell> cells() const;

 private:
  void validate() const;

  std::string name_;
  core::ExperimentConfig base_;
  std::vector<Axis> axes_;
  std::vector<PlanCell> explicit_cells_;
};

/// Shortest round-trip representation of a double ("0.5", "42", "nan").
/// Axis-value labels use it so distinct values never share (or lie about)
/// a label; the JSON sink and the canonical summary share it so both are
/// byte-stable.
std::string format_double(double value);

// --- the §7 vocabulary -------------------------------------------------------
//
// The paper's evaluated configurations, defined exactly once so every
// bench, the CLI, and the tests agree on what "the §7 grid" means.

/// §7 base: 50 nodes, 20 000 epochs, one query per 20 epochs.
core::ExperimentConfig paper_config(std::uint64_t seed = 42);

/// Theta-mode settings ("ATC" / "delta=3%").
AxisValue atc();
AxisValue fixed_theta(double pct);

/// Relevant-fraction setting ("40%").
AxisValue relevant(double fraction);

/// Named axes over the standard dimensions.
Axis theta_axis(std::vector<AxisValue> modes);
Axis relevant_axis(const std::vector<double>& fractions);
Axis seed_axis(const std::vector<std::uint64_t>& seeds);
Axis loss_axis(const std::vector<double>& rates);
Axis transport_axis(const std::vector<core::TransportKind>& transports);
/// Topology sizes; counts beyond the paper's 50 use the density-preserving
/// net::scaled_placement so large grids actually place (<= 50 is exactly
/// the paper's setup).
Axis nodes_axis(const std::vector<std::size_t>& node_counts);
/// Query-arrival shapes as (burst_length_epochs, burst_gap_epochs) pairs;
/// a non-positive length means the paper's smooth stream (label "smooth").
Axis burst_axis(
    const std::vector<std::pair<std::int64_t, std::int64_t>>& bursts);

/// Sink counts for the multi-sink query plane (spread placement; 1 is the
/// paper's single root at node 0).
Axis sinks_axis(const std::vector<std::size_t>& sink_counts);

/// Environment backends ("pinned" / "fast"; see data/fast_field.hpp).
Axis field_axis(const std::vector<data::EnvironmentBackend>& backends);

/// The large-topology tier preset: nodes 500 / 1000 / 2000.
Axis scale_nodes_axis();

/// Any other knob: name + explicit values.
Axis custom_axis(std::string name, std::vector<AxisValue> values);

/// The paper's evaluated theta settings: ATC plus fixed 3/5/9 %.
Axis paper_theta_axis();

/// The paper's relevant-node fractions: 20/40/60 %.
Axis paper_relevant_axis();

/// The full §7 ATC evaluation grid: paper_theta_axis × paper_relevant_axis
/// over paper_config(seed).
ExperimentPlan paper_grid(std::uint64_t seed = 42);

}  // namespace dirq::sweep

// SweepRunner: executes an ExperimentPlan on a worker pool.
//
// Cells of the evaluation grid are independent (Experiment derives every
// bit of randomness from its config's seed), so the runner fans them out
// over N threads and still returns results in plan order regardless of
// completion order. `threads = 1` reproduces the historical sequential
// bench loops bit-for-bit — the sweep determinism test asserts exactly
// that against a multi-threaded run.
#pragma once

#include <atomic>
#include <chrono>
#include <exception>
#include <functional>
#include <optional>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include "sweep/plan.hpp"

namespace dirq::sweep {

struct SweepOptions {
  /// Worker threads; 0 means std::thread::hardware_concurrency() (at
  /// least 1). The pool never exceeds the cell count.
  unsigned threads = 0;
  /// Optional completion callback, invoked serialised (under a mutex) as
  /// cells finish — progress reporting from the CLI. `ok` is false when
  /// the cell's experiment threw.
  std::function<void(const PlanCell&, bool ok)> progress;
};

/// One executed cell: the resolved cell, its results, and timing. When the
/// experiment threw, `error` holds the message and `results` is
/// default-constructed.
struct CellResult {
  PlanCell cell;
  core::ExperimentResults results;
  double wall_seconds = 0.0;
  std::string error;

  [[nodiscard]] bool ok() const noexcept { return error.empty(); }
};

class SweepRunner {
 public:
  SweepRunner() = default;
  explicit SweepRunner(SweepOptions opts) : opts_(std::move(opts)) {}

  /// Per-cell body for bespoke sweeps (custom worlds, replays); the
  /// default body is core::Experiment(cell.config).run().
  using CellFn = std::function<core::ExperimentResults(const PlanCell&)>;

  /// Runs the full experiment for every cell; per-cell exceptions are
  /// captured into CellResult::error, never lost or reordered.
  [[nodiscard]] std::vector<CellResult> run(const ExperimentPlan& plan) const;
  [[nodiscard]] std::vector<CellResult> run(const ExperimentPlan& plan,
                                            const CellFn& fn) const;

  /// Generic fan-out: applies `fn` to every cell on the pool and returns
  /// the mapped values in plan order. The lowest-indexed exception (if
  /// any) is rethrown after all workers join.
  template <typename Fn>
  [[nodiscard]] auto map(const ExperimentPlan& plan, Fn&& fn) const {
    using R = std::invoke_result_t<Fn&, const PlanCell&>;
    static_assert(!std::is_void_v<R>, "map requires a value-returning fn");
    const std::vector<PlanCell> cells = plan.cells();
    std::vector<std::optional<R>> slots(cells.size());
    std::vector<std::exception_ptr> errors(cells.size());
    for_each_index(cells.size(), [&](std::size_t i) {
      try {
        slots[i].emplace(fn(cells[i]));
      } catch (...) {
        errors[i] = std::current_exception();
      }
    });
    for (const std::exception_ptr& e : errors) {
      if (e) std::rethrow_exception(e);
    }
    std::vector<R> out;
    out.reserve(slots.size());
    for (std::optional<R>& s : slots) out.push_back(std::move(*s));
    return out;
  }

  /// Effective pool size for a grid of `cells` cells.
  [[nodiscard]] unsigned thread_count(std::size_t cells) const;

 private:
  /// Runs work(i) for i in [0, count) across the pool. Each index writes
  /// only its own result slot, so workers need no synchronisation beyond
  /// the shared claim counter; `work` must not throw.
  void for_each_index(std::size_t count,
                      const std::function<void(std::size_t)>& work) const;

  SweepOptions opts_;
};

/// Throws std::runtime_error naming the first failed cell. The benches
/// run all-or-nothing grids and used to let Experiment exceptions
/// propagate; with the runner capturing per-cell errors, this restores
/// that fail-fast behaviour before any result is dereferenced.
std::vector<CellResult> require_ok(std::vector<CellResult> results);

}  // namespace dirq::sweep

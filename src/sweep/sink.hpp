// Pluggable result sinks for sweep reports.
//
// A sweep report is tabular: a header (title + column names) followed by
// one rendered row per cell. Sinks receive both the rendered strings and
// the structured CellResult, so the console/TSV sinks can reproduce the
// historical bench output byte-for-byte while the JSON sink emits the
// machine-readable document (schema "dirq.sweep.v1", see README) that the
// perf-baseline tooling checks in.
#pragma once

#include <functional>
#include <initializer_list>
#include <iosfwd>
#include <sstream>
#include <string>
#include <vector>

#include "metrics/report.hpp"
#include "sweep/runner.hpp"

namespace dirq::sweep {

/// Report metadata handed to every sink before the first row.
struct SweepHeader {
  std::string title;                 // human heading / TSV block title
  std::string plan;                  // ExperimentPlan name
  std::vector<std::string> columns;  // rendered row columns
};

class ResultSink {
 public:
  virtual ~ResultSink() = default;

  virtual void begin(const SweepHeader& header) = 0;

  /// One rendered row. `cell` and `result` may be null for synthetic rows
  /// (e.g. an analytic baseline alongside measured cells, or a bespoke
  /// sweep mapped to a custom value type); structured sinks emit only
  /// what is present.
  virtual void row(const std::vector<std::string>& values, const PlanCell* cell,
                   const CellResult* result) = 0;

  virtual void end() = 0;
};

/// Aligned console table (metrics::Table), printed on end().
class ConsoleTableSink final : public ResultSink {
 public:
  explicit ConsoleTableSink(std::ostream& os) : os_(os) {}

  void begin(const SweepHeader& header) override;
  void row(const std::vector<std::string>& values, const PlanCell* cell,
           const CellResult* result) override;
  void end() override;

 private:
  std::ostream& os_;
  std::vector<metrics::Table> table_;  // 0 or 1; rebuilt per report
};

/// TSV series block (metrics::TsvBlock), printed on end().
class TsvSink final : public ResultSink {
 public:
  explicit TsvSink(std::ostream& os) : os_(os) {}

  void begin(const SweepHeader& header) override;
  void row(const std::vector<std::string>& values, const PlanCell* cell,
           const CellResult* result) override;
  void end() override;

 private:
  std::ostream& os_;
  std::vector<metrics::TsvBlock> block_;  // 0 or 1; rebuilt per report
};

/// JSON document emitter (schema "dirq.sweep.v1"). One document per
/// begin()/end() pair, written on end(). `include_timing` adds per-cell
/// wall_seconds and the process peak-RSS footer; switch it off to get
/// byte-identical documents across runs and thread counts (the CLI's
/// --no-timing, used by the determinism checks).
class JsonSink final : public ResultSink {
 public:
  explicit JsonSink(std::ostream& os, bool include_timing = true)
      : os_(os), include_timing_(include_timing) {}

  void begin(const SweepHeader& header) override;
  void row(const std::vector<std::string>& values, const PlanCell* cell,
           const CellResult* result) override;
  void end() override;

 private:
  std::ostream& os_;
  bool include_timing_;
  SweepHeader header_;
  std::ostringstream cells_;
  std::size_t rows_ = 0;
};

/// Maps one executed cell to its rendered row (aligned with the header's
/// columns).
using RowMapper = std::function<std::vector<std::string>(const CellResult&)>;

/// Drives a full report: begin, one mapped row per result (failed cells
/// render as "<error>" rows — the mapper only sees successful cells), end.
void report(const SweepHeader& header, const std::vector<CellResult>& results,
            const RowMapper& mapper, const std::vector<ResultSink*>& sinks);
void report(const SweepHeader& header, const std::vector<CellResult>& results,
            const RowMapper& mapper, std::initializer_list<ResultSink*> sinks);

/// Canonical plain-text serialisation of the complete ExperimentResults —
/// every ledger field, statistic, series, per-node counter, and record.
/// Byte-identical summaries across thread counts are exactly what the
/// sweep determinism test asserts.
std::string summarize(const core::ExperimentResults& results);

/// Process peak resident set size in KiB, or 0 when the platform doesn't
/// expose it (getrusage on POSIX).
long peak_rss_kib();

}  // namespace dirq::sweep

// Umbrella public header for the DirQ library.
//
// Quick tour (see README.md for a worked example):
//
//   sim::Rng / sim::Scheduler      — deterministic simulation substrate
//   net::random_connected(...)     — build the 50-node paper topology
//   data::Environment              — synthetic spatio-temporal sensor data
//   query::WorkloadGenerator       — paper §7 range-query stream
//   core::DirqNetwork              — the DirQ protocol instance
//   core::Experiment               — the full §7 evaluation loop
//   core::FloodingScheme           — the baseline
//   analysis::*                    — Section-5 closed-form cost model
//   metrics::audit_query           — accuracy / overshoot accounting
//   sweep::ExperimentPlan          — declarative evaluation grids
//   sweep::SweepRunner             — parallel plan execution
//   sweep::ResultSink              — console / TSV / JSON reporting
//   serve::Server                  — long-lived query front-end (dirqsim serve)
//   serve::TraceGen                — open-loop arrival streams
//   serve::ResultCache             — containment-aware range-result cache
#pragma once

#include "analysis/cost_model.hpp"
#include "core/atc.hpp"
#include "core/dirq_node.hpp"
#include "core/experiment.hpp"
#include "core/flooding.hpp"
#include "core/lmac_transport.hpp"
#include "core/lossy.hpp"
#include "core/messages.hpp"
#include "core/network.hpp"
#include "core/range_table.hpp"
#include "core/sampling.hpp"
#include "core/srt.hpp"
#include "core/transport.hpp"
#include "data/fast_field.hpp"
#include "data/field_model.hpp"
#include "data/reading_source.hpp"
#include "data/trace.hpp"
#include "mac/lmac.hpp"
#include "metrics/audit.hpp"
#include "metrics/histogram.hpp"
#include "metrics/report.hpp"
#include "net/bbox.hpp"
#include "net/placement.hpp"
#include "net/spanning_tree.hpp"
#include "net/topology.hpp"
#include "query/query.hpp"
#include "query/rate_predictor.hpp"
#include "query/workload.hpp"
#include "serve/cache.hpp"
#include "serve/front_end.hpp"
#include "serve/server.hpp"
#include "serve/trace_gen.hpp"
#include "sim/rng.hpp"
#include "sim/scheduler.hpp"
#include "sim/stats.hpp"
#include "sim/types.hpp"
#include "sweep/plan.hpp"
#include "sweep/runner.hpp"
#include "sweep/sink.hpp"

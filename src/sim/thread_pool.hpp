// Persistent worker pool for index-parallel loops.
//
// Extracted from SweepRunner::for_each_index so the same claiming loop can
// serve both inter-run fan-out (one experiment per index) and intra-run
// fan-out (one subtree shard / sensor-type batch per index inside
// DirqNetwork::process_epoch). Workers park on a condition variable
// between jobs, so a pool owned by a network costs nothing on epochs that
// run sequentially and no thread is ever created on the epoch hot path.
//
// Scheduling is dynamic (a shared atomic claim counter), so completion
// order is nondeterministic — callers must only do index-addressed writes
// (slot i belongs to index i) and merge in index order afterwards, which
// is exactly what keeps the parallel epoch path byte-identical to the
// sequential one.
#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dirq::sim {

class ThreadPool {
 public:
  /// `threads` is the total concurrency including the calling thread;
  /// 0 means std::thread::hardware_concurrency() (at least 1). A pool of
  /// size 1 spawns no workers and runs every job inline.
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total concurrency (workers + the calling thread).
  [[nodiscard]] unsigned size() const noexcept {
    return static_cast<unsigned>(workers_.size()) + 1;
  }

  /// Runs work(i) for every i in [0, count). The calling thread
  /// participates; returns after all indices completed. Exceptions are
  /// captured per index and the lowest-indexed one is rethrown after the
  /// join, so error reporting is deterministic regardless of scheduling.
  /// Not reentrant: `work` must not call parallel_for on the same pool.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& work);

  /// 0 -> hardware_concurrency (at least 1), anything else unchanged.
  [[nodiscard]] static unsigned resolve(unsigned threads) {
    return threads != 0 ? threads
                        : std::max(1u, std::thread::hardware_concurrency());
  }

 private:
  void worker_loop();
  void run_claims(const std::function<void(std::size_t)>& work,
                  std::size_t count, std::vector<std::exception_ptr>& errors);

  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  bool stop_ = false;
  std::size_t generation_ = 0;  // bumped per parallel_for; wakes workers
  unsigned active_ = 0;         // workers still inside the current job

  // Current job, valid while active_ > 0 (published under mutex_).
  const std::function<void(std::size_t)>* job_ = nullptr;
  std::size_t count_ = 0;
  std::vector<std::exception_ptr>* errors_ = nullptr;
  std::atomic<std::size_t> next_{0};
};

}  // namespace dirq::sim

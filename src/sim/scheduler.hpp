// Discrete-event scheduler: the OMNeT++ substitute at the bottom of the
// reproduction (DESIGN.md §1.1).
//
// Semantics match what DirQ needs from OMNeT++:
//   * events fire in non-decreasing timestamp order;
//   * events with equal timestamps fire in scheduling (FIFO) order;
//   * any pending event can be cancelled through its handle;
//   * scheduling during dispatch is allowed, including at the current time.
//
// Cancellation is lazy: a cancelled entry stays in the heap and is skipped
// at pop time. With the workloads in this repo (LMAC timeouts being
// re-armed every frame) this is both simpler and faster than a mutable
// indexed heap.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/types.hpp"

namespace dirq::sim {

/// Opaque identifier for a scheduled event; used to cancel it.
struct EventHandle {
  std::uint64_t id = 0;
  [[nodiscard]] bool valid() const noexcept { return id != 0; }
};

class Scheduler {
 public:
  using Callback = std::function<void()>;

  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Current simulation time: timestamp of the most recently dispatched
  /// event (0 before any dispatch).
  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Schedules `fn` at absolute time `when`. `when` must be >= now();
  /// earlier times are clamped to now().
  EventHandle schedule_at(SimTime when, Callback fn);

  /// Schedules `fn` `delay` ticks from now (delay >= 0).
  EventHandle schedule_in(SimTime delay, Callback fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Cancels a pending event. Returns true if the event was still pending
  /// (i.e. this call prevented it from firing), false if it already fired,
  /// was already cancelled, or the handle is invalid.
  bool cancel(EventHandle h);

  /// True if the event is still pending (scheduled, not fired/cancelled).
  [[nodiscard]] bool is_pending(EventHandle h) const {
    return h.valid() && live_.contains(h.id);
  }

  /// Dispatches the single earliest pending event. Returns false if the
  /// queue is empty (time does not advance).
  bool step();

  /// Runs until the queue is empty or `max_events` have been dispatched.
  /// Returns the number of events dispatched.
  std::size_t run(std::size_t max_events = SIZE_MAX);

  /// Runs all events with timestamp <= `until`. Afterwards now() == until
  /// (even if the queue drained early), so fixed-step drivers can
  /// interleave with event-driven components. Returns events dispatched.
  std::size_t run_until(SimTime until);

  /// Number of pending (non-cancelled) events.
  [[nodiscard]] std::size_t pending() const noexcept { return live_.size(); }

  /// Total events dispatched since construction.
  [[nodiscard]] std::uint64_t dispatched() const noexcept { return dispatched_; }

 private:
  struct Entry {
    SimTime when;
    std::uint64_t seq;  // tie-break: FIFO among equal timestamps
    std::uint64_t id;
    Callback fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  bool pop_one();

  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  std::unordered_set<std::uint64_t> live_;  // ids scheduled and not yet fired/cancelled
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_id_ = 1;
  std::uint64_t dispatched_ = 0;
};

}  // namespace dirq::sim

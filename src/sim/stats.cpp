#include "sim/stats.hpp"

namespace dirq::sim {

double Histogram::quantile(double q) const {
  if (total_ == 0) return lo_;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total_);
  double cum = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = cum + static_cast<double>(counts_[i]);
    if (next >= target) {
      const double within =
          counts_[i] == 0 ? 0.0 : (target - cum) / static_cast<double>(counts_[i]);
      return bin_lo(i) + within * (bin_hi(i) - bin_lo(i));
    }
    cum = next;
  }
  return hi_;
}

}  // namespace dirq::sim

#include "sim/scheduler.hpp"

#include <cassert>
#include <utility>

namespace dirq::sim {

EventHandle Scheduler::schedule_at(SimTime when, Callback fn) {
  assert(when >= now_ && "cannot schedule into the past");
  if (when < now_) when = now_;
  EventHandle h{next_id_++};
  queue_.push(Entry{when, next_seq_++, h.id, std::move(fn)});
  live_.insert(h.id);
  return h;
}

bool Scheduler::cancel(EventHandle h) {
  if (!h.valid()) return false;
  // Erasing from the live set is the cancellation; the heap entry becomes
  // stale and is skipped when it reaches the top.
  return live_.erase(h.id) == 1;
}

bool Scheduler::step() { return pop_one(); }

std::size_t Scheduler::run(std::size_t max_events) {
  std::size_t n = 0;
  while (n < max_events && pop_one()) ++n;
  return n;
}

std::size_t Scheduler::run_until(SimTime until) {
  std::size_t n = 0;
  while (!queue_.empty()) {
    const Entry& top = queue_.top();
    if (!live_.contains(top.id)) {  // stale (cancelled): discard cheaply
      queue_.pop();
      continue;
    }
    if (top.when > until) break;
    if (!pop_one()) break;
    ++n;
  }
  if (now_ < until) now_ = until;
  return n;
}

bool Scheduler::pop_one() {
  while (!queue_.empty()) {
    // const_cast is safe: the entry is removed from the queue immediately
    // after the move and never compared again.
    Entry top = std::move(const_cast<Entry&>(queue_.top()));
    queue_.pop();
    auto it = live_.find(top.id);
    if (it == live_.end()) continue;  // cancelled: lazily discard
    live_.erase(it);
    assert(top.when >= now_);
    now_ = top.when;
    ++dispatched_;
    top.fn();
    return true;
  }
  return false;
}

}  // namespace dirq::sim

// Deterministic random-number generation with named substreams.
//
// Every randomised component of the reproduction (placement, field model,
// workload, MAC jitter, ...) takes an explicit `Rng`, derived from a single
// master seed through SplitMix64 so that changing one component's draw
// count never perturbs another component's stream. This is what makes the
// figure benches exactly reproducible run-to-run.
#pragma once

#include <cstdint>
#include <random>
#include <span>
#include <string_view>

namespace dirq::sim {

/// SplitMix64 step: the standard seeding/stream-splitting mixer.
/// Public because tests assert its avalanche behaviour.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// FNV-1a hash of a label, used to derive named substreams.
constexpr std::uint64_t fnv1a(std::string_view s) noexcept {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

/// Seeded wrapper around std::mt19937_64 with convenience distributions.
///
/// Copyable (the engine is just state); copying forks the stream, which is
/// occasionally useful in tests but should be avoided in simulation code —
/// prefer `substream()` which derives an independent generator.
class Rng {
 public:
  /// Seeds the engine. A literal zero seed is remapped to a fixed non-zero
  /// constant (mt19937_64 handles zero fine, but remapping keeps substream
  /// derivation well-mixed for trivially chosen master seeds).
  explicit Rng(std::uint64_t seed) : engine_(mix_seed(seed)), seed_(seed) {}

  /// Derives an independent generator for a named component.
  /// rng.substream("placement") and rng.substream("field") never collide
  /// regardless of how many values either one consumes.
  [[nodiscard]] Rng substream(std::string_view label) const {
    std::uint64_t s = seed_ ^ fnv1a(label);
    return Rng(splitmix64(s));
  }

  /// Derives an independent generator for an indexed component
  /// (e.g. one stream per node).
  [[nodiscard]] Rng substream(std::string_view label, std::uint64_t index) const {
    std::uint64_t s = seed_ ^ fnv1a(label);
    s = splitmix64(s) ^ (index * 0x9E3779B97F4A7C15ULL);
    return Rng(splitmix64(s));
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Gaussian with the given mean and standard deviation.
  double normal(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Exponential with the given rate (lambda).
  double exponential(double lambda) {
    return std::exponential_distribution<double>(lambda)(engine_);
  }

  /// True with probability p (clamped to [0, 1]).
  bool bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Uniformly chosen index into a container of the given size; size must
  /// be non-zero.
  std::size_t index(std::size_t size) {
    return static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(size) - 1));
  }

  /// Uniformly chosen element of a non-empty span.
  template <typename T>
  const T& pick(std::span<const T> items) {
    return items[index(items.size())];
  }

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::span<T> items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::size_t j = index(i);
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Raw 64-bit draw, for callers building their own distributions.
  std::uint64_t next_u64() { return engine_(); }

  /// The seed this generator was constructed with.
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

 private:
  static std::uint64_t mix_seed(std::uint64_t seed) {
    std::uint64_t s = seed == 0 ? 0x853C49E6748FEA9BULL : seed;
    return splitmix64(s);
  }

  std::mt19937_64 engine_;
  std::uint64_t seed_;
};

}  // namespace dirq::sim

// Sorted-vector associative container for the simulation hot path.
//
// The per-node DirQ state is a handful of tiny keyed collections: range
// tables keyed by sensor type (<= a few types), child tuples keyed by node
// id (<= k = 8 children), child bounding boxes. std::map's node-per-entry
// allocation and pointer chasing dominate the epoch loop at large
// topologies; a sorted vector of pairs has the same ordered iteration
// (so message emission order — and therefore every golden — is unchanged)
// with contiguous storage and no per-entry allocation.
//
// Deliberately minimal: exactly the operations the core layer uses.
// Iterator/pointer stability across mutation is NOT provided (callers
// re-look-up after insert/erase, as with any vector).
#pragma once

#include <algorithm>
#include <utility>
#include <vector>

namespace dirq::sim {

template <typename Key, typename Value>
class FlatMap {
 public:
  using value_type = std::pair<Key, Value>;
  using iterator = typename std::vector<value_type>::iterator;
  using const_iterator = typename std::vector<value_type>::const_iterator;

  [[nodiscard]] iterator begin() noexcept { return entries_.begin(); }
  [[nodiscard]] iterator end() noexcept { return entries_.end(); }
  [[nodiscard]] const_iterator begin() const noexcept { return entries_.begin(); }
  [[nodiscard]] const_iterator end() const noexcept { return entries_.end(); }

  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  void clear() noexcept { entries_.clear(); }

  [[nodiscard]] iterator find(const Key& key) {
    const iterator it = lower_bound(key);
    return it != entries_.end() && it->first == key ? it : entries_.end();
  }
  [[nodiscard]] const_iterator find(const Key& key) const {
    const const_iterator it = lower_bound(key);
    return it != entries_.end() && it->first == key ? it : entries_.end();
  }
  [[nodiscard]] bool contains(const Key& key) const {
    return find(key) != entries_.end();
  }

  /// Value for `key`, default-constructed on first access (std::map's
  /// operator[] semantics).
  Value& operator[](const Key& key) {
    iterator it = lower_bound(key);
    if (it == entries_.end() || it->first != key) {
      it = entries_.emplace(it, key, Value{});
    }
    return it->second;
  }

  /// Returns true when the key was newly inserted (assignment otherwise).
  bool insert_or_assign(const Key& key, Value value) {
    iterator it = lower_bound(key);
    if (it != entries_.end() && it->first == key) {
      it->second = std::move(value);
      return false;
    }
    entries_.emplace(it, key, std::move(value));
    return true;
  }

  /// Returns the number of erased entries (0 or 1).
  std::size_t erase(const Key& key) {
    const iterator it = find(key);
    if (it == entries_.end()) return 0;
    entries_.erase(it);
    return 1;
  }

 private:
  [[nodiscard]] iterator lower_bound(const Key& key) {
    return std::lower_bound(
        entries_.begin(), entries_.end(), key,
        [](const value_type& e, const Key& k) { return e.first < k; });
  }
  [[nodiscard]] const_iterator lower_bound(const Key& key) const {
    return std::lower_bound(
        entries_.begin(), entries_.end(), key,
        [](const value_type& e, const Key& k) { return e.first < k; });
  }

  std::vector<value_type> entries_;
};

}  // namespace dirq::sim

// Minimal leveled logger. Off (Warn) by default so figure benches stay
// quiet; integration tests raise the level to trace protocol behaviour.
// Deliberately not thread-aware: the simulator is single-threaded by
// design (deterministic event order), so a plain stream suffices.
#pragma once

#include <iostream>
#include <sstream>
#include <string_view>

namespace dirq::sim {

enum class LogLevel : int { Trace = 0, Debug = 1, Info = 2, Warn = 3, Error = 4, Off = 5 };

class Logger {
 public:
  /// Process-wide logger used by the library.
  static Logger& global() {
    static Logger instance;
    return instance;
  }

  void set_level(LogLevel level) noexcept { level_ = level; }
  [[nodiscard]] LogLevel level() const noexcept { return level_; }
  [[nodiscard]] bool enabled(LogLevel level) const noexcept {
    return static_cast<int>(level) >= static_cast<int>(level_);
  }

  void set_sink(std::ostream* sink) noexcept { sink_ = sink; }

  void write(LogLevel level, std::string_view component, std::string_view message) {
    if (!enabled(level) || sink_ == nullptr) return;
    *sink_ << '[' << level_name(level) << "] " << component << ": " << message << '\n';
  }

  static constexpr std::string_view level_name(LogLevel level) noexcept {
    switch (level) {
      case LogLevel::Trace: return "trace";
      case LogLevel::Debug: return "debug";
      case LogLevel::Info: return "info";
      case LogLevel::Warn: return "warn";
      case LogLevel::Error: return "error";
      case LogLevel::Off: return "off";
    }
    return "?";
  }

 private:
  LogLevel level_ = LogLevel::Warn;
  std::ostream* sink_ = &std::cerr;
};

/// Streams `args` to the global logger if `level` is enabled; the message
/// is only materialised when enabled, so disabled logging is nearly free.
template <typename... Args>
void log(LogLevel level, std::string_view component, const Args&... args) {
  Logger& g = Logger::global();
  if (!g.enabled(level)) return;
  std::ostringstream oss;
  (oss << ... << args);
  g.write(level, component, oss.str());
}

}  // namespace dirq::sim

// Statistics primitives used across the reproduction:
//   Counter      — named monotonically increasing tally (energy units,
//                  message counts).
//   RunningStat  — Welford online mean/variance; ATC uses one per node to
//                  track the rate of variation of the measured parameter.
//   TimeSeries   — fixed-width time bins; Fig. 6 is "update messages per
//                  100-epoch bin" which is exactly this.
//   Histogram    — fixed-width value bins for distribution summaries.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hpp"

namespace dirq::sim {

/// Named monotonically increasing counter.
class Counter {
 public:
  Counter() = default;
  explicit Counter(std::string name) : name_(std::move(name)) {}

  void add(std::int64_t delta = 1) noexcept { value_ += delta; }
  [[nodiscard]] std::int64_t value() const noexcept { return value_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  void reset() noexcept { value_ = 0; }

 private:
  std::string name_;
  std::int64_t value_ = 0;
};

/// Welford's online algorithm for mean / variance / min / max.
/// Numerically stable for the 20 000-sample-per-node streams used here.
class RunningStat {
 public:
  void push(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Population variance (biased); 0 for fewer than 2 samples.
  [[nodiscard]] double variance() const noexcept {
    return n_ >= 2 ? m2_ / static_cast<double>(n_) : 0.0;
  }
  /// Sample variance (unbiased); 0 for fewer than 2 samples.
  [[nodiscard]] double sample_variance() const noexcept {
    return n_ >= 2 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const noexcept { return std::sqrt(variance()); }
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }

  void reset() noexcept { *this = RunningStat{}; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Exponentially weighted moving average with configurable smoothing.
/// Used by the query-rate predictor and by ATC's local rate tracker.
class Ewma {
 public:
  explicit Ewma(double alpha) : alpha_(alpha) {}

  void push(double x) noexcept {
    if (!initialized_) {
      value_ = x;
      initialized_ = true;
    } else {
      value_ = alpha_ * x + (1.0 - alpha_) * value_;
    }
  }

  [[nodiscard]] bool initialized() const noexcept { return initialized_; }
  [[nodiscard]] double value() const noexcept { return value_; }
  [[nodiscard]] double alpha() const noexcept { return alpha_; }
  void reset() noexcept { initialized_ = false; value_ = 0.0; }

 private:
  double alpha_;
  double value_ = 0.0;
  bool initialized_ = false;
};

/// Accumulates events into fixed-width time bins indexed from t = 0.
/// Fig. 6 ("total update messages transmitted every 100 epochs") is a
/// TimeSeries with bin_width = 100 epochs.
class TimeSeries {
 public:
  explicit TimeSeries(std::int64_t bin_width) : bin_width_(bin_width) {}

  /// Adds `count` events at time `t` (>= 0, arbitrary order allowed).
  void record(std::int64_t t, double count = 1.0) {
    if (t < 0) t = 0;
    const auto bin = static_cast<std::size_t>(t / bin_width_);
    if (bin >= bins_.size()) bins_.resize(bin + 1, 0.0);
    bins_[bin] += count;
  }

  [[nodiscard]] std::int64_t bin_width() const noexcept { return bin_width_; }
  [[nodiscard]] std::size_t bin_count() const noexcept { return bins_.size(); }
  [[nodiscard]] double bin(std::size_t i) const { return i < bins_.size() ? bins_[i] : 0.0; }
  [[nodiscard]] const std::vector<double>& bins() const noexcept { return bins_; }

  [[nodiscard]] double total() const noexcept {
    double s = 0.0;
    for (double b : bins_) s += b;
    return s;
  }

  /// Mean over bins [first, last) clamped to the recorded range.
  [[nodiscard]] double mean_over(std::size_t first, std::size_t last) const {
    last = std::min(last, bins_.size());
    if (first >= last) return 0.0;
    double s = 0.0;
    for (std::size_t i = first; i < last; ++i) s += bins_[i];
    return s / static_cast<double>(last - first);
  }

 private:
  std::int64_t bin_width_;
  std::vector<double> bins_;
};

/// Fixed-width value histogram over [lo, hi); out-of-range samples clamp
/// into the edge bins so totals always reconcile.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins)
      : lo_(lo), hi_(hi), counts_(bins, 0) {}

  void push(double x) noexcept {
    const double span = hi_ - lo_;
    auto idx = static_cast<std::int64_t>((x - lo_) / span * static_cast<double>(counts_.size()));
    idx = std::clamp<std::int64_t>(idx, 0, static_cast<std::int64_t>(counts_.size()) - 1);
    ++counts_[static_cast<std::size_t>(idx)];
    ++total_;
  }

  [[nodiscard]] std::size_t bin_count() const noexcept { return counts_.size(); }
  [[nodiscard]] std::uint64_t count(std::size_t i) const { return counts_.at(i); }
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] double bin_lo(std::size_t i) const {
    return lo_ + (hi_ - lo_) * static_cast<double>(i) / static_cast<double>(counts_.size());
  }
  [[nodiscard]] double bin_hi(std::size_t i) const { return bin_lo(i + 1); }

  /// Value below which the given fraction of samples fall (0..1), by
  /// linear interpolation within the containing bin.
  [[nodiscard]] double quantile(double q) const;

 private:
  double lo_, hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace dirq::sim

#include "sim/thread_pool.hpp"

namespace dirq::sim {

ThreadPool::ThreadPool(unsigned threads) {
  const unsigned n = resolve(threads);
  workers_.reserve(n - 1);
  for (unsigned t = 1; t < n; ++t) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_start_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::run_claims(const std::function<void(std::size_t)>& work,
                            std::size_t count,
                            std::vector<std::exception_ptr>& errors) {
  for (std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
       i < count; i = next_.fetch_add(1, std::memory_order_relaxed)) {
    try {
      work(i);
    } catch (...) {
      errors[i] = std::current_exception();
    }
  }
}

void ThreadPool::worker_loop() {
  std::size_t seen = 0;
  for (;;) {
    const std::function<void(std::size_t)>* job = nullptr;
    std::size_t count = 0;
    std::vector<std::exception_ptr>* errors = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_start_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      job = job_;
      count = count_;
      errors = errors_;
    }
    run_claims(*job, count, *errors);
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (--active_ == 0) cv_done_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& work) {
  if (workers_.empty() || count <= 1) {
    for (std::size_t i = 0; i < count; ++i) work(i);
    return;
  }
  std::vector<std::exception_ptr> errors(count);
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    job_ = &work;
    count_ = count;
    errors_ = &errors;
    next_.store(0, std::memory_order_relaxed);
    active_ = static_cast<unsigned>(workers_.size());
    ++generation_;
  }
  cv_start_.notify_all();
  run_claims(work, count, errors);  // the calling thread is part of the pool
  {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_done_.wait(lock, [&] { return active_ == 0; });
    job_ = nullptr;
    errors_ = nullptr;
  }
  for (std::exception_ptr& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

}  // namespace dirq::sim

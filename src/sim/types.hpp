// Core value types shared by every layer of the DirQ reproduction.
//
// All identifiers are strong-ish integer aliases kept deliberately cheap:
// the simulation moves millions of events per figure run, so node ids and
// times must stay register-sized trivially-copyable values.
#pragma once

#include <cstdint>
#include <limits>
#include <string_view>

namespace dirq {

/// Discrete simulation time in integer ticks. One *epoch* (the paper's
/// sensing period, [12]) is `kTicksPerEpoch` ticks so that sub-epoch events
/// (LMAC slots) can be scheduled without floating-point time.
using SimTime = std::int64_t;

/// Number of scheduler ticks per sensing epoch. LMAC frames subdivide this.
inline constexpr SimTime kTicksPerEpoch = 1024;

/// Epochs per "hour" of simulated wall-clock; the root re-broadcasts its
/// EHr (expected-queries-per-hour) estimate on this period (paper §4).
/// The paper runs 20 000 epochs; with 3600 epochs/hour that is ~5.5 hours,
/// matching the paper's "once every hour" cadence at a realistic scale.
inline constexpr std::int64_t kEpochsPerHour = 3600;

/// Node identifier: dense index into the topology's node array.
using NodeId = std::uint32_t;

/// Sentinel for "no node" (e.g. parent of the root in the spanning tree).
inline constexpr NodeId kNoNode = std::numeric_limits<NodeId>::max();

/// Spanning-tree identifier: dense index into a net::TreeSet. The paper's
/// single-sink deployment is tree 0; the multi-sink query plane keys every
/// per-tree protocol slot (parent, range tables, thresholds) by this.
using TreeId = std::uint32_t;

/// Sensor type identifier. The paper's evaluation uses 4 types
/// (e.g. temperature, humidity, light, soil moisture); the architecture
/// supports post-deployment addition of new types (§4.2), so this is an
/// open integer domain rather than a closed enum.
using SensorType = std::uint16_t;

inline constexpr SensorType kSensorTemperature = 0;
inline constexpr SensorType kSensorHumidity = 1;
inline constexpr SensorType kSensorLight = 2;
inline constexpr SensorType kSensorSoilMoisture = 3;

/// Human-readable name for the four canonical sensor types.
constexpr std::string_view sensor_type_name(SensorType t) noexcept {
  switch (t) {
    case kSensorTemperature: return "temperature";
    case kSensorHumidity: return "humidity";
    case kSensorLight: return "light";
    case kSensorSoilMoisture: return "soil_moisture";
    default: return "sensor";
  }
}

/// Energy cost accounting unit (paper §5: transmit = 1 unit, receive = 1
/// unit). Kept as a 64-bit count; figure runs accumulate millions of units.
using CostUnits = std::int64_t;

/// Monotonically increasing query identifier.
using QueryId = std::uint64_t;

}  // namespace dirq

// Counter-based random-number generation: O(1) random access.
//
// `Rng` (rng.hpp) is a sequential engine — drawing the value for epoch
// 10 000 means drawing the 9 999 values before it, which makes the
// synthetic environment the scaling floor of large runs (ROADMAP "Known
// floor"). `CounterRng` instead derives every value by hashing a
// (stream, counter) key through the SplitMix64 finaliser: any draw is a
// pure function of its key, so a consumer can jump straight to epoch
// 10 000, skip suppressed nodes entirely, and re-query out of order while
// getting bit-identical values every time.
//
// The generator IS SplitMix64 viewed as a counter mode: splitmix's state
// after n steps is seed + n*gamma, so hashing `stream + counter*gamma`
// through the finaliser yields exactly the splitmix output sequence with
// random access. Statistical quality therefore matches sim::Rng's seeding
// mixer, which is well beyond what a synthetic sensor field needs.
//
// `normal_at` trades exactness for speed: popcount of the 64 hashed bits
// is Binomial(64, 1/2) (mean 32, variance 16) — a CLT gaussian with
// |excess kurtosis| < 0.04 — smoothed into a continuous density by one
// uniform and rescaled to unit variance. Tails truncate at ±8.1 sigma.
// That is indistinguishable from a true gaussian for field-noise purposes
// and costs a popcount instead of log/sqrt/trig; do not use it for
// tail-sensitive statistics.
#pragma once

#include <bit>
#include <cstdint>
#include <string_view>

#include "sim/rng.hpp"

namespace dirq::sim {

/// SplitMix64 finaliser applied to an explicit (stream, counter) key.
/// Public because tests assert its avalanche / random-access behaviour.
constexpr std::uint64_t counter_hash(std::uint64_t stream,
                                     std::uint64_t counter) noexcept {
  std::uint64_t z = stream + counter * 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Stateless random-access generator over a named stream. Copyable and
/// trivially cheap (one word); every *_at accessor is const and pure.
class CounterRng {
 public:
  /// Derives the stream key from a seed (zero is remapped like sim::Rng's
  /// seeding so trivially chosen master seeds stay well-mixed).
  explicit constexpr CounterRng(std::uint64_t seed) noexcept
      : stream_(mix_seed(seed)) {}

  /// Derives an independent stream for a named component, mirroring
  /// Rng::substream — the two layouts share the fnv1a label space.
  [[nodiscard]] constexpr CounterRng substream(std::string_view label) const noexcept {
    return CounterRng(stream_ ^ fnv1a(label));
  }

  /// Derives an independent stream for an indexed component (one stream
  /// per node, per grid cell, ...).
  [[nodiscard]] constexpr CounterRng substream(std::string_view label,
                                               std::uint64_t index) const noexcept {
    std::uint64_t s = stream_ ^ fnv1a(label);
    s += 0x9E3779B97F4A7C15ULL;  // one splitmix step before indexing
    return CounterRng(counter_hash(s, index));
  }

  /// Raw 64-bit value at `counter`. O(1), order-independent.
  [[nodiscard]] constexpr std::uint64_t u64_at(std::uint64_t counter) const noexcept {
    return counter_hash(stream_, counter);
  }

  /// Uniform double in [0, 1) at `counter` (53-bit resolution).
  [[nodiscard]] constexpr double uniform_at(std::uint64_t counter) const noexcept {
    return static_cast<double>(u64_at(counter) >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi) at `counter`.
  [[nodiscard]] constexpr double uniform_at(std::uint64_t counter, double lo,
                                            double hi) const noexcept {
    return lo + (hi - lo) * uniform_at(counter);
  }

  /// Approximate standard normal at `counter` (see the header comment for
  /// the accuracy contract).
  [[nodiscard]] double normal_at(std::uint64_t counter) const noexcept {
    const std::uint64_t z = u64_at(counter);
    // Second finaliser round decorrelates the smoothing uniform from the
    // popcount of z (they would otherwise share bits).
    std::uint64_t w = z + 0x9E3779B97F4A7C15ULL;
    w = (w ^ (w >> 30)) * 0xBF58476D1CE4E5B9ULL;
    w = (w ^ (w >> 27)) * 0x94D049BB133111EBULL;
    w ^= w >> 31;
    const double u = static_cast<double>(w >> 11) * 0x1.0p-53;
    // Binomial(64, 1/2) + Uniform(-1/2, 1/2): variance 16 + 1/12.
    constexpr double kInvSd = 0.24935649168959823;  // 1/sqrt(16 + 1/12)
    return (static_cast<double>(std::popcount(z)) - 32.0 + u - 0.5) * kInvSd;
  }

  /// Approximate normal with the given mean and standard deviation.
  [[nodiscard]] double normal_at(std::uint64_t counter, double mean,
                                 double stddev) const noexcept {
    return mean + stddev * normal_at(counter);
  }

  /// The derived stream key (diagnostics and tests).
  [[nodiscard]] constexpr std::uint64_t stream() const noexcept { return stream_; }

 private:
  static constexpr std::uint64_t mix_seed(std::uint64_t seed) noexcept {
    return seed == 0 ? 0x853C49E6748FEA9BULL : seed;
  }

  std::uint64_t stream_;
};

}  // namespace dirq::sim

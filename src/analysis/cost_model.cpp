#include "analysis/cost_model.hpp"

#include <algorithm>
#include <limits>

namespace dirq::analysis {

std::int64_t ipow(std::int64_t k, std::int64_t e) {
  if (k < 0 || e < 0) throw std::invalid_argument("ipow: negative input");
  std::int64_t r = 1;
  for (std::int64_t i = 0; i < e; ++i) {
    if (k != 0 && r > std::numeric_limits<std::int64_t>::max() / k) {
      throw std::overflow_error("ipow: overflow");
    }
    r *= k;
  }
  return r;
}

namespace {
void require_tree(std::int64_t k, std::int64_t d) {
  if (k < 2) throw std::invalid_argument("cost model requires k >= 2");
  if (d < 0) throw std::invalid_argument("cost model requires d >= 0");
}
}  // namespace

std::int64_t tree_nodes(std::int64_t k, std::int64_t d) {
  require_tree(k, d);
  return (ipow(k, d + 1) - 1) / (k - 1);
}

std::int64_t tree_leaves(std::int64_t k, std::int64_t d) {
  require_tree(k, d);
  return ipow(k, d);
}

std::int64_t flooding_cost_graph(std::int64_t nodes, std::int64_t links) {
  return nodes + 2 * links;  // Eq. (3)
}

std::int64_t flooding_cost(std::int64_t k, std::int64_t d) {
  require_tree(k, d);
  // Eq. (4): (3 k^{d+1} - 2k - 1)/(k - 1). Equivalent to N + 2(N - 1).
  return (3 * ipow(k, d + 1) - 2 * k - 1) / (k - 1);
}

std::int64_t cqd_max(std::int64_t k, std::int64_t d) {
  require_tree(k, d);
  // Eq. (6): (k^d + k^{d+1} - k - 1)/(k - 1).
  // Derivation: every edge carries the query once (N - 1 receptions); the
  // senders are the non-leaf nodes, each transmitting k unicasts
  // (N - 1 transmissions shared among non-leaves). Total 2(N - 1) minus
  // nothing — but leaves transmit nothing, which the closed form already
  // accounts for: 2(N-1) = (k^d + k^{d+1} - ... ) identity checked in tests.
  return (ipow(k, d) + ipow(k, d + 1) - k - 1) / (k - 1);
}

std::int64_t cud_max(std::int64_t k, std::int64_t d) {
  require_tree(k, d);
  // Eq. (7): 2 (k^{d+1} - k)/(k - 1) = 2 * (N - 1) ... one update message
  // up every tree edge, each costing tx + rx.
  return 2 * (ipow(k, d + 1) - k) / (k - 1);
}

double f_max(std::int64_t k, std::int64_t d) {
  require_tree(k, d);
  // Eq. (8): largest f with CQDmax + f * CUDmax <= CFTotal.
  return static_cast<double>(flooding_cost(k, d) - cqd_max(k, d)) /
         static_cast<double>(cud_max(k, d));
}

double ctd_max(std::int64_t k, std::int64_t d, double f) {
  require_tree(k, d);
  return static_cast<double>(cqd_max(k, d)) +
         f * static_cast<double>(cud_max(k, d));
}

std::int64_t cqd_max_graph(std::int64_t nodes, std::int64_t internal_nodes) {
  if (nodes < 1 || internal_nodes < 0 || internal_nodes >= nodes) {
    throw std::invalid_argument("cqd_max_graph: bad node counts");
  }
  return internal_nodes + (nodes - 1);
}

std::int64_t cud_max_graph(std::int64_t nodes) {
  if (nodes < 1) throw std::invalid_argument("cud_max_graph: bad node count");
  return 2 * (nodes - 1);
}

double f_max_graph(std::int64_t nodes, std::int64_t links,
                   std::int64_t internal_nodes) {
  if (nodes < 2) throw std::invalid_argument("f_max_graph: need >= 2 nodes");
  return static_cast<double>(flooding_cost_graph(nodes, links) -
                             cqd_max_graph(nodes, internal_nodes)) /
         static_cast<double>(cud_max_graph(nodes));
}

double umax_messages_per_hour(std::int64_t nodes, std::int64_t links,
                              std::int64_t internal_nodes,
                              double expected_queries_per_hour) {
  if (nodes < 2) return 0.0;
  // The evaluation order matches the historical inline computation exactly
  // (max * EHr, then * (N-1)) so recorded series stay double-identical.
  return std::max(0.0, f_max_graph(nodes, links, internal_nodes)) *
         expected_queries_per_hour * static_cast<double>(nodes - 1);
}

}  // namespace dirq::analysis

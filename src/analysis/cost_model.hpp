// Section-5 analytical cost model: closed forms for flooding and DirQ on a
// complete k-ary tree of depth d, and the fMax bound that the Adaptive
// Threshold Control enforces at runtime.
//
// Cost unit: 1 per transmission, 1 per reception (paper §5). The tree has
//   N(k, d)  = (k^{d+1} - 1)/(k - 1) nodes  and  N - 1 links.
//
// Eq. (3): CFTotal = N + 2 * links                 (broadcast tx + all rx)
// Eq. (4): CFTotal = (3 k^{d+1} - 2k - 1)/(k - 1)  (same, expanded)
// Eq. (6): CQDmax  = (k^d + k^{d+1} - k - 1)/(k - 1)
//          — worst-case directed dissemination: every non-leaf transmits
//            down to all children (unicast, so tx = rx); leaves only
//            receive.
// Eq. (7): CUDmax  = 2 (k^{d+1} - k)/(k - 1)
//          — every non-root node sends one update to its parent (tx = rx).
// Eq. (8): fMax    = (CFTotal - CQDmax) / CUDmax
//          — max updates per query for CTDmax = CQDmax + f*CUDmax to stay
//            below CFTotal. Paper's worked example: k=2, d=4 -> ~0.76.
//
// All functions are exact in integer arithmetic where possible and require
// k >= 2 (a 1-ary "tree" is a chain; the k-1 denominators vanish).
#pragma once

#include <cstdint>
#include <stdexcept>

#include "sim/types.hpp"

namespace dirq::analysis {

/// k^e for small exponents, checked against overflow.
std::int64_t ipow(std::int64_t k, std::int64_t e);

/// Node count of a complete k-ary tree of depth d (root at depth 0).
std::int64_t tree_nodes(std::int64_t k, std::int64_t d);

/// Leaf count: k^d.
std::int64_t tree_leaves(std::int64_t k, std::int64_t d);

/// Eq. (3)/(4): total cost of flooding one query.
std::int64_t flooding_cost(std::int64_t k, std::int64_t d);

/// Flooding cost of an arbitrary topology: N + 2 * links (Eq. 3).
std::int64_t flooding_cost_graph(std::int64_t nodes, std::int64_t links);

/// Eq. (6): worst-case cost of directing one query (all leaves relevant).
std::int64_t cqd_max(std::int64_t k, std::int64_t d);

/// Eq. (7): worst-case cost of one network-wide update wave.
std::int64_t cud_max(std::int64_t k, std::int64_t d);

/// Eq. (8): maximum updates per query keeping DirQ below flooding.
double f_max(std::int64_t k, std::int64_t d);

/// CTDmax for a given update frequency f (updates per query): Eq. before (8).
double ctd_max(std::int64_t k, std::int64_t d, double f);

// --- graph generalisations ---------------------------------------------
// The paper derives Eqs. (4)-(8) for a complete k-ary tree; its simulated
// network (50 nodes, random placement) is not one. The same §5 arguments
// applied to an arbitrary rooted tree give the forms below; the root uses
// them at runtime to derive Umax/Hr for the actual network (DESIGN.md §1.7).

/// Eq. (6) generalised: worst-case directed dissemination over a tree with
/// `nodes` members of which `internal_nodes` have children — one multicast
/// transmission per internal node, one reception per non-root node.
std::int64_t cqd_max_graph(std::int64_t nodes, std::int64_t internal_nodes);

/// Eq. (7) generalised: one update (tx + rx) across each tree edge.
std::int64_t cud_max_graph(std::int64_t nodes);

/// Eq. (8) generalised: (CFTotal(graph) - CQDmax) / CUDmax.
double f_max_graph(std::int64_t nodes, std::int64_t links,
                   std::int64_t internal_nodes);

/// Umax/Hr in update *messages* per hour (Fig. 6's unit): fMax(graph) is
/// in network-wide update waves per query, one wave is nodes - 1
/// messages, and a negative fMax (flooding already cheaper than one
/// directed dissemination) clamps to a zero budget. Single source of
/// truth for the value the root floods in the hourly EHr broadcast and
/// for the per-hour series the experiment driver records — the two must
/// agree bit-for-bit. Returns 0 when the tree has fewer than 2 members.
double umax_messages_per_hour(std::int64_t nodes, std::int64_t links,
                              std::int64_t internal_nodes,
                              double expected_queries_per_hour);

}  // namespace dirq::analysis

// LMAC reimplementation (van Hoesel & Havinga, the paper's ref [2]).
//
// LMAC is a TDMA MAC with a distributed, self-organising slot election:
// each node owns one slot per frame, chosen so that no node within two
// hops owns the same slot; in its slot a node transmits a control section
// (its view of occupied slots) followed by its data section. DirQ consumes
// exactly two things from LMAC (paper §4.2):
//
//   1. slot-synchronous delivery of its unicast/broadcast messages, and
//   2. cross-layer notifications when a neighbour dies (missed control
//      messages for `timeout_frames` frames) or appears (control message
//      heard in a previously silent slot).
//
// Faithfulness notes (documented deviations):
//   * The initial election is computed as the converged 2-hop-exclusive
//     assignment (greedy, BFS order from the root) instead of replaying
//     LMAC's multi-frame bootstrap gossip; the *runtime* behaviour —
//     occupied-slot bitmasks, join-by-listening, timeout-based death
//     detection — is modelled event-by-event. DirQ never observes the
//     bootstrap, only the converged schedule, so this preserves every
//     behaviour DirQ depends on.
//   * A slot's data section carries all queued messages (no fragmentation).
//     The paper's cost unit is per logical message, which we count.
#pragma once

#include <any>
#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <vector>

#include "net/topology.hpp"
#include "sim/scheduler.hpp"
#include "sim/types.hpp"

namespace dirq::mac {

struct LmacConfig {
  std::size_t slots_per_frame = 32;  // LMAC deployments typically use 32
  SimTime ticks_per_slot = 32;       // 32 slots x 32 ticks = 1024 = 1 epoch
  int timeout_frames = 4;            // frames of silence before a neighbour
                                     // is declared dead
  [[nodiscard]] SimTime frame_ticks() const noexcept {
    return static_cast<SimTime>(slots_per_frame) * ticks_per_slot;
  }
};

inline constexpr int kNoSlot = -1;

/// A message riding in a node's data section.
struct Frame {
  NodeId src = kNoNode;
  NodeId dst = kNoNode;  // kNoNode = link-layer broadcast
  std::any payload;
};

/// Upper-layer (DirQ) interface: delivery plus the cross-layer topology
/// notifications of paper §4.2.
class LinkObserver {
 public:
  virtual ~LinkObserver() = default;
  virtual void on_message(NodeId /*self*/, const Frame& /*frame*/) {}
  virtual void on_neighbor_lost(NodeId /*self*/, NodeId /*neighbor*/) {}
  virtual void on_neighbor_found(NodeId /*self*/, NodeId /*neighbor*/) {}
};

/// Per-node per-neighbour liveness bookkeeping.
struct NeighborEntry {
  NodeId id = kNoNode;
  std::int64_t last_heard_frame = -1;
  int slot = kNoSlot;
};

/// The whole-network LMAC instance. One object simulates every node's MAC
/// (the usual discrete-event style); per-node state is strictly separated
/// so no node ever reads another node's tables — only messages cross.
class LmacNetwork final : public net::TopologyObserver {
 public:
  LmacNetwork(sim::Scheduler& sched, net::Topology& topo, LmacConfig cfg);
  ~LmacNetwork() override;

  LmacNetwork(const LmacNetwork&) = delete;
  LmacNetwork& operator=(const LmacNetwork&) = delete;

  /// Elects slots for all alive nodes and starts the frame loop.
  void start();

  /// Enqueues a unicast to a (current) neighbour; it is transmitted in the
  /// sender's next slot. Messages to nodes that have meanwhile died are
  /// transmitted and lost (the sender pays the tx cost, nobody receives).
  void send(NodeId from, NodeId to, std::any payload);

  /// Enqueues a link-layer broadcast (all alive 1-hop neighbours receive).
  void broadcast(NodeId from, std::any payload);

  void set_observer(LinkObserver* obs) noexcept { observer_ = obs; }

  /// Slot owned by the node, or kNoSlot if it has none (dead / unjoined).
  [[nodiscard]] int slot_of(NodeId id) const { return state_.at(id).slot; }

  /// The node's current view of its alive neighbours.
  [[nodiscard]] std::vector<NodeId> known_neighbors(NodeId id) const;

  [[nodiscard]] std::int64_t current_frame() const noexcept { return frame_; }
  [[nodiscard]] const LmacConfig& config() const noexcept { return cfg_; }

  // --- energy accounting (1 unit per tx, 1 per rx; paper §5) -------------
  [[nodiscard]] CostUnits data_tx(NodeId id) const { return state_.at(id).data_tx; }
  [[nodiscard]] CostUnits data_rx(NodeId id) const { return state_.at(id).data_rx; }
  [[nodiscard]] CostUnits control_tx(NodeId id) const { return state_.at(id).control_tx; }
  [[nodiscard]] CostUnits control_rx(NodeId id) const { return state_.at(id).control_rx; }
  [[nodiscard]] CostUnits total_data_cost() const;

  // --- TopologyObserver ---------------------------------------------------
  void on_node_died(NodeId id) override;
  void on_node_added(NodeId id) override;

 private:
  struct NodeState {
    int slot = kNoSlot;
    bool joining = false;               // listening for a frame before electing
    std::deque<Frame> tx_queue;
    std::vector<NeighborEntry> neighbors;
    std::uint64_t occupied_view = 0;    // bitmask of slots heard (1- and 2-hop)
    CostUnits data_tx = 0, data_rx = 0, control_tx = 0, control_rx = 0;
  };

  void schedule_next_slot();
  void run_slot(std::size_t slot_index);
  void end_of_frame();
  void transmit(NodeId owner);
  void check_timeouts(NodeId id);
  void elect_joining_node(NodeId id);
  NeighborEntry* find_neighbor(NodeState& st, NodeId id);

  sim::Scheduler& sched_;
  net::Topology& topo_;
  LmacConfig cfg_;
  LinkObserver* observer_ = nullptr;
  std::vector<NodeState> state_;
  // slot -> owners. TDMA with spatial reuse: several nodes share a slot as
  // long as they are more than two hops apart (the election guarantees it).
  std::vector<std::vector<NodeId>> slot_members_;
  std::int64_t frame_ = 0;
  std::size_t next_slot_ = 0;
  bool started_ = false;
};

/// Computes a 2-hop-exclusive slot assignment for all alive nodes, greedy
/// in BFS order from `root` (the converged result of LMAC's distributed
/// election). Returns one slot per node id, kNoSlot for dead nodes.
/// Throws std::runtime_error if `slots` is insufficient for the 2-hop
/// neighbourhood sizes in the topology.
std::vector<int> elect_slots(const net::Topology& topo, NodeId root,
                             std::size_t slots);

}  // namespace dirq::mac

#include "mac/lmac.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>

#include "sim/logging.hpp"

namespace dirq::mac {

std::vector<int> elect_slots(const net::Topology& topo, NodeId root,
                             std::size_t slots) {
  const std::size_t n = topo.size();
  std::vector<int> slot(n, kNoSlot);
  if (n == 0) return slot;

  // BFS order from the root mirrors LMAC's wave-like election: nodes closer
  // to the gateway settle first, later nodes avoid slots taken within two
  // hops of themselves.
  std::vector<bool> seen(n, false);
  std::deque<NodeId> frontier;
  if (root < n && topo.is_alive(root)) {
    frontier.push_back(root);
    seen[root] = true;
  }
  std::vector<NodeId> order;
  while (!frontier.empty()) {
    NodeId u = frontier.front();
    frontier.pop_front();
    order.push_back(u);
    for (NodeId v : topo.neighbors(u)) {
      if (!seen[v]) {
        seen[v] = true;
        frontier.push_back(v);
      }
    }
  }
  // Isolated alive nodes (not reachable from root) still get slots, after
  // the connected component.
  for (NodeId u = 0; u < n; ++u) {
    if (topo.is_alive(u) && !seen[u]) order.push_back(u);
  }

  for (NodeId u : order) {
    std::vector<bool> taken(slots, false);
    for (NodeId v : topo.neighbors(u)) {
      if (slot[v] != kNoSlot) taken[static_cast<std::size_t>(slot[v])] = true;
      for (NodeId w : topo.neighbors(v)) {
        if (w != u && slot[w] != kNoSlot) {
          taken[static_cast<std::size_t>(slot[w])] = true;
        }
      }
    }
    int chosen = kNoSlot;
    for (std::size_t s = 0; s < slots; ++s) {
      if (!taken[s]) {
        chosen = static_cast<int>(s);
        break;
      }
    }
    if (chosen == kNoSlot) {
      throw std::runtime_error(
          "elect_slots: frame too short for 2-hop neighbourhood");
    }
    slot[u] = chosen;
  }
  return slot;
}

LmacNetwork::LmacNetwork(sim::Scheduler& sched, net::Topology& topo, LmacConfig cfg)
    : sched_(sched), topo_(topo), cfg_(cfg) {
  topo_.add_observer(this);
}

LmacNetwork::~LmacNetwork() { topo_.remove_observer(this); }

void LmacNetwork::start() {
  if (started_) return;
  started_ = true;
  if (cfg_.slots_per_frame > 64) {
    throw std::invalid_argument(
        "LmacNetwork: occupied-slot bitmasks support at most 64 slots");
  }
  state_.assign(topo_.size(), {});
  slot_members_.assign(cfg_.slots_per_frame, {});

  const std::vector<int> slots = elect_slots(topo_, /*root=*/0, cfg_.slots_per_frame);
  for (NodeId u = 0; u < topo_.size(); ++u) {
    if (!topo_.is_alive(u)) continue;
    state_[u].slot = slots[u];
    slot_members_[static_cast<std::size_t>(slots[u])].push_back(u);
    // Prime neighbour tables from the converged election: after bootstrap
    // every node has heard each neighbour at least once.
    for (NodeId v : topo_.neighbors(u)) {
      state_[u].neighbors.push_back(NeighborEntry{v, -1, slots[v]});
      state_[u].occupied_view |= (1ULL << static_cast<unsigned>(slots[v]));
    }
    state_[u].occupied_view |= (1ULL << static_cast<unsigned>(slots[u]));
  }
  frame_ = 0;
  next_slot_ = 0;
  schedule_next_slot();
}

void LmacNetwork::schedule_next_slot() {
  const std::size_t slot_index = next_slot_;
  const SimTime when = static_cast<SimTime>(frame_) * cfg_.frame_ticks() +
                       static_cast<SimTime>(slot_index) * cfg_.ticks_per_slot;
  sched_.schedule_at(std::max(when, sched_.now()),
                     [this, slot_index] { run_slot(slot_index); });
}

void LmacNetwork::run_slot(std::size_t slot_index) {
  // Copy: joins/deaths during delivery may edit the member list.
  const std::vector<NodeId> members = slot_members_[slot_index];
  for (NodeId owner : members) {
    if (topo_.is_alive(owner) && !state_[owner].joining) transmit(owner);
  }
  next_slot_ = slot_index + 1;
  if (next_slot_ == cfg_.slots_per_frame) {
    end_of_frame();
    next_slot_ = 0;
    ++frame_;
  }
  schedule_next_slot();
}

void LmacNetwork::transmit(NodeId owner) {
  NodeState& st = state_[owner];
  // Control section: one broadcast transmission, every alive neighbour
  // receives (and refreshes its liveness entry for `owner`).
  st.control_tx += 1;
  for (NodeId v : topo_.neighbors(owner)) {
    NodeState& recv = state_[v];
    recv.control_rx += 1;
    NeighborEntry* entry = find_neighbor(recv, owner);
    if (entry == nullptr) {
      // First time this node hears `owner` (node addition, §4.2).
      recv.neighbors.push_back(NeighborEntry{owner, frame_, st.slot});
      recv.occupied_view |= (1ULL << static_cast<unsigned>(st.slot));
      if (observer_ != nullptr) observer_->on_neighbor_found(v, owner);
    } else {
      entry->last_heard_frame = frame_;
      entry->slot = st.slot;
    }
    // Occupied-slot gossip: hearers fold the sender's view into their own
    // (this is how LMAC propagates 2-hop occupancy).
    recv.occupied_view |= st.occupied_view;
  }

  // Data section: queued messages, transmitted this slot.
  while (!st.tx_queue.empty()) {
    Frame f = std::move(st.tx_queue.front());
    st.tx_queue.pop_front();
    st.data_tx += 1;
    if (f.dst == kNoNode) {
      for (NodeId v : topo_.neighbors(owner)) {
        state_[v].data_rx += 1;
        if (observer_ != nullptr) observer_->on_message(v, f);
      }
    } else if (f.dst < topo_.size() && topo_.is_alive(f.dst)) {
      // Unicast: only the addressed neighbour decodes the data section
      // (LMAC receivers sleep through data not addressed to them).
      const auto nbrs = topo_.neighbors(owner);
      if (std::binary_search(nbrs.begin(), nbrs.end(), f.dst)) {
        state_[f.dst].data_rx += 1;
        if (observer_ != nullptr) observer_->on_message(f.dst, f);
      }
      // else: destination out of range (moved/died) — message lost.
    }
  }
}

void LmacNetwork::end_of_frame() {
  for (NodeId u = 0; u < topo_.size(); ++u) {
    if (!topo_.is_alive(u)) continue;
    if (state_[u].joining) {
      elect_joining_node(u);
    } else {
      check_timeouts(u);
    }
  }
}

void LmacNetwork::check_timeouts(NodeId id) {
  NodeState& st = state_[id];
  for (std::size_t i = 0; i < st.neighbors.size();) {
    NeighborEntry& e = st.neighbors[i];
    // last_heard_frame == -1 means "primed at bootstrap, not heard since";
    // treat bootstrap as frame -1 so a node dead from frame 0 still times
    // out after timeout_frames frames.
    const std::int64_t silent = frame_ - e.last_heard_frame;
    if (silent >= cfg_.timeout_frames) {
      const NodeId lost = e.id;
      st.neighbors.erase(st.neighbors.begin() + static_cast<std::ptrdiff_t>(i));
      sim::log(sim::LogLevel::Debug, "lmac",
               "node ", id, " lost neighbor ", lost, " at frame ", frame_);
      if (observer_ != nullptr) observer_->on_neighbor_lost(id, lost);
    } else {
      ++i;
    }
  }
}

void LmacNetwork::elect_joining_node(NodeId id) {
  NodeState& st = state_[id];
  // The joiner has listened for a full frame: its occupied_view now holds
  // every slot used within two hops (1-hop control sections carry 2-hop
  // occupancy). Claim the lowest free slot.
  std::uint64_t taken = st.occupied_view;
  for (NodeId v : topo_.neighbors(id)) {
    taken |= state_[v].occupied_view;
  }
  int chosen = kNoSlot;
  for (std::size_t s = 0; s < cfg_.slots_per_frame; ++s) {
    if ((taken & (1ULL << s)) == 0) {
      chosen = static_cast<int>(s);
      break;
    }
  }
  if (chosen == kNoSlot) {
    sim::log(sim::LogLevel::Warn, "lmac", "node ", id,
             " found no free slot; will retry next frame");
    return;  // stays joining; retries after the next frame
  }
  st.slot = chosen;
  st.joining = false;
  slot_members_[static_cast<std::size_t>(chosen)].push_back(id);
  st.occupied_view |= (1ULL << static_cast<unsigned>(chosen));
  sim::log(sim::LogLevel::Debug, "lmac", "node ", id, " claimed slot ", chosen);
}

void LmacNetwork::send(NodeId from, NodeId to, std::any payload) {
  if (!started_) throw std::logic_error("LmacNetwork::send before start()");
  state_.at(from).tx_queue.push_back(Frame{from, to, std::move(payload)});
}

void LmacNetwork::broadcast(NodeId from, std::any payload) {
  if (!started_) throw std::logic_error("LmacNetwork::broadcast before start()");
  state_.at(from).tx_queue.push_back(Frame{from, kNoNode, std::move(payload)});
}

std::vector<NodeId> LmacNetwork::known_neighbors(NodeId id) const {
  std::vector<NodeId> out;
  for (const NeighborEntry& e : state_.at(id).neighbors) out.push_back(e.id);
  std::sort(out.begin(), out.end());
  return out;
}

CostUnits LmacNetwork::total_data_cost() const {
  CostUnits total = 0;
  for (const NodeState& st : state_) total += st.data_tx + st.data_rx;
  return total;
}

void LmacNetwork::on_node_died(NodeId id) {
  if (!started_) return;
  NodeState& st = state_.at(id);
  if (st.slot != kNoSlot) {
    std::erase(slot_members_[static_cast<std::size_t>(st.slot)], id);
    st.slot = kNoSlot;
  }
  st.tx_queue.clear();
  // Note: the dead node's neighbours are NOT told here — they find out by
  // missing its control messages (timeout), exactly as in real LMAC.
}

void LmacNetwork::on_node_added(NodeId id) {
  if (!started_) return;
  if (state_.size() < topo_.size()) state_.resize(topo_.size());
  NodeState& st = state_.at(id);
  st = NodeState{};
  st.joining = true;  // listen for one full frame, then claim a slot
}

NeighborEntry* LmacNetwork::find_neighbor(NodeState& st, NodeId id) {
  for (NeighborEntry& e : st.neighbors) {
    if (e.id == id) return &e;
  }
  return nullptr;
}

}  // namespace dirq::mac

#include "query/query.hpp"

#include <sstream>

namespace dirq::query {

std::string RangeQuery::describe() const {
  std::ostringstream oss;
  oss << "query#" << id << " " << sensor_type_name(type) << " in [" << lo
      << ", " << hi << "]";
  if (region) {
    oss << " within [" << region->min_x << "," << region->min_y << " .. "
        << region->max_x << "," << region->max_y << "]";
  }
  oss << " @epoch " << epoch;
  return oss.str();
}

std::string MultiQuery::describe() const {
  std::ostringstream oss;
  oss << "multiquery#" << id;
  for (const AttributePredicate& p : predicates) {
    oss << " " << sensor_type_name(p.type) << " in [" << p.lo << ", " << p.hi
        << "]";
  }
  if (region) {
    oss << " within [" << region->min_x << "," << region->min_y << " .. "
        << region->max_x << "," << region->max_y << "]";
  }
  oss << " @epoch " << epoch;
  return oss.str();
}

}  // namespace dirq::query

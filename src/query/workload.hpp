// Workload generator reproducing the paper's §7 query stream:
// "Random queries which covered 20%, 40% and 60% of the nodes were
// generated every 20 epochs."
//
// "Covered" follows the paper's §7.1 definition: the involved set is the
// source nodes (whose *current reading* satisfies the predicate) PLUS the
// intermediate forwarding nodes on the tree paths from the root to every
// source. The generator seeds the value window at a random capable node's
// current reading and widens it one reading at a time until the involved
// set reaches the target percentage.
#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "data/field_model.hpp"
#include "net/spanning_tree.hpp"
#include "net/topology.hpp"
#include "query/query.hpp"
#include "sim/rng.hpp"

namespace dirq::query {

/// Ground-truth involvement of a query at a given instant.
struct Involvement {
  std::vector<NodeId> sources;   // readings match the predicate
  std::vector<NodeId> involved;  // sources + forwarders (root excluded)
};

/// Computes the ground-truth involvement of `q` against current readings
/// (region-constrained when the query carries one). The root is excluded
/// from `involved` (it originates the query).
Involvement compute_involvement(const RangeQuery& q, const net::Topology& topo,
                                const net::SpanningTree& tree,
                                const data::ReadingSource& env);

/// Ground truth for a conjunctive multi-attribute query: a source carries
/// every listed type and every reading satisfies its window.
Involvement compute_involvement(const MultiQuery& q, const net::Topology& topo,
                                const net::SpanningTree& tree,
                                const data::ReadingSource& env);

struct WorkloadConfig {
  double target_involved_fraction = 0.4;  // 20%, 40% or 60% in the paper
  /// Involved fraction is matched to within this tolerance when possible;
  /// the generator otherwise returns its closest achievable window.
  double tolerance = 0.02;
};

class WorkloadGenerator {
 public:
  WorkloadGenerator(const net::Topology& topo, const net::SpanningTree& tree,
                    const data::ReadingSource& env, WorkloadConfig cfg,
                    sim::Rng rng);

  /// Generates the next query at the given epoch. The environment must
  /// already be advanced to that epoch. Returns a query whose involvement
  /// is as close as achievable to the configured target.
  RangeQuery next(std::int64_t epoch);

  /// Generates a location-constrained query (paper §2's static location
  /// attribute): a random sub-region covering roughly `region_fraction` of
  /// the deployment area, with the value window targeting the configured
  /// involvement among the region's nodes.
  RangeQuery next_regional(std::int64_t epoch, double region_fraction);

  /// Generates a conjunctive multi-attribute query over `attribute_count`
  /// distinct sensor types (paper §2: "DirQ can use multiple attributes").
  /// Windows are seeded at one multi-sensor node's readings and widened
  /// around it, so the query always has at least one source.
  MultiQuery next_multi(std::int64_t epoch, std::size_t attribute_count);

  /// Re-targets subsequent queries (used by sweeps).
  void set_target(double fraction) { cfg_.target_involved_fraction = fraction; }

  [[nodiscard]] const WorkloadConfig& config() const noexcept { return cfg_; }

 private:
  const net::Topology& topo_;
  const net::SpanningTree& tree_;
  const data::ReadingSource& env_;
  WorkloadConfig cfg_;
  sim::Rng rng_;
  QueryId next_id_ = 1;
};

}  // namespace dirq::query

#include "query/rate_predictor.hpp"

#include <stdexcept>

namespace dirq::query {

void QueryRatePredictor::record_query(std::int64_t epoch) {
  if (epoch < last_epoch_) {
    throw std::invalid_argument("QueryRatePredictor: epochs must not decrease");
  }
  last_epoch_ = epoch;
  roll_to(epoch / epochs_per_hour_);
  ++current_count_;
}

void QueryRatePredictor::roll_to(std::int64_t hour) {
  while (current_hour_ < hour) {
    completed_.push_back(current_count_);
    ewma_.push(static_cast<double>(current_count_));
    current_count_ = 0;
    ++current_hour_;
  }
}

double QueryRatePredictor::predict_next_hour() const {
  if (ewma_.initialized()) return ewma_.value();
  // No completed hour yet: extrapolate the partial hour observed so far.
  if (last_epoch_ < 0) return 0.0;
  const std::int64_t into_hour = (last_epoch_ % epochs_per_hour_) + 1;
  return static_cast<double>(current_count_) *
         static_cast<double>(epochs_per_hour_) / static_cast<double>(into_hour);
}

}  // namespace dirq::query

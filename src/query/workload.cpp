#include "query/workload.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace dirq::query {

namespace {

/// Shared path-union step: sources -> sources + forwarders.
Involvement finish_involvement(std::vector<NodeId> sources,
                               const net::SpanningTree& tree) {
  Involvement result;
  result.sources = std::move(sources);
  std::unordered_set<NodeId> involved;
  for (NodeId s : result.sources) {
    for (NodeId hop : tree.path_from_root(s)) {
      if (hop != tree.root()) involved.insert(hop);
    }
  }
  result.involved.assign(involved.begin(), involved.end());
  std::sort(result.involved.begin(), result.involved.end());
  return result;
}

}  // namespace

Involvement compute_involvement(const RangeQuery& q, const net::Topology& topo,
                                const net::SpanningTree& tree,
                                const data::ReadingSource& env) {
  std::vector<NodeId> sources;
  for (const net::Node& n : topo.nodes()) {
    if (!n.alive || !n.has_sensor(q.type) || !tree.in_tree(n.id)) continue;
    if (n.id == tree.root()) continue;
    if (q.region && !q.region->contains(n.x, n.y)) continue;
    if (!q.matches(env.reading(n.id, q.type))) continue;
    sources.push_back(n.id);
  }
  return finish_involvement(std::move(sources), tree);
}

Involvement compute_involvement(const MultiQuery& q, const net::Topology& topo,
                                const net::SpanningTree& tree,
                                const data::ReadingSource& env) {
  std::vector<NodeId> sources;
  if (q.predicates.empty()) return {};
  for (const net::Node& n : topo.nodes()) {
    if (!n.alive || !tree.in_tree(n.id) || n.id == tree.root()) continue;
    if (q.region && !q.region->contains(n.x, n.y)) continue;
    bool all = true;
    for (const AttributePredicate& p : q.predicates) {
      if (!n.has_sensor(p.type) || !p.matches(env.reading(n.id, p.type))) {
        all = false;
        break;
      }
    }
    if (all) sources.push_back(n.id);
  }
  return finish_involvement(std::move(sources), tree);
}

WorkloadGenerator::WorkloadGenerator(const net::Topology& topo,
                                     const net::SpanningTree& tree,
                                     const data::ReadingSource& env,
                                     WorkloadConfig cfg, sim::Rng rng)
    : topo_(topo), tree_(tree), env_(env), cfg_(cfg), rng_(rng) {}

namespace {

struct Candidate {
  double value;
  NodeId node;
};

}  // namespace

/// Grows a value window around a random seed candidate until the involved
/// set (sources + forwarders) reaches `target` nodes, and returns the
/// tight [lo, hi] value window. Candidates must be sorted by value.
static std::pair<double, double> grow_window(
    std::span<const Candidate> candidates, std::size_t target,
    const net::SpanningTree& tree, sim::Rng& rng) {
  const std::size_t seed = rng.index(candidates.size());
  std::size_t lo_idx = seed;
  std::size_t hi_idx = seed;
  std::unordered_set<NodeId> involved;
  auto absorb = [&](std::size_t idx) {
    for (NodeId hop : tree.path_from_root(candidates[idx].node)) {
      if (hop != tree.root()) involved.insert(hop);
    }
  };
  absorb(seed);
  while (involved.size() < target &&
         (lo_idx > 0 || hi_idx + 1 < candidates.size())) {
    // Widen toward the value-closer neighbour so the window stays a
    // contiguous value range (range queries are intervals).
    const double lo_gap = lo_idx > 0
        ? candidates[lo_idx].value - candidates[lo_idx - 1].value
        : std::numeric_limits<double>::infinity();
    const double hi_gap = hi_idx + 1 < candidates.size()
        ? candidates[hi_idx + 1].value - candidates[hi_idx].value
        : std::numeric_limits<double>::infinity();
    if (lo_gap <= hi_gap) {
      --lo_idx;
      absorb(lo_idx);
    } else {
      ++hi_idx;
      absorb(hi_idx);
    }
  }
  // Keep the window edges tight on the boundary readings (plus a float-
  // robustness hair). Tight windows minimise boundary false positives:
  // widening the edges into the gap toward excluded readings only pulls
  // their theta-widened tuples into overlap.
  const double pad = 1e-9 * std::max(1.0, std::abs(candidates[hi_idx].value));
  return {candidates[lo_idx].value - pad, candidates[hi_idx].value + pad};
}

RangeQuery WorkloadGenerator::next(std::int64_t epoch) {
  // Candidate sensor types: those actually present in the network.
  const std::vector<SensorType> types = topo_.sensor_types_present();
  RangeQuery q;
  q.id = next_id_++;
  q.epoch = epoch;
  q.type = types.empty()
               ? kSensorTemperature
               : types[rng_.index(types.size())];

  // Current readings of all capable, attached nodes, sorted by value.
  std::vector<Candidate> candidates;
  for (const net::Node& n : topo_.nodes()) {
    if (!n.alive || !n.has_sensor(q.type) || !tree_.in_tree(n.id)) continue;
    if (n.id == tree_.root()) continue;
    candidates.push_back({env_.reading(n.id, q.type), n.id});
  }
  if (candidates.empty()) {
    q.lo = 0.0;
    q.hi = 0.0;
    return q;
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) { return a.value < b.value; });

  // The denominator for "percentage of nodes involved": non-root network
  // members attached to the tree.
  const std::size_t population = tree_.size() > 0 ? tree_.size() - 1 : 0;
  const auto target = static_cast<std::size_t>(
      std::llround(cfg_.target_involved_fraction * static_cast<double>(population)));
  std::tie(q.lo, q.hi) = grow_window(candidates, target, tree_, rng_);
  return q;
}

RangeQuery WorkloadGenerator::next_regional(std::int64_t epoch,
                                            double region_fraction) {
  RangeQuery q = next(epoch);  // type + value window from the full network

  // Deployment bounding box.
  net::BBox deploy = net::BBox::empty();
  for (const net::Node& n : topo_.nodes()) {
    if (n.alive) deploy = deploy.join(net::BBox::point(n.x, n.y));
  }
  if (deploy.is_empty()) return q;

  // A random sub-box with side = sqrt(fraction) of each dimension, centred
  // on a uniformly chosen point (clamped inside the deployment).
  region_fraction = std::clamp(region_fraction, 0.01, 1.0);
  const double scale = std::sqrt(region_fraction);
  const double w = deploy.width() * scale;
  const double h = deploy.height() * scale;
  const double cx = rng_.uniform(deploy.min_x + w / 2.0, deploy.max_x - w / 2.0);
  const double cy = rng_.uniform(deploy.min_y + h / 2.0, deploy.max_y - h / 2.0);
  q.region = net::BBox{cx - w / 2.0, cy - h / 2.0, cx + w / 2.0, cy + h / 2.0};
  return q;
}

MultiQuery WorkloadGenerator::next_multi(std::int64_t epoch,
                                         std::size_t attribute_count) {
  MultiQuery q;
  q.id = next_id_++;
  q.epoch = epoch;

  // Seed node: must carry at least `attribute_count` sensor types so the
  // query is satisfiable. Fall back to the best-equipped node.
  const net::Node* seed = nullptr;
  std::vector<NodeId> eligible;
  for (const net::Node& n : topo_.nodes()) {
    if (!n.alive || n.id == tree_.root() || !tree_.in_tree(n.id)) continue;
    if (n.sensors.size() >= attribute_count) eligible.push_back(n.id);
    if (seed == nullptr || n.sensors.size() > seed->sensors.size()) {
      seed = &n;
    }
  }
  if (!eligible.empty()) {
    seed = &topo_.node(eligible[rng_.index(eligible.size())]);
  }
  if (seed == nullptr) return q;  // empty network: empty (unsatisfiable) query

  std::vector<SensorType> types = seed->sensors;
  rng_.shuffle(std::span<SensorType>(types));
  types.resize(std::min(types.size(), attribute_count));
  std::sort(types.begin(), types.end());

  // Window per attribute: centred on the seed's reading, wide enough to
  // include its value-neighbourhood (half the configured involvement per
  // attribute — conjunction narrows the joint source set anyway).
  for (SensorType t : types) {
    std::vector<Candidate> candidates;
    for (const net::Node& n : topo_.nodes()) {
      if (!n.alive || !n.has_sensor(t) || !tree_.in_tree(n.id)) continue;
      if (n.id == tree_.root()) continue;
      candidates.push_back({env_.reading(n.id, t), n.id});
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate& a, const Candidate& b) {
                return a.value < b.value;
              });
    const double centre = env_.reading(seed->id, t);
    const auto per_attr_target = static_cast<std::size_t>(std::llround(
        cfg_.target_involved_fraction * static_cast<double>(tree_.size())));
    // Widen symmetrically in rank space around the seed's reading.
    std::size_t pos = 0;
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      if (candidates[i].node == seed->id ||
          candidates[i].value <= centre) {
        pos = i;
      }
    }
    const std::size_t half = std::max<std::size_t>(1, per_attr_target / 2);
    const std::size_t lo_idx = pos >= half ? pos - half : 0;
    const std::size_t hi_idx = std::min(candidates.size() - 1, pos + half);
    const double pad = 1e-9 * std::max(1.0, std::abs(centre));
    q.predicates.push_back(AttributePredicate{
        t, candidates[lo_idx].value - pad, candidates[hi_idx].value + pad});
  }
  return q;
}

}  // namespace dirq::query

// Query model: one-shot range queries over a single sensor type
// (paper §3: "Acquire all temperature readings that are currently between
// 22 C and 25 C"). DirQ routes on (type, [lo, hi]) against the range
// tables; multi-dimensional user requests decompose into one query per
// attribute at the gateway.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/bbox.hpp"
#include "sim/types.hpp"

namespace dirq::query {

struct RangeQuery {
  RangeQuery() = default;
  RangeQuery(QueryId id_, SensorType type_, double lo_, double hi_,
             std::int64_t epoch_,
             std::optional<net::BBox> region_ = std::nullopt)
      : id(id_), type(type_), lo(lo_), hi(hi_), epoch(epoch_),
        region(std::move(region_)) {}

  QueryId id = 0;
  SensorType type = kSensorTemperature;
  double lo = 0.0;
  double hi = 0.0;
  std::int64_t epoch = 0;  // injection time
  /// Optional static location attribute (paper §2): when present, only
  /// nodes inside the region qualify, and dissemination additionally
  /// prunes on subtree bounding boxes.
  std::optional<net::BBox> region;

  /// True if a reading satisfies the query predicate.
  [[nodiscard]] bool matches(double value) const noexcept {
    return value >= lo && value <= hi;
  }

  /// True if the query's value window overlaps a stored [min, max] range —
  /// the forwarding test every DirQ node applies (§4.1).
  [[nodiscard]] bool overlaps(double range_min, double range_max) const noexcept {
    return lo <= range_max && hi >= range_min;
  }

  [[nodiscard]] std::string describe() const;
};

/// One conjunct of a multi-attribute query.
struct AttributePredicate {
  SensorType type = kSensorTemperature;
  double lo = 0.0;
  double hi = 0.0;

  [[nodiscard]] bool matches(double value) const noexcept {
    return value >= lo && value <= hi;
  }
  [[nodiscard]] bool overlaps(double range_min, double range_max) const noexcept {
    return lo <= range_max && hi >= range_min;
  }
};

/// Conjunctive multi-attribute range query (paper §2: unlike SRT's single
/// attribute, "DirQ can use multiple attributes"). A source node must
/// carry every listed sensor type and satisfy every window; dissemination
/// prunes a branch as soon as ANY attribute's subtree range misses.
///
/// Note the inherent conservatism: per-type subtree ranges cannot prove
/// that one single node satisfies all conjuncts, only that each conjunct
/// is satisfiable somewhere in the subtree — multi-attribute dissemination
/// therefore overshoots more than its single-attribute projection, never
/// less coverage.
struct MultiQuery {
  QueryId id = 0;
  std::vector<AttributePredicate> predicates;
  std::int64_t epoch = 0;
  std::optional<net::BBox> region;

  [[nodiscard]] std::string describe() const;
};

}  // namespace dirq::query

// Query-rate predictor at the gateway.
//
// Paper §3: "the server connected to the root ... is capable of predicting
// the number of queries that will be posed to the network in the next hour
// based on historical data", citing web-server access prediction [10].
// The prediction feeds the hourly EHr broadcast (§4) that parameterises
// every node's Adaptive Threshold Control.
//
// We implement a seasonal-naive + EWMA blend: the prediction for the next
// hour is an exponentially weighted average of past hourly counts, seeded
// by the first observed hour. This captures the only property DirQ needs —
// a reasonable hourly estimate that tracks load trends.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/stats.hpp"
#include "sim/types.hpp"

namespace dirq::query {

class QueryRatePredictor {
 public:
  /// alpha: EWMA smoothing; epochs_per_hour: the EHr accounting period.
  explicit QueryRatePredictor(double alpha = 0.4,
                              std::int64_t epochs_per_hour = kEpochsPerHour)
      : ewma_(alpha), epochs_per_hour_(epochs_per_hour) {}

  /// Records one injected query at the given epoch. Epochs must be
  /// non-decreasing (queries arrive in order at the gateway).
  void record_query(std::int64_t epoch);

  /// Prediction of queries in the next hour (EHr). Before any full hour of
  /// history, extrapolates the current partial hour's rate; with history,
  /// returns the EWMA of completed hourly counts.
  [[nodiscard]] double predict_next_hour() const;

  /// Count for a completed hour index, 0 if out of range.
  [[nodiscard]] std::int64_t hour_count(std::size_t hour) const {
    return hour < completed_.size() ? completed_[hour] : 0;
  }

  [[nodiscard]] std::size_t completed_hours() const noexcept {
    return completed_.size();
  }

  [[nodiscard]] std::int64_t epochs_per_hour() const noexcept {
    return epochs_per_hour_;
  }

 private:
  void roll_to(std::int64_t hour);

  sim::Ewma ewma_;
  std::int64_t epochs_per_hour_;
  std::vector<std::int64_t> completed_;  // per finished hour
  std::int64_t current_hour_ = 0;
  std::int64_t current_count_ = 0;
  std::int64_t last_epoch_ = -1;
};

}  // namespace dirq::query

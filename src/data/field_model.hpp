// Synthetic spatio-temporal environment model.
//
// The paper evaluates DirQ on "a synthetic dataset with 4 sensor types ...
// where sensor values of nodes located close to one another are spatially
// related. The generated sensor data is also related in the temporal
// dimension. Each sensor acquires a reading every time unit [epoch] for a
// period of 20,000 time units." (§7)
//
// We reproduce those properties with, per sensor type:
//
//   value(x, y, t) = base                                  (type offset)
//                  + diurnal * sin(2*pi*t/period + phase)  (slow trend)
//                  + sum_b A_b * exp(-|p - c_b(t)|^2 / 2*s_b^2)
//                                                   (drifting warm/cold
//                                                    fronts: spatial AND
//                                                    temporal correlation)
//                  + regional AR(1) noise (shared by a coarse grid cell:
//                                          nearby nodes move together)
//                  + per-node AR(1) noise  (sensor-local variation)
//
// Everything is driven by named Rng substreams, so a (seed, type, node,
// epoch) tuple always produces the same reading. Epochs must be advanced
// monotonically (AR(1) state is sequential); readings within an epoch may
// be queried in any order.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "data/field_geometry.hpp"
#include "data/reading_source.hpp"
#include "net/topology.hpp"
#include "sim/rng.hpp"
#include "sim/types.hpp"

namespace dirq::data {

/// Static description of one sensor type's field dynamics.
struct FieldParams {
  double base = 20.0;            // mean level (e.g. degrees C)
  double diurnal_amplitude = 4.0;
  double diurnal_period = 8000;  // epochs per pseudo-day
  double phase = 0.0;
  /// Static planar gradient: total value rise across the full deployment
  /// width (x) and height (y). Environmental fields are usually monotone
  /// at deployment scale (altitude lapse, distance to a river, canopy
  /// density), which makes value ranges spatially contiguous — nearby
  /// nodes fall in the same query windows.
  double gradient_x = 0.0;
  double gradient_y = 0.0;
  std::size_t bump_count = 3;    // drifting Gaussian fronts
  double bump_amplitude = 5.0;   // peak contribution of a front
  double bump_sigma = 25.0;      // spatial extent of a front
  double bump_drift = 0.02;      // units of distance per epoch
  double regional_cell = 30.0;   // side of the shared-noise grid cell
  double regional_sigma = 0.4;   // innovation std-dev of regional AR(1)
  double regional_rho = 0.95;    // AR(1) coefficient (temporal memory)
  double node_sigma = 0.15;      // innovation std-dev of per-node AR(1)
  double node_rho = 0.9;
};

/// Canonical parameter sets for the paper's four sensor types.
FieldParams default_params(SensorType type);

/// One sensor type's field over a fixed node population.
class Field {
 public:
  Field(SensorType type, FieldParams params, const net::Topology& topo,
        sim::Rng rng);

  /// Advances internal AR(1) state to `epoch` (>= current epoch).
  void advance_to(std::int64_t epoch);

  /// Reading of the given node at the current epoch. Valid for any node id
  /// in the topology the Field was built against (also dead ones — the
  /// physical quantity exists whether or not the node does). Nodes added
  /// to the topology after construction are adopted lazily: their position
  /// is read from the topology and their sensor-local noise starts at 0.
  [[nodiscard]] double reading(NodeId node) const;

  /// Batch form of `reading`: fills `out[i]` for `nodes[i]`. Values are
  /// bit-identical to per-node `reading()` calls (readings are pure at a
  /// fixed epoch); the batch only exists so the epoch loop crosses the
  /// environment boundary once per type instead of once per node.
  void readings(std::span<const NodeId> nodes, std::span<double> out) const;

  /// Deterministic field value at an arbitrary position, current epoch,
  /// excluding per-node noise (used by tests to check spatial coherence).
  [[nodiscard]] double field_at(double x, double y) const;

  [[nodiscard]] std::int64_t epoch() const noexcept { return epoch_; }
  [[nodiscard]] SensorType type() const noexcept { return type_; }
  [[nodiscard]] const FieldParams& params() const noexcept { return params_; }

 private:
  struct Bump {
    double cx, cy;      // current centre
    double vx, vy;      // drift velocity (bounces off area walls)
    double amplitude;
    double sigma;
  };

  [[nodiscard]] std::size_t cell_of(double x, double y) const;
  void step_once();
  void refresh_diurnal();
  /// Shared evaluation core: identical arithmetic for field_at (which
  /// resolves the cell per call) and reading (which uses the cached
  /// per-node cell), so both produce bit-identical values.
  [[nodiscard]] double field_value(double x, double y, std::size_t cell) const;

  void adopt_new_nodes() const;

  SensorType type_;
  FieldParams params_;
  sim::Rng rng_;
  std::int64_t epoch_ = 0;
  const net::Topology* topo_ = nullptr;  // for post-construction node adoption

  // Geometry captured from the topology (lazily extended on node
  // addition); shared arithmetic with the fast backend.
  FieldGeometry geo_;
  double diurnal_ = 0.0;  // amplitude * sin(...) for the current epoch

  std::vector<Bump> bumps_;
  std::vector<double> regional_;           // AR(1) value per grid cell
  mutable std::vector<double> node_noise_; // AR(1) value per node
};

/// Bundle of one Field per sensor type, advanced in lock-step. This is the
/// "environment" object the simulation driver owns. Implements
/// ReadingSource so traces or real datasets can substitute for it.
class Environment final : public ReadingSource {
 public:
  Environment(const net::Topology& topo, std::size_t sensor_type_count,
              sim::Rng rng);

  void advance_to(std::int64_t epoch) override;

  [[nodiscard]] double reading(NodeId node, SensorType type) const override;
  void readings(SensorType type, std::span<const NodeId> nodes,
                std::span<double> out) const override;
  [[nodiscard]] const Field& field(SensorType type) const;
  // Each type is its own Field with its own AR(1) state — per-type
  // batches touch disjoint state.
  [[nodiscard]] bool concurrent_type_batches() const noexcept override {
    return true;
  }
  [[nodiscard]] std::size_t type_count() const noexcept override {
    return fields_.size();
  }
  [[nodiscard]] std::int64_t epoch() const noexcept override { return epoch_; }

 private:
  std::vector<Field> fields_;
  std::int64_t epoch_ = 0;
};

}  // namespace dirq::data

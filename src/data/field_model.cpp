#include "data/field_model.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace dirq::data {

FieldParams default_params(SensorType type) {
  FieldParams p;
  // Calibration note: the paper's dataset is strongly spatially and
  // temporally correlated. The dominant dynamic is coherent drift (the
  // diurnal swing and slowly moving fronts): readings change steadily, so
  // update traffic scales like 1/theta (the Fig. 6 regime), while nearby
  // nodes move together, keeping range tables value-coherent per subtree
  // (the low-overshoot Fig. 7 regime). Per-epoch stochastic noise is kept
  // an order of magnitude below the 3-9 % theta sweep. See EXPERIMENTS.md
  // "workload calibration".
  switch (type) {
    case kSensorTemperature:
      p.base = 22.0;
      p.diurnal_amplitude = 5.0;
      p.diurnal_period = 1200.0;
      p.gradient_x = 8.0;   // altitude lapse across the deployment
      p.gradient_y = 3.0;
      p.bump_amplitude = 4.0;
      p.bump_sigma = 25.0;
      p.bump_drift = 0.05;
      p.regional_sigma = 0.08;
      p.regional_rho = 0.98;
      p.node_sigma = 0.03;
      break;
    case kSensorHumidity:
      p.base = 60.0;
      p.diurnal_amplitude = 12.0;
      p.diurnal_period = 1200.0;
      p.phase = std::numbers::pi;  // humid when cool
      p.gradient_x = -10.0;  // distance to the river bank
      p.gradient_y = 5.0;
      p.bump_amplitude = 7.0;
      p.bump_sigma = 25.0;
      p.bump_drift = 0.05;
      p.regional_sigma = 0.15;
      p.regional_rho = 0.98;
      p.node_sigma = 0.06;
      break;
    case kSensorLight:
      p.base = 500.0;
      p.diurnal_amplitude = 400.0;
      p.diurnal_period = 1200.0;
      p.gradient_x = 150.0;  // canopy density gradient
      p.gradient_y = 60.0;
      p.bump_amplitude = 100.0;  // cloud shadows
      p.bump_sigma = 20.0;
      p.bump_drift = 0.08;
      p.regional_sigma = 3.0;
      p.regional_rho = 0.98;
      p.node_sigma = 1.5;
      break;
    case kSensorSoilMoisture:
      p.base = 35.0;
      p.diurnal_amplitude = 1.5;  // soil barely follows the day cycle
      p.gradient_x = 6.0;
      p.gradient_y = 6.0;
      p.bump_amplitude = 5.0;
      p.bump_drift = 0.004;  // fronts move very slowly
      p.regional_rho = 0.995;
      p.regional_sigma = 0.02;
      p.node_sigma = 0.01;
      break;
    default:
      p.base = 10.0 + 7.0 * static_cast<double>(type);
      break;
  }
  return p;
}

Field::Field(SensorType type, FieldParams params, const net::Topology& topo,
             sim::Rng rng)
    : type_(type), params_(params), rng_(rng), topo_(&topo) {
  geo_.init(topo, params_.regional_cell);

  sim::Rng bump_rng = rng_.substream("bumps");
  for (std::size_t b = 0; b < params_.bump_count; ++b) {
    Bump bump;
    bump.cx = bump_rng.uniform(geo_.min_x, geo_.min_x + geo_.area_w);
    bump.cy = bump_rng.uniform(geo_.min_y, geo_.min_y + geo_.area_h);
    const double angle = bump_rng.uniform(0.0, 2.0 * std::numbers::pi);
    bump.vx = params_.bump_drift * std::cos(angle);
    bump.vy = params_.bump_drift * std::sin(angle);
    bump.amplitude = params_.bump_amplitude * bump_rng.uniform(0.5, 1.0) *
                     (bump_rng.bernoulli(0.5) ? 1.0 : -1.0);
    bump.sigma = params_.bump_sigma * bump_rng.uniform(0.7, 1.3);
    bumps_.push_back(bump);
  }
  regional_.assign(geo_.cell_count(), 0.0);
  node_noise_.assign(geo_.node_count(), 0.0);
  refresh_diurnal();
}

void Field::refresh_diurnal() {
  diurnal_ = params_.diurnal_amplitude *
             std::sin(2.0 * std::numbers::pi * static_cast<double>(epoch_) /
                          params_.diurnal_period +
                      params_.phase);
}

void Field::advance_to(std::int64_t epoch) {
  if (epoch < epoch_) {
    throw std::invalid_argument("Field::advance_to: epochs are monotonic");
  }
  while (epoch_ < epoch) step_once();
}

void Field::step_once() {
  ++epoch_;
  // Drift fronts; bounce off the deployment-area walls so they keep
  // sweeping over the nodes instead of wandering away.
  for (Bump& b : bumps_) {
    b.cx += b.vx;
    b.cy += b.vy;
    if (b.cx < geo_.min_x || b.cx > geo_.min_x + geo_.area_w) b.vx = -b.vx;
    if (b.cy < geo_.min_y || b.cy > geo_.min_y + geo_.area_h) b.vy = -b.vy;
  }
  for (double& r : regional_) {
    r = params_.regional_rho * r + rng_.normal(0.0, params_.regional_sigma);
  }
  for (double& n : node_noise_) {
    n = params_.node_rho * n + rng_.normal(0.0, params_.node_sigma);
  }
  refresh_diurnal();
}

std::size_t Field::cell_of(double x, double y) const {
  return geo_.cell_of(x, y);
}

double Field::field_value(double x, double y, std::size_t cell) const {
  double v = params_.base + diurnal_ +
             params_.gradient_x * (x - geo_.min_x) / geo_.area_w +
             params_.gradient_y * (y - geo_.min_y) / geo_.area_h;
  for (const Bump& b : bumps_) {
    const double dx = x - b.cx;
    const double dy = y - b.cy;
    const double z = (dx * dx + dy * dy) / (2.0 * b.sigma * b.sigma);
    // Far-field cutoff, value-identical by construction: exp(-z) for
    // z > 80 is below 1.8e-35, so the term is under |amplitude| * 1.8e-35
    // — far less than half an ulp of any |v| >= 1e-6 (ulp(1e-6)/2 ~ 1e-22
    // for amplitudes up to 1e6), and x + t == x in round-to-nearest
    // whenever |t| < ulp(x)/2. Large topologies put most nodes in this
    // regime for most fronts; the paper-scale 100x100 area never does, so
    // the goldens are untouched twice over.
    if (z > 80.0 && (v > 1e-6 || v < -1e-6)) continue;
    v += b.amplitude * std::exp(-z);
  }
  v += regional_[cell];
  return v;
}

double Field::field_at(double x, double y) const {
  return field_value(x, y, cell_of(x, y));
}

void Field::adopt_new_nodes() const {
  // Nodes deployed after construction (paper §4.2 dynamics): capture their
  // positions; their sensor-local AR(1) noise starts from 0 and evolves
  // from the next step (new hardware, no noise history).
  geo_.adopt_new_nodes(*topo_);
  node_noise_.resize(geo_.node_count(), 0.0);
}

double Field::reading(NodeId node) const {
  if (node >= geo_.node_count()) adopt_new_nodes();
  return field_value(geo_.node_x.at(node), geo_.node_y.at(node),
                     geo_.node_cell[node]) +
         node_noise_.at(node);
}

void Field::readings(std::span<const NodeId> nodes,
                     std::span<double> out) const {
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    out[i] = reading(nodes[i]);
  }
}

Environment::Environment(const net::Topology& topo,
                         std::size_t sensor_type_count, sim::Rng rng) {
  fields_.reserve(sensor_type_count);
  for (SensorType t = 0; t < sensor_type_count; ++t) {
    fields_.emplace_back(t, default_params(t), topo,
                         rng.substream("field", t));
  }
}

void Environment::advance_to(std::int64_t epoch) {
  for (Field& f : fields_) f.advance_to(epoch);
  epoch_ = epoch;
}

double Environment::reading(NodeId node, SensorType type) const {
  return fields_.at(type).reading(node);
}

void Environment::readings(SensorType type, std::span<const NodeId> nodes,
                           std::span<double> out) const {
  // One virtual call for the whole batch; the field's loop is devirtualised
  // and bit-identical to per-node reading() (readings are pure at a fixed
  // epoch, so call order cannot change values).
  fields_.at(type).readings(nodes, out);
}

const Field& Environment::field(SensorType type) const {
  return fields_.at(type);
}

}  // namespace dirq::data

// Abstraction over "where sensor readings come from": the synthetic
// Environment (src/data/field_model.hpp), its counter-based fast twin
// (src/data/fast_field.hpp), or a recorded trace being replayed
// (src/data/trace.hpp). The protocol layers only ever see this interface,
// so a user can swap the paper's synthetic dataset for real deployment
// data without touching DirQ.
#pragma once

#include <cstdint>
#include <span>

#include "sim/types.hpp"

namespace dirq::data {

class ReadingSource {
 public:
  virtual ~ReadingSource() = default;

  /// Advances to the given epoch (monotonic).
  virtual void advance_to(std::int64_t epoch) = 0;

  /// Reading of `node` for `type` at the current epoch.
  [[nodiscard]] virtual double reading(NodeId node, SensorType type) const = 0;

  /// Batch reading plane: fills `out[i]` with the reading of `nodes[i]`
  /// for `type` at the current epoch. `out.size()` must equal
  /// `nodes.size()`. The epoch loop issues one call per sensor type per
  /// epoch through this path instead of one virtual `reading()` per node;
  /// values are required to be identical to the per-node path (the batch
  /// is a transport optimisation, never a semantic change). The default
  /// implementation delegates per node; backends override it with a tight
  /// devirtualised loop.
  virtual void readings(SensorType type, std::span<const NodeId> nodes,
                        std::span<double> out) const {
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      out[i] = reading(nodes[i], type);
    }
  }

  /// True when `readings` calls for *different* sensor types may run
  /// concurrently (same epoch, no interleaved advance_to). Both synthetic
  /// backends qualify — each type is an independent field object, so even
  /// their mutable memo caches are disjoint per type — but the default is
  /// false so an unknown source (trace replay, user subclass) is never
  /// raced by the parallel epoch engine.
  [[nodiscard]] virtual bool concurrent_type_batches() const noexcept {
    return false;
  }

  /// True when `readings` calls for disjoint node slices of the *same*
  /// sensor type may also run concurrently, letting the engine chunk one
  /// large type's batch across the pool instead of serializing behind the
  /// per-type fan-out. Requires concurrent_type_batches() and is a
  /// stronger claim: per-node memo state must be node-disjoint and any
  /// cell/region-shared memo must be thread-private (FastField keeps a
  /// per-thread cell scratch). Callers must also have settled lazy node
  /// adoption first — one serial reading() of the highest node id a batch
  /// will name is enough. Default false: sources with cross-node shared
  /// state (the pinned Environment's per-cell memo) must never be split.
  [[nodiscard]] virtual bool concurrent_intra_type_chunks() const noexcept {
    return false;
  }

  /// Number of sensor types this source provides (types are 0..n-1).
  [[nodiscard]] virtual std::size_t type_count() const = 0;

  /// Current epoch.
  [[nodiscard]] virtual std::int64_t epoch() const = 0;
};

/// Which synthetic-environment backend an experiment samples from.
///   Pinned — the sequential AR(1) Environment (field_model.hpp). The
///     default; every scenario golden is pinned against its streams.
///   Fast — the counter-based FastEnvironment (fast_field.hpp): same
///     spatial + temporal correlation structure, O(1) random access,
///     per-epoch cost independent of history. Different (but equally
///     deterministic) values — never golden-compared against Pinned.
enum class EnvironmentBackend { Pinned, Fast };

}  // namespace dirq::data

// Abstraction over "where sensor readings come from": the synthetic
// Environment (src/data/field_model.hpp) or a recorded trace being
// replayed (src/data/trace.hpp). The protocol layers only ever see this
// interface, so a user can swap the paper's synthetic dataset for real
// deployment data without touching DirQ.
#pragma once

#include <cstdint>

#include "sim/types.hpp"

namespace dirq::data {

class ReadingSource {
 public:
  virtual ~ReadingSource() = default;

  /// Advances to the given epoch (monotonic).
  virtual void advance_to(std::int64_t epoch) = 0;

  /// Reading of `node` for `type` at the current epoch.
  [[nodiscard]] virtual double reading(NodeId node, SensorType type) const = 0;

  /// Number of sensor types this source provides (types are 0..n-1).
  [[nodiscard]] virtual std::size_t type_count() const = 0;

  /// Current epoch.
  [[nodiscard]] virtual std::int64_t epoch() const = 0;
};

}  // namespace dirq::data

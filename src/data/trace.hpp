// Sensor-trace recording and replay.
//
// TraceRecorder captures (epoch, node, type) -> value tuples from any
// ReadingSource (typically the synthetic Environment) into a dense
// in-memory table, which can be saved to / loaded from a TSV file. The
// resulting Trace replays through the same ReadingSource interface, so an
// entire experiment can be re-run bit-identically from a file — or from a
// real deployment's data massaged into the same format.
//
// TSV format (one header line, then one line per epoch x node):
//   epoch <TAB> node <TAB> v0 <TAB> v1 ... (one column per sensor type)
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "data/reading_source.hpp"
#include "sim/types.hpp"

namespace dirq::data {

/// A dense recorded trace: epochs 0..E-1, nodes 0..N-1, types 0..T-1.
class Trace final : public ReadingSource {
 public:
  Trace() = default;
  Trace(std::size_t nodes, std::size_t types) : nodes_(nodes), types_(types) {}

  // --- recording -----------------------------------------------------------

  /// Appends one epoch of readings pulled from `source` (which must
  /// already be advanced to the epoch being recorded). Epochs append
  /// consecutively starting from 0.
  void record_epoch(const ReadingSource& source);

  // --- ReadingSource (replay) ----------------------------------------------

  /// Advance within the recorded range; clamps at the last recorded epoch
  /// (a finished trace keeps reporting its final state).
  void advance_to(std::int64_t epoch) override;
  [[nodiscard]] double reading(NodeId node, SensorType type) const override;
  [[nodiscard]] std::size_t type_count() const override { return types_; }
  [[nodiscard]] std::int64_t epoch() const override { return epoch_; }

  // --- shape & IO -------------------------------------------------------------

  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_; }
  [[nodiscard]] std::size_t epoch_count() const noexcept {
    return nodes_ * types_ == 0 ? 0 : values_.size() / (nodes_ * types_);
  }

  /// Raw access for tests: value at (epoch, node, type).
  [[nodiscard]] double at(std::int64_t epoch, NodeId node, SensorType type) const;

  void save(std::ostream& os) const;
  static Trace load(std::istream& is);

 private:
  [[nodiscard]] std::size_t index(std::int64_t epoch, NodeId node,
                                  SensorType type) const;

  std::size_t nodes_ = 0;
  std::size_t types_ = 0;
  std::vector<double> values_;  // [epoch][node][type]
  std::int64_t epoch_ = 0;
};

/// Convenience: records `epochs` epochs of `source` for `nodes` nodes.
Trace record(ReadingSource& source, std::size_t nodes, std::int64_t epochs);

}  // namespace dirq::data

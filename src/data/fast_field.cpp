#include "data/fast_field.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace dirq::data {

namespace {

/// Triangle-wave reflection of p into [lo, lo + w]: the closed form of
/// "drift and bounce off the walls", so any epoch's front position costs
/// O(1) instead of one step per elapsed epoch.
double fold(double p, double lo, double w) {
  if (!(w > 0.0)) return lo;
  double q = std::fmod(p - lo, 2.0 * w);
  if (q < 0.0) q += 2.0 * w;
  return lo + (q <= w ? q : 2.0 * w - q);
}

/// Innovation draw for the windowed sums: one counter_hash, with the
/// popcount gaussian and the smoothing uniform taken from the SAME word
/// (unlike CounterRng::normal_at, which spends a second finaliser round
/// decorrelating them). Sharing the word adds cov(popcount, uniform) =
/// 1/4, which the constant corrects exactly — variance is
/// 16 + 1/12 + 2*(1/4); the residual higher-moment blemish washes out in
/// the W-term CLT sum this feeds. Refills are the fast backend's hottest
/// loop, so the draw is half of normal_at's cost by design.
double innovation_at(std::uint64_t stream, std::uint64_t counter) noexcept {
  const std::uint64_t z = sim::counter_hash(stream, counter);
  constexpr double kInvSd = 0.24556365272101743;  // 1/sqrt(16 + 1/12 + 1/2)
  return (static_cast<double>(std::popcount(z)) - 32.5 +
          static_cast<double>(z >> 11) * 0x1.0p-53) *
         kInvSd;
}

}  // namespace

void FastField::NoiseProcess::init(double rho, double sigma) {
  const double r = std::clamp(rho, 0.0, 0.999999);
  // Stationary sd of the pinned AR(1) process this approximates.
  const double target_sd = sigma / std::sqrt(1.0 - r * r);
  // Block length tracks the AR(1) time constant tau = -1/ln(rho): half a
  // time constant per block. Coarser blocks are cheaper but the
  // piecewise-linear lerp then holds mid-lag correlation too high above
  // the rho^k target (linear value-noise has a fat autocorrelation
  // shoulder out to 2 blocks); tau/2 keeps every tested lag within ~0.1
  // of the target. Power of two so the hot path is a shift.
  const double tau = r > 0.0 ? -1.0 / std::log(r) : 1.0;
  const double s = std::clamp(tau / 2.0, 1.0, 4096.0);
  log2_block = 0;
  while ((std::int64_t{1} << (log2_block + 1)) <= static_cast<std::int64_t>(s)) {
    ++log2_block;
  }
  const double block = static_cast<double>(std::int64_t{1} << log2_block);
  decay = std::pow(r, block);

  // Window size: truncate once the tail weight a^W drops under 15 %. The
  // truncated variance (a^2W ~ 2 %) is folded back in by `scale`; the
  // truncation's long-lag correlation deficit stays inside the test
  // tolerance at 4 blocks out (tail 0.2 does not). decay lands around
  // 0.5-0.75 for S ~ tau/2, so W is typically 4-6 — the refill loop is
  // the backend's hottest path, so every draw counts.
  window = 2;
  if (decay > 1e-9) {
    window = static_cast<int>(
        std::ceil(std::log(0.15) / std::log(std::min(decay, 0.999))));
    window = std::clamp(window, 2, kMaxWindow);
  }

  // Scale the unit-innovation windowed sum to the target stationary sd,
  // correcting for (a) the window's own variance and (b) the phase-average
  // variance shrink of lerping between correlated anchors.
  const double a2 = decay * decay;
  double var_x = static_cast<double>(window);
  double cov = static_cast<double>(window - 1);
  if (a2 < 1.0) {
    var_x = (1.0 - std::pow(a2, window)) / (1.0 - a2);
    cov = decay * (1.0 - std::pow(a2, window - 1)) / (1.0 - a2);
  }
  const double c = var_x > 0.0 ? cov / var_x : 0.0;
  scale = target_sd / std::sqrt(var_x * (2.0 + c) / 3.0);
}

FastField::FastField(SensorType type, FieldParams params,
                     const net::Topology& topo, sim::Rng rng)
    : type_(type), params_(params), crng_(rng.seed()), topo_(&topo) {
  geo_.init(topo, params_.regional_cell);

  // Identical front geometry to the pinned Field: same substream, same
  // draw order (see Field's constructor).
  sim::Rng bump_rng = rng.substream("bumps");
  for (std::size_t b = 0; b < params_.bump_count; ++b) {
    Bump bump;
    bump.cx0 = bump_rng.uniform(geo_.min_x, geo_.min_x + geo_.area_w);
    bump.cy0 = bump_rng.uniform(geo_.min_y, geo_.min_y + geo_.area_h);
    const double angle = bump_rng.uniform(0.0, 2.0 * std::numbers::pi);
    bump.vx = params_.bump_drift * std::cos(angle);
    bump.vy = params_.bump_drift * std::sin(angle);
    bump.amplitude = params_.bump_amplitude * bump_rng.uniform(0.5, 1.0) *
                     (bump_rng.bernoulli(0.5) ? 1.0 : -1.0);
    bump.sigma = params_.bump_sigma * bump_rng.uniform(0.7, 1.3);
    bump.cx = bump.cx0;
    bump.cy = bump.cy0;
    bumps_.push_back(bump);
  }

  regional_noise_.init(params_.regional_rho, params_.regional_sigma);
  node_noise_.init(params_.node_rho, params_.node_sigma);
  regional_stream_ = crng_.substream("regional").stream();
  node_stream_ = crng_.substream("node-noise").stream();
  node_cache_.assign(geo_.node_count(), NodeCache{});
  cell_cache_.assign(geo_.cell_count(), CellCache{});
  static std::atomic<std::uint64_t> next_instance_id{1};
  instance_id_ = next_instance_id.fetch_add(1, std::memory_order_relaxed);
  init_node_cache(0);
  advance_derived();
  refresh_bumps();
}

void FastField::refresh_diurnal() {
  diurnal_ = params_.diurnal_amplitude *
             std::sin(2.0 * std::numbers::pi * static_cast<double>(epoch_) /
                          params_.diurnal_period +
                      params_.phase);
}

void FastField::refresh_bumps() {
  const double t = static_cast<double>(epoch_);
  for (Bump& b : bumps_) {
    b.cx = fold(b.cx0 + b.vx * t, geo_.min_x, geo_.area_w);
    b.cy = fold(b.cy0 + b.vy * t, geo_.min_y, geo_.area_h);
  }
}

void FastField::advance_derived() {
  refresh_diurnal();
  base_diurnal_ = params_.base + diurnal_;
  const auto split = [this](int log2_block, std::int64_t& block, double& frac) {
    block = epoch_ >> log2_block;
    frac = static_cast<double>(epoch_ - (block << log2_block)) /
           static_cast<double>(std::int64_t{1} << log2_block);
  };
  split(kTerrainLog2Block, terrain_block_, terrain_frac_);
  split(node_noise_.log2_block, node_block_, node_frac_);
  split(regional_noise_.log2_block, regional_block_, regional_frac_);
}

void FastField::advance_to(std::int64_t epoch) {
  if (epoch < epoch_) {
    throw std::invalid_argument("FastField::advance_to: epochs are monotonic");
  }
  if (epoch == epoch_) return;
  epoch_ = epoch;
  advance_derived();
  refresh_bumps();
}

double FastField::anchor_sum(const NoiseProcess& p, std::uint64_t stream,
                             std::int64_t anchor) const {
  // X(anchor) = scale * sum_{j=0}^{W-1} a^j eps(anchor - j): a pure
  // function of (stream, anchor) with a fixed summation order, so every
  // path that produces this anchor — fresh refill, random access, or the
  // sequential hi->lo reuse below — yields bit-identical values.
  double x = 0.0, w = 1.0;
  for (int j = 0; j < p.window; ++j) {
    x += w * innovation_at(stream, static_cast<std::uint64_t>(anchor - j));
    w *= p.decay;
  }
  return p.scale * x;
}

double FastField::bumps_at_epoch(double x, double y,
                                 std::int64_t epoch) const {
  const double t = static_cast<double>(epoch);
  double v = 0.0;
  for (const Bump& b : bumps_) {
    const double cx = fold(b.cx0 + b.vx * t, geo_.min_x, geo_.area_w);
    const double cy = fold(b.cy0 + b.vy * t, geo_.min_y, geo_.area_h);
    const double dx = x - cx;
    const double dy = y - cy;
    const double z = (dx * dx + dy * dy) / (2.0 * b.sigma * b.sigma);
    // Same far-field cutoff rationale as Field::field_value: exp(-z) for
    // z > 80 is below any contribution a front can make to a reading.
    if (z > 80.0) continue;
    v += b.amplitude * std::exp(-z);
  }
  return v;
}

double FastField::bumps_now(double x, double y) const {
  double v = 0.0;
  for (const Bump& b : bumps_) {
    const double dx = x - b.cx;
    const double dy = y - b.cy;
    const double z = (dx * dx + dy * dy) / (2.0 * b.sigma * b.sigma);
    if (z > 80.0) continue;
    v += b.amplitude * std::exp(-z);
  }
  return v;
}

double FastField::regional_value_in(CellCache& c, std::size_t cell) const {
  if (c.block != regional_block_) {
    const std::uint64_t stream = sim::counter_hash(regional_stream_, cell);
    // Sequential advance reuses the high anchor as the new low one (the
    // common case in the epoch loop); anchors are pure, so this equals a
    // full recomputation bit-for-bit.
    c.lo = c.block == regional_block_ - 1
               ? c.hi
               : anchor_sum(regional_noise_, stream, regional_block_);
    c.hi = anchor_sum(regional_noise_, stream, regional_block_ + 1);
    c.block = regional_block_;
  }
  return c.lo + (c.hi - c.lo) * regional_frac_;
}

double FastField::deterministic_at(double x, double y) const {
  return base_diurnal_ +
         params_.gradient_x * (x - geo_.min_x) / geo_.area_w +
         params_.gradient_y * (y - geo_.min_y) / geo_.area_h + bumps_now(x, y);
}

double FastField::field_at(double x, double y) const {
  return deterministic_at(x, y) + regional_value(geo_.cell_of(x, y));
}

void FastField::adopt_new_nodes() const {
  // Late-deployed nodes (paper §4.2): capture positions. Unlike the pinned
  // backend (whose AR(1) history starts at zero for newcomers), the
  // counter noise is a pure function of the node index, so an adopted node
  // reads its full stationary noise immediately — an acceptable semantic
  // difference for a backend that is never golden-compared to Pinned.
  const std::size_t old = geo_.adopt_new_nodes(*topo_);
  node_cache_.resize(geo_.node_count(), NodeCache{});
  init_node_cache(old);
}

void FastField::init_node_cache(std::size_t from) const {
  // Shared by construction and late-node adoption so the static per-node
  // terms can never drift between the two populations.
  for (std::size_t u = from; u < geo_.node_count(); ++u) {
    node_cache_[u].gradient =
        params_.gradient_x * (geo_.node_x[u] - geo_.min_x) / geo_.area_w +
        params_.gradient_y * (geo_.node_y[u] - geo_.min_y) / geo_.area_h;
    node_cache_[u].cell = static_cast<std::uint32_t>(geo_.node_cell[u]);
  }
}

std::vector<FastField::CellCache>& FastField::tls_cell_scratch() const {
  // A small per-thread LRU keyed by the process-unique instance id: the
  // epoch loop touches a handful of fields (one per sensor type), so
  // each worker settles into a steady slot per field. An evicted or new
  // slot starts cold (invalid blocks) and re-derives anchors on first
  // touch — pure recomputation, identical bits.
  struct Slot {
    std::uint64_t id = 0;
    std::uint64_t tick = 0;
    std::vector<CellCache> cells;
  };
  thread_local std::array<Slot, 8> slots;
  thread_local std::uint64_t clock = 0;
  ++clock;
  Slot* victim = &slots[0];
  for (Slot& s : slots) {
    if (s.id == instance_id_) {
      s.tick = clock;
      if (s.cells.size() != cell_cache_.size()) {
        s.cells.assign(cell_cache_.size(), CellCache{});
      }
      return s.cells;
    }
    if (s.tick < victim->tick) victim = &s;
  }
  victim->id = instance_id_;
  victim->tick = clock;
  victim->cells.assign(cell_cache_.size(), CellCache{});
  return victim->cells;
}

double FastField::reading(NodeId node) const {
  return reading_in(cell_cache_, node);
}

double FastField::reading_in(std::vector<CellCache>& cells,
                             NodeId node) const {
  if (node >= geo_.node_count()) {
    adopt_new_nodes();
    if (node >= geo_.node_count()) {
      // Same contract as the pinned backend (geo_.node_x.at(node)): an id
      // the topology has never seen is a clean error, not UB.
      throw std::out_of_range("FastField::reading: unknown node id");
    }
  }
  NodeCache& c = node_cache_[node];  // bounded by the adoption check above
  if (c.terrain_block != terrain_block_) {
    const double x = geo_.node_x[node];
    const double y = geo_.node_y[node];
    // Sequential advance reuses the high anchor as the new low one; both
    // anchors are pure functions of the epoch, so the reuse is exact.
    c.bump_lo = c.terrain_block == terrain_block_ - 1
                    ? c.bump_hi
                    : bumps_at_epoch(x, y, terrain_block_ << kTerrainLog2Block);
    c.bump_hi =
        bumps_at_epoch(x, y, (terrain_block_ + 1) << kTerrainLog2Block);
    c.terrain_block = terrain_block_;
  }
  if (c.noise_block != node_block_) {
    const std::uint64_t stream = sim::counter_hash(node_stream_, node);
    c.noise_lo = c.noise_block == node_block_ - 1
                     ? c.noise_hi
                     : anchor_sum(node_noise_, stream, node_block_);
    c.noise_hi = anchor_sum(node_noise_, stream, node_block_ + 1);
    c.noise_block = node_block_;
  }
  return base_diurnal_ + c.gradient +
         c.bump_lo + (c.bump_hi - c.bump_lo) * terrain_frac_ +
         regional_value_in(cells[c.cell], c.cell) +
         c.noise_lo + (c.noise_hi - c.noise_lo) * node_frac_;
}

void FastField::readings(std::span<const NodeId> nodes,
                         std::span<double> out) const {
  // The batch path goes through the per-thread cell scratch so that
  // disjoint chunks of one batch can run on several workers at once
  // (concurrent_intra_type_chunks): node entries are disjoint across any
  // node partition, and each thread derives regional anchors privately.
  // Anchors are pure functions of (seed, cell, block), so the values stay
  // bit-identical to the shared-cache per-node path.
  std::vector<CellCache>& cells = tls_cell_scratch();
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    out[i] = reading_in(cells, nodes[i]);
  }
}

FastEnvironment::FastEnvironment(const net::Topology& topo,
                                 std::size_t sensor_type_count, sim::Rng rng) {
  fields_.reserve(sensor_type_count);
  for (SensorType t = 0; t < sensor_type_count; ++t) {
    fields_.emplace_back(t, default_params(t), topo, rng.substream("field", t));
  }
}

void FastEnvironment::advance_to(std::int64_t epoch) {
  for (FastField& f : fields_) f.advance_to(epoch);
  epoch_ = epoch;
}

double FastEnvironment::reading(NodeId node, SensorType type) const {
  return fields_.at(type).reading(node);
}

void FastEnvironment::readings(SensorType type, std::span<const NodeId> nodes,
                               std::span<double> out) const {
  fields_.at(type).readings(nodes, out);
}

const FastField& FastEnvironment::field(SensorType type) const {
  return fields_.at(type);
}

std::unique_ptr<ReadingSource> make_environment(EnvironmentBackend backend,
                                                const net::Topology& topo,
                                                std::size_t sensor_type_count,
                                                sim::Rng rng) {
  if (backend == EnvironmentBackend::Fast) {
    return std::make_unique<FastEnvironment>(topo, sensor_type_count, rng);
  }
  return std::make_unique<Environment>(topo, sensor_type_count, rng);
}

const char* backend_name(EnvironmentBackend backend) noexcept {
  return backend == EnvironmentBackend::Fast ? "fast" : "pinned";
}

}  // namespace dirq::data

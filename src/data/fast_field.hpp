// Counter-based synthetic environment: the "fast" backend behind the
// ReadingSource seam.
//
// The pinned Field (field_model.hpp) draws one sequential normal per node
// per type per epoch to evolve its AR(1) noise — at 500 nodes that stream
// is the profile's scaling floor (ROADMAP "Known floor"), and it cannot be
// skipped for suppressed nodes or jumped over, because the draw order IS
// the state. FastField reproduces the same dataset *properties* (§7:
// spatial correlation, temporal correlation, the gradient / diurnal /
// drifting-front structure — those deterministic components are shared
// arithmetic) while replacing both AR(1) streams with counter-based noise:
//
//   noise(stream, t) = lerp(X(b), X(b+1), frac)        b = t / S (block)
//   X(b) = scale * sum_{k=0}^{W-1} a^k eps(stream, b-k)
//
// a windowed exponentially-weighted sum of per-block innovations
// eps(stream, c) = CounterRng normal at counter c, linearly interpolated
// between block anchors. The block length S tracks the AR(1) time
// constant (-1/ln rho) and the per-block decay a = rho^S, so the lag-k
// autocorrelation approximates the pinned rho^k target (asserted within
// tolerance by tests/data/fast_field_test.cpp); `scale` maps the sum to
// the pinned process's stationary variance sigma^2/(1-rho^2).
//
// Because every value is a pure function of (seed, stream, epoch):
//   * per-epoch cost is independent of history — epoch 10 000 costs the
//     same whether you stepped or jumped;
//   * suppressed nodes cost nothing (nothing advances behind their back);
//   * out-of-order node queries are deterministic (bit-identical re-reads).
// Per-entity anchor pairs are memoised per block (W draws amortised over S
// epochs on sequential advance), which is a cache, not state: recomputing
// yields the same bits.
//
// Fast is a *different* deterministic dataset from Pinned for the same
// seed. Goldens stay pinned; fast is for scale (see README "Environment
// backends").
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <span>
#include <vector>

#include "data/field_geometry.hpp"
#include "data/field_model.hpp"
#include "data/reading_source.hpp"
#include "net/topology.hpp"
#include "sim/counter_rng.hpp"
#include "sim/rng.hpp"
#include "sim/types.hpp"

namespace dirq::data {

/// One sensor type's counter-based field over a fixed node population.
/// Mirrors Field's interface; see the header comment for the noise model.
class FastField {
 public:
  /// `rng` plays the same role as Field's: its seed roots the counter
  /// streams and its "bumps" substream drives the identical front-geometry
  /// draws, so a FastField and a Field built from the same substream share
  /// gradient, diurnal phase, and front shapes exactly.
  FastField(SensorType type, FieldParams params, const net::Topology& topo,
            sim::Rng rng);

  /// Advances to `epoch` (monotonic, matching the ReadingSource contract).
  /// O(bump_count) regardless of the jump width — no history is replayed.
  void advance_to(std::int64_t epoch);

  /// Reading of the given node at the current epoch (same contract as
  /// Field::reading, including lazy adoption of late-deployed nodes).
  /// The slowly drifting bump terrain is linearly interpolated between
  /// per-node anchors 2^kTerrainLog2Block epochs apart (second-order
  /// error < 1e-3 of a reading — far below the noise floor), so a reading
  /// differs from deterministic_at + noises by at most that interpolation
  /// hair while staying a pure function of (seed, node, epoch).
  [[nodiscard]] double reading(NodeId node) const;

  /// Batch form: fills `out[i]` for `nodes[i]`; bit-identical to per-node
  /// `reading()` calls in any order.
  void readings(std::span<const NodeId> nodes, std::span<double> out) const;

  /// Field value at an arbitrary position excluding per-node noise
  /// (deterministic structure + regional noise) — the spatial-coherence
  /// probe, same contract as Field::field_at.
  [[nodiscard]] double field_at(double x, double y) const;

  /// The purely deterministic component (base + diurnal + gradient +
  /// fronts, no noise at all). field_at(x,y) - deterministic_at(x,y) is
  /// exactly the regional noise of the cell at (x,y); tests use this to
  /// probe the regional process in isolation.
  [[nodiscard]] double deterministic_at(double x, double y) const;

  [[nodiscard]] std::int64_t epoch() const noexcept { return epoch_; }
  [[nodiscard]] SensorType type() const noexcept { return type_; }
  [[nodiscard]] const FieldParams& params() const noexcept { return params_; }

 private:
  static constexpr int kMaxWindow = 16;
  /// Terrain (bump-field) anchors are spaced 32 epochs apart: the fronts
  /// drift <= 0.08 units/epoch against sigmas of 20-25, so the linear
  /// interpolation error between anchors is second-order (< 4e-3 of a
  /// reading for every shipped parameter set — an order of magnitude
  /// below each type's noise floor) while amortising the exp()
  /// evaluations to a small fraction of a call per reading.
  static constexpr int kTerrainLog2Block = 5;

  /// One counter-based noise process (regional or per-node): the windowed
  /// EW-sum parameters derived from (rho, sigma).
  struct NoiseProcess {
    int log2_block = 3;   // S = 1 << log2_block epochs per block
    int window = 4;       // innovations per windowed sum (W)
    double decay = 0.5;   // a = rho^S
    double scale = 1.0;   // unit-variance sum -> stationary AR(1) sd
    void init(double rho, double sigma);
  };

  /// Per-node hot state, packed into exactly one cache line: the memoised
  /// bump-terrain / node-noise anchors plus the node's static planar
  /// gradient term and regional cell (persistent data, not cache — kept
  /// here so a reading touches one line instead of four arrays; the
  /// epoch loop is memory-bound once the draws are amortised).
  struct alignas(64) NodeCache {
    std::int64_t terrain_block = std::numeric_limits<std::int64_t>::min();
    std::int64_t noise_block = std::numeric_limits<std::int64_t>::min();
    double bump_lo = 0.0, bump_hi = 0.0;
    double noise_lo = 0.0, noise_hi = 0.0;
    double gradient = 0.0;          // static planar term of this node
    std::uint32_t cell = 0;         // regional grid cell of this node
  };
  static_assert(sizeof(NodeCache) == 64);

  /// Memoised regional anchors per grid cell.
  struct CellCache {
    std::int64_t block = std::numeric_limits<std::int64_t>::min();
    double lo = 0.0, hi = 0.0;
  };

  void advance_derived();
  [[nodiscard]] double anchor_sum(const NoiseProcess& p, std::uint64_t stream,
                                  std::int64_t anchor) const;
  [[nodiscard]] double regional_value(std::size_t cell) const {
    return regional_value_in(cell_cache_[cell], cell);
  }
  [[nodiscard]] double regional_value_in(CellCache& c, std::size_t cell) const;
  [[nodiscard]] double reading_in(std::vector<CellCache>& cells,
                                  NodeId node) const;
  /// This thread's regional-anchor scratch for this field instance — what
  /// makes same-type batch chunks safe to run concurrently (the per-node
  /// cache is node-disjoint across chunks; the per-cell memo is not, so
  /// the batch path re-derives cell anchors into thread-local storage
  /// instead of sharing cell_cache_). Anchors are pure, so every copy
  /// holds the same bits; the scratch persists across epochs per worker,
  /// keeping the per-block amortisation.
  [[nodiscard]] std::vector<CellCache>& tls_cell_scratch() const;
  [[nodiscard]] double bumps_at_epoch(double x, double y,
                                      std::int64_t epoch) const;
  [[nodiscard]] double bumps_now(double x, double y) const;
  void refresh_bumps();
  void refresh_diurnal();
  void adopt_new_nodes() const;
  void init_node_cache(std::size_t from) const;

  SensorType type_;
  FieldParams params_;
  sim::CounterRng crng_;
  std::int64_t epoch_ = 0;
  const net::Topology* topo_ = nullptr;

  FieldGeometry geo_;
  double diurnal_ = 0.0;

  // Fronts: identical initial geometry to Field's (same substream), but
  // positions are evaluated closed-form (triangle-wave reflection of
  // start + velocity * t), so jumps cost nothing.
  struct Bump {
    double cx0, cy0;  // start centre
    double vx, vy;    // drift velocity
    double cx, cy;    // position at the current epoch
    double amplitude;
    double sigma;
  };
  std::vector<Bump> bumps_;

  NoiseProcess regional_noise_;
  NoiseProcess node_noise_;
  std::uint64_t regional_stream_ = 0;  // + cell index
  std::uint64_t node_stream_ = 0;      // + node index
  mutable std::vector<NodeCache> node_cache_;
  mutable std::vector<CellCache> cell_cache_;
  /// Process-unique (never reused) key for the thread-local cell scratch:
  /// an address could be recycled by a new field with a different seed,
  /// so identity cannot key on `this`.
  std::uint64_t instance_id_ = 0;

  // Per-epoch derived state (advance_to): block indices, interpolation
  // fractions, and the base + diurnal sum, so the per-reading hot path is
  // pure lerps.
  double base_diurnal_ = 0.0;
  std::int64_t terrain_block_ = 0;
  std::int64_t node_block_ = 0;
  std::int64_t regional_block_ = 0;
  double terrain_frac_ = 0.0;
  double node_frac_ = 0.0;
  double regional_frac_ = 0.0;
};

/// Bundle of one FastField per sensor type, advanced in lock-step — the
/// counter-based twin of Environment.
class FastEnvironment final : public ReadingSource {
 public:
  FastEnvironment(const net::Topology& topo, std::size_t sensor_type_count,
                  sim::Rng rng);

  void advance_to(std::int64_t epoch) override;
  [[nodiscard]] double reading(NodeId node, SensorType type) const override;
  void readings(SensorType type, std::span<const NodeId> nodes,
                std::span<double> out) const override;
  [[nodiscard]] const FastField& field(SensorType type) const;
  // Each type is its own FastField with its own memo caches — per-type
  // batches touch disjoint state.
  [[nodiscard]] bool concurrent_type_batches() const noexcept override {
    return true;
  }
  // Within one type, the batch path keeps per-cell anchors in per-thread
  // scratch (FastField::tls_cell_scratch) and per-node state is disjoint
  // across any node partition, so disjoint chunks of one batch may run
  // concurrently too (see ReadingSource for the adoption precondition).
  [[nodiscard]] bool concurrent_intra_type_chunks() const noexcept override {
    return true;
  }
  [[nodiscard]] std::size_t type_count() const noexcept override {
    return fields_.size();
  }
  [[nodiscard]] std::int64_t epoch() const noexcept override { return epoch_; }

 private:
  std::vector<FastField> fields_;
  std::int64_t epoch_ = 0;
};

/// Backend factory: builds the environment an experiment samples from.
/// Pinned constructs data::Environment with exactly the arguments the
/// driver always used (bit-identical streams, goldens untouched); Fast
/// constructs FastEnvironment from the same substream.
std::unique_ptr<ReadingSource> make_environment(EnvironmentBackend backend,
                                                const net::Topology& topo,
                                                std::size_t sensor_type_count,
                                                sim::Rng rng);

/// Canonical CLI / schema names ("pinned" / "fast").
[[nodiscard]] const char* backend_name(EnvironmentBackend backend) noexcept;

}  // namespace dirq::data

#include "data/trace.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace dirq::data {

void Trace::record_epoch(const ReadingSource& source) {
  if (types_ != source.type_count()) {
    throw std::invalid_argument("Trace::record_epoch: type count mismatch");
  }
  values_.reserve(values_.size() + nodes_ * types_);
  for (NodeId u = 0; u < nodes_; ++u) {
    for (SensorType t = 0; t < types_; ++t) {
      values_.push_back(source.reading(u, t));
    }
  }
}

std::size_t Trace::index(std::int64_t epoch, NodeId node,
                         SensorType type) const {
  if (node >= nodes_ || type >= types_) {
    throw std::out_of_range("Trace: node/type out of range");
  }
  const auto e = static_cast<std::size_t>(epoch);
  if (e >= epoch_count()) throw std::out_of_range("Trace: epoch out of range");
  return (e * nodes_ + node) * types_ + type;
}

double Trace::at(std::int64_t epoch, NodeId node, SensorType type) const {
  return values_.at(index(epoch, node, type));
}

void Trace::advance_to(std::int64_t epoch) {
  if (epoch < epoch_) {
    throw std::invalid_argument("Trace::advance_to: epochs are monotonic");
  }
  const auto last = static_cast<std::int64_t>(epoch_count()) - 1;
  epoch_ = std::min(epoch, std::max<std::int64_t>(last, 0));
}

double Trace::reading(NodeId node, SensorType type) const {
  return at(epoch_, node, type);
}

void Trace::save(std::ostream& os) const {
  os << "epoch\tnode";
  for (SensorType t = 0; t < types_; ++t) os << "\tv" << t;
  os << '\n';
  os.precision(17);
  const std::size_t epochs = epoch_count();
  for (std::size_t e = 0; e < epochs; ++e) {
    for (NodeId u = 0; u < nodes_; ++u) {
      os << e << '\t' << u;
      for (SensorType t = 0; t < types_; ++t) {
        os << '\t' << values_[(e * nodes_ + u) * types_ + t];
      }
      os << '\n';
    }
  }
}

Trace Trace::load(std::istream& is) {
  std::string header;
  if (!std::getline(is, header)) {
    throw std::runtime_error("Trace::load: empty input");
  }
  std::size_t types = 0;
  {
    std::istringstream hs(header);
    std::string col;
    while (hs >> col) {
      if (col.size() >= 2 && col[0] == 'v') ++types;
    }
  }
  if (types == 0) throw std::runtime_error("Trace::load: no value columns");

  std::vector<double> values;
  std::size_t nodes = 0;
  std::int64_t rows = 0;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::int64_t epoch = 0;
    std::size_t node = 0;
    if (!(ls >> epoch >> node)) {
      throw std::runtime_error("Trace::load: malformed row");
    }
    nodes = std::max(nodes, node + 1);
    for (std::size_t t = 0; t < types; ++t) {
      double v = 0.0;
      if (!(ls >> v)) throw std::runtime_error("Trace::load: missing value");
      values.push_back(v);
    }
    ++rows;
  }
  if (nodes == 0 || rows % static_cast<std::int64_t>(nodes) != 0) {
    throw std::runtime_error("Trace::load: ragged trace");
  }
  Trace trace(nodes, types);
  trace.values_ = std::move(values);
  return trace;
}

Trace record(ReadingSource& source, std::size_t nodes, std::int64_t epochs) {
  Trace trace(nodes, source.type_count());
  for (std::int64_t e = 0; e < epochs; ++e) {
    source.advance_to(e);
    trace.record_epoch(source);
  }
  return trace;
}

}  // namespace dirq::data

// Geometry shared by the synthetic-field backends: the node-position
// snapshot, the deployment bounding box, and the coarse regional-noise
// grid. Extracted from Field (field_model.hpp) so the counter-based
// FastField (fast_field.hpp) resolves cells and adopts late-deployed
// nodes with the exact same arithmetic — any drift here would silently
// decouple the backends' spatial correlation structure.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

#include "net/topology.hpp"
#include "sim/types.hpp"

namespace dirq::data {

struct FieldGeometry {
  // Node positions / cells are mutable because late-deployed nodes are
  // adopted lazily inside const readers (paper §4.2 dynamics).
  mutable std::vector<double> node_x, node_y;
  mutable std::vector<std::size_t> node_cell;  // cached cell_of per node
  double min_x = 0.0, min_y = 0.0;
  double area_w = 1.0, area_h = 1.0;
  std::size_t cells_x = 1, cells_y = 1;
  double cell_size = 1.0;  // side of the shared-noise grid cell

  /// Captures positions and sizes the regional grid. `regional_cell` is
  /// FieldParams::regional_cell.
  void init(const net::Topology& topo, double regional_cell) {
    cell_size = regional_cell;
    const auto nodes = topo.nodes();
    node_x.reserve(nodes.size());
    node_y.reserve(nodes.size());
    double max_x = 1.0, max_y = 1.0;
    min_x = 0.0;
    min_y = 0.0;
    bool first = true;
    for (const net::Node& n : nodes) {
      node_x.push_back(n.x);
      node_y.push_back(n.y);
      if (first) {
        min_x = max_x = n.x;
        min_y = max_y = n.y;
        first = false;
      } else {
        min_x = std::min(min_x, n.x);
        min_y = std::min(min_y, n.y);
        max_x = std::max(max_x, n.x);
        max_y = std::max(max_y, n.y);
      }
    }
    area_w = std::max(max_x - min_x, 1.0);
    area_h = std::max(max_y - min_y, 1.0);
    cells_x = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::ceil(area_w / cell_size)));
    cells_y = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::ceil(area_h / cell_size)));
    node_cell.reserve(nodes.size());
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      node_cell.push_back(cell_of(node_x[i], node_y[i]));
    }
  }

  [[nodiscard]] std::size_t cell_of(double x, double y) const {
    auto cx = static_cast<std::size_t>(
        std::clamp((x - min_x) / cell_size, 0.0,
                   static_cast<double>(cells_x - 1)));
    auto cy = static_cast<std::size_t>(
        std::clamp((y - min_y) / cell_size, 0.0,
                   static_cast<double>(cells_y - 1)));
    return cy * cells_x + cx;
  }

  [[nodiscard]] std::size_t cell_count() const noexcept {
    return cells_x * cells_y;
  }

  [[nodiscard]] std::size_t node_count() const noexcept {
    return node_x.size();
  }

  /// Captures nodes deployed after init (their positions are read from
  /// the topology); returns the node count before adoption so callers can
  /// extend their own per-node state in lock-step.
  std::size_t adopt_new_nodes(const net::Topology& topo) const {
    const std::size_t old = node_x.size();
    const auto nodes = topo.nodes();
    for (std::size_t i = old; i < nodes.size(); ++i) {
      node_x.push_back(nodes[i].x);
      node_y.push_back(nodes[i].y);
      node_cell.push_back(cell_of(nodes[i].x, nodes[i].y));
    }
    return old;
  }
};

}  // namespace dirq::data

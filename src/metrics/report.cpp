#include "metrics/report.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace dirq::metrics {

std::string fmt(double value, int precision) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(precision) << value;
  return oss.str();
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
    for (const auto& row : rows_) width[c] = std::max(width[c], row[c].size());
  }
  auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << std::setw(static_cast<int>(width[c]) + (c ? 2 : 0)) << cells[c];
    }
    os << '\n';
  };
  line(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) total += width[c] + (c ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) line(row);
}

TsvBlock::TsvBlock(std::string title, std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns)) {}

void TsvBlock::add_row(std::vector<std::string> cells) {
  cells.resize(columns_.size());
  rows_.push_back(std::move(cells));
}

void TsvBlock::print(std::ostream& os) const {
  os << "# " << title_ << '\n';
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    os << (c ? "\t" : "") << columns_[c];
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c ? "\t" : "") << row[c];
    }
    os << '\n';
  }
  os << '\n';
}

}  // namespace dirq::metrics

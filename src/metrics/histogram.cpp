#include "metrics/histogram.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>

namespace dirq::metrics {

namespace {
constexpr std::size_t kExact = 64;      // unit buckets for values 0..63
constexpr std::size_t kSubBuckets = 8;  // linear steps per power of two
}  // namespace

std::size_t LatencyHistogram::bucket_index(std::int64_t value) {
  if (value < static_cast<std::int64_t>(kExact)) {
    return static_cast<std::size_t>(value);
  }
  const auto u = static_cast<std::uint64_t>(value);
  const int msb = 63 - std::countl_zero(u);  // >= 6
  const auto sub =
      static_cast<std::size_t>((u >> (msb - 3)) & (kSubBuckets - 1));
  return kExact + static_cast<std::size_t>(msb - 6) * kSubBuckets + sub;
}

std::int64_t LatencyHistogram::bucket_floor(std::size_t bucket) {
  if (bucket < kExact) return static_cast<std::int64_t>(bucket);
  const std::size_t major = 6 + (bucket - kExact) / kSubBuckets;
  const std::size_t sub = (bucket - kExact) % kSubBuckets;
  return static_cast<std::int64_t>((kSubBuckets + sub) << (major - 3));
}

void LatencyHistogram::record(std::int64_t value) {
  if (value < 0) {
    throw std::invalid_argument("LatencyHistogram: negative sample");
  }
  const std::size_t b = bucket_index(value);
  if (b >= buckets_.size()) buckets_.resize(b + 1, 0);
  ++buckets_[b];
  if (count_ == 0 || value < min_) min_ = value;
  if (count_ == 0 || value > max_) max_ = value;
  sum_ += value;
  ++count_;
}

double LatencyHistogram::mean() const noexcept {
  return count_ == 0
             ? 0.0
             : static_cast<double>(sum_) / static_cast<double>(count_);
}

std::int64_t LatencyHistogram::quantile(double q) const {
  if (count_ == 0) return 0;
  const double clamped = q < 0.0 ? 0.0 : (q > 1.0 ? 1.0 : q);
  std::int64_t rank = static_cast<std::int64_t>(
      std::ceil(clamped * static_cast<double>(count_)));
  rank = std::clamp<std::int64_t>(rank, 1, count_);
  std::int64_t seen = 0;
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    seen += buckets_[b];
    if (seen >= rank) {
      return std::clamp(bucket_floor(b), min_, max_);
    }
  }
  return max_;  // unreachable when counts are consistent
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  if (other.count_ == 0) return;
  if (other.buckets_.size() > buckets_.size()) {
    buckets_.resize(other.buckets_.size(), 0);
  }
  for (std::size_t b = 0; b < other.buckets_.size(); ++b) {
    buckets_[b] += other.buckets_[b];
  }
  if (count_ == 0 || other.min_ < min_) min_ = other.min_;
  if (count_ == 0 || other.max_ > max_) max_ = other.max_;
  sum_ += other.sum_;
  count_ += other.count_;
}

}  // namespace dirq::metrics

// Plain-text reporting helpers used by the bench binaries: an aligned
// console table and a TSV block writer (one block per plotted series, so
// the paper figures can be regenerated with any plotting tool).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace dirq::metrics {

/// Fixed-precision double formatting ("12.34"); trims to integers cleanly.
std::string fmt(double value, int precision = 2);

/// Console table with right-aligned numeric columns.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  void print(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// TSV series block:
///   # <title>
///   <col1>\t<col2>...
///   ...rows...
///   (blank line)
class TsvBlock {
 public:
  TsvBlock(std::string title, std::vector<std::string> columns);

  void add_row(std::vector<std::string> cells);
  void print(std::ostream& os) const;

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dirq::metrics

#include "metrics/audit.hpp"

#include <algorithm>

namespace dirq::metrics {

QueryAudit audit_query(std::span<const NodeId> should,
                       std::span<const NodeId> received) {
  QueryAudit a;
  a.should_count = should.size();
  a.received_count = received.size();
  std::size_t i = 0, j = 0;
  while (i < should.size() && j < received.size()) {
    if (should[i] == received[j]) {
      ++a.correct;
      ++i;
      ++j;
    } else if (should[i] < received[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  a.wrong = a.received_count - a.correct;
  a.missed = a.should_count - a.correct;
  return a;
}

}  // namespace dirq::metrics

// Per-query accuracy accounting (paper §7.1).
//
// "We measure accuracy by computing the proportion of nodes that are being
// reached in response to a query to nodes that should be reached. Nodes
// that 'should' be reached refer to both source nodes and intermediate
// forwarding nodes."
//
// Overshoot (Fig. 7) is the fraction of reached-but-irrelevant nodes
// relative to the should-reach set.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "sim/types.hpp"

namespace dirq::metrics {

struct QueryAudit {
  std::size_t should_count = 0;    // |should| (sources + forwarders)
  std::size_t received_count = 0;  // |received|
  std::size_t correct = 0;         // |received && should|
  std::size_t wrong = 0;           // |received \ should|  (overshoot nodes)
  std::size_t missed = 0;          // |should \ received|  (coverage gaps)

  /// Fig. 7's metric: wrongly reached nodes as % of the should set.
  [[nodiscard]] double overshoot_pct() const noexcept {
    return should_count == 0
               ? 0.0
               : 100.0 * static_cast<double>(wrong) /
                     static_cast<double>(should_count);
  }

  /// §7.1's accuracy: reached / should-reach (>100 % indicates overshoot).
  [[nodiscard]] double reach_ratio_pct() const noexcept {
    return should_count == 0
               ? 100.0
               : 100.0 * static_cast<double>(received_count) /
                     static_cast<double>(should_count);
  }

  /// Fraction of the should-set actually covered (delivery completeness).
  [[nodiscard]] double coverage_pct() const noexcept {
    return should_count == 0
               ? 100.0
               : 100.0 * static_cast<double>(correct) /
                     static_cast<double>(should_count);
  }
};

/// Both spans must be sorted and duplicate-free.
QueryAudit audit_query(std::span<const NodeId> should,
                       std::span<const NodeId> received);

}  // namespace dirq::metrics

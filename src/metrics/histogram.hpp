// Streaming latency histogram for the serve plane and the per-sink batch
// latency metric.
//
// Values are non-negative virtual-epoch latencies (int64). The histogram
// is log-bucketed: values below 64 get exact unit buckets, larger values
// share buckets of 8 linear sub-steps per power of two (worst-case
// relative bucket width 12.5%). Quantiles are therefore deterministic
// integers — the lower bound of the bucket holding the target rank,
// clamped to the observed [min, max] — never an interpolation whose bytes
// could drift across platforms. That property is what lets the
// dirq.serve.v1 document be byte-identical across runs and thread counts.
//
// Recording is O(1), memory is bounded by the fixed bucket table
// (64 + 58*8 slots), and two histograms merge by bucket-wise addition —
// per-sink histograms sum to the global one exactly.
#pragma once

#include <cstdint>
#include <vector>

namespace dirq::metrics {

class LatencyHistogram {
 public:
  /// Records one non-negative sample; negative values throw
  /// (std::invalid_argument) — a negative latency is always a caller bug.
  void record(std::int64_t value);

  [[nodiscard]] std::int64_t count() const noexcept { return count_; }
  /// 0 when empty.
  [[nodiscard]] std::int64_t min() const noexcept { return count_ ? min_ : 0; }
  [[nodiscard]] std::int64_t max() const noexcept { return count_ ? max_ : 0; }
  /// Exact arithmetic mean (sum is tracked exactly); 0 when empty.
  [[nodiscard]] double mean() const noexcept;

  /// The q-quantile (q in [0, 1]) as the lower bound of the bucket holding
  /// rank ceil(q * count), clamped to [min, max]. Exact for values < 64;
  /// within 12.5% below otherwise. 0 when empty.
  [[nodiscard]] std::int64_t quantile(double q) const;

  /// Bucket-wise addition; quantiles of the merged histogram are exactly
  /// those of recording both sample streams into one.
  void merge(const LatencyHistogram& other);

  // Bucketing scheme, exposed for tests.
  [[nodiscard]] static std::size_t bucket_index(std::int64_t value);
  [[nodiscard]] static std::int64_t bucket_floor(std::size_t bucket);

 private:
  std::vector<std::int64_t> buckets_;  // grown lazily to the highest index
  std::int64_t count_ = 0;
  std::int64_t sum_ = 0;
  std::int64_t min_ = 0;
  std::int64_t max_ = 0;
};

}  // namespace dirq::metrics

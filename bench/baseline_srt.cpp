// Extension E11 — three-way comparison: DirQ (ATC) vs the SRT-style static
// index (paper ref [5]) vs flooding, on the paper's §7 workload.
//
// Quantifies the related-work argument of §2: SRT's one-time static index
// beats flooding through type/region pruning but cannot prune on current
// sensor values, so selective queries sweep every capable subtree; DirQ
// pays continuous update traffic to prune by value and wins overall when
// queries are frequent.
//
// Two plans share the relevant-fraction axis: the DirQ cells run the full
// experiment through the default runner body; the SRT cells replay the
// identical query stream (same seed -> same topology, environment,
// workload) against the static index with a bespoke cell body, folding
// (per-query cost, build cost, flooding total) into the result ledger.
#include "bench_util.hpp"
#include "core/srt.hpp"
#include "net/placement.hpp"
#include "query/workload.hpp"
#include "sim/rng.hpp"

namespace {

using namespace dirq;

/// Replays the §7 query stream against the SRT static index. Ledger
/// mapping: query_tx = per-query dissemination cost, control_tx = one-time
/// index build cost, flooding_total = the flooding equivalent.
core::ExperimentResults replay_srt(const core::ExperimentConfig& cfg) {
  sim::Rng rng(cfg.seed);
  net::Topology topo = net::random_connected(cfg.placement, rng);
  data::Environment env(topo, 4, rng.substream("environment"));
  net::SpanningTree tree(topo, 0);
  core::SrtScheme srt(topo, tree);
  query::WorkloadGenerator workload(
      topo, tree, env, query::WorkloadConfig{cfg.relevant_fraction, 0.02},
      rng.substream("workload"));
  const core::FloodingScheme flooding(topo);
  core::ExperimentResults res;
  for (std::int64_t epoch = 0; epoch < cfg.epochs; ++epoch) {
    env.advance_to(epoch);
    if (epoch % cfg.query_period == 0 && epoch > 0) {
      const query::RangeQuery q = workload.next(epoch);
      res.ledger.query_tx += srt.disseminate(q).cost;
      res.flooding_total += flooding.analytical_cost();
      ++res.queries;
    }
  }
  res.ledger.control_tx = srt.build_cost();
  return res;
}

}  // namespace

int main() {
  using namespace dirq;
  bench::print_header("Baseline — DirQ vs SRT static index vs flooding",
                      "paper Section 2 related-work comparison");

  sweep::ExperimentPlan plan("baseline-srt", [] {
    core::ExperimentConfig cfg = sweep::paper_config();
    sweep::atc().apply(cfg);
    cfg.keep_records = false;
    return cfg;
  }());
  plan.axis(sweep::paper_relevant_axis());

  const sweep::SweepRunner runner;
  const std::vector<sweep::CellResult> dirq = sweep::require_ok(runner.run(plan));
  const std::vector<sweep::CellResult> srt = sweep::require_ok(runner.run(
      plan,
      [](const sweep::PlanCell& cell) { return replay_srt(cell.config); }));

  sweep::ConsoleTableSink console(std::cout);
  const sweep::SweepHeader header{
      "DirQ vs SRT vs flooding", plan.name(),
      {"relevant_%", "scheme", "per_query_cost", "maintenance_total",
       "total_cost", "vs_flooding"}};
  console.begin(header);
  for (std::size_t i = 0; i < dirq.size(); ++i) {
    const std::string pct = *dirq[i].cell.coordinate("relevant");
    const core::ExperimentResults& d = dirq[i].results;
    const core::ExperimentResults& s = srt[i].results;
    const auto queries = static_cast<double>(d.queries);
    const CostUnits flood_total = s.flooding_total;
    const CostUnits dirq_total = d.ledger.total();
    const CostUnits srt_total = s.ledger.query_cost() + s.ledger.control_cost();
    console.row(
        {pct, "DirQ (ATC)",
         metrics::fmt(static_cast<double>(d.ledger.query_cost()) / queries),
         std::to_string(d.ledger.update_cost() + d.ledger.control_cost()),
         std::to_string(dirq_total),
         metrics::fmt(static_cast<double>(dirq_total) /
                          static_cast<double>(flood_total),
                      3)},
        &dirq[i].cell, &dirq[i]);
    console.row(
        {pct, "SRT (static index)",
         metrics::fmt(static_cast<double>(s.ledger.query_cost()) / queries),
         std::to_string(s.ledger.control_cost()), std::to_string(srt_total),
         metrics::fmt(static_cast<double>(srt_total) /
                          static_cast<double>(flood_total),
                      3)},
        &srt[i].cell, &srt[i]);
    console.row({pct, "flooding",
                 metrics::fmt(static_cast<double>(flood_total) / queries), "0",
                 std::to_string(flood_total), "1.000"},
                &srt[i].cell, nullptr);
  }
  console.end();
  std::cout << "\nSRT pays almost nothing in maintenance but sweeps every "
               "type-capable subtree per\nquery; DirQ's update traffic buys "
               "value-based pruning. The paper's §2 positioning\n(SRT for "
               "constant attributes, DirQ for varying ones) is the gap "
               "between the two\nper-query columns.\n";
  return 0;
}

// Extension E11 — three-way comparison: DirQ (ATC) vs the SRT-style static
// index (paper ref [5]) vs flooding, on the paper's §7 workload.
//
// Quantifies the related-work argument of §2: SRT's one-time static index
// beats flooding through type/region pruning but cannot prune on current
// sensor values, so selective queries sweep every capable subtree; DirQ
// pays continuous update traffic to prune by value and wins overall when
// queries are frequent.
#include "bench_util.hpp"
#include "core/srt.hpp"
#include "net/placement.hpp"
#include "query/workload.hpp"
#include "sim/rng.hpp"

int main() {
  using namespace dirq;
  bench::print_header("Baseline — DirQ vs SRT static index vs flooding",
                      "paper Section 2 related-work comparison");

  metrics::Table table({"relevant_%", "scheme", "per_query_cost",
                        "maintenance_total", "total_cost", "vs_flooding"});

  for (double fraction : {0.2, 0.4, 0.6}) {
    // DirQ with ATC: full 20k-epoch experiment.
    core::ExperimentConfig cfg = bench::with_atc(bench::paper_config(), fraction);
    cfg.keep_records = false;
    const core::ExperimentResults dirq = core::Experiment(cfg).run();
    const double queries = static_cast<double>(dirq.queries);

    // SRT on the identical world: replay the same query stream against the
    // static index (same seed -> same topology, environment, workload).
    sim::Rng rng(cfg.seed);
    net::Topology topo = net::random_connected(cfg.placement, rng);
    data::Environment env(topo, 4, rng.substream("environment"));
    net::SpanningTree tree(topo, 0);
    core::SrtScheme srt(topo, tree);
    query::WorkloadGenerator workload(topo, tree, env,
                                      query::WorkloadConfig{fraction, 0.02},
                                      rng.substream("workload"));
    CostUnits srt_query_cost = 0;
    CostUnits flood_total = 0;
    const core::FloodingScheme flooding(topo);
    for (std::int64_t epoch = 0; epoch < cfg.epochs; ++epoch) {
      env.advance_to(epoch);
      if (epoch % cfg.query_period == 0 && epoch > 0) {
        const query::RangeQuery q = workload.next(epoch);
        srt_query_cost += srt.disseminate(q).cost;
        flood_total += flooding.analytical_cost();
      }
    }

    const auto pct = metrics::fmt(fraction * 100.0, 0);
    const CostUnits dirq_total = dirq.ledger.total();
    const CostUnits srt_total = srt_query_cost + srt.build_cost();
    table.add_row({pct, "DirQ (ATC)",
                   metrics::fmt(static_cast<double>(dirq.ledger.query_cost()) / queries),
                   std::to_string(dirq.ledger.update_cost() +
                                  dirq.ledger.control_cost()),
                   std::to_string(dirq_total),
                   metrics::fmt(static_cast<double>(dirq_total) /
                                    static_cast<double>(flood_total),
                                3)});
    table.add_row({pct, "SRT (static index)",
                   metrics::fmt(static_cast<double>(srt_query_cost) / queries),
                   std::to_string(srt.build_cost()),
                   std::to_string(srt_total),
                   metrics::fmt(static_cast<double>(srt_total) /
                                    static_cast<double>(flood_total),
                                3)});
    table.add_row({pct, "flooding",
                   metrics::fmt(static_cast<double>(flood_total) / queries),
                   "0", std::to_string(flood_total), "1.000"});
  }
  table.print(std::cout);
  std::cout << "\nSRT pays almost nothing in maintenance but sweeps every "
               "type-capable subtree per\nquery; DirQ's update traffic buys "
               "value-based pruning. The paper's §2 positioning\n(SRT for "
               "constant attributes, DirQ for varying ones) is the gap "
               "between the two\nper-query columns.\n";
  return 0;
}

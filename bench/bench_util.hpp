// Shared helpers for the figure-reproduction benches.
//
// The §7 configuration vocabulary (paper_config, theta/relevant axes) lives
// in sweep/plan.hpp so the grid is defined in exactly one place; benches
// declare an ExperimentPlan, run it through SweepRunner, and render rows
// through ResultSinks.
#pragma once

#include <iostream>
#include <string>

#include "core/experiment.hpp"
#include "metrics/report.hpp"
#include "sweep/plan.hpp"
#include "sweep/runner.hpp"
#include "sweep/sink.hpp"

namespace dirq::bench {

inline void print_header(const std::string& title, const std::string& paper_ref) {
  std::cout << "==============================================================\n"
            << title << "\n"
            << "(reproduces " << paper_ref << ")\n"
            << "==============================================================\n\n";
}

}  // namespace dirq::bench

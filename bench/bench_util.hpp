// Shared helpers for the figure-reproduction benches.
#pragma once

#include <iostream>
#include <string>

#include "core/experiment.hpp"
#include "metrics/report.hpp"

namespace dirq::bench {

/// The paper's §7 configuration: 50 nodes, 20 000 epochs, one query per
/// 20 epochs. Callers override the theta mode and relevant fraction.
inline core::ExperimentConfig paper_config(std::uint64_t seed = 42) {
  core::ExperimentConfig cfg;
  cfg.seed = seed;
  cfg.epochs = 20000;
  cfg.query_period = 20;
  return cfg;
}

inline core::ExperimentConfig with_fixed_theta(core::ExperimentConfig cfg,
                                               double pct, double fraction) {
  cfg.network.mode = core::NetworkConfig::ThetaMode::Fixed;
  cfg.network.fixed_pct = pct;
  cfg.relevant_fraction = fraction;
  return cfg;
}

inline core::ExperimentConfig with_atc(core::ExperimentConfig cfg,
                                       double fraction) {
  cfg.network.mode = core::NetworkConfig::ThetaMode::Atc;
  cfg.relevant_fraction = fraction;
  return cfg;
}

inline void print_header(const std::string& title, const std::string& paper_ref) {
  std::cout << "==============================================================\n"
            << title << "\n"
            << "(reproduces " << paper_ref << ")\n"
            << "==============================================================\n\n";
}

}  // namespace dirq::bench

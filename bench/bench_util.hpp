// Shared helpers for the figure-reproduction benches.
//
// The §7 configuration vocabulary (paper_config, theta/relevant axes) lives
// in sweep/plan.hpp so the grid is defined in exactly one place; benches
// declare an ExperimentPlan, run it through SweepRunner, and render rows
// through ResultSinks.
#pragma once

#include <cerrno>
#include <cstdlib>
#include <iostream>
#include <string>

#include "core/experiment.hpp"
#include "metrics/report.hpp"
#include "sweep/plan.hpp"
#include "sweep/runner.hpp"
#include "sweep/sink.hpp"

namespace dirq::bench {

/// Strict positive-integer parse shared by the standalone bench tools
/// (same contract as dirqsim's parse_int: the whole token must be base-10,
/// no wrap, no truncation; < min is an error). The default min of 1 fits
/// counts; flags where 0 is meaningful (--threads: all hardware threads)
/// pass min = 0. Exits 2 on bad input.
inline std::int64_t parse_count(const char* tool, const char* flag,
                                const std::string& value,
                                std::int64_t min = 1) {
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0' || errno == ERANGE || v < min) {
    std::cerr << tool << ": " << flag << " expects an integer >= " << min
              << ", got: '" << value << "'\n";
    std::exit(2);
  }
  return static_cast<std::int64_t>(v);
}

inline void print_header(const std::string& title, const std::string& paper_ref) {
  std::cout << "==============================================================\n"
            << title << "\n"
            << "(reproduces " << paper_ref << ")\n"
            << "==============================================================\n\n";
}

}  // namespace dirq::bench

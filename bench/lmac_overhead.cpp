// E10 — LMAC control overhead: the MAC's standing cost against DirQ's data
// cost, per epoch (ROADMAP follow-on from PR 2; not a paper figure — the
// paper's §5 cost model counts data-section messages only, and this bench
// quantifies what the TDMA schedule itself spends underneath them).
//
//   bench_lmac_overhead [--epochs N] [--threads LIST] [--json FILE]
//
// Each cell runs the full experiment on the Lmac transport and reports:
//   * mac_ctl_total     — LMAC control-section tx+rx (slot schedules,
//                         liveness beacons) summed over all nodes: paid
//                         every frame whether or not DirQ transmits,
//                         identical for DirQ and for flooding;
//   * dirq_total        — DirQ's data-section cost (queries + updates +
//                         EHr control);
//   * the per-epoch normalisations and the standing share
//     mac_ctl / (mac_ctl + dirq) — how much of the radio's energy the
//     schedule keeps for itself.
//
// --threads adds a worker-count axis (0 = all hardware threads): the
// chunk-sharded LMAC epoch engine keeps every cell's ledger byte-identical
// across the axis, so only wall_seconds moves — the row pairs are the
// partial-parallelism speedup surface.
//
// Rows are emitted through the sweep result sinks; --json writes the
// dirq.sweep.v1 document (whose metrics block carries mac_control_total).
#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace dirq;

  std::int64_t epochs = 2000;
  std::vector<unsigned> thread_counts{1};
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* next = i + 1 < argc ? argv[i + 1] : nullptr;
    if (arg == "--epochs" && next != nullptr) {
      epochs = bench::parse_count("bench_lmac_overhead", "--epochs", next);
      ++i;
    } else if (arg == "--threads" && next != nullptr) {
      thread_counts.clear();
      std::string item;
      for (const char* p = next;; ++p) {
        if (*p == ',' || *p == '\0') {
          thread_counts.push_back(static_cast<unsigned>(bench::parse_count(
              "bench_lmac_overhead", "--threads", item, /*min=*/0)));
          item.clear();
          if (*p == '\0') break;
        } else {
          item.push_back(*p);
        }
      }
      ++i;
    } else if (arg == "--json" && next != nullptr) {
      json_path = next;
      ++i;
    } else {
      std::cerr << "usage: bench_lmac_overhead [--epochs N] [--threads LIST]"
                   " [--json FILE]\n";
      return 2;
    }
  }

  bench::print_header(
      "E10 — LMAC standing cost vs DirQ data cost per epoch",
      "ROADMAP 'LMAC control-overhead figure' (PR 2 follow-on)");

  sweep::ExperimentPlan plan("lmac-overhead", [epochs] {
    core::ExperimentConfig cfg = sweep::paper_config();
    cfg.epochs = epochs;
    cfg.transport = core::TransportKind::Lmac;
    cfg.keep_records = false;
    return cfg;
  }());
  plan.axis(sweep::theta_axis({sweep::atc(), sweep::fixed_theta(5.0)}))
      .axis(sweep::nodes_axis({30, 50}));
  {
    std::vector<sweep::AxisValue> workers;
    for (unsigned t : thread_counts) {
      workers.push_back({std::to_string(t),
                         [t](core::ExperimentConfig& cfg) { cfg.threads = t; }});
    }
    plan.axis(sweep::custom_axis("threads", std::move(workers)));
  }

  const std::vector<sweep::CellResult> results =
      sweep::require_ok(sweep::SweepRunner().run(plan));

  const double e = static_cast<double>(epochs);
  const auto mapper = [e](const sweep::CellResult& r) {
    const core::ExperimentResults& res = r.results;
    const auto mac_ctl = static_cast<double>(res.mac_control_total);
    const auto dirq = static_cast<double>(res.ledger.total());
    return std::vector<std::string>{
        *r.cell.coordinate("theta"),
        *r.cell.coordinate("nodes"),
        *r.cell.coordinate("threads"),
        std::to_string(res.mac_control_total),
        std::to_string(res.ledger.total()),
        metrics::fmt(mac_ctl / e, 1),
        metrics::fmt(dirq / e, 1),
        metrics::fmt(mac_ctl + dirq > 0.0 ? 100.0 * mac_ctl / (mac_ctl + dirq)
                                          : 0.0)};
  };

  const sweep::SweepHeader header{
      "LMAC standing cost vs DirQ data cost", plan.name(),
      {"mode", "nodes", "threads", "mac_ctl_total", "dirq_total",
       "mac_ctl_per_epoch", "dirq_per_epoch", "standing_share_%"}};

  sweep::ConsoleTableSink console(std::cout);
  std::ofstream json_file;
  std::vector<sweep::ResultSink*> sinks{&console};
  std::optional<sweep::JsonSink> json_sink;
  if (!json_path.empty()) {
    json_file.open(json_path);
    if (!json_file) {
      std::cerr << "bench_lmac_overhead: cannot open " << json_path << "\n";
      return 1;
    }
    json_sink.emplace(json_file, /*include_timing=*/false);
    sinks.push_back(&*json_sink);
  }
  sweep::report(header, results, mapper, sinks);
  if (!json_path.empty()) {
    std::cerr << "bench_lmac_overhead: wrote " << json_path << "\n";
  }
  return 0;
}

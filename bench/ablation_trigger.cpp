// Ablation A2 — the update trigger. DirQ's theta-hysteresis trigger
// (transmit only when an aggregate bound moves by more than theta, Fig. 3)
// vs a naive send-on-any-change policy (theta ~ 0).
//
// Shows the heart of the paper's energy argument: without hysteresis the
// update stream costs several times flooding; with it, updates collapse
// while accuracy degrades only by the theta widening.
#include "bench_util.hpp"

int main() {
  using namespace dirq;
  bench::print_header("Ablation A2 — update trigger hysteresis",
                      "DESIGN.md Section 4; paper Section 4.1 / Fig. 3");

  sweep::ExperimentPlan plan("ablation-trigger", [] {
    core::ExperimentConfig cfg = sweep::paper_config();
    sweep::relevant(0.4).apply(cfg);
    cfg.epochs = 10000;  // half-length run: the contrast is enormous anyway
    cfg.keep_records = false;
    return cfg;
  }());
  // 0.05 % of span ~ "any visible change"; the paper sweeps 3/5/9 %.
  plan.axis(sweep::custom_axis(
      "trigger",
      {{"naive (theta~0)",
        [](core::ExperimentConfig& cfg) { sweep::fixed_theta(0.05).apply(cfg); }},
       {"theta=3%",
        [](core::ExperimentConfig& cfg) { sweep::fixed_theta(3.0).apply(cfg); }},
       {"theta=5%",
        [](core::ExperimentConfig& cfg) { sweep::fixed_theta(5.0).apply(cfg); }},
       {"theta=9%", [](core::ExperimentConfig& cfg) {
          sweep::fixed_theta(9.0).apply(cfg);
        }}}));

  const std::vector<sweep::CellResult> results = sweep::require_ok(sweep::SweepRunner().run(plan));

  sweep::ConsoleTableSink console(std::cout);
  sweep::report(
      {"ablation update trigger", plan.name(),
       {"trigger", "updates_total", "update_cost", "dirq_total",
        "ratio_vs_flood", "avg_overshoot_%", "avg_coverage_%"}},
      results,
      [](const sweep::CellResult& r) {
        const core::ExperimentResults& res = r.results;
        return std::vector<std::string>{
            *r.cell.coordinate("trigger"),
            std::to_string(res.updates_transmitted),
            std::to_string(res.ledger.update_cost()),
            std::to_string(res.ledger.total()),
            metrics::fmt(res.cost_ratio(), 3),
            metrics::fmt(res.overshoot_pct.mean()),
            metrics::fmt(res.coverage_pct.mean())};
      },
      {&console});
  return 0;
}

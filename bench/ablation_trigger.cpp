// Ablation A2 — the update trigger. DirQ's theta-hysteresis trigger
// (transmit only when an aggregate bound moves by more than theta, Fig. 3)
// vs a naive send-on-any-change policy (theta ~ 0).
//
// Shows the heart of the paper's energy argument: without hysteresis the
// update stream costs several times flooding; with it, updates collapse
// while accuracy degrades only by the theta widening.
#include "bench_util.hpp"

int main() {
  using namespace dirq;
  bench::print_header("Ablation A2 — update trigger hysteresis",
                      "DESIGN.md Section 4; paper Section 4.1 / Fig. 3");

  metrics::Table table({"trigger", "updates_total", "update_cost",
                        "dirq_total", "ratio_vs_flood", "avg_overshoot_%",
                        "avg_coverage_%"});
  struct Row {
    const char* label;
    double pct;
  };
  // 0.05 % of span ~ "any visible change"; the paper sweeps 3/5/9 %.
  for (const Row row : {Row{"naive (theta~0)", 0.05}, Row{"theta=3%", 3.0},
                        Row{"theta=5%", 5.0}, Row{"theta=9%", 9.0}}) {
    core::ExperimentConfig cfg =
        bench::with_fixed_theta(bench::paper_config(), row.pct, 0.4);
    cfg.epochs = 10000;  // half-length run: the contrast is enormous anyway
    cfg.keep_records = false;
    const core::ExperimentResults res = core::Experiment(cfg).run();
    table.add_row({row.label, std::to_string(res.updates_transmitted),
                   std::to_string(res.ledger.update_cost()),
                   std::to_string(res.ledger.total()),
                   metrics::fmt(res.cost_ratio(), 3),
                   metrics::fmt(res.overshoot_pct.mean()),
                   metrics::fmt(res.coverage_pct.mean())});
  }
  table.print(std::cout);
  return 0;
}

// E11 — serve-plane throughput: the long-lived query front-end under an
// open-loop Poisson stream (ROADMAP "Service mode"). Not a paper figure;
// the paper evaluates batch epochs — this bench measures what the serve
// plane sustains on the scaled fast-field topology and what the
// containment-aware result cache buys at each offered rate.
//
//   bench_serve_throughput [--nodes N] [--rates LIST] [--sinks LIST]
//                          [--duration E] [--json FILE]
//
// For each (rate, sinks, cache) cell: one serve run, wall-clock, the
// dirq.serve.v1 counters that matter for regression tracking (virtual qps,
// answered, cache hit rate, shed, p50/p99 latency in epochs), and the
// network-side cost (updates transmitted, energy). Within one (rate,
// sinks) pair the cache-on cell must answer at least the cache-off cell's
// qps from the identical arrival stream — tools/perf_smoke.sh asserts the
// strict version of that self-relative invariant.
#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "net/placement.hpp"
#include "serve/server.hpp"

namespace {

using namespace dirq;
using Clock = std::chrono::steady_clock;

struct ServeRow {
  std::size_t nodes = 0;
  std::int64_t duration = 0;
  double rate = 0.0;
  std::size_t sinks = 1;
  bool cache = false;
  double run_seconds = 0.0;
  double epochs_per_sec = 0.0;
  std::int64_t arrived = 0;
  std::int64_t answered = 0;
  std::int64_t injected = 0;
  std::int64_t cache_answered = 0;
  std::int64_t shed = 0;
  double qps = 0.0;
  double hit_rate = 0.0;  // cache hits / lookups, 0 when cache off
  std::int64_t p50 = 0;
  std::int64_t p99 = 0;
  std::int64_t updates = 0;
  CostUnits energy = 0;
};

ServeRow run_cell(std::size_t nodes, std::int64_t duration, double rate,
                  std::size_t sinks, bool cache) {
  ServeRow row;
  row.nodes = nodes;
  row.duration = duration;
  row.rate = rate;
  row.sinks = sinks;
  row.cache = cache;

  serve::ServeConfig cfg;
  cfg.exp.seed = 42;
  cfg.exp.placement = net::scaled_placement(nodes);
  cfg.exp.field_backend = data::EnvironmentBackend::Fast;
  cfg.exp.network.mode = core::NetworkConfig::ThetaMode::Fixed;
  cfg.exp.network.fixed_pct = 5.0;
  cfg.exp.keep_records = false;
  cfg.exp.sink_count = sinks;
  cfg.duration_epochs = duration;
  cfg.trace.rate = rate;
  cfg.front_end.cache_enabled = cache;

  const auto start = Clock::now();
  const serve::ServeResults res = serve::Server(cfg).run();
  row.run_seconds = std::chrono::duration<double>(Clock::now() - start).count();
  row.epochs_per_sec = row.run_seconds > 0.0
                           ? static_cast<double>(duration) / row.run_seconds
                           : 0.0;
  row.arrived = res.totals.arrived;
  row.answered = res.totals.answered;
  row.injected = res.totals.injected;
  row.cache_answered = res.totals.cache_answered;
  row.shed = res.totals.shed;
  row.qps = res.qps();
  row.hit_rate = res.cache.lookups() > 0
                     ? static_cast<double>(res.cache.hits()) /
                           static_cast<double>(res.cache.lookups())
                     : 0.0;
  row.p50 = res.latency.quantile(0.5);
  row.p99 = res.latency.quantile(0.99);
  row.updates = res.updates_transmitted;
  row.energy = res.energy_total;
  return row;
}

void write_json(const std::string& path, const std::vector<ServeRow>& rows) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "bench_serve_throughput: cannot open " << path << "\n";
    std::exit(1);
  }
  out << "{\n  \"schema\": \"dirq.serve_bench.v1\",\n  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const ServeRow& r = rows[i];
    out << "    {\"nodes\": " << r.nodes << ", \"duration\": " << r.duration
        << ", \"rate\": " << r.rate << ", \"sinks\": " << r.sinks
        << ", \"cache\": " << (r.cache ? "true" : "false")
        << ", \"run_seconds\": " << r.run_seconds
        << ", \"epochs_per_sec\": " << r.epochs_per_sec
        << ", \"arrived\": " << r.arrived << ", \"answered\": " << r.answered
        << ", \"injected\": " << r.injected
        << ", \"cache_answered\": " << r.cache_answered
        << ", \"shed\": " << r.shed << ", \"qps\": " << r.qps
        << ", \"hit_rate\": " << r.hit_rate << ", \"p50\": " << r.p50
        << ", \"p99\": " << r.p99 << ", \"updates\": " << r.updates
        << ", \"energy\": " << r.energy << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

std::vector<double> parse_rate_list(const char* value) {
  std::vector<double> out;
  std::string item;
  for (const char* p = value;; ++p) {
    if (*p == ',' || *p == '\0') {
      char* end = nullptr;
      const double v = std::strtod(item.c_str(), &end);
      if (end == item.c_str() || *end != '\0' || !(v > 0.0)) {
        std::cerr << "bench_serve_throughput: --rates expects positive"
                     " numbers, got: '" << item << "'\n";
        std::exit(2);
      }
      out.push_back(v);
      item.clear();
      if (*p == '\0') break;
    } else {
      item.push_back(*p);
    }
  }
  return out;
}

std::vector<std::size_t> parse_count_list(const char* flag, const char* value) {
  std::vector<std::size_t> out;
  std::string item;
  for (const char* p = value;; ++p) {
    if (*p == ',' || *p == '\0') {
      out.push_back(static_cast<std::size_t>(
          bench::parse_count("bench_serve_throughput", flag, item, 1)));
      item.clear();
      if (*p == '\0') break;
    } else {
      item.push_back(*p);
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t nodes = 500;
  std::vector<double> rates{20.0, 100.0};
  std::vector<std::size_t> sink_counts{1, 4};
  std::int64_t duration = 2000;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* next = i + 1 < argc ? argv[i + 1] : nullptr;
    if (arg == "--nodes" && next != nullptr) {
      nodes = static_cast<std::size_t>(
          bench::parse_count("bench_serve_throughput", "--nodes", next));
      ++i;
    } else if (arg == "--rates" && next != nullptr) {
      rates = parse_rate_list(next);
      ++i;
    } else if (arg == "--sinks" && next != nullptr) {
      sink_counts = parse_count_list("--sinks", next);
      ++i;
    } else if (arg == "--duration" && next != nullptr) {
      duration =
          bench::parse_count("bench_serve_throughput", "--duration", next);
      ++i;
    } else if (arg == "--json" && next != nullptr) {
      json_path = next;
      ++i;
    } else {
      std::cerr << "usage: bench_serve_throughput [--nodes N] [--rates LIST]"
                   " [--sinks LIST] [--duration E] [--json FILE]\n";
      return 2;
    }
  }

  dirq::bench::print_header(
      "E11 — serve-plane throughput: rate x sinks x cache",
      "ROADMAP 'Service mode'; fast field, fixed theta=5%, Poisson arrivals");

  std::vector<ServeRow> rows;
  for (double rate : rates) {
    for (std::size_t s : sink_counts) {
      for (bool cache : {false, true}) {
        rows.push_back(run_cell(nodes, duration, rate, s, cache));
        std::cerr << "  rate " << rate << " x " << s << " sink(s), cache "
                  << (cache ? "on" : "off") << ": qps "
                  << dirq::metrics::fmt(rows.back().qps) << " ("
                  << dirq::metrics::fmt(rows.back().run_seconds) << " s)\n";
      }
    }
  }

  dirq::metrics::TsvBlock tsv(
      "serve tier: sustained qps + tail latency",
      {"nodes", "duration", "rate", "sinks", "cache", "run_s", "qps",
       "answered", "shed", "hit_rate", "p50", "p99", "updates"});
  for (const ServeRow& r : rows) {
    tsv.add_row({std::to_string(r.nodes), std::to_string(r.duration),
                 dirq::metrics::fmt(r.rate, 1), std::to_string(r.sinks),
                 r.cache ? "on" : "off",
                 dirq::metrics::fmt(r.run_seconds, 3),
                 dirq::metrics::fmt(r.qps, 3), std::to_string(r.answered),
                 std::to_string(r.shed), dirq::metrics::fmt(r.hit_rate, 3),
                 std::to_string(r.p50), std::to_string(r.p99),
                 std::to_string(r.updates)});
  }
  tsv.print(std::cout);

  if (!json_path.empty()) {
    write_json(json_path, rows);
    std::cerr << "bench_serve_throughput: wrote " << json_path << "\n";
  }
  return 0;
}

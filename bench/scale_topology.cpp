// E9 — large-topology tier: epoch throughput and peak RSS as the network
// grows from the paper's 50 nodes toward production scale (ROADMAP "Larger
// topologies"). Not a paper figure; the scaling ledger behind the spatial
// index + flat hot-path refactor.
//
//   bench_scale_topology [--nodes LIST] [--epochs N] [--json FILE]
//                        [--field pinned|fast|both] [--threads LIST]
//                        [--loss LIST] [--no-burst]
//
// For each node count: placement/topology build wall-clock (grid-indexed
// link construction), a full fixed-theta experiment run, epoch throughput,
// and process peak RSS. getrusage's peak is a process-lifetime high-water
// mark, so the RSS column is monotone across rows ("peak so far"): a
// row's own footprint is only attributable when it is the largest cell
// run up to that point (run cells ascending, or one cell per invocation,
// as tools/record_baseline.sh does for the 500-node baseline). One extra row runs the 500-node cell with bursty
// query arrivals (burst 200 epochs / gap 600) so the rate predictor's
// behaviour under non-smooth load is part of the tracked surface.
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "data/fast_field.hpp"
#include "net/placement.hpp"
#include "sim/rng.hpp"

namespace {

using namespace dirq;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct ScaleRow {
  std::size_t nodes = 0;
  std::int64_t epochs = 0;
  std::string workload;  // "smooth" or "burst L/G"
  std::string field;     // environment backend: "pinned" or "fast"
  unsigned threads = 1;  // intra-run workers (1 = sequential golden path)
  double loss = 0.0;     // channel drop probability (0 = paper's lossless)
  double build_seconds = 0.0;
  double run_seconds = 0.0;
  double epochs_per_sec = 0.0;
  std::int64_t updates = 0;
  long peak_rss_so_far_kib = 0;  // process high-water mark, monotone across rows
};

core::ExperimentConfig scale_config(std::size_t nodes, std::int64_t epochs) {
  core::ExperimentConfig cfg;
  cfg.seed = 42;
  cfg.placement = net::scaled_placement(nodes);
  cfg.epochs = epochs;
  cfg.network.mode = core::NetworkConfig::ThetaMode::Fixed;
  cfg.network.fixed_pct = 5.0;
  cfg.keep_records = false;
  return cfg;
}

ScaleRow run_cell(std::size_t nodes, std::int64_t epochs,
                  std::int64_t burst_length, std::int64_t burst_gap,
                  data::EnvironmentBackend field, unsigned threads,
                  double loss) {
  ScaleRow row;
  row.nodes = nodes;
  row.epochs = epochs;
  row.loss = loss;
  row.workload = burst_length > 0 ? "burst " + std::to_string(burst_length) +
                                        "/" + std::to_string(burst_gap)
                                  : "smooth";
  row.field = data::backend_name(field);

  core::ExperimentConfig cfg = scale_config(nodes, epochs);
  cfg.burst_length_epochs = burst_length;
  cfg.burst_gap_epochs = burst_gap;
  cfg.field_backend = field;
  cfg.threads = threads;
  cfg.loss_rate = loss;
  row.threads = core::Experiment::effective_threads(cfg);

  {
    // Topology construction cost in isolation (placement + link build).
    sim::Rng rng(cfg.seed);
    const auto start = Clock::now();
    const net::Topology topo = net::random_connected(cfg.placement, rng);
    row.build_seconds = seconds_since(start);
    (void)topo;
  }

  const auto start = Clock::now();
  const core::ExperimentResults res = core::Experiment(cfg).run();
  row.run_seconds = seconds_since(start);
  row.epochs_per_sec = row.run_seconds > 0.0
                           ? static_cast<double>(epochs) / row.run_seconds
                           : 0.0;
  row.updates = res.updates_transmitted;
  row.peak_rss_so_far_kib = sweep::peak_rss_kib();
  return row;
}

void write_json(const std::string& path, const std::vector<ScaleRow>& rows) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "bench_scale_topology: cannot open " << path << "\n";
    std::exit(1);
  }
  out << "{\n  \"schema\": \"dirq.scale.v1\",\n  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const ScaleRow& r = rows[i];
    out << "    {\"nodes\": " << r.nodes << ", \"epochs\": " << r.epochs
        << ", \"workload\": \"" << r.workload << "\""
        << ", \"field\": \"" << r.field << "\""
        << ", \"threads\": " << r.threads
        << ", \"loss\": " << r.loss
        << ", \"build_seconds\": " << r.build_seconds
        << ", \"run_seconds\": " << r.run_seconds
        << ", \"epochs_per_sec\": " << r.epochs_per_sec
        << ", \"updates\": " << r.updates
        << ", \"peak_rss_so_far_kib\": " << r.peak_rss_so_far_kib << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::size_t> node_counts{50, 500, 1000, 2000};
  std::int64_t epochs = 2000;
  std::string json_path;
  std::vector<data::EnvironmentBackend> fields{
      data::EnvironmentBackend::Pinned, data::EnvironmentBackend::Fast};
  std::vector<unsigned> thread_counts{1};
  std::vector<double> loss_rates{0.0};
  bool burst_rows = true;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* next = i + 1 < argc ? argv[i + 1] : nullptr;
    if (arg == "--nodes" && next != nullptr) {
      node_counts.clear();
      std::string item;
      for (const char* p = next;; ++p) {
        if (*p == ',' || *p == '\0') {
          node_counts.push_back(
              static_cast<std::size_t>(bench::parse_count("bench_scale_topology", "--nodes", item)));
          item.clear();
          if (*p == '\0') break;
        } else {
          item.push_back(*p);
        }
      }
      ++i;
    } else if (arg == "--epochs" && next != nullptr) {
      epochs = bench::parse_count("bench_scale_topology", "--epochs", next);
      ++i;
    } else if (arg == "--json" && next != nullptr) {
      json_path = next;
      ++i;
    } else if (arg == "--field" && next != nullptr) {
      const std::string f = next;
      if (f == "pinned") {
        fields = {data::EnvironmentBackend::Pinned};
      } else if (f == "fast") {
        fields = {data::EnvironmentBackend::Fast};
      } else if (f == "both") {
        fields = {data::EnvironmentBackend::Pinned,
                  data::EnvironmentBackend::Fast};
      } else {
        std::cerr << "bench_scale_topology: --field expects pinned, fast or"
                     " both, got: '" << f << "'\n";
        return 2;
      }
      ++i;
    } else if (arg == "--threads" && next != nullptr) {
      // List-valued like --nodes: each count is a full extra pass over the
      // grid (0 = all hardware threads; 1 = the sequential golden path).
      thread_counts.clear();
      std::string item;
      for (const char* p = next;; ++p) {
        if (*p == ',' || *p == '\0') {
          thread_counts.push_back(static_cast<unsigned>(bench::parse_count(
              "bench_scale_topology", "--threads", item, /*min=*/0)));
          item.clear();
          if (*p == '\0') break;
        } else {
          item.push_back(*p);
        }
      }
      ++i;
    } else if (arg == "--loss" && next != nullptr) {
      // Channel drop probabilities, list-valued like --nodes. Each rate is
      // an extra pass over the grid; non-zero rates exercise the
      // counter-keyed loss channel on the parallel epoch engine, so the
      // lossy cells are the ones the lossy perf guard reads.
      loss_rates.clear();
      std::string item;
      for (const char* p = next;; ++p) {
        if (*p == ',' || *p == '\0') {
          char* end = nullptr;
          const double rate = std::strtod(item.c_str(), &end);
          if (item.empty() || end == nullptr || *end != '\0' ||
              !(rate >= 0.0 && rate < 1.0)) {
            std::cerr << "bench_scale_topology: --loss rates must be in"
                         " [0, 1), got: '" << item << "'\n";
            return 2;
          }
          loss_rates.push_back(rate);
          item.clear();
          if (*p == '\0') break;
        } else {
          item.push_back(*p);
        }
      }
      ++i;
    } else if (arg == "--no-burst") {
      // Skip the bursty-arrival rows: the perf-smoke guards only read the
      // smooth cells, so CI need not pay for rows it ignores.
      burst_rows = false;
    } else {
      std::cerr << "usage: bench_scale_topology [--nodes LIST] [--epochs N]"
                   " [--json FILE] [--field pinned|fast|both]"
                   " [--threads LIST] [--loss LIST] [--no-burst]\n";
      return 2;
    }
  }

  dirq::bench::print_header(
      "E9 — large-topology scaling: epoch throughput + peak RSS",
      "ROADMAP 'Larger topologies'; fixed theta=5%, scaled placement");

  std::vector<ScaleRow> rows;
  for (std::size_t n : node_counts) {
    for (data::EnvironmentBackend f : fields) {
      for (unsigned t : thread_counts) {
        for (double l : loss_rates) {
          rows.push_back(run_cell(n, epochs, 0, 0, f, t, l));
          std::cerr << "  " << n << " nodes (" << data::backend_name(f) << ", "
                    << rows.back().threads << " thread(s), loss "
                    << dirq::metrics::fmt(l, 2) << ") done ("
                    << dirq::metrics::fmt(rows.back().run_seconds) << " s)\n";
        }
      }
    }
  }
  // Bursty-arrival row (ROADMAP "bursty/diurnal"): same 500-node cell, the
  // query stream gated to 200-epoch bursts separated by 600 silent epochs.
  // Always sequential: the row tracks the rate predictor, not the pool.
  if (burst_rows) {
    for (data::EnvironmentBackend f : fields) {
      rows.push_back(run_cell(500, epochs, 200, 600, f, 1, 0.0));
      std::cerr << "  500-node burst row (" << data::backend_name(f)
                << ") done\n";
    }
  }

  dirq::metrics::TsvBlock tsv(
      "scale tier: epoch throughput",
      {"nodes", "epochs", "workload", "field", "threads", "loss", "build_s",
       "run_s", "epochs_per_s", "updates", "peak_rss_so_far_kib"});
  for (const ScaleRow& r : rows) {
    tsv.add_row({std::to_string(r.nodes), std::to_string(r.epochs), r.workload,
                 r.field, std::to_string(r.threads),
                 dirq::metrics::fmt(r.loss, 2),
                 dirq::metrics::fmt(r.build_seconds, 3),
                 dirq::metrics::fmt(r.run_seconds, 3),
                 dirq::metrics::fmt(r.epochs_per_sec, 1),
                 std::to_string(r.updates), std::to_string(r.peak_rss_so_far_kib)});
  }
  tsv.print(std::cout);

  if (!json_path.empty()) {
    write_json(json_path, rows);
    std::cerr << "bench_scale_topology: wrote " << json_path << "\n";
  }
  return 0;
}

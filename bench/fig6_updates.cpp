// E3 — Fig. 6: total Update Messages transmitted per 100 epochs over the
// 20 000-epoch run, for fixed theta = 3/5/9 % and for ATC, at the 40 %
// relevant-nodes setting. Also prints the paper's three reference lines:
// Umax/Hr (scaled to per-100-epochs), 0.55*Umax/Hr and 0.45*Umax/Hr.
//
// Paper shape: small fixed thetas run far above the budget lines; ATC
// settles the transmission rate into the 45-55 % band.
#include <map>

#include "bench_util.hpp"

int main() {
  using namespace dirq;
  bench::print_header("Fig. 6 — update traffic: fixed theta vs ATC",
                      "ICPPW'06 DirQ paper, Figure 6, Section 7.2");

  constexpr double kFraction = 0.4;
  const std::vector<std::string> labels{"delta=3%", "delta=5%", "delta=9%",
                                        "delta=ATC"};
  std::map<std::string, core::ExperimentResults> results;
  results.emplace(labels[0],
                  core::Experiment(bench::with_fixed_theta(
                                       bench::paper_config(), 3.0, kFraction))
                      .run());
  results.emplace(labels[1],
                  core::Experiment(bench::with_fixed_theta(
                                       bench::paper_config(), 5.0, kFraction))
                      .run());
  results.emplace(labels[2],
                  core::Experiment(bench::with_fixed_theta(
                                       bench::paper_config(), 9.0, kFraction))
                      .run());
  results.emplace(labels[3],
                  core::Experiment(
                      bench::with_atc(bench::paper_config(), kFraction))
                      .run());

  const core::ExperimentResults& atc = results.at(labels[3]);
  // Hour-1+ Umax: the hour-0 value uses the operator prior; later hours use
  // the predictor. They coincide when the workload is steady.
  const double umax_hr = atc.umax_per_hour.back();
  const double umax_per_100 = umax_hr * 100.0 / kEpochsPerHour;

  std::cout << "Percentage of relevant nodes = 40%\n"
            << "Umax/Hr           = " << metrics::fmt(umax_hr)
            << " update msgs/hour  (= " << metrics::fmt(umax_per_100)
            << " per 100 epochs)\n"
            << "0.55*Umax/Hr      = " << metrics::fmt(0.55 * umax_per_100)
            << " per 100 epochs\n"
            << "0.45*Umax/Hr      = " << metrics::fmt(0.45 * umax_per_100)
            << " per 100 epochs\n\n";

  metrics::Table summary({"series", "updates_total", "mean_per_100ep",
                          "steady_mean_per_100ep", "vs_Umax"});
  // "Steady" skips the first simulated hour (ATC convergence window).
  const std::size_t steady_first = kEpochsPerHour / 100;
  for (const std::string& label : labels) {
    const core::ExperimentResults& r = results.at(label);
    const std::size_t bins = r.updates_per_bin.bin_count();
    const double mean = r.updates_per_bin.mean_over(0, bins);
    const double steady = r.updates_per_bin.mean_over(steady_first, bins);
    summary.add_row({label, metrics::fmt(r.updates_per_bin.total(), 0),
                     metrics::fmt(mean), metrics::fmt(steady),
                     metrics::fmt(steady / umax_per_100, 3)});
  }
  summary.print(std::cout);
  std::cout << "\n(vs_Umax is the steady-state fraction of the Umax/Hr "
               "budget; the paper's ATC band is 0.45-0.55)\n\n";

  // Paper: "The performance remains constant for varying percentages of
  // relevant nodes" — the ATC band does not depend on the query mix.
  metrics::Table across({"relevant_%", "atc_steady_per_100ep", "vs_Umax"});
  for (double fraction : {0.2, 0.4, 0.6}) {
    const core::ExperimentResults r =
        fraction == kFraction
            ? core::ExperimentResults{}  // placeholder, replaced below
            : core::Experiment(bench::with_atc(bench::paper_config(), fraction))
                  .run();
    const core::ExperimentResults& use =
        fraction == kFraction ? results.at(labels[3]) : r;
    const double steady = use.updates_per_bin.mean_over(
        steady_first, use.updates_per_bin.bin_count());
    across.add_row({metrics::fmt(fraction * 100.0, 0), metrics::fmt(steady),
                    metrics::fmt(steady / umax_per_100, 3)});
  }
  std::cout << "ATC band position across relevant-node percentages (paper: "
               "constant):\n";
  across.print(std::cout);
  std::cout << '\n';

  metrics::TsvBlock tsv("fig6 update msgs per 100 epochs, relevant=40%",
                        {"epoch", "delta3", "delta5", "delta9", "atc",
                         "umax", "umax055", "umax045"});
  const std::size_t nbins = 20000 / 100;
  for (std::size_t b = 0; b < nbins; ++b) {
    tsv.add_row({std::to_string(b * 100),
                 metrics::fmt(results.at(labels[0]).updates_per_bin.bin(b), 0),
                 metrics::fmt(results.at(labels[1]).updates_per_bin.bin(b), 0),
                 metrics::fmt(results.at(labels[2]).updates_per_bin.bin(b), 0),
                 metrics::fmt(results.at(labels[3]).updates_per_bin.bin(b), 0),
                 metrics::fmt(umax_per_100), metrics::fmt(0.55 * umax_per_100),
                 metrics::fmt(0.45 * umax_per_100)});
  }
  tsv.print(std::cout);
  return 0;
}

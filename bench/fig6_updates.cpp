// E3 — Fig. 6: total Update Messages transmitted per 100 epochs over the
// 20 000-epoch run, for fixed theta = 3/5/9 % and for ATC, at the 40 %
// relevant-nodes setting. Also prints the paper's three reference lines:
// Umax/Hr (scaled to per-100-epochs), 0.55*Umax/Hr and 0.45*Umax/Hr.
//
// Paper shape: small fixed thetas run far above the budget lines; ATC
// settles the transmission rate into the 45-55 % band.
#include "bench_util.hpp"

int main() {
  using namespace dirq;
  bench::print_header("Fig. 6 — update traffic: fixed theta vs ATC",
                      "ICPPW'06 DirQ paper, Figure 6, Section 7.2");

  constexpr double kFraction = 0.4;
  // One plan covers both outputs: the theta comparison at 40 % relevant
  // nodes and the ATC band position across 20/40/60 %. The fixed-theta
  // cells run at 40 % only; the ATC cells run at all three fractions.
  sweep::ExperimentPlan plan("fig6-updates", sweep::paper_config());
  for (double pct : {3.0, 5.0, 9.0}) {
    plan.cell("delta=" + metrics::fmt(pct, 0) + "%",
              [pct](core::ExperimentConfig& cfg) {
                sweep::fixed_theta(pct).apply(cfg);
                sweep::relevant(kFraction).apply(cfg);
              });
  }
  for (double fraction : {0.2, 0.4, 0.6}) {
    plan.cell("delta=ATC relevant=" + metrics::fmt(fraction * 100.0, 0) + "%",
              [fraction](core::ExperimentConfig& cfg) {
                sweep::atc().apply(cfg);
                sweep::relevant(fraction).apply(cfg);
              });
  }

  const std::vector<sweep::CellResult> results = sweep::require_ok(sweep::SweepRunner().run(plan));
  const auto& delta3 = results[0].results;
  const auto& delta5 = results[1].results;
  const auto& delta9 = results[2].results;
  const auto& atc40 = results[4].results;  // ATC at the 40 % setting

  // Hour-1+ Umax: the hour-0 value uses the operator prior; later hours use
  // the predictor. They coincide when the workload is steady.
  const double umax_hr = atc40.umax_per_hour.back();
  const double umax_per_100 = umax_hr * 100.0 / kEpochsPerHour;

  std::cout << "Percentage of relevant nodes = 40%\n"
            << "Umax/Hr           = " << metrics::fmt(umax_hr)
            << " update msgs/hour  (= " << metrics::fmt(umax_per_100)
            << " per 100 epochs)\n"
            << "0.55*Umax/Hr      = " << metrics::fmt(0.55 * umax_per_100)
            << " per 100 epochs\n"
            << "0.45*Umax/Hr      = " << metrics::fmt(0.45 * umax_per_100)
            << " per 100 epochs\n\n";

  // "Steady" skips the first simulated hour (ATC convergence window).
  const std::size_t steady_first = kEpochsPerHour / 100;
  const std::vector<sweep::CellResult> forty{results[0], results[1],
                                             results[2], results[4]};
  sweep::ConsoleTableSink console(std::cout);
  sweep::report(
      {"fig6 update traffic, relevant=40%", plan.name(),
       {"series", "updates_total", "mean_per_100ep", "steady_mean_per_100ep",
        "vs_Umax"}},
      forty,
      [&](const sweep::CellResult& r) {
        const core::ExperimentResults& res = r.results;
        const std::size_t bins = res.updates_per_bin.bin_count();
        const double mean = res.updates_per_bin.mean_over(0, bins);
        const double steady = res.updates_per_bin.mean_over(steady_first, bins);
        const std::string series =
            r.cell.label.substr(0, r.cell.label.find(' '));
        return std::vector<std::string>{
            series, metrics::fmt(res.updates_per_bin.total(), 0),
            metrics::fmt(mean), metrics::fmt(steady),
            metrics::fmt(steady / umax_per_100, 3)};
      },
      {&console});
  std::cout << "\n(vs_Umax is the steady-state fraction of the Umax/Hr "
               "budget; the paper's ATC band is 0.45-0.55)\n\n";

  // Paper: "The performance remains constant for varying percentages of
  // relevant nodes" — the ATC band does not depend on the query mix.
  const std::vector<sweep::CellResult> atc_cells{results[3], results[4],
                                                 results[5]};
  std::cout << "ATC band position across relevant-node percentages (paper: "
               "constant):\n";
  sweep::report(
      {"fig6 ATC band vs relevant fraction", plan.name(),
       {"relevant_%", "atc_steady_per_100ep", "vs_Umax"}},
      atc_cells,
      [&](const sweep::CellResult& r) {
        const core::ExperimentResults& res = r.results;
        const double steady = res.updates_per_bin.mean_over(
            steady_first, res.updates_per_bin.bin_count());
        return std::vector<std::string>{
            metrics::fmt(r.cell.config.relevant_fraction * 100.0, 0),
            metrics::fmt(steady), metrics::fmt(steady / umax_per_100, 3)};
      },
      {&console});
  std::cout << '\n';

  // Figure series: per-bin values across the four 40 %-relevant runs — a
  // transposed (one column per cell) emission, not a grid loop.
  metrics::TsvBlock tsv("fig6 update msgs per 100 epochs, relevant=40%",
                        {"epoch", "delta3", "delta5", "delta9", "atc",
                         "umax", "umax055", "umax045"});
  const std::size_t nbins = 20000 / 100;
  for (std::size_t b = 0; b < nbins; ++b) {
    tsv.add_row({std::to_string(b * 100),
                 metrics::fmt(delta3.updates_per_bin.bin(b), 0),
                 metrics::fmt(delta5.updates_per_bin.bin(b), 0),
                 metrics::fmt(delta9.updates_per_bin.bin(b), 0),
                 metrics::fmt(atc40.updates_per_bin.bin(b), 0),
                 metrics::fmt(umax_per_100), metrics::fmt(0.55 * umax_per_100),
                 metrics::fmt(0.45 * umax_per_100)});
  }
  tsv.print(std::cout);
  return 0;
}

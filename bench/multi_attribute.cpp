// Extension E10 — the paper-§2 attribute capabilities, quantified:
//
//   1. conjunctive multi-attribute queries ("DirQ can use multiple
//      attributes", unlike SRT) — cost and accuracy vs the equivalent
//      single-attribute projections, and
//   2. the optional static location attribute ("even location (static) if
//      it is available") — how much regional pruning saves.
#include "bench_util.hpp"
#include "net/placement.hpp"
#include "query/workload.hpp"
#include "sim/rng.hpp"

int main() {
  using namespace dirq;
  bench::print_header("Extension — multi-attribute and location routing",
                      "paper Section 2 capability claims");

  sim::Rng rng(42);
  net::Topology topo = net::random_connected(net::RandomPlacementConfig{}, rng);
  data::Environment env(topo, 4, rng.substream("env"));
  core::NetworkConfig cfg;
  cfg.mode = core::NetworkConfig::ThetaMode::Fixed;
  cfg.fixed_pct = 5.0;
  core::DirqNetwork net(topo, 0, cfg);
  for (std::int64_t e = 0; e < 200; ++e) {
    env.advance_to(e);
    net.process_epoch(env, e);
  }
  query::WorkloadGenerator gen(topo, net.tree(), env,
                               query::WorkloadConfig{0.4, 0.02},
                               rng.substream("wl"));

  // --- multi-attribute vs single-attribute projections ---------------------
  sim::RunningStat multi_cost, multi_sources, multi_received, multi_cov;
  sim::RunningStat proj_cost, proj_sources;
  const int kQueries = 200;
  for (int i = 0; i < kQueries; ++i) {
    const query::MultiQuery mq = gen.next_multi(200, 2);
    const query::Involvement truth =
        query::compute_involvement(mq, topo, net.tree(), env);
    const core::QueryOutcome out = net.inject(mq, 200);
    const metrics::QueryAudit audit =
        metrics::audit_query(truth.involved, out.received);
    multi_cost.push(static_cast<double>(out.cost));
    multi_sources.push(static_cast<double>(truth.sources.size()));
    multi_received.push(static_cast<double>(out.received.size()));
    multi_cov.push(audit.coverage_pct());

    // The cheaper single-attribute projection of the same request: run one
    // query per conjunct (what a single-attribute scheme like SRT must do,
    // with client-side intersection).
    CostUnits cost = 0;
    double sources = 0.0;
    for (const query::AttributePredicate& p : mq.predicates) {
      query::RangeQuery rq{static_cast<QueryId>(1000000 + i * 10), p.type,
                           p.lo, p.hi, 200, std::nullopt};
      const core::QueryOutcome po = net.inject(rq, 200);
      cost += po.cost;
      sources += static_cast<double>(
          query::compute_involvement(rq, topo, net.tree(), env).sources.size());
    }
    proj_cost.push(static_cast<double>(cost));
    proj_sources.push(sources);
  }

  metrics::Table m({"strategy", "mean_cost", "mean_sources", "mean_received",
                    "coverage_%"});
  m.add_row({"conjunctive multi-attribute", metrics::fmt(multi_cost.mean()),
             metrics::fmt(multi_sources.mean()),
             metrics::fmt(multi_received.mean()), metrics::fmt(multi_cov.mean())});
  m.add_row({"per-attribute projections", metrics::fmt(proj_cost.mean()),
             metrics::fmt(proj_sources.mean()), "-", "-"});
  std::cout << "Two-attribute conjunctions, " << kQueries << " queries:\n";
  m.print(std::cout);
  std::cout << "\nIn-network conjunction pays one dissemination and prunes "
               "branches missing either\nattribute; the projection strategy "
               "pays one dissemination per attribute and ships\na superset "
               "of sources for client-side intersection.\n\n";

  // --- location pruning ------------------------------------------------------
  metrics::Table l({"region_fraction", "mean_cost_with_region",
                    "mean_cost_without", "saving_%"});
  for (double frac : {0.1, 0.25, 0.5}) {
    sim::RunningStat with_cost, without_cost;
    for (int i = 0; i < kQueries; ++i) {
      query::RangeQuery q = gen.next_regional(200, frac);
      with_cost.push(static_cast<double>(net.inject(q, 200).cost));
      q.id += 2000000;
      q.region.reset();
      without_cost.push(static_cast<double>(net.inject(q, 200).cost));
    }
    l.add_row({metrics::fmt(frac), metrics::fmt(with_cost.mean()),
               metrics::fmt(without_cost.mean()),
               metrics::fmt(100.0 * (1.0 - with_cost.mean() /
                                               without_cost.mean()))});
  }
  std::cout << "Regional queries (same value window, with vs without the "
               "location attribute):\n";
  l.print(std::cout);
  return 0;
}

// Extension E10 — the paper-§2 attribute capabilities, quantified:
//
//   1. conjunctive multi-attribute queries ("DirQ can use multiple
//      attributes", unlike SRT) — cost and accuracy vs the equivalent
//      single-attribute projections, and
//   2. the optional static location attribute ("even location (static) if
//      it is available") — how much regional pruning saves.
//
// Both parts run as explicit-cell plans with bespoke cell bodies; each
// cell rebuilds the identical world from the shared seed (the generators
// are deterministic), so cells stay independent no matter which thread
// runs them.
#include <optional>
#include <vector>

#include "bench_util.hpp"
#include "net/placement.hpp"
#include "query/workload.hpp"
#include "sim/rng.hpp"

namespace {

using namespace dirq;

constexpr std::uint64_t kSeed = 42;
constexpr int kQueries = 200;

/// The shared warm world: 200 settled epochs at fixed theta = 5 %.
struct World {
  sim::Rng rng;
  net::Topology topo;
  data::Environment env;
  core::DirqNetwork net;
  query::WorkloadGenerator gen;

  World()
      : rng(kSeed),
        topo(net::random_connected(net::RandomPlacementConfig{}, rng)),
        env(topo, 4, rng.substream("env")),
        net(topo, 0,
            [] {
              core::NetworkConfig cfg;
              cfg.mode = core::NetworkConfig::ThetaMode::Fixed;
              cfg.fixed_pct = 5.0;
              return cfg;
            }()),
        gen(topo, net.tree(), env, query::WorkloadConfig{0.4, 0.02},
            rng.substream("wl")) {
    for (std::int64_t e = 0; e < 200; ++e) {
      env.advance_to(e);
      net.process_epoch(env, e);
    }
  }
};

struct StrategyOutcome {
  double mean_cost = 0.0;
  double mean_sources = 0.0;
  double mean_received = -1.0;  // < 0: not applicable
  double coverage = -1.0;
};

/// Replays the same 200-conjunction stream either as in-network
/// conjunctions or as per-attribute projections (what a single-attribute
/// scheme must do, with client-side intersection).
StrategyOutcome run_strategy(bool conjunctive) {
  World w;
  sim::RunningStat cost, sources, received, cov;
  for (int i = 0; i < kQueries; ++i) {
    const query::MultiQuery mq = w.gen.next_multi(200, 2);
    if (conjunctive) {
      const query::Involvement truth =
          query::compute_involvement(mq, w.topo, w.net.tree(), w.env);
      const core::QueryOutcome out = w.net.inject(mq, 200);
      const metrics::QueryAudit audit =
          metrics::audit_query(truth.involved, out.received);
      cost.push(static_cast<double>(out.cost));
      sources.push(static_cast<double>(truth.sources.size()));
      received.push(static_cast<double>(out.received.size()));
      cov.push(audit.coverage_pct());
    } else {
      CostUnits c = 0;
      double s = 0.0;
      for (const query::AttributePredicate& p : mq.predicates) {
        query::RangeQuery rq{static_cast<QueryId>(1000000 + i * 10), p.type,
                             p.lo, p.hi, 200, std::nullopt};
        const core::QueryOutcome po = w.net.inject(rq, 200);
        c += po.cost;
        s += static_cast<double>(
            query::compute_involvement(rq, w.topo, w.net.tree(), w.env)
                .sources.size());
      }
      cost.push(static_cast<double>(c));
      sources.push(s);
    }
  }
  StrategyOutcome out;
  out.mean_cost = cost.mean();
  out.mean_sources = sources.mean();
  if (conjunctive) {
    out.mean_received = received.mean();
    out.coverage = cov.mean();
  }
  return out;
}

struct RegionOutcome {
  double with_cost = 0.0;
  double without_cost = 0.0;
};

RegionOutcome run_region(double frac) {
  World w;
  sim::RunningStat with_cost, without_cost;
  for (int i = 0; i < kQueries; ++i) {
    query::RangeQuery q = w.gen.next_regional(200, frac);
    with_cost.push(static_cast<double>(w.net.inject(q, 200).cost));
    q.id += 2000000;
    q.region.reset();
    without_cost.push(static_cast<double>(w.net.inject(q, 200).cost));
  }
  return {with_cost.mean(), without_cost.mean()};
}

}  // namespace

int main() {
  using namespace dirq;
  bench::print_header("Extension — multi-attribute and location routing",
                      "paper Section 2 capability claims");

  const sweep::SweepRunner runner;

  // --- multi-attribute vs single-attribute projections ---------------------
  sweep::ExperimentPlan strategies("multi-attribute", core::ExperimentConfig{});
  strategies.cell("conjunctive multi-attribute", [](core::ExperimentConfig&) {});
  strategies.cell("per-attribute projections", [](core::ExperimentConfig&) {});
  const std::vector<StrategyOutcome> outcomes =
      runner.map(strategies, [](const sweep::PlanCell& cell) {
        return run_strategy(cell.index == 0);
      });

  sweep::ConsoleTableSink console(std::cout);
  const sweep::SweepHeader mh{
      "conjunctions vs projections", strategies.name(),
      {"strategy", "mean_cost", "mean_sources", "mean_received", "coverage_%"}};
  console.begin(mh);
  const std::vector<sweep::PlanCell> strategy_cells = strategies.cells();
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const StrategyOutcome& o = outcomes[i];
    console.row({strategy_cells[i].label, metrics::fmt(o.mean_cost),
                 metrics::fmt(o.mean_sources),
                 o.mean_received < 0 ? "-" : metrics::fmt(o.mean_received),
                 o.coverage < 0 ? "-" : metrics::fmt(o.coverage)},
                &strategy_cells[i], nullptr);
  }
  std::cout << "Two-attribute conjunctions, " << kQueries << " queries:\n";
  console.end();
  std::cout << "\nIn-network conjunction pays one dissemination and prunes "
               "branches missing either\nattribute; the projection strategy "
               "pays one dissemination per attribute and ships\na superset "
               "of sources for client-side intersection.\n\n";

  // --- location pruning ------------------------------------------------------
  const std::vector<double> fracs{0.1, 0.25, 0.5};
  sweep::ExperimentPlan regions("location-pruning", core::ExperimentConfig{});
  for (double f : fracs) regions.cell(metrics::fmt(f), [](core::ExperimentConfig&) {});
  const std::vector<RegionOutcome> region_outcomes =
      runner.map(regions, [&fracs](const sweep::PlanCell& cell) {
        return run_region(fracs[cell.index]);
      });

  const sweep::SweepHeader lh{
      "location pruning", regions.name(),
      {"region_fraction", "mean_cost_with_region", "mean_cost_without",
       "saving_%"}};
  console.begin(lh);
  const std::vector<sweep::PlanCell> region_cells = regions.cells();
  for (std::size_t i = 0; i < region_outcomes.size(); ++i) {
    const RegionOutcome& o = region_outcomes[i];
    console.row(
        {region_cells[i].label, metrics::fmt(o.with_cost),
         metrics::fmt(o.without_cost),
         metrics::fmt(100.0 * (1.0 - o.with_cost / o.without_cost))},
        &region_cells[i], nullptr);
  }
  std::cout << "Regional queries (same value window, with vs without the "
               "location attribute):\n";
  console.end();
  return 0;
}

// Extension E12 — per-node energy distribution: network lifetime analysis.
//
// A sensor network dies when its hottest node does, so the shape of the
// energy distribution matters as much as the total. This bench runs the
// standard ATC workload and compares DirQ's per-node radio energy against
// the flooding equivalent (where every node pays 1 tx + degree rx per
// query, uniformly mandatory).
//
// Expected shape: DirQ concentrates load near the root (forwarders relay
// both queries and updates), but its hottest node still spends far less
// than flooding's uniform per-node cost — so lifetime improves by more
// than the average saving alone would suggest.
#include <algorithm>

#include "bench_util.hpp"
#include "core/flooding.hpp"
#include "data/field_model.hpp"
#include "net/placement.hpp"
#include "query/rate_predictor.hpp"
#include "query/workload.hpp"
#include "sim/rng.hpp"

int main() {
  using namespace dirq;
  bench::print_header("Extension — per-node energy / network lifetime",
                      "DirQ motivation (energy): hottest-node comparison");

  // Run the driver manually so we can read per-node counters at the end.
  const std::uint64_t seed = 42;
  sim::Rng rng(seed);
  net::Topology topo = net::random_connected(net::RandomPlacementConfig{}, rng);
  data::Environment env(topo, 4, rng.substream("environment"));
  core::NetworkConfig ncfg;
  ncfg.mode = core::NetworkConfig::ThetaMode::Atc;
  core::DirqNetwork net(topo, 0, ncfg);
  query::WorkloadGenerator workload(topo, net.tree(), env,
                                    query::WorkloadConfig{0.4, 0.02},
                                    rng.substream("workload"));
  query::QueryRatePredictor predictor(0.4, kEpochsPerHour);
  const std::int64_t epochs = 20000;
  std::int64_t queries = 0;
  for (std::int64_t e = 0; e < epochs; ++e) {
    env.advance_to(e);
    if (e % kEpochsPerHour == 0) {
      net.broadcast_ehr(predictor.completed_hours() > 0
                            ? predictor.predict_next_hour()
                            : 180.0,
                        e);
    }
    net.process_epoch(env, e);
    if (e % 20 == 0 && e > 0) {
      (void)net.inject(workload.next(e), e);
      predictor.record_query(e);
      ++queries;
    }
  }

  // Flooding equivalent per node: every query costs each node 1 tx +
  // degree(n) rx (every neighbour's broadcast is heard).
  std::vector<double> dirq_energy, flood_energy;
  for (NodeId u = 0; u < topo.size(); ++u) {
    dirq_energy.push_back(static_cast<double>(net.node_energy(u)));
    flood_energy.push_back(static_cast<double>(queries) *
                           (1.0 + static_cast<double>(topo.neighbors(u).size())));
  }

  auto stats = [](std::vector<double> v) {
    std::sort(v.begin(), v.end());
    const double total = [&] {
      double s = 0.0;
      for (double x : v) s += x;
      return s;
    }();
    return std::tuple{total / static_cast<double>(v.size()),
                      v[v.size() / 2], v.back()};
  };
  const auto [d_mean, d_med, d_max] = stats(dirq_energy);
  const auto [f_mean, f_med, f_max] = stats(flood_energy);

  metrics::Table t({"scheme", "mean/node", "median/node", "hottest node",
                    "lifetime_gain"});
  t.add_row({"flooding", metrics::fmt(f_mean, 0), metrics::fmt(f_med, 0),
             metrics::fmt(f_max, 0), "1.00x"});
  t.add_row({"DirQ (ATC)", metrics::fmt(d_mean, 0), metrics::fmt(d_med, 0),
             metrics::fmt(d_max, 0), metrics::fmt(f_max / d_max, 2) + "x"});
  t.print(std::cout);

  // Energy by tree depth: where the hotspots live.
  std::cout << "\nDirQ energy by tree depth (relay burden concentrates near "
               "the root):\n";
  metrics::Table d({"depth", "nodes", "mean_energy", "max_energy"});
  for (int depth = 0; depth <= net.tree().max_depth(); ++depth) {
    sim::RunningStat s;
    for (NodeId u : net.tree().nodes_at_depth(depth)) {
      s.push(static_cast<double>(net.node_energy(u)));
    }
    if (s.count() == 0) continue;
    d.add_row({std::to_string(depth), std::to_string(s.count()),
               metrics::fmt(s.mean(), 0), metrics::fmt(s.max(), 0)});
  }
  d.print(std::cout);
  return 0;
}

// Extension E12 — per-node energy distribution: network lifetime analysis.
//
// A sensor network dies when its hottest node does, so the shape of the
// energy distribution matters as much as the total. This bench runs the
// standard ATC workload (one plan cell through the sweep runner — the
// per-node radio attribution now lives in ExperimentResults::node_tx/rx)
// and compares DirQ's per-node radio energy against the flooding
// equivalent (where every node pays 1 tx + degree rx per query, uniformly
// mandatory).
//
// Expected shape: DirQ concentrates load near the root (forwarders relay
// both queries and updates), but its hottest node still spends far less
// than flooding's uniform per-node cost — so lifetime improves by more
// than the average saving alone would suggest.
#include <algorithm>
#include <tuple>
#include <vector>

#include "bench_util.hpp"
#include "net/placement.hpp"
#include "net/spanning_tree.hpp"
#include "sim/rng.hpp"

int main() {
  using namespace dirq;
  bench::print_header("Extension — per-node energy / network lifetime",
                      "DirQ motivation (energy): hottest-node comparison");

  sweep::ExperimentPlan plan("energy-hotspots", [] {
    core::ExperimentConfig cfg = sweep::paper_config();
    sweep::atc().apply(cfg);
    sweep::relevant(0.4).apply(cfg);
    cfg.keep_records = false;
    return cfg;
  }());
  plan.cell("ATC relevant=40%", [](core::ExperimentConfig&) {});

  const std::vector<sweep::CellResult> results = sweep::require_ok(sweep::SweepRunner().run(plan));
  const core::ExperimentResults& res = results.front().results;
  const core::ExperimentConfig& cfg = results.front().cell.config;

  // The experiment derives its world deterministically from the seed;
  // rebuild the same topology/tree for the degree and depth breakdowns.
  sim::Rng rng(cfg.seed);
  net::Topology topo = net::random_connected(cfg.placement, rng);
  net::SpanningTree tree(topo, 0);

  // Flooding equivalent per node: every query costs each node 1 tx +
  // degree(n) rx (every neighbour's broadcast is heard).
  std::vector<double> dirq_energy, flood_energy;
  for (NodeId u = 0; u < topo.size(); ++u) {
    dirq_energy.push_back(static_cast<double>(res.node_tx[u] + res.node_rx[u]));
    flood_energy.push_back(
        static_cast<double>(res.queries) *
        (1.0 + static_cast<double>(topo.neighbors(u).size())));
  }

  auto stats = [](std::vector<double> v) {
    std::sort(v.begin(), v.end());
    const double total = [&] {
      double s = 0.0;
      for (double x : v) s += x;
      return s;
    }();
    return std::tuple{total / static_cast<double>(v.size()),
                      v[v.size() / 2], v.back()};
  };
  const auto [d_mean, d_med, d_max] = stats(dirq_energy);
  const auto [f_mean, f_med, f_max] = stats(flood_energy);

  sweep::ConsoleTableSink console(std::cout);
  const sweep::SweepHeader header{
      "per-node energy", plan.name(),
      {"scheme", "mean/node", "median/node", "hottest node", "lifetime_gain"}};
  console.begin(header);
  console.row({"flooding", metrics::fmt(f_mean, 0), metrics::fmt(f_med, 0),
               metrics::fmt(f_max, 0), "1.00x"},
              &results.front().cell, nullptr);
  console.row({"DirQ (ATC)", metrics::fmt(d_mean, 0), metrics::fmt(d_med, 0),
               metrics::fmt(d_max, 0), metrics::fmt(f_max / d_max, 2) + "x"},
              &results.front().cell, &results.front());
  console.end();

  // Energy by tree depth: where the hotspots live.
  std::cout << "\nDirQ energy by tree depth (relay burden concentrates near "
               "the root):\n";
  metrics::Table d({"depth", "nodes", "mean_energy", "max_energy"});
  for (int depth = 0; depth <= tree.max_depth(); ++depth) {
    sim::RunningStat s;
    for (NodeId u : tree.nodes_at_depth(depth)) {
      s.push(static_cast<double>(res.node_tx[u] + res.node_rx[u]));
    }
    if (s.count() == 0) continue;
    d.add_row({std::to_string(depth), std::to_string(s.count()),
               metrics::fmt(s.mean(), 0), metrics::fmt(s.max(), 0)});
  }
  d.print(std::cout);
  return 0;
}

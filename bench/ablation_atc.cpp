// Ablation A1 — ATC control law: multiplicative (default) vs additive
// theta adjustment. Both laws must land the update traffic inside the
// paper's 45-55 % band; the interesting differences are convergence speed
// (updates spent during the first hour) and steady-state jitter.
#include "bench_util.hpp"

int main() {
  using namespace dirq;
  bench::print_header("Ablation A1 — ATC control law",
                      "DESIGN.md Section 4 (design-choice ablation)");

  sweep::ExperimentPlan plan("ablation-atc-law", [] {
    core::ExperimentConfig cfg = sweep::paper_config();
    sweep::atc().apply(cfg);
    sweep::relevant(0.4).apply(cfg);
    cfg.keep_records = false;
    return cfg;
  }());
  plan.axis(sweep::custom_axis(
      "law", {{"multiplicative",
               [](core::ExperimentConfig& cfg) {
                 cfg.network.atc.law = core::AtcLaw::Multiplicative;
               }},
              {"additive", [](core::ExperimentConfig& cfg) {
                 cfg.network.atc.law = core::AtcLaw::Additive;
               }}}));

  const std::vector<sweep::CellResult> results = sweep::require_ok(sweep::SweepRunner().run(plan));

  sweep::ConsoleTableSink console(std::cout);
  sweep::report(
      {"ablation ATC control law", plan.name(),
       {"law", "ratio_vs_flood", "steady_vs_Umax", "first_hour_updates",
        "steady_jitter", "avg_overshoot_%"}},
      results,
      [](const sweep::CellResult& r) {
        const core::ExperimentResults& res = r.results;
        const double umax_per_100 =
            res.umax_per_hour.back() * 100.0 / kEpochsPerHour;
        const std::size_t steady_first = kEpochsPerHour / 100;
        const std::size_t bins = res.updates_per_bin.bin_count();
        const double steady = res.updates_per_bin.mean_over(steady_first, bins);
        // Jitter: RMS deviation of per-bin counts from the steady mean.
        sim::RunningStat dev;
        for (std::size_t b = steady_first; b < bins; ++b) {
          dev.push(res.updates_per_bin.bin(b) - steady);
        }
        double first_hour = 0.0;
        for (std::size_t b = 0; b < steady_first && b < bins; ++b) {
          first_hour += res.updates_per_bin.bin(b);
        }
        return std::vector<std::string>{
            *r.cell.coordinate("law"), metrics::fmt(res.cost_ratio(), 3),
            metrics::fmt(steady / umax_per_100, 3), metrics::fmt(first_hour, 0),
            metrics::fmt(dev.stddev(), 1),
            metrics::fmt(res.overshoot_pct.mean())};
      },
      {&console});
  std::cout << "\n(steady_vs_Umax inside [0.45, 0.55] reproduces Fig. 6's "
               "band for either law)\n";
  return 0;
}

// E10 — multi-sink query plane: admission routing vs round-robin as the
// sink count grows (ROADMAP "Multi-sink query plane"). Not a paper figure;
// the paper deploys one sink — this bench measures what the N-tree overlay
// costs (cross-tree update overhead) and what the admission policy buys
// (per-sink energy balance) on the scaled topologies.
//
//   bench_multi_sink [--nodes LIST] [--sinks LIST] [--epochs N]
//                    [--threads LIST] [--json FILE]
//
// For each (nodes, sinks, routing, threads) cell: one full fixed-theta
// experiment, wall-clock, the global ledger, the per-sink ledgers, and the
// energy spread ((max-min)/mean of per-sink totals — 0 is perfectly
// balanced). Routing only matters with >= 2 sinks, so the 1-sink cell runs
// once and serves as the baseline for both policies. --threads values are
// worker counts for the tree-sharded epoch engine (0 = all cores; results
// are byte-identical across the axis, only run_seconds moves — the rows
// feed tools/perf_smoke.sh's self-relative speedup guard).
#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "net/placement.hpp"

namespace {

using namespace dirq;
using Clock = std::chrono::steady_clock;

struct MsinkRow {
  std::size_t nodes = 0;
  std::int64_t epochs = 0;
  std::size_t sinks = 1;
  std::string routing;  // "admission", "roundrobin", or "-" for 1 sink
  unsigned threads = 1;  // effective worker count (requested, resolved)
  double run_seconds = 0.0;
  double epochs_per_sec = 0.0;
  std::int64_t queries = 0;
  CostUnits dirq_total = 0;
  CostUnits cross_tree_overhead = 0;
  double energy_spread = 0.0;           // (max-min)/mean of sink totals
  std::vector<CostUnits> sink_totals;   // per-sink ledger totals
  std::vector<std::int64_t> sink_queries;
};

MsinkRow run_cell(std::size_t nodes, std::int64_t epochs, std::size_t sinks,
                  core::RoutingPolicy routing, unsigned threads) {
  MsinkRow row;
  row.nodes = nodes;
  row.epochs = epochs;
  row.sinks = sinks;
  row.routing = sinks < 2 ? "-"
                : routing == core::RoutingPolicy::RoundRobin ? "roundrobin"
                                                             : "admission";

  core::ExperimentConfig cfg;
  cfg.seed = 42;
  cfg.placement = net::scaled_placement(nodes);
  cfg.epochs = epochs;
  cfg.network.mode = core::NetworkConfig::ThetaMode::Fixed;
  cfg.network.fixed_pct = 5.0;
  cfg.keep_records = false;
  cfg.sink_count = sinks;
  cfg.routing = routing;
  cfg.threads = threads;
  row.threads = core::Experiment::effective_threads(cfg);

  const auto start = Clock::now();
  const core::ExperimentResults res = core::Experiment(cfg).run();
  row.run_seconds = std::chrono::duration<double>(Clock::now() - start).count();
  row.epochs_per_sec = row.run_seconds > 0.0
                           ? static_cast<double>(epochs) / row.run_seconds
                           : 0.0;
  row.queries = res.queries;
  row.dirq_total = res.ledger.total();
  row.cross_tree_overhead = res.cross_tree_update_overhead;
  row.energy_spread = res.sink_energy_spread();
  for (const core::CostLedger& led : res.sink_ledgers) {
    row.sink_totals.push_back(led.total());
  }
  row.sink_queries = res.sink_queries;
  return row;
}

template <typename T>
void write_array(std::ofstream& out, const std::vector<T>& xs) {
  out << '[';
  for (std::size_t i = 0; i < xs.size(); ++i) out << (i ? ", " : "") << xs[i];
  out << ']';
}

void write_json(const std::string& path, const std::vector<MsinkRow>& rows) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "bench_multi_sink: cannot open " << path << "\n";
    std::exit(1);
  }
  out << "{\n  \"schema\": \"dirq.msink.v1\",\n  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const MsinkRow& r = rows[i];
    out << "    {\"nodes\": " << r.nodes << ", \"epochs\": " << r.epochs
        << ", \"sinks\": " << r.sinks << ", \"routing\": \"" << r.routing
        << "\", \"threads\": " << r.threads
        << ", \"run_seconds\": " << r.run_seconds
        << ", \"epochs_per_sec\": " << r.epochs_per_sec
        << ", \"queries\": " << r.queries
        << ", \"dirq_total\": " << r.dirq_total
        << ", \"cross_tree_overhead\": " << r.cross_tree_overhead
        << ", \"energy_spread\": " << r.energy_spread
        << ", \"sink_totals\": ";
    write_array(out, r.sink_totals);
    out << ", \"sink_queries\": ";
    write_array(out, r.sink_queries);
    out << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

std::vector<std::size_t> parse_list(const char* flag, const char* value,
                                    std::int64_t min) {
  std::vector<std::size_t> out;
  std::string item;
  for (const char* p = value;; ++p) {
    if (*p == ',' || *p == '\0') {
      out.push_back(static_cast<std::size_t>(
          bench::parse_count("bench_multi_sink", flag, item, min)));
      item.clear();
      if (*p == '\0') break;
    } else {
      item.push_back(*p);
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::size_t> node_counts{500, 1000, 2000};
  std::vector<std::size_t> sink_counts{1, 2, 4, 8};
  std::vector<std::size_t> thread_counts{1};
  std::int64_t epochs = 2000;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* next = i + 1 < argc ? argv[i + 1] : nullptr;
    if (arg == "--nodes" && next != nullptr) {
      node_counts = parse_list("--nodes", next, 1);
      ++i;
    } else if (arg == "--sinks" && next != nullptr) {
      sink_counts = parse_list("--sinks", next, 1);
      ++i;
    } else if (arg == "--threads" && next != nullptr) {
      // 0 is meaningful: all hardware threads (resolved into the row).
      thread_counts = parse_list("--threads", next, 0);
      ++i;
    } else if (arg == "--epochs" && next != nullptr) {
      epochs = bench::parse_count("bench_multi_sink", "--epochs", next);
      ++i;
    } else if (arg == "--json" && next != nullptr) {
      json_path = next;
      ++i;
    } else {
      std::cerr << "usage: bench_multi_sink [--nodes LIST] [--sinks LIST]"
                   " [--epochs N] [--threads LIST] [--json FILE]\n";
      return 2;
    }
  }

  dirq::bench::print_header(
      "E10 — multi-sink query plane: admission vs round-robin",
      "ROADMAP 'Multi-sink query plane'; fixed theta=5%, spread roots");

  std::vector<MsinkRow> rows;
  for (std::size_t n : node_counts) {
    for (std::size_t s : sink_counts) {
      for (std::size_t th : thread_counts) {
        const auto threads = static_cast<unsigned>(th);
        if (s < 2) {
          rows.push_back(
              run_cell(n, epochs, s, core::RoutingPolicy::Admission, threads));
          std::cerr << "  " << n << "n x " << s << " sink x "
                    << rows.back().threads << "t done ("
                    << dirq::metrics::fmt(rows.back().run_seconds) << " s)\n";
          continue;
        }
        for (const core::RoutingPolicy policy :
             {core::RoutingPolicy::Admission,
              core::RoutingPolicy::RoundRobin}) {
          rows.push_back(run_cell(n, epochs, s, policy, threads));
          std::cerr << "  " << n << "n x " << s << " sinks ("
                    << rows.back().routing << ") x " << rows.back().threads
                    << "t done ("
                    << dirq::metrics::fmt(rows.back().run_seconds) << " s)\n";
        }
      }
    }
  }

  dirq::metrics::TsvBlock tsv(
      "multi-sink tier: overlay cost + energy balance",
      {"nodes", "epochs", "sinks", "routing", "threads", "run_s",
       "epochs_per_s", "queries", "dirq_total", "xtree_overhead",
       "energy_spread"});
  for (const MsinkRow& r : rows) {
    tsv.add_row({std::to_string(r.nodes), std::to_string(r.epochs),
                 std::to_string(r.sinks), r.routing,
                 std::to_string(r.threads),
                 dirq::metrics::fmt(r.run_seconds, 3),
                 dirq::metrics::fmt(r.epochs_per_sec, 1),
                 std::to_string(r.queries), std::to_string(r.dirq_total),
                 std::to_string(r.cross_tree_overhead),
                 dirq::metrics::fmt(r.energy_spread, 3)});
  }
  tsv.print(std::cout);

  if (!json_path.empty()) {
    write_json(json_path, rows);
    std::cerr << "bench_multi_sink: wrote " << json_path << "\n";
  }
  return 0;
}

// E4/E7 — Fig. 7: per-query overshoot over time for fixed theta = 3/5/9 %
// and ATC at the 20 % relevant-nodes setting, plus the paper's headline
// "average overshoot of only 3.6 %" for ATC.
//
// Paper shape: overshoot ordering 9% > 5% > 3% ~ ATC; ATC's average stays
// in the low single digits despite its update throttling.
#include <vector>

#include "bench_util.hpp"

int main() {
  using namespace dirq;
  bench::print_header("Fig. 7 — overshoot: fixed theta vs ATC",
                      "ICPPW'06 DirQ paper, Figure 7, Section 7.2");

  constexpr double kFraction = 0.2;
  sweep::ExperimentPlan plan("fig7-overshoot", [] {
    core::ExperimentConfig cfg = sweep::paper_config();
    sweep::relevant(kFraction).apply(cfg);
    return cfg;  // keep_records stays on: the time series needs per-query rows
  }());
  plan.axis(sweep::paper_theta_axis());

  const std::vector<sweep::CellResult> results = sweep::require_ok(sweep::SweepRunner().run(plan));

  std::cout << "Percentage of relevant nodes = 20%\n\n";
  sweep::ConsoleTableSink console(std::cout);
  sweep::report(
      {"fig7 overshoot summary, relevant=20%", plan.name(),
       {"series", "delivery_overshoot_%", "wrong_of_pop_%", "src_overshoot_%",
        "delivery_coverage_%", "src_coverage_%"}},
      results,
      [](const sweep::CellResult& r) {
        const core::ExperimentResults& res = r.results;
        return std::vector<std::string>{
            *r.cell.coordinate("theta"), metrics::fmt(res.overshoot_pct.mean()),
            metrics::fmt(res.wrong_pct.mean()),
            metrics::fmt(res.source_overshoot_pct.mean()),
            metrics::fmt(res.coverage_pct.mean()),
            metrics::fmt(res.source_coverage_pct.mean())};
      },
      {&console});
  std::cout
      << "\nPaper headline: ATC average overshoot ~3.6%. Overshoot metric "
         "definitions are\ndiscussed in EXPERIMENTS.md (the paper's exact "
         "formula lives in its unavailable\nref [13]); the reproduced shape "
         "is the ordering delta=9% > 5% > ATC ~ 3% and the\npopulation-"
         "normalised column staying in single digits for small theta.\n\n";

  // Time series: mean overshoot per 500-epoch window (25 queries each) —
  // one column per cell, from the kept per-query records.
  constexpr std::int64_t kWindow = 500;
  const std::size_t windows = 20000 / kWindow;
  std::vector<std::vector<double>> sums(results.size());
  std::vector<std::vector<int>> counts(results.size());
  for (std::size_t c = 0; c < results.size(); ++c) {
    sums[c].assign(windows, 0.0);
    counts[c].assign(windows, 0);
    for (const core::QueryRecord& rec : results[c].results.records) {
      const auto w = static_cast<std::size_t>(rec.epoch / kWindow);
      sums[c][w] += rec.audit.overshoot_pct();
      counts[c][w] += 1;
    }
  }
  metrics::TsvBlock tsv("fig7 overshoot %, relevant=20%",
                        {"epoch", "atc", "delta3", "delta5", "delta9"});
  for (std::size_t w = 0; w < windows; ++w) {
    std::vector<std::string> row{std::to_string(w * kWindow)};
    for (std::size_t c = 0; c < results.size(); ++c) {
      const int n = counts[c][w];
      row.push_back(metrics::fmt(n ? sums[c][w] / n : 0.0, 3));
    }
    tsv.add_row(std::move(row));
  }
  tsv.print(std::cout);
  return 0;
}

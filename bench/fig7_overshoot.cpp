// E4/E7 — Fig. 7: per-query overshoot over time for fixed theta = 3/5/9 %
// and ATC at the 20 % relevant-nodes setting, plus the paper's headline
// "average overshoot of only 3.6 %" for ATC.
//
// Paper shape: overshoot ordering 9% > 5% > 3% ~ ATC; ATC's average stays
// in the low single digits despite its update throttling.
#include <map>

#include "bench_util.hpp"

int main() {
  using namespace dirq;
  bench::print_header("Fig. 7 — overshoot: fixed theta vs ATC",
                      "ICPPW'06 DirQ paper, Figure 7, Section 7.2");

  constexpr double kFraction = 0.2;
  const std::vector<std::string> labels{"delta=3%", "delta=5%", "delta=9%",
                                        "delta=ATC"};
  std::map<std::string, core::ExperimentResults> results;
  results.emplace(labels[0],
                  core::Experiment(bench::with_fixed_theta(
                                       bench::paper_config(), 3.0, kFraction))
                      .run());
  results.emplace(labels[1],
                  core::Experiment(bench::with_fixed_theta(
                                       bench::paper_config(), 5.0, kFraction))
                      .run());
  results.emplace(labels[2],
                  core::Experiment(bench::with_fixed_theta(
                                       bench::paper_config(), 9.0, kFraction))
                      .run());
  results.emplace(labels[3],
                  core::Experiment(
                      bench::with_atc(bench::paper_config(), kFraction))
                      .run());

  std::cout << "Percentage of relevant nodes = 20%\n\n";
  metrics::Table summary({"series", "delivery_overshoot_%", "wrong_of_pop_%",
                          "src_overshoot_%", "delivery_coverage_%",
                          "src_coverage_%"});
  for (const std::string& label : labels) {
    const core::ExperimentResults& r = results.at(label);
    summary.add_row({label, metrics::fmt(r.overshoot_pct.mean()),
                     metrics::fmt(r.wrong_pct.mean()),
                     metrics::fmt(r.source_overshoot_pct.mean()),
                     metrics::fmt(r.coverage_pct.mean()),
                     metrics::fmt(r.source_coverage_pct.mean())});
  }
  summary.print(std::cout);
  std::cout
      << "\nPaper headline: ATC average overshoot ~3.6%. Overshoot metric "
         "definitions are\ndiscussed in EXPERIMENTS.md (the paper's exact "
         "formula lives in its unavailable\nref [13]); the reproduced shape "
         "is the ordering delta=9% > 5% > ATC ~ 3% and the\npopulation-"
         "normalised column staying in single digits for small theta.\n\n";

  // Time series: mean overshoot per 500-epoch window (25 queries each).
  metrics::TsvBlock tsv("fig7 overshoot %, relevant=20%",
                        {"epoch", "delta3", "delta5", "delta9", "atc"});
  constexpr std::int64_t kWindow = 500;
  std::map<std::string, std::vector<double>> series;
  std::map<std::string, std::vector<int>> counts;
  for (const std::string& label : labels) {
    series[label].assign(20000 / kWindow, 0.0);
    counts[label].assign(20000 / kWindow, 0);
    for (const core::QueryRecord& rec : results.at(label).records) {
      const auto w = static_cast<std::size_t>(rec.epoch / kWindow);
      series[label][w] += rec.audit.overshoot_pct();
      counts[label][w] += 1;
    }
  }
  for (std::size_t w = 0; w < 20000 / kWindow; ++w) {
    std::vector<std::string> row{std::to_string(w * kWindow)};
    for (const std::string& label : labels) {
      const int n = counts[label][w];
      row.push_back(metrics::fmt(n ? series[label][w] / n : 0.0, 3));
    }
    tsv.add_row(std::move(row));
  }
  tsv.print(std::cout);
  return 0;
}

// E6 — headline claim: "Our results show that DirQ spends between 45% and
// 55% the cost of flooding" (abstract / §6 / §7.2), and E7's companion
// "average overshoot of only 3.6%".
//
// Runs the full 20 000-epoch ATC experiment at 20/40/60 % relevant nodes
// and prints DirQ's total energy (query dissemination + updates + EHr
// control) against flooding the identical query stream. Fixed-theta rows
// are included to show why ATC is needed (a small fixed theta can exceed
// flooding, paper §7.2).
#include "bench_util.hpp"

int main() {
  using namespace dirq;
  bench::print_header(
      "Headline — DirQ cost as a fraction of flooding",
      "ICPPW'06 DirQ paper abstract, Sections 6-7 (45-55% band)");

  metrics::Table table({"mode", "relevant_%", "query_cost", "update_cost",
                        "control_cost", "dirq_total", "flood_total",
                        "ratio", "avg_overshoot_%"});
  metrics::TsvBlock tsv("cost ratio vs flooding",
                        {"mode", "relevant_pct", "ratio", "overshoot_pct"});

  auto run_row = [&](const std::string& mode, core::ExperimentConfig cfg,
                     double fraction) {
    cfg.keep_records = false;
    const core::ExperimentResults res = core::Experiment(cfg).run();
    table.add_row({mode, metrics::fmt(fraction * 100.0, 0),
                   std::to_string(res.ledger.query_cost()),
                   std::to_string(res.ledger.update_cost()),
                   std::to_string(res.ledger.control_cost()),
                   std::to_string(res.ledger.total()),
                   std::to_string(res.flooding_total),
                   metrics::fmt(res.cost_ratio(), 3),
                   metrics::fmt(res.overshoot_pct.mean())});
    tsv.add_row({mode, metrics::fmt(fraction * 100.0, 0),
                 metrics::fmt(res.cost_ratio(), 4),
                 metrics::fmt(res.overshoot_pct.mean(), 4)});
    return res.cost_ratio();
  };

  double atc_lo = 1e9, atc_hi = 0.0;
  for (double fraction : {0.2, 0.4, 0.6}) {
    const double r = run_row(
        "ATC", bench::with_atc(bench::paper_config(), fraction), fraction);
    atc_lo = std::min(atc_lo, r);
    atc_hi = std::max(atc_hi, r);
  }
  for (double fraction : {0.2, 0.4, 0.6}) {
    run_row("fixed delta=3%",
            bench::with_fixed_theta(bench::paper_config(), 3.0, fraction),
            fraction);
  }
  table.print(std::cout);
  std::cout << "\nPaper: DirQ (ATC) spends 45-55% the cost of flooding -> "
               "measured ATC ratios span ["
            << metrics::fmt(atc_lo, 3) << ", " << metrics::fmt(atc_hi, 3)
            << "]\n\n";
  tsv.print(std::cout);
  return 0;
}

// E6 — headline claim: "Our results show that DirQ spends between 45% and
// 55% the cost of flooding" (abstract / §6 / §7.2), and E7's companion
// "average overshoot of only 3.6%".
//
// Runs the full 20 000-epoch ATC experiment at 20/40/60 % relevant nodes
// and prints DirQ's total energy (query dissemination + updates + EHr
// control) against flooding the identical query stream. Fixed-theta rows
// are included to show why ATC is needed (a small fixed theta can exceed
// flooding, paper §7.2).
#include <algorithm>

#include "bench_util.hpp"

int main() {
  using namespace dirq;
  bench::print_header(
      "Headline — DirQ cost as a fraction of flooding",
      "ICPPW'06 DirQ paper abstract, Sections 6-7 (45-55% band)");

  sweep::ExperimentPlan plan("cost-ratio", [] {
    core::ExperimentConfig cfg = sweep::paper_config();
    cfg.keep_records = false;
    return cfg;
  }());
  plan.axis(sweep::theta_axis({sweep::atc(), sweep::fixed_theta(3.0)}))
      .axis(sweep::paper_relevant_axis());

  const std::vector<sweep::CellResult> results = sweep::require_ok(sweep::SweepRunner().run(plan));

  const auto mapper = [](const sweep::CellResult& r) {
    const core::ExperimentResults& res = r.results;
    return std::vector<std::string>{
        *r.cell.coordinate("theta"),
        *r.cell.coordinate("relevant"),
        std::to_string(res.ledger.query_cost()),
        std::to_string(res.ledger.update_cost()),
        std::to_string(res.ledger.control_cost()),
        std::to_string(res.ledger.total()),
        std::to_string(res.flooding_total),
        metrics::fmt(res.cost_ratio(), 3),
        metrics::fmt(res.overshoot_pct.mean())};
  };

  sweep::ConsoleTableSink console(std::cout);
  sweep::report({"cost ratio vs flooding", plan.name(),
                 {"mode", "relevant_%", "query_cost", "update_cost",
                  "control_cost", "dirq_total", "flood_total", "ratio",
                  "avg_overshoot_%"}},
                results, mapper, {&console});

  double atc_lo = 1e9, atc_hi = 0.0;
  for (const sweep::CellResult& r : results) {
    if (r.ok() && *r.cell.coordinate("theta") == "ATC") {
      atc_lo = std::min(atc_lo, r.results.cost_ratio());
      atc_hi = std::max(atc_hi, r.results.cost_ratio());
    }
  }
  std::cout << "\nPaper: DirQ (ATC) spends 45-55% the cost of flooding -> "
               "measured ATC ratios span ["
            << metrics::fmt(atc_lo, 3) << ", " << metrics::fmt(atc_hi, 3)
            << "]\n\n";

  sweep::TsvSink tsv(std::cout);
  sweep::report({"cost ratio vs flooding", plan.name(),
                 {"mode", "relevant_pct", "ratio", "overshoot_pct"}},
                results,
                [](const sweep::CellResult& r) {
                  return std::vector<std::string>{
                      *r.cell.coordinate("theta"), *r.cell.coordinate("relevant"),
                      metrics::fmt(r.results.cost_ratio(), 4),
                      metrics::fmt(r.results.overshoot_pct.mean(), 4)};
                },
                {&tsv});
  return 0;
}

// E1/E2 — Fig. 5(a),(b): effect of the threshold theta on dissemination
// accuracy, for 20/40/60 % relevant-node targets.
//
// For each (relevant %, theta) cell this prints the paper's four series as
// run averages over 20 000 epochs (999 queries):
//   should   — % of nodes that SHOULD receive the query (sources +
//              forwarders, ground truth)
//   receive  — % of nodes that RECEIVE the query under DirQ
//   source   — % of nodes whose reading actually matches
//   wrong    — % of nodes that SHOULD NOT receive it yet did
//
// Paper shape: `receive` - `should` widens as theta grows; the effect is
// strongest at small relevant percentages.
#include "bench_util.hpp"

int main() {
  using namespace dirq;
  bench::print_header("Fig. 5 — effect of theta on accuracy",
                      "ICPPW'06 DirQ paper, Figure 5(a)/(b), Section 7.1");

  for (double fraction : {0.2, 0.4, 0.6}) {
    metrics::Table table({"theta_pct", "should_%", "receive_%", "source_%",
                          "should_not_%", "overshoot_%"});
    metrics::TsvBlock tsv(
        "fig5 relevant=" + metrics::fmt(fraction * 100.0, 0) + "%",
        {"theta_pct", "should_pct", "receive_pct", "source_pct", "wrong_pct",
         "overshoot_pct"});
    for (int theta = 1; theta <= 9; ++theta) {
      core::ExperimentConfig cfg = bench::with_fixed_theta(
          bench::paper_config(), static_cast<double>(theta), fraction);
      cfg.keep_records = false;
      const core::ExperimentResults res = core::Experiment(cfg).run();
      table.add_row({metrics::fmt(theta, 0), metrics::fmt(res.should_pct.mean()),
                     metrics::fmt(res.receive_pct.mean()),
                     metrics::fmt(res.source_pct.mean()),
                     metrics::fmt(res.wrong_pct.mean()),
                     metrics::fmt(res.overshoot_pct.mean())});
      tsv.add_row({metrics::fmt(theta, 0), metrics::fmt(res.should_pct.mean(), 4),
                   metrics::fmt(res.receive_pct.mean(), 4),
                   metrics::fmt(res.source_pct.mean(), 4),
                   metrics::fmt(res.wrong_pct.mean(), 4),
                   metrics::fmt(res.overshoot_pct.mean(), 4)});
    }
    std::cout << "Percentage of relevant nodes = "
              << metrics::fmt(fraction * 100.0, 0) << "%\n";
    table.print(std::cout);
    std::cout << '\n';
    tsv.print(std::cout);
  }
  return 0;
}
